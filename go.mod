module tierbase

go 1.24
