// Benchmark entry points: one testing.B target per paper table/figure
// (wrapping the internal/bench drivers) plus the ablation benchmarks for
// the design decisions called out in DESIGN.md §5, plus component
// microbenchmarks. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or run individual experiments with full output via cmd/tierbase-bench.
package tierbase_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"math/rand"
	"tierbase"
	"tierbase/internal/bench"
	"tierbase/internal/cache"
	"tierbase/internal/compress"
	"tierbase/internal/engine"
	"tierbase/internal/lsm"
	"tierbase/internal/pmem"

	"tierbase/internal/workload"
)

// benchScale keeps experiment wrappers fast under `go test -bench=.`;
// use cmd/tierbase-bench -scale for full-size runs.
const benchScale = 0.05

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(bench.RunOpts{Scale: benchScale, Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.String())
		}
	}
}

// --- one bench per paper artifact ---

func BenchmarkFig1CostComparison(b *testing.B)        { runExperiment(b, "fig1") }
func BenchmarkFig7CachingPerformance(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFig8Persistence(b *testing.B)           { runExperiment(b, "fig8") }
func BenchmarkTable2Compression(b *testing.B)         { runExperiment(b, "tab2") }
func BenchmarkFig9ElasticThreading(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10CachingCost(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkFig11PersistentCost(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkFig12CaseStudies(b *testing.B)          { runExperiment(b, "fig12") }
func BenchmarkFig13aCompressionTradeoff(b *testing.B) { runExperiment(b, "fig13a") }
func BenchmarkFig13bCacheRatioTradeoff(b *testing.B)  { runExperiment(b, "fig13b") }
func BenchmarkTable3BreakEven(b *testing.B)           { runExperiment(b, "tab3") }
func BenchmarkShardScale(b *testing.B)                { runExperiment(b, "shardscale") }

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationCoalescing measures write-through group commit: storage
// round trips absorbed when many writers hit one key.
func BenchmarkAblationCoalescing(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "coalescing-on"
		if disabled {
			name = "coalescing-off"
		}
		b.Run(name, func(b *testing.B) {
			stor := cache.NewMapStorage()
			remote := cache.NewRemote(stor, 100*time.Microsecond)
			tr, err := cache.New(cache.Options{
				Policy: cache.WriteThrough, Engine: engine.New(engine.Options{}),
				Storage: remote, DisableCoalescing: disabled,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						tr.Set("hotkey", []byte{byte(i), byte(w)})
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			ops := float64(8 * b.N)
			b.ReportMetric(float64(remote.TotalRPCs())/ops, "rpc/op")
		})
	}
}

// BenchmarkAblationWriteBackBatch measures dirty-batch flushing: storage
// round trips per write as FlushBatch grows.
func BenchmarkAblationWriteBackBatch(b *testing.B) {
	for _, batch := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			stor := cache.NewMapStorage()
			remote := cache.NewRemote(stor, 0)
			tr, err := cache.New(cache.Options{
				Policy: cache.WriteBack, Engine: engine.New(engine.Options{}),
				Storage: remote, FlushBatch: batch, FlushInterval: time.Hour,
				MaxDirty: batch * 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Set(fmt.Sprintf("k%06d", i), []byte("v"))
			}
			tr.FlushDirty()
			b.StopTimer()
			b.ReportMetric(float64(remote.TotalRPCs())/float64(b.N), "rpc/op")
			tr.Close()
		})
	}
}

// BenchmarkAblationPMemBatch measures the DRAM-staging bulk-transfer
// optimization for PMem writes (§4.3).
func BenchmarkAblationPMemBatch(b *testing.B) {
	val := make([]byte, 256)
	for _, batched := range []bool{true, false} {
		name := "staged-64k"
		batchMax := 64 << 10
		if !batched {
			name = "unstaged"
			batchMax = 1 // degenerate staging: every put transfers
		}
		b.Run(name, func(b *testing.B) {
			dev := pmem.OpenVolatile(1<<30, pmem.DefaultLatency)
			arena := pmem.NewArena(dev, batchMax)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := arena.Put(val); err != nil {
					b.Fatal(err)
				}
			}
			arena.Sync()
		})
	}
}

// BenchmarkAblationBloom measures negative lookups with and without bloom
// filters on the LSM read path.
func BenchmarkAblationBloom(b *testing.B) {
	for _, bloom := range []bool{true, false} {
		name := "bloom-on"
		bpk := 10
		if !bloom {
			name = "bloom-off"
			bpk = -1
		}
		b.Run(name, func(b *testing.B) {
			db, err := lsm.Open(lsm.Options{
				Dir: b.TempDir(), DisableWAL: true, BloomBitsPerKey: bpk,
				MemtableBytes: 64 << 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < 5000; i++ {
				db.Put([]byte(fmt.Sprintf("present%06d", i)), []byte("v"))
			}
			db.Flush()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Get([]byte(fmt.Sprintf("absent%07d", i)))
			}
		})
	}
}

// BenchmarkAblationMemtable compares the skiplist memtable against a
// naive sorted-array alternative on mixed insert/lookup.
func BenchmarkAblationMemtable(b *testing.B) {
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i*2654435761%4096))
	}
	b.Run("skiplist", func(b *testing.B) {
		db, err := lsm.Open(lsm.Options{Dir: b.TempDir(), DisableWAL: true, MemtableBytes: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			db.Put(k, k)
			db.Get(k)
		}
	})
	b.Run("sorted-array", func(b *testing.B) {
		m := newSortedArrayMap()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			m.put(k, k)
			m.get(k)
		}
	})
}

// sortedArrayMap is the ablation strawman: binary-searched insertion.
type sortedArrayMap struct {
	keys [][]byte
	vals [][]byte
}

func newSortedArrayMap() *sortedArrayMap { return &sortedArrayMap{} }

func (m *sortedArrayMap) search(k []byte) (int, bool) {
	lo, hi := 0, len(m.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		c := compareBytes(m.keys[mid], k)
		if c == 0 {
			return mid, true
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, false
}

func (m *sortedArrayMap) put(k, v []byte) {
	i, ok := m.search(k)
	if ok {
		m.vals[i] = v
		return
	}
	m.keys = append(m.keys, nil)
	m.vals = append(m.vals, nil)
	copy(m.keys[i+1:], m.keys[i:])
	copy(m.vals[i+1:], m.vals[i:])
	m.keys[i], m.vals[i] = k, v
}

func (m *sortedArrayMap) get(k []byte) []byte {
	if i, ok := m.search(k); ok {
		return m.vals[i]
	}
	return nil
}

func compareBytes(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// --- component microbenchmarks ---

func BenchmarkEngineSet(b *testing.B) {
	e := engine.New(engine.Options{})
	val := workload.NewKV1().Record(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Set(fmt.Sprintf("k%07d", i%100000), val)
	}
}

func BenchmarkEngineGet(b *testing.B) {
	e := engine.New(engine.Options{})
	val := workload.NewKV1().Record(1)
	for i := 0; i < 100000; i++ {
		e.Set(fmt.Sprintf("k%07d", i), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Get(fmt.Sprintf("k%07d", i%100000))
	}
}

func BenchmarkCompressors(b *testing.B) {
	ds := workload.NewKV1()
	train := workload.Sample(ds, 300)
	recs := make([][]byte, 256)
	for i := range recs {
		recs[i] = ds.Record(int64(50000 + i))
	}
	for _, name := range []string{"pbc", "zstd-d", "zstd-b"} {
		c, err := compress.ByName(name, 0)
		if err != nil {
			b.Fatal(err)
		}
		c.Train(train)
		b.Run(name+"/compress", func(b *testing.B) {
			b.SetBytes(int64(len(recs[0])))
			for i := 0; i < b.N; i++ {
				c.Compress(recs[i%len(recs)])
			}
		})
		comp := make([][]byte, len(recs))
		for i := range recs {
			comp[i] = c.Compress(recs[i])
		}
		b.Run(name+"/decompress", func(b *testing.B) {
			b.SetBytes(int64(len(recs[0])))
			for i := 0; i < b.N; i++ {
				if _, err := c.Decompress(comp[i%len(comp)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLSMPut(b *testing.B) {
	db, err := lsm.Open(lsm.Options{Dir: b.TempDir(), DisableWAL: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := workload.NewKV2().Record(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Put([]byte(fmt.Sprintf("k%08d", i)), val)
	}
}

func BenchmarkLSMGet(b *testing.B) {
	db, err := lsm.Open(lsm.Options{Dir: b.TempDir(), DisableWAL: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := workload.NewKV2().Record(1)
	const n = 20000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("k%08d", i)), val)
	}
	db.Flush()
	db.CompactAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("k%08d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreTieredWriteBack(b *testing.B) {
	store, err := tierbase.Open(tierbase.Options{
		Policy: tierbase.WriteBack, Dir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	val := workload.NewKV1().Record(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Set(fmt.Sprintf("k%07d", i%50000), val)
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := workload.NewScrambledZipfian(1_000_000, workload.ZipfianTheta)
	rng := newBenchRand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next(rng)
	}
}

func newBenchRand() *rand.Rand { return rand.New(rand.NewSource(42)) }
