// Package tierbase is a workload-driven, cost-optimized key-value store —
// a from-scratch reproduction of "TierBase: A Workload-Driven
// Cost-Optimized Key-Value Store" (Shen et al., ICDE 2025).
//
// The package offers an embedded store with the paper's cost-saving
// machinery: a tiered cache/storage architecture with write-through or
// write-back synchronization, pre-trained compression (dictionary DEFLATE
// as the Zstd analog, plus pattern-based compression), a simulated
// persistent-memory tier, elastic threading, and the Space-Performance
// Cost Model for configuration selection.
//
// The cache-tier engine is lock-striped: keys hash onto power-of-two
// shards with independent locks, so concurrent operations on different
// keys proceed in parallel, and the batch API takes each stripe lock once
// per batch instead of once per key.
//
// Quick start:
//
//	store, err := tierbase.Open(tierbase.Options{})
//	if err != nil { ... }
//	defer store.Close()
//	store.Set("greeting", []byte("hello"))
//	v, _ := store.Get("greeting")
//
// Batch API — many keys, one pass through the striped engine (and, in
// tiered modes, one storage-tier round trip for the misses):
//
//	store.MSet(map[string][]byte{
//		"user:1": []byte("alice"),
//		"user:2": []byte("bob"),
//	})
//	vals, _ := store.MGet("user:1", "user:2", "user:3")
//	// vals["user:1"] == []byte("alice"); absent keys map to nil.
//
// A networked deployment (RESP protocol, Redis-compatible clients,
// including MGET/MSET) is available via cmd/tierbase-server; the
// experiment harness reproducing every table and figure of the paper
// lives in cmd/tierbase-bench.
package tierbase

import (
	"errors"
	"fmt"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/compress"
	"tierbase/internal/core"
	"tierbase/internal/elastic"
	"tierbase/internal/engine"
	"tierbase/internal/lsm"
	"tierbase/internal/pmem"
	"tierbase/internal/wal"
)

// Policy selects cache/storage synchronization (paper §4.1).
type Policy int

// Policies.
const (
	// CacheOnly keeps all data in the cache tier (no storage tier).
	CacheOnly Policy = iota
	// WriteThrough synchronously persists each write to the storage tier.
	WriteThrough
	// WriteBack acks from the cache tier and batches writes to storage.
	WriteBack
)

// Options configures a Store.
type Options struct {
	// Policy selects the tiering mode. WriteThrough and WriteBack
	// require Dir for the storage tier.
	Policy Policy
	// Dir hosts the storage tier (LSM) and WAL for persistent modes.
	Dir string
	// CacheCapacityBytes bounds cache-tier DRAM (0 = unbounded). With a
	// bound, cold entries evict to the storage tier (tiered modes).
	CacheCapacityBytes int64
	// Compression selects a value compressor: "", "pbc", "zstd-d"
	// (pre-trained dictionary), "zstd-b" (no dictionary).
	Compression string
	// CompressionLevel applies to the deflate-based compressors (1-9).
	CompressionLevel int
	// TrainingSamples pre-train the compressor (paper §4.2). Required
	// for "pbc" and "zstd-d" to be effective.
	TrainingSamples [][]byte
	// PMemBytes, when > 0, creates a simulated persistent-memory arena of
	// that size; values >= 64 B are offloaded to it (paper §4.3).
	PMemBytes int64
	// PMemPath persists the PMem device at this file (optional; default
	// volatile simulation).
	PMemPath string
	// Replicas adds synchronous cache-tier replicas (reliability; §4.1.2).
	Replicas int
	// ElasticThreading enables the single↔multi worker controller (§4.4);
	// otherwise Threads fixes the worker count (default 1, the paper's
	// default single-thread event-loop mode).
	ElasticThreading bool
	Threads          int
	// MaxThreads caps elastic growth (default 4).
	MaxThreads int
	// StorageRTT injects a disaggregation round-trip latency on storage
	// tier calls (models the remote hop; default 0).
	StorageRTT time.Duration
	// Shards is the number of cache-engine lock stripes (rounded up to a
	// power of two; default engine.DefaultShards). 1 disables striping.
	Shards int
}

// Store is an embedded TierBase instance.
type Store struct {
	opts   Options
	eng    *engine.Engine
	reps   []*engine.Engine
	tiered *cache.Tiered
	pool   *elastic.Pool
	db     *lsm.DB
	dev    *pmem.Device
	comp   compress.Compressor
	mon    *compress.Monitor
}

// Open builds a Store from options.
func Open(opts Options) (*Store, error) {
	s := &Store{opts: opts}

	engOpts := engine.Options{Shards: opts.Shards}
	if opts.Compression != "" {
		c, err := compress.ByName(opts.Compression, opts.CompressionLevel)
		if err != nil {
			return nil, err
		}
		if len(opts.TrainingSamples) > 0 {
			if err := c.Train(opts.TrainingSamples); err != nil {
				return nil, err
			}
		}
		s.comp = c
		s.mon = compress.NewMonitor(0)
		engOpts.Compressor = c
		engOpts.CompressMin = 16
		engOpts.Monitor = s.mon
	}
	if opts.PMemBytes > 0 {
		if opts.PMemPath != "" {
			dev, err := pmem.Open(opts.PMemPath, int(opts.PMemBytes), pmem.DefaultLatency)
			if err != nil {
				return nil, err
			}
			s.dev = dev
		} else {
			s.dev = pmem.OpenVolatile(int(opts.PMemBytes), pmem.Latency{})
		}
		engOpts.Arena = pmem.NewArena(s.dev, 0)
	}
	s.eng = engine.New(engOpts)
	for i := 0; i < opts.Replicas; i++ {
		s.reps = append(s.reps, engine.New(engOpts))
	}

	maxThreads := opts.MaxThreads
	if maxThreads <= 0 {
		maxThreads = 4
	}
	poolOpts := elastic.PoolOptions{MaxWorkers: maxThreads}
	if !opts.ElasticThreading {
		poolOpts.Fixed = opts.Threads
		if poolOpts.Fixed <= 0 {
			poolOpts.Fixed = 1
		}
	}
	s.pool = elastic.NewPool(poolOpts)

	cacheOpts := cache.Options{
		Engine:             s.eng,
		Replicas:           s.reps,
		CacheCapacityBytes: opts.CacheCapacityBytes,
	}
	switch opts.Policy {
	case CacheOnly:
		cacheOpts.Policy = cache.CacheOnly
	case WriteThrough, WriteBack:
		if opts.Dir == "" {
			s.pool.Stop()
			return nil, errors.New("tierbase: Dir required for tiered policies")
		}
		db, err := lsm.Open(lsm.Options{Dir: opts.Dir, WALSyncPolicy: wal.SyncInterval})
		if err != nil {
			s.pool.Stop()
			return nil, err
		}
		s.db = db
		var stor cache.Storage = cache.NewLSMStorage(db)
		if opts.StorageRTT > 0 {
			stor = cache.NewRemote(stor, opts.StorageRTT)
		}
		cacheOpts.Storage = stor
		if opts.Policy == WriteThrough {
			cacheOpts.Policy = cache.WriteThrough
		} else {
			cacheOpts.Policy = cache.WriteBack
		}
	default:
		s.pool.Stop()
		return nil, fmt.Errorf("tierbase: unknown policy %d", opts.Policy)
	}
	tr, err := cache.New(cacheOpts)
	if err != nil {
		s.pool.Stop()
		if s.db != nil {
			s.db.Close()
		}
		return nil, err
	}
	s.tiered = tr
	return s, nil
}

// Set stores key = val.
func (s *Store) Set(key string, val []byte) error {
	var err error
	if perr := s.pool.SubmitWait(func() { err = s.tiered.Set(key, val) }); perr != nil {
		return perr
	}
	return err
}

// Get fetches key; ErrNotFound when absent from both tiers.
func (s *Store) Get(key string) ([]byte, error) {
	var v []byte
	var err error
	if perr := s.pool.SubmitWait(func() { v, err = s.tiered.Get(key) }); perr != nil {
		return nil, perr
	}
	if err == cache.ErrNotFound || err == engine.ErrNotFound {
		return nil, ErrNotFound
	}
	return v, err
}

// Delete removes key from both tiers.
func (s *Store) Delete(key string) error {
	var err error
	if perr := s.pool.SubmitWait(func() { err = s.tiered.Delete(key) }); perr != nil {
		return perr
	}
	return err
}

// MGet fetches many keys at once: one striped pass over the cache tier
// plus, in tiered modes, a single storage round trip for the misses.
// Absent keys map to nil in the result.
func (s *Store) MGet(keys ...string) (map[string][]byte, error) {
	var out map[string][]byte
	var err error
	if perr := s.pool.SubmitWait(func() { out, err = s.tiered.BatchGet(keys) }); perr != nil {
		return nil, perr
	}
	return out, err
}

// MSet stores many pairs at once (nil value = delete): one striped pass
// over the cache tier plus, in tiered modes, a single storage round trip
// (write-through) or one dirty-batch admission (write-back).
func (s *Store) MSet(entries map[string][]byte) error {
	var err error
	if perr := s.pool.SubmitWait(func() { err = s.tiered.BatchPut(entries) }); perr != nil {
		return perr
	}
	return err
}

// BatchDelete removes many keys at once through every tier, returning how
// many existed (in cache, unflushed dirty state, or storage). Duplicate
// keys count at most once.
func (s *Store) BatchDelete(keys ...string) (int, error) {
	var n int
	var err error
	if perr := s.pool.SubmitWait(func() { n, err = s.tiered.BatchDelete(keys) }); perr != nil {
		return 0, perr
	}
	return n, err
}

// Update applies a read-modify-write; fn receives the current value (or
// exists=false) and returns the replacement (nil = delete).
func (s *Store) Update(key string, fn func(old []byte, exists bool) []byte) error {
	var err error
	if perr := s.pool.SubmitWait(func() { err = s.tiered.Update(key, fn) }); perr != nil {
		return perr
	}
	return err
}

// CompareAndSet swaps key's value only if it currently equals oldVal
// (nil oldVal = "absent"). Returns ErrCASMismatch on conflict.
func (s *Store) CompareAndSet(key string, oldVal, newVal []byte) error {
	var err error
	if perr := s.pool.SubmitWait(func() { err = s.eng.CompareAndSet(key, oldVal, newVal) }); perr != nil {
		return perr
	}
	if err == engine.ErrCASMismatch {
		return ErrCASMismatch
	}
	return err
}

// IncrBy adds delta to an integer value.
func (s *Store) IncrBy(key string, delta int64) (int64, error) {
	var v int64
	var err error
	if perr := s.pool.SubmitWait(func() { v, err = s.eng.IncrBy(key, delta) }); perr != nil {
		return 0, perr
	}
	return v, err
}

// Expire sets a TTL on key.
func (s *Store) Expire(key string, d time.Duration) bool {
	var ok bool
	s.pool.SubmitWait(func() { ok = s.eng.Expire(key, d) })
	return ok
}

// Engine exposes the cache-tier engine for data-structure commands
// (lists, sets, sorted sets, hashes) and advanced operations.
func (s *Store) Engine() *engine.Engine { return s.eng }

// Errors.
var (
	// ErrNotFound reports an absent key.
	ErrNotFound = errors.New("tierbase: key not found")
	// ErrCASMismatch reports a failed compare-and-set.
	ErrCASMismatch = errors.New("tierbase: compare-and-set mismatch")
)

// Stats summarizes store state for monitoring and cost measurement.
type Stats struct {
	Keys             int
	CacheMemBytes    int64
	PMemBytes        int64
	StorageDiskBytes int64
	Requests         int64
	Hits             int64
	Misses           int64
	MissRatio        float64
	DirtyEntries     int
	// BackpressureWaits counts write-back writers that blocked because
	// their write-path stripe's dirty budget was full.
	BackpressureWaits int64
	Workers           int
	CompressionRatio  float64 // observed compressed/raw (1 = none)
}

// Stats returns a snapshot.
func (s *Store) Stats() Stats {
	est := s.eng.Stats()
	cst := s.tiered.Stats()
	st := Stats{
		Keys:              est.Keys,
		CacheMemBytes:     est.MemBytes,
		PMemBytes:         est.PMemUsed,
		Requests:          cst.Requests,
		Hits:              cst.Hits,
		Misses:            cst.Misses,
		MissRatio:         s.tiered.MissRatio(),
		DirtyEntries:      cst.Dirty,
		BackpressureWaits: cst.BackpressureWaits,
		Workers:           s.pool.Workers(),
	}
	for _, r := range s.reps {
		st.CacheMemBytes += r.MemUsed()
	}
	if s.db != nil {
		st.StorageDiskBytes = s.db.Stats().DiskBytes
	}
	st.CompressionRatio = 1
	if s.mon != nil && s.mon.Records() > 0 {
		st.CompressionRatio = s.mon.Ratio()
	}
	return st
}

// FlushDirty forces write-back dirty data to the storage tier.
func (s *Store) FlushDirty() error { return s.tiered.FlushDirty() }

// Close flushes and releases all resources.
func (s *Store) Close() error {
	s.pool.Stop()
	err := s.tiered.Close()
	if s.db != nil {
		if derr := s.db.Close(); err == nil {
			err = derr
		}
	}
	if s.dev != nil {
		if perr := s.dev.Close(); err == nil {
			err = perr
		}
	}
	return err
}

// --- cost model re-exports (the paper's §2/§5 API) ---

// Cost-model types, re-exported from the internal implementation so
// downstream users can run the Space-Performance Cost Model directly.
type (
	// CostWorkload describes a workload's QPS and data volume.
	CostWorkload = core.Workload
	// CostInstance is a priced resource instance.
	CostInstance = core.Instance
	// CostMeasured is a configuration's measured capability.
	CostMeasured = core.Measured
	// CostEvaluation is a priced configuration.
	CostEvaluation = core.Evaluation
	// TieredCostInputs parameterizes the tiered cost model (Eq. 3).
	TieredCostInputs = core.TieredInputs
	// MissRatioCurve is MR = f(CR).
	MissRatioCurve = core.MRC
)

// StandardContainer is the paper's 1-core/4-GB relative cost unit.
var StandardContainer = core.StandardContainer

// OptimalConfig picks the min-max-cost configuration (Theorem 2.1).
func OptimalConfig(w CostWorkload, i CostInstance, configs []CostMeasured) (CostEvaluation, error) {
	return core.OptimalConfig(w, i, configs)
}

// TieredCost evaluates Equation 3 for a cache ratio and miss ratio.
func TieredCost(in TieredCostInputs, cr, mr float64) float64 {
	return core.TieredCost(in, cr, mr)
}

// OptimalCacheRatio solves Theorem 5.1 on a miss-ratio curve.
func OptimalCacheRatio(in TieredCostInputs, f MissRatioCurve) (cr, mr, cost float64) {
	return core.OptimalCacheRatio(in, f)
}

// BreakEvenInterval is the adapted Five-Minute Rule (Equation 5), in
// seconds.
func BreakEvenInterval(cpqpsSlow, cpgbFast, avgRecordBytes float64) float64 {
	return core.BreakEvenInterval(cpqpsSlow, cpgbFast, avgRecordBytes)
}

// BuildMRC estimates an empirical miss-ratio curve from a key trace.
func BuildMRC(keyTrace []string) MissRatioCurve {
	return core.BuildMRC(keyTrace).Curve(true)
}
