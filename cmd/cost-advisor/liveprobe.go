package main

import (
	"fmt"
	"math/rand"

	"tierbase/internal/cache"
	"tierbase/internal/core"
	"tierbase/internal/engine"
	"tierbase/internal/workload"
)

// liveProbe runs the described workload's key distribution through a real
// in-process tiered store (engine cache over map storage, write-through)
// and reports the measured miss ratio and per-stripe budget skew — the
// §2 cost model evaluated on live numbers instead of an assumed MR.
type liveProbe struct {
	keys       int
	ops        int
	cacheRatio float64 // cache capacity as a fraction of resident data bytes
	dist       string  // zipfian | uniform | hotspot | hotspot-shift
	adaptive   bool
}

// run builds the store, drives the workload, and prints the measurements.
// in carries the cost-model inputs derived from the synthetic probes so
// the measured MR prices directly against the analytic one.
func (p liveProbe) run(ds workload.Dataset, in core.TieredInputs) error {
	eng := engine.New(engine.Options{})
	store := cache.NewMapStorage()

	key := func(i int64) string { return fmt.Sprintf("probe%08d", i) }

	// Size the cache off the real resident footprint: load everything
	// unbounded once to measure, then rebuild bounded at ratio x that.
	for i := 0; i < p.keys; i++ {
		eng.Set(key(int64(i)), ds.Record(int64(i)))
	}
	dataBytes := eng.Stats().MemBytes
	eng.FlushAll()
	capBytes := int64(float64(dataBytes) * p.cacheRatio)
	if capBytes < 1 {
		capBytes = 1
	}

	t, err := cache.New(cache.Options{
		Policy:             cache.WriteThrough,
		Engine:             eng,
		Storage:            store,
		CacheCapacityBytes: capBytes,
		AdaptiveTiering:    p.adaptive,
	})
	if err != nil {
		return err
	}
	defer t.Close()
	for i := 0; i < p.keys; i++ {
		if err := t.Set(key(int64(i)), ds.Record(int64(i))); err != nil {
			return err
		}
	}

	var chooser workload.KeyChooser
	n := int64(p.keys)
	switch p.dist {
	case "uniform":
		chooser = workload.NewUniform(n)
	case "hotspot":
		chooser = workload.NewHotspot(n, 0.1, 0.9)
	case "hotspot-shift":
		chooser = workload.NewShiftingHotspot(n, 0.1, 0.9, int64(p.ops/4+1))
	default:
		chooser = workload.NewScrambledZipfian(n, workload.ZipfianTheta)
	}

	rng := rand.New(rand.NewSource(42))
	before := t.Stats()
	for i := 0; i < p.ops; i++ {
		if _, err := t.Get(key(chooser.Next(rng))); err != nil && err != cache.ErrNotFound {
			return err
		}
		// Deterministic rebalance cadence on top of the background loop, so
		// short probes adapt a bounded, run-independent number of times.
		if p.adaptive && i%4096 == 4095 {
			t.RebalanceNow()
		}
	}
	after := t.Stats()

	reads := float64(after.Hits - before.Hits + after.Misses - before.Misses)
	readMR := 0.0
	if reads > 0 {
		readMR = float64(after.Misses-before.Misses) / reads
	}
	fmt.Printf("\nlive cache-tier probe (in-process, write-through over map storage):\n")
	fmt.Printf("  distribution=%s keys=%d ops=%d cache-ratio=%.2f adaptive=%v capacity=%dB\n",
		p.dist, p.keys, p.ops, p.cacheRatio, p.adaptive, capBytes)
	fmt.Printf("  measured MissRatio(): %.4f (lifetime)   read-phase MR: %.4f   evictions: %d\n",
		t.MissRatio(), readMR, after.Evictions)

	ts := t.TieringStats()
	minB, maxB := ts.Stripes[0].BudgetBytes, ts.Stripes[0].BudgetBytes
	var sum int64
	for _, st := range ts.Stripes {
		if st.BudgetBytes < minB {
			minB = st.BudgetBytes
		}
		if st.BudgetBytes > maxB {
			maxB = st.BudgetBytes
		}
		sum += st.BudgetBytes
	}
	mean := float64(sum) / float64(len(ts.Stripes))
	fmt.Printf("  stripe budgets: %d stripes, min=%dB max=%dB mean=%.0fB (max/mean %.2fx)\n",
		len(ts.Stripes), minB, maxB, mean, float64(maxB)/mean)
	fmt.Printf("  rebalancer: %d rounds moved %dB (window hit rate %.4f)\n",
		ts.Rebalances, ts.BytesMoved, ts.WindowHitRate)

	// Price the cache tier (Eq. 6) at the measured MR vs the analytic
	// zipf-MRC estimate at the same cache ratio — the gap is what assuming
	// a distribution (instead of measuring) would cost.
	analyticMR := core.ZipfMRC(n, workload.ZipfianTheta)(p.cacheRatio)
	fmt.Printf("  cache-tier cost (Eq. 6): %.3f at measured MR vs %.3f at analytic zipf MR %.4f\n",
		core.CacheTierCost(in, p.cacheRatio, readMR),
		core.CacheTierCost(in, p.cacheRatio, analyticMR), analyticMR)
	return nil
}
