// Command cost-advisor applies the Space-Performance Cost Model (§2, §5)
// to a described workload: it micro-benchmarks the candidate TierBase
// configurations on a matching synthetic dataset, prices each with the
// cost metrics of Definition 2, and prints the optimal configuration
// (Theorem 2.1), the break-even intervals (Equation 5 / Table 3), and the
// storage recommendation for the workload's access interval.
//
// Usage:
//
//	cost-advisor -qps 80000 -data-gb 10 -read-ratio 0.95 -dataset kv1 \
//	             -access-interval 1018
package main

import (
	"flag"
	"fmt"
	"log"

	"tierbase/internal/compress"
	"tierbase/internal/core"
	"tierbase/internal/workload"
)

func main() {
	var (
		qps       = flag.Float64("qps", 80000, "workload queries per second")
		dataGB    = flag.Float64("data-gb", 10, "total data volume in GB")
		readRatio = flag.Float64("read-ratio", 0.95, "fraction of reads")
		dataset   = flag.String("dataset", "kv1", "value shape: cities | kv1 | kv2 | random")
		interval  = flag.Float64("access-interval", 0, "mean per-key access interval in seconds (0 = skip break-even advice)")
		refQPS    = flag.Float64("ref-qps", 100000, "assumed per-core QPS of the raw configuration (scales relative measurements to your fleet)")

		probeOps   = flag.Int("probe-ops", 200000, "live MR probe: reads driven through an in-process tiered store (0 = skip)")
		probeKeys  = flag.Int("probe-keys", 20000, "live MR probe: distinct keys")
		cacheRatio = flag.Float64("cache-ratio", 0.1, "live MR probe: cache capacity as a fraction of data bytes")
		probeDist  = flag.String("distribution", "zipfian", "live MR probe key distribution: zipfian | uniform | hotspot | hotspot-shift")
		adaptive   = flag.Bool("adaptive", true, "live MR probe: adaptive per-stripe budgets (false = static even split)")
	)
	flag.Parse()

	ds := workload.DatasetByName(*dataset)
	w := core.Workload{
		Name: "advised", QPS: *qps, DataSizeGB: *dataGB,
		ReadRatio: *readRatio, AvgRecordBytes: float64(ds.AvgRecordSize()),
	}

	fmt.Printf("workload: %.0f QPS, %.1f GB, %.0f%% reads, ~%dB records (%s-shaped)\n\n",
		w.QPS, w.DataSizeGB, w.ReadRatio*100, int(w.AvgRecordBytes), ds.Name())

	configs, err := measureConfigs(ds, *refQPS)
	if err != nil {
		log.Fatalf("cost-advisor: %v", err)
	}

	rep, err := core.FindOptimal(w, core.StandardContainer,
		configNames(configs), evaluator(configs), core.DefaultTolerance)
	if err != nil {
		log.Fatalf("cost-advisor: %v", err)
	}
	fmt.Println(rep.String())

	fmt.Println("break-even intervals (Eq. 5):")
	var ms []core.Measured
	for _, m := range configs {
		ms = append(ms, m)
	}
	for _, e := range core.BreakEvenTable(core.StandardContainer, ms, w.AvgRecordBytes) {
		fmt.Printf("  %-12s -> %-12s %10.1f s\n", e.Fast, e.Slow, e.IntervalS)
	}
	if *interval > 0 {
		best, err := core.RecommendStorage(core.StandardContainer, ms, w.AvgRecordBytes, *interval)
		if err == nil {
			fmt.Printf("\nfor a %.0f s mean access interval, use: %s\n", *interval, best.Config)
		}
	}

	if *probeOps > 0 {
		// Cache-tier inputs for the live probe: the raw config's smooth
		// PC/SC, with miss handling assumed 4x the cost of a hit (same
		// class of assumption as the relSpeed factors above).
		raw := configs["raw"]
		in := core.TieredInputs{
			PCCache: core.SmoothPC(w, core.StandardContainer, raw),
			SCCache: core.SmoothSC(w, core.StandardContainer, raw),
			PCMiss:  core.StandardContainer.Cost / (*refQPS / 4) * w.QPS,
		}
		p := liveProbe{
			keys: *probeKeys, ops: *probeOps, cacheRatio: *cacheRatio,
			dist: *probeDist, adaptive: *adaptive,
		}
		if err := p.run(ds, in); err != nil {
			log.Fatalf("cost-advisor: live probe: %v", err)
		}
	}
}

// measureConfigs runs quick capability probes for the candidate
// configurations, normalized so the raw config hits refQPS per core.
func measureConfigs(ds workload.Dataset, refQPS float64) (map[string]core.Measured, error) {
	// Space capability from record-level overhead probes; performance
	// scaled against the raw configuration's relative throughput.
	type probe struct {
		name     string
		comp     string
		relSpeed float64 // rough relative QPS vs raw (measured in tab2-style probes)
		pmem     bool
	}
	probes := []probe{
		{name: "raw", relSpeed: 1.0},
		{name: "pmem", relSpeed: 0.85, pmem: true},
		{name: "zstd-d", comp: "zstd-d", relSpeed: 0.55},
		{name: "pbc", comp: "pbc", relSpeed: 0.6},
	}
	out := map[string]core.Measured{}
	samples := workload.Sample(ds, 400)
	for _, p := range probes {
		overhead, err := probeOverhead(p.comp, samples)
		if err != nil {
			return nil, err
		}
		memGB := 4.0 * 0.85 // standard container, usable fraction
		maxSpace := memGB / overhead
		if p.pmem {
			// PMem container: values (~85% of bytes) go to a 12 GB PMem
			// extension, keys/index stay in DRAM.
			maxSpace = (4.0 * 0.85) / (overhead * 0.15) * 0.15
			maxSpace += 12.0 * 0.85 / (overhead * 0.85) * 0.85
		}
		out[p.name] = core.Measured{
			Config:     p.name,
			MaxPerfQPS: refQPS * p.relSpeed,
			MaxSpaceGB: maxSpace,
		}
	}
	return out, nil
}

// probeOverhead measures physical-per-logical bytes for a compressor.
func probeOverhead(comp string, samples [][]byte) (float64, error) {
	var logical, physical int64
	var c compress.Compressor
	if comp != "" {
		cc, err := compress.ByName(comp, 0)
		if err != nil {
			return 0, err
		}
		if err := cc.Train(samples[:len(samples)/2]); err != nil {
			return 0, err
		}
		c = cc
	}
	for _, rec := range samples[len(samples)/2:] {
		logical += int64(len(rec)) + 16 // key bytes
		body := rec
		if c != nil {
			body = c.Compress(rec)
		}
		physical += int64(len(body)) + 16 + 64 // key + item overhead
	}
	return float64(physical) / float64(logical), nil
}

func configNames(m map[string]core.Measured) []core.Config {
	out := make([]core.Config, 0, len(m))
	for name := range m {
		out = append(out, core.Config{Name: name})
	}
	return out
}

func evaluator(m map[string]core.Measured) core.ConfigEvaluator {
	return core.ConfigEvaluatorFunc(func(cfg core.Config) (core.Measured, error) {
		meas, ok := m[cfg.Name]
		if !ok {
			return core.Measured{}, fmt.Errorf("unknown config %s", cfg.Name)
		}
		return meas, nil
	})
}
