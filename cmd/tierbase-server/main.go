// Command tierbase-server runs a TierBase RESP server (Redis-compatible
// wire protocol) with configurable sharding, tiering policy, compression
// and elastic threading.
//
// Usage:
//
//	tierbase-server -addr :6380 -shards 4 -policy write-back -dir /data/tb
//	redis-cli -p 6380 SET greeting hello
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/compress"
	"tierbase/internal/elastic"
	"tierbase/internal/engine"
	"tierbase/internal/lsm"
	"tierbase/internal/server"
	"tierbase/internal/wal"
	"tierbase/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:6380", "listen address")
		shards      = flag.Int("shards", 1, "data-node shards in this process")
		policy      = flag.String("policy", "cache-only", "cache-only | write-through | write-back")
		dir         = flag.String("dir", "", "storage-tier directory (tiered policies)")
		compression = flag.String("compression", "", "value compressor: pbc | zstd-d | zstd-b")
		trainOn     = flag.String("train-on", "kv1", "dataset for compressor pre-training: cities | kv1 | kv2")
		elasticOn   = flag.Bool("elastic", true, "enable elastic threading")
		maxWorkers  = flag.Int("max-workers", 4, "CPU budget per shard")
		cacheBytes  = flag.Int64("cache-bytes", 0, "cache capacity per shard (0 = unbounded)")
		boostDepth  = flag.Int("boost-depth", 0, "queue backlog that triggers boost mode (0 = server default)")
		queueSize   = flag.Int("queue-size", 0, "pending task queue bound per shard (0 = default)")
		cooldown    = flag.Int("cooldown-ticks", 0, "calm evaluations before shrinking back to single mode (0 = default)")
		evalEvery   = flag.Duration("eval-interval", 0, "elastic controller period (0 = default)")
		boostRate   = flag.Float64("boost-rate", 0, "windowed submit rate (tasks/sec) that triggers boost mode (0 = depth-only)")

		adaptive      = flag.Bool("adaptive-tiering", false, "rebalance per-stripe cache budgets toward the observed workload (needs -cache-bytes)")
		rebalanceTick = flag.Duration("rebalance-interval", 0, "adaptive rebalancer period (0 = default 100ms)")
		targetHitRate = flag.Float64("target-hit-rate", 0, "adaptive total sizing: grow/shrink cache toward this hit rate (0 = off)")

		nodeID        = flag.String("node-id", "", "cluster node id (enables replication)")
		advertise     = flag.String("advertise", "", "address other nodes reach this one at (default: listen addr)")
		replicaOf     = flag.String("replicaof", "", "start as a replica of host:port")
		coordinator   = flag.String("coordinator", "", "coordinator address to register with and heartbeat to")
		semiSyncAcks  = flag.Int("semisync-acks", 0, "replicas that must ack each write (0 = async)")
		ackTimeout    = flag.Duration("ack-timeout", 0, "semi-sync wait bound (0 = default 2s)")
		replLogCap    = flag.Int("repl-log-cap", 0, "retained op-log window (0 = default)")
		heartbeatTick = flag.Duration("heartbeat-interval", 0, "coordinator heartbeat period (0 = default 500ms)")

		replWriteTimeout = flag.Duration("repl-write-timeout", 0, "per-frame replication write bound (0 = default 5s)")
		replKeepalive    = flag.Duration("repl-keepalive", 0, "master->replica ping period (0 = default 1s)")
		replReadTimeout  = flag.Duration("repl-read-timeout", 0, "replication link read bound (0 = default 4x keepalive)")
		shedBacklog      = flag.Int("shed-backlog", 0, "unacked-op backlog that sheds a laggard replica (0 = default log-cap/2, negative disables)")
		snapChunkBytes   = flag.Int("snapshot-chunk-bytes", 0, "full-sync snapshot bytes buffered per chunk (0 = default 1MiB)")

		maxConns       = flag.Int("max-conns", 0, "client connection cap, excess refused with -MAXCONN (0 = unlimited)")
		maxOutputBytes = flag.Int("max-output-bytes", 0, "per-connection reply buffer cap before the client is shed (0 = default 32MiB, negative disables)")
		readTimeout    = flag.Duration("read-timeout", 0, "idle/partial-command read bound per connection (0 = disabled)")
		writeTimeout   = flag.Duration("write-timeout", 0, "reply flush bound before a slow reader is shed (0 = default 30s, negative disables)")
		highWatermark  = flag.Int64("high-watermark-bytes", 0, "memory level at which writes fail fast with -OVERLOADED (0 = watermark gate off)")
		lowWatermark   = flag.Int64("low-watermark-bytes", 0, "memory level at which writes resume (0 = 90% of high)")
		drainTimeout   = flag.Duration("drain-timeout", 0, "graceful-drain bound on SIGTERM before remaining connections are cut (0 = default 10s)")
	)
	flag.Parse()

	engOpts := engine.Options{}
	if *compression != "" {
		c, err := compress.ByName(*compression, 0)
		if err != nil {
			log.Fatalf("tierbase-server: %v", err)
		}
		ds := workload.DatasetByName(*trainOn)
		if err := c.Train(workload.Sample(ds, 500)); err != nil {
			log.Fatalf("tierbase-server: train: %v", err)
		}
		engOpts.Compressor = c
		engOpts.CompressMin = 16
		log.Printf("compression: %s pre-trained on %s samples", c.Name(), ds.Name())
	}

	// Everything the process needs lives in one validated server.Config.
	opts := server.Config{
		Addr:          *addr,
		Shards:        *shards,
		EngineOptions: engOpts,
		Pool: elastic.PoolOptions{
			MaxWorkers:      *maxWorkers,
			BoostQueueDepth: *boostDepth,
			BoostSubmitRate: *boostRate,
			QueueSize:       *queueSize,
			CooldownTicks:   *cooldown,
			EvalInterval:    *evalEvery,
		},
		Replication: server.ReplicationConfig{
			NodeID:             *nodeID,
			AdvertiseAddr:      *advertise,
			MasterAddr:         *replicaOf,
			CoordinatorAddr:    *coordinator,
			SemiSyncAcks:       *semiSyncAcks,
			AckTimeout:         *ackTimeout,
			LogCap:             *replLogCap,
			HeartbeatInterval:  *heartbeatTick,
			WriteTimeout:       *replWriteTimeout,
			KeepaliveInterval:  *replKeepalive,
			ReadTimeout:        *replReadTimeout,
			ShedBacklog:        *shedBacklog,
			SnapshotChunkBytes: *snapChunkBytes,
		},
		Overload: server.OverloadConfig{
			MaxConns:           *maxConns,
			MaxOutputBytes:     *maxOutputBytes,
			ReadTimeout:        *readTimeout,
			WriteTimeout:       *writeTimeout,
			HighWatermarkBytes: *highWatermark,
			LowWatermarkBytes:  *lowWatermark,
			DrainTimeout:       *drainTimeout,
		},
	}
	if !*elasticOn {
		opts.Pool.Fixed = 1
	}
	if err := opts.Validate(); err != nil {
		log.Fatalf("tierbase-server: %v", err)
	}

	var cachePolicy cache.Policy
	switch *policy {
	case "cache-only":
		cachePolicy = cache.CacheOnly
	case "write-through":
		cachePolicy = cache.WriteThrough
	case "write-back":
		cachePolicy = cache.WriteBack
	default:
		log.Fatalf("tierbase-server: unknown policy %q", *policy)
	}
	if (*adaptive || *targetHitRate > 0) && *cacheBytes <= 0 {
		log.Fatal("tierbase-server: -adaptive-tiering/-target-hit-rate require -cache-bytes > 0")
	}
	var dbs []*lsm.DB
	if cachePolicy != cache.CacheOnly {
		if *dir == "" {
			log.Fatal("tierbase-server: -dir required for tiered policies")
		}
		shardNum := 0
		opts.TieredFactory = func(eng *engine.Engine) (*cache.Tiered, error) {
			shardDir := filepath.Join(*dir, fmt.Sprintf("shard%03d", shardNum))
			shardNum++
			db, err := lsm.Open(lsm.Options{Dir: shardDir, WALSyncPolicy: wal.SyncInterval})
			if err != nil {
				return nil, err
			}
			dbs = append(dbs, db)
			return cache.New(cache.Options{
				Policy:             cachePolicy,
				Engine:             eng,
				Storage:            cache.NewLSMStorage(db),
				CacheCapacityBytes: *cacheBytes,
				AdaptiveTiering:    *adaptive,
				RebalanceInterval:  *rebalanceTick,
				TargetHitRate:      *targetHitRate,
			})
		}
		// INFO storage: per-shard LSM counters (flush backlog, level
		// shape, write volume). Closes over dbs, which TieredFactory
		// fills during server.Start.
		opts.StorageStats = func() []lsm.Stats {
			out := make([]lsm.Stats, len(dbs))
			for i, db := range dbs {
				out[i] = db.Stats()
			}
			return out
		}
	}

	srv, err := server.Start(opts)
	if err != nil {
		log.Fatalf("tierbase-server: %v", err)
	}
	role := ""
	if *nodeID != "" {
		role = " as master " + *nodeID
		if *replicaOf != "" {
			role = fmt.Sprintf(" as replica %s of %s", *nodeID, *replicaOf)
		}
	}
	log.Printf("tierbase-server listening on %s (%d shards, %s policy)%s", srv.Addr(), *shards, *policy, role)

	// Periodic monitor line (the Monitor component of §3).
	go func() {
		for range time.Tick(10 * time.Second) {
			log.Printf("throughput=%.0f/s p99=%s", srv.Throughput.Rate(), time.Duration(srv.Latency.P99()))
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	if s == syscall.SIGTERM {
		// Graceful drain: deregister from the coordinator, stop
		// accepting, finish in-flight commands, flush write-back dirty
		// state, then close. SIGINT keeps the fast path for interactive
		// kills.
		log.Print("draining (SIGTERM)")
		if err := srv.Shutdown(); err != nil {
			log.Printf("shutdown: %v", err)
		}
	} else {
		log.Print("shutting down")
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
	// Close the storage tier AFTER the server: srv.Close flushes each
	// shard's write-back dirty set into the LSM, and db.Close syncs the
	// WAL — without it, the last SyncEvery window of flushed writes sits
	// in an unsynced WAL buffer and dies with the process.
	for _, db := range dbs {
		if err := db.Close(); err != nil {
			log.Printf("lsm close: %v", err)
		}
	}
}
