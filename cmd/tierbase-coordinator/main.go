// Command tierbase-coordinator runs the TierBase coordinator: the small
// control-plane process data nodes register with and heartbeat to
// (paper §3's coordinator cluster). It owns the slot routing table,
// detects master failures by heartbeat timeout, promotes a replica, and
// pushes REPLICAOF to the affected live nodes.
//
// Usage:
//
//	tierbase-coordinator -addr :7000 -heartbeat-timeout 2s -check-interval 500ms
//	tierbase-server -addr :6380 -node-id m1 -coordinator 127.0.0.1:7000
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tierbase/internal/cluster"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7000", "listen address")
		hbTimeout     = flag.Duration("heartbeat-timeout", 2*time.Second, "silence after which a node is failed")
		checkInterval = flag.Duration("check-interval", 500*time.Millisecond, "failure-detection sweep period (0 disables failover)")
	)
	flag.Parse()

	coord := cluster.NewCoordinator()
	coord.HeartbeatTimeout = *hbTimeout

	cs, err := cluster.StartCoordServer(*addr, coord, *checkInterval)
	if err != nil {
		log.Fatalf("tierbase-coordinator: %v", err)
	}
	cs.Logf = log.Printf
	log.Printf("tierbase-coordinator listening on %s (heartbeat timeout %v, check every %v)",
		cs.Addr(), *hbTimeout, *checkInterval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	cs.Close()
}
