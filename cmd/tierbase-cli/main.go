// Command tierbase-cli is an interactive client for tierbase-server
// (or any RESP server). Commands are read from stdin, one per line.
//
// Usage:
//
//	tierbase-cli -addr 127.0.0.1:6380
//	> SET greeting hello
//	OK
//	> GET greeting
//	"hello"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tierbase/internal/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "server address")
	flag.Parse()

	c, err := client.Dial(*addr)
	if err != nil {
		log.Fatalf("tierbase-cli: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		log.Fatalf("tierbase-cli: ping: %v", err)
	}
	fmt.Printf("connected to %s\n", *addr)

	// Non-interactive mode: command from argv.
	if args := flag.Args(); len(args) > 0 {
		v, err := c.Do(args...)
		printCommandReply(args, v, err)
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			fmt.Print("> ")
			continue
		}
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return
		}
		args := tokenize(line)
		v, err := c.Do(args...)
		printCommandReply(args, v, err)
		fmt.Print("> ")
	}
}

// tokenize splits a command line, honoring double quotes.
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		switch ch := line[i]; {
		case ch == '"':
			inQuote = !inQuote
		case ch == ' ' && !inQuote:
			flush()
		default:
			cur.WriteByte(ch)
		}
	}
	flush()
	return out
}

func printCommandReply(args []string, v interface{}, err error) {
	switch {
	case err == client.Nil:
		fmt.Println("(nil)")
	case err != nil:
		fmt.Printf("(error) %v\n", err)
	case len(args) > 0 && strings.EqualFold(args[0], "INFO"):
		// INFO's bulk reply is a CRLF-separated report: print the lines
		// raw instead of one quoted blob full of \r\n escapes. Keyed on
		// the command, not on reply content — a GET value that happens to
		// contain CRLF bytes must still print as one quoted string.
		if s, ok := v.(string); ok {
			for _, line := range strings.Split(strings.TrimRight(s, "\r\n"), "\r\n") {
				fmt.Println(line)
			}
			return
		}
		printValue(v, "")
	default:
		printValue(v, "")
	}
}

func printValue(v interface{}, indent string) {
	switch x := v.(type) {
	case string:
		fmt.Printf("%s%q\n", indent, x)
	case int64:
		fmt.Printf("%s(integer) %d\n", indent, x)
	case []interface{}:
		if len(x) == 0 {
			fmt.Printf("%s(empty array)\n", indent)
			return
		}
		for i, el := range x {
			fmt.Printf("%s%d) ", indent, i+1)
			if el == nil {
				fmt.Println("(nil)")
			} else {
				printValue(el, "")
			}
		}
	default:
		fmt.Printf("%s%v\n", indent, x)
	}
}
