package main

import "testing"

func TestParseLineBasic(t *testing.T) {
	r, ok := parseLine("BenchmarkTieredBatchGet-8   68431   17450 ns/op   2912 B/op   34 allocs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.Name != "BenchmarkTieredBatchGet" || r.CPUs != 8 {
		t.Fatalf("name/cpus: %q %d", r.Name, r.CPUs)
	}
	if r.Iterations != 68431 || r.NsPerOp != 17450 {
		t.Fatalf("iters/ns: %d %f", r.Iterations, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 2912 {
		t.Fatalf("B/op: %v", r.BytesPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 34 {
		t.Fatalf("allocs/op: %v", r.AllocsPerOp)
	}
	if len(r.Extra) != 0 {
		t.Fatalf("unexpected extra: %v", r.Extra)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	// The client mux benchmarks report drain-window shape via
	// b.ReportMetric; those custom units must land in Extra.
	r, ok := parseLine("BenchmarkMuxGet64GoroutinesRTT1ms-8   6378   37648 ns/op   23.98 reqs/flush   0.035 flushes/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.NsPerOp != 37648 {
		t.Fatalf("ns/op: %f", r.NsPerOp)
	}
	if got := r.Extra["reqs/flush"]; got != 23.98 {
		t.Fatalf("reqs/flush: %v (extra=%v)", got, r.Extra)
	}
	if got := r.Extra["flushes/op"]; got != 0.035 {
		t.Fatalf("flushes/op: %v", got)
	}
}

func TestParseLineSkipsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \ttierbase/internal/client\t1.9s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoNs-8 100 12 somethingelse",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q should not parse", line)
		}
	}
}

func TestParseLineNoCPUSuffix(t *testing.T) {
	r, ok := parseLine("BenchmarkPlain 100 250 ns/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.Name != "BenchmarkPlain" || r.CPUs != 1 {
		t.Fatalf("name/cpus: %q %d", r.Name, r.CPUs)
	}
}
