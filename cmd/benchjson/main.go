// Command benchjson converts `go test -bench` output (stdin) into a JSON
// array (stdout) — the machine-readable perf-trajectory artifact CI
// uploads as BENCH_<sha>.json alongside the raw bench.txt, so benchmark
// results across pushes can be diffed without reparsing text.
//
// Usage:
//
//	go test -bench . -benchtime 1x ./... | benchjson > BENCH_abc123.json
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// skipped. The -cpu suffix on a benchmark name ("-8") is split into its
// own field so the same benchmark across GOMAXPROCS legs groups cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	CPUs        int     `json:"cpus"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Extra collects custom b.ReportMetric units (e.g. the client mux
	// benchmarks' "flushes/op", "reqs/flush"), keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []result{} // empty input: emit [], not null
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkTieredBatchGet-8   68431   17450 ns/op   2912 B/op   34 allocs/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	r := result{Name: fields[0], CPUs: 1}
	if i := strings.LastIndex(fields[0], "-"); i > 0 {
		if n, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			r.Name, r.CPUs = fields[0][:i], n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in "<value> <unit>" pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			n := int64(v)
			r.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			r.AllocsPerOp = &n
		default:
			// Custom b.ReportMetric units and b.SetBytes throughput are
			// always rates ("flushes/op", "reqs/flush", "MB/s"); anything
			// without a slash is not a metric unit and is skipped.
			if strings.Contains(fields[i+1], "/") {
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[fields[i+1]] = v
			}
		}
	}
	return r, seenNs
}
