// Command tierbase-bench regenerates the paper's evaluation tables and
// figures (§6). Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	tierbase-bench -list
//	tierbase-bench -experiment fig10
//	tierbase-bench -experiment all -scale 2.0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tierbase/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1, fig7..fig13b, tab2, tab3) or 'all'")
		scale      = flag.Float64("scale", 1.0, "workload scale multiplier")
		dir        = flag.String("dir", "", "scratch directory (default: temp)")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "tierbase-bench")
		if err != nil {
			log.Fatalf("tierbase-bench: %v", err)
		}
		defer os.RemoveAll(scratch)
	}
	opts := bench.RunOpts{Scale: *scale, Dir: scratch}

	run := func(e bench.Experiment) {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			log.Printf("%s: FAILED: %v", e.ID, err)
			return
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range bench.Registry() {
			run(e)
		}
		return
	}
	e, ok := bench.ByID(*experiment)
	if !ok {
		log.Fatalf("tierbase-bench: unknown experiment %q (use -list)", *experiment)
	}
	run(e)
}
