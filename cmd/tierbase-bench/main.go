// Command tierbase-bench regenerates the paper's evaluation tables and
// figures (§6). Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// With -addr it instead becomes a networked load generator: it drives a
// live tierbase-server over RESP through the multiplexed client and
// reports throughput plus latency percentiles, so client-tier wins are
// measurable outside `go test -bench`.
//
// Usage:
//
//	tierbase-bench -list
//	tierbase-bench -experiment fig10
//	tierbase-bench -experiment all -scale 2.0
//	tierbase-bench -addr 127.0.0.1:6380 -clients 64 -conns 1 -ops 200000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/bench"
	"tierbase/internal/client"
	"tierbase/internal/metrics"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1, fig7..fig13b, tab2, tab3) or 'all'")
		scale      = flag.Float64("scale", 1.0, "workload scale multiplier")
		dir        = flag.String("dir", "", "scratch directory (default: temp)")
		list       = flag.Bool("list", false, "list experiments and exit")

		// Networked-mode flags (active when -addr is set).
		addr     = flag.String("addr", "", "drive a live RESP server at this address instead of running experiments")
		clients  = flag.Int("clients", 64, "networked: concurrent caller goroutines")
		conns    = flag.Int("conns", 1, "networked: multiplexed connections shared round-robin by the callers")
		ops      = flag.Int("ops", 100000, "networked: total operations")
		readPct  = flag.Int("readpct", 90, "networked: percentage of reads (rest are writes)")
		keyspace = flag.Int("keyspace", 10000, "networked: distinct keys (prefilled)")
		valSize  = flag.Int("valsize", 64, "networked: value size in bytes")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *addr != "" {
		if err := runNetBench(netOpts{
			addr: *addr, clients: *clients, conns: *conns, ops: *ops,
			readPct: *readPct, keyspace: *keyspace, valSize: *valSize,
		}); err != nil {
			log.Fatalf("tierbase-bench: %v", err)
		}
		return
	}

	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "tierbase-bench")
		if err != nil {
			log.Fatalf("tierbase-bench: %v", err)
		}
		defer os.RemoveAll(scratch)
	}
	opts := bench.RunOpts{Scale: *scale, Dir: scratch}

	run := func(e bench.Experiment) {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			log.Printf("%s: FAILED: %v", e.ID, err)
			return
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range bench.Registry() {
			run(e)
		}
		return
	}
	e, ok := bench.ByID(*experiment)
	if !ok {
		log.Fatalf("tierbase-bench: unknown experiment %q (use -list)", *experiment)
	}
	run(e)
}

// --- networked load mode ---

type netOpts struct {
	addr     string
	clients  int
	conns    int
	ops      int
	readPct  int
	keyspace int
	valSize  int
}

// runNetBench drives a live server: N caller goroutines share M
// multiplexed connections round-robin, every per-op latency lands in one
// metrics histogram, and the mux counters show how far the drain windows
// amortized the round trips.
func runNetBench(o netOpts) error {
	if o.clients < 1 || o.conns < 1 || o.ops < 1 || o.keyspace < 1 {
		return fmt.Errorf("clients, conns, ops and keyspace must be positive")
	}
	muxes := make([]*client.Client, o.conns)
	for i := range muxes {
		c, err := client.Dial(o.addr)
		if err != nil {
			return err
		}
		defer c.Close()
		muxes[i] = c
	}
	if err := muxes[0].Ping(); err != nil {
		return err
	}
	fmt.Printf("networked bench: addr=%s clients=%d conns=%d ops=%d read%%=%d keyspace=%d valsize=%d\n",
		o.addr, o.clients, o.conns, o.ops, o.readPct, o.keyspace, o.valSize)

	key := func(i int) string { return fmt.Sprintf("netbench:%08d", i) }
	value := make([]byte, o.valSize)
	for i := range value {
		value[i] = 'a' + byte(i%26)
	}
	val := string(value)

	// Prefill so reads always hit, in chunked MSETs.
	prefillStart := time.Now()
	const chunk = 512
	for lo := 0; lo < o.keyspace; lo += chunk {
		hi := lo + chunk
		if hi > o.keyspace {
			hi = o.keyspace
		}
		pairs := make(map[string]string, hi-lo)
		for i := lo; i < hi; i++ {
			pairs[key(i)] = val
		}
		if err := muxes[lo/chunk%o.conns].MSet(pairs); err != nil {
			return fmt.Errorf("prefill: %w", err)
		}
	}
	fmt.Printf("prefill: %d keys in %s\n", o.keyspace, time.Since(prefillStart).Round(time.Millisecond))

	hist := metrics.NewHistogram()
	var opErrs atomic.Int64
	var cursor atomic.Int64
	var wg sync.WaitGroup
	// Client-process allocation gauge: the mux client's hot path is meant
	// to be allocation-light, so the per-op malloc count is a regression
	// canary (server-side allocs are covered by internal/server's
	// -benchmem benchmarks, which run the server in-process).
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for g := 0; g < o.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*7919 + 1))
			c := muxes[g%o.conns]
			for {
				if int(cursor.Add(1)) > o.ops {
					return
				}
				k := key(rng.Intn(o.keyspace))
				opStart := time.Now()
				var err error
				if rng.Intn(100) < o.readPct {
					_, err = c.Get(k)
				} else {
					err = c.Set(k, val)
				}
				if err != nil {
					// Failed ops (e.g. fast-fails on a sticky-broken
					// connection) must not pollute the latency
					// distribution or count as served throughput.
					opErrs.Add(1)
					continue
				}
				hist.RecordDuration(time.Since(opStart))
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	snap := hist.Snapshot()
	okOps := o.ops - int(opErrs.Load())
	fmt.Printf("throughput: %.0f ops/s (%d ok / %d failed in %s)\n",
		float64(okOps)/elapsed.Seconds(), okOps, opErrs.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("latency: %s p90=%s p999=%s\n",
		snap.String(), time.Duration(snap.P90), time.Duration(snap.P999))
	var agg client.MuxStats
	for _, c := range muxes {
		st := c.Stats()
		agg.Requests += st.Requests
		agg.WireCommands += st.WireCommands
		agg.Flushes += st.Flushes
		agg.CoalescedGets += st.CoalescedGets
		agg.CoalescedSets += st.CoalescedSets
	}
	window := 0.0
	if agg.Flushes > 0 {
		window = float64(agg.Requests) / float64(agg.Flushes)
	}
	fmt.Printf("mux: requests=%d wire_cmds=%d flushes=%d coalesced_gets=%d coalesced_sets=%d avg_window=%.1f\n",
		agg.Requests, agg.WireCommands, agg.Flushes, agg.CoalescedGets, agg.CoalescedSets, window)
	if okOps > 0 {
		fmt.Printf("client mem: %.1f allocs/op %.0f B/op\n",
			float64(memAfter.Mallocs-memBefore.Mallocs)/float64(okOps),
			float64(memAfter.TotalAlloc-memBefore.TotalAlloc)/float64(okOps))
	}
	printElasticState(muxes[0])
	if n := opErrs.Load(); n > 0 {
		return fmt.Errorf("%d operations failed", n)
	}
	return nil
}

// printElasticState reports each shard's elastic pool state from INFO
// server — whether the run pushed the server into boost mode (and how
// often it boosted) is part of the result, not something to infer from
// throughput alone.
func printElasticState(c *client.Client) {
	v, err := c.Do("INFO", "server")
	if err != nil {
		return // an old server without INFO is still benchable
	}
	s, ok := v.(string)
	if !ok {
		return
	}
	fmt.Println("server elastic state:")
	for _, line := range strings.Split(strings.TrimRight(s, "\r\n"), "\r\n") {
		if strings.Contains(line, "_mode:") || strings.Contains(line, "_workers:") ||
			strings.Contains(line, "_boosts:") || strings.Contains(line, "_shrinks:") ||
			strings.Contains(line, "_queue_depth:") || strings.Contains(line, "_tasks:") {
			fmt.Printf("  %s\n", line)
		}
	}
}
