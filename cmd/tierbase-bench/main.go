// Command tierbase-bench regenerates the paper's evaluation tables and
// figures (§6). Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// With -addr it instead becomes a networked load generator: it drives a
// live tierbase-server over RESP through the multiplexed client and
// reports throughput plus latency percentiles, so client-tier wins are
// measurable outside `go test -bench`.
//
// Usage:
//
//	tierbase-bench -list
//	tierbase-bench -experiment fig10
//	tierbase-bench -experiment all -scale 2.0
//	tierbase-bench -addr 127.0.0.1:6380 -clients 64 -conns 1 -ops 200000
//	tierbase-bench -coordinator 127.0.0.1:7000 -clients 32 -ops 200000
//	tierbase-bench -addr 127.0.0.1:6380 -chaos slow-replica -chaos-listen 127.0.0.1:7381
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/bench"
	"tierbase/internal/client"
	"tierbase/internal/faults"
	"tierbase/internal/metrics"
	"tierbase/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1, fig7..fig13b, tab2, tab3) or 'all'")
		scale      = flag.Float64("scale", 1.0, "workload scale multiplier")
		dir        = flag.String("dir", "", "scratch directory (default: temp)")
		list       = flag.Bool("list", false, "list experiments and exit")

		// Networked-mode flags (active when -addr or -coordinator is set).
		addr     = flag.String("addr", "", "drive a live RESP server at this address instead of running experiments")
		coord    = flag.String("coordinator", "", "drive a live cluster via this coordinator's routing table (slot-aware, survives failover)")
		clients  = flag.Int("clients", 64, "networked: concurrent caller goroutines")
		conns    = flag.Int("conns", 1, "networked: multiplexed connections shared round-robin by the callers")
		ops      = flag.Int("ops", 100000, "networked: total operations")
		readPct  = flag.Int("readpct", 90, "networked: percentage of reads (rest are writes)")
		keyspace = flag.Int("keyspace", 10000, "networked: distinct keys (prefilled)")
		valSize  = flag.Int("valsize", 64, "networked: value size in bytes")
		dist     = flag.String("workload", "uniform", "networked: key distribution: uniform | zipf | hotspot-shift")
		shiftOps = flag.Int("shift-every", 0, "networked: hotspot-shift rotates the hot set every this many ops per client (0 = keyspace)")

		chaos       = flag.String("chaos", "", "replication chaos drill against -addr: slow-replica | partition")
		chaosListen = flag.String("chaos-listen", "127.0.0.1:0", "chaos: listen address for the replication-link relay the replica must connect through")

		overload = flag.String("overload", "", "overload drill against -addr: conn-storm | slow-reader | write-flood")
	)
	flag.Parse()

	if *overload != "" {
		if *addr == "" {
			log.Fatal("tierbase-bench: -overload requires -addr")
		}
		if err := runOverloadBench(overloadOpts{
			mode: *overload, addr: *addr,
			ops: *ops, valSize: *valSize, clients: *clients,
		}); err != nil {
			log.Fatalf("tierbase-bench: %v", err)
		}
		return
	}

	if *chaos != "" {
		if *addr == "" {
			log.Fatal("tierbase-bench: -chaos requires -addr (the master)")
		}
		if err := runChaosBench(chaosOpts{
			mode: *chaos, masterAddr: *addr, listen: *chaosListen,
			ops: *ops, valSize: *valSize,
		}); err != nil {
			log.Fatalf("tierbase-bench: %v", err)
		}
		return
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *addr != "" || *coord != "" {
		if err := runNetBench(netOpts{
			addr: *addr, coordinator: *coord, clients: *clients, conns: *conns, ops: *ops,
			readPct: *readPct, keyspace: *keyspace, valSize: *valSize,
			workload: *dist, shiftEvery: *shiftOps,
		}); err != nil {
			log.Fatalf("tierbase-bench: %v", err)
		}
		return
	}

	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "tierbase-bench")
		if err != nil {
			log.Fatalf("tierbase-bench: %v", err)
		}
		defer os.RemoveAll(scratch)
	}
	opts := bench.RunOpts{Scale: *scale, Dir: scratch}

	run := func(e bench.Experiment) {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			log.Printf("%s: FAILED: %v", e.ID, err)
			return
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range bench.Registry() {
			run(e)
		}
		return
	}
	e, ok := bench.ByID(*experiment)
	if !ok {
		log.Fatalf("tierbase-bench: unknown experiment %q (use -list)", *experiment)
	}
	run(e)
}

// --- networked load mode ---

type netOpts struct {
	addr        string
	coordinator string
	clients     int
	conns       int
	ops         int
	readPct     int
	keyspace    int
	valSize     int
	workload    string // uniform | zipf | hotspot-shift
	shiftEvery  int
}

// newChooser builds one goroutine's key chooser for the selected
// distribution (the workload generators are single-threaded; each client
// goroutine owns one).
func (o netOpts) newChooser() (workload.KeyChooser, error) {
	n := int64(o.keyspace)
	switch o.workload {
	case "", "uniform":
		return workload.NewUniform(n), nil
	case "zipf":
		return workload.NewScrambledZipfian(n, workload.ZipfianTheta), nil
	case "hotspot-shift":
		shift := int64(o.shiftEvery)
		if shift <= 0 {
			shift = n
		}
		return workload.NewShiftingHotspot(n, 0.1, 0.9, shift), nil
	default:
		return nil, fmt.Errorf("unknown -workload %q (uniform | zipf | hotspot-shift)", o.workload)
	}
}

// kvCaller is the per-op surface both networked backends share: the
// single-node mux client and the slot-routed cluster client.
type kvCaller interface {
	Set(key, val string) error
	Get(key string) (string, error)
	MSet(pairs map[string]string) error
}

// runNetBench drives a live deployment: N caller goroutines share M
// multiplexed connections round-robin (single-node mode) or one
// slot-routed cluster client (-coordinator mode); every per-op latency
// lands in one metrics histogram.
//
// In cluster mode failed ops are expected during a failover blackout —
// the run keeps going, counts them, and reports the longest contiguous
// unavailability window (first failed op to next successful op) instead
// of aborting, so a master kill under live traffic yields a blackout
// measurement rather than a dead bench.
func runNetBench(o netOpts) error {
	if o.clients < 1 || o.conns < 1 || o.ops < 1 || o.keyspace < 1 {
		return fmt.Errorf("clients, conns, ops and keyspace must be positive")
	}
	if o.addr != "" && o.coordinator != "" {
		return fmt.Errorf("-addr and -coordinator are mutually exclusive")
	}
	if _, err := o.newChooser(); err != nil {
		return err // validate the distribution before dialing anything
	}

	var muxes []*client.Client // single-node mode only
	var callers []kvCaller     // indexed by goroutine % len
	if o.coordinator != "" {
		rc, err := client.NewCluster(o.coordinator)
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		defer rc.Close()
		callers = []kvCaller{rc}
		fmt.Printf("cluster bench: coordinator=%s clients=%d ops=%d read%%=%d keyspace=%d valsize=%d\n",
			o.coordinator, o.clients, o.ops, o.readPct, o.keyspace, o.valSize)
	} else {
		muxes = make([]*client.Client, o.conns)
		for i := range muxes {
			c, err := client.Dial(o.addr)
			if err != nil {
				return err
			}
			defer c.Close()
			muxes[i] = c
			callers = append(callers, c)
		}
		if err := muxes[0].Ping(); err != nil {
			return err
		}
		fmt.Printf("networked bench: addr=%s clients=%d conns=%d ops=%d read%%=%d keyspace=%d valsize=%d workload=%s\n",
			o.addr, o.clients, o.conns, o.ops, o.readPct, o.keyspace, o.valSize, o.workload)
	}

	key := func(i int) string { return fmt.Sprintf("netbench:%08d", i) }
	value := make([]byte, o.valSize)
	for i := range value {
		value[i] = 'a' + byte(i%26)
	}
	val := string(value)

	// Prefill so reads always hit, in chunked MSETs.
	prefillStart := time.Now()
	const chunk = 512
	for lo := 0; lo < o.keyspace; lo += chunk {
		hi := lo + chunk
		if hi > o.keyspace {
			hi = o.keyspace
		}
		pairs := make(map[string]string, hi-lo)
		for i := lo; i < hi; i++ {
			pairs[key(i)] = val
		}
		if err := callers[lo/chunk%len(callers)].MSet(pairs); err != nil {
			return fmt.Errorf("prefill: %w", err)
		}
	}
	fmt.Printf("prefill: %d keys in %s\n", o.keyspace, time.Since(prefillStart).Round(time.Millisecond))

	hist := metrics.NewHistogram()
	var opErrs atomic.Int64
	var cursor atomic.Int64
	// Blackout tracking: firstFail holds the unixnano of the first failed
	// op in the current failure run (0 = healthy); the next successful op
	// closes the window and folds its width into maxBlackout.
	var firstFail, maxBlackout atomic.Int64
	var wg sync.WaitGroup
	// Client-process allocation gauge: the mux client's hot path is meant
	// to be allocation-light, so the per-op malloc count is a regression
	// canary (server-side allocs are covered by internal/server's
	// -benchmem benchmarks, which run the server in-process).
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for g := 0; g < o.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*7919 + 1))
			chooser, _ := o.newChooser() // validated above; one per goroutine
			c := callers[g%len(callers)]
			for {
				if int(cursor.Add(1)) > o.ops {
					return
				}
				k := key(int(chooser.Next(rng)))
				opStart := time.Now()
				var err error
				if rng.Intn(100) < o.readPct {
					_, err = c.Get(k)
				} else {
					err = c.Set(k, val)
				}
				now := time.Now()
				if err != nil && err != client.Nil {
					// Failed ops (e.g. fast-fails on a sticky-broken
					// connection, or refused dials mid-failover) must not
					// pollute the latency distribution or count as served
					// throughput.
					opErrs.Add(1)
					firstFail.CompareAndSwap(0, now.UnixNano())
					continue
				}
				if ff := firstFail.Swap(0); ff != 0 {
					if gap := now.UnixNano() - ff; gap > maxBlackout.Load() {
						maxBlackout.Store(gap)
					}
				}
				hist.RecordDuration(now.Sub(opStart))
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	snap := hist.Snapshot()
	okOps := o.ops - int(opErrs.Load())
	fmt.Printf("throughput: %.0f ops/s (%d ok / %d failed in %s)\n",
		float64(okOps)/elapsed.Seconds(), okOps, opErrs.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("latency: %s p90=%s p999=%s\n",
		snap.String(), time.Duration(snap.P90), time.Duration(snap.P999))
	if o.coordinator != "" {
		fmt.Printf("max blackout: %s\n", time.Duration(maxBlackout.Load()).Round(time.Millisecond))
		// Failover blackouts make some failed ops legitimate in cluster
		// mode; the counts above are the report, not a run failure.
		return nil
	}
	var agg client.MuxStats
	for _, c := range muxes {
		st := c.Stats()
		agg.Requests += st.Requests
		agg.WireCommands += st.WireCommands
		agg.Flushes += st.Flushes
		agg.CoalescedGets += st.CoalescedGets
		agg.CoalescedSets += st.CoalescedSets
	}
	window := 0.0
	if agg.Flushes > 0 {
		window = float64(agg.Requests) / float64(agg.Flushes)
	}
	fmt.Printf("mux: requests=%d wire_cmds=%d flushes=%d coalesced_gets=%d coalesced_sets=%d avg_window=%.1f\n",
		agg.Requests, agg.WireCommands, agg.Flushes, agg.CoalescedGets, agg.CoalescedSets, window)
	if okOps > 0 {
		fmt.Printf("client mem: %.1f allocs/op %.0f B/op\n",
			float64(memAfter.Mallocs-memBefore.Mallocs)/float64(okOps),
			float64(memAfter.TotalAlloc-memBefore.TotalAlloc)/float64(okOps))
	}
	printElasticState(muxes[0])
	printTieringState(muxes[0])
	if n := opErrs.Load(); n > 0 {
		return fmt.Errorf("%d operations failed", n)
	}
	return nil
}

// --- replication chaos mode ---

type chaosOpts struct {
	mode       string // slow-replica | partition
	masterAddr string
	listen     string
	ops        int
	valSize    int
}

// runChaosBench measures a live master's behavior while its replication
// link misbehaves. The bench interposes a fault-injecting relay between
// the replica and the master (start the replica with -replicaof pointed
// at the relay address this prints), then drives writes through three
// phases — healthy, faulted, healed — and reports the client-observed
// max write stall per phase plus the master's own robustness counters
// (max_write_stall_ns, laggards_shed, degraded-op counts).
func runChaosBench(o chaosOpts) error {
	switch o.mode {
	case "slow-replica", "partition":
	default:
		return fmt.Errorf("unknown -chaos mode %q (slow-replica | partition)", o.mode)
	}
	if o.ops < 3 {
		return fmt.Errorf("-ops must be at least 3")
	}

	mc, err := client.Dial(o.masterAddr)
	if err != nil {
		return err
	}
	defer mc.Close()
	if err := mc.Ping(); err != nil {
		return err
	}

	proxy, err := faults.NewProxy(o.listen, o.masterAddr)
	if err != nil {
		return fmt.Errorf("relay: %w", err)
	}
	defer proxy.Close()
	fmt.Printf("chaos %s: replication-link relay up at %s -> %s\n", o.mode, proxy.Addr(), o.masterAddr)
	fmt.Printf("point the replica through it:  tierbase-server -node-id r1 -replicaof %s ...\n", proxy.Addr())

	// The drill needs a replica attached through the relay before the
	// fault means anything.
	fmt.Print("waiting for a replica to attach through the relay... ")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if n := infoField(mc, "replication", "connected_replicas"); n != "" && n != "0" {
			fmt.Printf("attached (connected_replicas=%s)\n", n)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no replica attached through the relay within 2m")
		}
		time.Sleep(200 * time.Millisecond)
	}

	val := strings.Repeat("x", o.valSize)
	phase := func(name string, n int) (time.Duration, int64) {
		var maxStall time.Duration
		var failed int64
		for i := 0; i < n; i++ {
			start := time.Now()
			err := mc.Set(fmt.Sprintf("chaosbench:%s:%08d", name, i), val)
			if lat := time.Since(start); lat > maxStall {
				maxStall = lat
			}
			if err != nil {
				failed++ // e.g. NOREPLICAS under semi-sync during a partition
			}
		}
		fmt.Printf("phase %-8s %6d writes  max_stall=%-12s failed=%d\n",
			name, n, maxStall.Round(time.Microsecond), failed)
		return maxStall, failed
	}

	third := o.ops / 3
	phase("healthy", third)

	switch o.mode {
	case "slow-replica":
		proxy.Injector().SetByteRate(128 << 10) // ~10x slower than a LAN link
		fmt.Println("fault injected: replication link capped at 128 KiB/s")
	case "partition":
		proxy.Injector().Partition()
		fmt.Println("fault injected: replication link partitioned (both directions blackholed)")
	}
	faultStall, faultFailed := phase("faulted", third)

	proxy.Injector().Heal()
	if o.mode == "partition" {
		proxy.DropConns() // flush zombie relays; the replica redials
	}
	fmt.Println("fault healed")
	phase("healed", o.ops-2*third)

	fmt.Println("\nmaster robustness counters:")
	for _, f := range []string{"max_write_stall_ns", "laggards_shed", "full_syncs_served", "connected_replicas"} {
		if v := infoField(mc, "replication", f); v != "" {
			if f == "max_write_stall_ns" {
				ns, _ := strconv.ParseInt(v, 10, 64)
				fmt.Printf("  %s:%s (%s)\n", f, v, time.Duration(ns).Round(time.Microsecond))
				continue
			}
			fmt.Printf("  %s:%s\n", f, v)
		}
	}
	fmt.Println("master health counters:")
	for _, f := range []string{"degraded_shards", "degraded_ops", "degraded_transitions", "storage_errors", "storage_retries"} {
		if v := infoField(mc, "health", f); v != "" {
			fmt.Printf("  %s:%s\n", f, v)
		}
	}
	if faultFailed > 0 {
		fmt.Printf("\n%d writes failed during the fault window (expected under semi-sync); max stall while faulted was %s\n",
			faultFailed, faultStall.Round(time.Microsecond))
	}
	return nil
}

// --- overload drill mode ---

type overloadOpts struct {
	mode    string // conn-storm | slow-reader | write-flood
	addr    string
	ops     int
	valSize int
	clients int
}

// runOverloadBench attacks a live server with one overload shape —
// a connection storm past the admission cap, a slow reader that
// pipelines requests and never drains replies, or a write flood past
// the memory high watermark — while one well-behaved reader keeps
// polling. Overload protection is judged from both sides: the server's
// shed counters (INFO overload) and the victim reader's p99, because
// shedding the attacker is only a win if the healthy client stays fast.
func runOverloadBench(o overloadOpts) error {
	switch o.mode {
	case "conn-storm", "slow-reader", "write-flood":
	default:
		return fmt.Errorf("unknown -overload mode %q (conn-storm | slow-reader | write-flood)", o.mode)
	}
	mc, err := client.Dial(o.addr)
	if err != nil {
		return err
	}
	defer mc.Close()
	if err := mc.Ping(); err != nil {
		return err
	}

	const probeKey = "overloadbench:probe"
	if err := mc.Set(probeKey, strings.Repeat("p", 64)); err != nil {
		return err
	}
	hist := metrics.NewHistogram()
	var readErrs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rc, err := client.Dial(o.addr)
		if err != nil {
			return
		}
		defer rc.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			start := time.Now()
			if _, err := rc.Get(probeKey); err != nil {
				readErrs.Add(1)
				time.Sleep(10 * time.Millisecond)
				continue
			}
			hist.RecordDuration(time.Since(start))
		}
	}()

	var attackErr error
	switch o.mode {
	case "conn-storm":
		attackErr = connStorm(o)
	case "slow-reader":
		attackErr = slowReader(o, mc)
	case "write-flood":
		attackErr = writeFlood(o)
	}
	close(stop)
	wg.Wait()
	if attackErr != nil {
		return attackErr
	}

	snap := hist.Snapshot()
	fmt.Printf("\nhealthy reader under attack: %d reads (%d failed) p50=%s p99=%s p999=%s\n",
		snap.Count, readErrs.Load(),
		time.Duration(snap.P50), time.Duration(snap.P99), time.Duration(snap.P999))
	fmt.Println("server overload state:")
	printInfoSection(mc, "overload")
	return nil
}

// connStorm opens a burst of raw connections and classifies each by the
// server's first reply: +PONG means admitted (the slot is held open for
// the storm's duration so later dials actually contend), -MAXCONN means
// the admission cap refused it.
func connStorm(o overloadOpts) error {
	storm := o.clients
	if storm < 16 {
		storm = 16
	}
	fmt.Printf("conn-storm: opening %d concurrent connections against %s\n", storm, o.addr)
	if v := infoFieldAt(o.addr, "overload", "max_conns"); v == "0" {
		fmt.Println("conn-storm: note: server reports max_conns:0 (unlimited) — nothing will be refused")
	}
	var accepted, rejected, failed atomic.Int64
	held := make(chan net.Conn, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nc, err := net.DialTimeout("tcp", o.addr, 5*time.Second)
			if err != nil {
				failed.Add(1)
				return
			}
			nc.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := nc.Write([]byte("*1\r\n$4\r\nPING\r\n")); err != nil {
				failed.Add(1)
				nc.Close()
				return
			}
			line, err := bufio.NewReader(nc).ReadString('\n')
			switch {
			case err == nil && strings.HasPrefix(line, "-MAXCONN"):
				rejected.Add(1)
				nc.Close()
			case err == nil && strings.HasPrefix(line, "+PONG"):
				accepted.Add(1)
				nc.SetDeadline(time.Time{})
				held <- nc
			default:
				failed.Add(1)
				nc.Close()
			}
		}()
	}
	wg.Wait()
	close(held)
	for nc := range held {
		nc.Close()
	}
	fmt.Printf("conn-storm: accepted=%d rejected(-MAXCONN)=%d failed=%d\n",
		accepted.Load(), rejected.Load(), failed.Load())
	return nil
}

// slowReader pipelines GETs for a fat value over one raw connection and
// never reads a byte of reply, so the server's buffered output for this
// connection only grows. A protected server sheds it — at the output
// cap, or when the flush write-timeout fires against the jammed socket —
// which the attacker observes as a hard write error (timeouts are mere
// backpressure and keep the attack going).
func slowReader(o overloadOpts, mc *client.Client) error {
	blobSize := o.valSize
	if blobSize < 4096 {
		blobSize = 4096 // make each unread reply count
	}
	const blobKey = "overloadbench:blob"
	if err := mc.Set(blobKey, strings.Repeat("b", blobSize)); err != nil {
		return err
	}
	nc, err := net.DialTimeout("tcp", o.addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	req := []byte(fmt.Sprintf("*2\r\n$3\r\nGET\r\n$%d\r\n%s\r\n", len(blobKey), blobKey))
	pipeline := bytes.Repeat(req, 64)
	fmt.Printf("slow-reader: pipelining GETs of a %dB value, never reading replies\n", blobSize)
	start := time.Now()
	var sent int64
	buf := pipeline
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
		n, err := nc.Write(buf)
		sent += int64(n)
		buf = buf[n:]
		if len(buf) == 0 {
			buf = pipeline
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // backpressure, not a shed: the socket is jammed, keep pushing
			}
			fmt.Printf("slow-reader: shed after %s (%d request bytes sent, ~%s of replies owed)\n",
				time.Since(start).Round(time.Millisecond), sent,
				byteCount(sent/int64(len(req))*int64(blobSize)))
			return nil
		}
	}
	return fmt.Errorf("slow-reader: connection survived 2m unread — set -max-output-bytes / -write-timeout on the server")
}

// writeFlood hammers writes until the server trips its memory high
// watermark and starts refusing them with -OVERLOADED, then stops and
// waits for writes to come back once memory drains below the low
// watermark. Reads keep serving throughout (the healthy-reader probe in
// runOverloadBench measures that side).
func writeFlood(o overloadOpts) error {
	val := strings.Repeat("w", o.valSize)
	fmt.Printf("write-flood: %d writers, %d ops of %dB values\n", o.clients, o.ops, o.valSize)
	var acked, shed, failed atomic.Int64
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < o.clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(o.addr)
			if err != nil {
				failed.Add(1)
				return
			}
			defer c.Close()
			for {
				i := int(cursor.Add(1))
				if i > o.ops {
					return
				}
				err := c.Set(fmt.Sprintf("overloadbench:flood:%010d", i), val)
				var ov *client.OverloadedError
				switch {
				case err == nil:
					acked.Add(1)
				case errors.As(err, &ov):
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("write-flood: %d acked, %d shed with -OVERLOADED, %d other errors\n",
		acked.Load(), shed.Load(), failed.Load())
	if shed.Load() == 0 {
		fmt.Println("write-flood: watermark never tripped — raise -ops/-valsize or lower the server's -high-watermark-bytes")
		return nil
	}
	// Recovery: writes must resume once eviction / write-back flushing /
	// log trimming drains memory below the low watermark.
	c, err := client.Dial(o.addr)
	if err != nil {
		return err
	}
	defer c.Close()
	start := time.Now()
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := c.Set("overloadbench:recovery", "ok")
		if err == nil {
			fmt.Printf("write-flood: writes recovered %s after the flood stopped\n",
				time.Since(start).Round(time.Millisecond))
			return nil
		}
		var ov *client.OverloadedError
		if !errors.As(err, &ov) {
			return err
		}
		if time.Now().After(deadline) {
			fmt.Println("write-flood: still -OVERLOADED 30s after the flood — memory has nowhere to drain (no eviction or write-back tier configured?)")
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// byteCount renders n in a human unit for drill output.
func byteCount(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// printInfoSection dumps every counter line of one INFO section.
func printInfoSection(c *client.Client, section string) {
	v, err := c.Do("INFO", section)
	if err != nil {
		return
	}
	s, ok := v.(string)
	if !ok {
		return
	}
	for _, line := range strings.Split(strings.TrimRight(s, "\r\n"), "\r\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fmt.Printf("  %s\n", line)
	}
}

// infoFieldAt reads one INFO field over a throwaway connection.
func infoFieldAt(addr, section, field string) string {
	c, err := client.Dial(addr)
	if err != nil {
		return ""
	}
	defer c.Close()
	return infoField(c, section, field)
}

// infoField extracts one field from an INFO section, "" if unavailable.
func infoField(c *client.Client, section, field string) string {
	v, err := c.Do("INFO", section)
	if err != nil {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		return ""
	}
	for _, line := range strings.Split(s, "\r\n") {
		if strings.HasPrefix(line, field+":") {
			return strings.TrimPrefix(line, field+":")
		}
	}
	return ""
}

// printTieringState reports the cache-tiering section from INFO tiering:
// under a skewed -workload, the per-stripe budget and hit-rate skew (and
// the rebalance counters, if -adaptive-tiering is on server-side) show
// where the run's working set landed and whether budgets followed it.
func printTieringState(c *client.Client) {
	v, err := c.Do("INFO", "tiering")
	if err != nil {
		return
	}
	s, ok := v.(string)
	if !ok || !strings.Contains(s, "tiered_shards:") || strings.Contains(s, "tiered_shards:0") {
		return // cache-only server: no tiering section to report
	}
	fmt.Println("server tiering state:")
	for _, line := range strings.Split(strings.TrimRight(s, "\r\n"), "\r\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fmt.Printf("  %s\n", line)
	}
}

// printElasticState reports each shard's elastic pool state from INFO
// server — whether the run pushed the server into boost mode (and how
// often it boosted) is part of the result, not something to infer from
// throughput alone.
func printElasticState(c *client.Client) {
	v, err := c.Do("INFO", "server")
	if err != nil {
		return // an old server without INFO is still benchable
	}
	s, ok := v.(string)
	if !ok {
		return
	}
	fmt.Println("server elastic state:")
	for _, line := range strings.Split(strings.TrimRight(s, "\r\n"), "\r\n") {
		if strings.Contains(line, "_mode:") || strings.Contains(line, "_workers:") ||
			strings.Contains(line, "_boosts:") || strings.Contains(line, "_shrinks:") ||
			strings.Contains(line, "_queue_depth:") || strings.Contains(line, "_tasks:") {
			fmt.Printf("  %s\n", line)
		}
	}
}
