// Auto-pipelining: 64 goroutines share ONE multiplexed connection to an
// in-process tierbase-server. Concurrent requests drain to the wire in
// shared flush windows, and same-window single-key GETs coalesce into
// MGETs — watch the mux counters: far fewer wire commands and flushes
// (≈ round trips) than requests.
package main

import (
	"fmt"
	"log"
	"sync"

	"tierbase/internal/client"
	"tierbase/internal/server"
)

func main() {
	srv, err := server.Start(server.Options{Addr: "127.0.0.1:0", Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Seed a keyspace with one batched MSET.
	const keys = 256
	pairs := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		pairs[fmt.Sprintf("user:%03d", i)] = fmt.Sprintf("profile-%03d", i)
	}
	if err := c.MSet(pairs); err != nil {
		log.Fatal(err)
	}

	// 64 concurrent readers on the one connection. No batching in the
	// caller's code — each goroutine makes plain single-key Gets; the
	// client's drain windows do the batching.
	const goroutines = 64
	const opsEach = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := fmt.Sprintf("user:%03d", (g*opsEach+i)%keys)
				v, err := c.Get(k)
				if err != nil {
					log.Fatalf("get %s: %v", k, err)
				}
				if want := "profile-" + k[len("user:"):]; v != want {
					log.Fatalf("get %s: got %q, want %q", k, v, want)
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	fmt.Printf("requests:        %d\n", st.Requests)
	fmt.Printf("wire commands:   %d (gets coalesced into MGETs: %d)\n", st.WireCommands, st.CoalescedGets)
	fmt.Printf("flushes:         %d\n", st.Flushes)
	if st.Flushes > 0 {
		fmt.Printf("avg drain window: %.1f requests per flush (≈ %.0fx fewer round trips)\n",
			float64(st.Requests)/float64(st.Flushes),
			float64(st.Requests)/float64(st.Flushes))
	}
}
