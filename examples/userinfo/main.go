// Case study 1 — User Info Service (paper §6.5, Case 1).
//
// A read-heavy (32:1) profile service over JSON-shaped user records. The
// paper's production decision for this workload: a single-layer cache with
// pre-trained PBC compression (25% value size, 50% cost cut). This example
// reproduces that flow: train PBC on sampled records, serve a skewed
// read-heavy workload, and report the observed compression ratio and
// hit/space statistics.
package main

import (
	"fmt"
	"log"

	"tierbase"
	"tierbase/internal/trace"
	"tierbase/internal/workload"
)

func main() {
	ds := workload.NewKV1() // machine-generated user-profile records

	// Offline pre-training phase (§4.2): sample production records.
	samples := workload.Sample(ds, 500)

	store, err := tierbase.Open(tierbase.Options{
		Compression:     "pbc",
		TrainingSamples: samples,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Baseline without compression, for the before/after comparison.
	raw, err := tierbase.Open(tierbase.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()

	// Replay a synthetic trace with the published shape (32:1 reads,
	// zipfian hot users).
	tr := trace.GenUserInfo(trace.UserInfoOptions{Ops: 60000})
	serve := func(s *tierbase.Store) {
		for _, e := range tr.Entries {
			switch e.Op {
			case trace.OpWrite:
				s.Set(e.Key, e.Val)
			case trace.OpRead:
				s.Get(e.Key)
			}
		}
	}
	// Seed both stores with the user population, then serve.
	seeded := map[string]bool{}
	i := int64(0)
	for _, e := range tr.Entries {
		if !seeded[e.Key] {
			seeded[e.Key] = true
			rec := e.Val
			if rec == nil {
				rec = ds.Record(i)
			}
			store.Set(e.Key, rec)
			raw.Set(e.Key, rec)
			i++
		}
	}
	serve(store)
	serve(raw)

	cs, rs := store.Stats(), raw.Stats()
	fmt.Printf("users: %d, trace: %d ops (%s)\n", cs.Keys, len(tr.Entries), tr.Name)
	fmt.Printf("raw cache:   %8d B\n", rs.CacheMemBytes)
	fmt.Printf("pbc cache:   %8d B (%.1f%% of raw)\n",
		cs.CacheMemBytes, 100*float64(cs.CacheMemBytes)/float64(rs.CacheMemBytes))
	fmt.Printf("value compression ratio: %.3f (compressed/raw)\n", cs.CompressionRatio)

	// The space saving halves SC; the cost model tells us whether the
	// CPU overhead was worth it (space-critical workload: yes).
	st := tr.Summarize()
	fmt.Printf("trace: %d reads / %d writes (%.0f:1), mean access interval %.0f ticks\n",
		st.Reads, st.Writes, float64(st.Reads)/float64(st.Writes), st.MeanAccessIntervalS)
}
