// Case study 2 — Capital Reconciliation (paper §6.5, Case 2).
//
// A cost-sensitive 1:1 read/write workload with strong temporal locality:
// channels write transaction entries, the reconciliation system reads
// recent entries back for verification. The paper's choice: tiered storage
// with a small cache over the LSM storage tier (1% hot data in cache, ~80%
// hit rate; write-back mode for high-throughput sub-scenarios). This
// example runs the write-back tiered store, reports hit rate and dirty
// batching efficiency, and demonstrates durability across restarts.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tierbase"
	"tierbase/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "tierbase-recon")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := tierbase.Open(tierbase.Options{
		Policy:             tierbase.WriteBack,
		Dir:                filepath.Join(dir, "storage"),
		CacheCapacityBytes: 1 << 20, // small hot cache over a large ledger
		Replicas:           1,       // dirty data protected by a replica
	})
	if err != nil {
		log.Fatal(err)
	}

	tr := trace.GenReconciliation(trace.ReconciliationOptions{Ops: 40000})
	var lastKey string
	for _, e := range tr.Entries {
		switch e.Op {
		case trace.OpWrite:
			if err := store.Set(e.Key, e.Val); err != nil {
				log.Fatal(err)
			}
			lastKey = e.Key
		case trace.OpRead:
			store.Get(e.Key) // cold keys fall through to the storage tier
		}
	}
	st := store.Stats()
	fmt.Printf("trace: %d ops over %d ledger entries\n", len(tr.Entries), st.Keys)
	fmt.Printf("cache hit rate: %.1f%% (paper reports ~80%% with ~1%% hot data)\n", 100*(1-st.MissRatio))
	fmt.Printf("cache: %d B DRAM; storage tier: %d B on disk; dirty pending: %d\n",
		st.CacheMemBytes, st.StorageDiskBytes, st.DirtyEntries)

	if err := store.Close(); err != nil { // flushes all dirty entries
		log.Fatal(err)
	}

	// Durability check: reopen and verify the last written entry.
	store2, err := tierbase.Open(tierbase.Options{
		Policy: tierbase.WriteBack,
		Dir:    filepath.Join(dir, "storage"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()
	if v, err := store2.Get(lastKey); err != nil {
		log.Fatalf("ledger entry lost across restart: %v", err)
	} else {
		fmt.Printf("recovered %s after restart (%d B)\n", lastKey, len(v))
	}
}
