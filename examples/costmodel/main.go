// Cost-model walkthrough: applying the Space-Performance Cost Model
// (paper §2 and §5) to configuration decisions — single-tier optimal
// config (Theorem 2.1), tiered cache sizing (Theorem 5.1) from an
// empirical miss-ratio curve, and the adapted Five-Minute Rule (Eq. 5).
package main

import (
	"fmt"
	"math/rand"

	"tierbase"
	"tierbase/internal/workload"
)

func main() {
	// A space-critical workload: modest QPS, large data.
	w := tierbase.CostWorkload{
		Name: "profile-service", QPS: 80_000, DataSizeGB: 10,
		ReadRatio: 0.95, AvgRecordBytes: 190,
	}

	// Measured per-container capabilities for candidate configurations
	// (normally produced by the §5.3 replay harness; see cmd/tierbase-bench).
	configs := []tierbase.CostMeasured{
		{Config: "raw", MaxPerfQPS: 100_000, MaxSpaceGB: 2.6},
		{Config: "pmem", MaxPerfQPS: 85_000, MaxSpaceGB: 6.5},
		{Config: "zstd-dict", MaxPerfQPS: 55_000, MaxSpaceGB: 4.8},
		{Config: "pbc", MaxPerfQPS: 60_000, MaxSpaceGB: 7.8},
	}

	fmt.Println("-- Theorem 2.1: optimal single-tier configuration --")
	for _, m := range configs {
		pc := w.QPS / m.MaxPerfQPS * tierbase.StandardContainer.Cost
		sc := w.DataSizeGB / m.MaxSpaceGB * tierbase.StandardContainer.Cost
		fmt.Printf("  %-10s PC=%6.2f SC=%6.2f C=%6.2f\n", m.Config, pc, sc, max(pc, sc))
	}
	best, err := tierbase.OptimalConfig(w, tierbase.StandardContainer, configs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  optimal: %s (cost %.2f) — note PC≈SC at the optimum\n\n", best.Measured.Config, best.Cost)

	// Tiered sizing: build an empirical MRC from a skewed key trace and
	// solve for the optimal cache ratio.
	fmt.Println("-- Theorem 5.1: optimal cache ratio from an empirical MRC --")
	rng := rand.New(rand.NewSource(7))
	z := workload.NewScrambledZipfian(5_000, 0.99)
	keys := make([]string, 60_000)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%06d", z.Next(rng))
	}
	mrc := tierbase.BuildMRC(keys)
	in := tierbase.TieredCostInputs{
		PCCache: 0.8,  // serving all requests from cache
		PCMiss:  2.0,  // extra cost of the miss path at MR=1
		SCCache: 12.0, // storing ALL data in DRAM
	}
	cr, mr, cost := tierbase.OptimalCacheRatio(in, mrc)
	fmt.Printf("  CR* = %.3f (cache 1/%.1f of data), MR* = %.3f, cache-tier cost %.2f\n",
		cr, 1/cr, mr, cost)
	fmt.Printf("  full tiered cost at CR*: %.2f\n\n",
		tierbase.TieredCost(in, cr, mr))

	// Five-minute rule, adapted (Eq. 5).
	fmt.Println("-- Adapted Five-Minute Rule (Eq. 5) --")
	cpqpsSlow := 1.0 / 60_000.0 // PBC config: cost per query/s
	cpgbFast := 1.0 / 2.6       // raw config: cost per GB
	be := tierbase.BreakEvenInterval(cpqpsSlow, cpgbFast, w.AvgRecordBytes)
	fmt.Printf("  raw vs pbc break-even: %.0f s\n", be)
	fmt.Printf("  a record accessed every %0.f+ s belongs in the compressed tier\n", be)
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
