// Quickstart: an embedded TierBase store in a few lines — basic KV
// operations, read-modify-write, CAS, TTLs and the data-structure surface.
package main

import (
	"fmt"
	"log"
	"time"

	"tierbase"
)

func main() {
	store, err := tierbase.Open(tierbase.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Strings.
	if err := store.Set("greeting", []byte("hello, tierbase")); err != nil {
		log.Fatal(err)
	}
	v, err := store.Get("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET greeting = %q\n", v)

	// Read-modify-write.
	store.Update("greeting", func(old []byte, exists bool) []byte {
		return append(old, '!')
	})
	v, _ = store.Get("greeting")
	fmt.Printf("after update = %q\n", v)

	// Compare-and-set (the paper's CAS extension).
	if err := store.CompareAndSet("greeting", v, []byte("replaced")); err != nil {
		log.Fatal(err)
	}
	if err := store.CompareAndSet("greeting", []byte("stale"), []byte("x")); err == tierbase.ErrCASMismatch {
		fmt.Println("stale CAS correctly rejected")
	}

	// Counters and TTLs.
	n, _ := store.IncrBy("visits", 1)
	fmt.Printf("visits = %d\n", n)
	store.Expire("visits", time.Hour)

	// Batch API: many keys in one pass through the lock-striped engine.
	if err := store.MSet(map[string][]byte{
		"profile:1": []byte("alice"),
		"profile:2": []byte("bob"),
	}); err != nil {
		log.Fatal(err)
	}
	users, _ := store.MGet("profile:1", "profile:2", "profile:3")
	fmt.Printf("MGET profile:1=%q profile:2=%q profile:3 present=%v\n",
		users["profile:1"], users["profile:2"], users["profile:3"] != nil)

	// Advanced data structures via the engine.
	eng := store.Engine()
	eng.RPush("queue", []byte("job-1"), []byte("job-2"))
	job, _ := eng.LPop("queue")
	fmt.Printf("popped %q\n", job)
	eng.ZAdd("leaderboard", "alice", 42)
	eng.ZAdd("leaderboard", "bob", 17)
	top, _ := eng.ZRange("leaderboard", 0, -1)
	fmt.Printf("leaderboard: %v\n", top)
	eng.HSet("user:1", "name", []byte("Wei"))
	name, _ := eng.HGet("user:1", "name")
	fmt.Printf("user:1 name = %q\n", name)

	st := store.Stats()
	fmt.Printf("stats: %d keys, %d B cache\n", st.Keys, st.CacheMemBytes)
}
