package tierbase

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"tierbase/internal/workload"
)

func TestOpenCacheOnly(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("%q %v", v, err)
	}
	if _, err := s.Get("nope"); err != ErrNotFound {
		t.Fatalf("missing: %v", err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err != ErrNotFound {
		t.Fatal("delete failed")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{Policy: WriteThrough}); err == nil {
		t.Fatal("tiered policy without Dir accepted")
	}
	if _, err := Open(Options{Policy: Policy(99)}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := Open(Options{Compression: "nope"}); err == nil {
		t.Fatal("bogus compressor accepted")
	}
}

func TestWriteThroughDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Policy: WriteThrough, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Set(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: data must come back from the storage tier.
	s2, err := Open(Options{Policy: WriteThrough, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Get("k25")
	if err != nil || string(v) != "v" {
		t.Fatalf("recovered: %q %v", v, err)
	}
	if s2.Stats().MissRatio == 0 {
		t.Fatal("reopen reads should be cache misses served by storage")
	}
}

func TestWriteBackFlushOnClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Policy: WriteBack, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("wb%03d", i), []byte("v"))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Policy: WriteBack, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, err := s2.Get("wb050"); err != nil || string(v) != "v" {
		t.Fatalf("dirty data lost on close: %q %v", v, err)
	}
}

func TestCompressionOption(t *testing.T) {
	ds := workload.NewKV1()
	s, err := Open(Options{
		Compression:     "pbc",
		TrainingSamples: workload.Sample(ds, 200),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := ds.Record(9999)
	s.Set("u", val)
	got, err := s.Get("u")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("roundtrip: %v", err)
	}
	for i := int64(0); i < 100; i++ {
		s.Set(fmt.Sprintf("u%d", i), ds.Record(i))
	}
	if r := s.Stats().CompressionRatio; r >= 1 || r <= 0 {
		t.Fatalf("compression ratio %f", r)
	}
}

func TestPMemOption(t *testing.T) {
	s, err := Open(Options{PMemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	big := bytes.Repeat([]byte("p"), 500)
	s.Set("big", big)
	if s.Stats().PMemBytes == 0 {
		t.Fatal("value not offloaded to PMem")
	}
	v, err := s.Get("big")
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("pmem roundtrip: %v", err)
	}
}

func TestUpdateAndCAS(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Set("k", []byte("a"))
	err = s.Update("k", func(old []byte, exists bool) []byte {
		return append(old, 'b')
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("k")
	if string(v) != "ab" {
		t.Fatalf("update: %q", v)
	}
	if err := s.CompareAndSet("k", []byte("ab"), []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := s.CompareAndSet("k", []byte("stale"), []byte("d")); err != ErrCASMismatch {
		t.Fatalf("cas mismatch: %v", err)
	}
	n, err := s.IncrBy("ctr", 5)
	if err != nil || n != 5 {
		t.Fatalf("incr: %d %v", n, err)
	}
}

func TestTTLAndEngineAccess(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Set("k", []byte("v"))
	if !s.Expire("k", time.Hour) {
		t.Fatal("expire")
	}
	if _, err := s.Engine().LPush("list", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestElasticOption(t *testing.T) {
	s, err := Open(Options{ElasticThreading: true, MaxThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Stats().Workers != 1 {
		t.Fatalf("elastic should start single: %d", s.Stats().Workers)
	}
}

func TestEvictionWithCapacity(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Policy: WriteThrough, Dir: dir, CacheCapacityBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("e%03d", i), val)
	}
	if s.Stats().CacheMemBytes > 8<<10 {
		t.Fatalf("cache grew past capacity: %d", s.Stats().CacheMemBytes)
	}
	// Every key still readable via the storage tier.
	for i := 0; i < 100; i++ {
		if _, err := s.Get(fmt.Sprintf("e%03d", i)); err != nil {
			t.Fatalf("evicted key lost: %v", err)
		}
	}
}

func TestCostModelReexports(t *testing.T) {
	w := CostWorkload{QPS: 50000, DataSizeGB: 8}
	configs := []CostMeasured{
		{Config: "raw", MaxPerfQPS: 100000, MaxSpaceGB: 2},
		{Config: "pbc", MaxPerfQPS: 40000, MaxSpaceGB: 8},
	}
	best, err := OptimalConfig(w, StandardContainer, configs)
	if err != nil {
		t.Fatal(err)
	}
	if best.Measured.Config == "" {
		t.Fatal("no config chosen")
	}
	if c := TieredCost(TieredCostInputs{PCCache: 1, SCCache: 4}, 0.5, 0.1); c <= 0 {
		t.Fatalf("tiered cost %f", c)
	}
	keys := make([]string, 2000)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i%100)
	}
	mrc := BuildMRC(keys)
	cr, mr, _ := OptimalCacheRatio(TieredCostInputs{PCCache: 0.5, PCMiss: 2, SCCache: 10}, mrc)
	if cr < 0 || cr > 1 || mr < 0 || mr > 1 {
		t.Fatalf("cr=%f mr=%f", cr, mr)
	}
	if BreakEvenInterval(0.001, 2, 100) <= 0 {
		t.Fatal("break-even")
	}
}

func TestStatsShape(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Policy: WriteBack, Dir: dir, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Set("k", []byte("v"))
	s.Get("k")
	s.Get("ghost")
	st := s.Stats()
	if st.Keys != 1 || st.Requests < 3 || st.Hits < 1 || st.Misses < 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.CacheMemBytes == 0 {
		t.Fatal("no cache memory reported")
	}
	s.FlushDirty()
	if s.Stats().DirtyEntries != 0 {
		t.Fatal("dirty after flush")
	}
}
