package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := NewUniform(100)
	for i := 0; i < 10000; i++ {
		v := u.Next(rng)
		if v < 0 || v >= 100 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := NewUniform(10)
	seen := make(map[int64]int)
	for i := 0; i < 10000; i++ {
		seen[u.Next(rng)]++
	}
	if len(seen) != 10 {
		t.Fatalf("uniform should cover all 10 keys, saw %d", len(seen))
	}
	for k, c := range seen {
		if c < 700 || c > 1300 {
			t.Errorf("key %d count %d far from uniform expectation 1000", k, c)
		}
	}
}

func TestZipfianBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipfian(1000, ZipfianTheta)
	for i := 0; i < 50000; i++ {
		v := z.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z := NewZipfian(10000, ZipfianTheta)
	counts := make(map[int64]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next(rng)]++
	}
	// Item 0 should be by far the most popular; the head (top 1%) should
	// capture the majority of accesses for theta=0.99.
	var head int
	for k, c := range counts {
		if k < 100 {
			head += c
		}
	}
	frac := float64(head) / n
	if frac < 0.4 {
		t.Fatalf("zipfian head fraction %.3f too small; distribution not skewed", frac)
	}
	if counts[0] < counts[5000] {
		t.Fatalf("item 0 (%d) should dominate mid-rank item (%d)", counts[0], counts[5000])
	}
}

func TestZipfianGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipfian(100, ZipfianTheta)
	z.SetItemCount(200)
	max := int64(0)
	for i := 0; i < 100000; i++ {
		v := z.Next(rng)
		if v > max {
			max = v
		}
		if v < 0 || v >= 200 {
			t.Fatalf("grown zipfian out of range: %d", v)
		}
	}
	if max < 100 {
		t.Fatalf("growth not effective; max seen %d", max)
	}
	// Shrinking is ignored.
	z.SetItemCount(50)
	if z.items != 200 {
		t.Fatalf("shrink should be ignored, items=%d", z.items)
	}
}

func TestScrambledZipfianSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewScrambledZipfian(10000, ZipfianTheta)
	counts := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		v := s.Next(rng)
		if v < 0 || v >= 10000 {
			t.Fatalf("scrambled out of range: %d", v)
		}
		counts[v]++
	}
	// Hot keys should NOT be clustered at low indexes: the top key can be
	// anywhere. Verify low-index mass is not dominant.
	var low int
	for k, c := range counts {
		if k < 100 {
			low += c
		}
	}
	if frac := float64(low) / 100000; frac > 0.3 {
		t.Fatalf("scrambled zipfian still clustered at low indexes (%.3f)", frac)
	}
	// But skew must be preserved: top key >> median key.
	var maxC int
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 1000 {
		t.Fatalf("scrambling destroyed skew; max count %d", maxC)
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLatest(1000, ZipfianTheta)
	var recent int
	const n = 50000
	for i := 0; i < n; i++ {
		v := l.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("latest out of range: %d", v)
		}
		if v >= 990 {
			recent++
		}
	}
	if frac := float64(recent) / n; frac < 0.3 {
		t.Fatalf("latest chooser not favoring recent items: %.3f", frac)
	}
}

func TestSequential(t *testing.T) {
	s := NewSequential()
	for i := int64(0); i < 100; i++ {
		if v := s.Next(nil); v != i {
			t.Fatalf("sequential: got %d want %d", v, i)
		}
	}
}

func TestHotspot(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := NewHotspot(1000, 0.01, 0.9)
	var hot int
	const n = 50000
	for i := 0; i < n; i++ {
		v := h.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("hotspot out of range: %d", v)
		}
		if v < 10 {
			hot++
		}
	}
	frac := float64(hot) / n
	if math.Abs(frac-0.9) > 0.05 {
		t.Fatalf("hot fraction %.3f, want ~0.9", frac)
	}
}

func TestChooserBoundsProperty(t *testing.T) {
	// Property: all choosers always return indexes within [0, n).
	f := func(seed int64, nRaw uint16) bool {
		n := int64(nRaw%5000) + 1
		rng := rand.New(rand.NewSource(seed))
		choosers := []KeyChooser{
			NewUniform(n),
			NewZipfian(n, ZipfianTheta),
			NewScrambledZipfian(n, ZipfianTheta),
			NewLatest(n, ZipfianTheta),
			NewHotspot(n, 0.05, 0.8),
		}
		for _, c := range choosers {
			for i := 0; i < 200; i++ {
				v := c.Next(rng)
				if v < 0 || v >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFnvHashDisperses(t *testing.T) {
	seen := make(map[uint64]struct{})
	for i := uint64(0); i < 10000; i++ {
		seen[fnvHash64(i)] = struct{}{}
	}
	if len(seen) != 10000 {
		t.Fatalf("fnv collisions over small domain: %d unique", len(seen))
	}
}

func TestZetaIncrMatchesStatic(t *testing.T) {
	for _, n := range []int64{10, 100, 1000} {
		full := zetaStatic(n, ZipfianTheta)
		half := zetaStatic(n/2, ZipfianTheta)
		incr := zetaIncr(n/2, n, ZipfianTheta, half)
		if math.Abs(full-incr) > 1e-9 {
			t.Errorf("n=%d: static %.12f != incremental %.12f", n, full, incr)
		}
	}
}
