package workload

import (
	"fmt"
	"math/rand"
)

// OpKind enumerates key-value operations in a generated stream.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is a single generated operation.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte // nil for reads
}

// Mix declares operation proportions; they should sum to ~1.0.
type Mix struct {
	ReadProportion   float64
	UpdateProportion float64
	InsertProportion float64
	ScanProportion   float64
	RMWProportion    float64
}

// Standard YCSB mixes used in the paper's evaluation (§6.1).
var (
	// MixA is YCSB Workload A: update-heavy, 50% reads / 50% updates.
	MixA = Mix{ReadProportion: 0.5, UpdateProportion: 0.5}
	// MixB is YCSB Workload B: read-heavy, 95% reads / 5% updates.
	MixB = Mix{ReadProportion: 0.95, UpdateProportion: 0.05}
)

// Spec fully describes a workload: population, key distribution, mix and
// dataset. It corresponds to one (w) in the cost model.
type Spec struct {
	Name        string
	RecordCount int64
	Mix         Mix
	Dataset     Dataset
	// Distribution is one of "zipfian", "uniform", "latest", "hotspot",
	// "hotspot-shift".
	Distribution string
	ZipfTheta    float64
	KeyPrefix    string
	Seed         int64
	// ShiftEvery rotates the hotspot-shift hot window every this many
	// operations (default RecordCount, i.e. one rotation per population
	// pass). Only "hotspot-shift" reads it.
	ShiftEvery int64
}

// DefaultSpec returns Workload A over the cities dataset with n records.
func DefaultSpec(n int64) Spec {
	return Spec{
		Name:         "workloada",
		RecordCount:  n,
		Mix:          MixA,
		Dataset:      NewCities(),
		Distribution: "zipfian",
		ZipfTheta:    ZipfianTheta,
		KeyPrefix:    "user",
		Seed:         1,
	}
}

// WorkloadA returns YCSB workload A (50/50) with n records over ds.
func WorkloadA(n int64, ds Dataset) Spec {
	s := DefaultSpec(n)
	s.Dataset = ds
	return s
}

// WorkloadB returns YCSB workload B (95/5) with n records over ds.
func WorkloadB(n int64, ds Dataset) Spec {
	s := DefaultSpec(n)
	s.Name = "workloadb"
	s.Mix = MixB
	s.Dataset = ds
	return s
}

// Key renders the key for index i.
func (s Spec) Key(i int64) string {
	return fmt.Sprintf("%s%012d", s.KeyPrefix, i)
}

// Generator produces operation streams for a Spec. Not safe for concurrent
// use; create one per worker with distinct seeds.
type Generator struct {
	spec    Spec
	rng     *rand.Rand
	chooser KeyChooser
	// insertCount tracks how many records exist (grows with inserts).
	insertCount int64
}

// NewGenerator builds a Generator for the spec, offset differentiates
// concurrent generator streams.
func NewGenerator(spec Spec, offset int64) *Generator {
	rng := rand.New(rand.NewSource(spec.Seed*7919 + offset*104729 + 1))
	var chooser KeyChooser
	theta := spec.ZipfTheta
	if theta <= 0 || theta >= 1 {
		theta = ZipfianTheta
	}
	switch spec.Distribution {
	case "uniform":
		chooser = NewUniform(spec.RecordCount)
	case "latest":
		chooser = NewLatest(spec.RecordCount, theta)
	case "hotspot":
		chooser = NewHotspot(spec.RecordCount, 0.01, 0.9)
	case "hotspot-shift":
		shift := spec.ShiftEvery
		if shift <= 0 {
			shift = spec.RecordCount
		}
		chooser = NewShiftingHotspot(spec.RecordCount, 0.1, 0.9, shift)
	default:
		chooser = NewScrambledZipfian(spec.RecordCount, theta)
	}
	return &Generator{spec: spec, rng: rng, chooser: chooser, insertCount: spec.RecordCount}
}

// LoadOps returns the load-phase insert stream for the whole population.
func (s Spec) LoadOps() []Op {
	ops := make([]Op, s.RecordCount)
	for i := int64(0); i < s.RecordCount; i++ {
		ops[i] = Op{Kind: OpInsert, Key: s.Key(i), Value: s.Dataset.Record(i)}
	}
	return ops
}

// Next generates the next run-phase operation.
func (g *Generator) Next() Op {
	p := g.rng.Float64()
	m := g.spec.Mix
	switch {
	case p < m.ReadProportion:
		return Op{Kind: OpRead, Key: g.spec.Key(g.chooser.Next(g.rng))}
	case p < m.ReadProportion+m.UpdateProportion:
		i := g.chooser.Next(g.rng)
		return Op{Kind: OpUpdate, Key: g.spec.Key(i), Value: g.spec.Dataset.Record(i + g.rng.Int63n(1024))}
	case p < m.ReadProportion+m.UpdateProportion+m.InsertProportion:
		i := g.insertCount
		g.insertCount++
		g.chooser.SetItemCount(g.insertCount)
		return Op{Kind: OpInsert, Key: g.spec.Key(i), Value: g.spec.Dataset.Record(i)}
	case p < m.ReadProportion+m.UpdateProportion+m.InsertProportion+m.ScanProportion:
		return Op{Kind: OpScan, Key: g.spec.Key(g.chooser.Next(g.rng))}
	default:
		i := g.chooser.Next(g.rng)
		return Op{Kind: OpReadModifyWrite, Key: g.spec.Key(i), Value: g.spec.Dataset.Record(i + 1)}
	}
}

// Ops generates n run-phase operations.
func (g *Generator) Ops(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Stats summarizes an operation stream (used by tests and the advisor).
type Stats struct {
	Total   int
	Reads   int
	Writes  int
	Uniques int
	Bytes   int64
}

// Summarize computes stream statistics.
func Summarize(ops []Op) Stats {
	st := Stats{Total: len(ops)}
	seen := make(map[string]struct{}, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case OpRead, OpScan:
			st.Reads++
		default:
			st.Writes++
		}
		if _, ok := seen[op.Key]; !ok {
			seen[op.Key] = struct{}{}
			st.Uniques++
		}
		st.Bytes += int64(len(op.Value))
	}
	return st
}
