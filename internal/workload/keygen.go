// Package workload implements a YCSB-style workload generator (paper §6.1):
// key choosers (uniform, zipfian, scrambled zipfian, latest), operation
// mixes (Workload A: 50/50 update-heavy; Workload B: 95/5 read-heavy),
// and record datasets (a synthetic Cities dataset plus two machine-generated
// KV datasets) used for data insertion in place of YCSB's random strings.
package workload

import (
	"math"
	"math/rand"
)

// KeyChooser selects the index of the next key to operate on,
// in [0, n) for some population size n.
type KeyChooser interface {
	// Next returns a key index using the supplied source of randomness.
	Next(rng *rand.Rand) int64
	// SetItemCount updates the population size (for insert-growing workloads).
	SetItemCount(n int64)
}

// --- Uniform ---

// Uniform picks keys uniformly at random.
type Uniform struct{ n int64 }

// NewUniform returns a uniform chooser over [0, n).
func NewUniform(n int64) *Uniform {
	if n < 1 {
		n = 1
	}
	return &Uniform{n: n}
}

// Next implements KeyChooser.
func (u *Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.n) }

// SetItemCount implements KeyChooser.
func (u *Uniform) SetItemCount(n int64) {
	if n > 0 {
		u.n = n
	}
}

// --- Zipfian (Gray et al. quick method, as used by YCSB) ---

// Zipfian generates keys with a zipfian distribution: item 0 is most
// popular, with popularity decaying as rank^-theta. This reproduces the
// skewed access patterns the paper's tiered-storage analysis targets (§2.5.2).
type Zipfian struct {
	items         int64
	theta         float64
	alpha         float64
	zetan         float64
	zeta2theta    float64
	eta           float64
	countForZeta  int64
	allowItemGrow bool
	base          int64
}

// ZipfianTheta is YCSB's default skew constant.
const ZipfianTheta = 0.99

// NewZipfian returns a zipfian chooser over [0, n) with the given theta.
func NewZipfian(n int64, theta float64) *Zipfian {
	if n < 1 {
		n = 1
	}
	z := &Zipfian{items: n, theta: theta, allowItemGrow: true}
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.zetan = zetaStatic(n, theta)
	z.countForZeta = n
	z.eta = z.computeEta()
	return z
}

func (z *Zipfian) computeEta() float64 {
	return (1 - math.Pow(2.0/float64(z.items), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// zetaStatic computes the zeta constant sum_{i=1..n} 1/i^theta.
func zetaStatic(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// zetaIncr extends a previously computed zeta from oldN to n.
func zetaIncr(oldN int64, n int64, theta, oldZeta float64) float64 {
	sum := oldZeta
	for i := oldN + 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// SetItemCount implements KeyChooser; recomputes zeta incrementally.
func (z *Zipfian) SetItemCount(n int64) {
	if n <= z.items || !z.allowItemGrow {
		return
	}
	z.zetan = zetaIncr(z.countForZeta, n, z.theta, z.zetan)
	z.countForZeta = n
	z.items = n
	z.eta = z.computeEta()
}

// Next implements KeyChooser using the Gray et al. analytic method.
func (z *Zipfian) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return z.base
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return z.base + 1
	}
	idx := z.base + int64(float64(z.items)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.base+z.items {
		idx = z.base + z.items - 1
	}
	return idx
}

// --- Scrambled Zipfian ---

// ScrambledZipfian spreads the zipfian head across the key space by
// hashing, so hot keys are not clustered at low indexes. This matches
// YCSB's default request distribution.
type ScrambledZipfian struct {
	z *Zipfian
	n int64
}

// NewScrambledZipfian returns a scrambled zipfian chooser over [0, n).
func NewScrambledZipfian(n int64, theta float64) *ScrambledZipfian {
	if n < 1 {
		n = 1
	}
	return &ScrambledZipfian{z: NewZipfian(n, theta), n: n}
}

// Next implements KeyChooser.
func (s *ScrambledZipfian) Next(rng *rand.Rand) int64 {
	r := s.z.Next(rng)
	return int64(fnvHash64(uint64(r)) % uint64(s.n))
}

// SetItemCount implements KeyChooser.
func (s *ScrambledZipfian) SetItemCount(n int64) {
	if n > s.n {
		s.n = n
		s.z.SetItemCount(n)
	}
}

// fnvHash64 is the FNV-1a 64-bit hash of an integer, used for scrambling.
func fnvHash64(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// --- Latest ---

// Latest favors recently inserted items: the most recent item is the most
// popular. Used for workloads with temporal locality (paper case study 2,
// where "recent data is frequently accessed").
type Latest struct {
	z *Zipfian
	n int64
}

// NewLatest returns a latest-skewed chooser over [0, n).
func NewLatest(n int64, theta float64) *Latest {
	if n < 1 {
		n = 1
	}
	return &Latest{z: NewZipfian(n, theta), n: n}
}

// Next implements KeyChooser: index counted back from the newest item.
func (l *Latest) Next(rng *rand.Rand) int64 {
	off := l.z.Next(rng)
	idx := l.n - 1 - off
	if idx < 0 {
		idx = 0
	}
	return idx
}

// SetItemCount implements KeyChooser.
func (l *Latest) SetItemCount(n int64) {
	if n > 0 {
		l.n = n
		l.z.SetItemCount(n)
	}
}

// --- Sequential ---

// Sequential returns 0,1,2,... and is used for the YCSB load phase.
type Sequential struct{ next int64 }

// NewSequential returns a sequential chooser starting at 0.
func NewSequential() *Sequential { return &Sequential{} }

// Next implements KeyChooser (ignores rng).
func (s *Sequential) Next(_ *rand.Rand) int64 {
	v := s.next
	s.next++
	return v
}

// SetItemCount implements KeyChooser (no-op).
func (s *Sequential) SetItemCount(int64) {}

// --- Hotspot ---

// Hotspot sends hotOpFraction of operations to a hotSetFraction of the keys.
// Used to construct the burst scenario in fig9 and the elastic threading
// tests: a dynamic hotspot concentrates on one shard.
type Hotspot struct {
	n              int64
	hotSetFraction float64
	hotOpFraction  float64
}

// NewHotspot returns a hotspot chooser over [0,n).
func NewHotspot(n int64, hotSetFraction, hotOpFraction float64) *Hotspot {
	if n < 1 {
		n = 1
	}
	if hotSetFraction <= 0 || hotSetFraction > 1 {
		hotSetFraction = 0.2
	}
	if hotOpFraction < 0 || hotOpFraction > 1 {
		hotOpFraction = 0.8
	}
	return &Hotspot{n: n, hotSetFraction: hotSetFraction, hotOpFraction: hotOpFraction}
}

// Next implements KeyChooser.
func (h *Hotspot) Next(rng *rand.Rand) int64 {
	hotN := int64(float64(h.n) * h.hotSetFraction)
	if hotN < 1 {
		hotN = 1
	}
	if rng.Float64() < h.hotOpFraction {
		return rng.Int63n(hotN)
	}
	coldN := h.n - hotN
	if coldN < 1 {
		return rng.Int63n(h.n)
	}
	return hotN + rng.Int63n(coldN)
}

// SetItemCount implements KeyChooser.
func (h *Hotspot) SetItemCount(n int64) {
	if n > 0 {
		h.n = n
	}
}

// --- Shifting hotspot ---

// ShiftingHotspot is a hotspot whose hot set rotates through the key
// space every shiftEvery operations: phase p concentrates hotOpFraction
// of operations on the window starting at p*hotN (mod n). It models the
// workload drift the adaptive cache tiering must re-converge under — a
// static budget split is optimal for none of the phases.
type ShiftingHotspot struct {
	n              int64
	hotSetFraction float64
	hotOpFraction  float64
	shiftEvery     int64
	ops            int64
}

// NewShiftingHotspot returns a shifting-hotspot chooser over [0,n) whose
// hot window rotates every shiftEvery operations.
func NewShiftingHotspot(n int64, hotSetFraction, hotOpFraction float64, shiftEvery int64) *ShiftingHotspot {
	if n < 1 {
		n = 1
	}
	if hotSetFraction <= 0 || hotSetFraction > 1 {
		hotSetFraction = 0.1
	}
	if hotOpFraction < 0 || hotOpFraction > 1 {
		hotOpFraction = 0.9
	}
	if shiftEvery < 1 {
		shiftEvery = 100000
	}
	return &ShiftingHotspot{
		n:              n,
		hotSetFraction: hotSetFraction,
		hotOpFraction:  hotOpFraction,
		shiftEvery:     shiftEvery,
	}
}

// Phase reports the current hot-window index (ops so far / shiftEvery).
func (s *ShiftingHotspot) Phase() int64 { return s.ops / s.shiftEvery }

// Next implements KeyChooser. Determinism: the phase advances purely on
// the operation count, so a fixed seed replays the exact key sequence.
// Not safe for concurrent use (like the other choosers — wrap per
// goroutine or feed from one).
func (s *ShiftingHotspot) Next(rng *rand.Rand) int64 {
	phase := s.ops / s.shiftEvery
	s.ops++
	hotN := int64(float64(s.n) * s.hotSetFraction)
	if hotN < 1 {
		hotN = 1
	}
	start := (phase * hotN) % s.n
	if rng.Float64() < s.hotOpFraction {
		return (start + rng.Int63n(hotN)) % s.n
	}
	coldN := s.n - hotN
	if coldN < 1 {
		return rng.Int63n(s.n)
	}
	// Offset past the hot window, wrapping around the key space.
	return (start + hotN + rng.Int63n(coldN)) % s.n
}

// SetItemCount implements KeyChooser.
func (s *ShiftingHotspot) SetItemCount(n int64) {
	if n > 0 {
		s.n = n
	}
}
