// Package workload implements a YCSB-style workload generator (paper §6.1):
// key choosers (uniform, zipfian, scrambled zipfian, latest), operation
// mixes (Workload A: 50/50 update-heavy; Workload B: 95/5 read-heavy),
// and record datasets (a synthetic Cities dataset plus two machine-generated
// KV datasets) used for data insertion in place of YCSB's random strings.
package workload

import (
	"math"
	"math/rand"
)

// KeyChooser selects the index of the next key to operate on,
// in [0, n) for some population size n.
type KeyChooser interface {
	// Next returns a key index using the supplied source of randomness.
	Next(rng *rand.Rand) int64
	// SetItemCount updates the population size (for insert-growing workloads).
	SetItemCount(n int64)
}

// --- Uniform ---

// Uniform picks keys uniformly at random.
type Uniform struct{ n int64 }

// NewUniform returns a uniform chooser over [0, n).
func NewUniform(n int64) *Uniform {
	if n < 1 {
		n = 1
	}
	return &Uniform{n: n}
}

// Next implements KeyChooser.
func (u *Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.n) }

// SetItemCount implements KeyChooser.
func (u *Uniform) SetItemCount(n int64) {
	if n > 0 {
		u.n = n
	}
}

// --- Zipfian (Gray et al. quick method, as used by YCSB) ---

// Zipfian generates keys with a zipfian distribution: item 0 is most
// popular, with popularity decaying as rank^-theta. This reproduces the
// skewed access patterns the paper's tiered-storage analysis targets (§2.5.2).
type Zipfian struct {
	items         int64
	theta         float64
	alpha         float64
	zetan         float64
	zeta2theta    float64
	eta           float64
	countForZeta  int64
	allowItemGrow bool
	base          int64
}

// ZipfianTheta is YCSB's default skew constant.
const ZipfianTheta = 0.99

// NewZipfian returns a zipfian chooser over [0, n) with the given theta.
func NewZipfian(n int64, theta float64) *Zipfian {
	if n < 1 {
		n = 1
	}
	z := &Zipfian{items: n, theta: theta, allowItemGrow: true}
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.zetan = zetaStatic(n, theta)
	z.countForZeta = n
	z.eta = z.computeEta()
	return z
}

func (z *Zipfian) computeEta() float64 {
	return (1 - math.Pow(2.0/float64(z.items), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// zetaStatic computes the zeta constant sum_{i=1..n} 1/i^theta.
func zetaStatic(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// zetaIncr extends a previously computed zeta from oldN to n.
func zetaIncr(oldN int64, n int64, theta, oldZeta float64) float64 {
	sum := oldZeta
	for i := oldN + 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// SetItemCount implements KeyChooser; recomputes zeta incrementally.
func (z *Zipfian) SetItemCount(n int64) {
	if n <= z.items || !z.allowItemGrow {
		return
	}
	z.zetan = zetaIncr(z.countForZeta, n, z.theta, z.zetan)
	z.countForZeta = n
	z.items = n
	z.eta = z.computeEta()
}

// Next implements KeyChooser using the Gray et al. analytic method.
func (z *Zipfian) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return z.base
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return z.base + 1
	}
	idx := z.base + int64(float64(z.items)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.base+z.items {
		idx = z.base + z.items - 1
	}
	return idx
}

// --- Scrambled Zipfian ---

// ScrambledZipfian spreads the zipfian head across the key space by
// hashing, so hot keys are not clustered at low indexes. This matches
// YCSB's default request distribution.
type ScrambledZipfian struct {
	z *Zipfian
	n int64
}

// NewScrambledZipfian returns a scrambled zipfian chooser over [0, n).
func NewScrambledZipfian(n int64, theta float64) *ScrambledZipfian {
	if n < 1 {
		n = 1
	}
	return &ScrambledZipfian{z: NewZipfian(n, theta), n: n}
}

// Next implements KeyChooser.
func (s *ScrambledZipfian) Next(rng *rand.Rand) int64 {
	r := s.z.Next(rng)
	return int64(fnvHash64(uint64(r)) % uint64(s.n))
}

// SetItemCount implements KeyChooser.
func (s *ScrambledZipfian) SetItemCount(n int64) {
	if n > s.n {
		s.n = n
		s.z.SetItemCount(n)
	}
}

// fnvHash64 is the FNV-1a 64-bit hash of an integer, used for scrambling.
func fnvHash64(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// --- Latest ---

// Latest favors recently inserted items: the most recent item is the most
// popular. Used for workloads with temporal locality (paper case study 2,
// where "recent data is frequently accessed").
type Latest struct {
	z *Zipfian
	n int64
}

// NewLatest returns a latest-skewed chooser over [0, n).
func NewLatest(n int64, theta float64) *Latest {
	if n < 1 {
		n = 1
	}
	return &Latest{z: NewZipfian(n, theta), n: n}
}

// Next implements KeyChooser: index counted back from the newest item.
func (l *Latest) Next(rng *rand.Rand) int64 {
	off := l.z.Next(rng)
	idx := l.n - 1 - off
	if idx < 0 {
		idx = 0
	}
	return idx
}

// SetItemCount implements KeyChooser.
func (l *Latest) SetItemCount(n int64) {
	if n > 0 {
		l.n = n
		l.z.SetItemCount(n)
	}
}

// --- Sequential ---

// Sequential returns 0,1,2,... and is used for the YCSB load phase.
type Sequential struct{ next int64 }

// NewSequential returns a sequential chooser starting at 0.
func NewSequential() *Sequential { return &Sequential{} }

// Next implements KeyChooser (ignores rng).
func (s *Sequential) Next(_ *rand.Rand) int64 {
	v := s.next
	s.next++
	return v
}

// SetItemCount implements KeyChooser (no-op).
func (s *Sequential) SetItemCount(int64) {}

// --- Hotspot ---

// Hotspot sends hotOpFraction of operations to a hotSetFraction of the keys.
// Used to construct the burst scenario in fig9 and the elastic threading
// tests: a dynamic hotspot concentrates on one shard.
type Hotspot struct {
	n              int64
	hotSetFraction float64
	hotOpFraction  float64
}

// NewHotspot returns a hotspot chooser over [0,n).
func NewHotspot(n int64, hotSetFraction, hotOpFraction float64) *Hotspot {
	if n < 1 {
		n = 1
	}
	if hotSetFraction <= 0 || hotSetFraction > 1 {
		hotSetFraction = 0.2
	}
	if hotOpFraction < 0 || hotOpFraction > 1 {
		hotOpFraction = 0.8
	}
	return &Hotspot{n: n, hotSetFraction: hotSetFraction, hotOpFraction: hotOpFraction}
}

// Next implements KeyChooser.
func (h *Hotspot) Next(rng *rand.Rand) int64 {
	hotN := int64(float64(h.n) * h.hotSetFraction)
	if hotN < 1 {
		hotN = 1
	}
	if rng.Float64() < h.hotOpFraction {
		return rng.Int63n(hotN)
	}
	coldN := h.n - hotN
	if coldN < 1 {
		return rng.Int63n(h.n)
	}
	return hotN + rng.Int63n(coldN)
}

// SetItemCount implements KeyChooser.
func (h *Hotspot) SetItemCount(n int64) {
	if n > 0 {
		h.n = n
	}
}
