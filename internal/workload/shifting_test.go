package workload

import (
	"math/rand"
	"testing"
)

func TestShiftingHotspotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewShiftingHotspot(1000, 0.1, 0.9, 500)
	for i := 0; i < 20000; i++ {
		v := s.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("shifting hotspot out of range: %d", v)
		}
	}
}

// TestShiftingHotspotRotates checks the hot window actually moves: within
// one phase the hot window absorbs ~hotOpFraction of accesses, and after
// shiftEvery ops the dominant window is a different one.
func TestShiftingHotspotRotates(t *testing.T) {
	const (
		n     = 1000
		hotN  = 100 // 0.1 * n
		shift = 10000
	)
	rng := rand.New(rand.NewSource(12))
	s := NewShiftingHotspot(n, 0.1, 0.9, shift)

	phaseHot := func(phase int64, v int64) bool {
		start := (phase * hotN) % n
		return (v-start+n)%n < hotN
	}

	for phase := int64(0); phase < 3; phase++ {
		if got := s.Phase(); got != phase {
			t.Fatalf("phase %d: Phase() = %d", phase, got)
		}
		inHot := 0
		for i := 0; i < shift; i++ {
			if phaseHot(phase, s.Next(rng)) {
				inHot++
			}
		}
		frac := float64(inHot) / shift
		// 90% of ops target the hot window; the cold 10% spread over the
		// other 90% of keys, so expect ~0.9 + noise.
		if frac < 0.85 || frac > 0.95 {
			t.Errorf("phase %d: hot-window fraction %.3f, want ~0.9", phase, frac)
		}
	}
}

// TestShiftingHotspotDeterministic: same seed => same sequence (phase
// state advances on op count only, never on wall time).
func TestShiftingHotspotDeterministic(t *testing.T) {
	run := func() []int64 {
		rng := rand.New(rand.NewSource(13))
		s := NewShiftingHotspot(5000, 0.05, 0.85, 700)
		out := make([]int64, 3000)
		for i := range out {
			out[i] = s.Next(rng)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at op %d: %d != %d", i, a[i], b[i])
		}
	}
}

// TestGeneratorHotspotShiftDeterministic: the Spec wiring is seed-stable
// too, and uses ShiftEvery.
func TestGeneratorHotspotShiftDeterministic(t *testing.T) {
	spec := DefaultSpec(2000)
	spec.Distribution = "hotspot-shift"
	spec.ShiftEvery = 400
	run := func() []Op {
		return NewGenerator(spec, 0).Ops(2000)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Key != b[i].Key {
			t.Fatalf("generator diverged at op %d: %v/%s != %v/%s",
				i, a[i].Kind, a[i].Key, b[i].Kind, b[i].Key)
		}
	}
}
