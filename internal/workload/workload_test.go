package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDatasetsDeterministic(t *testing.T) {
	for _, ds := range []Dataset{NewCities(), NewKV1(), NewKV2(), NewRandom(64)} {
		a := ds.Record(42)
		b := ds.Record(42)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: Record not deterministic", ds.Name())
		}
		c := ds.Record(43)
		if bytes.Equal(a, c) {
			t.Errorf("%s: distinct keys should yield distinct records", ds.Name())
		}
	}
}

func TestDatasetShapes(t *testing.T) {
	cities := NewCities().Record(7)
	if n := bytes.Count(cities, []byte(",")); n != 7 {
		t.Errorf("cities record should have 8 CSV fields, got %d commas: %s", n, cities)
	}
	kv1 := NewKV1().Record(7)
	if !bytes.HasPrefix(kv1, []byte(`{"user_id":`)) || !bytes.HasSuffix(kv1, []byte("}")) {
		t.Errorf("kv1 record should be JSON-shaped: %s", kv1)
	}
	kv2 := NewKV2().Record(7)
	if n := bytes.Count(kv2, []byte("|")); n != 9 {
		t.Errorf("kv2 record should have 10 pipe fields, got %d pipes: %s", n, kv2)
	}
}

func TestDatasetAvgSizeRoughlyRight(t *testing.T) {
	for _, ds := range []Dataset{NewCities(), NewKV1(), NewKV2()} {
		var total int
		const n = 500
		for i := int64(0); i < n; i++ {
			total += len(ds.Record(i))
		}
		avg := float64(total) / n
		claimed := float64(ds.AvgRecordSize())
		if math.Abs(avg-claimed)/claimed > 0.35 {
			t.Errorf("%s: AvgRecordSize %v but measured %.1f", ds.Name(), claimed, avg)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"kv1", "kv1"}, {"KV2", "kv2"}, {"random", "random"},
		{"cities", "cities"}, {"unknown", "cities"},
	} {
		if got := DatasetByName(tc.in).Name(); got != tc.want {
			t.Errorf("DatasetByName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSample(t *testing.T) {
	s := Sample(NewKV1(), 32)
	if len(s) != 32 {
		t.Fatalf("sample size %d", len(s))
	}
	for _, rec := range s {
		if len(rec) == 0 {
			t.Fatal("empty sample record")
		}
	}
}

func TestLoadOps(t *testing.T) {
	spec := DefaultSpec(100)
	ops := spec.LoadOps()
	if len(ops) != 100 {
		t.Fatalf("load ops = %d, want 100", len(ops))
	}
	seen := map[string]bool{}
	for _, op := range ops {
		if op.Kind != OpInsert {
			t.Fatalf("load op kind %v", op.Kind)
		}
		if len(op.Value) == 0 {
			t.Fatal("load op without value")
		}
		if seen[op.Key] {
			t.Fatalf("duplicate key in load: %s", op.Key)
		}
		seen[op.Key] = true
		if !strings.HasPrefix(op.Key, "user") {
			t.Fatalf("key prefix missing: %s", op.Key)
		}
	}
}

func TestMixProportions(t *testing.T) {
	for _, tc := range []struct {
		name      string
		spec      Spec
		wantReads float64
	}{
		{"A", WorkloadA(1000, NewCities()), 0.5},
		{"B", WorkloadB(1000, NewCities()), 0.95},
	} {
		g := NewGenerator(tc.spec, 0)
		ops := g.Ops(20000)
		st := Summarize(ops)
		frac := float64(st.Reads) / float64(st.Total)
		if math.Abs(frac-tc.wantReads) > 0.02 {
			t.Errorf("workload %s: read fraction %.3f, want ~%.2f", tc.name, frac, tc.wantReads)
		}
	}
}

func TestGeneratorKeysInPopulation(t *testing.T) {
	spec := WorkloadB(500, NewKV1())
	g := NewGenerator(spec, 3)
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if !strings.HasPrefix(op.Key, "user") {
			t.Fatalf("bad key %q", op.Key)
		}
		if op.Kind == OpUpdate && len(op.Value) == 0 {
			t.Fatal("update without value")
		}
		if op.Kind == OpRead && op.Value != nil {
			t.Fatal("read with value")
		}
	}
}

func TestGeneratorInsertGrowsPopulation(t *testing.T) {
	spec := DefaultSpec(100)
	spec.Mix = Mix{InsertProportion: 1.0}
	g := NewGenerator(spec, 0)
	op1 := g.Next()
	op2 := g.Next()
	if op1.Key == op2.Key {
		t.Fatal("inserts should use fresh keys")
	}
	if op1.Key != spec.Key(100) || op2.Key != spec.Key(101) {
		t.Fatalf("inserts should extend population: %s, %s", op1.Key, op2.Key)
	}
}

func TestGeneratorsWithDistinctOffsetsDiffer(t *testing.T) {
	spec := DefaultSpec(1000)
	a := NewGenerator(spec, 0).Ops(50)
	b := NewGenerator(spec, 1).Ops(50)
	same := 0
	for i := range a {
		if a[i].Key == b[i].Key && a[i].Kind == b[i].Kind {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("generators with different offsets produced identical streams")
	}
}

func TestSummarize(t *testing.T) {
	ops := []Op{
		{Kind: OpRead, Key: "a"},
		{Kind: OpRead, Key: "a"},
		{Kind: OpUpdate, Key: "b", Value: []byte("xy")},
		{Kind: OpInsert, Key: "c", Value: []byte("z")},
	}
	st := Summarize(ops)
	if st.Total != 4 || st.Reads != 2 || st.Writes != 2 || st.Uniques != 3 || st.Bytes != 3 {
		t.Fatalf("bad stats: %+v", st)
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "READ" || OpUpdate.String() != "UPDATE" ||
		OpInsert.String() != "INSERT" || OpScan.String() != "SCAN" ||
		OpReadModifyWrite.String() != "RMW" {
		t.Fatal("OpKind names wrong")
	}
	if OpKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestDistributionSelection(t *testing.T) {
	for _, dist := range []string{"zipfian", "uniform", "latest", "hotspot"} {
		spec := DefaultSpec(100)
		spec.Distribution = dist
		g := NewGenerator(spec, 0)
		for i := 0; i < 100; i++ {
			op := g.Next()
			if op.Key == "" {
				t.Fatalf("dist %s: empty key", dist)
			}
		}
	}
}
