package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Dataset produces deterministic record values for key indexes. The paper
// adapts YCSB "to accept user-specified datasets for data insertion, as
// opposed to the default use of random strings as values" (§6.1), using
// the geonames Cities dataset plus two internal machine-generated KV
// datasets. Offline, we synthesize structurally equivalent datasets: what
// the compression experiments (Table 2) depend on is shared structure
// across records, which these generators preserve.
type Dataset interface {
	// Name identifies the dataset ("cities", "kv1", "kv2", "random").
	Name() string
	// Record returns the value for key index i. Deterministic in i.
	Record(i int64) []byte
	// AvgRecordSize returns the approximate mean record length in bytes.
	AvgRecordSize() int
}

// ---- Cities ----

// citiesDataset emits CSV rows shaped like the geonames export:
// name,asciiname,country,region,population,lat,lng,timezone
type citiesDataset struct{}

// NewCities returns the synthetic Cities dataset.
func NewCities() Dataset { return citiesDataset{} }

func (citiesDataset) Name() string { return "cities" }

var (
	cityPrefixes = []string{
		"San", "Santa", "New", "Port", "Lake", "Fort", "Mount", "North",
		"South", "East", "West", "Saint", "El", "La", "Las", "Los", "Grand",
		"Little", "Upper", "Lower",
	}
	cityRoots = []string{
		"field", "ville", "ton", "burg", "ford", "haven", "wood", "land",
		"bridge", "port", "mouth", "stad", "grad", "pur", "abad", "polis",
		"chester", "cester", "ham", "wick", "dale", "view", "springs", "falls",
	}
	cityStems = []string{
		"Alba", "Bel", "Cala", "Dor", "Elm", "Fair", "Glen", "Hart", "Iron",
		"Jas", "Kings", "Lin", "Mill", "Nor", "Oak", "Pine", "Quin", "River",
		"Stone", "Thorn", "Val", "Win", "York", "Zan", "Ash", "Birch", "Cedar",
	}
	countries = []string{
		"US", "CN", "IN", "BR", "RU", "JP", "DE", "FR", "GB", "IT", "CA",
		"AU", "ES", "MX", "ID", "NL", "SA", "TR", "CH", "AR", "SE", "NO",
	}
	regions = []string{
		"California", "Bavaria", "Ontario", "Queensland", "Guangdong",
		"Maharashtra", "Sao Paulo", "Hokkaido", "Provence", "Andalusia",
		"Texas", "Siberia", "Anatolia", "Patagonia", "Yorkshire", "Flanders",
	}
	timezones = []string{
		"America/New_York", "America/Los_Angeles", "Europe/Berlin",
		"Europe/Paris", "Asia/Shanghai", "Asia/Tokyo", "Asia/Kolkata",
		"Australia/Sydney", "America/Sao_Paulo", "Europe/Moscow",
		"Africa/Cairo", "America/Mexico_City",
	}
)

func (citiesDataset) Record(i int64) []byte {
	rng := rand.New(rand.NewSource(i*2654435761 + 99991))
	var name strings.Builder
	if rng.Intn(3) == 0 {
		name.WriteString(cityPrefixes[rng.Intn(len(cityPrefixes))])
		name.WriteByte(' ')
	}
	name.WriteString(cityStems[rng.Intn(len(cityStems))])
	name.WriteString(cityRoots[rng.Intn(len(cityRoots))])
	n := name.String()
	pop := int64(500+rng.Intn(100_000)) * int64(1+rng.Intn(200))
	lat := rng.Float64()*180 - 90
	lng := rng.Float64()*360 - 180
	row := fmt.Sprintf("%s,%s,%s,%s,%d,%.5f,%.5f,%s",
		n, asciiFold(n),
		countries[rng.Intn(len(countries))],
		regions[rng.Intn(len(regions))],
		pop, lat, lng,
		timezones[rng.Intn(len(timezones))])
	return []byte(row)
}

func (citiesDataset) AvgRecordSize() int { return 80 }

func asciiFold(s string) string { return strings.ToLower(strings.ReplaceAll(s, " ", "-")) }

// ---- KV1: machine-generated key-value records (JSON-ish) ----

// kv1Dataset emits JSON-like serialized service records sharing a common
// schema, mimicking machine-generated data with distinctive patterns
// inside the values — the regime where PBC shines (paper Table 2).
type kv1Dataset struct{}

// NewKV1 returns the synthetic KV1 dataset.
func NewKV1() Dataset { return kv1Dataset{} }

func (kv1Dataset) Name() string { return "kv1" }

var (
	kv1Status  = []string{"ACTIVE", "INACTIVE", "SUSPENDED", "PENDING"}
	kv1Channel = []string{"mobile_app", "web_portal", "mini_program", "api_gateway"}
	kv1City    = []string{"hangzhou", "shanghai", "beijing", "shenzhen", "chengdu", "xian"}
)

func (kv1Dataset) Record(i int64) []byte {
	rng := rand.New(rand.NewSource(i*40503 + 7))
	uid := 2088_0000_0000 + i
	row := fmt.Sprintf(
		`{"user_id":"%d","status":"%s","level":%d,"channel":"%s","city":"%s","score":%d,"last_login_ts":%d,"tags":["t%d","t%d"],"balance_cents":%d}`,
		uid,
		kv1Status[rng.Intn(len(kv1Status))],
		1+rng.Intn(9),
		kv1Channel[rng.Intn(len(kv1Channel))],
		kv1City[rng.Intn(len(kv1City))],
		rng.Intn(1000),
		1700_000_000+rng.Int63n(30_000_000),
		rng.Intn(64), rng.Intn(64),
		rng.Int63n(10_000_000))
	return []byte(row)
}

func (kv1Dataset) AvgRecordSize() int { return 190 }

// ---- KV2: machine-generated delimited records ----

// kv2Dataset emits pipe-delimited transaction-ledger rows with fixed field
// templates, the second machine-generated regime of Table 2.
type kv2Dataset struct{}

// NewKV2 returns the synthetic KV2 dataset.
func NewKV2() Dataset { return kv2Dataset{} }

func (kv2Dataset) Name() string { return "kv2" }

var (
	kv2Biz   = []string{"TRADE_PAY", "TRANSFER", "REFUND", "WITHDRAW", "DEPOSIT"}
	kv2State = []string{"SUCCESS", "FAIL", "TIMEOUT", "PROCESSING"}
	kv2Bank  = []string{"ICBC", "CCB", "ABC", "BOC", "CMB", "SPDB"}
)

func (kv2Dataset) Record(i int64) []byte {
	rng := rand.New(rand.NewSource(i*65537 + 13))
	txID := fmt.Sprintf("20250%d10%012d", 1+rng.Intn(9), i)
	row := fmt.Sprintf(
		"%s|%s|%s|CNY|%d.%02d|%s|2025-0%d-1%d 0%d:%02d:%02d|out_biz_no_%d|settle_batch_%06d|MEMO:auto reconciliation entry",
		txID,
		kv2Biz[rng.Intn(len(kv2Biz))],
		kv2State[rng.Intn(len(kv2State))],
		rng.Int63n(1_000_000), rng.Intn(100),
		kv2Bank[rng.Intn(len(kv2Bank))],
		1+rng.Intn(9), rng.Intn(9),
		rng.Intn(10), rng.Intn(60), rng.Intn(60),
		rng.Int63n(1_000_000_000),
		rng.Intn(1_000_000))
	return []byte(row)
}

func (kv2Dataset) AvgRecordSize() int { return 135 }

// ---- Random: YCSB default incompressible values ----

// randomDataset emits pseudo-random printable bytes of a fixed size, the
// YCSB default. Used as the incompressible control.
type randomDataset struct{ size int }

// NewRandom returns a dataset of incompressible size-byte values.
func NewRandom(size int) Dataset {
	if size < 1 {
		size = 100
	}
	return randomDataset{size: size}
}

func (randomDataset) Name() string { return "random" }

func (d randomDataset) Record(i int64) []byte {
	rng := rand.New(rand.NewSource(i*31337 + 271828))
	b := make([]byte, d.size)
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789+/"
	for j := range b {
		b[j] = alphabet[rng.Intn(len(alphabet))]
	}
	return b
}

func (d randomDataset) AvgRecordSize() int { return d.size }

// DatasetByName resolves a dataset by its name; defaults to cities.
func DatasetByName(name string) Dataset {
	switch strings.ToLower(name) {
	case "kv1":
		return NewKV1()
	case "kv2":
		return NewKV2()
	case "random":
		return NewRandom(100)
	default:
		return NewCities()
	}
}

// Sample returns n records drawn deterministically from the dataset,
// used to pre-train compression dictionaries (paper §4.2: "we construct
// the dictionary offline using samples from data records").
func Sample(d Dataset, n int) [][]byte {
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		out[i] = d.Record(int64(i) * 17)
	}
	return out
}
