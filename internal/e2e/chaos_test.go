package e2e

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/client"
	"tierbase/internal/engine"
	"tierbase/internal/faults"
	"tierbase/internal/server"
)

// dumpInfoOnFailure registers a cleanup that prints the node's INFO
// replication and INFO health sections if the drill fails — the first
// thing anyone needs to diagnose a chaos failure.
func dumpInfoOnFailure(t *testing.T, name string, c *client.Client) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		for _, section := range []string{"replication", "health"} {
			v, err := c.Do("INFO", section)
			if err != nil {
				t.Logf("--- %s INFO %s unavailable: %v", name, section, err)
				continue
			}
			t.Logf("--- %s INFO %s ---\n%s", name, section, v)
		}
	})
}

// seed writes n keys of roughly valBytes each through c in batches.
func seed(t *testing.T, c *client.Client, prefix string, n, valBytes int) {
	t.Helper()
	val := strings.Repeat("x", valBytes)
	batch := make(map[string]string, 50)
	for i := 0; i < n; i++ {
		batch[fmt.Sprintf("%s%05d", prefix, i)] = val
		if len(batch) == 50 || i == n-1 {
			if err := c.MSet(batch); err != nil {
				t.Fatal(err)
			}
			batch = make(map[string]string, 50)
		}
	}
}

// TestChaosSlowLinkFullSync slows the master→replica link to a trickle
// while the replica bootstraps by full sync. The master must keep
// serving writes at normal latency (bounded buffering + write deadlines,
// never an unbounded stall) and the replica must still converge.
func TestChaosSlowLinkFullSync(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildBinaries(t)
	masterAddr := freeAddr(t)
	replicaAddr := freeAddr(t)

	startProc(t, "master", filepath.Join(bin, "tierbase-server"),
		"-addr", masterAddr, "-node-id", "m1",
		"-repl-log-cap", "8", // force the late replica onto the full-sync path
		"-repl-write-timeout", "2s", "-repl-keepalive", "100ms",
		"-snapshot-chunk-bytes", "65536")
	mc := dialWait(t, masterAddr)
	dumpInfoOnFailure(t, "master", mc)

	// ~1 MiB of snapshot state: several seconds of transfer at the
	// throttled rate below.
	seed(t, mc, "snap:", 1000, 1024)

	proxy, err := faults.NewProxy("127.0.0.1:0", masterAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// Throttle BEFORE the replica dials: the whole full sync runs over a
	// ~10x-slowed link.
	proxy.Injector().SetByteRate(300 << 10)

	startProc(t, "replica", filepath.Join(bin, "tierbase-server"),
		"-addr", replicaAddr, "-node-id", "r1", "-replicaof", proxy.Addr(),
		"-repl-write-timeout", "2s", "-repl-keepalive", "100ms")
	rc := dialWait(t, replicaAddr)
	dumpInfoOnFailure(t, "replica", rc)

	// While the slow full sync is in flight, master-side writes must not
	// inherit the link's latency.
	var maxLat time.Duration
	for i := 0; i < 100; i++ {
		start := time.Now()
		if err := mc.Set(fmt.Sprintf("live:%03d", i), "v"); err != nil {
			t.Fatal(err)
		}
		if lat := time.Since(start); lat > maxLat {
			maxLat = lat
		}
	}
	t.Logf("max master write latency during slow full sync: %v", maxLat)
	if maxLat > 2*time.Second {
		t.Fatalf("master write stalled %v behind a slow replica link", maxLat)
	}

	// The replica still converges — slow, not dead.
	waitFor(t, 60*time.Second, "slow full sync completes", func() bool {
		v, err := rc.Get("snap:00999")
		return err == nil && v != ""
	})
	waitFor(t, 30*time.Second, "post-sync stream over slow link", func() bool {
		v, err := rc.Get("live:099")
		return err == nil && v == "v"
	})
	if got := infoField(rc, "replication", "full_syncs_done"); got == "0" || got == "" {
		t.Fatalf("full_syncs_done = %q, want >= 1", got)
	}
}

// TestChaosPartitionZeroAckedLoss partitions the replica link under
// semi-sync live traffic. During the partition writes must fail fast
// with NOREPLICAS (bounded, not hung); after healing, every write the
// master ever acknowledged must be readable on the replica.
func TestChaosPartitionZeroAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildBinaries(t)
	masterAddr := freeAddr(t)
	replicaAddr := freeAddr(t)

	startProc(t, "master", filepath.Join(bin, "tierbase-server"),
		"-addr", masterAddr, "-node-id", "m1",
		"-semisync-acks", "1", "-ack-timeout", "500ms",
		"-repl-write-timeout", "500ms", "-repl-keepalive", "100ms", "-repl-read-timeout", "400ms")
	mc := dialWait(t, masterAddr)
	dumpInfoOnFailure(t, "master", mc)

	proxy, err := faults.NewProxy("127.0.0.1:0", masterAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	startProc(t, "replica", filepath.Join(bin, "tierbase-server"),
		"-addr", replicaAddr, "-node-id", "r1", "-replicaof", proxy.Addr(),
		"-repl-write-timeout", "500ms", "-repl-keepalive", "100ms", "-repl-read-timeout", "400ms")
	rc := dialWait(t, replicaAddr)
	dumpInfoOnFailure(t, "replica", rc)
	waitFor(t, 10*time.Second, "replica link up", func() bool {
		return infoField(rc, "replication", "master_link") == "up"
	})

	// Live writer tracking acked writes. Semi-sync=1: a nil error means
	// the replica applied the write before the client saw OK.
	var (
		mu      sync.Mutex
		acked   = make(map[string]string)
		stop    = make(chan struct{})
		stalled time.Duration
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("chaos:%06d", i)
			start := time.Now()
			err := mc.Set(key, fmt.Sprintf("v%d", i))
			if lat := time.Since(start); lat > stalled {
				mu.Lock()
				stalled = lat
				mu.Unlock()
			}
			if err != nil {
				continue // NOREPLICAS during the partition: not acked
			}
			mu.Lock()
			acked[key] = fmt.Sprintf("v%d", i)
			mu.Unlock()
		}
	}()
	ackedCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(acked)
	}

	waitFor(t, 20*time.Second, "pre-partition acked writes", func() bool { return ackedCount() >= 100 })

	proxy.Injector().Partition()
	// During the partition the writer keeps running: acks cannot arrive,
	// so Sets fail with NOREPLICAS within the ack timeout — bounded, not
	// hung. Let it churn for a while.
	time.Sleep(1500 * time.Millisecond)
	preHeal := ackedCount()

	proxy.Injector().Heal()
	proxy.DropConns() // flush any zombie relays; the replica redials

	waitFor(t, 30*time.Second, "acked writes resume after heal", func() bool {
		return ackedCount() >= preHeal+100
	})
	close(stop)
	wg.Wait()
	mu.Lock()
	maxStall := stalled
	mu.Unlock()
	t.Logf("%d acked writes total, max write stall %v", ackedCount(), maxStall.Round(time.Millisecond))
	// Bounded master-side stall: ack timeout + write timeout + slop.
	if maxStall > 10*time.Second {
		t.Fatalf("write stalled %v across the partition", maxStall)
	}

	// Zero acked-write loss: every acknowledged key is on the replica.
	mu.Lock()
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	mu.Unlock()
	waitFor(t, 30*time.Second, "replica fully caught up", func() bool {
		last := keys[0]
		for _, k := range keys {
			if k > last {
				last = k
			}
		}
		v, err := rc.Get(last)
		return err == nil && v == acked[last]
	})
	const chunk = 500
	for lo := 0; lo < len(keys); lo += chunk {
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		got, err := rc.MGet(keys[lo:hi]...)
		if err != nil {
			t.Fatalf("verify MGet: %v", err)
		}
		for _, k := range keys[lo:hi] {
			if got[k] != acked[k] {
				t.Fatalf("acked write lost across partition: %s = %q, want %q", k, got[k], acked[k])
			}
		}
	}
	t.Logf("verified %d acked writes intact across the partition", len(keys))
}

// TestChaosSIGSTOPReplicaShed freezes the replica process mid-stream.
// The master must shed the frozen laggard (bounded backlog, no pinned
// buffers) and keep serving; after SIGCONT the replica re-syncs and
// converges.
func TestChaosSIGSTOPReplicaShed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildBinaries(t)
	masterAddr := freeAddr(t)
	replicaAddr := freeAddr(t)

	startProc(t, "master", filepath.Join(bin, "tierbase-server"),
		"-addr", masterAddr, "-node-id", "m1",
		"-shed-backlog", "64", "-repl-keepalive", "100ms",
		"-repl-write-timeout", "1s", "-repl-read-timeout", "500ms")
	mc := dialWait(t, masterAddr)
	dumpInfoOnFailure(t, "master", mc)

	replica := startProc(t, "replica", filepath.Join(bin, "tierbase-server"),
		"-addr", replicaAddr, "-node-id", "r1", "-replicaof", masterAddr,
		"-repl-keepalive", "100ms")
	rc := dialWait(t, replicaAddr)
	dumpInfoOnFailure(t, "replica", rc)

	if err := mc.Set("warm", "v"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "replica caught up", func() bool {
		v, err := rc.Get("warm")
		return err == nil && v == "v"
	})

	// Freeze the replica: it stops reading AND stops acking, exactly like
	// a GC-stalled or swapping node.
	if err := replica.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	unfrozen := false
	defer func() {
		if !unfrozen {
			replica.cmd.Process.Signal(syscall.SIGCONT)
		}
	}()

	// Push the backlog far past the shed bound; master writes must stay
	// fast while the frozen replica's session is dropped.
	var maxLat time.Duration
	for i := 0; i < 300; i++ {
		start := time.Now()
		if err := mc.Set(fmt.Sprintf("frozen:%04d", i), "v"); err != nil {
			t.Fatal(err)
		}
		if lat := time.Since(start); lat > maxLat {
			maxLat = lat
		}
	}
	t.Logf("max master write latency with frozen replica: %v", maxLat)
	if maxLat > 2*time.Second {
		t.Fatalf("master write stalled %v behind a frozen replica", maxLat)
	}
	waitFor(t, 20*time.Second, "frozen laggard shed", func() bool {
		shed, _ := strconv.Atoi(infoField(mc, "replication", "laggards_shed"))
		return shed >= 1 && infoField(mc, "replication", "connected_replicas") == "0"
	})

	// Thaw: the replica must re-sync (incrementally or by snapshot) and
	// converge.
	if err := replica.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	unfrozen = true
	if err := mc.Set("after-thaw", "x"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "thawed replica reconverges", func() bool {
		v1, e1 := rc.Get("frozen:0299")
		v2, e2 := rc.Get("after-thaw")
		return e1 == nil && v1 == "v" && e2 == nil && v2 == "x"
	})
}

// TestChaosDiskErrors runs a tiered in-process server against a storage
// tier scripted to fail: the store must degrade to cache-only serving
// (bounded-latency reads, no stalls), surface the state through INFO
// health, and heal when the disk recovers.
func TestChaosDiskErrors(t *testing.T) {
	disk := faults.WrapStorage(cache.NewMapStorage())
	// Pre-seed storage: these keys exist only in the storage tier, so
	// reading them requires a disk round trip.
	disk.Inner.Put("cold1", []byte("v1"))
	disk.Inner.Put("cold2", []byte("v2"))

	srv, err := server.Start(server.Config{
		Addr: "127.0.0.1:0",
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{
				Policy:                cache.WriteThrough,
				Engine:                eng,
				Storage:               disk,
				StorageRetries:        1,
				StorageRetryBackoff:   time.Millisecond,
				DegradeAfter:          2,
				DegradedProbeInterval: 50 * time.Millisecond,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dumpInfoOnFailure(t, "server", c)

	// Healthy: cold reads come from storage, writes go through.
	if v, err := c.Get("cold1"); err != nil || v != "v1" {
		t.Fatalf("healthy cold read: %q %v", v, err)
	}
	if err := c.Set("hot", "cached"); err != nil {
		t.Fatal(err)
	}

	// The disk starts erroring.
	disk.FailReads(true)
	disk.FailWrites(true)

	// Cold reads fail until the store trips degraded; then they serve
	// cache-only (absent) with bounded latency instead of stalling.
	waitFor(t, 10*time.Second, "store degrades", func() bool {
		c.Get("cold2")
		return infoField(c, "health", "degraded_shards") != "0" &&
			infoField(c, "health", "degraded_shards") != ""
	})
	start := time.Now()
	if _, err := c.Get("cold2"); err != client.Nil {
		// One probe per interval may reach the disk and fail; both shapes
		// are bounded, neither may hang.
		if err == nil {
			t.Fatal("degraded read returned a value from a failing disk")
		}
	}
	if lat := time.Since(start); lat > time.Second {
		t.Fatalf("degraded read took %v", lat)
	}
	// The cache tier still serves.
	if v, err := c.Get("hot"); err != nil || v != "cached" {
		t.Fatalf("degraded hot read: %q %v", v, err)
	}
	// Write-through writes fail fast — no lying about durability.
	if err := c.Set("lost", "x"); err == nil {
		t.Fatal("write-through Set succeeded on a dead disk")
	}
	if ef := infoField(c, "health", "storage_errors"); ef == "" || ef == "0" {
		t.Fatalf("storage_errors = %q", ef)
	}

	// Disk recovers: the probe heals the store and cold reads return.
	disk.FailReads(false)
	disk.FailWrites(false)
	waitFor(t, 10*time.Second, "store heals", func() bool {
		v, err := c.Get("cold2")
		return err == nil && v == "v2" &&
			infoField(c, "health", "degraded_shards") == "0"
	})
	if err := c.Set("recovered", "y"); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
}
