package e2e

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"tierbase/internal/client"
)

// term sends SIGTERM and reaps the process, returning its exit error
// (nil for a clean exit) — the graceful counterpart of kill.
func (p *proc) term(t *testing.T) error {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal %s: %v", p.name, err)
	}
	return p.cmd.Wait()
}

// TestGracefulDrain is the live SIGTERM drill: coordinator + semi-sync
// master + replica with routed writers in flight, then SIGTERM on the
// master. A clean drain must (1) deregister from the coordinator —
// observed as an immediate handoff promotion, not a heartbeat-timeout
// failover — (2) exit zero after finishing in-flight work, (3) lose no
// acknowledged write, and (4) keep the client error window bounded
// while the routed client re-routes to the promoted replica.
func TestGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildBinaries(t)
	coordAddr := freeAddr(t)
	masterAddr := freeAddr(t)
	replicaAddr := freeAddr(t)

	coord := startProc(t, "coordinator", filepath.Join(bin, "tierbase-coordinator"),
		"-addr", coordAddr, "-heartbeat-timeout", "750ms", "-check-interval", "150ms")
	master := startProc(t, "master", filepath.Join(bin, "tierbase-server"),
		"-addr", masterAddr, "-node-id", "m1", "-coordinator", coordAddr,
		"-heartbeat-interval", "100ms", "-semisync-acks", "1", "-ack-timeout", "1s",
		"-drain-timeout", "5s")
	startProc(t, "replica", filepath.Join(bin, "tierbase-server"),
		"-addr", replicaAddr, "-node-id", "r1", "-replicaof", masterAddr,
		"-coordinator", coordAddr, "-heartbeat-interval", "100ms")

	replicaC := dialWait(t, replicaAddr)
	waitFor(t, 10*time.Second, "replica link up", func() bool {
		return infoField(replicaC, "replication", "master_link") == "up"
	})
	coordC := dialWait(t, coordAddr)
	waitFor(t, 10*time.Second, "master in routing table", func() bool {
		v, err := coordC.Do("CLUSTER", "TABLE")
		s, _ := v.(string)
		return err == nil && strings.Contains(s, masterAddr)
	})

	rc, err := client.NewCluster(coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Live writers: with semisync-acks=1 every nil-error Set was applied
	// on the replica before the client saw OK, so none may be lost.
	var (
		mu         sync.Mutex
		acked      = make(map[string]string)
		termAt     atomic.Int64
		firstOK    atomic.Int64
		postTermOK atomic.Int64
		stop       = make(chan struct{})
		wg         sync.WaitGroup
	)
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("drain:%d:%06d", w, i)
				val := fmt.Sprintf("v%d-%d", w, i)
				if err := rc.Set(key, val); err != nil {
					continue // drain window: not acked, move on
				}
				now := time.Now().UnixNano()
				mu.Lock()
				acked[key] = val
				mu.Unlock()
				if termAt.Load() != 0 {
					firstOK.CompareAndSwap(0, now)
					postTermOK.Add(1)
				}
			}
		}(w)
	}
	ackedCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(acked)
	}

	waitFor(t, 20*time.Second, "pre-drain acked writes", func() bool { return ackedCount() >= 200 })
	preTerm := ackedCount()

	termAt.Store(time.Now().UnixNano())
	exitErr := master.term(t)
	if exitErr != nil {
		t.Fatalf("master did not exit cleanly on SIGTERM: %v\n%s", exitErr, master.out.String())
	}

	// Deregistration must have been observed by the coordinator before
	// the node went dark: the membership no longer lists m1, and the
	// promotion was the DEREGISTER handoff, not the failure detector
	// (which would need the 750ms heartbeat timeout and logs "failed").
	v, err := coordC.Do("CLUSTER", "NODES")
	if err != nil {
		t.Fatal(err)
	}
	if nodes, _ := v.(string); strings.Contains(nodes, "m1 ") {
		t.Fatalf("m1 still in membership after drain:\n%s", nodes)
	}
	waitFor(t, 10*time.Second, "handoff promotion in coordinator log", func() bool {
		return strings.Contains(coord.out.String(), "deregistered; promoting r1")
	})
	if strings.Contains(coord.out.String(), "master m1 ("+masterAddr+") failed") {
		t.Fatalf("promotion came from the failure detector, not the drain handoff:\n%s", coord.out.String())
	}

	// The promoted replica serves writes; same routed client, never
	// restarted.
	waitFor(t, 15*time.Second, "replica promotion", func() bool {
		return infoField(replicaC, "replication", "role") == "master"
	})
	waitFor(t, 15*time.Second, "post-drain acked writes", func() bool { return postTermOK.Load() >= 200 })
	close(stop)
	wg.Wait()

	window := time.Duration(firstOK.Load() - termAt.Load())
	t.Logf("drain: %d writes acked pre-term, %d post-term, client error window %v",
		preTerm, postTermOK.Load(), window.Round(time.Millisecond))
	if window <= 0 || window > 10*time.Second {
		t.Fatalf("client error window out of bounds: %v", window)
	}

	// Zero acked-write loss: every acknowledged value is readable from
	// the surviving topology.
	mu.Lock()
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	mu.Unlock()
	const chunk = 500
	for lo := 0; lo < len(keys); lo += chunk {
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		got, err := rc.MGet(keys[lo:hi]...)
		if err != nil {
			t.Fatalf("verify MGet: %v", err)
		}
		for _, k := range keys[lo:hi] {
			if got[k] != acked[k] {
				t.Fatalf("acked write lost across drain: %s = %q, want %q", k, got[k], acked[k])
			}
		}
	}
	t.Logf("verified %d acked writes intact across the drain", len(keys))
}
