// Package e2e runs the compiled binaries as real processes: a
// coordinator, a semi-sync master and a replica, with live cluster-client
// traffic, then SIGKILLs the master and asserts the paper's failover
// story end to end (§3): the coordinator detects the silence, promotes
// the replica, the routed client refollows the table without restarting,
// and no write the master ever acknowledged is lost.
package e2e

import (
	"bytes"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/client"
)

// buildBinaries compiles tierbase-server and tierbase-coordinator into a
// temp dir and returns it. Build cache makes repeat runs cheap.
func buildBinaries(t *testing.T) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH; cannot build binaries for e2e")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	cmd := exec.Command(goBin, "build", "-o", bin, "./cmd/tierbase-server", "./cmd/tierbase-coordinator")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// process under test to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// syncBuffer is a mutex-guarded bytes.Buffer: exec's pipe copier writes
// to it while tests poll the output of a still-running process.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// proc is one spawned binary; its combined output is dumped if the test
// fails.
type proc struct {
	name string
	cmd  *exec.Cmd
	out  *syncBuffer
}

func startProc(t *testing.T, name, path string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(path, args...)
	var buf syncBuffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	p := &proc{name: name, cmd: cmd, out: &buf}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
		if t.Failed() {
			t.Logf("--- %s output ---\n%s", p.name, p.out.String())
		}
	})
	return p
}

// kill SIGKILLs the process and reaps it, so death is abrupt (no
// graceful close — the socket just dies under the replica and clients).
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill %s: %v", p.name, err)
	}
	p.cmd.Wait()
}

// waitFor polls cond until it holds or the deadline fails the test.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// dialWait dials a RESP server, retrying while the process boots.
func dialWait(t *testing.T, addr string) *client.Client {
	t.Helper()
	var c *client.Client
	waitFor(t, 10*time.Second, "server at "+addr, func() bool {
		var err error
		c, err = client.Dial(addr)
		return err == nil
	})
	t.Cleanup(func() { c.Close() })
	return c
}

// infoField extracts "field:value" from INFO <section>; empty on any
// failure so it can sit inside waitFor conditions.
func infoField(c *client.Client, section, field string) string {
	v, err := c.Do("INFO", section)
	if err != nil {
		return ""
	}
	s, _ := v.(string)
	for _, line := range strings.Split(s, "\r\n") {
		if rest, ok := strings.CutPrefix(line, field+":"); ok {
			return rest
		}
	}
	return ""
}

// TestClusterFailover is the live three-process drill: coordinator +
// semi-sync master + replica, writers driving the slot-routed client the
// whole time, master killed mid-traffic. Asserts promotion, client
// refresh without restart, zero acked-write loss, and reports the
// measured write blackout.
func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildBinaries(t)
	coordAddr := freeAddr(t)
	masterAddr := freeAddr(t)
	replicaAddr := freeAddr(t)

	startProc(t, "coordinator", filepath.Join(bin, "tierbase-coordinator"),
		"-addr", coordAddr, "-heartbeat-timeout", "750ms", "-check-interval", "150ms")
	master := startProc(t, "master", filepath.Join(bin, "tierbase-server"),
		"-addr", masterAddr, "-node-id", "m1", "-coordinator", coordAddr,
		"-heartbeat-interval", "100ms", "-semisync-acks", "1", "-ack-timeout", "1s")
	startProc(t, "replica", filepath.Join(bin, "tierbase-server"),
		"-addr", replicaAddr, "-node-id", "r1", "-replicaof", masterAddr,
		"-coordinator", coordAddr, "-heartbeat-interval", "100ms")

	replicaC := dialWait(t, replicaAddr)
	waitFor(t, 10*time.Second, "replica link up", func() bool {
		return infoField(replicaC, "replication", "master_link") == "up"
	})
	// The routed client needs a table that already routes to the master.
	coordC := dialWait(t, coordAddr)
	waitFor(t, 10*time.Second, "master in routing table", func() bool {
		v, err := coordC.Do("CLUSTER", "TABLE")
		s, _ := v.(string)
		return err == nil && strings.Contains(s, masterAddr)
	})

	rc, err := client.NewCluster(coordAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Live writers: every nil-error Set was acknowledged under
	// semi-sync=1, i.e. the replica had applied it before the client saw
	// OK — those writes must survive the master's death.
	var (
		mu         sync.Mutex
		acked      = make(map[string]string)
		killedAt   atomic.Int64 // unixnano; 0 until the master is killed
		firstOK    atomic.Int64 // first acked write after the kill
		postKillOK atomic.Int64
		stop       = make(chan struct{})
		wg         sync.WaitGroup
	)
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("e2e:%d:%06d", w, i)
				val := fmt.Sprintf("v%d-%d", w, i)
				if err := rc.Set(key, val); err != nil {
					continue // blackout or NOREPLICAS: not acked, retry next key
				}
				now := time.Now().UnixNano()
				mu.Lock()
				acked[key] = val
				mu.Unlock()
				if killedAt.Load() != 0 {
					firstOK.CompareAndSwap(0, now)
					postKillOK.Add(1)
				}
			}
		}(w)
	}
	ackedCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(acked)
	}

	waitFor(t, 20*time.Second, "pre-kill acked writes", func() bool { return ackedCount() >= 200 })
	preKill := ackedCount()

	master.kill(t)
	killedAt.Store(time.Now().UnixNano())

	// Coordinator must notice the silence and promote r1 — observed
	// directly on the live process, not on coordinator state.
	waitFor(t, 15*time.Second, "replica promotion", func() bool {
		return infoField(replicaC, "replication", "role") == "master"
	})
	// The same routed client (never restarted) must resume acked writes
	// against the promoted node.
	waitFor(t, 15*time.Second, "post-kill acked writes", func() bool { return postKillOK.Load() >= 200 })
	close(stop)
	wg.Wait()

	blackout := time.Duration(firstOK.Load() - killedAt.Load())
	t.Logf("failover: %d writes acked pre-kill, %d post-kill, write blackout %v",
		preKill, postKillOK.Load(), blackout.Round(time.Millisecond))
	if blackout <= 0 || blackout > 15*time.Second {
		t.Fatalf("implausible blackout measurement: %v", blackout)
	}

	// Zero acked-write loss: every acknowledged value must be readable
	// from the surviving topology, via the same routed client.
	mu.Lock()
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	mu.Unlock()
	const chunk = 500
	for lo := 0; lo < len(keys); lo += chunk {
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		got, err := rc.MGet(keys[lo:hi]...)
		if err != nil {
			t.Fatalf("verify MGet: %v", err)
		}
		for _, k := range keys[lo:hi] {
			if got[k] != acked[k] {
				t.Fatalf("acked write lost after failover: %s = %q, want %q", k, got[k], acked[k])
			}
		}
	}
	t.Logf("verified %d acked writes intact after failover", len(keys))
}
