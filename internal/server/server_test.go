package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"tierbase/internal/cache"
	"tierbase/internal/client"
	"tierbase/internal/engine"
	"tierbase/internal/lsm"
)

func startTestServer(t *testing.T, opts Options) (*Server, *client.Client) {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	s, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestPingEcho(t *testing.T) {
	_, c := startTestServer(t, Options{})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Do("ECHO", "hello")
	if err != nil || v != "hello" {
		t.Fatalf("echo: %v %v", v, err)
	}
}

func TestStringCommands(t *testing.T) {
	_, c := startTestServer(t, Options{})
	if err := c.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || v != "v" {
		t.Fatalf("get: %q %v", v, err)
	}
	if _, err := c.Get("missing"); err != client.Nil {
		t.Fatalf("missing: %v", err)
	}
	n, err := c.Del("k", "missing")
	if err != nil || n != 1 {
		t.Fatalf("del: %d %v", n, err)
	}
	// SETNX
	v2, _ := c.Do("SETNX", "nx", "a")
	if v2.(int64) != 1 {
		t.Fatal("setnx first")
	}
	v2, _ = c.Do("SETNX", "nx", "b")
	if v2.(int64) != 0 {
		t.Fatal("setnx second")
	}
	// EXISTS / TYPE
	v2, _ = c.Do("EXISTS", "nx")
	if v2.(int64) != 1 {
		t.Fatal("exists")
	}
	tp, _ := c.Do("TYPE", "nx")
	if tp != "string" {
		t.Fatalf("type %v", tp)
	}
}

func TestCounters(t *testing.T) {
	_, c := startTestServer(t, Options{})
	n, err := c.Incr("ctr")
	if err != nil || n != 1 {
		t.Fatalf("incr: %d %v", n, err)
	}
	v, _ := c.Do("INCRBY", "ctr", "10")
	if v.(int64) != 11 {
		t.Fatalf("incrby: %v", v)
	}
	v, _ = c.Do("DECR", "ctr")
	if v.(int64) != 10 {
		t.Fatalf("decr: %v", v)
	}
	v, _ = c.Do("DECRBY", "ctr", "5")
	if v.(int64) != 5 {
		t.Fatalf("decrby: %v", v)
	}
	if _, err := c.Do("INCRBY", "ctr", "junk"); err == nil {
		t.Fatal("junk delta accepted")
	}
}

func TestCASCommand(t *testing.T) {
	_, c := startTestServer(t, Options{})
	c.Set("k", "v1")
	ok, err := c.CAS("k", "v1", "v2")
	if err != nil || !ok {
		t.Fatalf("cas: %v %v", ok, err)
	}
	ok, err = c.CAS("k", "v1", "v3")
	if err != nil || ok {
		t.Fatalf("stale cas: %v %v", ok, err)
	}
	v, _ := c.Get("k")
	if v != "v2" {
		t.Fatalf("value %q", v)
	}
}

func TestTTLCommands(t *testing.T) {
	_, c := startTestServer(t, Options{})
	c.Set("k", "v")
	v, _ := c.Do("EXPIRE", "k", "100")
	if v.(int64) != 1 {
		t.Fatal("expire")
	}
	ttl, _ := c.Do("TTL", "k")
	if ttl.(int64) < 99 || ttl.(int64) > 100 {
		t.Fatalf("ttl %v", ttl)
	}
	v, _ = c.Do("PERSIST", "k")
	if v.(int64) != 1 {
		t.Fatal("persist")
	}
	ttl, _ = c.Do("TTL", "k")
	if ttl.(int64) != -1 {
		t.Fatalf("ttl after persist %v", ttl)
	}
	ttl, _ = c.Do("TTL", "ghost")
	if ttl.(int64) != -2 {
		t.Fatalf("ttl of missing %v", ttl)
	}
}

func TestListCommands(t *testing.T) {
	_, c := startTestServer(t, Options{})
	c.Do("RPUSH", "l", "a", "b", "c")
	v, _ := c.Do("LLEN", "l")
	if v.(int64) != 3 {
		t.Fatalf("llen %v", v)
	}
	arr, err := c.Do("LRANGE", "l", "0", "-1")
	if err != nil {
		t.Fatal(err)
	}
	vals := arr.([]interface{})
	if len(vals) != 3 || vals[0] != "a" || vals[2] != "c" {
		t.Fatalf("lrange %v", vals)
	}
	v, _ = c.Do("LPOP", "l")
	if v != "a" {
		t.Fatalf("lpop %v", v)
	}
	v, _ = c.Do("RPOP", "l")
	if v != "c" {
		t.Fatalf("rpop %v", v)
	}
}

func TestSetCommands(t *testing.T) {
	_, c := startTestServer(t, Options{})
	v, _ := c.Do("SADD", "s", "x", "y", "x")
	if v.(int64) != 2 {
		t.Fatalf("sadd %v", v)
	}
	v, _ = c.Do("SISMEMBER", "s", "x")
	if v.(int64) != 1 {
		t.Fatal("sismember")
	}
	v, _ = c.Do("SCARD", "s")
	if v.(int64) != 2 {
		t.Fatal("scard")
	}
	arr, _ := c.Do("SMEMBERS", "s")
	if len(arr.([]interface{})) != 2 {
		t.Fatalf("smembers %v", arr)
	}
	v, _ = c.Do("SREM", "s", "x")
	if v.(int64) != 1 {
		t.Fatal("srem")
	}
}

func TestZSetCommands(t *testing.T) {
	_, c := startTestServer(t, Options{})
	c.Do("ZADD", "z", "2", "beta")
	c.Do("ZADD", "z", "1", "alpha")
	v, _ := c.Do("ZSCORE", "z", "alpha")
	if v != "1" {
		t.Fatalf("zscore %v", v)
	}
	arr, _ := c.Do("ZRANGE", "z", "0", "-1", "WITHSCORES")
	vals := arr.([]interface{})
	if len(vals) != 4 || vals[0] != "alpha" || vals[1] != "1" {
		t.Fatalf("zrange %v", vals)
	}
	v, _ = c.Do("ZCARD", "z")
	if v.(int64) != 2 {
		t.Fatal("zcard")
	}
	v, _ = c.Do("ZREM", "z", "alpha")
	if v.(int64) != 1 {
		t.Fatal("zrem")
	}
	if _, err := c.Do("ZSCORE", "z", "alpha"); err != client.Nil {
		t.Fatalf("zscore removed: %v", err)
	}
}

func TestHashCommands(t *testing.T) {
	_, c := startTestServer(t, Options{})
	v, _ := c.Do("HSET", "h", "f1", "v1")
	if v.(int64) != 1 {
		t.Fatal("hset new")
	}
	c.Do("HSET", "h", "f2", "v2")
	v, _ = c.Do("HGET", "h", "f1")
	if v != "v1" {
		t.Fatalf("hget %v", v)
	}
	v, _ = c.Do("HLEN", "h")
	if v.(int64) != 2 {
		t.Fatal("hlen")
	}
	arr, _ := c.Do("HGETALL", "h")
	if len(arr.([]interface{})) != 4 {
		t.Fatalf("hgetall %v", arr)
	}
	v, _ = c.Do("HDEL", "h", "f1")
	if v.(int64) != 1 {
		t.Fatal("hdel")
	}
}

func TestAdminCommands(t *testing.T) {
	_, c := startTestServer(t, Options{Shards: 2})
	c.Set("a", "1")
	c.Set("b", "2")
	v, _ := c.Do("DBSIZE")
	if v.(int64) != 2 {
		t.Fatalf("dbsize %v", v)
	}
	info, err := c.Do("INFO")
	if err != nil || !strings.Contains(info.(string), "shards:2") {
		t.Fatalf("info: %v %v", info, err)
	}
	c.Do("FLUSHALL")
	v, _ = c.Do("DBSIZE")
	if v.(int64) != 0 {
		t.Fatal("flushall")
	}
}

func TestUnknownAndMalformed(t *testing.T) {
	_, c := startTestServer(t, Options{})
	if _, err := c.Do("NOPE", "k"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := c.Do("SET", "k"); err == nil {
		t.Fatal("arity not checked")
	}
	if _, err := c.Do("GET"); err == nil {
		t.Fatal("missing key accepted")
	}
}

func TestPipelining(t *testing.T) {
	_, c := startTestServer(t, Options{})
	cmds := make([][]string, 100)
	for i := range cmds {
		cmds[i] = []string{"SET", fmt.Sprintf("p%03d", i), "v"}
	}
	outs, errs := c.Pipeline(cmds)
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("pipeline %d: %v", i, errs[i])
		}
	}
	v, _ := c.Do("DBSIZE")
	if v.(int64) != 100 {
		t.Fatalf("dbsize %v", v)
	}
}

func TestMultipleShards(t *testing.T) {
	s, c := startTestServer(t, Options{Shards: 4})
	for i := 0; i < 200; i++ {
		c.Set(fmt.Sprintf("k%03d", i), "v")
	}
	// Keys must be spread across shards.
	populated := 0
	for _, eng := range s.Shards() {
		if eng.Len() > 0 {
			populated++
		}
	}
	if populated < 3 {
		t.Fatalf("only %d shards populated", populated)
	}
	for i := 0; i < 200; i++ {
		if v, err := c.Get(fmt.Sprintf("k%03d", i)); err != nil || v != "v" {
			t.Fatalf("get %d: %q %v", i, v, err)
		}
	}
}

func TestServerWithTieredBackend(t *testing.T) {
	stor := cache.NewMapStorage()
	opts := Options{
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{Policy: cache.WriteThrough, Engine: eng, Storage: stor})
		},
	}
	_, c := startTestServer(t, opts)
	if err := c.Set("durable", "yes"); err != nil {
		t.Fatal(err)
	}
	// Write-through: already in storage.
	v, ok, err := stor.Get("durable")
	if err != nil || !ok || string(v) != "yes" {
		t.Fatalf("storage: %q %v %v", v, ok, err)
	}
	// Read of a storage-only key goes through the miss path.
	stor.Put("cold", []byte("brr"))
	got, err := c.Get("cold")
	if err != nil || got != "brr" {
		t.Fatalf("cold get: %q %v", got, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, _ := startTestServer(t, Options{Shards: 2})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%dk%d", g, i)
				if err := c.Set(k, "v"); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				if v, err := c.Get(k); err != nil || v != "v" {
					t.Errorf("get: %q %v", v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Throughput.Count() < 1600 {
		t.Fatalf("throughput counter %d", s.Throughput.Count())
	}
	if s.Latency.Count() == 0 {
		t.Fatal("latency histogram empty")
	}
}

func TestBinarySafeValues(t *testing.T) {
	_, c := startTestServer(t, Options{})
	weird := "has\r\nnewlines\x00and\x01bytes"
	if err := c.Set("bin", weird); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("bin")
	if err != nil || v != weird {
		t.Fatalf("binary roundtrip: %q %v", v, err)
	}
}

func TestMGetMSet(t *testing.T) {
	_, c := startTestServer(t, Options{Shards: 4})
	// MSET across shards.
	if v, err := c.Do("MSET", "a", "1", "b", "2", "c", "3"); err != nil || v != "OK" {
		t.Fatalf("mset: %v %v", v, err)
	}
	// MGET mixes present, absent and wrong-typed keys.
	c.Do("LPUSH", "list", "x")
	v, err := c.Do("MGET", "a", "missing", "b", "list", "c")
	if err != nil {
		t.Fatal(err)
	}
	arr, ok := v.([]interface{})
	if !ok || len(arr) != 5 {
		t.Fatalf("mget reply: %#v", v)
	}
	want := []interface{}{"1", nil, "2", nil, "3"}
	for i := range want {
		if arr[i] != want[i] {
			t.Fatalf("mget[%d] = %#v, want %#v", i, arr[i], want[i])
		}
	}
	// Arity errors.
	if _, err := c.Do("MSET", "odd", "1", "stray"); err == nil {
		t.Fatal("odd MSET arity should error")
	}
	if _, err := c.Do("MGET"); err == nil {
		t.Fatal("empty MGET should error")
	}
}

func TestMGetMSetTiered(t *testing.T) {
	stor := cache.NewMapStorage()
	stor.Put("cold", []byte("from-storage"))
	_, c := startTestServer(t, Options{
		Shards: 2,
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{Policy: cache.WriteThrough, Engine: eng, Storage: stor})
		},
	})
	if _, err := c.Do("MSET", "x", "1", "y", "2"); err != nil {
		t.Fatal(err)
	}
	// Writes must reach the storage tier through BatchPut.
	if v, ok, err := stor.Get("x"); err != nil || !ok || string(v) != "1" {
		t.Fatalf("storage x: %q %v %v", v, ok, err)
	}
	// MGET must pull storage-resident keys the cache has never seen.
	got, err := c.MGet("x", "cold", "nope")
	if err != nil {
		t.Fatal(err)
	}
	if got["x"] != "1" || got["cold"] != "from-storage" {
		t.Fatalf("mget: %v", got)
	}
	if _, ok := got["nope"]; ok {
		t.Fatal("absent key should be omitted")
	}
}

func TestMGetMSetManyShardsConcurrent(t *testing.T) {
	s, c := startTestServer(t, Options{Shards: 4})
	pairs := map[string]string{}
	args := []string{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("bulk%03d", i)
		pairs[k] = fmt.Sprintf("v%03d", i)
		args = append(args, k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc, err := client.Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cc.Close()
			for i := 0; i < 10; i++ {
				if err := cc.MSet(pairs); err != nil {
					t.Errorf("mset: %v", err)
					return
				}
				got, err := cc.MGet(args...)
				if err != nil {
					t.Errorf("mget: %v", err)
					return
				}
				if len(got) != len(pairs) {
					t.Errorf("mget returned %d/%d keys", len(got), len(pairs))
					return
				}
			}
		}()
	}
	wg.Wait()
	// Keys must have spread over multiple shard engines.
	nonEmpty := 0
	for _, eng := range s.Shards() {
		if eng.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("batch keys landed on %d/4 shards", nonEmpty)
	}
	_ = c
}

// TestDelMultiKeyAcrossShards: multi-key DEL must route each key to its
// owning shard (the old walk pinned every key to the first key's shard)
// and serve the whole command with one tiered BatchDelete per shard.
func TestDelMultiKeyAcrossShards(t *testing.T) {
	s, c := startTestServer(t, Options{Shards: 4})
	keys := make([]string, 0, 32)
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("spread%02d", i)
		keys = append(keys, k)
		if err := c.Set(k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	n, err := c.Del(append(keys, "absent")...)
	if err != nil || n != 32 {
		t.Fatalf("del: %d %v, want 32", n, err)
	}
	for _, eng := range s.Shards() {
		if eng.Len() != 0 {
			t.Fatalf("shard still holds %d keys", eng.Len())
		}
	}
	// UNLINK is the same path.
	c.Set("u", "v")
	if n, err := c.Unlink("u", "absent"); err != nil || n != 1 {
		t.Fatalf("unlink: %d %v", n, err)
	}
}

// TestDelCountsStorageOnlyKeys: a key evicted from (or never admitted to)
// the cache tier but present in storage must still count in the DEL reply.
func TestDelCountsStorageOnlyKeys(t *testing.T) {
	stor := cache.NewMapStorage()
	stor.Put("cold1", []byte("v"))
	stor.Put("cold2", []byte("v"))
	_, c := startTestServer(t, Options{
		Shards: 2,
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{Policy: cache.WriteThrough, Engine: eng, Storage: stor})
		},
	})
	if err := c.Set("warm", "v"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Del("warm", "cold1", "cold2", "nope")
	if err != nil || n != 3 {
		t.Fatalf("del: %d %v, want 3", n, err)
	}
	if stor.Len() != 0 {
		t.Fatalf("storage still holds %d keys", stor.Len())
	}
	if _, err := c.Get("cold1"); err != client.Nil {
		t.Fatalf("cold1 still readable: %v", err)
	}
}

// TestEmptyValueColdReadRESP: SET k "" must survive a cache-tier drop
// and come back as the empty string (not nil) once re-read through
// storage. The cache tier is dropped directly on the engine — FLUSHALL
// now (correctly) clears storage too, so it can't play cache-evictor.
func TestEmptyValueColdReadRESP(t *testing.T) {
	stor := cache.NewMapStorage()
	srv, c := startTestServer(t, Options{
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{Policy: cache.WriteThrough, Engine: eng, Storage: stor})
		},
	})
	dropCache := func() {
		for _, sh := range srv.shards {
			sh.eng.FlushAll()
		}
	}
	if err := c.Set("e", ""); err != nil {
		t.Fatal(err)
	}
	dropCache()
	v, err := c.Get("e")
	if err != nil || v != "" {
		t.Fatalf("cold empty read: %q %v (want present empty)", v, err)
	}
	if _, err := c.Get("never-set"); err != client.Nil {
		t.Fatalf("absent key: %v", err)
	}
	// Batch path agrees: present-empty is a bulk "", absent is nil.
	dropCache()
	arr, err := c.Do("MGET", "e", "never-set")
	if err != nil {
		t.Fatal(err)
	}
	vals := arr.([]interface{})
	if vals[0] != "" || vals[1] != nil {
		t.Fatalf("cold MGET: %#v", vals)
	}
}

// TestInfoWritePathSection: INFO exposes the write-path section (striped
// write-through/write-back counters) and supports section filtering.
func TestInfoWritePathSection(t *testing.T) {
	stor := cache.NewMapStorage()
	opts := Options{
		Shards: 2,
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{Policy: cache.WriteBack, Engine: eng, Storage: stor})
		},
	}
	_, c := startTestServer(t, opts)
	for i := 0; i < 8; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	full, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Server", "# WritePath", "tiered_shards:2",
		"write_stripes:", "coalesced_writes:", "flush_rounds:",
		"backpressure_waits:", "dirty_entries:",
		"shard0_policy:write-back", "shard0_dirty_stripes:", "shard1_dirty_stripes:"} {
		if !strings.Contains(full.(string), want) {
			t.Fatalf("INFO missing %q in:\n%s", want, full)
		}
	}
	// Section filter: only the requested section renders.
	wp, err := c.Do("INFO", "writepath")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wp.(string), "# WritePath") || strings.Contains(wp.(string), "# Server") {
		t.Fatalf("INFO writepath filtering broken:\n%s", wp)
	}
	srv, err := c.Do("INFO", "server")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(srv.(string), "# Server") || strings.Contains(srv.(string), "# WritePath") {
		t.Fatalf("INFO server filtering broken:\n%s", srv)
	}
}

// TestInfoWritePathCacheOnly: without a tiered backend the section still
// renders (tiered_shards:0) instead of erroring.
func TestInfoWritePathCacheOnly(t *testing.T) {
	_, c := startTestServer(t, Options{})
	wp, err := c.Do("INFO", "writepath")
	if err != nil || !strings.Contains(wp.(string), "tiered_shards:0") {
		t.Fatalf("cache-only writepath: %v %v", wp, err)
	}
}

// TestInfoStorageSection: INFO exposes per-shard LSM counters (flushes,
// compactions, immutable backlog, level shape, write bytes) and supports
// section filtering, like INFO writepath.
func TestInfoStorageSection(t *testing.T) {
	var mu sync.Mutex
	var dbs []*lsm.DB
	opts := Options{
		Shards: 2,
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			db, err := lsm.Open(lsm.Options{Dir: t.TempDir(), DisableWAL: true})
			if err != nil {
				return nil, err
			}
			mu.Lock()
			dbs = append(dbs, db)
			mu.Unlock()
			t.Cleanup(func() { db.Close() })
			return cache.New(cache.Options{
				Policy: cache.WriteThrough, Engine: eng, Storage: cache.NewLSMStorage(db),
			})
		},
		StorageStats: func() []lsm.Stats {
			mu.Lock()
			defer mu.Unlock()
			out := make([]lsm.Stats, len(dbs))
			for i, db := range dbs {
				out[i] = db.Stats()
			}
			return out
		},
	}
	_, c := startTestServer(t, opts)
	for i := 0; i < 8; i++ {
		if err := c.Set(fmt.Sprintf("sk%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	full, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Storage", "storage_shards:2",
		"shard0_flushes:", "shard0_compactions:", "shard0_immutables:",
		"shard0_write_bytes:", "shard0_level_files:", "shard1_level_bytes:",
		"shard0_multigets:"} {
		if !strings.Contains(full.(string), want) {
			t.Fatalf("INFO missing %q in:\n%s", want, full)
		}
	}
	// Section filter: only the requested section renders.
	st, err := c.Do("INFO", "storage")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.(string), "# Storage") || strings.Contains(st.(string), "# Server") ||
		strings.Contains(st.(string), "# WritePath") {
		t.Fatalf("INFO storage filtering broken:\n%s", st)
	}
	// Write volume must have reached the LSM tier (write-through): at
	// least one shard reports non-zero write bytes.
	if strings.Contains(st.(string), "shard0_write_bytes:0\r\n") &&
		strings.Contains(st.(string), "shard1_write_bytes:0\r\n") {
		t.Fatalf("no write bytes reached storage:\n%s", st)
	}
}

// TestInfoStorageCacheOnly: without wired storage stats the section
// renders storage_shards:0 instead of erroring.
func TestInfoStorageCacheOnly(t *testing.T) {
	_, c := startTestServer(t, Options{})
	st, err := c.Do("INFO", "storage")
	if err != nil || !strings.Contains(st.(string), "storage_shards:0") {
		t.Fatalf("cache-only storage section: %v %v", st, err)
	}
}

// TestInfoTieringSection: INFO exposes the adaptive-tiering section —
// per-shard budgets, rebalance/rollback counters, windowed hit rate and
// the CSV per-stripe distributions — and supports section filtering.
func TestInfoTieringSection(t *testing.T) {
	stor := cache.NewMapStorage()
	opts := Options{
		Shards: 2,
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{
				Policy: cache.WriteThrough, Engine: eng, Storage: stor,
				CacheCapacityBytes: 64 << 10, AdaptiveTiering: true,
			})
		},
	}
	_, c := startTestServer(t, opts)
	for i := 0; i < 8; i++ {
		if err := c.Set(fmt.Sprintf("tk%d", i), "v"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(fmt.Sprintf("tk%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	full, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Tiering", "tiered_shards:2",
		"shard0_adaptive:1", "shard0_capacity_bytes:", "shard0_stripe_floor_bytes:",
		"shard0_rebalances:", "shard0_rollbacks:", "shard0_rebalanced_bytes:",
		"shard0_window_hit_rate:", "shard0_miss_ratio:",
		"shard0_stripe_budget_bytes:", "shard0_stripe_resident_bytes:",
		"shard0_stripe_hit_rate:", "shard1_stripe_stolen_bytes:",
		"shard1_stripe_granted_bytes:"} {
		if !strings.Contains(full.(string), want) {
			t.Fatalf("INFO missing %q in:\n%s", want, full)
		}
	}
	// Section filter: only the requested section renders.
	ti, err := c.Do("INFO", "tiering")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ti.(string), "# Tiering") || strings.Contains(ti.(string), "# Server") ||
		strings.Contains(ti.(string), "# WritePath") {
		t.Fatalf("INFO tiering filtering broken:\n%s", ti)
	}
	// The stripe CSVs carry one entry per engine stripe.
	for _, line := range strings.Split(ti.(string), "\r\n") {
		if rest, ok := strings.CutPrefix(line, "shard0_stripe_budget_bytes:"); ok {
			if got := len(strings.Split(rest, ",")); got != engine.DefaultShards {
				t.Fatalf("stripe budget CSV has %d entries, want %d: %s", got, engine.DefaultShards, line)
			}
		}
	}
}

// TestInfoTieringCacheOnly: without a tiered backend the section renders
// tiered_shards:0 instead of erroring.
func TestInfoTieringCacheOnly(t *testing.T) {
	_, c := startTestServer(t, Options{})
	ti, err := c.Do("INFO", "tiering")
	if err != nil || !strings.Contains(ti.(string), "tiered_shards:0") {
		t.Fatalf("cache-only tiering section: %v %v", ti, err)
	}
}
