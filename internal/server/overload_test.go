package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"tierbase/internal/client"
)

// rawDial opens a plain TCP connection to the server — the overload
// drills need protocol-level control (half-written commands, unread
// replies) the mux client deliberately hides.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

// pingRaw sends one PING and returns the server's first reply line.
func pingRaw(t *testing.T, nc net.Conn) string {
	t.Helper()
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Write([]byte("*1\r\n$4\r\nPING\r\n")); err != nil {
		t.Fatalf("ping write: %v", err)
	}
	line, err := bufio.NewReader(nc).ReadString('\n')
	if err != nil {
		t.Fatalf("ping read: %v", err)
	}
	nc.SetDeadline(time.Time{})
	return strings.TrimRight(line, "\r\n")
}

// TestMaxConnAdmission: with MaxConns set, the N+1th connection is
// refused with a typed -MAXCONN before any command runs, and a slot
// freed by a disconnect is immediately reusable.
func TestMaxConnAdmission(t *testing.T) {
	s, c := startTestServer(t, Options{Overload: OverloadConfig{MaxConns: 2}})
	if err := c.Ping(); err != nil { // the mux client holds slot 1
		t.Fatal(err)
	}

	second := rawDial(t, s.Addr())
	if got := pingRaw(t, second); got != "+PONG" {
		t.Fatalf("second conn reply = %q, want +PONG", got)
	}

	third := rawDial(t, s.Addr())
	third.SetDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(third).ReadString('\n')
	if err != nil {
		t.Fatalf("third conn read: %v", err)
	}
	if !strings.HasPrefix(line, "-MAXCONN") {
		t.Fatalf("third conn reply = %q, want -MAXCONN rejection", line)
	}
	if n := s.over.maxConnRejects.Load(); n < 1 {
		t.Fatalf("maxconn_rejects = %d, want >= 1", n)
	}

	// A dropped connection must free its admission slot.
	second.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		nc, err := net.DialTimeout("tcp", s.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		nc.SetDeadline(time.Now().Add(time.Second))
		nc.Write([]byte("*1\r\n$4\r\nPING\r\n"))
		line, err := bufio.NewReader(nc).ReadString('\n')
		nc.Close()
		if err == nil && strings.HasPrefix(line, "+PONG") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot not reusable after disconnect (last reply %q, err %v)", line, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

}

// TestSlowReaderShedAtOutputCap: a client that pipelines GETs for a fat
// value without draining replies is cut off once its pending output
// passes the cap — and the buffer the server retained for it stays
// bounded by cap + one reply, so a stuck consumer cannot pin master
// memory.
func TestSlowReaderShedAtOutputCap(t *testing.T) {
	const outCap = 8 << 10
	const blobSize = 4 << 10
	s, c := startTestServer(t, Options{Overload: OverloadConfig{MaxOutputBytes: outCap}})
	if err := c.Set("blob", strings.Repeat("b", blobSize)); err != nil {
		t.Fatal(err)
	}

	nc := rawDial(t, s.Addr())
	// One burst of pipelined GETs: the server dispatches them back to
	// back without flushing (more input is buffered), so replies pile up
	// in c.out until the cap sheds the connection.
	req := "*2\r\n$3\r\nGET\r\n$4\r\nblob\r\n"
	if _, err := nc.Write([]byte(strings.Repeat(req, 10))); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(nc); err != nil {
		// ReadAll returning an error other than timeout is fine too — a
		// RST instead of FIN still proves the shed. A timeout means the
		// server kept the connection.
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatal("slow reader still connected after exceeding the output cap")
		}
	}
	if n := s.over.shedConns.Load(); n < 1 {
		t.Fatalf("shed_conns = %d, want >= 1", n)
	}
	if peak := s.over.slowestOut.Load(); peak > outCap+blobSize+1024 {
		t.Fatalf("retained output peaked at %d bytes, want <= cap+reply (%d)", peak, outCap+blobSize+1024)
	}

	// The healthy client is unaffected.
	if v, err := c.Get("blob"); err != nil || len(v) != blobSize {
		t.Fatalf("healthy client after shed: len=%d err=%v", len(v), err)
	}
	if !strings.Contains(s.info("overload"), "shed_conns:") {
		t.Fatal("INFO overload must report shed_conns")
	}
}

// TestWriteFloodWatermark: past the high watermark writes fail fast with
// the typed, retryable -OVERLOADED while reads keep serving; once memory
// drains to the low watermark, writes resume on their own.
func TestWriteFloodWatermark(t *testing.T) {
	s, c := startTestServer(t, Options{Overload: OverloadConfig{
		HighWatermarkBytes: 64 << 10,
		LowWatermarkBytes:  16 << 10,
		CheckInterval:      time.Hour, // the test drives sampling itself
	}})

	val := strings.Repeat("w", 1024)
	var keys []string
	for i := 0; s.memUsage() < 64<<10; i++ {
		k := fmt.Sprintf("flood:%04d", i)
		if err := c.Set(k, val); err != nil {
			t.Fatalf("flood set %d: %v", i, err)
		}
		keys = append(keys, k)
		if i > 1000 {
			t.Fatal("memUsage never reached the high watermark")
		}
	}
	s.sampleWatermark()
	if !s.rejectWrites() {
		t.Fatalf("usage %d >= high watermark but gate is open", s.memUsage())
	}

	// Writes shed with the typed error; reads serve.
	err := c.Set("rejected", "x")
	var ov *client.OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("write above watermark: got %v, want OverloadedError", err)
	}
	if v, err := c.Get(keys[0]); err != nil || v != val {
		t.Fatalf("read above watermark must serve: %q %v", v, err)
	}
	if got := s.info("overload"); !strings.Contains(got, "overloaded:1") {
		t.Fatalf("INFO overload should report overloaded:1:\n%s", got)
	}
	if n := s.over.rejectedWrites.Load(); n < 1 {
		t.Fatalf("rejected_writes = %d, want >= 1", n)
	}
	if n := s.over.watermarkTrips.Load(); n != 1 {
		t.Fatalf("watermark_trips = %d, want 1", n)
	}

	// Hysteresis: a sample between the two watermarks leaves the gate
	// closed; only draining to the low watermark reopens writes.
	half := keys[:len(keys)/2]
	for _, sh := range s.shards {
		sh.eng.Del(half...)
	}
	if s.memUsage() < 16<<10 {
		t.Skip("drain overshot the low watermark; hysteresis band too narrow on this layout")
	}
	s.sampleWatermark()
	if !s.rejectWrites() {
		t.Fatal("gate must stay closed between watermarks (hysteresis)")
	}
	for _, sh := range s.shards {
		sh.eng.Del(keys...)
	}
	s.sampleWatermark()
	if s.rejectWrites() {
		t.Fatalf("usage %d <= low watermark but gate still closed", s.memUsage())
	}
	if err := c.Set("recovered", "ok"); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestIdleReadTimeoutCloses: with ReadTimeout set, an idle connection is
// closed at the deadline and counted, while an active one stays up.
func TestIdleReadTimeoutCloses(t *testing.T) {
	s, _ := startTestServer(t, Options{Overload: OverloadConfig{ReadTimeout: 100 * time.Millisecond}})

	idle := rawDial(t, s.Addr())
	if got := pingRaw(t, idle); got != "+PONG" {
		t.Fatalf("ping = %q", got)
	}
	idle.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(idle).ReadString('\n'); err == nil {
		t.Fatal("idle connection was not closed at the read deadline")
	}
	if n := s.over.idleCloses.Load(); n < 1 {
		t.Fatalf("idle_closes = %d, want >= 1", n)
	}
}

// TestShutdownDrainsConnections: Shutdown finishes in-flight work, kicks
// idle connections out of their blocking reads, and returns well inside
// the drain budget.
func TestShutdownDrainsConnections(t *testing.T) {
	s, c := startTestServer(t, Options{Overload: OverloadConfig{DrainTimeout: 5 * time.Second}})
	if err := c.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	idle := rawDial(t, s.Addr())
	if got := pingRaw(t, idle); got != "+PONG" {
		t.Fatalf("ping = %q", got)
	}

	start := time.Now()
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("shutdown took %s, want a prompt drain", took)
	}
	// The idle connection was closed, not abandoned.
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(idle).ReadString('\n'); err == nil {
		t.Fatal("idle connection still open after Shutdown")
	}
	// And the listener is gone.
	if _, err := net.DialTimeout("tcp", s.Addr(), 500*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
