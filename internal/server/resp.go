// Package server implements TierBase's wire protocol front end: a
// Redis-compatible (RESP2) TCP server whose data nodes are engine shards
// fronted by elastic worker pools (paper §3: "Initially Redis-compatible
// ... TierBase clients, compatible with native Redis clients").
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// RESP2 protocol primitives.

var errProtocol = errors.New("resp: protocol error")

// readCommand parses one client command: either a RESP array of bulk
// strings or an inline space-separated line.
func readCommand(r *bufio.Reader) ([][]byte, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errProtocol
	}
	if line[0] != '*' {
		// Inline command.
		var args [][]byte
		start := -1
		for i := 0; i <= len(line); i++ {
			if i < len(line) && line[i] != ' ' {
				if start < 0 {
					start = i
				}
				continue
			}
			if start >= 0 {
				args = append(args, line[start:i])
				start = -1
			}
		}
		if len(args) == 0 {
			return nil, errProtocol
		}
		return args, nil
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 0 || n > 1024*1024 {
		return nil, errProtocol
	}
	args := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if len(hdr) < 2 || hdr[0] != '$' {
			return nil, errProtocol
		}
		blen, err := strconv.Atoi(string(hdr[1:]))
		if err != nil || blen < 0 || blen > 512*1024*1024 {
			return nil, errProtocol
		}
		buf := make([]byte, blen+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if buf[blen] != '\r' || buf[blen+1] != '\n' {
			return nil, errProtocol
		}
		args = append(args, buf[:blen])
	}
	return args, nil
}

// readLine reads one CRLF-terminated line (without the terminator).
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, errProtocol
	}
	return line[:len(line)-2], nil
}

// reply value constructors; each writes itself to a bufio.Writer.

type reply interface{ write(w *bufio.Writer) error }

type simpleReply string

func (s simpleReply) write(w *bufio.Writer) error {
	_, err := fmt.Fprintf(w, "+%s\r\n", string(s))
	return err
}

type errReply string

func (e errReply) write(w *bufio.Writer) error {
	_, err := fmt.Fprintf(w, "-ERR %s\r\n", string(e))
	return err
}

type intReply int64

func (i intReply) write(w *bufio.Writer) error {
	_, err := fmt.Fprintf(w, ":%d\r\n", int64(i))
	return err
}

type bulkReply []byte

func (b bulkReply) write(w *bufio.Writer) error {
	if b == nil {
		_, err := w.WriteString("$-1\r\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "$%d\r\n", len(b)); err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

type arrayReply []reply

func (a arrayReply) write(w *bufio.Writer) error {
	if a == nil {
		_, err := w.WriteString("*-1\r\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "*%d\r\n", len(a)); err != nil {
		return err
	}
	for _, el := range a {
		if err := el.write(w); err != nil {
			return err
		}
	}
	return nil
}

// bulkStrings builds an array reply of bulk strings.
func bulkStrings(ss ...string) arrayReply {
	out := make(arrayReply, len(ss))
	for i, s := range ss {
		out[i] = bulkReply([]byte(s))
	}
	return out
}
