// Package server implements TierBase's wire protocol front end: a
// Redis-compatible (RESP2) TCP server whose data nodes are engine shards
// fronted by elastic worker pools (paper §3: "Initially Redis-compatible
// ... TierBase clients, compatible with native Redis clients").
package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strconv"
)

// RESP2 protocol primitives — the zero-allocation hot path.
//
// Parsing: cmdReader owns a per-connection arena. Protocol lines are read
// with bufio.Reader.ReadSlice (aliasing the reader's internal buffer — no
// copy, no allocation); bulk payloads land in the arena, and the returned
// args alias arena memory. Both are valid ONLY until the next ReadCommand
// on the same connection, which is exactly the command's execution window:
// command execution is synchronous (the connection goroutine blocks until
// the shard worker finishes), so nothing downstream can observe a recycled
// buffer. Every layer below the server copies what it retains (the engine
// copies on Set, the LSM batch copies on Put), so aliasing is safe.
//
// Encoding: replies append into a per-connection output buffer with the
// append* helpers below (strconv.AppendInt-style), written to the socket
// in one syscall per pipeline window. No reply objects, no fmt.

var errProtocol = errors.New("resp: protocol error")

const (
	maxArgs    = 1024 * 1024
	maxBulkLen = 512 << 20
	// maxRetainedArena caps the arena (and line-accumulator) size kept
	// across commands, so one huge value doesn't pin its buffer forever.
	maxRetainedArena = 1 << 20
)

// cmdReader parses commands for one connection into reusable buffers.
type cmdReader struct {
	r     *bufio.Reader
	buf   []byte // arena holding the current command's bulk payloads
	args  [][]byte
	spans []span // arg offsets into buf (buf may reallocate while filling)
}

// span locates one argument inside the arena.
type span struct{ off, n int }

func newCmdReader(nc net.Conn) *cmdReader {
	return &cmdReader{r: bufio.NewReaderSize(nc, 16<<10)}
}

// Buffered reports bytes already read from the socket but not yet parsed
// (pipelined commands waiting).
func (c *cmdReader) Buffered() int { return c.r.Buffered() }

// ReadCommand parses one client command: a RESP array of bulk strings or
// an inline space-separated line. The returned args alias the reader's
// internal buffers and are valid only until the next ReadCommand.
func (c *cmdReader) ReadCommand() ([][]byte, error) {
	line, err := c.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errProtocol
	}
	c.args = c.args[:0]
	if cap(c.buf) > maxRetainedArena {
		c.buf = nil
	}
	c.buf = c.buf[:0]
	c.spans = c.spans[:0]
	if line[0] != '*' {
		// Inline command: one line, so the args may alias the bufio buffer
		// directly (nothing else is read before the caller is done).
		start := -1
		for i := 0; i <= len(line); i++ {
			if i < len(line) && line[i] != ' ' {
				if start < 0 {
					start = i
				}
				continue
			}
			if start >= 0 {
				c.args = append(c.args, line[start:i])
				start = -1
			}
		}
		if len(c.args) == 0 {
			return nil, errProtocol
		}
		return c.args, nil
	}
	n := parseSize(line[1:])
	if n < 0 || n > maxArgs {
		return nil, errProtocol
	}
	for i := 0; i < n; i++ {
		hdr, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if len(hdr) < 2 || hdr[0] != '$' {
			return nil, errProtocol
		}
		blen := parseSize(hdr[1:])
		if blen < 0 || blen > maxBulkLen {
			return nil, errProtocol
		}
		off := len(c.buf)
		need := blen + 2 // payload + CRLF
		if cap(c.buf)-off < need {
			grown := make([]byte, off, off+need)
			copy(grown, c.buf)
			c.buf = grown
		}
		payload := c.buf[off : off+need]
		if _, err := io.ReadFull(c.r, payload); err != nil {
			return nil, err
		}
		if payload[blen] != '\r' || payload[blen+1] != '\n' {
			return nil, errProtocol
		}
		c.buf = c.buf[:off+blen] // CRLF stays out of the arena
		c.spans = append(c.spans, span{off, blen})
	}
	// Build args only after every payload landed: the arena may have
	// reallocated while filling, so earlier slices could point at a dead
	// backing array — the spans don't.
	for _, sp := range c.spans {
		c.args = append(c.args, c.buf[sp.off:sp.off+sp.n])
	}
	return c.args, nil
}

// readLine reads one CRLF-terminated line without the terminator. The
// result aliases the bufio buffer; a line longer than the buffer falls
// back to an allocating accumulator (cold path).
func (c *cmdReader) readLine() ([]byte, error) {
	line, err := c.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		acc := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = c.r.ReadSlice('\n')
			acc = append(acc, line...)
		}
		line = acc
	}
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, errProtocol
	}
	return line[:len(line)-2], nil
}

// parseSize parses a non-negative decimal (RESP array/bulk headers),
// returning -1 on anything else. Manual loop: strconv.Atoi needs a string.
func parseSize(b []byte) int {
	if len(b) == 0 {
		return -1
	}
	n := 0
	for _, d := range b {
		if d < '0' || d > '9' {
			return -1
		}
		n = n*10 + int(d-'0')
		if n > maxBulkLen {
			return -1
		}
	}
	return n
}

// --- reply encoders (append-style) ---

func appendSimple(out []byte, s string) []byte {
	out = append(out, '+')
	out = append(out, s...)
	return append(out, '\r', '\n')
}

func appendError(out []byte, msg string) []byte {
	out = append(out, "-ERR "...)
	out = append(out, msg...)
	return append(out, '\r', '\n')
}

// appendRawError writes an error reply whose first token is its own
// error class (MOVED, ASK, NOREPLICAS, ...) rather than the generic ERR
// prefix — what typed client-side error dispatch keys on.
func appendRawError(out []byte, msg string) []byte {
	out = append(out, '-')
	out = append(out, msg...)
	return append(out, '\r', '\n')
}

func appendInt(out []byte, v int64) []byte {
	out = append(out, ':')
	out = strconv.AppendInt(out, v, 10)
	return append(out, '\r', '\n')
}

func appendBulk(out, v []byte) []byte {
	if v == nil {
		return append(out, "$-1\r\n"...)
	}
	out = append(out, '$')
	out = strconv.AppendInt(out, int64(len(v)), 10)
	out = append(out, '\r', '\n')
	out = append(out, v...)
	return append(out, '\r', '\n')
}

func appendBulkString(out []byte, s string) []byte {
	out = append(out, '$')
	out = strconv.AppendInt(out, int64(len(s)), 10)
	out = append(out, '\r', '\n')
	out = append(out, s...)
	return append(out, '\r', '\n')
}

func appendArrayLen(out []byte, n int) []byte {
	out = append(out, '*')
	out = strconv.AppendInt(out, int64(n), 10)
	return append(out, '\r', '\n')
}

// canonicalCommand maps a client's command token to its canonical
// uppercase name without allocating: the token uppercases into scratch
// and each switch comparison is an alloc-free equality check against a
// constant; the returned string is that constant, not a conversion.
// Unknown (or overlong) tokens return "".
func canonicalCommand(tok []byte, scratch *[16]byte) string {
	if len(tok) > len(scratch) {
		return ""
	}
	b := scratch[:len(tok)]
	for i, ch := range tok {
		if 'a' <= ch && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		b[i] = ch
	}
	switch string(b) {
	case "GET":
		return "GET"
	case "SET":
		return "SET"
	case "MGET":
		return "MGET"
	case "MSET":
		return "MSET"
	case "DEL":
		return "DEL"
	case "UNLINK":
		return "UNLINK"
	case "PING":
		return "PING"
	case "ECHO":
		return "ECHO"
	case "DBSIZE":
		return "DBSIZE"
	case "FLUSHALL":
		return "FLUSHALL"
	case "INFO":
		return "INFO"
	case "EXISTS":
		return "EXISTS"
	case "TYPE":
		return "TYPE"
	case "SETNX":
		return "SETNX"
	case "INCR":
		return "INCR"
	case "DECR":
		return "DECR"
	case "INCRBY":
		return "INCRBY"
	case "DECRBY":
		return "DECRBY"
	case "CAS":
		return "CAS"
	case "EXPIRE":
		return "EXPIRE"
	case "TTL":
		return "TTL"
	case "PERSIST":
		return "PERSIST"
	case "LPUSH":
		return "LPUSH"
	case "RPUSH":
		return "RPUSH"
	case "LPOP":
		return "LPOP"
	case "RPOP":
		return "RPOP"
	case "LLEN":
		return "LLEN"
	case "LRANGE":
		return "LRANGE"
	case "SADD":
		return "SADD"
	case "SREM":
		return "SREM"
	case "SISMEMBER":
		return "SISMEMBER"
	case "SCARD":
		return "SCARD"
	case "SMEMBERS":
		return "SMEMBERS"
	case "ZADD":
		return "ZADD"
	case "ZSCORE":
		return "ZSCORE"
	case "ZREM":
		return "ZREM"
	case "ZCARD":
		return "ZCARD"
	case "ZRANGE":
		return "ZRANGE"
	case "HSET":
		return "HSET"
	case "HGET":
		return "HGET"
	case "HDEL":
		return "HDEL"
	case "HLEN":
		return "HLEN"
	case "HGETALL":
		return "HGETALL"
	case "SYNC":
		return "SYNC"
	case "REPLICAOF":
		return "REPLICAOF"
	case "SLAVEOF":
		return "REPLICAOF"
	case "CLUSTER":
		return "CLUSTER"
	}
	return ""
}
