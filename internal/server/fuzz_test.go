package server

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadCommand drives the RESP command parser over arbitrary byte
// streams. The parser fronts every client socket, so it must never
// panic, never hand back an argument longer than the bulk limit, and —
// because args alias the parse arena — every returned arg must be
// readable in full. Errors are fine (malformed input is the point);
// crashes and unbounded allocations are not.
func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"))
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("SET key value\r\n"))
	f.Add([]byte("*1\r\n$-1\r\n"))
	f.Add([]byte("*999999999\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$100\r\nshort\r\n"))
	f.Add([]byte("\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cr := &cmdReader{r: bufio.NewReaderSize(bytes.NewReader(data), 16<<10)}
		for i := 0; i < 64; i++ {
			args, err := cr.ReadCommand()
			if err != nil {
				return
			}
			if len(args) == 0 {
				continue // *0\r\n parses to zero args; dispatch rejects it
			}
			if len(args) > maxArgs {
				t.Fatalf("parser returned %d args, cap is %d", len(args), maxArgs)
			}
			sink := 0
			for _, a := range args {
				if len(a) > maxBulkLen {
					t.Fatalf("arg of %d bytes exceeds bulk limit", len(a))
				}
				for _, b := range a {
					sink += int(b) // touch every byte: args must be readable
				}
			}
			_ = sink
			var scratch [16]byte
			_ = canonicalCommand(args[0], &scratch)
		}
	})
}
