package server

import (
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
)

// Networked end-to-end benchmarks over a raw TCP connection. The client
// side is deliberately allocation-free — requests are pre-encoded byte
// slices, replies are read with io.ReadFull into a reused buffer — so
// with the server in-process, the harness's allocs/op is (to within
// noise) the SERVER's per-command allocation count. This is the gauge for
// the zero-allocation hot path: GET should hold at ~2 allocs/op (the key
// string and the engine's private value copy).

// benchConn dials the server and returns the raw connection.
func benchConn(b *testing.B, s *Server) net.Conn {
	b.Helper()
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { nc.Close() })
	return nc
}

// encodeCmd pre-encodes one RESP command.
func encodeCmd(args ...string) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&sb, "$%d\r\n%s\r\n", len(a), a)
	}
	return []byte(sb.String())
}

// roundTrip writes a pre-encoded request and reads exactly replyLen bytes
// back into buf.
func roundTrip(b *testing.B, nc net.Conn, req, buf []byte, replyLen int) {
	if _, err := nc.Write(req); err != nil {
		b.Fatal(err)
	}
	if _, err := io.ReadFull(nc, buf[:replyLen]); err != nil {
		b.Fatal(err)
	}
}

func startBenchServer(b *testing.B) *Server {
	b.Helper()
	s, err := Start(Options{Addr: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func BenchmarkNetGET(b *testing.B) {
	s := startBenchServer(b)
	nc := benchConn(b, s)
	val := strings.Repeat("x", 16)
	setReq := encodeCmd("SET", "bench:key", val)
	buf := make([]byte, 1024)
	roundTrip(b, nc, setReq, buf, len("+OK\r\n"))
	getReq := encodeCmd("GET", "bench:key")
	replyLen := len(fmt.Sprintf("$%d\r\n%s\r\n", len(val), val))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip(b, nc, getReq, buf, replyLen)
	}
}

func BenchmarkNetSET(b *testing.B) {
	s := startBenchServer(b)
	nc := benchConn(b, s)
	req := encodeCmd("SET", "bench:key", strings.Repeat("x", 16))
	buf := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip(b, nc, req, buf, len("+OK\r\n"))
	}
}

func BenchmarkNetMGET8(b *testing.B) {
	s := startBenchServer(b)
	nc := benchConn(b, s)
	val := strings.Repeat("x", 16)
	args := []string{"MGET"}
	elem := fmt.Sprintf("$%d\r\n%s\r\n", len(val), val)
	replyLen := len("*8\r\n")
	buf := make([]byte, 1024)
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("bench:k%d", i)
		roundTrip(b, nc, encodeCmd("SET", k, val), buf, len("+OK\r\n"))
		args = append(args, k)
		replyLen += len(elem)
	}
	req := encodeCmd(args...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip(b, nc, req, buf, replyLen)
	}
}

// BenchmarkNetGETPipelined measures the hot path with 64 commands per
// socket write: the per-syscall cost amortizes away, leaving parse,
// dispatch, execute, and encode.
func BenchmarkNetGETPipelined(b *testing.B) {
	const window = 64
	s := startBenchServer(b)
	nc := benchConn(b, s)
	val := strings.Repeat("x", 16)
	buf := make([]byte, 64<<10)
	roundTrip(b, nc, encodeCmd("SET", "bench:key", val), buf, len("+OK\r\n"))
	one := encodeCmd("GET", "bench:key")
	var req []byte
	for i := 0; i < window; i++ {
		req = append(req, one...)
	}
	replyLen := window * len(fmt.Sprintf("$%d\r\n%s\r\n", len(val), val))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += window {
		roundTrip(b, nc, req, buf, replyLen)
	}
}
