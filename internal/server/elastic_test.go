package server

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/client"
	"tierbase/internal/elastic"
	"tierbase/internal/engine"
	"tierbase/internal/lsm"
)

// TestTieredRMWRestartRoundTrip is the durability contract for the
// non-SET mutation routing: read-modify-write and collection outcomes
// must land in the storage tier, so a restart over the same storage
// observes them. (Before the routing, SET c 10 + INCR c read back 10
// after restart under write-back: the INCR only touched the cache tier.)
func TestTieredRMWRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Server, *client.Client, *lsm.DB) {
		db, err := lsm.Open(lsm.Options{Dir: filepath.Join(dir, "lsm")})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Start(Options{
			Addr: "127.0.0.1:0",
			TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
				return cache.New(cache.Options{
					Policy: cache.WriteBack, Engine: eng, Storage: cache.NewLSMStorage(db),
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return s, c, db
	}

	s, c, db := open()
	mustDo := func(args ...string) interface{} {
		t.Helper()
		v, err := c.Do(args...)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		return v
	}
	mustDo("SET", "c", "10")
	if v := mustDo("INCR", "c"); v != int64(11) {
		t.Fatalf("INCR c = %v", v)
	}
	mustDo("SETNX", "nx", "first")
	mustDo("SETNX", "nx", "second") // no-op: must not clobber storage either
	if v := mustDo("INCR", "fresh"); v != int64(1) {
		t.Fatalf("INCR fresh = %v", v)
	}
	mustDo("RPUSH", "l", "a", "b", "c")
	mustDo("LPOP", "l") // pops "a"; storage must hold [b c]
	mustDo("HSET", "h", "f", "hv")
	mustDo("ZADD", "z", "1.5", "m")
	mustDo("SADD", "st", "x", "y")
	mustDo("SREM", "st", "y")

	// Restart: close the server (write-back Close runs a final flush),
	// close the LSM, reopen both over the same directory.
	c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	s, c, db = open()
	defer func() {
		c.Close()
		s.Close()
		db.Close()
	}()

	if v := mustDo("GET", "c"); v != "11" {
		t.Fatalf("GET c after restart = %v, want 11", v)
	}
	if v := mustDo("GET", "nx"); v != "first" {
		t.Fatalf("GET nx after restart = %v, want first", v)
	}
	if v := mustDo("GET", "fresh"); v != "1" {
		t.Fatalf("GET fresh after restart = %v, want 1", v)
	}
	if v := mustDo("LRANGE", "l", "0", "-1"); fmt.Sprint(v) != "[b c]" {
		t.Fatalf("LRANGE after restart = %v, want [b c]", v)
	}
	if v := mustDo("HGET", "h", "f"); v != "hv" {
		t.Fatalf("HGET after restart = %v", v)
	}
	if v := mustDo("ZSCORE", "z", "m"); v != "1.5" {
		t.Fatalf("ZSCORE after restart = %v", v)
	}
	if v := mustDo("SISMEMBER", "st", "x"); v != int64(1) {
		t.Fatalf("SISMEMBER x after restart = %v", v)
	}
	if v := mustDo("SISMEMBER", "st", "y"); v != int64(0) {
		t.Fatalf("SISMEMBER y after restart = %v (SREM lost)", v)
	}
	// A restored collection key keeps its type: string reads must fail.
	// (Plain GET, not c.Get: the client coalesces Gets into MGET, whose
	// Redis semantics report wrong-typed keys as nil instead of an error.)
	if _, err := c.Do("GET", "l"); err == nil || !strings.Contains(err.Error(), "wrong") {
		t.Fatalf("GET on restored list: err = %v, want wrong-type", err)
	}
	if v := mustDo("TYPE", "l"); v != "list" {
		t.Fatalf("TYPE l after restart = %v", v)
	}
}

// slowStorage delays every read so in-flight commands hold their shard
// worker long enough for a connection burst to build queue backlog.
type slowStorage struct {
	cache.Storage
	delay time.Duration
}

func (s *slowStorage) Get(key string) ([]byte, bool, error) {
	time.Sleep(s.delay)
	return s.Storage.Get(key)
}

func (s *slowStorage) BatchGet(keys []string) (map[string][]byte, error) {
	time.Sleep(s.delay)
	return s.Storage.BatchGet(keys)
}

// driveBoost opens conns connections that hammer storage-miss GETs until
// the first shard's pool reports Boost mode, then stops the load and
// waits for the cooldown back to Single. It fails the test on timeout.
func driveBoost(t *testing.T, s *Server, conns int) {
	t.Helper()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < conns; g++ {
		c, err := client.Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func(g int, c *client.Client) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				// Unique keys: misses bypass the cache tier and pay the
				// slow storage read, without singleflight collapsing them.
				c.Get(fmt.Sprintf("miss-%d-%d", g, i))
			}
		}(g, c)
	}
	pool := s.Pools()[0]
	deadline := time.Now().Add(10 * time.Second)
	for pool.Mode() != elastic.Boost {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("pool never boosted: %+v", pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := pool.Stats(); st.Boosts < 1 || st.Workers <= 1 {
		t.Fatalf("boost stats inconsistent: %+v", st)
	}
	stop.Store(true)
	wg.Wait()
	for pool.Mode() != elastic.Single {
		if time.Now().After(deadline) {
			t.Fatalf("pool never cooled down: %+v", pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func elasticTestOptions() Options {
	return Options{
		Addr: "127.0.0.1:0",
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{
				Policy:  cache.WriteThrough,
				Engine:  eng,
				Storage: &slowStorage{Storage: cache.NewMapStorage(), delay: 2 * time.Millisecond},
			})
		},
		Pool: elastic.PoolOptions{
			MaxWorkers:    4,
			EvalInterval:  2 * time.Millisecond,
			BoostTicks:    2,
			CooldownTicks: 10,
		},
	}
}

// TestElasticBoostAndIdle drives a live server through the full elastic
// cycle: idle single-threaded mode, a connection burst that trips the
// backlog threshold into Boost, and the hysteresis cooldown back to
// Single once the burst subsides (§4.4).
func TestElasticBoostAndIdle(t *testing.T) {
	s, c := startTestServer(t, elasticTestOptions())
	if got := s.Pools()[0].Mode(); got != elastic.Single {
		t.Fatalf("idle mode = %v, want single", got)
	}
	driveBoost(t, s, 12)
	// INFO must report the cycle.
	v, err := c.Do("INFO", "server")
	if err != nil {
		t.Fatal(err)
	}
	info := v.(string)
	if !strings.Contains(info, "shard0_mode:single") {
		t.Fatalf("INFO missing cooled-down mode:\n%s", info)
	}
	if !strings.Contains(info, "shard0_boosts:") || !strings.Contains(info, "shard0_shrinks:") {
		t.Fatalf("INFO missing elastic counters:\n%s", info)
	}
}

// TestElasticBoostSingleProc re-runs the burst cycle with GOMAXPROCS=1:
// the controller, the boosted workers, and the connection goroutines must
// all make progress on one scheduler thread (no spin that starves the
// cooldown, no deadlock between SubmitTask and a parked worker).
func TestElasticBoostSingleProc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	s, _ := startTestServer(t, elasticTestOptions())
	driveBoost(t, s, 8)
}

// TestElasticModeChangeStress hammers a flapping pool (aggressive eval
// interval, minimal hysteresis) with concurrent mixed traffic — meant to
// run under -race, where it proves command execution is data-race-free
// across Single<->Boost transitions while workers spawn and retire.
func TestElasticModeChangeStress(t *testing.T) {
	s, _ := startTestServer(t, Options{
		Addr: "127.0.0.1:0",
		TieredFactory: func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{
				Policy:  cache.WriteBack,
				Engine:  eng,
				Storage: &slowStorage{Storage: cache.NewMapStorage(), delay: 200 * time.Microsecond},
			})
		},
		Pool: elastic.PoolOptions{
			MaxWorkers:    4,
			EvalInterval:  time.Millisecond,
			BoostTicks:    1,
			CooldownTicks: 1, // flap as fast as the controller allows
		},
	})
	const clients = 8
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		c, err := client.Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func(g int, c *client.Client) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				key := fmt.Sprintf("k%d-%d", g, i%10)
				switch i % 5 {
				case 0:
					if err := c.Set(key, "v"); err != nil {
						t.Errorf("set: %v", err)
						return
					}
				case 1:
					c.Get(fmt.Sprintf("cold%d-%d", g, i))
				case 2:
					if _, err := c.Incr(fmt.Sprintf("ctr%d", g)); err != nil {
						t.Errorf("incr: %v", err)
						return
					}
				case 3:
					c.Do("RPUSH", fmt.Sprintf("l%d", g), "x")
				case 4:
					c.Del(key)
				}
			}
		}(g, c)
	}
	wg.Wait()
	// The pool saw real transitions (otherwise this stressed nothing).
	if st := s.Pools()[0].Stats(); st.Boosts == 0 {
		t.Logf("note: no boost observed (fast machine); stats %+v", st)
	}
}
