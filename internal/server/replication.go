package server

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/client"
	"tierbase/internal/cluster"
	"tierbase/internal/engine"
	"tierbase/internal/metrics"
	"tierbase/internal/replication"
)

// Server-side replication: the network leg over the replication
// package's transport seam (paper §3's master→replica op streaming and
// §4.1.2's semi-synchronous acks).
//
// Masters: every mutation crosses the cache tier's OpSink seam into a
// sequenced OpLog (ReplicateSet/ReplicateDelete below, called under the
// key's RMW stripe lock so log order matches engine order per key). A
// replica connects as a normal RESP client, sends
// `SYNC <lastApplied> <nodeID>`, and the connection is hijacked: the
// master answers `+CONTINUE` (incremental, the log still covers the
// replica's position) or `+FULLSYNC` (engine snapshot first), then
// streams length-prefixed op frames forever; cumulative acks ride back
// on the same socket into the AckTracker. With SemiSyncAcks > 0, every
// write waits for that many replica acks before replying (timeout →
// -NOREPLICAS, the write is applied locally but not acknowledged).
//
// Replicas: an applier loop dials the master, handshakes, applies the
// stream through the tiered store (the sink is inert while the role is
// replica), and mirrors each op into the local log with AppendAt — so a
// promoted replica continues the master's sequence numbers and surviving
// replicas can resume from it incrementally. Client writes are rejected
// with `-MOVED <slot> <masterAddr>` so routed clients refresh and follow.
//
// Robustness (see internal/replication/README.md): every frame write to
// a replica carries a deadline (WriteTimeout), full-sync snapshots
// stream in bounded chunks (SnapshotChunkBytes) with a flush per chunk,
// an idle link is kept provably alive by master pings answered with
// replica acks (KeepaliveInterval/ReadTimeout), replicas whose unacked
// backlog exceeds ShedBacklog are disconnected to re-sync later, and
// the replica applier redials with jittered exponential backoff.
// FLUSHALL/EXPIRE/PERSIST replicate as first-class ops (EXPIRE as an
// absolute deadline), and a full sync clears the replica's private
// storage tier along with its cache tier.
//
// Known gap (see ROADMAP.md): batch writes enter the log per stripe
// after commit, so a concurrent single-key RMW can order differently
// across stripes than on the master.

const (
	roleMaster int32 = iota
	roleReplica
)

// serverRepl owns a node's replication state and implements
// cache.OpSink.
type serverRepl struct {
	s   *Server
	cfg ReplicationConfig

	log  *replication.OpLog
	acks *replication.AckTracker

	role            atomic.Int32
	lastApplied     atomic.Uint64 // replica: last op applied from the master
	masterLinkUp    atomic.Bool
	reregister      atomic.Bool // role changed: refresh coordinator registration
	draining        atomic.Bool // graceful drain: stop (re-)registering
	fullSyncsServed atomic.Int64
	fullSyncsDone   atomic.Int64
	applyErrors     atomic.Int64
	laggardsShed    atomic.Int64     // sessions dropped for unacked backlog
	writeStall      metrics.MaxGauge // worst replication-frame write+flush, ns

	mu         sync.Mutex
	masterAddr string
	sessions   map[string]*replSession
	applier    *replApplier
	closed     bool

	stop chan struct{}
	wg   sync.WaitGroup
}

func newServerRepl(s *Server, cfg ReplicationConfig) *serverRepl {
	return &serverRepl{
		s:        s,
		cfg:      cfg,
		log:      replication.NewOpLog(cfg.LogCap),
		acks:     replication.NewAckTracker(),
		sessions: make(map[string]*replSession),
		stop:     make(chan struct{}),
	}
}

// start brings up the configured role and the coordinator heartbeat.
// Called once from Start after the shards (and their sinks) exist.
func (r *serverRepl) start() {
	if r.cfg.MasterAddr != "" {
		r.role.Store(roleReplica)
		r.mu.Lock()
		r.masterAddr = r.cfg.MasterAddr
		r.mu.Unlock()
		r.startApplier(r.cfg.MasterAddr)
	}
	if r.cfg.CoordinatorAddr != "" {
		r.wg.Add(1)
		go r.heartbeatLoop()
	}
}

// close stops the applier, all replica sessions, the heartbeat, and the
// op log (unblocking hijacked SYNC connections).
func (r *serverRepl) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	ap := r.applier
	r.applier = nil
	sess := make([]*replSession, 0, len(r.sessions))
	for _, s := range r.sessions {
		sess = append(sess, s)
	}
	r.mu.Unlock()
	close(r.stop)
	if ap != nil {
		ap.close()
	}
	for _, s := range sess {
		s.close()
	}
	r.log.Close()
	r.wg.Wait()
}

func (r *serverRepl) isReplica() bool { return r.role.Load() == roleReplica }

func (r *serverRepl) currentMasterAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.masterAddr
}

func (r *serverRepl) advertiseAddr() string {
	if r.cfg.AdvertiseAddr != "" {
		return r.cfg.AdvertiseAddr
	}
	return r.s.Addr()
}

// --- OpSink (the cache tier reports mutations here) ---

// ReplicateSet appends a store op to the log. Called under the key's RMW
// stripe lock; val aliases a caller buffer and is copied by Append.
// Inert on replicas: the applier mirrors the master's stream itself.
func (r *serverRepl) ReplicateSet(key string, val []byte, encoded bool) {
	if r.isReplica() {
		return
	}
	kind := replication.OpSet
	if encoded {
		kind = replication.OpSetEncoded
	}
	r.log.Append(kind, key, val)
}

// ReplicateDelete appends a delete op to the log.
func (r *serverRepl) ReplicateDelete(key string) {
	if r.isReplica() {
		return
	}
	r.log.Append(replication.OpDel, key, nil)
}

// ReplicateExpire appends a TTL-set op. The value is the absolute
// UnixNano deadline in decimal: a replica applying the op late still
// expires the key at the master's wall-clock instant, not a relative
// duration drifted by replication lag.
func (r *serverRepl) ReplicateExpire(key string, at int64) {
	if r.isReplica() {
		return
	}
	r.log.Append(replication.OpExpire, key, strconv.AppendInt(nil, at, 10))
}

// ReplicatePersist appends a TTL-clear op.
func (r *serverRepl) ReplicatePersist(key string) {
	if r.isReplica() {
		return
	}
	r.log.Append(replication.OpPersist, key, nil)
}

// ReplicateFlushAll appends a whole-keyspace clear.
func (r *serverRepl) ReplicateFlushAll() {
	if r.isReplica() {
		return
	}
	r.log.Append(replication.OpFlushAll, "", nil)
}

// --- role-aware dispatch ---

// isWriteCommand reports commands that mutate state — rejected on
// replicas and gated by the semi-sync wait on masters.
func isWriteCommand(cmd string) bool {
	switch cmd {
	case "SET", "MSET", "DEL", "UNLINK", "SETNX", "INCR", "DECR",
		"INCRBY", "DECRBY", "CAS", "EXPIRE", "PERSIST", "FLUSHALL",
		"LPUSH", "RPUSH", "LPOP", "RPOP", "SADD", "SREM",
		"ZADD", "ZREM", "HSET", "HDEL":
		return true
	}
	return false
}

// intercept gives the replication layer first crack at a command.
// Returns true when the command was fully handled (reply appended or
// connection hijacked); false falls through to plain dispatch.
func (r *serverRepl) intercept(c *conn, cmd string, args [][]byte) bool {
	switch cmd {
	case "REPLICAOF":
		r.cmdReplicaof(c, args)
		return true
	case "SYNC":
		r.cmdSync(c, args)
		return true
	case "CLUSTER":
		r.cmdCluster(c, args)
		return true
	}
	if !isWriteCommand(cmd) {
		return false
	}
	if r.isReplica() {
		// Role-aware rejection: point the client at the master. The slot
		// comes from the first key so routed clients can cross-check; the
		// address is what matters for following the redirect.
		slot := 0
		if len(args) > 1 {
			slot = cluster.SlotFor(string(args[1]))
		}
		c.out = appendRawError(c.out, fmt.Sprintf("MOVED %d %s", slot, r.currentMasterAddr()))
		return true
	}
	if r.cfg.SemiSyncAcks > 0 {
		r.semiSync(c, cmd, args)
		return true
	}
	return false
}

// semiSync executes a write and holds the reply until SemiSyncAcks
// replicas acknowledged the log position it produced. On timeout the
// reply is replaced with -NOREPLICAS: the write is applied locally but
// the client must treat it as unacknowledged (it may or may not survive
// a failover).
func (r *serverRepl) semiSync(c *conn, cmd string, args [][]byte) {
	mark := len(c.out)
	r.s.dispatchCmd(c, cmd, args)
	if len(c.out) > mark && c.out[mark] == '-' {
		return // the write itself failed; nothing to wait for
	}
	// Waiting on the log head (not just this command's ops) is
	// conservative under concurrency but always covers this write.
	err := r.acks.Wait(r.log.Seq(), r.cfg.SemiSyncAcks, r.cfg.AckTimeout)
	if err != nil {
		c.out = c.out[:mark]
		c.out = appendRawError(c.out, fmt.Sprintf(
			"NOREPLICAS write not acknowledged by %d replica(s) within %v",
			r.cfg.SemiSyncAcks, r.cfg.AckTimeout))
	}
}

// cmdReplicaof serves REPLICAOF host port | NO ONE — the coordinator's
// promotion/re-point push, also available to operators.
func (r *serverRepl) cmdReplicaof(c *conn, args [][]byte) {
	if len(args) != 3 {
		c.out = appendError(c.out, "wrong number of arguments for 'replicaof'")
		return
	}
	host, port := string(args[1]), string(args[2])
	if strings.EqualFold(host, "no") && strings.EqualFold(port, "one") {
		r.promote()
		c.out = appendSimple(c.out, "OK")
		return
	}
	if _, err := strconv.Atoi(port); err != nil {
		c.out = appendError(c.out, "invalid replicaof port")
		return
	}
	r.follow(net.JoinHostPort(host, port))
	c.out = appendSimple(c.out, "OK")
}

// promote turns a replica into a master: stop applying, flip the role,
// keep the mirrored log so surviving replicas resume incrementally from
// the same sequence numbers.
func (r *serverRepl) promote() {
	r.mu.Lock()
	ap := r.applier
	r.applier = nil
	r.mu.Unlock()
	if ap != nil {
		ap.close() // waits: no apply is in flight after this
	}
	r.role.Store(roleMaster)
	r.mu.Lock()
	r.masterAddr = ""
	r.mu.Unlock()
	r.masterLinkUp.Store(false)
	r.reregister.Store(true)
}

// follow (re)points this node at a master, restarting the applier. A
// master demoting drops its replica sessions — they must resync from the
// new master.
func (r *serverRepl) follow(addr string) {
	r.mu.Lock()
	ap := r.applier
	r.applier = nil
	sess := make([]*replSession, 0, len(r.sessions))
	for _, s := range r.sessions {
		sess = append(sess, s)
	}
	r.mu.Unlock()
	if ap != nil {
		ap.close()
	}
	for _, s := range sess {
		s.close()
	}
	r.role.Store(roleReplica)
	r.mu.Lock()
	r.masterAddr = addr
	r.mu.Unlock()
	r.reregister.Store(true)
	r.startApplier(addr)
}

// cmdCluster serves the data-node CLUSTER subcommands (identity and
// routing introspection; the table itself lives on the coordinator).
func (r *serverRepl) cmdCluster(c *conn, args [][]byte) {
	if len(args) < 2 {
		c.out = appendError(c.out, "wrong number of arguments for 'cluster'")
		return
	}
	sub := strings.ToUpper(string(args[1]))
	switch sub {
	case "MYID":
		c.out = appendBulkString(c.out, r.cfg.NodeID)
	case "ROLE":
		role := "master"
		if r.isReplica() {
			role = "replica"
		}
		c.out = appendSimple(c.out, role)
	case "SLOT":
		if len(args) != 3 {
			c.out = appendError(c.out, "CLUSTER SLOT needs a key")
			return
		}
		c.out = appendInt(c.out, int64(cluster.SlotFor(string(args[2]))))
	default:
		c.out = appendError(c.out, "unknown CLUSTER subcommand '"+sub+"'")
	}
}

// --- master side: serving a replica's SYNC ---

// replSession is one attached replica connection on a master.
type replSession struct {
	id     string
	nc     net.Conn
	stream *replication.Stream
	// wmu serializes frame writes: the op-stream loop and the keepalive
	// ticker share one bufio.Writer.
	wmu sync.Mutex
}

func (s *replSession) close() {
	s.stream.Cancel()
	s.nc.Close()
}

func (r *serverRepl) addSession(sess *replSession) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	old := r.sessions[sess.id]
	r.sessions[sess.id] = sess
	r.mu.Unlock()
	if old != nil {
		old.close() // a reconnect replaces the stale session
	}
	return true
}

func (r *serverRepl) removeSession(sess *replSession) {
	r.mu.Lock()
	if r.sessions[sess.id] == sess {
		delete(r.sessions, sess.id)
	}
	r.mu.Unlock()
}

// cmdSync validates the handshake and schedules the connection hijack;
// serveReplica (below) runs on the connection goroutine and owns the
// socket until the replica detaches.
func (r *serverRepl) cmdSync(c *conn, args [][]byte) {
	if len(args) != 3 {
		c.out = appendError(c.out, "wrong number of arguments for 'sync'")
		return
	}
	if r.isReplica() {
		c.out = appendError(c.out, "cannot SYNC from a replica")
		return
	}
	after, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		c.out = appendError(c.out, "invalid SYNC position")
		return
	}
	nodeID := string(args[2])
	if nodeID == "" {
		c.out = appendError(c.out, "SYNC requires a node id")
		return
	}
	c.hijack = func() { r.serveReplica(c, after, nodeID) }
}

// serveReplica streams the op log to one replica. The status line tells
// the replica whether its position still resumes (+CONTINUE) or a
// snapshot precedes the stream (+FULLSYNC). The snapshot stream is
// opened at the current head BEFORE the engines are walked, and every op
// carries its key's full resulting state, so replaying the overlap over
// the (possibly newer) snapshot converges.
//
// Robustness: every write toward the replica is bounded by WriteTimeout
// (a stalled socket errors out instead of blocking the session forever);
// the snapshot walk materializes at most SnapshotChunkBytes per engine
// lock acquisition and flushes each chunk before building the next, so a
// slow link bounds the master's buffering, not its memory; a keepalive
// ticker pings the replica (and sheds it if its unacked backlog exceeds
// ShedBacklog); and the ack reader enforces ReadTimeout — with pings
// answered by acks, a healthy link always has a frame in flight.
func (r *serverRepl) serveReplica(c *conn, after uint64, nodeID string) {
	nc := c.nc
	bw := bufio.NewWriterSize(nc, 64<<10)
	wt := r.cfg.WriteTimeout

	var stream *replication.Stream
	var err error
	full := false
	snapSeq := uint64(0)
	if after <= r.log.Seq() {
		stream, err = r.log.Stream(after)
	} else {
		// The replica claims a future position: divergent history (an old
		// master rejoining with unreplicated writes). Snapshot it.
		err = replication.ErrSeqGap
	}
	if err != nil {
		full = true
		snapSeq = r.log.Seq()
		if stream, err = r.log.Stream(snapSeq); err != nil {
			return // log closed (server shutting down)
		}
	}
	defer stream.Cancel()

	// deadlineFlush bounds one buffered write burst; the stall gauge
	// records the worst case (the master-side write stall a slow replica
	// link can induce).
	deadlineFlush := func() error {
		start := time.Now()
		nc.SetWriteDeadline(start.Add(wt))
		err := bw.Flush()
		r.writeStall.Observe(time.Since(start).Nanoseconds())
		return err
	}

	if full {
		r.fullSyncsServed.Add(1)
		if _, err := bw.WriteString("+FULLSYNC\r\n"); err != nil {
			return
		}
		if err := replication.WriteSnapBegin(bw, snapSeq); err != nil {
			return
		}
		for _, sh := range r.s.shards {
			werr := error(nil)
			ferr := sh.eng.ForEachEncodedChunked(r.cfg.SnapshotChunkBytes,
				func(chunk []engine.SnapEntry) bool {
					for _, e := range chunk {
						if werr = replication.WriteSnapEntry(bw, e.Key, e.Val, e.Encoded); werr != nil {
							return false
						}
					}
					werr = deadlineFlush()
					return werr == nil
				})
			if werr != nil || ferr != nil {
				return
			}
		}
		if err := replication.WriteSnapEnd(bw, snapSeq); err != nil {
			return
		}
	} else {
		if _, err := bw.WriteString("+CONTINUE\r\n"); err != nil {
			return
		}
	}
	if err := deadlineFlush(); err != nil {
		return
	}

	sess := &replSession{id: nodeID, nc: nc, stream: stream}
	if !r.addSession(sess) {
		return
	}
	defer r.removeSession(sess)
	r.acks.Attach(nodeID)
	defer r.acks.Detach(nodeID)

	// Cumulative acks (and ping answers) ride back on the same socket; a
	// read error — including ReadTimeout with no frame, which a healthy
	// replica never hits while it answers pings — means the replica is
	// gone: cancel the stream to unblock the writer.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		br := c.cr.r
		for {
			nc.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout))
			f, err := replication.ReadFrame(br)
			if err != nil {
				stream.Cancel()
				nc.Close()
				return
			}
			if f.IsAck() {
				r.acks.Ack(nodeID, f.Seq)
			}
		}
	}()

	// Keepalive + laggard shedding: ping with the current log head every
	// KeepaliveInterval (the replica answers with a cumulative ack, so an
	// idle link still proves liveness and refreshes both read deadlines),
	// and disconnect a replica whose unacked backlog outgrew ShedBacklog
	// — it re-syncs later instead of pinning master-side buffers.
	kaStop := make(chan struct{})
	kaDone := make(chan struct{})
	go func() {
		defer close(kaDone)
		tick := time.NewTicker(r.cfg.KeepaliveInterval)
		defer tick.Stop()
		for {
			select {
			case <-kaStop:
				return
			case <-tick.C:
			}
			if r.cfg.ShedBacklog > 0 {
				if acked, ok := r.acks.Acked(nodeID); ok {
					if head := r.log.Seq(); head > acked && head-acked > uint64(r.cfg.ShedBacklog) {
						r.laggardsShed.Add(1)
						stream.Cancel()
						nc.Close()
						return
					}
				}
			}
			sess.wmu.Lock()
			err := replication.WritePing(bw, r.log.Seq())
			if err == nil {
				err = deadlineFlush()
			}
			sess.wmu.Unlock()
			if err != nil {
				stream.Cancel()
				nc.Close()
				return
			}
		}
	}()
	defer func() {
		close(kaStop)
		nc.Close()
		<-kaDone
		<-ackDone
	}()

	var buf []replication.Op
	for {
		ops, err := stream.Recv(buf)
		if err != nil {
			return
		}
		buf = ops
		sess.wmu.Lock()
		for _, op := range ops {
			if err := replication.WriteOp(bw, op); err != nil {
				sess.wmu.Unlock()
				return
			}
		}
		err = deadlineFlush()
		sess.wmu.Unlock()
		if err != nil {
			return
		}
	}
}

// --- replica side: the applier loop ---

// replApplier is a replica's connection to its master: dial, handshake,
// apply the stream, ack; redial with backoff on any failure.
type replApplier struct {
	r          *serverRepl
	masterAddr string
	stop       chan struct{}
	mu         sync.Mutex
	conn       net.Conn
	stopped    bool
	wg         sync.WaitGroup
}

func (r *serverRepl) startApplier(addr string) {
	a := &replApplier{r: r, masterAddr: addr, stop: make(chan struct{})}
	r.mu.Lock()
	r.applier = a
	r.mu.Unlock()
	a.wg.Add(1)
	go a.run()
}

// close stops the loop and waits for it: after close returns, no apply
// is in flight (promote relies on this before flipping the role).
func (a *replApplier) close() {
	a.mu.Lock()
	if !a.stopped {
		a.stopped = true
		close(a.stop)
		if a.conn != nil {
			a.conn.Close()
		}
	}
	a.mu.Unlock()
	a.wg.Wait()
}

func (a *replApplier) run() {
	defer a.wg.Done()
	// Jittered exponential redial: repeated failures space out up to 2s,
	// and the jitter keeps a fleet of replicas that lost the same master
	// from redialing it in lockstep when it comes back.
	bo := &cluster.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	for {
		select {
		case <-a.stop:
			return
		default:
		}
		if a.syncOnce() {
			bo.Reset() // the session was established; restart fresh
		}
		a.r.masterLinkUp.Store(false)
		select {
		case <-a.stop:
			return
		case <-time.After(bo.Next()):
		}
	}
}

// setConn registers the live socket so close can sever a blocked read.
func (a *replApplier) setConn(nc net.Conn) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return false
	}
	a.conn = nc
	return true
}

// dial resolves the master-dial seam: the configured Dialer (fault
// injection wraps the socket here) or plain TCP.
func (a *replApplier) dial() (net.Conn, error) {
	if d := a.r.cfg.Dialer; d != nil {
		return d(a.masterAddr, 2*time.Second)
	}
	return net.DialTimeout("tcp", a.masterAddr, 2*time.Second)
}

// syncOnce runs one master session: handshake from the local position,
// install a snapshot if offered, then apply-and-ack until the connection
// dies or the applier stops. It reports whether a session was
// established (the redial backoff resets on true).
//
// Liveness is symmetric to the master side: every frame read is bounded
// by ReadTimeout (the master pings at least every KeepaliveInterval, so
// a healthy idle link never starves the deadline), pings are answered
// with a cumulative ack, and every ack write is bounded by WriteTimeout.
func (a *replApplier) syncOnce() bool {
	r := a.r
	nc, err := a.dial()
	if err != nil {
		return false
	}
	defer nc.Close()
	if !a.setConn(nc) {
		return false
	}
	rt, wt := r.cfg.ReadTimeout, r.cfg.WriteTimeout
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)
	nc.SetWriteDeadline(time.Now().Add(wt))
	if err := writeRESPCommand(bw, "SYNC", strconv.FormatUint(r.lastApplied.Load(), 10), r.cfg.NodeID); err != nil {
		return false
	}
	nc.SetReadDeadline(time.Now().Add(rt))
	status, err := br.ReadString('\n')
	if err != nil {
		return false
	}
	switch strings.TrimRight(status, "\r\n") {
	case "+CONTINUE":
	case "+FULLSYNC":
		r.fullSyncsDone.Add(1)
		if !a.readSnapshot(nc, br) {
			return false
		}
	default:
		return false // -ERR (e.g. the target is itself a replica): back off, retry
	}
	r.masterLinkUp.Store(true)
	ack := func(seq uint64) bool {
		nc.SetWriteDeadline(time.Now().Add(wt))
		return replication.WriteAck(bw, seq) == nil && bw.Flush() == nil
	}
	// The initial ack registers this replica's position with the master
	// before any new op arrives (semi-sync counts attached replicas).
	if !ack(r.lastApplied.Load()) {
		return true
	}
	for {
		nc.SetReadDeadline(time.Now().Add(rt))
		f, err := replication.ReadFrame(br)
		if err != nil {
			return true
		}
		if f.IsPing() {
			// Answer with the cumulative position: liveness both ways on
			// an idle link, and the master's shed check stays current.
			if !ack(r.lastApplied.Load()) {
				return true
			}
			continue
		}
		if !f.IsOp() {
			continue
		}
		op := f.Op
		r.applyOp(op)
		if r.log.AppendAt(op) != nil {
			// A mirrored-log gap should be impossible; restart the window
			// at this op so the log stays internally consistent (future
			// subscribers behind this point full-sync).
			r.log.Reset(op.Seq)
		}
		r.lastApplied.Store(op.Seq)
		if br.Buffered() == 0 {
			// Batch boundary: ack the whole drained window in one frame.
			if !ack(op.Seq) {
				return true
			}
		}
	}
}

// readSnapshot installs a full-sync snapshot: clear every shard — cache
// tier AND private storage tier, via the tiered store's FlushAll — then
// apply every entry and reset the mirrored log to the snapshot position.
// Clearing storage matters: a key deleted on the master while this
// replica was away must not resurrect from the replica's stale storage
// after promotion. Each frame read is bounded by ReadTimeout (the
// master flushes at least every SnapshotChunkBytes, so a healthy link
// always delivers in time).
func (a *replApplier) readSnapshot(nc net.Conn, br *bufio.Reader) bool {
	r := a.r
	rt := r.cfg.ReadTimeout
	started := false
	for {
		nc.SetReadDeadline(time.Now().Add(rt))
		f, err := replication.ReadFrame(br)
		if err != nil {
			return false
		}
		switch {
		case f.IsSnapBegin():
			for _, sh := range r.s.shards {
				if sh.tiered != nil {
					if err := sh.tiered.FlushAll(); err != nil {
						r.applyErrors.Add(1)
					}
				} else {
					sh.eng.FlushAll()
				}
			}
			started = true
		case f.IsSnapEntry():
			if !started {
				return false
			}
			r.applyEntry(f.Key, f.Val, f.Encoded)
		case f.IsSnapEnd():
			if !started {
				return false
			}
			r.lastApplied.Store(f.Seq)
			r.log.Reset(f.Seq)
			return true
		default:
			return false
		}
	}
}

// applyOp applies one streamed op through the owning shard's tiered
// store (the sink is inert on replicas, so nothing re-enters the log).
func (r *serverRepl) applyOp(op replication.Op) {
	switch op.Kind {
	case replication.OpSet:
		r.applyEntry(op.Key, op.Val, false)
	case replication.OpSetEncoded:
		r.applyEntry(op.Key, op.Val, true)
	case replication.OpDel:
		sh := r.s.shardFor([]byte(op.Key))
		if _, err := sh.strBatchDel([]string{op.Key}); err != nil {
			r.applyErrors.Add(1)
		}
	case replication.OpExpire:
		at, err := strconv.ParseInt(string(op.Val), 10, 64)
		if err != nil {
			r.applyErrors.Add(1)
			return
		}
		sh := r.s.shardFor([]byte(op.Key))
		sh.warm(op.Key)
		if sh.tiered != nil {
			sh.tiered.ExpireAt(op.Key, at)
		} else {
			sh.eng.ExpireAt(op.Key, at)
		}
	case replication.OpPersist:
		sh := r.s.shardFor([]byte(op.Key))
		sh.warm(op.Key)
		if sh.tiered != nil {
			sh.tiered.Persist(op.Key)
		} else {
			sh.eng.Persist(op.Key)
		}
	case replication.OpFlushAll:
		for _, sh := range r.s.shards {
			if sh.tiered != nil {
				if err := sh.tiered.FlushAll(); err != nil {
					r.applyErrors.Add(1)
				}
			} else {
				sh.eng.FlushAll()
			}
		}
	}
}

func (r *serverRepl) applyEntry(key string, val []byte, encoded bool) {
	sh := r.s.shardFor([]byte(key))
	var err error
	if encoded {
		err = sh.tiered.Locked(key, func() error {
			if err := sh.eng.LoadEncoded(key, val); err != nil {
				return err
			}
			return sh.tiered.PropagateEncoded(key, val)
		})
	} else {
		err = sh.strSet(key, val)
	}
	if err != nil {
		r.applyErrors.Add(1)
	}
}

// writeRESPCommand frames one command as a RESP array and flushes.
func writeRESPCommand(bw *bufio.Writer, args ...string) error {
	fmt.Fprintf(bw, "*%d\r\n", len(args))
	for _, arg := range args {
		fmt.Fprintf(bw, "$%d\r\n%s\r\n", len(arg), arg)
	}
	return bw.Flush()
}

// --- coordinator heartbeat ---

// heartbeatLoop registers the node with the coordinator and heartbeats
// every HeartbeatInterval. Registration refreshes on role changes (the
// reregister flag) and when the coordinator forgets us (-UNKNOWNNODE,
// e.g. a coordinator restart).
func (r *serverRepl) heartbeatLoop() {
	defer r.wg.Done()
	var cc *client.Client
	defer func() {
		if cc != nil {
			cc.Close()
		}
	}()
	registered := false
	// An unreachable coordinator backs off with jitter instead of
	// hammering it every HeartbeatInterval — the thundering-herd guard
	// for a coordinator restart with a whole fleet re-registering.
	bo := &cluster.Backoff{Base: r.cfg.HeartbeatInterval, Max: 8 * r.cfg.HeartbeatInterval}
	for {
		ok := true
		if cc == nil || cc.Err() != nil {
			if cc != nil {
				cc.Close()
			}
			cc = nil
			if c, err := client.Dial(r.cfg.CoordinatorAddr); err == nil {
				cc = c
				registered = false
			} else {
				ok = false
			}
		}
		if cc != nil {
			if r.reregister.Swap(false) {
				registered = false
			}
			if r.draining.Load() {
				// Graceful drain deregistered this node; don't re-register
				// when the coordinator answers -UNKNOWNNODE to a straggling
				// heartbeat.
				ok = true
			} else if !registered {
				role, masterAddr := "master", "-"
				if r.isReplica() {
					role = "replica"
					masterAddr = r.currentMasterAddr()
				}
				if _, err := cc.Do("CLUSTER", "REGISTER", r.cfg.NodeID, r.advertiseAddr(), role, masterAddr); err == nil {
					registered = true
				} else {
					ok = false
				}
			} else if _, err := cc.Do("CLUSTER", "HEARTBEAT", r.cfg.NodeID); err != nil {
				if strings.Contains(err.Error(), "UNKNOWNNODE") {
					registered = false
				}
			}
		}
		wait := r.cfg.HeartbeatInterval
		if ok {
			bo.Reset()
		} else {
			wait = bo.Next()
		}
		select {
		case <-r.stop:
			return
		case <-time.After(wait):
		}
	}
}

// deregister removes this node from the coordinator's routing table —
// the first step of a graceful drain, so clients re-route before the
// listener closes. Best-effort (a dead coordinator will fail the node
// over anyway) on a fresh connection: the heartbeat loop owns its own.
// Also marks the node draining so a straggling heartbeat doesn't
// re-register it.
func (r *serverRepl) deregister() {
	r.draining.Store(true)
	if r.cfg.CoordinatorAddr == "" {
		return
	}
	cc, err := client.Dial(r.cfg.CoordinatorAddr)
	if err != nil {
		return
	}
	defer cc.Close()
	cc.Do("CLUSTER", "DEREGISTER", r.cfg.NodeID)
}

// --- INFO replication ---

// info renders the "# Replication" section: role, sequence positions,
// attached replicas with ack lag, sync counters.
func (r *serverRepl) info(b *strings.Builder) {
	fmt.Fprintf(b, "# Replication\r\n")
	role := "master"
	if r.isReplica() {
		role = "replica"
	}
	seq := r.log.Seq()
	fmt.Fprintf(b, "role:%s\r\n", role)
	fmt.Fprintf(b, "node_id:%s\r\n", r.cfg.NodeID)
	fmt.Fprintf(b, "repl_seq:%d\r\n", seq)
	fmt.Fprintf(b, "repl_start_seq:%d\r\n", r.log.StartSeq())
	fmt.Fprintf(b, "semi_sync_acks:%d\r\n", r.cfg.SemiSyncAcks)
	if role == "replica" {
		link := "down"
		if r.masterLinkUp.Load() {
			link = "up"
		}
		fmt.Fprintf(b, "master_addr:%s\r\n", r.currentMasterAddr())
		fmt.Fprintf(b, "master_link:%s\r\n", link)
		fmt.Fprintf(b, "last_applied_seq:%d\r\n", r.lastApplied.Load())
	}
	acked := r.acks.Snapshot()
	ids := make([]string, 0, len(acked))
	for id := range acked {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(b, "connected_replicas:%d\r\n", len(ids))
	for i, id := range ids {
		fmt.Fprintf(b, "replica%d:id=%s,acked_seq=%d,ack_lag=%d\r\n", i, id, acked[id], seq-acked[id])
	}
	fmt.Fprintf(b, "full_syncs_served:%d\r\n", r.fullSyncsServed.Load())
	fmt.Fprintf(b, "full_syncs_done:%d\r\n", r.fullSyncsDone.Load())
	fmt.Fprintf(b, "apply_errors:%d\r\n", r.applyErrors.Load())
	fmt.Fprintf(b, "laggards_shed:%d\r\n", r.laggardsShed.Load())
	fmt.Fprintf(b, "max_write_stall_ns:%d\r\n", r.writeStall.Load())
}
