package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/client"
	"tierbase/internal/engine"
	"tierbase/internal/replication"
)

// TestSlowReplicaFullSyncDoesNotStallWrites is the in-process slow-link
// drill: a fake replica requests a full sync and then never reads its
// socket. With small kernel buffers the master's snapshot writes block;
// WriteTimeout must kill that session within a bound while concurrent
// client writes keep completing at normal latency.
func TestSlowReplicaFullSyncDoesNotStallWrites(t *testing.T) {
	ms, mc := startMaster(t, func(c *Config) {
		c.Replication.WriteTimeout = 250 * time.Millisecond
		c.Replication.KeepaliveInterval = 50 * time.Millisecond
		c.Replication.SnapshotChunkBytes = 4 << 10
		c.Replication.LogCap = 8 // force SYNC 0 onto the full-sync path
		c.WrapConn = func(nc net.Conn) net.Conn {
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.SetWriteBuffer(4 << 10) // make the stall reproducible
			}
			return nc
		}
	})

	// Enough snapshot bytes to overflow the shrunken socket buffers many
	// times over.
	payload := strings.Repeat("x", 1024)
	for i := 0; i < 300; i++ {
		if err := mc.Set(fmt.Sprintf("snap%03d", i), payload); err != nil {
			t.Fatal(err)
		}
	}

	// The stuck replica: handshake, then stop draining the socket.
	stuck, err := net.Dial("tcp", ms.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	if tc, ok := stuck.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	bw := bufio.NewWriter(stuck)
	if err := writeRESPCommand(bw, "SYNC", "0", "stuck"); err != nil {
		t.Fatal(err)
	}

	// While the master is wedged mid-snapshot against the dead socket,
	// client writes must complete promptly (the paper's "bounded
	// master-side write stall" requirement).
	var maxLat time.Duration
	for i := 0; i < 50; i++ {
		start := time.Now()
		if err := mc.Set(fmt.Sprintf("live%02d", i), "v"); err != nil {
			t.Fatal(err)
		}
		if lat := time.Since(start); lat > maxLat {
			maxLat = lat
		}
	}
	if maxLat > 2*time.Second {
		t.Fatalf("client write stalled %v behind a stuck full sync", maxLat)
	}

	// The master must abandon the stuck session within ~WriteTimeout: the
	// socket gets closed, which we observe as EOF once we drain it.
	stuck.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 64<<10)
	for {
		if _, err := stuck.Read(buf); err != nil {
			break // EOF/reset: the master gave up on us — the point
		}
	}

	if got := infoField(t, mc, "replication", "full_syncs_served"); got != "1" {
		t.Fatalf("full_syncs_served = %q", got)
	}
	waitFor(t, "stuck session detached", func() bool {
		return infoField(t, mc, "replication", "connected_replicas") == "0"
	})
	stall, err := strconv.ParseInt(infoField(t, mc, "replication", "max_write_stall_ns"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if stall < int64(100*time.Millisecond) {
		t.Fatalf("max_write_stall_ns=%d: the blocked flush never registered", stall)
	}
	if stall > int64(10*time.Second) {
		t.Fatalf("max_write_stall_ns=%d: write stall unbounded", stall)
	}
}

// TestLaggardReplicaIsShed: a replica that attaches, then reads ops but
// never acks them, must be disconnected once its unacked backlog passes
// ShedBacklog — it cannot pin master-side resources forever.
func TestLaggardReplicaIsShed(t *testing.T) {
	ms, mc := startMaster(t, func(c *Config) {
		c.Replication.KeepaliveInterval = 30 * time.Millisecond
		c.Replication.ShedBacklog = 32
	})

	nc, err := net.Dial("tcp", ms.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	if err := writeRESPCommand(bw, "SYNC", "0", "laggard"); err != nil {
		t.Fatal(err)
	}
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimRight(status, "\r\n"); s == "+FULLSYNC" {
		for {
			f, err := replication.ReadFrame(br)
			if err != nil {
				t.Fatal(err)
			}
			if f.IsSnapEnd() {
				break
			}
		}
	} else if s != "+CONTINUE" {
		t.Fatalf("handshake status %q", s)
	}
	// Attach with an initial ack at 0, then go silent on acks.
	if err := replication.WriteAck(bw, 0); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "laggard attached", func() bool {
		return infoField(t, mc, "replication", "connected_replicas") == "1"
	})

	// Push the backlog past the bound.
	for i := 0; i < 100; i++ {
		if err := mc.Set(fmt.Sprintf("k%03d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Keep reading (we are slow to ACK, not slow to read) until the
	// master sheds us.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		if _, err := replication.ReadFrame(br); err != nil {
			break
		}
	}

	waitFor(t, "laggard shed", func() bool {
		return infoField(t, mc, "replication", "laggards_shed") == "1" &&
			infoField(t, mc, "replication", "connected_replicas") == "0"
	})
}

// TestKeepaliveKeepsIdleLinkAlive: with aggressive read deadlines, an
// idle master→replica link must survive on pings alone — no spurious
// reconnects, no full syncs.
func TestKeepaliveKeepsIdleLinkAlive(t *testing.T) {
	ms, mc := startMaster(t, func(c *Config) {
		c.Replication.KeepaliveInterval = 30 * time.Millisecond
		c.Replication.ReadTimeout = 120 * time.Millisecond
	})
	_, rc := startReplicaOf(t, ms, "r1", func(c *Config) {
		c.Replication.KeepaliveInterval = 30 * time.Millisecond
		c.Replication.ReadTimeout = 120 * time.Millisecond
	})

	if err := mc.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replica catch-up", func() bool {
		v, err := rc.Get("k")
		return err == nil && v == "v"
	})
	// Idle for many ReadTimeout periods: only pings flow.
	time.Sleep(600 * time.Millisecond)
	if got := infoField(t, rc, "replication", "master_link"); got != "up" {
		t.Fatalf("idle link dropped: master_link=%q", got)
	}
	if got := infoField(t, rc, "replication", "full_syncs_done"); got != "0" {
		t.Fatalf("idle link re-synced: full_syncs_done=%q", got)
	}
	// And it still carries writes.
	if err := mc.Set("k2", "v2"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-idle stream", func() bool {
		v, err := rc.Get("k2")
		return err == nil && v == "v2"
	})
}

// TestExpirePersistFlushAllReplicate: the PR's new op kinds reach the
// replica — TTLs (as absolute deadlines), TTL clears, and whole-keyspace
// flushes.
func TestExpirePersistFlushAllReplicate(t *testing.T) {
	ms, mc := startMaster(t, nil)
	_, rc := startReplicaOf(t, ms, "r1", nil)

	if err := mc.Set("ttl", "v"); err != nil {
		t.Fatal(err)
	}
	if err := mc.Set("keep", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Do("EXPIRE", "ttl", "100"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Do("EXPIRE", "keep", "100"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Do("PERSIST", "keep"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "TTL replicated", func() bool {
		v, err := rc.Do("TTL", "ttl")
		if err != nil {
			return false
		}
		n, ok := v.(int64)
		return ok && n > 90 && n <= 100
	})
	waitFor(t, "PERSIST replicated", func() bool {
		v, err := rc.Do("TTL", "keep")
		return err == nil && v == int64(-1)
	})

	if _, err := mc.Do("FLUSHALL"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "FLUSHALL replicated", func() bool {
		v, err := rc.Do("DBSIZE")
		return err == nil && v == int64(0)
	})
	// The stream continues past the flush.
	if err := mc.Set("after", "x"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-flush stream", func() bool {
		v, err := rc.Get("after")
		return err == nil && v == "x"
	})
}

// TestFullSyncClearsReplicaStorage: a replica bootstrapping by snapshot
// must clear its private storage tier too — a key the master deleted
// while the replica was away must not resurrect from the replica's
// storage on a later cold read.
func TestFullSyncClearsReplicaStorage(t *testing.T) {
	ms, mc := startMaster(t, func(c *Config) { c.Replication.LogCap = 8 })
	for i := 0; i < 100; i++ {
		if err := mc.Set(fmt.Sprintf("key%03d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}

	stale := cache.NewMapStorage()
	stale.Put("ghost", []byte("stale-value")) // what an old life left behind
	_, rc := startReplicaOf(t, ms, "r1", func(c *Config) {
		c.TieredFactory = func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{Policy: cache.WriteThrough, Engine: eng, Storage: stale})
		}
	})

	waitFor(t, "full-sync bootstrap", func() bool {
		v, err := rc.Get("key099")
		return err == nil && v == "v"
	})
	if got := infoField(t, rc, "replication", "full_syncs_done"); got != "1" {
		t.Fatalf("full_syncs_done = %q", got)
	}
	// The ghost is gone from every tier: a cold read can't resurrect it.
	if _, err := rc.Get("ghost"); err != client.Nil {
		t.Fatalf("ghost key resurrected from replica storage: %v", err)
	}
	if _, ok, _ := stale.Get("ghost"); ok {
		t.Fatal("replica private storage kept the ghost key")
	}
}
