package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/cluster"
	"tierbase/internal/elastic"
	"tierbase/internal/engine"
	"tierbase/internal/metrics"
)

// Server is the TierBase RESP server. It is configured by Config (see
// config.go); replication/cluster behavior lives in replication.go.
type Server struct {
	opts   Config
	ln     net.Listener
	shards []*shard
	repl   *serverRepl // nil unless Config.Replication is enabled
	wg     sync.WaitGroup
	connWg sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]*conn
	closed bool
	stopCh chan struct{}
	over   overloadState

	// Latency is the server-side command latency histogram.
	Latency *metrics.Histogram
	// Throughput counts completed commands.
	Throughput *metrics.Meter
}

type shard struct {
	eng    *engine.Engine
	tiered *cache.Tiered // nil = cache-only direct engine
	pool   *elastic.Pool
}

// Start listens and serves until Close.
func Start(opts Config) (*Server, error) {
	opts.normalize()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	factory := opts.TieredFactory
	if factory == nil && opts.Replication.Enabled() {
		// Replication needs every mutation to cross the tiered store's
		// op-sink seam; a cache-only tiered wrapper provides it without a
		// storage tier.
		factory = func(eng *engine.Engine) (*cache.Tiered, error) {
			return cache.New(cache.Options{Policy: cache.CacheOnly, Engine: eng})
		}
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	s := &Server{
		opts:       opts,
		ln:         ln,
		conns:      make(map[net.Conn]*conn),
		stopCh:     make(chan struct{}),
		Latency:    metrics.NewHistogram(),
		Throughput: metrics.NewMeter(),
	}
	for i := 0; i < opts.Shards; i++ {
		eng := engine.New(opts.EngineOptions)
		sh := &shard{eng: eng, pool: elastic.NewPool(opts.Pool)}
		if factory != nil {
			tr, err := factory(eng)
			if err != nil {
				ln.Close()
				return nil, err
			}
			sh.tiered = tr
		}
		s.shards = append(s.shards, sh)
	}
	if opts.Replication.Enabled() {
		s.repl = newServerRepl(s, opts.Replication)
		for _, sh := range s.shards {
			sh.tiered.SetSink(s.repl)
		}
		s.repl.start()
	}
	if opts.Overload.HighWatermarkBytes > 0 {
		s.wg.Add(1)
		go s.watermarkLoop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) shardIndex(key []byte) int {
	if len(s.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(len(s.shards)))
}

func (s *Server) shardFor(key []byte) *shard {
	return s.shards[s.shardIndex(key)]
}

var errShuttingDown = errors.New("server shutting down")

// submitOne runs fn on shard si's pool, folding pool shutdown into an
// error. It is the shared single-shard-group path of mget/mset/del.
func (s *Server) submitOne(si int, fn func(sh *shard) error) error {
	sh := s.shards[si]
	var err error
	if perr := sh.pool.SubmitWait(func() { err = fn(sh) }); perr != nil {
		return errShuttingDown
	}
	return err
}

// --- connection handling ---

// conn is one client connection's state: the command reader (pooled parse
// buffers), the reply output buffer, and the reusable pool task. One
// command is in flight at a time, so every buffer here is single-owner at
// any instant: the conn goroutine owns them between commands, the shard
// worker owns out (via the task) during execution.
type conn struct {
	srv        *Server
	nc         net.Conn
	cr         *cmdReader
	out        []byte
	cmdScratch [16]byte
	task       connTask
	// hijack, when set by a command (SYNC), takes over the connection
	// after the current reply flushes: serveConn flushes c.out, invokes
	// hijack on the connection goroutine, and returns when it does.
	hijack func()
	// hijacked marks the connection as handed to a replication session.
	// Graceful drain and the overload deadlines skip hijacked
	// connections: a replication session owns its socket and manages its
	// own deadlines and laggard shedding (see serveReplica).
	hijacked atomic.Bool
}

const (
	// flushThreshold forces a socket write mid-pipeline once this much
	// reply data has accumulated.
	flushThreshold = 64 << 10
	// maxRetainedOut caps the reply buffer kept across commands.
	maxRetainedOut = 1 << 20
)

// connTask is the connection's reusable elastic.Task: one command
// execution on a shard worker. Reusing one task object (and its
// 1-buffered done channel) keeps the submit path allocation-free. The
// conn goroutine blocks on done until the worker finishes, so the fields
// — and the parse buffers the args alias — are never reused concurrently.
type connTask struct {
	c    *conn
	sh   *shard
	cmd  string
	args [][]byte
	done chan struct{}
}

// Run executes the command on the shard worker, appending the reply to
// the connection's output buffer.
func (t *connTask) Run() {
	t.c.out = execute(t.sh, t.cmd, t.args, t.c.out)
	t.done <- struct{}{}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	// Transient accept failures (EMFILE under a connection storm, a
	// half-open socket reset before accept) must not kill the listener:
	// back off with jitter and retry. Only a closed listener (Close or
	// Shutdown) exits the loop.
	bo := &cluster.Backoff{Base: 5 * time.Millisecond, Max: time.Second}
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-s.stopCh:
				return
			case <-time.After(bo.Next()):
			}
			continue
		}
		bo.Reset()
		if s.opts.WrapConn != nil {
			nc = s.opts.WrapConn(nc)
		}
		c := &conn{srv: s, nc: nc, cr: newCmdReader(nc)}
		c.task.c = c
		c.task.done = make(chan struct{}, 1)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		if max := s.opts.Overload.MaxConns; max > 0 && len(s.conns) >= max {
			// Admission control: refuse before committing a goroutine or
			// parse arena to the connection. The rejection reply is
			// best-effort on a goroutine of its own so a non-draining
			// storm client can't stall the accept loop.
			s.mu.Unlock()
			s.over.maxConnRejects.Add(1)
			go rejectMaxConn(nc)
			continue
		}
		s.conns[nc] = c
		s.mu.Unlock()
		s.connWg.Add(1)
		go s.serveConn(c)
	}
}

// rejectMaxConn answers an over-cap connection with the typed -MAXCONN
// error and closes it. Best-effort: the write is bounded so a client
// that never reads can't pin the goroutine.
func rejectMaxConn(nc net.Conn) {
	nc.SetWriteDeadline(time.Now().Add(time.Second))
	nc.Write([]byte(maxConnReply))
	nc.Close()
}

func (s *Server) serveConn(c *conn) {
	nc := c.nc
	defer s.connWg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
	}()
	cfg := &s.opts.Overload
	for {
		if cfg.ReadTimeout > 0 && !c.hijacked.Load() {
			nc.SetReadDeadline(time.Now().Add(cfg.ReadTimeout))
		}
		args, err := c.cr.ReadCommand()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.over.idleCloses.Add(1)
			}
			return
		}
		start := time.Now()
		s.dispatch(c, args)
		s.Latency.RecordDuration(time.Since(start))
		s.Throughput.Mark(1)
		if c.hijack != nil {
			// A command (SYNC) is taking over the connection: flush any
			// pending replies, then hand the socket to the hijacker. It
			// runs on this goroutine; when it returns the connection dies.
			// The session sets its own deadlines, so clear ours first.
			c.hijacked.Store(true)
			nc.SetDeadline(time.Time{})
			if len(c.out) > 0 {
				if _, err := c.nc.Write(c.out); err != nil {
					return
				}
				c.out = nil
			}
			c.hijack()
			return
		}
		// Slow-client shedding: a client that pipelines faster than it
		// drains replies grows c.out without bound (the flush below only
		// runs a bounded write). Cut it off at the output cap.
		s.over.slowestOut.Observe(int64(len(c.out)))
		if outCap := cfg.MaxOutputBytes; outCap > 0 && len(c.out) > outCap {
			s.over.shedConns.Add(1)
			return
		}
		// Write when no more pipelined commands are buffered (one syscall
		// per pipeline window), or when the window's replies grow large.
		if c.cr.Buffered() == 0 || len(c.out) >= flushThreshold {
			if cfg.WriteTimeout > 0 {
				nc.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
			}
			if _, err := c.nc.Write(c.out); err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					s.over.shedConns.Add(1)
				}
				return
			}
			if cfg.WriteTimeout > 0 {
				nc.SetWriteDeadline(time.Time{})
			}
			if cap(c.out) > maxRetainedOut {
				c.out = nil
			} else {
				c.out = c.out[:0]
			}
		}
	}
}

// submit runs one command on sh's pool through the connection's reusable
// task and waits for completion.
func (s *Server) submit(c *conn, sh *shard, cmd string, args [][]byte) {
	t := &c.task
	t.sh, t.cmd, t.args = sh, cmd, args
	if err := sh.pool.SubmitTask(t); err != nil {
		c.out = appendError(c.out, "server shutting down")
		return
	}
	<-t.done
	t.args = nil
}

// dispatch routes one command, appending its reply to c.out. Replication
// (when enabled) intercepts first: replication commands, role-aware write
// rejection, and the semi-sync gate all live in the repl layer; anything
// it declines falls through to plain execution.
func (s *Server) dispatch(c *conn, args [][]byte) {
	if len(args) == 0 {
		c.out = appendError(c.out, "empty command")
		return
	}
	cmd := canonicalCommand(args[0], &c.cmdScratch)
	// Watermark gate: above the high watermark writes fail fast with the
	// typed retryable -OVERLOADED while reads keep serving. Replication
	// is exempt by construction — SYNC/REPLICAOF/CLUSTER are not write
	// commands and the replica apply path doesn't pass through dispatch.
	if isWriteCommand(cmd) && s.rejectWrites() {
		s.over.rejectedWrites.Add(1)
		c.out = appendRawError(c.out, overloadedReply)
		return
	}
	if s.repl != nil && s.repl.intercept(c, cmd, args) {
		return
	}
	s.dispatchCmd(c, cmd, args)
}

// dispatchCmd executes one command with no replication awareness.
// Server-level commands run inline on the connection goroutine; per-key
// commands run on the owning shard's pool; multi-key commands fan out
// per shard.
func (s *Server) dispatchCmd(c *conn, cmd string, args [][]byte) {
	switch cmd {
	case "PING":
		c.out = appendSimple(c.out, "PONG")
		return
	case "ECHO":
		if len(args) != 2 {
			c.out = appendError(c.out, "wrong number of arguments for 'echo'")
			return
		}
		c.out = appendBulk(c.out, args[1])
		return
	case "DBSIZE":
		var n int64
		for _, sh := range s.shards {
			n += int64(sh.eng.Len())
		}
		c.out = appendInt(c.out, n)
		return
	case "FLUSHALL":
		// Through the tiered store where there is one: clearing only the
		// cache tier would let flushed keys resurrect from storage on
		// their next miss (and the clear must replicate).
		for _, sh := range s.shards {
			if sh.tiered != nil {
				if err := sh.tiered.FlushAll(); err != nil {
					c.out = appendError(c.out, err.Error())
					return
				}
			} else {
				sh.eng.FlushAll()
			}
		}
		c.out = appendSimple(c.out, "OK")
		return
	case "INFO":
		if len(args) > 2 {
			c.out = appendError(c.out, "wrong number of arguments for 'info'")
			return
		}
		section := ""
		if len(args) == 2 {
			section = strings.ToLower(string(args[1]))
		}
		c.out = appendBulkString(c.out, s.info(section))
		return
	case "MGET":
		if len(args) < 2 {
			c.out = appendError(c.out, "wrong number of arguments for 'mget'")
			return
		}
		if len(args) == 2 {
			// Single-key MGET (the client's GET vehicle): no fan-out, no
			// per-key string bookkeeping — straight to the shard pool.
			s.submit(c, s.shardFor(args[1]), cmd, args)
			return
		}
		s.mget(c, args[1:])
		return
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			c.out = appendError(c.out, "wrong number of arguments for 'mset'")
			return
		}
		if len(args) == 3 {
			// Single pair: identical to SET (both reply +OK).
			s.submit(c, s.shardFor(args[1]), "SET", args)
			return
		}
		s.mset(c, args[1:])
		return
	case "DEL", "UNLINK":
		if len(args) < 2 {
			c.out = appendError(c.out, "wrong number of arguments for 'del'")
			return
		}
		if len(args) == 2 {
			s.submit(c, s.shardFor(args[1]), "DEL", args)
			return
		}
		s.del(c, args[1:])
		return
	case "":
		c.out = append(c.out, "-ERR unknown command '"...)
		c.out = append(c.out, args[0]...)
		c.out = append(c.out, "'\r\n"...)
		return
	}
	if len(args) < 2 {
		c.out = appendError(c.out, "wrong number of arguments")
		return
	}
	s.submit(c, s.shardFor(args[1]), cmd, args)
}

// mget serves multi-key MGET: keys group by shard, each shard runs one
// batch get on its own pool (in parallel across shards), replies
// reassemble in request order — the multi-key fan-out the paper's client
// batching relies on.
func (s *Server) mget(c *conn, keyArgs [][]byte) {
	keys := make([]string, len(keyArgs))
	groups := make(map[int][]int)
	for i, k := range keyArgs {
		keys[i] = string(k)
		si := s.shardIndex(k)
		groups[si] = append(groups[si], i)
	}
	vals := make([][]byte, len(keys))
	if len(groups) == 1 {
		// All keys on one shard: skip the fan-out scaffolding.
		for si := range groups {
			var got map[string][]byte
			if err := s.submitOne(si, func(sh *shard) (err error) {
				got, err = sh.strMGet(keys)
				return err
			}); err != nil {
				c.out = appendError(c.out, err.Error())
				return
			}
			for i, k := range keys {
				vals[i] = got[k]
			}
		}
		c.out = appendBulkArray(c.out, vals)
		return
	}
	errs := make([]error, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, idxs := range groups {
		sh := s.shards[si]
		wg.Add(1)
		go func(sh *shard, idxs []int) {
			defer wg.Done()
			sub := make([]string, len(idxs))
			for j, i := range idxs {
				sub[j] = keys[i]
			}
			var got map[string][]byte
			var err error
			perr := sh.pool.SubmitWait(func() { got, err = sh.strMGet(sub) })
			mu.Lock()
			defer mu.Unlock()
			if perr != nil {
				errs = append(errs, perr)
				return
			}
			if err != nil {
				errs = append(errs, err)
				return
			}
			for _, i := range idxs {
				vals[i] = got[keys[i]]
			}
		}(sh, idxs)
	}
	wg.Wait()
	if len(errs) > 0 {
		c.out = appendError(c.out, errs[0].Error())
		return
	}
	c.out = appendBulkArray(c.out, vals)
}

// appendBulkArray renders values (nil = absent) as an array of bulks.
func appendBulkArray(out []byte, vals [][]byte) []byte {
	out = appendArrayLen(out, len(vals))
	for _, v := range vals {
		out = appendBulk(out, v)
	}
	return out
}

// del serves multi-key DEL/UNLINK: keys group by shard, each shard runs
// one tiered BatchDelete on its own pool (in parallel across shards), and
// the reply is the summed count of keys that existed in any tier.
func (s *Server) del(c *conn, keyArgs [][]byte) {
	groups := make(map[int][]string)
	for _, k := range keyArgs {
		si := s.shardIndex(k)
		groups[si] = append(groups[si], string(k))
	}
	if len(groups) == 1 {
		for si, keys := range groups {
			var n int64
			if err := s.submitOne(si, func(sh *shard) (err error) {
				n, err = sh.strBatchDel(keys)
				return err
			}); err != nil {
				c.out = appendError(c.out, err.Error())
				return
			}
			c.out = appendInt(c.out, n)
		}
		return
	}
	var total int64
	errs := make([]error, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, keys := range groups {
		sh := s.shards[si]
		wg.Add(1)
		go func(sh *shard, keys []string) {
			defer wg.Done()
			var n int64
			var err error
			perr := sh.pool.SubmitWait(func() { n, err = sh.strBatchDel(keys) })
			mu.Lock()
			defer mu.Unlock()
			if perr != nil {
				errs = append(errs, perr)
				return
			}
			if err != nil {
				errs = append(errs, err)
				return
			}
			total += n
		}(sh, keys)
	}
	wg.Wait()
	if len(errs) > 0 {
		c.out = appendError(c.out, errs[0].Error())
		return
	}
	c.out = appendInt(c.out, total)
}

// mset serves multi-pair MSET: pairs group by shard, each shard applies
// one batch put on its own pool, in parallel across shards.
func (s *Server) mset(c *conn, kvArgs [][]byte) {
	groups := make(map[int]map[string][]byte)
	for i := 0; i+1 < len(kvArgs); i += 2 {
		si := s.shardIndex(kvArgs[i])
		if groups[si] == nil {
			groups[si] = make(map[string][]byte)
		}
		// Copy out of the parse arena; keep empty values non-nil (nil
		// means delete in BatchPut, and MSET k "" must store "").
		val := make([]byte, len(kvArgs[i+1]))
		copy(val, kvArgs[i+1])
		groups[si][string(kvArgs[i])] = val
	}
	if len(groups) == 1 {
		for si, entries := range groups {
			if err := s.submitOne(si, func(sh *shard) error {
				return sh.strMSet(entries)
			}); err != nil {
				c.out = appendError(c.out, err.Error())
				return
			}
		}
		c.out = appendSimple(c.out, "OK")
		return
	}
	errs := make([]error, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, entries := range groups {
		sh := s.shards[si]
		wg.Add(1)
		go func(sh *shard, entries map[string][]byte) {
			defer wg.Done()
			var err error
			perr := sh.pool.SubmitWait(func() { err = sh.strMSet(entries) })
			mu.Lock()
			defer mu.Unlock()
			if perr != nil {
				errs = append(errs, perr)
			} else if err != nil {
				errs = append(errs, err)
			}
		}(sh, entries)
	}
	wg.Wait()
	if len(errs) > 0 {
		c.out = appendError(c.out, errs[0].Error())
		return
	}
	c.out = appendSimple(c.out, "OK")
}

// info renders INFO output. section filters to one section ("server",
// "writepath", "storage", "tiering", "health", "overload"); empty
// renders everything.
func (s *Server) info(section string) string {
	var b strings.Builder
	if section == "" || section == "server" {
		fmt.Fprintf(&b, "# Server\r\nshards:%d\r\n", len(s.shards))
		var keys int
		var mem int64
		for i, sh := range s.shards {
			st := sh.eng.Stats()
			keys += st.Keys
			mem += st.MemBytes
			ps := sh.pool.Stats()
			fmt.Fprintf(&b, "shard%d_workers:%d\r\n", i, ps.Workers)
			fmt.Fprintf(&b, "shard%d_max_workers:%d\r\n", i, ps.MaxWorkers)
			fmt.Fprintf(&b, "shard%d_mode:%s\r\n", i, sh.pool.Mode())
			fmt.Fprintf(&b, "shard%d_boosts:%d\r\n", i, ps.Boosts)
			fmt.Fprintf(&b, "shard%d_shrinks:%d\r\n", i, ps.Shrinks)
			fmt.Fprintf(&b, "shard%d_queue_depth:%d\r\n", i, ps.Backlog)
			fmt.Fprintf(&b, "shard%d_tasks:%d\r\n", i, ps.Executed)
			fmt.Fprintf(&b, "shard%d_submit_rate:%.1f\r\n", i, ps.SubmitRate)
		}
		fmt.Fprintf(&b, "keys:%d\r\nmem_bytes:%d\r\n", keys, mem)
		fmt.Fprintf(&b, "p99_ns:%d\r\n", s.Latency.P99())
	}
	if (section == "" || section == "replication") && s.repl != nil {
		s.repl.info(&b)
	}
	if section == "" || section == "writepath" {
		s.writePathInfo(&b)
	}
	if section == "" || section == "storage" {
		s.storageInfo(&b)
	}
	if section == "" || section == "tiering" {
		s.tieringInfo(&b)
	}
	if section == "" || section == "health" {
		s.healthInfo(&b)
	}
	if section == "" || section == "overload" {
		s.overloadInfo(&b)
	}
	return b.String()
}

// healthInfo renders the storage-tier health section: aggregate
// error/retry/degraded counters across shards plus the per-shard
// degraded flags — the first place to look when a chaos drill (or a
// real disk) starts failing storage calls.
func (s *Server) healthInfo(b *strings.Builder) {
	fmt.Fprintf(b, "# Health\r\n")
	var degraded int
	var errs, retries, degOps, transitions int64
	stats := make([]cache.HealthStats, len(s.shards))
	for i, sh := range s.shards {
		if sh.tiered == nil {
			continue
		}
		st := sh.tiered.Health()
		stats[i] = st
		if st.Degraded {
			degraded++
		}
		errs += st.StorageErrors
		retries += st.StorageRetries
		degOps += st.DegradedOps
		transitions += st.DegradedTransit
	}
	fmt.Fprintf(b, "degraded_shards:%d\r\n", degraded)
	fmt.Fprintf(b, "storage_errors:%d\r\n", errs)
	fmt.Fprintf(b, "storage_retries:%d\r\n", retries)
	fmt.Fprintf(b, "degraded_ops:%d\r\n", degOps)
	fmt.Fprintf(b, "degraded_transitions:%d\r\n", transitions)
	for i, st := range stats {
		fmt.Fprintf(b, "shard%d_degraded:%t\r\n", i, st.Degraded)
		fmt.Fprintf(b, "shard%d_storage_errors:%d\r\n", i, st.StorageErrors)
		fmt.Fprintf(b, "shard%d_consecutive_fails:%d\r\n", i, st.ConsecutiveFails)
	}
}

// tieringInfo renders the cache-tiering section: per-shard adaptive
// state (live total budget, rebalance counters, window hit rate) plus
// the per-stripe budget/resident/hit-rate/steal distributions the
// rebalancer is acting on. CSV-per-stripe, like the dirty-stripe lines.
func (s *Server) tieringInfo(b *strings.Builder) {
	fmt.Fprintf(b, "# Tiering\r\n")
	tiered := 0
	for _, sh := range s.shards {
		if sh.tiered != nil {
			tiered++
		}
	}
	fmt.Fprintf(b, "tiered_shards:%d\r\n", tiered)
	if tiered == 0 {
		return
	}
	for i, sh := range s.shards {
		if sh.tiered == nil {
			continue
		}
		ts := sh.tiered.TieringStats()
		fmt.Fprintf(b, "shard%d_adaptive:%d\r\n", i, boolToInt(ts.Adaptive))
		fmt.Fprintf(b, "shard%d_capacity_bytes:%d\r\n", i, ts.CapacityBytes)
		fmt.Fprintf(b, "shard%d_stripe_floor_bytes:%d\r\n", i, ts.FloorBytes)
		fmt.Fprintf(b, "shard%d_rebalance_step_bytes:%d\r\n", i, ts.StepBytes)
		fmt.Fprintf(b, "shard%d_rebalances:%d\r\n", i, ts.Rebalances)
		fmt.Fprintf(b, "shard%d_rollbacks:%d\r\n", i, ts.Rollbacks)
		fmt.Fprintf(b, "shard%d_rebalanced_bytes:%d\r\n", i, ts.BytesMoved)
		fmt.Fprintf(b, "shard%d_capacity_grows:%d\r\n", i, ts.Grows)
		fmt.Fprintf(b, "shard%d_capacity_shrinks:%d\r\n", i, ts.Shrinks)
		fmt.Fprintf(b, "shard%d_window_hit_rate:%.4f\r\n", i, ts.WindowHitRate)
		fmt.Fprintf(b, "shard%d_miss_ratio:%.4f\r\n", i, sh.tiered.MissRatio())
		n := len(ts.Stripes)
		budgets := make([]string, n)
		resident := make([]string, n)
		rates := make([]string, n)
		stolen := make([]string, n)
		granted := make([]string, n)
		for j, st := range ts.Stripes {
			budgets[j] = strconv.FormatInt(st.BudgetBytes, 10)
			resident[j] = strconv.FormatInt(st.ResidentBytes, 10)
			rates[j] = strconv.FormatFloat(st.HitRate, 'f', 3, 64)
			stolen[j] = strconv.FormatInt(st.StolenBytes, 10)
			granted[j] = strconv.FormatInt(st.GrantedBytes, 10)
		}
		fmt.Fprintf(b, "shard%d_stripe_budget_bytes:%s\r\n", i, strings.Join(budgets, ","))
		fmt.Fprintf(b, "shard%d_stripe_resident_bytes:%s\r\n", i, strings.Join(resident, ","))
		fmt.Fprintf(b, "shard%d_stripe_hit_rate:%s\r\n", i, strings.Join(rates, ","))
		fmt.Fprintf(b, "shard%d_stripe_stolen_bytes:%s\r\n", i, strings.Join(stolen, ","))
		fmt.Fprintf(b, "shard%d_stripe_granted_bytes:%s\r\n", i, strings.Join(granted, ","))
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// storageInfo renders the storage-tier section: per-shard LSM counters —
// flush/compaction activity, the immutable-memtable backlog (a growing
// number means the background flusher is falling behind writers), level
// shape and write volume.
func (s *Server) storageInfo(b *strings.Builder) {
	fmt.Fprintf(b, "# Storage\r\n")
	if s.opts.StorageStats == nil {
		fmt.Fprintf(b, "storage_shards:0\r\n")
		return
	}
	stats := s.opts.StorageStats()
	fmt.Fprintf(b, "storage_shards:%d\r\n", len(stats))
	for i, st := range stats {
		fmt.Fprintf(b, "shard%d_flushes:%d\r\n", i, st.Flushes)
		fmt.Fprintf(b, "shard%d_compactions:%d\r\n", i, st.Compactions)
		fmt.Fprintf(b, "shard%d_immutables:%d\r\n", i, st.Immutables)
		fmt.Fprintf(b, "shard%d_memtable_bytes:%d\r\n", i, st.MemtableBytes+st.ImmutableBytes)
		fmt.Fprintf(b, "shard%d_write_bytes:%d\r\n", i, st.WriteBytes)
		fmt.Fprintf(b, "shard%d_multigets:%d\r\n", i, st.MultiGets)
		fmt.Fprintf(b, "shard%d_bad_blocks:%d\r\n", i, st.BadBlocks)
		fmt.Fprintf(b, "shard%d_disk_bytes:%d\r\n", i, st.DiskBytes)
		files := make([]string, len(st.LevelFiles))
		for l, n := range st.LevelFiles {
			files[l] = strconv.Itoa(n)
		}
		fmt.Fprintf(b, "shard%d_level_files:%s\r\n", i, strings.Join(files, ","))
		bytesParts := make([]string, len(st.LevelBytes))
		for l, n := range st.LevelBytes {
			bytesParts[l] = strconv.FormatInt(n, 10)
		}
		fmt.Fprintf(b, "shard%d_level_bytes:%s\r\n", i, strings.Join(bytesParts, ","))
	}
}

// writePathInfo renders the write-path section: aggregate write-through
// coalescing and write-back flush/backpressure counters, plus each
// shard's per-stripe dirty distribution (the write path stripes along
// the engine's lock stripes).
func (s *Server) writePathInfo(b *strings.Builder) {
	fmt.Fprintf(b, "# WritePath\r\n")
	var coalesced, rounds, flushed, waits int64
	var dirty, stripes int
	tiered := 0
	for _, sh := range s.shards {
		if sh.tiered == nil {
			continue
		}
		tiered++
		st := sh.tiered.Stats()
		coalesced += st.Coalesced
		rounds += st.Batches
		flushed += st.Flushed
		waits += st.BackpressureWaits
		dirty += st.Dirty
		stripes += sh.tiered.WriteStripes()
	}
	fmt.Fprintf(b, "tiered_shards:%d\r\n", tiered)
	if tiered == 0 {
		return // cache-only deployment: no write path to report
	}
	fmt.Fprintf(b, "write_stripes:%d\r\n", stripes)
	fmt.Fprintf(b, "coalesced_writes:%d\r\n", coalesced)
	fmt.Fprintf(b, "flush_rounds:%d\r\n", rounds)
	fmt.Fprintf(b, "flushed_entries:%d\r\n", flushed)
	fmt.Fprintf(b, "backpressure_waits:%d\r\n", waits)
	fmt.Fprintf(b, "dirty_entries:%d\r\n", dirty)
	for i, sh := range s.shards {
		if sh.tiered == nil {
			continue
		}
		fmt.Fprintf(b, "shard%d_policy:%s\r\n", i, sh.tiered.Policy())
		ds := sh.tiered.DirtyStripes()
		parts := make([]string, len(ds))
		for j, n := range ds {
			parts[j] = strconv.Itoa(n)
		}
		fmt.Fprintf(b, "shard%d_dirty_stripes:%s\r\n", i, strings.Join(parts, ","))
	}
}

// Shards exposes shard engines for measurement (benches).
func (s *Server) Shards() []*engine.Engine {
	out := make([]*engine.Engine, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.eng
	}
	return out
}

// Pools exposes shard pools (elastic threading observation).
func (s *Server) Pools() []*elastic.Pool {
	out := make([]*elastic.Pool, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.pool
	}
	return out
}

// beginClose transitions the server into the closed state exactly once.
// Reports false when another Close/Shutdown already won.
func (s *Server) beginClose() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	return true
}

// Close stops accepting, closes connections, and shuts down shards.
// Connections are cut immediately; use Shutdown for a graceful drain.
func (s *Server) Close() error {
	if !s.beginClose() {
		return nil
	}
	close(s.stopCh)
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.finishClose()
	return err
}

// Shutdown drains the server gracefully: deregister from the
// coordinator (so routing tables drop this node before it goes dark),
// stop accepting, let in-flight client commands finish and their
// replies flush (bounded by Overload.DrainTimeout), then close — which
// flushes write-back dirty state through tiered.Close. An acked write
// is therefore never lost to a drain: it either flushed to storage or
// replicated before the socket closed.
func (s *Server) Shutdown() error {
	if !s.beginClose() {
		return nil
	}
	if s.repl != nil {
		s.repl.deregister()
	}
	close(s.stopCh)
	err := s.ln.Close()
	deadline := time.Now().Add(s.opts.Overload.DrainTimeout)
	for {
		// Kick idle connections out of ReadCommand by expiring their read
		// deadline: a conn blocked between commands fails its next read
		// and exits; a conn mid-pipeline finishes the buffered window
		// (already-parsed commands execute and flush) before its next
		// socket read fails. Re-expire each pass — the serve loop re-arms
		// deadlines when ReadTimeout is configured.
		s.mu.Lock()
		n := 0
		for _, c := range s.conns {
			if c.hijacked.Load() {
				continue // replication sessions close with repl below
			}
			c.nc.SetReadDeadline(time.Now())
			n++
		}
		s.mu.Unlock()
		if n == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Force whatever remains (drain timeout, or hijacked sessions whose
	// shutdown repl.close handles inside finishClose).
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.finishClose()
	return err
}

// finishClose joins the background goroutines and shuts the shards
// down. The tiered Close flushes all write-back dirty state to storage
// before returning.
func (s *Server) finishClose() {
	if s.repl != nil {
		// Stop replication before joining connection goroutines: hijacked
		// SYNC connections block in OpLog streams, which only close here
		// unblocks.
		s.repl.close()
	}
	s.wg.Wait()
	s.connWg.Wait()
	for _, sh := range s.shards {
		sh.pool.Stop()
		if sh.tiered != nil {
			sh.tiered.Close()
		}
	}
}

// --- command execution on a shard ---

// strStore abstracts string-command storage: tiered when configured,
// direct engine otherwise.
func (sh *shard) strGet(key string) ([]byte, error) {
	if sh.tiered != nil {
		return sh.tiered.Get(key)
	}
	return sh.eng.Get(key)
}

func (sh *shard) strSet(key string, val []byte) error {
	if sh.tiered != nil {
		return sh.tiered.Set(key, val)
	}
	return sh.eng.Set(key, val)
}

// strBatchDel removes keys on this shard in one tiered pass, returning
// how many existed in any tier (cache, dirty state, or storage).
func (sh *shard) strBatchDel(keys []string) (int64, error) {
	if sh.tiered != nil {
		n, err := sh.tiered.BatchDelete(keys)
		return int64(n), err
	}
	return int64(sh.eng.BatchDel(keys)), nil
}

// strMGet serves a batch read on this shard; absent keys map to nil.
func (sh *shard) strMGet(keys []string) (map[string][]byte, error) {
	if sh.tiered != nil {
		return sh.tiered.BatchGet(keys)
	}
	vals, err := sh.eng.MGet(keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for i, k := range keys {
		out[k] = vals[i]
	}
	return out, nil
}

// strMSet serves a batch write on this shard.
func (sh *shard) strMSet(entries map[string][]byte) error {
	if sh.tiered != nil {
		return sh.tiered.BatchPut(entries)
	}
	kvs := make([]engine.KV, 0, len(entries))
	for k, v := range entries {
		kvs = append(kvs, engine.KV{Key: k, Val: v})
	}
	return sh.eng.MSet(kvs)
}

// warm faults a tiered key into the engine before an engine-level op, so
// commands that read or mutate engine state compose with values that were
// evicted to storage or predate a restart.
func (sh *shard) warm(key string) {
	if sh.tiered != nil {
		sh.tiered.Warm(key)
	}
}

// rmw runs op — an engine mutation plus its storage propagation — with
// cross-tier discipline on tiered shards: the key is warmed first, then
// op runs under the key's RMW stripe lock so the propagation enqueues in
// engine order (see cache/rmw.go). Cache-only shards run op directly.
func (sh *shard) rmw(key string, op func() error) error {
	if sh.tiered == nil {
		return op()
	}
	sh.tiered.Warm(key)
	return sh.tiered.Locked(key, op)
}

// propagateString pushes an engine-applied string outcome to storage.
func (sh *shard) propagateString(key string, val []byte) error {
	if sh.tiered == nil {
		return nil
	}
	return sh.tiered.PropagateString(key, val)
}

// propagateCollection pushes key's current collection state — or its
// deletion, when the op emptied it — to the storage tier.
func (sh *shard) propagateCollection(key string) error {
	if sh.tiered == nil {
		return nil
	}
	if blob, ok := sh.eng.EncodeCollection(key); ok {
		return sh.tiered.PropagateEncoded(key, blob)
	}
	return sh.tiered.PropagateDelete(key)
}

func notFoundish(err error) bool {
	return errors.Is(err, engine.ErrNotFound) || errors.Is(err, cache.ErrNotFound)
}

// execute runs one per-key command on its shard, appending the RESP reply
// to out. args alias the connection's parse buffers: safe to read for the
// duration of the call (execution is synchronous), copied by any layer
// that retains them.
func execute(sh *shard, cmd string, args [][]byte, out []byte) []byte {
	eng := sh.eng
	key := string(args[1])
	switch cmd {
	case "SET":
		if len(args) != 3 {
			return appendError(out, "wrong number of arguments for 'set'")
		}
		if err := sh.strSet(key, args[2]); err != nil {
			return appendError(out, err.Error())
		}
		return appendSimple(out, "OK")
	case "GET":
		v, err := sh.strGet(key)
		if notFoundish(err) {
			return appendBulk(out, nil)
		}
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendBulk(out, v)
	case "MGET":
		// Single-key fast path (dispatch fans multi-key MGET out itself):
		// same element semantics as the batch path — absent and
		// wrong-typed keys report nil.
		v, err := sh.strGet(key)
		if err != nil {
			if !notFoundish(err) && !errors.Is(err, engine.ErrWrongType) {
				return appendError(out, err.Error())
			}
			v = nil
		}
		out = appendArrayLen(out, 1)
		return appendBulk(out, v)
	case "DEL":
		// Single-key fast path; multi-key DEL fans out in dispatch.
		n, err := sh.strBatchDel([]string{key})
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, n)
	case "EXISTS":
		sh.warm(key)
		if eng.Exists(key) {
			return appendInt(out, 1)
		}
		return appendInt(out, 0)
	case "TYPE":
		sh.warm(key)
		return appendSimple(out, eng.Type(key).String())
	case "SETNX":
		if len(args) != 3 {
			return appendError(out, "wrong number of arguments for 'setnx'")
		}
		var created bool
		err := sh.rmw(key, func() error {
			var err error
			created, err = eng.SetNX(key, args[2])
			if err != nil || !created {
				return err
			}
			return sh.propagateString(key, args[2])
		})
		if err != nil {
			return appendError(out, err.Error())
		}
		if created {
			return appendInt(out, 1)
		}
		return appendInt(out, 0)
	case "INCR", "DECR", "INCRBY", "DECRBY":
		delta := int64(1)
		if cmd == "INCRBY" || cmd == "DECRBY" {
			if len(args) != 3 {
				return appendError(out, "wrong number of arguments")
			}
			d, err := strconv.ParseInt(string(args[2]), 10, 64)
			if err != nil {
				return appendError(out, "value is not an integer or out of range")
			}
			delta = d
		}
		if cmd == "DECR" || cmd == "DECRBY" {
			delta = -delta
		}
		var v int64
		err := sh.rmw(key, func() error {
			var err error
			v, err = eng.IncrBy(key, delta)
			if err != nil {
				return err
			}
			return sh.propagateString(key, strconv.AppendInt(nil, v, 10))
		})
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, v)
	case "CAS":
		// CAS key oldval newval — the paper's compare-and-set extension.
		if len(args) != 4 {
			return appendError(out, "wrong number of arguments for 'cas'")
		}
		err := sh.rmw(key, func() error {
			if err := eng.CompareAndSet(key, args[2], args[3]); err != nil {
				return err
			}
			return sh.propagateString(key, args[3])
		})
		if err == engine.ErrCASMismatch {
			return appendInt(out, 0)
		}
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, 1)
	case "EXPIRE":
		if len(args) != 3 {
			return appendError(out, "wrong number of arguments for 'expire'")
		}
		secs, err := strconv.ParseInt(string(args[2]), 10, 64)
		if err != nil {
			return appendError(out, "value is not an integer or out of range")
		}
		sh.warm(key)
		if sh.tiered != nil {
			// Through the tiered store: the TTL replicates as an absolute
			// deadline and expiry later deletes through to storage.
			if sh.tiered.ExpireAt(key, time.Now().Add(time.Duration(secs)*time.Second).UnixNano()) {
				return appendInt(out, 1)
			}
			return appendInt(out, 0)
		}
		if eng.Expire(key, time.Duration(secs)*time.Second) {
			return appendInt(out, 1)
		}
		return appendInt(out, 0)
	case "TTL":
		sh.warm(key)
		d, ok := eng.TTL(key)
		if !ok {
			if eng.Exists(key) {
				return appendInt(out, -1)
			}
			return appendInt(out, -2)
		}
		return appendInt(out, int64(d/time.Second))
	case "PERSIST":
		sh.warm(key)
		if sh.tiered != nil {
			if sh.tiered.Persist(key) {
				return appendInt(out, 1)
			}
			return appendInt(out, 0)
		}
		if eng.Persist(key) {
			return appendInt(out, 1)
		}
		return appendInt(out, 0)
	case "LPUSH", "RPUSH":
		if len(args) < 3 {
			return appendError(out, "wrong number of arguments")
		}
		vals := args[2:]
		var n int
		err := sh.rmw(key, func() error {
			var err error
			if cmd == "LPUSH" {
				n, err = eng.LPush(key, vals...)
			} else {
				n, err = eng.RPush(key, vals...)
			}
			if err != nil {
				return err
			}
			return sh.propagateCollection(key)
		})
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, int64(n))
	case "LPOP", "RPOP":
		var v []byte
		err := sh.rmw(key, func() error {
			var err error
			if cmd == "LPOP" {
				v, err = eng.LPop(key)
			} else {
				v, err = eng.RPop(key)
			}
			if err != nil {
				return err
			}
			return sh.propagateCollection(key)
		})
		if notFoundish(err) {
			return appendBulk(out, nil)
		}
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendBulk(out, v)
	case "LLEN":
		sh.warm(key)
		n, err := eng.LLen(key)
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, int64(n))
	case "LRANGE":
		if len(args) != 4 {
			return appendError(out, "wrong number of arguments for 'lrange'")
		}
		start, err1 := strconv.Atoi(string(args[2]))
		stop, err2 := strconv.Atoi(string(args[3]))
		if err1 != nil || err2 != nil {
			return appendError(out, "value is not an integer or out of range")
		}
		sh.warm(key)
		vals, err := eng.LRange(key, start, stop)
		if err != nil {
			return appendError(out, err.Error())
		}
		out = appendArrayLen(out, len(vals))
		for _, v := range vals {
			out = appendBulk(out, v)
		}
		return out
	case "SADD", "SREM":
		if len(args) < 3 {
			return appendError(out, "wrong number of arguments")
		}
		members := make([]string, len(args)-2)
		for i, a := range args[2:] {
			members[i] = string(a)
		}
		var n int
		err := sh.rmw(key, func() error {
			var err error
			if cmd == "SADD" {
				n, err = eng.SAdd(key, members...)
			} else {
				n, err = eng.SRem(key, members...)
			}
			if err != nil || n == 0 {
				return err // n == 0: nothing changed, skip the storage write
			}
			return sh.propagateCollection(key)
		})
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, int64(n))
	case "SISMEMBER":
		if len(args) != 3 {
			return appendError(out, "wrong number of arguments for 'sismember'")
		}
		sh.warm(key)
		ok, err := eng.SIsMember(key, string(args[2]))
		if err != nil {
			return appendError(out, err.Error())
		}
		if ok {
			return appendInt(out, 1)
		}
		return appendInt(out, 0)
	case "SCARD":
		sh.warm(key)
		n, err := eng.SCard(key)
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, int64(n))
	case "SMEMBERS":
		sh.warm(key)
		members, err := eng.SMembers(key)
		if err != nil {
			return appendError(out, err.Error())
		}
		out = appendArrayLen(out, len(members))
		for _, m := range members {
			out = appendBulkString(out, m)
		}
		return out
	case "ZADD":
		if len(args) != 4 {
			return appendError(out, "wrong number of arguments for 'zadd'")
		}
		score, err := strconv.ParseFloat(string(args[2]), 64)
		if err != nil {
			return appendError(out, "value is not a valid float")
		}
		member := string(args[3])
		var isNew bool
		rerr := sh.rmw(key, func() error {
			var err error
			isNew, err = eng.ZAdd(key, member, score)
			if err != nil {
				return err
			}
			// Propagate even when !isNew: the score may have changed.
			return sh.propagateCollection(key)
		})
		if rerr != nil {
			return appendError(out, rerr.Error())
		}
		if isNew {
			return appendInt(out, 1)
		}
		return appendInt(out, 0)
	case "ZSCORE":
		if len(args) != 3 {
			return appendError(out, "wrong number of arguments for 'zscore'")
		}
		sh.warm(key)
		sc, err := eng.ZScore(key, string(args[2]))
		if notFoundish(err) {
			return appendBulk(out, nil)
		}
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendBulkString(out, strconv.FormatFloat(sc, 'g', -1, 64))
	case "ZREM":
		if len(args) != 3 {
			return appendError(out, "wrong number of arguments for 'zrem'")
		}
		member := string(args[2])
		var removed bool
		err := sh.rmw(key, func() error {
			var err error
			removed, err = eng.ZRem(key, member)
			if err != nil || !removed {
				return err
			}
			return sh.propagateCollection(key)
		})
		if err != nil {
			return appendError(out, err.Error())
		}
		if removed {
			return appendInt(out, 1)
		}
		return appendInt(out, 0)
	case "ZCARD":
		sh.warm(key)
		n, err := eng.ZCard(key)
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, int64(n))
	case "ZRANGE":
		if len(args) < 4 {
			return appendError(out, "wrong number of arguments for 'zrange'")
		}
		start, err1 := strconv.Atoi(string(args[2]))
		stop, err2 := strconv.Atoi(string(args[3]))
		if err1 != nil || err2 != nil {
			return appendError(out, "value is not an integer or out of range")
		}
		withScores := len(args) == 5 && strings.EqualFold(string(args[4]), "WITHSCORES")
		sh.warm(key)
		members, err := eng.ZRange(key, start, stop)
		if err != nil {
			return appendError(out, err.Error())
		}
		n := len(members)
		if withScores {
			n *= 2
		}
		out = appendArrayLen(out, n)
		for _, m := range members {
			out = appendBulkString(out, m.Member)
			if withScores {
				out = appendBulkString(out, strconv.FormatFloat(m.Score, 'g', -1, 64))
			}
		}
		return out
	case "HSET":
		if len(args) != 4 {
			return appendError(out, "wrong number of arguments for 'hset'")
		}
		field := string(args[2])
		var isNew bool
		err := sh.rmw(key, func() error {
			var err error
			isNew, err = eng.HSet(key, field, args[3])
			if err != nil {
				return err
			}
			// Propagate even when !isNew: the field value changed.
			return sh.propagateCollection(key)
		})
		if err != nil {
			return appendError(out, err.Error())
		}
		if isNew {
			return appendInt(out, 1)
		}
		return appendInt(out, 0)
	case "HGET":
		if len(args) != 3 {
			return appendError(out, "wrong number of arguments for 'hget'")
		}
		sh.warm(key)
		v, err := eng.HGet(key, string(args[2]))
		if notFoundish(err) {
			return appendBulk(out, nil)
		}
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendBulk(out, v)
	case "HDEL":
		if len(args) < 3 {
			return appendError(out, "wrong number of arguments for 'hdel'")
		}
		fields := make([]string, len(args)-2)
		for i, a := range args[2:] {
			fields[i] = string(a)
		}
		var n int
		err := sh.rmw(key, func() error {
			var err error
			n, err = eng.HDel(key, fields...)
			if err != nil || n == 0 {
				return err // nothing removed: skip the storage write
			}
			return sh.propagateCollection(key)
		})
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, int64(n))
	case "HLEN":
		sh.warm(key)
		n, err := eng.HLen(key)
		if err != nil {
			return appendError(out, err.Error())
		}
		return appendInt(out, int64(n))
	case "HGETALL":
		sh.warm(key)
		fields, err := eng.HGetAll(key)
		if err != nil {
			return appendError(out, err.Error())
		}
		out = appendArrayLen(out, len(fields)*2)
		for _, f := range fields {
			out = appendBulkString(out, f.Field)
			out = appendBulk(out, f.Value)
		}
		return out
	default:
		return appendError(out, "unknown command")
	}
}
