package server

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/elastic"
	"tierbase/internal/engine"
	"tierbase/internal/lsm"
	"tierbase/internal/metrics"
)

// Options configures a Server.
type Options struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// Shards is the number of data nodes in this process (default 1).
	// Keys are hash-partitioned across shards; each shard has its own
	// engine and elastic worker pool, reproducing "one instance might
	// switch to multi-threaded mode while others remain in single-threaded
	// mode within the same container" (§4.4).
	Shards int
	// EngineOptions configures each shard's engine (compression, PMem...).
	EngineOptions engine.Options
	// TieredFactory, when set, builds the tiered store for each shard
	// (write-through/write-back against a storage tier). When nil, shards
	// run cache-only.
	TieredFactory func(eng *engine.Engine) (*cache.Tiered, error)
	// StorageStats, when set, reports the storage tier's per-shard LSM
	// stats for the INFO "storage" section. The deployment wires it (the
	// server doesn't own the LSM handles — the tiered store sees only the
	// Storage interface).
	StorageStats func() []lsm.Stats
	// Pool configures each shard's elastic pool.
	Pool elastic.PoolOptions
}

// Server is the TierBase RESP server.
type Server struct {
	opts   Options
	ln     net.Listener
	shards []*shard
	wg     sync.WaitGroup
	connWg sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// Latency is the server-side command latency histogram.
	Latency *metrics.Histogram
	// Throughput counts completed commands.
	Throughput *metrics.Meter
}

type shard struct {
	eng    *engine.Engine
	tiered *cache.Tiered // nil = cache-only direct engine
	pool   *elastic.Pool
}

// Start listens and serves until Close.
func Start(opts Options) (*Server, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	s := &Server{
		opts:       opts,
		ln:         ln,
		conns:      make(map[net.Conn]struct{}),
		Latency:    metrics.NewHistogram(),
		Throughput: metrics.NewMeter(),
	}
	for i := 0; i < opts.Shards; i++ {
		eng := engine.New(opts.EngineOptions)
		sh := &shard{eng: eng, pool: elastic.NewPool(opts.Pool)}
		if opts.TieredFactory != nil {
			tr, err := opts.TieredFactory(eng)
			if err != nil {
				ln.Close()
				return nil, err
			}
			sh.tiered = tr
		}
		s.shards = append(s.shards, sh)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) shardIndex(key []byte) int {
	if len(s.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(len(s.shards)))
}

func (s *Server) shardFor(key []byte) *shard {
	return s.shards[s.shardIndex(key)]
}

// submitOne runs fn on shard si's pool and folds pool shutdown and fn
// errors into an error reply; a nil return means success and the caller
// assembles its reply. It is the shared single-shard-group fast path of
// mget/mset/del — when a whole batch lands on one shard there is no
// fan-out to scaffold.
func (s *Server) submitOne(si int, fn func(sh *shard) error) reply {
	sh := s.shards[si]
	var err error
	if perr := sh.pool.SubmitWait(func() { err = fn(sh) }); perr != nil {
		return errReply("server shutting down")
	}
	if err != nil {
		return errReply(err.Error())
	}
	return nil
}

// bulkArray renders values (nil = absent) as an array of bulk replies.
func bulkArray(vals [][]byte) reply {
	out := make(arrayReply, len(vals))
	for i, v := range vals {
		out[i] = bulkReply(v)
	}
	return out
}

// mget serves MGET: keys group by shard, each shard runs one batch get on
// its own pool (in parallel across shards), replies reassemble in request
// order — the multi-key fan-out the paper's client batching relies on.
func (s *Server) mget(keyArgs [][]byte) reply {
	keys := make([]string, len(keyArgs))
	groups := make(map[int][]int)
	for i, k := range keyArgs {
		keys[i] = string(k)
		si := s.shardIndex(k)
		groups[si] = append(groups[si], i)
	}
	vals := make([][]byte, len(keys))
	if len(groups) == 1 {
		// Common case (single key, or all keys on one shard — e.g. a
		// client's one-key MGET): skip the fan-out scaffolding.
		for si := range groups {
			var got map[string][]byte
			if rep := s.submitOne(si, func(sh *shard) (err error) {
				got, err = sh.strMGet(keys)
				return err
			}); rep != nil {
				return rep
			}
			for i, k := range keys {
				vals[i] = got[k]
			}
		}
		return bulkArray(vals)
	}
	errs := make([]error, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, idxs := range groups {
		sh := s.shards[si]
		wg.Add(1)
		go func(sh *shard, idxs []int) {
			defer wg.Done()
			sub := make([]string, len(idxs))
			for j, i := range idxs {
				sub[j] = keys[i]
			}
			var got map[string][]byte
			var err error
			perr := sh.pool.SubmitWait(func() { got, err = sh.strMGet(sub) })
			mu.Lock()
			defer mu.Unlock()
			if perr != nil {
				errs = append(errs, perr)
				return
			}
			if err != nil {
				errs = append(errs, err)
				return
			}
			for _, i := range idxs {
				vals[i] = got[keys[i]]
			}
		}(sh, idxs)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errReply(errs[0].Error())
	}
	return bulkArray(vals)
}

// del serves DEL/UNLINK: keys group by shard, each shard runs one tiered
// BatchDelete on its own pool (in parallel across shards), and the reply
// is the summed count of keys that existed in any tier. This replaces the
// old per-key walk, which both paid one tiered call per key and pinned
// every key to the first key's shard.
func (s *Server) del(keyArgs [][]byte) reply {
	groups := make(map[int][]string)
	for _, k := range keyArgs {
		si := s.shardIndex(k)
		groups[si] = append(groups[si], string(k))
	}
	if len(groups) == 1 {
		// Common case (single key, or all keys on one shard): skip the
		// fan-out scaffolding.
		for si, keys := range groups {
			var n int64
			if rep := s.submitOne(si, func(sh *shard) (err error) {
				n, err = sh.strBatchDel(keys)
				return err
			}); rep != nil {
				return rep
			}
			return intReply(n)
		}
	}
	var total int64
	errs := make([]error, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, keys := range groups {
		sh := s.shards[si]
		wg.Add(1)
		go func(sh *shard, keys []string) {
			defer wg.Done()
			var n int64
			var err error
			perr := sh.pool.SubmitWait(func() { n, err = sh.strBatchDel(keys) })
			mu.Lock()
			defer mu.Unlock()
			if perr != nil {
				errs = append(errs, perr)
				return
			}
			if err != nil {
				errs = append(errs, err)
				return
			}
			total += n
		}(sh, keys)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errReply(errs[0].Error())
	}
	return intReply(total)
}

// mset serves MSET: pairs group by shard, each shard applies one batch put
// on its own pool, in parallel across shards.
func (s *Server) mset(kvArgs [][]byte) reply {
	groups := make(map[int]map[string][]byte)
	for i := 0; i+1 < len(kvArgs); i += 2 {
		si := s.shardIndex(kvArgs[i])
		if groups[si] == nil {
			groups[si] = make(map[string][]byte)
		}
		// Copy out of the read buffer; keep empty values non-nil (nil
		// means delete in BatchPut, and MSET k "" must store "").
		val := make([]byte, len(kvArgs[i+1]))
		copy(val, kvArgs[i+1])
		groups[si][string(kvArgs[i])] = val
	}
	if len(groups) == 1 {
		// Single-shard MSET (or single pair): no fan-out needed.
		for si, entries := range groups {
			if rep := s.submitOne(si, func(sh *shard) error {
				return sh.strMSet(entries)
			}); rep != nil {
				return rep
			}
		}
		return simpleReply("OK")
	}
	errs := make([]error, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, entries := range groups {
		sh := s.shards[si]
		wg.Add(1)
		go func(sh *shard, entries map[string][]byte) {
			defer wg.Done()
			var err error
			perr := sh.pool.SubmitWait(func() { err = sh.strMSet(entries) })
			mu.Lock()
			defer mu.Unlock()
			if perr != nil {
				errs = append(errs, perr)
			} else if err != nil {
				errs = append(errs, err)
			}
		}(sh, entries)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errReply(errs[0].Error())
	}
	return simpleReply("OK")
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.connWg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 16<<10)
	w := bufio.NewWriterSize(conn, 16<<10)
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		start := time.Now()
		rep := s.dispatch(args)
		s.Latency.RecordDuration(time.Since(start))
		s.Throughput.Mark(1)
		if err := rep.write(w); err != nil {
			return
		}
		// Flush when no more pipelined commands are buffered.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// dispatch routes one command to its shard pool and waits for the reply.
func (s *Server) dispatch(args [][]byte) reply {
	if len(args) == 0 {
		return errReply("empty command")
	}
	cmd := strings.ToUpper(string(args[0]))
	switch cmd {
	case "PING":
		return simpleReply("PONG")
	case "ECHO":
		if len(args) != 2 {
			return errReply("wrong number of arguments for 'echo'")
		}
		return bulkReply(args[1])
	case "DBSIZE":
		var n int64
		for _, sh := range s.shards {
			n += int64(sh.eng.Len())
		}
		return intReply(n)
	case "FLUSHALL":
		for _, sh := range s.shards {
			sh.eng.FlushAll()
		}
		return simpleReply("OK")
	case "INFO":
		if len(args) > 2 {
			return errReply("wrong number of arguments for 'info'")
		}
		section := ""
		if len(args) == 2 {
			section = strings.ToLower(string(args[1]))
		}
		return bulkReply([]byte(s.info(section)))
	case "MGET":
		if len(args) < 2 {
			return errReply("wrong number of arguments for 'mget'")
		}
		return s.mget(args[1:])
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			return errReply("wrong number of arguments for 'mset'")
		}
		return s.mset(args[1:])
	case "DEL", "UNLINK":
		if len(args) < 2 {
			return errReply("wrong number of arguments for 'del'")
		}
		return s.del(args[1:])
	}
	if len(args) < 2 {
		return errReply("wrong number of arguments")
	}
	key := args[1]
	sh := s.shardFor(key)
	var rep reply
	err := sh.pool.SubmitWait(func() { rep = execute(sh, cmd, args) })
	if err != nil {
		return errReply("server shutting down")
	}
	return rep
}

// info renders INFO output. section filters to one section ("server",
// "writepath", "storage"); empty renders everything.
func (s *Server) info(section string) string {
	var b strings.Builder
	if section == "" || section == "server" {
		fmt.Fprintf(&b, "# Server\r\nshards:%d\r\n", len(s.shards))
		var keys int
		var mem int64
		for i, sh := range s.shards {
			st := sh.eng.Stats()
			keys += st.Keys
			mem += st.MemBytes
			fmt.Fprintf(&b, "shard%d_workers:%d\r\nshard%d_mode:%s\r\n",
				i, sh.pool.Workers(), i, sh.pool.Mode())
		}
		fmt.Fprintf(&b, "keys:%d\r\nmem_bytes:%d\r\n", keys, mem)
		fmt.Fprintf(&b, "p99_ns:%d\r\n", s.Latency.P99())
	}
	if section == "" || section == "writepath" {
		s.writePathInfo(&b)
	}
	if section == "" || section == "storage" {
		s.storageInfo(&b)
	}
	return b.String()
}

// storageInfo renders the storage-tier section: per-shard LSM counters —
// flush/compaction activity, the immutable-memtable backlog (a growing
// number means the background flusher is falling behind writers), level
// shape and write volume.
func (s *Server) storageInfo(b *strings.Builder) {
	fmt.Fprintf(b, "# Storage\r\n")
	if s.opts.StorageStats == nil {
		fmt.Fprintf(b, "storage_shards:0\r\n")
		return
	}
	stats := s.opts.StorageStats()
	fmt.Fprintf(b, "storage_shards:%d\r\n", len(stats))
	for i, st := range stats {
		fmt.Fprintf(b, "shard%d_flushes:%d\r\n", i, st.Flushes)
		fmt.Fprintf(b, "shard%d_compactions:%d\r\n", i, st.Compactions)
		fmt.Fprintf(b, "shard%d_immutables:%d\r\n", i, st.Immutables)
		fmt.Fprintf(b, "shard%d_memtable_bytes:%d\r\n", i, st.MemtableBytes+st.ImmutableBytes)
		fmt.Fprintf(b, "shard%d_write_bytes:%d\r\n", i, st.WriteBytes)
		fmt.Fprintf(b, "shard%d_multigets:%d\r\n", i, st.MultiGets)
		fmt.Fprintf(b, "shard%d_disk_bytes:%d\r\n", i, st.DiskBytes)
		files := make([]string, len(st.LevelFiles))
		for l, n := range st.LevelFiles {
			files[l] = strconv.Itoa(n)
		}
		fmt.Fprintf(b, "shard%d_level_files:%s\r\n", i, strings.Join(files, ","))
		bytesParts := make([]string, len(st.LevelBytes))
		for l, n := range st.LevelBytes {
			bytesParts[l] = strconv.FormatInt(n, 10)
		}
		fmt.Fprintf(b, "shard%d_level_bytes:%s\r\n", i, strings.Join(bytesParts, ","))
	}
}

// writePathInfo renders the write-path section: aggregate write-through
// coalescing and write-back flush/backpressure counters, plus each
// shard's per-stripe dirty distribution (the write path stripes along
// the engine's lock stripes).
func (s *Server) writePathInfo(b *strings.Builder) {
	fmt.Fprintf(b, "# WritePath\r\n")
	var coalesced, rounds, flushed, waits int64
	var dirty, stripes int
	tiered := 0
	for _, sh := range s.shards {
		if sh.tiered == nil {
			continue
		}
		tiered++
		st := sh.tiered.Stats()
		coalesced += st.Coalesced
		rounds += st.Batches
		flushed += st.Flushed
		waits += st.BackpressureWaits
		dirty += st.Dirty
		stripes += sh.tiered.WriteStripes()
	}
	fmt.Fprintf(b, "tiered_shards:%d\r\n", tiered)
	if tiered == 0 {
		return // cache-only deployment: no write path to report
	}
	fmt.Fprintf(b, "write_stripes:%d\r\n", stripes)
	fmt.Fprintf(b, "coalesced_writes:%d\r\n", coalesced)
	fmt.Fprintf(b, "flush_rounds:%d\r\n", rounds)
	fmt.Fprintf(b, "flushed_entries:%d\r\n", flushed)
	fmt.Fprintf(b, "backpressure_waits:%d\r\n", waits)
	fmt.Fprintf(b, "dirty_entries:%d\r\n", dirty)
	for i, sh := range s.shards {
		if sh.tiered == nil {
			continue
		}
		fmt.Fprintf(b, "shard%d_policy:%s\r\n", i, sh.tiered.Policy())
		ds := sh.tiered.DirtyStripes()
		parts := make([]string, len(ds))
		for j, n := range ds {
			parts[j] = strconv.Itoa(n)
		}
		fmt.Fprintf(b, "shard%d_dirty_stripes:%s\r\n", i, strings.Join(parts, ","))
	}
}

// Shards exposes shard engines for measurement (benches).
func (s *Server) Shards() []*engine.Engine {
	out := make([]*engine.Engine, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.eng
	}
	return out
}

// Pools exposes shard pools (elastic threading observation).
func (s *Server) Pools() []*elastic.Pool {
	out := make([]*elastic.Pool, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.pool
	}
	return out
}

// Close stops accepting, closes connections, and shuts down shards.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	s.connWg.Wait()
	for _, sh := range s.shards {
		sh.pool.Stop()
		if sh.tiered != nil {
			sh.tiered.Close()
		}
	}
	return err
}

// --- command execution on a shard ---

// strStore abstracts string-command storage: tiered when configured,
// direct engine otherwise.
func (sh *shard) strGet(key string) ([]byte, error) {
	if sh.tiered != nil {
		return sh.tiered.Get(key)
	}
	return sh.eng.Get(key)
}

func (sh *shard) strSet(key string, val []byte) error {
	if sh.tiered != nil {
		return sh.tiered.Set(key, val)
	}
	return sh.eng.Set(key, val)
}

// strBatchDel removes keys on this shard in one tiered pass, returning
// how many existed in any tier (cache, dirty state, or storage).
func (sh *shard) strBatchDel(keys []string) (int64, error) {
	if sh.tiered != nil {
		n, err := sh.tiered.BatchDelete(keys)
		return int64(n), err
	}
	return int64(sh.eng.BatchDel(keys)), nil
}

// strMGet serves a batch read on this shard; absent keys map to nil.
func (sh *shard) strMGet(keys []string) (map[string][]byte, error) {
	if sh.tiered != nil {
		return sh.tiered.BatchGet(keys)
	}
	vals, err := sh.eng.MGet(keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for i, k := range keys {
		out[k] = vals[i]
	}
	return out, nil
}

// strMSet serves a batch write on this shard.
func (sh *shard) strMSet(entries map[string][]byte) error {
	if sh.tiered != nil {
		return sh.tiered.BatchPut(entries)
	}
	kvs := make([]engine.KV, 0, len(entries))
	for k, v := range entries {
		kvs = append(kvs, engine.KV{Key: k, Val: v})
	}
	return sh.eng.MSet(kvs)
}

func notFoundish(err error) bool {
	return errors.Is(err, engine.ErrNotFound) || errors.Is(err, cache.ErrNotFound)
}

func execute(sh *shard, cmd string, args [][]byte) reply {
	eng := sh.eng
	key := string(args[1])
	switch cmd {
	case "SET":
		if len(args) != 3 {
			return errReply("wrong number of arguments for 'set'")
		}
		if err := sh.strSet(key, args[2]); err != nil {
			return errReply(err.Error())
		}
		return simpleReply("OK")
	case "GET":
		v, err := sh.strGet(key)
		if notFoundish(err) {
			return bulkReply(nil)
		}
		if err != nil {
			return errReply(err.Error())
		}
		return bulkReply(v)
	case "EXISTS":
		if eng.Exists(key) {
			return intReply(1)
		}
		return intReply(0)
	case "TYPE":
		return simpleReply(eng.Type(key).String())
	case "SETNX":
		if len(args) != 3 {
			return errReply("wrong number of arguments for 'setnx'")
		}
		ok, err := eng.SetNX(key, args[2])
		if err != nil {
			return errReply(err.Error())
		}
		if ok {
			return intReply(1)
		}
		return intReply(0)
	case "INCR", "DECR", "INCRBY", "DECRBY":
		delta := int64(1)
		if cmd == "INCRBY" || cmd == "DECRBY" {
			if len(args) != 3 {
				return errReply("wrong number of arguments")
			}
			d, err := strconv.ParseInt(string(args[2]), 10, 64)
			if err != nil {
				return errReply("value is not an integer or out of range")
			}
			delta = d
		}
		if cmd == "DECR" || cmd == "DECRBY" {
			delta = -delta
		}
		v, err := eng.IncrBy(key, delta)
		if err != nil {
			return errReply(err.Error())
		}
		return intReply(v)
	case "CAS":
		// CAS key oldval newval — the paper's compare-and-set extension.
		if len(args) != 4 {
			return errReply("wrong number of arguments for 'cas'")
		}
		err := eng.CompareAndSet(key, args[2], args[3])
		if err == engine.ErrCASMismatch {
			return intReply(0)
		}
		if err != nil {
			return errReply(err.Error())
		}
		return intReply(1)
	case "EXPIRE":
		if len(args) != 3 {
			return errReply("wrong number of arguments for 'expire'")
		}
		secs, err := strconv.ParseInt(string(args[2]), 10, 64)
		if err != nil {
			return errReply("value is not an integer or out of range")
		}
		if eng.Expire(key, time.Duration(secs)*time.Second) {
			return intReply(1)
		}
		return intReply(0)
	case "TTL":
		d, ok := eng.TTL(key)
		if !ok {
			if eng.Exists(key) {
				return intReply(-1)
			}
			return intReply(-2)
		}
		return intReply(int64(d / time.Second))
	case "PERSIST":
		if eng.Persist(key) {
			return intReply(1)
		}
		return intReply(0)
	case "LPUSH", "RPUSH":
		if len(args) < 3 {
			return errReply("wrong number of arguments")
		}
		vals := args[2:]
		var n int
		var err error
		if cmd == "LPUSH" {
			n, err = eng.LPush(key, vals...)
		} else {
			n, err = eng.RPush(key, vals...)
		}
		if err != nil {
			return errReply(err.Error())
		}
		return intReply(int64(n))
	case "LPOP", "RPOP":
		var v []byte
		var err error
		if cmd == "LPOP" {
			v, err = eng.LPop(key)
		} else {
			v, err = eng.RPop(key)
		}
		if notFoundish(err) {
			return bulkReply(nil)
		}
		if err != nil {
			return errReply(err.Error())
		}
		return bulkReply(v)
	case "LLEN":
		n, err := eng.LLen(key)
		if err != nil {
			return errReply(err.Error())
		}
		return intReply(int64(n))
	case "LRANGE":
		if len(args) != 4 {
			return errReply("wrong number of arguments for 'lrange'")
		}
		start, err1 := strconv.Atoi(string(args[2]))
		stop, err2 := strconv.Atoi(string(args[3]))
		if err1 != nil || err2 != nil {
			return errReply("value is not an integer or out of range")
		}
		vals, err := eng.LRange(key, start, stop)
		if err != nil {
			return errReply(err.Error())
		}
		out := make(arrayReply, len(vals))
		for i, v := range vals {
			out[i] = bulkReply(v)
		}
		return out
	case "SADD", "SREM":
		if len(args) < 3 {
			return errReply("wrong number of arguments")
		}
		members := make([]string, len(args)-2)
		for i, a := range args[2:] {
			members[i] = string(a)
		}
		var n int
		var err error
		if cmd == "SADD" {
			n, err = eng.SAdd(key, members...)
		} else {
			n, err = eng.SRem(key, members...)
		}
		if err != nil {
			return errReply(err.Error())
		}
		return intReply(int64(n))
	case "SISMEMBER":
		if len(args) != 3 {
			return errReply("wrong number of arguments for 'sismember'")
		}
		ok, err := eng.SIsMember(key, string(args[2]))
		if err != nil {
			return errReply(err.Error())
		}
		if ok {
			return intReply(1)
		}
		return intReply(0)
	case "SCARD":
		n, err := eng.SCard(key)
		if err != nil {
			return errReply(err.Error())
		}
		return intReply(int64(n))
	case "SMEMBERS":
		members, err := eng.SMembers(key)
		if err != nil {
			return errReply(err.Error())
		}
		return bulkStrings(members...)
	case "ZADD":
		if len(args) != 4 {
			return errReply("wrong number of arguments for 'zadd'")
		}
		score, err := strconv.ParseFloat(string(args[2]), 64)
		if err != nil {
			return errReply("value is not a valid float")
		}
		isNew, err := eng.ZAdd(key, string(args[3]), score)
		if err != nil {
			return errReply(err.Error())
		}
		if isNew {
			return intReply(1)
		}
		return intReply(0)
	case "ZSCORE":
		if len(args) != 3 {
			return errReply("wrong number of arguments for 'zscore'")
		}
		sc, err := eng.ZScore(key, string(args[2]))
		if notFoundish(err) {
			return bulkReply(nil)
		}
		if err != nil {
			return errReply(err.Error())
		}
		return bulkReply([]byte(strconv.FormatFloat(sc, 'g', -1, 64)))
	case "ZREM":
		if len(args) != 3 {
			return errReply("wrong number of arguments for 'zrem'")
		}
		ok, err := eng.ZRem(key, string(args[2]))
		if err != nil {
			return errReply(err.Error())
		}
		if ok {
			return intReply(1)
		}
		return intReply(0)
	case "ZCARD":
		n, err := eng.ZCard(key)
		if err != nil {
			return errReply(err.Error())
		}
		return intReply(int64(n))
	case "ZRANGE":
		if len(args) < 4 {
			return errReply("wrong number of arguments for 'zrange'")
		}
		start, err1 := strconv.Atoi(string(args[2]))
		stop, err2 := strconv.Atoi(string(args[3]))
		if err1 != nil || err2 != nil {
			return errReply("value is not an integer or out of range")
		}
		withScores := len(args) == 5 && strings.EqualFold(string(args[4]), "WITHSCORES")
		members, err := eng.ZRange(key, start, stop)
		if err != nil {
			return errReply(err.Error())
		}
		var out arrayReply
		for _, m := range members {
			out = append(out, bulkReply([]byte(m.Member)))
			if withScores {
				out = append(out, bulkReply([]byte(strconv.FormatFloat(m.Score, 'g', -1, 64))))
			}
		}
		if out == nil {
			out = arrayReply{}
		}
		return out
	case "HSET":
		if len(args) != 4 {
			return errReply("wrong number of arguments for 'hset'")
		}
		isNew, err := eng.HSet(key, string(args[2]), args[3])
		if err != nil {
			return errReply(err.Error())
		}
		if isNew {
			return intReply(1)
		}
		return intReply(0)
	case "HGET":
		if len(args) != 3 {
			return errReply("wrong number of arguments for 'hget'")
		}
		v, err := eng.HGet(key, string(args[2]))
		if notFoundish(err) {
			return bulkReply(nil)
		}
		if err != nil {
			return errReply(err.Error())
		}
		return bulkReply(v)
	case "HDEL":
		if len(args) < 3 {
			return errReply("wrong number of arguments for 'hdel'")
		}
		fields := make([]string, len(args)-2)
		for i, a := range args[2:] {
			fields[i] = string(a)
		}
		n, err := eng.HDel(key, fields...)
		if err != nil {
			return errReply(err.Error())
		}
		return intReply(int64(n))
	case "HLEN":
		n, err := eng.HLen(key)
		if err != nil {
			return errReply(err.Error())
		}
		return intReply(int64(n))
	case "HGETALL":
		fields, err := eng.HGetAll(key)
		if err != nil {
			return errReply(err.Error())
		}
		out := make(arrayReply, 0, len(fields)*2)
		for _, f := range fields {
			out = append(out, bulkReply([]byte(f.Field)), bulkReply(f.Value))
		}
		return out
	default:
		return errReply(fmt.Sprintf("unknown command '%s'", cmd))
	}
}
