package server

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"tierbase/internal/metrics"
)

// Overload protection (see README.md "Overload protection"): admission
// control at accept, slow-client shedding at reply flush, and global
// memory watermarks gating writes at dispatch. The policy never touches
// replication sessions (a hijacked SYNC connection manages its own
// deadlines and laggard shedding — see serveReplica) and never rejects
// reads: a node above its high watermark keeps serving the cache tier
// while writers back off on a typed, retryable -OVERLOADED.

// OverloadConfig holds the overload-protection knobs. Zero values mean
// "use the default"; negative values disable the corresponding bound
// where documented.
type OverloadConfig struct {
	// MaxConns caps concurrently served client connections. A connection
	// beyond the cap is answered with a typed -MAXCONN error and closed
	// at accept, before a goroutine or parse arena is committed to it.
	// 0 = unlimited.
	MaxConns int
	// MaxOutputBytes caps one connection's pending reply buffer. A
	// client that pipelines requests faster than it drains replies is
	// shed (connection closed, shed_conns counted) when the buffer
	// passes the cap, so one stuck consumer can never pin master
	// memory. 0 = default 32 MiB; negative disables.
	MaxOutputBytes int
	// ReadTimeout bounds how long the server waits for the next command
	// on an idle connection (and for the remainder of a partially read
	// one). 0 disables: idle clients are legitimate in most deployments.
	ReadTimeout time.Duration
	// WriteTimeout bounds every reply flush to the socket. A slow
	// reader whose kernel buffer stays full past the bound is shed
	// instead of pinning the connection goroutine and its reply buffer.
	// 0 = default 30s; negative disables.
	WriteTimeout time.Duration
	// HighWatermarkBytes enables global memory watermarks when > 0:
	// while the tracked total (engine bytes or cache budget, whichever
	// is larger, plus write-back dirty backlog, storage memtables, and
	// the replication log window) is at or above this bound, writes
	// fail fast with a typed, retryable -OVERLOADED; reads keep
	// serving.
	HighWatermarkBytes int64
	// LowWatermarkBytes is the hysteresis floor: writes resume once the
	// tracked total falls to or below it. 0 = 90% of the high
	// watermark.
	LowWatermarkBytes int64
	// CheckInterval is the watermark sampling period (0 = default
	// 100ms).
	CheckInterval time.Duration
	// DrainTimeout bounds the graceful-drain wait for in-flight client
	// commands in Shutdown before remaining connections are force
	// closed (0 = default 10s).
	DrainTimeout time.Duration
}

// normalize fills defaulted overload fields in place.
func (o *OverloadConfig) normalize() {
	if o.MaxOutputBytes == 0 {
		o.MaxOutputBytes = 32 << 20
	}
	if o.MaxOutputBytes < 0 {
		o.MaxOutputBytes = 0 // disabled
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.WriteTimeout < 0 {
		o.WriteTimeout = 0 // disabled
	}
	if o.ReadTimeout < 0 {
		o.ReadTimeout = 0
	}
	if o.HighWatermarkBytes > 0 && o.LowWatermarkBytes <= 0 {
		o.LowWatermarkBytes = o.HighWatermarkBytes / 10 * 9
	}
	if o.CheckInterval <= 0 {
		o.CheckInterval = 100 * time.Millisecond
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
}

// validate rejects contradictory overload configuration.
func (o *OverloadConfig) validate() error {
	if o.MaxConns < 0 {
		return fmt.Errorf("server: negative connection cap %d", o.MaxConns)
	}
	if o.HighWatermarkBytes < 0 {
		return fmt.Errorf("server: negative high watermark %d", o.HighWatermarkBytes)
	}
	if o.HighWatermarkBytes > 0 && o.LowWatermarkBytes > o.HighWatermarkBytes {
		return fmt.Errorf("server: low watermark %d above high watermark %d",
			o.LowWatermarkBytes, o.HighWatermarkBytes)
	}
	return nil
}

// overloadState is the server's live overload-protection state: the
// watermark flag plus the counters INFO overload reports. All fields are
// sampled/bumped lock-free on hot paths.
type overloadState struct {
	overloaded     atomic.Bool  // memory at/above high watermark; writes rejected
	memUsage       atomic.Int64 // last sampled tracked total
	maxConnRejects atomic.Int64 // connections refused with -MAXCONN
	shedConns      atomic.Int64 // connections closed at the output cap or write deadline
	idleCloses     atomic.Int64 // connections closed at the read/idle deadline
	rejectedWrites atomic.Int64 // writes answered with -OVERLOADED
	watermarkTrips atomic.Int64 // transitions into the overloaded state
	slowestOut     metrics.MaxGauge
}

// overloadedReply is the typed, retryable write rejection. Clients
// (internal/client) parse the OVERLOADED prefix into a typed error and
// back off before retrying the same node.
const overloadedReply = "OVERLOADED memory above high watermark, writes shed; retry after backoff"

// maxConnReply is the typed admission rejection, written raw at accept
// (there is no conn state yet).
const maxConnReply = "-MAXCONN connection limit reached\r\n"

// rejectWrites reports whether the watermark gate is currently shedding
// writes. One atomic load on the dispatch hot path.
func (s *Server) rejectWrites() bool {
	return s.over.overloaded.Load()
}

// memUsage computes the tracked memory total the watermarks act on:
// per shard, the larger of live engine bytes and the configured cache
// budget (the budget is reserved whether or not it is full), plus the
// write-back dirty backlog (copied buffers outside the engine), the
// storage tier's memtables, and the replication log window.
func (s *Server) memUsage() int64 {
	var total int64
	for _, sh := range s.shards {
		mem := sh.eng.Stats().MemBytes
		if sh.tiered != nil {
			if budget := sh.tiered.TieringStats().CapacityBytes; budget > mem {
				mem = budget
			}
			total += sh.tiered.DirtyBytes()
		}
		total += mem
	}
	if s.opts.StorageStats != nil {
		for _, st := range s.opts.StorageStats() {
			total += st.MemtableBytes + st.ImmutableBytes
		}
	}
	if s.repl != nil {
		total += s.repl.log.Bytes()
	}
	return total
}

// watermarkLoop samples memUsage every CheckInterval and flips the
// overloaded flag with hysteresis: set at/above the high watermark,
// cleared at/below the low one, unchanged in between (so the gate
// doesn't flap while usage oscillates around one bound).
func (s *Server) watermarkLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.Overload.CheckInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.sampleWatermark()
		}
	}
}

// sampleWatermark runs one watermark evaluation (extracted so tests can
// force a sample instead of racing the ticker).
func (s *Server) sampleWatermark() {
	usage := s.memUsage()
	s.over.memUsage.Store(usage)
	cfg := &s.opts.Overload
	switch {
	case usage >= cfg.HighWatermarkBytes:
		if !s.over.overloaded.Swap(true) {
			s.over.watermarkTrips.Add(1)
		}
	case usage <= cfg.LowWatermarkBytes:
		s.over.overloaded.Store(false)
	}
}

// overloadInfo renders the "# Overload" INFO section.
func (s *Server) overloadInfo(b *strings.Builder) {
	cfg := &s.opts.Overload
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	fmt.Fprintf(b, "# Overload\r\n")
	fmt.Fprintf(b, "connected_clients:%d\r\n", conns)
	fmt.Fprintf(b, "max_conns:%d\r\n", cfg.MaxConns)
	fmt.Fprintf(b, "maxconn_rejects:%d\r\n", s.over.maxConnRejects.Load())
	fmt.Fprintf(b, "shed_conns:%d\r\n", s.over.shedConns.Load())
	fmt.Fprintf(b, "idle_closes:%d\r\n", s.over.idleCloses.Load())
	fmt.Fprintf(b, "slowest_client_buffer_bytes:%d\r\n", s.over.slowestOut.Load())
	fmt.Fprintf(b, "overloaded:%d\r\n", boolToInt(s.over.overloaded.Load()))
	fmt.Fprintf(b, "mem_usage_bytes:%d\r\n", s.over.memUsage.Load())
	fmt.Fprintf(b, "high_watermark_bytes:%d\r\n", cfg.HighWatermarkBytes)
	fmt.Fprintf(b, "low_watermark_bytes:%d\r\n", cfg.LowWatermarkBytes)
	fmt.Fprintf(b, "rejected_writes:%d\r\n", s.over.rejectedWrites.Load())
	fmt.Fprintf(b, "watermark_trips:%d\r\n", s.over.watermarkTrips.Load())
}
