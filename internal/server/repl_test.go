package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tierbase/internal/client"
)

// startMaster starts a replication-enabled master node.
func startMaster(t *testing.T, mod func(*Config)) (*Server, *client.Client) {
	t.Helper()
	cfg := Config{Replication: ReplicationConfig{NodeID: "m1"}}
	if mod != nil {
		mod(&cfg)
	}
	return startTestServer(t, cfg)
}

// startReplicaOf starts a replica following master.
func startReplicaOf(t *testing.T, master *Server, id string, mod func(*Config)) (*Server, *client.Client) {
	t.Helper()
	cfg := Config{Replication: ReplicationConfig{NodeID: id, MasterAddr: master.Addr()}}
	if mod != nil {
		mod(&cfg)
	}
	return startTestServer(t, cfg)
}

// waitFor polls cond until it holds or the deadline fails the test.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// infoField extracts "field:value" from an INFO blob.
func infoField(t *testing.T, c *client.Client, section, field string) string {
	t.Helper()
	v, err := c.Do("INFO", section)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(v.(string), "\r\n") {
		if rest, ok := strings.CutPrefix(line, field+":"); ok {
			return rest
		}
	}
	return ""
}

func TestReplicationStreamsWrites(t *testing.T) {
	ms, mc := startMaster(t, nil)
	_, rc := startReplicaOf(t, ms, "r1", nil)

	for i := 0; i < 50; i++ {
		if err := mc.Set(fmt.Sprintf("key%02d", i), fmt.Sprintf("v%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mc.Incr("counter"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Do("LPUSH", "list", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Del("key00"); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "replica catch-up", func() bool {
		v, err := rc.Get("key49")
		return err == nil && v == "v49"
	})
	waitFor(t, "delete replication", func() bool {
		_, err := rc.Get("key00")
		return err == client.Nil
	})
	if v, err := rc.Get("counter"); err != nil || v != "1" {
		t.Fatalf("counter on replica: %q %v", v, err)
	}
	waitFor(t, "collection replication", func() bool {
		v, err := rc.Do("LLEN", "list")
		return err == nil && v == int64(3)
	})

	if got := infoField(t, mc, "replication", "role"); got != "master" {
		t.Fatalf("master role = %q", got)
	}
	if got := infoField(t, mc, "replication", "connected_replicas"); got != "1" {
		t.Fatalf("connected_replicas = %q", got)
	}
	if got := infoField(t, rc, "replication", "role"); got != "replica" {
		t.Fatalf("replica role = %q", got)
	}
	waitFor(t, "master link up", func() bool {
		return infoField(t, rc, "replication", "master_link") == "up"
	})
}

func TestReplicaRejectsWritesWithTypedMoved(t *testing.T) {
	ms, mc := startMaster(t, nil)
	_, rc := startReplicaOf(t, ms, "r1", nil)

	if err := mc.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replica catch-up", func() bool {
		v, err := rc.Get("k")
		return err == nil && v == "v"
	})

	err := rc.Set("k", "nope")
	var mv *client.MovedError
	if !errors.As(err, &mv) {
		t.Fatalf("replica write error not a MovedError: %#v", err)
	}
	if mv.Addr != ms.Addr() {
		t.Fatalf("MOVED points at %q, master is %q", mv.Addr, ms.Addr())
	}
	// Reads still serve.
	if v, err := rc.Get("k"); err != nil || v != "v" {
		t.Fatalf("replica read after rejected write: %q %v", v, err)
	}
	// Master value untouched.
	if v, err := mc.Get("k"); err != nil || v != "v" {
		t.Fatalf("master value: %q %v", v, err)
	}
}

func TestFullSyncBootstrap(t *testing.T) {
	// A tiny log window forces the late-joining replica out of the
	// incremental path: it must bootstrap from an engine snapshot.
	ms, mc := startMaster(t, func(c *Config) { c.Replication.LogCap = 8 })
	for i := 0; i < 100; i++ {
		if err := mc.Set(fmt.Sprintf("key%03d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mc.Do("LPUSH", "list", "a", "b"); err != nil {
		t.Fatal(err)
	}

	_, rc := startReplicaOf(t, ms, "r1", nil)
	waitFor(t, "full-sync bootstrap", func() bool {
		v, err := rc.Get("key000")
		return err == nil && v == "v"
	})
	if v, err := rc.Get("key099"); err != nil || v != "v" {
		t.Fatalf("late key: %q %v", v, err)
	}
	waitFor(t, "collection snapshot", func() bool {
		v, err := rc.Do("LLEN", "list")
		return err == nil && v == int64(2)
	})
	if got := infoField(t, rc, "replication", "full_syncs_done"); got != "1" {
		t.Fatalf("full_syncs_done = %q", got)
	}
	// And the stream continues past the snapshot.
	if err := mc.Set("after-snap", "x"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-snapshot stream", func() bool {
		v, err := rc.Get("after-snap")
		return err == nil && v == "x"
	})
}

func TestSemiSyncAckGate(t *testing.T) {
	ms, mc := startMaster(t, func(c *Config) {
		c.Replication.SemiSyncAcks = 1
		c.Replication.AckTimeout = 200 * time.Millisecond
	})

	// No replica attached: the write applies locally but fails semi-sync.
	err := mc.Set("k", "v")
	if err == nil || !strings.HasPrefix(err.Error(), "NOREPLICAS") {
		t.Fatalf("semi-sync with no replicas = %v, want NOREPLICAS", err)
	}

	_, rc := startReplicaOf(t, ms, "r1", nil)
	waitFor(t, "replica attach", func() bool {
		return mc.Set("k2", "v2") == nil
	})
	// Semi-sync acked means the replica already has it: no polling.
	if err := mc.Set("k3", "v3"); err != nil {
		t.Fatal(err)
	}
	if v, err := rc.Get("k3"); err != nil || v != "v3" {
		t.Fatalf("acked write not on replica: %q %v", v, err)
	}
}

func TestPromotionContinuesSequence(t *testing.T) {
	ms, mc := startMaster(t, nil)
	r1s, r1c := startReplicaOf(t, ms, "r1", nil)
	_, r2c := startReplicaOf(t, ms, "r2", nil)

	for i := 0; i < 20; i++ {
		if err := mc.Set(fmt.Sprintf("pre%02d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "both replicas caught up", func() bool {
		v1, e1 := r1c.Get("pre19")
		v2, e2 := r2c.Get("pre19")
		return e1 == nil && v1 == "v" && e2 == nil && v2 == "v"
	})

	// Kill the master; promote r1; re-point r2 (what the coordinator's
	// failover push does against live processes).
	ms.Close()
	if _, err := r1c.Do("REPLICAOF", "NO", "ONE"); err != nil {
		t.Fatal(err)
	}
	if got := infoField(t, r1c, "replication", "role"); got != "master" {
		t.Fatalf("promoted role = %q", got)
	}
	host, port, ok := strings.Cut(r1s.Addr(), ":")
	if !ok {
		t.Fatal("bad addr")
	}
	if _, err := r2c.Do("REPLICAOF", host, port); err != nil {
		t.Fatal(err)
	}

	// New master accepts writes; r2 resumes incrementally (the mirrored
	// log continues the old master's sequence numbers).
	if err := r1c.Set("post", "promoted"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "r2 follows new master", func() bool {
		v, err := r2c.Get("post")
		return err == nil && v == "promoted"
	})
	// Pre-failover data survives on both.
	for _, c := range []*client.Client{r1c, r2c} {
		if v, err := c.Get("pre00"); err != nil || v != "v" {
			t.Fatalf("pre-failover key lost: %q %v", v, err)
		}
	}
	// r2 did not need a full sync to follow the promoted node.
	if got := infoField(t, r2c, "replication", "full_syncs_done"); got != "0" {
		t.Fatalf("full_syncs_done on r2 = %q, want 0 (incremental continuation)", got)
	}
}

// TestSetIncrOrderingConverges hammers one key with interleaved SET and
// INCR from many goroutines: because SET now takes the RMW stripe lock,
// the op log observes the same per-key order the engine applied, so the
// replica converges to exactly the master's final value.
func TestSetIncrOrderingConverges(t *testing.T) {
	ms, mc := startMaster(t, nil)
	_, rc := startReplicaOf(t, ms, "r1", nil)

	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(ms.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if w%2 == 0 {
					if err := c.Set("hot", fmt.Sprintf("%d", w*1000+i)); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := c.Incr("hot"); err != nil {
					// INCR on a non-integer SET value is a legal error.
					if !strings.Contains(err.Error(), "integer") {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	final, err := mc.Get("hot")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replica converges to master's final value", func() bool {
		v, err := rc.Get("hot")
		return err == nil && v == final
	})
	// And stays there: no late ops reordering past the end.
	time.Sleep(50 * time.Millisecond)
	if v, err := rc.Get("hot"); err != nil || v != final {
		t.Fatalf("replica diverged after settle: %q vs %q (%v)", v, final, err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Replication: ReplicationConfig{MasterAddr: "127.0.0.1:1"}},
		{Replication: ReplicationConfig{CoordinatorAddr: "127.0.0.1:1"}},
		{Replication: ReplicationConfig{SemiSyncAcks: 1}},
		{Replication: ReplicationConfig{NodeID: "n", MasterAddr: "127.0.0.1:1", SemiSyncAcks: 1}},
	}
	for i, cfg := range bad {
		cfg.normalize()
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should fail validation", i)
		}
	}
	good := Config{Replication: ReplicationConfig{NodeID: "n", SemiSyncAcks: 1}}
	good.normalize()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Replication.AckTimeout != 2*time.Second {
		t.Fatalf("AckTimeout default = %v", good.Replication.AckTimeout)
	}
	if good.Shards != 1 {
		t.Fatalf("Shards default = %d", good.Shards)
	}
}
