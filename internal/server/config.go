package server

import (
	"errors"
	"fmt"
	"net"
	"time"

	"tierbase/internal/cache"
	"tierbase/internal/elastic"
	"tierbase/internal/engine"
	"tierbase/internal/lsm"
	"tierbase/internal/replication"
)

// Config is the single consolidated server configuration: everything
// cmd/tierbase-server's flags (and every test harness) can set lives
// here, validated in one place. Zero values mean "use the default" —
// normalize fills them and Validate rejects contradictions, so callers
// build one Config and hand it to Start.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// Shards is the number of data nodes in this process (default 1).
	// Keys are hash-partitioned across shards; each shard has its own
	// engine and elastic worker pool, reproducing "one instance might
	// switch to multi-threaded mode while others remain in single-threaded
	// mode within the same container" (§4.4).
	Shards int
	// EngineOptions configures each shard's engine (compression, PMem...).
	EngineOptions engine.Options
	// TieredFactory, when set, builds the tiered store for each shard
	// (write-through/write-back against a storage tier). When nil, shards
	// run cache-only — except under replication, which installs a
	// cache-only tiered wrapper so every mutation crosses the op-sink seam.
	TieredFactory func(eng *engine.Engine) (*cache.Tiered, error)
	// StorageStats, when set, reports the storage tier's per-shard LSM
	// stats for the INFO "storage" section. The deployment wires it (the
	// server doesn't own the LSM handles — the tiered store sees only the
	// Storage interface).
	StorageStats func() []lsm.Stats
	// Pool configures each shard's elastic pool. When BoostQueueDepth is
	// unset the server picks a small absolute default (see Start): each
	// connection keeps at most one command in flight, so pool queue depth
	// equals connections waiting for a worker, and the pool's
	// queue-relative default would never trip.
	Pool elastic.PoolOptions
	// Replication configures the replication/cluster role of this
	// process. Replication is enabled iff Replication.NodeID is set.
	Replication ReplicationConfig
	// Overload configures admission control, slow-client shedding, and
	// the global memory watermarks (see overload.go). Zero values pick
	// safe defaults; the watermark gate is off until HighWatermarkBytes
	// is set.
	Overload OverloadConfig
	// WrapConn, when set, wraps every accepted connection before the
	// server serves it — the fault-injection seam (internal/faults wraps
	// sockets with injected latency, throughput caps and stalls). Must
	// return a connection that behaves like the original.
	WrapConn func(net.Conn) net.Conn
}

// Options is the historical name of Config, kept as an alias so existing
// callers (tests, benches, deployments) compile unchanged.
type Options = Config

// ReplicationConfig configures a node's place in a cluster: its
// identity, its initial role, the op-log window, the semi-sync
// durability knob, and the coordinator it reports to. The whole section
// is inert unless NodeID is set.
type ReplicationConfig struct {
	// NodeID is this node's cluster identity. Setting it enables the
	// replication machinery (op log, SYNC serving, REPLICAOF, role-aware
	// command dispatch).
	NodeID string
	// AdvertiseAddr is the address other nodes and clients reach this
	// node at; defaults to the bound listen address.
	AdvertiseAddr string
	// MasterAddr, when set, starts the node as a replica of that address
	// (the -replicaof flag). Empty starts it as a master.
	MasterAddr string
	// LogCap is the retained op-log window (default
	// replication.DefaultLogCap). A replica reconnecting within the
	// window resumes incrementally; outside it, full sync.
	LogCap int
	// SemiSyncAcks, when > 0, makes every write wait until that many
	// replicas acknowledged it (or AckTimeout passes, which fails the
	// write with -NOREPLICAS) before replying — the semi-synchronous
	// protocol of paper §4.1.2. 0 replicates asynchronously.
	SemiSyncAcks int
	// AckTimeout bounds a semi-sync wait (default 2s).
	AckTimeout time.Duration
	// CoordinatorAddr, when set, makes the node register with and
	// heartbeat to the coordinator cluster (failure detection +
	// promotion, paper §3).
	CoordinatorAddr string
	// HeartbeatInterval is the coordinator heartbeat period (default
	// 500ms).
	HeartbeatInterval time.Duration
	// WriteTimeout bounds every replication-frame write to a replica
	// (op batches, snapshot chunks, keepalives). A replica that stops
	// draining its socket fails the write within this bound instead of
	// stalling the master-side session forever (default 5s).
	WriteTimeout time.Duration
	// KeepaliveInterval is the master→replica ping period. Pings carry
	// the log head; the replica answers with a cumulative ack, so an
	// idle link proves liveness both ways (default 1s).
	KeepaliveInterval time.Duration
	// ReadTimeout bounds how long either side waits for the next frame
	// before declaring the link dead. With keepalives flowing, a healthy
	// idle link always has a frame within KeepaliveInterval; the default
	// is 4x KeepaliveInterval.
	ReadTimeout time.Duration
	// ShedBacklog is the laggard-shedding bound: a replica whose unacked
	// backlog (log head minus its cumulative ack) exceeds this many ops
	// is disconnected — it re-syncs later (incrementally if it recovers
	// within the log window, full sync otherwise) instead of holding
	// master-side resources. Default LogCap/2; negative disables.
	ShedBacklog int
	// SnapshotChunkBytes bounds how many snapshot bytes are materialized
	// (and buffered) per engine lock acquisition during a full sync;
	// each chunk is flushed under WriteTimeout before the next is built
	// (default 1 MiB).
	SnapshotChunkBytes int
	// Dialer overrides how a replica dials its master — the
	// fault-injection seam for the replica side of the link (default
	// net.DialTimeout on "tcp").
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
}

// Enabled reports whether the replication machinery is on.
func (rc *ReplicationConfig) Enabled() bool { return rc.NodeID != "" }

// normalize fills defaulted fields in place.
func (c *Config) normalize() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Pool.BoostQueueDepth <= 0 {
		c.Pool.BoostQueueDepth = 4
	}
	r := &c.Replication
	if r.LogCap <= 0 {
		r.LogCap = replication.DefaultLogCap
	}
	if r.AckTimeout <= 0 {
		r.AckTimeout = 2 * time.Second
	}
	if r.HeartbeatInterval <= 0 {
		r.HeartbeatInterval = 500 * time.Millisecond
	}
	if r.WriteTimeout <= 0 {
		r.WriteTimeout = 5 * time.Second
	}
	if r.KeepaliveInterval <= 0 {
		r.KeepaliveInterval = time.Second
	}
	if r.ReadTimeout <= 0 {
		r.ReadTimeout = 4 * r.KeepaliveInterval
	}
	if r.ShedBacklog == 0 {
		r.ShedBacklog = r.LogCap / 2
	}
	if r.SnapshotChunkBytes <= 0 {
		r.SnapshotChunkBytes = 1 << 20
	}
	c.Overload.normalize()
}

// Validate rejects contradictory configuration. Start calls it after
// normalize; cmd/tierbase-server calls it to fail fast on bad flags.
func (c *Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("server: negative shard count %d", c.Shards)
	}
	if err := c.Overload.validate(); err != nil {
		return err
	}
	r := &c.Replication
	if r.SemiSyncAcks < 0 {
		return fmt.Errorf("server: negative semi-sync ack count %d", r.SemiSyncAcks)
	}
	if !r.Enabled() {
		if r.MasterAddr != "" {
			return errors.New("server: replicaof requires a node id")
		}
		if r.CoordinatorAddr != "" {
			return errors.New("server: coordinator registration requires a node id")
		}
		if r.SemiSyncAcks > 0 {
			return errors.New("server: semi-sync requires a node id")
		}
		return nil
	}
	if r.MasterAddr != "" && r.SemiSyncAcks > 0 {
		return errors.New("server: a replica cannot require semi-sync acks")
	}
	return nil
}
