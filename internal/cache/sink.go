package cache

// OpSink receives every logical mutation the tiered store commits — the
// replication seam. The server installs one sink per shard engine and
// feeds its op log from it (see internal/replication).
//
// Contract:
//   - Single-key calls happen under the mutated key's RMW stripe lock,
//     so per-key (and per-stripe) sink order matches engine apply order
//     — the property semi-sync replication needs. Batch writes append
//     per stripe group under that stripe's lock, but the batch's
//     storage commit happens after the locks drop, so a batch racing a
//     single-key write on the same key has a residual ordering window
//     (documented in ROADMAP.md).
//   - Values may alias buffers the caller reuses (RESP parse arenas):
//     implementations must copy anything they retain.
//   - Implementations must not call back into the Tiered store and
//     should return quickly (they run inside the write path's critical
//     sections).
//
// Cache fills (singleflight miss population) and capacity evictions are
// NOT reported: they don't change the logical key space, and replicas
// manage their own residency.
type OpSink interface {
	// ReplicateSet reports a committed write. encoded=true means val is
	// a typed collection blob (engine codec format) rather than a raw
	// string value.
	ReplicateSet(key string, val []byte, encoded bool)
	// ReplicateDelete reports a committed deletion.
	ReplicateDelete(key string)
	// ReplicateExpire reports a TTL set on key, as an absolute UnixNano
	// deadline — replicas applying the op late still expire the key at
	// the master's wall-clock instant, not a drifted relative one.
	ReplicateExpire(key string, at int64)
	// ReplicatePersist reports a TTL cleared from key.
	ReplicatePersist(key string)
	// ReplicateFlushAll reports a committed whole-keyspace clear.
	ReplicateFlushAll()
}

// SetSink installs the replication sink. It must be called before the
// store serves traffic (the field is read without synchronization on
// the write path).
func (t *Tiered) SetSink(s OpSink) { t.sink = s }

// replicateBatch reports a batch mutation to the sink, one stripe group
// at a time under that stripe's RMW lock. entries==nil (or a nil value)
// means delete. Called only after the batch committed.
func (t *Tiered) replicateBatch(keys []string, entries map[string][]byte) {
	if t.sink == nil {
		return
	}
	t.eng.GroupKeysByShard(keys, func(si int, group []string) {
		mu := &t.rmw[si]
		mu.Lock()
		for _, k := range group {
			if v, ok := entries[k]; ok && v != nil {
				t.sink.ReplicateSet(k, v, false)
			} else {
				t.sink.ReplicateDelete(k)
			}
		}
		mu.Unlock()
	})
}
