package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"tierbase/internal/engine"
)

// Write-path tests: the striped write-through queues, the striped
// write-back dirty set with per-stripe backpressure, and the unified
// batch ordering (BatchPut/BatchDelete through the per-key queues).

// otherStripeKey returns a key whose engine stripe differs from ref's.
func otherStripeKey(t *testing.T, eng *engine.Engine, ref string) string {
	t.Helper()
	want := eng.ShardIndex(ref)
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("probe:%d", i)
		if eng.ShardIndex(k) != want {
			return k
		}
	}
	t.Fatal("no key on another stripe found")
	return ""
}

// sameStripeKeys returns n distinct keys on ref's engine stripe.
func sameStripeKeys(t *testing.T, eng *engine.Engine, ref string, n int) []string {
	t.Helper()
	want := eng.ShardIndex(ref)
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		k := fmt.Sprintf("same:%d", i)
		if eng.ShardIndex(k) == want {
			out = append(out, k)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d keys on stripe %d", len(out), n, want)
	}
	return out
}

// TestWTBatchPiggybacksOnInflightLeader: a BatchPut containing a key with
// an in-flight single-key leader must queue behind that leader — its
// value lands in storage AFTER the leader's, so the batch's ack is never
// stale. Under the old bypass the batch wrote storage immediately and the
// slower leader could overwrite it with the older value.
func TestWTBatchPiggybacksOnInflightLeader(t *testing.T) {
	stor := NewMapStorage()
	slow := NewRemote(stor, 3*time.Millisecond)
	tr, err := New(Options{Policy: WriteThrough, Engine: engine.New(engine.Options{}), Storage: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr.Set("hot", []byte("leader")) // in flight for ~3 ms
	}()
	time.Sleep(time.Millisecond) // let the leader take the queue
	if err := tr.BatchPut(map[string][]byte{
		"hot":   []byte("batch"),
		"other": []byte("x"),
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The batch acked after piggybacking, so its value must be final.
	v, _, _ := stor.Get("hot")
	if string(v) != "batch" {
		t.Fatalf("storage holds %q; batch ack was stale", v)
	}
	cv, _ := tr.Engine().Get("hot")
	if !bytes.Equal(cv, v) {
		t.Fatalf("cache %q diverged from storage %q", cv, v)
	}
}

// TestWTBatchLedKeysOneRoundTrip: keys without an in-flight leader must
// commit in exactly one storage round trip per BatchPut call.
func TestWTBatchLedKeysOneRoundTrip(t *testing.T) {
	stor := NewMapStorage()
	remote := NewRemote(stor, 0)
	tr, err := New(Options{Policy: WriteThrough, Engine: engine.New(engine.Options{}), Storage: remote})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	entries := make(map[string][]byte, 32)
	for i := 0; i < 32; i++ {
		entries[fmt.Sprintf("k%02d", i)] = []byte("v")
	}
	if err := tr.BatchPut(entries); err != nil {
		t.Fatal(err)
	}
	st := remote.Stats()
	if st.BatchPuts != 1 || st.Puts != 0 {
		t.Fatalf("32 fresh keys: %d BatchPuts, %d Puts; want 1, 0", st.BatchPuts, st.Puts)
	}
	// Multi-key BatchDelete of uncontended keys: one BatchDelete round
	// trip (plus nothing per key).
	keys := make([]string, 0, 32)
	for k := range entries {
		keys = append(keys, k)
	}
	if _, err := tr.BatchDelete(keys); err != nil {
		t.Fatal(err)
	}
	st = remote.Stats()
	if st.BatchDels != 1 || st.Deletes != 0 {
		t.Fatalf("batch delete: %d BatchDels, %d Deletes; want 1, 0", st.BatchDels, st.Deletes)
	}
}

// TestWTSetVsBatchPutOrderingStress interleaves Set(k)/Del(k) with
// BatchPut{k}/BatchDelete{k} under -race. After every round quiesces, the
// cache tier and the storage tier must agree on k — the old bypass let
// them diverge permanently (storage holding one acked write, cache the
// other), which is exactly the "older acked value" bug.
func TestWTSetVsBatchPutOrderingStress(t *testing.T) {
	stor := NewMapStorage()
	slow := NewRemote(stor, 200*time.Microsecond) // widen the race window
	tr, err := New(Options{Policy: WriteThrough, Engine: engine.New(engine.Options{}), Storage: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		setVal := []byte(fmt.Sprintf("set-%03d", r))
		batchVal := []byte(fmt.Sprintf("batch-%03d", r))
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := tr.Set("contended", setVal); err != nil {
				t.Errorf("set: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			err := tr.BatchPut(map[string][]byte{
				"contended": batchVal,
				"bystander": []byte("b"),
			})
			if err != nil {
				t.Errorf("batch: %v", err)
			}
		}()
		if r%3 == 2 {
			wg.Add(2)
			go func() {
				defer wg.Done()
				if err := tr.Delete("contended"); err != nil {
					t.Errorf("del: %v", err)
				}
			}()
			go func() {
				defer wg.Done()
				if _, err := tr.BatchDelete([]string{"contended"}); err != nil {
					t.Errorf("batchdel: %v", err)
				}
			}()
		}
		wg.Wait()
		// Quiesced: every op acked, no writer in flight. The tiers must
		// agree — a mismatch means some acked write reached one tier but
		// was overwritten by an OLDER acked write in the other.
		sv, sok, _ := stor.Get("contended")
		cv, cerr := tr.Engine().Get("contended")
		cok := cerr == nil
		if sok != cok {
			t.Fatalf("round %d: presence diverged: storage ok=%v cache ok=%v", r, sok, cok)
		}
		if sok && !bytes.Equal(sv, cv) {
			t.Fatalf("round %d: storage %q != cache %q", r, sv, cv)
		}
		if sok && string(sv) != string(setVal) && string(sv) != string(batchVal) {
			t.Fatalf("round %d: storage holds %q, not a value acked this round", r, sv)
		}
	}
}

// TestWTBatchMixedStress hammers one small keyspace with every write-path
// entry point at once (Set, Delete, BatchPut, BatchDelete, BatchGet) and
// then checks full cache/storage convergence — the -race workout for the
// unified queue admission and grouped leader completion.
func TestWTBatchMixedStress(t *testing.T) {
	stor := NewMapStorage()
	tr, err := New(Options{Policy: WriteThrough, Engine: engine.New(engine.Options{}), Storage: stor})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const keyspace = 16
	key := func(i int) string { return fmt.Sprintf("k%02d", i%keyspace) }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				switch (g + i) % 5 {
				case 0:
					tr.Set(key(i), []byte(fmt.Sprintf("s%d-%d", g, i)))
				case 1:
					tr.Delete(key(i))
				case 2:
					tr.BatchPut(map[string][]byte{
						key(i):     []byte(fmt.Sprintf("b%d-%d", g, i)),
						key(i + 1): []byte("x"),
						key(i + 7): nil, // batch-embedded delete
					})
				case 3:
					tr.BatchDelete([]string{key(i), key(i + 3)})
				case 4:
					tr.BatchGet([]string{key(i), key(i + 1), key(i + 2)})
				}
			}
		}(g)
	}
	wg.Wait()
	// Quiesced: tiers must agree on every key.
	for i := 0; i < keyspace; i++ {
		k := key(i)
		sv, sok, _ := stor.Get(k)
		cv, cerr := tr.Engine().Get(k)
		cok := cerr == nil
		if sok != cok {
			t.Fatalf("%s: presence diverged: storage=%v cache=%v", k, sok, cok)
		}
		if sok && !bytes.Equal(sv, cv) {
			t.Fatalf("%s: storage %q != cache %q", k, sv, cv)
		}
	}
}

// TestWBPerStripeBackpressureIsolation: a saturated stripe must block its
// own writers without blocking writers on other stripes — the striped
// replacement for the one-big-dirty-set backpressure.
func TestWBPerStripeBackpressureIsolation(t *testing.T) {
	stor := NewMapStorage()
	stor.FailPuts.Store(true) // flushes fail: dirty entries cannot drain
	eng := engine.New(engine.Options{Shards: 4})
	tr, err := New(Options{
		Policy: WriteBack, Engine: eng, Storage: stor,
		MaxDirty:      8, // per-stripe budget: ceil(8/4) = 2
		FlushBatch:    4,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		stor.FailPuts.Store(false) // let Close's final flush succeed
		tr.Close()
	}()

	hot := sameStripeKeys(t, eng, "ref", 3)
	// Saturate hot's stripe (budget 2).
	for _, k := range hot[:2] {
		if err := tr.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// A writer on the saturated stripe must block...
	blocked := make(chan error, 1)
	go func() { blocked <- tr.Set(hot[2], []byte("v")) }()
	select {
	case err := <-blocked:
		t.Fatalf("write to saturated stripe did not block (err=%v)", err)
	case <-time.After(30 * time.Millisecond):
	}

	// ...while a writer on ANY other stripe proceeds immediately.
	cold := otherStripeKey(t, eng, hot[0])
	done := make(chan error, 1)
	go func() { done <- tr.Set(cold, []byte("v")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("other-stripe write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write on an unrelated stripe blocked behind a saturated stripe")
	}
	if tr.Stats().BackpressureWaits == 0 {
		t.Fatal("backpressure wait not counted")
	}

	// Once storage recovers and the stripe flushes, ONLY then does the
	// blocked writer complete.
	stor.FailPuts.Store(false)
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("blocked writer failed after flush: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked writer never released after its stripe drained")
	}
}

// TestWBDirtyStripesSumToStats: the per-stripe dirty counts (the INFO
// writepath payload) must agree with the aggregate.
func TestWBDirtyStripesSumToStats(t *testing.T) {
	stor := NewMapStorage()
	tr := newWB(t, stor, func(o *Options) {
		o.FlushInterval = time.Hour
		o.FlushBatch = 1 << 20
		o.MaxDirty = 1 << 20
	})
	for i := 0; i < 64; i++ {
		tr.Set(fmt.Sprintf("k%02d", i), []byte("v"))
	}
	sum := 0
	for _, n := range tr.DirtyStripes() {
		sum += n
	}
	if st := tr.Stats(); sum != st.Dirty || st.Dirty != 64 {
		t.Fatalf("stripe sum %d, Stats.Dirty %d, want 64", sum, st.Dirty)
	}
	if tr.WriteStripes() != tr.Engine().NumShards() {
		t.Fatalf("write stripes %d != engine shards %d", tr.WriteStripes(), tr.Engine().NumShards())
	}
}

// TestWBBatchPutPerStripeBackpressure: write-back batches must respect
// stripe budgets too (admitted group by group, not all at once past a
// full stripe).
func TestWBBatchPutPerStripeBackpressure(t *testing.T) {
	stor := NewMapStorage()
	tr := newWB(t, stor, func(o *Options) {
		o.MaxDirty = 8
		o.FlushBatch = 4
		o.FlushInterval = time.Millisecond
	})
	// 200 keys through BatchPut in chunks; backpressure must keep the
	// dirty set bounded near the stripe budgets rather than ballooning.
	for i := 0; i < 200; i += 10 {
		entries := make(map[string][]byte, 10)
		for j := i; j < i+10; j++ {
			entries[fmt.Sprintf("k%03d", j)] = []byte("v")
		}
		if err := tr.BatchPut(entries); err != nil {
			t.Fatal(err)
		}
	}
	// Bound: per-stripe budget ceil(8/16)=1, 16 stripes, plus one
	// in-flight group of up to 10 per stripe admission. Far below 200.
	if d := tr.Stats().Dirty; d > 40 {
		t.Fatalf("batch writes ballooned the dirty set: %d", d)
	}
}

// TestWTCoalescingStripesIndependent: stripes stay independent after
// SET learned to hold its RMW stripe lock through the storage commit
// (strict per-key ordering for replication): hot writers on one stripe
// serialize among themselves, but never block writers on another
// stripe, and cache/storage stay consistent per key.
//
// Note concurrent same-key plain SETs no longer coalesce into one
// storage round trip — that coalescing window was exactly the ordering
// gap (a SET racing an RMW op could reach storage out of engine order).
// Batch writes still piggyback on in-flight leaders (see
// TestWTBatchPiggybacksOnInflightLeader).
func TestWTCoalescingStripesIndependent(t *testing.T) {
	stor := NewMapStorage()
	slow := NewRemote(stor, 2*time.Millisecond)
	eng := engine.New(engine.Options{})
	tr, err := New(Options{Policy: WriteThrough, Engine: eng, Storage: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	hotA := "hot-a"
	hotB := otherStripeKey(t, eng, hotA)

	// Hold stripe A's RMW lock hostage; stripe B writes must not care.
	release := make(chan struct{})
	held := make(chan struct{})
	go func() {
		_ = tr.Locked(hotA, func() error {
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	done := make(chan error, 1)
	go func() { done <- tr.Set(hotB, []byte("b-while-a-locked")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stripe-B set: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stripe-B set blocked behind stripe-A RMW lock")
	}
	close(release)

	var wg sync.WaitGroup
	const writers = 16
	for i := 0; i < writers; i++ {
		for _, k := range []string{hotA, hotB} {
			wg.Add(1)
			go func(k string, i int) {
				defer wg.Done()
				if err := tr.Set(k, []byte(fmt.Sprintf("v%02d", i))); err != nil {
					t.Errorf("set: %v", err)
				}
			}(k, i)
		}
	}
	wg.Wait()
	for _, k := range []string{hotA, hotB} {
		cv, _ := tr.Get(k)
		sv, _, _ := stor.Get(k)
		if !bytes.Equal(cv, sv) {
			t.Fatalf("%s: cache %q != storage %q", k, cv, sv)
		}
	}
}
