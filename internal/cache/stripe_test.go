package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"tierbase/internal/engine"
	"tierbase/internal/lsm"
)

// Tests for the striped LRU (per-shard eviction), the (value, ok) storage
// contract (present-empty round trips), and tiered BatchDelete counts.

// TestStripedEvictionConcurrentBatchPut churns capacity across stripes
// from many goroutines (meaningful under -race): eviction bookkeeping is
// per-stripe, so concurrent batches must neither trample the LRU nor let
// the cache grow past its budget.
func TestStripedEvictionConcurrentBatchPut(t *testing.T) {
	stor := NewMapStorage()
	eng := engine.New(engine.Options{})
	tr, err := New(Options{
		Policy: WriteThrough, Engine: eng, Storage: stor,
		CacheCapacityBytes: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	val := bytes.Repeat([]byte("x"), 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				entries := make(map[string][]byte, 16)
				for j := 0; j < 16; j++ {
					entries[fmt.Sprintf("churn:%04d", (g*997+i*16+j)%2048)] = val
				}
				if err := tr.BatchPut(entries); err != nil {
					t.Errorf("batchput: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Quiescent now: every stripe must fit its budget (stripes sum to at
	// most capacity + one ceil-rounding per stripe).
	slack := int64(eng.NumShards())
	if used := eng.MemUsed(); used > tr.opts.CacheCapacityBytes+slack {
		t.Fatalf("cache over capacity after churn: %d > %d", used, tr.opts.CacheCapacityBytes)
	}
	if tr.Stats().Evictions == 0 {
		t.Fatal("no evictions under capacity churn")
	}
	// Evicted keys must still be readable through the storage tier.
	for _, k := range []string{"churn:0000", "churn:1024", "churn:2047"} {
		if v, err := tr.Get(k); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("evicted key %s lost: %v", k, err)
		}
	}
}

// TestStripedEvictionIsPerStripe pins keys to specific stripes and checks
// that filling one stripe past its budget evicts only there, leaving
// other stripes' residents alone — the property the global LRU could not
// give without serializing every hit.
func TestStripedEvictionIsPerStripe(t *testing.T) {
	stor := NewMapStorage()
	eng := engine.New(engine.Options{})
	tr, err := New(Options{
		Policy: WriteThrough, Engine: eng, Storage: stor,
		CacheCapacityBytes: 64 << 10, // per-stripe budget: 4 KiB over 16 stripes
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// One resident key per distinct stripe, small enough to stay.
	victims := map[int]string{}
	for i := 0; len(victims) < eng.NumShards() && i < 4096; i++ {
		k := fmt.Sprintf("resident:%04d", i)
		if si := eng.ShardIndex(k); victims[si] == "" {
			victims[si] = k
			tr.Set(k, []byte("small"))
		}
	}
	// Now flood a single stripe far past its budget.
	hot := eng.ShardIndex("resident:0000")
	big := bytes.Repeat([]byte("y"), 512)
	flooded := 0
	for i := 0; flooded < 32 && i < 65536; i++ {
		k := fmt.Sprintf("flood:%06d", i)
		if eng.ShardIndex(k) != hot {
			continue
		}
		flooded++
		tr.Set(k, big)
	}
	if tr.Stats().Evictions == 0 {
		t.Fatal("flooded stripe did not evict")
	}
	// Every resident on a non-flooded stripe must still be cache-resident.
	for si, k := range victims {
		if si == hot {
			continue
		}
		if _, err := eng.Get(k); err != nil {
			t.Fatalf("stripe %d resident %s evicted by stripe %d's pressure", si, k, hot)
		}
	}
}

// TestEmptyValueColdRoundTrip is the regression test for the (value, ok)
// storage contract: SET k "" followed by a cache flush and a cold read
// must return the empty string, not absent, through every tier.
func TestEmptyValueColdRoundTrip(t *testing.T) {
	t.Run("write-through", func(t *testing.T) {
		tr := newWT(t, NewMapStorage())
		testEmptyColdRead(t, tr, func() {})
	})
	t.Run("write-back", func(t *testing.T) {
		tr := newWB(t, NewMapStorage())
		testEmptyColdRead(t, tr, func() {
			if err := tr.FlushDirty(); err != nil {
				t.Fatal(err)
			}
		})
	})
	t.Run("write-through-lsm", func(t *testing.T) {
		db, err := lsm.Open(lsm.Options{Dir: t.TempDir(), DisableWAL: true})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		tr := newWT(t, NewLSMStorage(db))
		testEmptyColdRead(t, tr, func() {})
	})
}

func testEmptyColdRead(t *testing.T, tr *Tiered, sync func()) {
	t.Helper()
	if err := tr.Set("empty", []byte{}); err != nil {
		t.Fatal(err)
	}
	sync()                 // write-back: reach storage first
	tr.Engine().FlushAll() // go cold: force the storage round trip
	v, err := tr.Get("empty")
	if err != nil {
		t.Fatalf("present-empty degraded to absent: %v", err)
	}
	if v == nil || len(v) != 0 {
		t.Fatalf("want non-nil empty, got %#v", v)
	}
	// Batch path must agree: present-empty is non-nil, absent is nil.
	tr.Engine().FlushAll()
	got, err := tr.BatchGet([]string{"empty", "absent"})
	if err != nil {
		t.Fatal(err)
	}
	if got["empty"] == nil || len(got["empty"]) != 0 {
		t.Fatalf("batch present-empty: %#v", got["empty"])
	}
	if got["absent"] != nil {
		t.Fatalf("batch absent: %#v", got["absent"])
	}
}

// TestBatchDeleteCountsAllTiers: the DEL count must include keys the
// cache no longer holds but storage does, cost one existence round trip,
// and delete everything in one storage round trip.
func TestBatchDeleteCountsAllTiers(t *testing.T) {
	stor := NewMapStorage()
	stor.Put("cold", []byte("storage-only"))
	remote := NewRemote(stor, 0)
	tr := newWT(t, remote)
	if err := tr.Set("warm", []byte("cached")); err != nil {
		t.Fatal(err)
	}
	before := remote.Stats()
	n, err := tr.BatchDelete([]string{"warm", "cold", "nope", "warm"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("deleted count %d, want 2 (warm + cold; nope absent, warm duplicate)", n)
	}
	after := remote.Stats()
	if rpcs := after.BatchDels - before.BatchDels; rpcs != 1 {
		t.Fatalf("%d BatchDelete round trips, want 1", rpcs)
	}
	if after.Deletes != before.Deletes {
		t.Fatalf("batch path issued %d single Deletes", after.Deletes-before.Deletes)
	}
	// Existence for cache-missing keys costs exactly one BatchGet.
	if rpcs := after.BatchGets - before.BatchGets; rpcs != 1 {
		t.Fatalf("%d existence round trips, want 1", rpcs)
	}
	for _, k := range []string{"warm", "cold"} {
		if _, ok, _ := stor.Get(k); ok {
			t.Fatalf("%s still in storage", k)
		}
		if _, err := tr.Get(k); err != ErrNotFound {
			t.Fatalf("%s still readable: %v", k, err)
		}
	}
}

// TestBatchDeleteWriteBack: dirty values count, dirty tombstones don't,
// and the deletes propagate as tombstones on the next flush.
func TestBatchDeleteWriteBack(t *testing.T) {
	stor := NewMapStorage()
	stor.Put("cold", []byte("v"))
	stor.Put("gone", []byte("v"))
	tr := newWB(t, stor, func(o *Options) { o.FlushInterval = time.Hour; o.FlushBatch = 1000 })
	tr.Set("pending", []byte("unflushed"))
	tr.Delete("gone")      // tombstone: user-visibly deleted already
	tr.Engine().FlushAll() // drop cache so dirty state must be consulted
	n, err := tr.BatchDelete([]string{"pending", "cold", "gone", "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("deleted count %d, want 2 (pending dirty value + cold in storage)", n)
	}
	if err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"pending", "cold", "gone"} {
		if _, ok, _ := stor.Get(k); ok {
			t.Fatalf("%s survived flush", k)
		}
	}
}

// TestBatchDeleteCacheOnly counts live engine keys, collections included.
func TestBatchDeleteCacheOnly(t *testing.T) {
	tr := newTiered(t, CacheOnly, nil)
	tr.Set("s", []byte("v"))
	if _, err := tr.Engine().RPush("list", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n, err := tr.BatchDelete([]string{"s", "list", "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count %d, want 2", n)
	}
	if tr.Engine().Len() != 0 {
		t.Fatalf("%d keys left", tr.Engine().Len())
	}
}
