package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/engine"
)

// Adaptive-tiering tests: budget-stealing invariants under concurrency,
// the skew win over a static even split, hotspot-shift re-convergence,
// and hit-rate-targeted total sizing. Deterministic tests drive the
// rebalancer with RebalanceNow and a fake window clock; the stress test
// uses the real clock and the background loop.

// tierClock is a fake time source shared by every stripe's window
// counters, so tests control window decay instead of sleeping through it.
type tierClock struct{ ns atomic.Int64 }

func newTierClock() *tierClock {
	c := &tierClock{}
	c.ns.Store(1 << 40) // far from zero: slot epoch 0 means "never used"
	return c
}

func (c *tierClock) now() int64              { return c.ns.Load() }
func (c *tierClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// installTierClock must run before any traffic (SetClock is not atomic).
func installTierClock(t *Tiered, c *tierClock) {
	for _, st := range t.tier.stripes {
		st.winHits.SetClock(c.now)
		st.winMisses.SetClock(c.now)
	}
}

func adaptiveKey(i int64) string { return fmt.Sprintf("ad:%05d", i) }

// newSkewStore builds a write-through store over nKeys fixed-size values
// and returns it plus the measured per-key resident footprint. capKeys
// sizes the cache in units of that footprint.
func newSkewStore(t testing.TB, nKeys int, capKeys float64, adaptive bool) *Tiered {
	t.Helper()
	val := make([]byte, 128)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	// Measure the real per-key footprint on a scratch engine: budgets act
	// on engine-resident bytes, not logical value sizes.
	scratch := engine.New(engine.Options{Shards: 8})
	scratch.Set(adaptiveKey(0), val)
	perKey := scratch.Stats().MemBytes

	tr, err := New(Options{
		Policy:             WriteThrough,
		Engine:             engine.New(engine.Options{Shards: 8}),
		Storage:            NewMapStorage(),
		CacheCapacityBytes: int64(capKeys * float64(perKey)),
		AdaptiveTiering:    adaptive,
		RebalanceInterval:  time.Hour, // deterministic tests step via RebalanceNow
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	for i := 0; i < nKeys; i++ {
		if err := tr.Set(adaptiveKey(int64(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// hotspotOp returns the next key index: p=0.95 uniform over the hot set
// starting at hotBase, else uniform over the whole space.
func hotspotOp(rng *rand.Rand, nKeys, hotBase, hotN int64) int64 {
	if rng.Float64() < 0.95 {
		return (hotBase + rng.Int63n(hotN)) % nKeys
	}
	return rng.Int63n(nKeys)
}

// TestAdaptiveBudgetInvariants hammers Get/Set/eviction while the
// background rebalancer and explicit RebalanceNow calls move budgets, and
// checks conservation (budgets sum to exactly the configured total — the
// rebalancer moves budget, never mints it) and the per-stripe floor.
// Run with -race: this is also the data-race gate for the sampling hooks
// and the live atomic budget targets.
func TestAdaptiveBudgetInvariants(t *testing.T) {
	val := make([]byte, 128)
	tr, err := New(Options{
		Policy:             WriteThrough,
		Engine:             engine.New(engine.Options{Shards: 8}),
		Storage:            NewMapStorage(),
		CacheCapacityBytes: 64 << 10,
		AdaptiveTiering:    true,
		RebalanceInterval:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	initial := tr.tier.capacity.Load()
	floor := tr.tier.floor
	// Hot set confined to one engine stripe, and larger than that stripe's
	// even-split budget: maximal per-stripe pressure differential, so the
	// rebalancer is guaranteed work while readers and writers hammer it.
	var hot []string
	for i := int64(0); len(hot) < 256; i++ {
		if k := adaptiveKey(i); tr.eng.ShardIndex(k) == 0 {
			hot = append(hot, k)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var k string
				if rng.Float64() < 0.95 {
					k = hot[rng.Intn(len(hot))]
				} else {
					k = adaptiveKey(rng.Int63n(2048))
				}
				if i%8 == 0 {
					tr.Set(k, val)
				} else {
					tr.Get(k)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tr.RebalanceNow()
		}
	}()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	var sum int64
	for i, st := range tr.tier.stripes {
		b := st.budget.Load()
		if b < floor {
			t.Errorf("stripe %d budget %d below floor %d", i, b, floor)
		}
		sum += b
	}
	if sum != initial {
		t.Errorf("budget not conserved: sum %d != initial %d", sum, initial)
	}
	if tr.TieringStats().Rebalances == 0 {
		t.Error("stress run never moved budget (workload should be skewed enough)")
	}
}

// runPhase drives rounds of opsPerRound reads (nextKey picks each key)
// with a rebalance round after each (when step is true) and returns the
// hit rate over the second half, past warmup/convergence.
func runPhase(tr *Tiered, clk *tierClock, rounds, opsPerRound int, step bool, nextKey func() string) float64 {
	var startHits, startReqs int64
	measureFrom := rounds / 2
	for r := 0; r < rounds; r++ {
		if r == measureFrom {
			s := tr.Stats()
			startHits, startReqs = s.Hits, s.Hits+s.Misses
		}
		for i := 0; i < opsPerRound; i++ {
			tr.Get(nextKey())
		}
		clk.advance(200 * time.Millisecond)
		if step {
			tr.RebalanceNow()
		}
	}
	s := tr.Stats()
	return float64(s.Hits-startHits) / float64(s.Hits+s.Misses-startReqs)
}

// runHotspotPhase is runPhase over a contiguous hot window at hotBase.
func runHotspotPhase(tr *Tiered, clk *tierClock, rng *rand.Rand, nKeys, hotBase, hotN int64, rounds, opsPerRound int, step bool) float64 {
	return runPhase(tr, clk, rounds, opsPerRound, step, func() string {
		return adaptiveKey(hotspotOp(rng, nKeys, hotBase, hotN))
	})
}

// TestAdaptiveBeatsStaticOnHotspot: the hot set collides onto two of the
// eight stripes — the placement skew a static even split cannot answer.
// Static leaves six stripes hoarding slack for cold traffic while the two
// hot stripes thrash; budget stealing must reclaim that slack and land a
// large hit-rate win on the same op sequence.
func TestAdaptiveBeatsStaticOnHotspot(t *testing.T) {
	const (
		nKeys   = 4096
		hotN    = 40 // ~20 hot keys on each of two stripes
		capKeys = 64 // even split: 8 keys of budget per stripe
		rounds  = 40
		perRnd  = 2048
	)
	run := func(adaptive bool) float64 {
		tr := newSkewStore(t, nKeys, capKeys, false) // rebalance stepped manually
		clk := newTierClock()
		installTierClock(tr, clk)
		var hot []string
		for i := int64(0); len(hot) < hotN; i++ {
			if k := adaptiveKey(i); tr.eng.ShardIndex(k) <= 1 {
				hot = append(hot, k)
			}
		}
		rng := rand.New(rand.NewSource(7))
		return runPhase(tr, clk, rounds, perRnd, adaptive, func() string {
			if rng.Float64() < 0.95 {
				return hot[rng.Intn(len(hot))]
			}
			return adaptiveKey(rng.Int63n(nKeys))
		})
	}
	static := run(false)
	adaptive := run(true)
	t.Logf("hotspot hit rate: static=%.4f adaptive=%.4f (delta %+.4f)", static, adaptive, adaptive-static)
	if adaptive < static+0.10 {
		t.Errorf("adaptive %.4f should beat static %.4f by >= 0.10", adaptive, static)
	}
}

// TestAdaptiveDoesNoHarmOnSpreadHotspot: the hot keys hash-spread evenly
// and capacity is tight (1.3x the hot set), so the static even split is
// already near-optimal and every stripe sits at its working-set knee —
// any steal starves its donor for more than the grant wins. The rollback
// guard must keep adaptive within noise of static instead of letting
// that starvation cascade.
func TestAdaptiveDoesNoHarmOnSpreadHotspot(t *testing.T) {
	const (
		nKeys   = 4096
		hotN    = 40
		capKeys = 52
		rounds  = 40
		perRnd  = 2048
	)
	run := func(adaptive bool) (float64, TieringStats) {
		tr := newSkewStore(t, nKeys, capKeys, false)
		clk := newTierClock()
		installTierClock(tr, clk)
		rng := rand.New(rand.NewSource(7))
		hr := runHotspotPhase(tr, clk, rng, nKeys, 0, hotN, rounds, perRnd, adaptive)
		return hr, tr.TieringStats()
	}
	static, _ := run(false)
	adaptive, ts := run(true)
	t.Logf("spread hotspot hit rate: static=%.4f adaptive=%.4f (delta %+.4f, %d rebalances, %d rollbacks)",
		static, adaptive, adaptive-static, ts.Rebalances, ts.Rollbacks)
	if adaptive < static-0.02 {
		t.Errorf("adaptive %.4f must stay within 0.02 of static %.4f on a spread hotspot", adaptive, static)
	}
}

// TestHotspotShiftReconverges: phase A concentrates the hot set on
// stripes 0-1, so convergence piles their budget high; then the hot set
// jumps to disjoint keys on stripes 6-7. Hit rate must recover to near
// its pre-shift level within a bounded number of rebalance rounds — the
// hysteresis (and the rollback guard's cooldown) must not pin the budget
// to the old hotspot, and the eviction nudge must free the stolen bytes.
func TestHotspotShiftReconverges(t *testing.T) {
	const (
		nKeys   = 4096
		hotN    = 40
		capKeys = 64
		perRnd  = 2048
		bound   = 24 // rounds allowed to re-converge after the shift
	)
	tr := newSkewStore(t, nKeys, capKeys, false)
	clk := newTierClock()
	installTierClock(tr, clk)
	rng := rand.New(rand.NewSource(9))

	hotOn := func(lo, hi int) []string {
		var hot []string
		for i := int64(0); len(hot) < hotN; i++ {
			k := adaptiveKey(i)
			if si := tr.eng.ShardIndex(k); si >= lo && si <= hi {
				hot = append(hot, k)
			}
		}
		return hot
	}
	pick := func(hot []string) func() string {
		return func() string {
			if rng.Float64() < 0.95 {
				return hot[rng.Intn(len(hot))]
			}
			return adaptiveKey(rng.Int63n(nKeys))
		}
	}

	before := runPhase(tr, clk, 40, perRnd, true, pick(hotOn(0, 1)))
	if before < 0.80 {
		t.Fatalf("phase A never converged: hit rate %.4f", before)
	}

	// Shift, then measure per-round hit rate until it recovers to within
	// 0.05 of the pre-shift level.
	next := pick(hotOn(6, 7))
	recovered := -1
	for r := 0; r < bound; r++ {
		s := tr.Stats()
		h0, m0 := s.Hits, s.Misses
		for i := 0; i < perRnd; i++ {
			tr.Get(next())
		}
		clk.advance(200 * time.Millisecond)
		tr.RebalanceNow()
		s = tr.Stats()
		hr := float64(s.Hits-h0) / float64(s.Hits-h0+s.Misses-m0)
		if hr >= before-0.05 {
			recovered = r
			break
		}
	}
	if recovered < 0 {
		t.Fatalf("hit rate did not re-converge within %d rounds after the shift (pre-shift %.4f)", bound, before)
	}
	t.Logf("re-converged %d rounds after the shift (pre-shift hit rate %.4f)", recovered+1, before)
}

// TestAdaptiveSizingTracksTargetHitRate: with TargetHitRate set, a
// miss-heavy window grows the total budget toward the ceiling and a
// hit-heavy window shrinks it toward the floor, with stripe budgets
// always summing to the live capacity.
func TestAdaptiveSizingTracksTargetHitRate(t *testing.T) {
	val := make([]byte, 128)
	base := int64(32 << 10)
	tr, err := New(Options{
		Policy:             WriteThrough,
		Engine:             engine.New(engine.Options{Shards: 8}),
		Storage:            NewMapStorage(),
		CacheCapacityBytes: base,
		AdaptiveTiering:    false, // stepped manually
		RebalanceInterval:  time.Hour,
		TargetHitRate:      0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	clk := newTierClock()
	installTierClock(tr, clk)

	checkSum := func(when string) {
		var sum int64
		for _, st := range tr.tier.stripes {
			sum += st.budget.Load()
		}
		if got := tr.tier.capacity.Load(); sum != got {
			t.Fatalf("%s: stripe budgets sum %d != capacity %d", when, sum, got)
		}
	}

	// Miss-heavy: read keys that exist nowhere. Every read is a miss.
	for i := 0; i < 256; i++ {
		tr.Get(adaptiveKey(int64(100000 + i)))
	}
	for i := 0; i < 4; i++ {
		tr.RebalanceNow()
	}
	grown := tr.tier.capacity.Load()
	if grown <= base {
		t.Fatalf("capacity did not grow under misses: %d <= %d", grown, base)
	}
	if max := tr.opts.MaxCapacityBytes; grown > max {
		t.Fatalf("capacity %d above ceiling %d", grown, max)
	}
	checkSum("after growth")

	// Let the miss window decay, then serve pure hits.
	clk.advance(3 * time.Second)
	tr.Set(adaptiveKey(1), val)
	for i := 0; i < 256; i++ {
		tr.Get(adaptiveKey(1))
	}
	for i := 0; i < 16; i++ {
		tr.RebalanceNow()
	}
	shrunk := tr.tier.capacity.Load()
	if shrunk >= grown {
		t.Fatalf("capacity did not shrink under pure hits: %d >= %d", shrunk, grown)
	}
	if min := tr.opts.MinCapacityBytes; shrunk < min {
		t.Fatalf("capacity %d below floor %d", shrunk, min)
	}
	for i, st := range tr.tier.stripes {
		if b := st.budget.Load(); b < tr.tier.floor {
			t.Fatalf("stripe %d budget %d below floor %d after shrink", i, b, tr.tier.floor)
		}
	}
	checkSum("after shrink")
	st := tr.TieringStats()
	if st.Grows == 0 || st.Shrinks == 0 {
		t.Fatalf("sizing counters: grows=%d shrinks=%d", st.Grows, st.Shrinks)
	}
}

// TestTieringStatsShape: the snapshot reports one entry per engine
// stripe with live budgets, and unbounded stores report zero capacity
// with no rebalancer.
func TestTieringStatsShape(t *testing.T) {
	tr := newSkewStore(t, 64, 32, true)
	st := tr.TieringStats()
	if !st.Adaptive {
		t.Error("adaptive store should report Adaptive")
	}
	if len(st.Stripes) != tr.eng.NumShards() {
		t.Fatalf("stripes %d != shards %d", len(st.Stripes), tr.eng.NumShards())
	}
	if st.CapacityBytes <= 0 || st.FloorBytes <= 0 || st.StepBytes <= 0 {
		t.Errorf("bounded store should report capacity/floor/step, got %+v", st)
	}

	unb, err := New(Options{Policy: CacheOnly, Engine: engine.New(engine.Options{Shards: 4})})
	if err != nil {
		t.Fatal(err)
	}
	defer unb.Close()
	unb.Set("k", []byte("v"))
	unb.Get("k")
	ust := unb.TieringStats()
	if ust.Adaptive || ust.CapacityBytes != 0 {
		t.Errorf("unbounded store: %+v", ust)
	}
	if unb.RebalanceNow() != 0 {
		t.Error("unbounded store must not rebalance")
	}
	if ust.Stripes[unb.eng.ShardIndex("k")].WindowHits == 0 {
		t.Error("sampling should run even unbounded (INFO reports it)")
	}
}
