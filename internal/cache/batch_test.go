package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"tierbase/internal/engine"
)

func newTiered(t *testing.T, policy Policy, stor Storage) *Tiered {
	t.Helper()
	tr, err := New(Options{Policy: policy, Engine: engine.New(engine.Options{}), Storage: stor})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestBatchGetCacheOnly(t *testing.T) {
	tr := newTiered(t, CacheOnly, nil)
	tr.Set("a", []byte("1"))
	tr.Set("b", []byte("2"))
	got, err := tr.BatchGet([]string{"a", "b", "missing", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got["a"]) != "1" || string(got["b"]) != "2" || got["missing"] != nil {
		t.Fatalf("got %q", got)
	}
}

func TestBatchGetFetchesMissesInOneRoundTrip(t *testing.T) {
	stor := NewMapStorage()
	remote := NewRemote(stor, 0)
	tr := newTiered(t, WriteThrough, remote)
	for i := 0; i < 8; i++ {
		stor.Put(fmt.Sprintf("s%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	tr.Set("cached", []byte("warm"))

	keys := []string{"cached"}
	for i := 0; i < 8; i++ {
		keys = append(keys, fmt.Sprintf("s%d", i))
	}
	keys = append(keys, "absent")
	before := remote.Stats()
	got, err := tr.BatchGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	after := remote.Stats()
	if string(got["cached"]) != "warm" || string(got["s3"]) != "v3" || got["absent"] != nil {
		t.Fatalf("got %q", got)
	}
	// The 9 misses must cost exactly one storage round trip, no
	// single-key Gets.
	if rpcs := after.BatchGets - before.BatchGets; rpcs != 1 {
		t.Fatalf("%d BatchGet round trips, want 1", rpcs)
	}
	if after.Gets != before.Gets {
		t.Fatalf("batch path issued %d single Gets", after.Gets-before.Gets)
	}
	// Fetched values must now be cache-resident.
	if v, err := tr.Engine().Get("s5"); err != nil || string(v) != "v5" {
		t.Fatalf("s5 not admitted: %q %v", v, err)
	}
}

func TestBatchGetWriteBackDirtyShadowsStorage(t *testing.T) {
	stor := NewMapStorage()
	stor.Put("stale", []byte("old"))
	stor.Put("gone", []byte("zombie"))
	tr := newTiered(t, WriteBack, stor)
	tr.Set("stale", []byte("new"))
	tr.Delete("gone")
	// Drop both from the cache tier so BatchGet must consult dirty state.
	tr.Engine().FlushAll()

	got, err := tr.BatchGet([]string{"stale", "gone"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got["stale"]) != "new" {
		t.Fatalf("dirty value lost: %q", got["stale"])
	}
	if got["gone"] != nil {
		t.Fatalf("tombstone ignored: %q", got["gone"])
	}
}

func TestBatchPutWriteThrough(t *testing.T) {
	stor := NewMapStorage()
	remote := NewRemote(stor, 0)
	tr := newTiered(t, WriteThrough, remote)
	tr.Set("del-me", []byte("x"))

	entries := map[string][]byte{
		"a":      []byte("1"),
		"b":      []byte("2"),
		"del-me": nil,
	}
	if err := tr.BatchPut(entries); err != nil {
		t.Fatal(err)
	}
	if remote.Stats().BatchPuts != 1 || remote.Stats().Puts != 1 { // 1 Put from the seed Set
		t.Fatalf("rpc stats %+v", remote.Stats())
	}
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		if v, ok, err := stor.Get(k); err != nil || !ok || string(v) != want {
			t.Fatalf("storage %s: %q %v %v", k, v, ok, err)
		}
		if v, err := tr.Get(k); err != nil || string(v) != want {
			t.Fatalf("cache %s: %q %v", k, v, err)
		}
	}
	if _, ok, _ := stor.Get("del-me"); ok {
		t.Fatal("nil value must delete from storage")
	}
	if _, err := tr.Get("del-me"); err != ErrNotFound {
		t.Fatal("nil value must delete from cache")
	}
}

func TestBatchPutWriteThroughFailureInvalidates(t *testing.T) {
	stor := NewMapStorage()
	tr := newTiered(t, WriteThrough, stor)
	tr.Set("k", []byte("old"))
	stor.FailPuts.Store(true)
	if err := tr.BatchPut(map[string][]byte{"k": []byte("new")}); err == nil {
		t.Fatal("want error")
	}
	stor.FailPuts.Store(false)
	// The failed batch must invalidate, not leave the new value cached.
	v, err := tr.Get("k")
	if err != nil || string(v) != "old" {
		t.Fatalf("after failed batch: %q %v", v, err)
	}
}

func TestBatchPutWriteBackFlushes(t *testing.T) {
	stor := NewMapStorage()
	tr := newTiered(t, WriteBack, stor)
	entries := make(map[string][]byte)
	for i := 0; i < 20; i++ {
		entries[fmt.Sprintf("k%d", i)] = []byte(fmt.Sprintf("v%d", i))
	}
	if err := tr.BatchPut(entries); err != nil {
		t.Fatal(err)
	}
	// Acked from cache immediately.
	if v, err := tr.Get("k7"); err != nil || string(v) != "v7" {
		t.Fatalf("cache read: %q %v", v, err)
	}
	if err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if stor.Len() != 20 {
		t.Fatalf("storage has %d keys, want 20", stor.Len())
	}
	if v, _, _ := stor.Get("k7"); string(v) != "v7" {
		t.Fatalf("storage value %q", v)
	}
}

// TestSingleflightCoalescesMisses hammers one cold key from many
// goroutines; the singleflight must collapse them into ~1 storage read.
func TestSingleflightCoalescesMisses(t *testing.T) {
	stor := NewMapStorage()
	stor.Put("cold", []byte("v"))
	remote := NewRemote(stor, time.Millisecond)
	tr := newTiered(t, WriteThrough, remote)

	const readers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := tr.Get("cold")
			if err != nil || !bytes.Equal(v, []byte("v")) {
				t.Errorf("get: %q %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	// Every reader resolves via exactly one of: the leader's storage get,
	// a coalesced flight wait, or a cache hit after admission. Whatever
	// the interleaving, round trips must be strictly fewer than readers.
	gets := remote.Stats().Gets
	shared := tr.Stats().Shared
	hits := tr.Stats().Hits
	if gets >= readers {
		t.Fatalf("no coalescing: %d storage gets for %d readers", gets, readers)
	}
	if gets+shared+hits < readers {
		t.Fatalf("gets=%d shared=%d hits=%d don't cover %d readers", gets, shared, hits, readers)
	}
}

// TestSingleflightNotFound ensures coalesced waiters observe ErrNotFound
// rather than a zero value when the leader's fetch misses storage.
func TestSingleflightNotFound(t *testing.T) {
	stor := NewMapStorage()
	tr := newTiered(t, WriteThrough, stor)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := tr.Get("nope"); err != ErrNotFound {
				t.Errorf("want ErrNotFound, got %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestBatchGetConcurrentWithRace exercises BatchGet/BatchPut/Get/Set from
// many goroutines (meaningful under -race).
func TestBatchConcurrentStress(t *testing.T) {
	stor := NewMapStorage()
	tr := newTiered(t, WriteBack, stor)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k1 := fmt.Sprintf("k%d", i%32)
				k2 := fmt.Sprintf("k%d", (i+7)%32)
				switch g % 4 {
				case 0:
					tr.BatchPut(map[string][]byte{k1: []byte("a"), k2: []byte("b")})
				case 1:
					tr.BatchGet([]string{k1, k2})
				case 2:
					tr.Set(k1, []byte("c"))
				case 3:
					tr.Get(k2)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchGetWrongTypeNotClobbered: a wrong-typed cache key must report
// nil (Redis MGET) but must NOT be treated as a miss — a storage fetch
// would overwrite the live collection with stale bytes.
func TestBatchGetWrongTypeNotClobbered(t *testing.T) {
	stor := NewMapStorage()
	stor.Put("k", []byte("stale-string"))
	remote := NewRemote(stor, 0)
	tr := newTiered(t, WriteThrough, remote)
	// The key now holds a list in the engine (server routes collection
	// commands straight to the engine even in tiered mode).
	if _, err := tr.Engine().RPush("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.BatchGet([]string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if got["k"] != nil {
		t.Fatalf("wrong-typed key should report nil, got %q", got["k"])
	}
	if remote.Stats().BatchGets != 0 {
		t.Fatal("wrong-typed key must not trigger a storage fetch")
	}
	if tr.Engine().Type("k") != engine.KindList {
		t.Fatal("BatchGet clobbered the live list with storage data")
	}
	if n, _ := tr.Engine().LLen("k"); n != 1 {
		t.Fatalf("list damaged: len %d", n)
	}
}
