package cache

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/engine"
)

// flakyStorage wraps MapStorage with togglable read/write failures —
// the in-package stand-in for the faults package (which imports cache
// and so can't be used here).
type flakyStorage struct {
	*MapStorage
	failReads  atomic.Bool
	failWrites atomic.Bool
	errInject  error
}

var errFlaky = errors.New("flaky: injected")

func newFlakyStorage() *flakyStorage {
	return &flakyStorage{MapStorage: NewMapStorage(), errInject: errFlaky}
}

func (f *flakyStorage) Get(key string) ([]byte, bool, error) {
	if f.failReads.Load() {
		return nil, false, f.errInject
	}
	return f.MapStorage.Get(key)
}

func (f *flakyStorage) BatchGet(keys []string) (map[string][]byte, error) {
	if f.failReads.Load() {
		return nil, f.errInject
	}
	return f.MapStorage.BatchGet(keys)
}

func (f *flakyStorage) Put(key string, val []byte) error {
	if f.failWrites.Load() {
		return f.errInject
	}
	return f.MapStorage.Put(key, val)
}

func (f *flakyStorage) BatchPut(entries map[string][]byte) error {
	if f.failWrites.Load() {
		return f.errInject
	}
	return f.MapStorage.BatchPut(entries)
}

func TestRetryStorageRetriesTransientFailure(t *testing.T) {
	st := newFlakyStorage()
	st.Put("cold", []byte("v"))
	var calls atomic.Int64
	// Fail exactly the first attempt: the retry must succeed.
	failing := &countingStorage{inner: st, calls: &calls, failFirst: 1}
	ts, err := New(Options{
		Policy:              WriteThrough,
		Engine:              engine.New(engine.Options{}),
		Storage:             failing,
		StorageRetries:      2,
		StorageRetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	v, err := ts.Get("cold")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get after transient failure = %q, %v", v, err)
	}
	h := ts.Health()
	if h.StorageErrors != 1 || h.StorageRetries != 1 || h.Degraded {
		t.Fatalf("health after one retried blip: %+v", h)
	}
}

// countingStorage fails the first failFirst calls, then delegates.
type countingStorage struct {
	inner     Storage
	calls     *atomic.Int64
	failFirst int64
}

func (c *countingStorage) gate() error {
	if c.calls.Add(1) <= c.failFirst {
		return errFlaky
	}
	return nil
}

func (c *countingStorage) Get(key string) ([]byte, bool, error) {
	if err := c.gate(); err != nil {
		return nil, false, err
	}
	return c.inner.Get(key)
}
func (c *countingStorage) Put(key string, val []byte) error {
	if err := c.gate(); err != nil {
		return err
	}
	return c.inner.Put(key, val)
}
func (c *countingStorage) Delete(key string) error {
	if err := c.gate(); err != nil {
		return err
	}
	return c.inner.Delete(key)
}
func (c *countingStorage) BatchGet(keys []string) (map[string][]byte, error) {
	if err := c.gate(); err != nil {
		return nil, err
	}
	return c.inner.BatchGet(keys)
}
func (c *countingStorage) BatchPut(entries map[string][]byte) error {
	if err := c.gate(); err != nil {
		return err
	}
	return c.inner.BatchPut(entries)
}
func (c *countingStorage) BatchDelete(keys []string) error {
	if err := c.gate(); err != nil {
		return err
	}
	return c.inner.BatchDelete(keys)
}

func TestDegradedModeServesCacheOnlyAndHeals(t *testing.T) {
	st := newFlakyStorage()
	st.Put("cold", []byte("stored"))
	ts, err := New(Options{
		Policy:                WriteThrough,
		Engine:                engine.New(engine.Options{}),
		Storage:               st,
		StorageRetries:        0,
		DegradeAfter:          2,
		DegradedProbeInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if err := ts.Set("hot", []byte("cached")); err != nil {
		t.Fatal(err)
	}

	st.failReads.Store(true)
	// Two failing reads trip degraded mode; the raw error surfaces first.
	for i := 0; i < 2; i++ {
		if _, err := ts.Get("cold"); !errors.Is(err, errFlaky) {
			t.Fatalf("pre-degraded Get %d: %v", i, err)
		}
	}
	h := ts.Health()
	if !h.Degraded || h.DegradedTransit != 1 {
		t.Fatalf("not degraded after %d fails: %+v", 2, h)
	}
	// Degraded: a cold miss is absent (no storage stall), a cached key
	// still serves, and the short-circuit is counted.
	if _, err := ts.Get("cold"); err != ErrNotFound {
		t.Fatalf("degraded cold Get: %v", err)
	}
	if v, err := ts.Get("hot"); err != nil || string(v) != "cached" {
		t.Fatalf("degraded hot Get: %q, %v", v, err)
	}
	if h := ts.Health(); h.DegradedOps == 0 {
		t.Fatalf("degraded short-circuits not counted: %+v", h)
	}
	// Writes fail fast while degraded (write-through must not lie).
	st.failWrites.Store(true)
	if err := ts.Set("w", []byte("x")); err == nil {
		t.Fatal("degraded write-through Set succeeded")
	}
	st.failWrites.Store(false)

	// Heal the disk: after the probe interval one Get probes storage,
	// succeeds, and the store exits degraded mode.
	st.failReads.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, err := ts.Get("cold"); err == nil && string(v) == "stored" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store never healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h := ts.Health(); h.Degraded {
		t.Fatalf("still degraded after heal: %+v", h)
	}
}

func TestExpiryDeletesThroughToStorage(t *testing.T) {
	now := time.Unix(100, 0)
	st := NewMapStorage()
	eng := engine.New(engine.Options{Clock: func() time.Time { return now }})
	ts, err := New(Options{Policy: WriteThrough, Engine: eng, Storage: st})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	sink := &recordingSink{}
	ts.SetSink(sink)
	if err := ts.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !ts.ExpireAt("k", now.Add(time.Second).UnixNano()) {
		t.Fatal("ExpireAt on present key")
	}
	now = now.Add(2 * time.Second)
	// The expired read must NOT resurrect the key from storage — the
	// lazy-expiry miss deletes through instead.
	if _, err := ts.Get("k"); err != ErrNotFound {
		t.Fatalf("expired Get: %v", err)
	}
	if _, ok, _ := st.Get("k"); ok {
		t.Fatal("expired key still in storage (would resurrect)")
	}
	var sawExpire, sawDelete bool
	for _, op := range sink.snapshot() {
		if op.key == "k" && op.expire {
			sawExpire = true
		}
		if op.key == "k" && op.del {
			sawDelete = true
		}
	}
	if !sawExpire || !sawDelete {
		t.Fatalf("sink ops missing expire/delete: %+v", sink.snapshot())
	}
	// Once deleted through, a fresh Get stays absent.
	if _, err := ts.Get("k"); err != ErrNotFound {
		t.Fatalf("second Get: %v", err)
	}
}

func TestExpirySweepPurgesStorage(t *testing.T) {
	nowNs := atomic.Int64{}
	nowNs.Store(time.Unix(100, 0).UnixNano())
	st := NewMapStorage()
	eng := engine.New(engine.Options{Clock: func() time.Time { return time.Unix(0, nowNs.Load()) }})
	ts, err := New(Options{
		Policy:              WriteThrough,
		Engine:              eng,
		Storage:             st,
		ExpirySweepInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	for _, k := range []string{"a", "b", "c"} {
		if err := ts.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		ts.ExpireAt(k, time.Unix(101, 0).UnixNano())
	}
	nowNs.Store(time.Unix(200, 0).UnixNano())
	deadline := time.Now().Add(2 * time.Second)
	for st.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweep left %d storage keys", st.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFlushAllClearsEveryTier(t *testing.T) {
	for _, policy := range []Policy{WriteThrough, WriteBack} {
		t.Run(policy.String(), func(t *testing.T) {
			ts, sink := newSinkStore(t, policy)
			st := ts.opts.Storage
			for _, k := range []string{"a", "b", "c"} {
				if err := ts.Set(k, []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			if err := ts.FlushAll(); err != nil {
				t.Fatal(err)
			}
			// No resurrection: cold reads stay absent because storage was
			// cleared too.
			for _, k := range []string{"a", "b", "c"} {
				if _, err := ts.Get(k); err != ErrNotFound {
					t.Fatalf("post-flush Get %s: %v", k, err)
				}
			}
			if got, _ := st.BatchGet([]string{"a", "b", "c"}); len(got) != 0 {
				t.Fatalf("storage kept %v after FlushAll", got)
			}
			ops := sink.snapshot()
			if len(ops) == 0 || !ops[len(ops)-1].flushAll {
				t.Fatalf("sink's last op is not flushAll: %+v", ops)
			}
		})
	}
}

func TestFlushAllCacheOnly(t *testing.T) {
	ts, sink := newSinkStore(t, CacheOnly)
	if err := ts.Set("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := ts.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Get("a"); err != ErrNotFound {
		t.Fatalf("post-flush Get: %v", err)
	}
	ops := sink.snapshot()
	if len(ops) == 0 || !ops[len(ops)-1].flushAll {
		t.Fatalf("sink's last op is not flushAll: %+v", ops)
	}
}
