package cache

import (
	"tierbase/internal/engine"
)

// Batch operations on the tiered store: the cache-tier leg of the
// MGET/MSET fast path. Cache hits resolve through the engine's lock-striped
// MGet (one stripe lock per touched shard); the remaining misses make a
// single Storage.BatchGet round trip — the optimization the paper credits
// for lowering PC_miss — with singleflight dedup against concurrent
// fetches of the same keys. Writes group into one Storage.BatchPut round
// trip (write-through) or one dirty-map pass (write-back).

// dedupeKeys drops duplicate keys while preserving first-occurrence
// order; a duplicate-free input is returned as-is.
func dedupeKeys(keys []string) []string {
	if len(keys) <= 1 {
		return keys
	}
	seen := make(map[string]struct{}, len(keys))
	uniq := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		uniq = append(uniq, k)
	}
	return uniq
}

// BatchGet fetches many keys, consulting the cache tier first and the
// storage tier (one round trip) for the misses. The result maps key to
// value; absent keys map to nil. Duplicate keys are served once.
func (t *Tiered) BatchGet(keys []string) (map[string][]byte, error) {
	if t.closed.Load() {
		return nil, ErrClosed
	}
	t.reqs.Add(int64(len(keys)))
	out := make(map[string][]byte, len(keys))
	uniq := dedupeKeys(keys)

	// 1. Cache tier, one stripe lock per touched shard. Wrong-typed keys
	// report nil (Redis MGET semantics) but are NOT misses: fetching them
	// from storage would clobber a live list/set/hash with stale bytes.
	vals, wrongType, err := t.eng.MGetDetail(uniq)
	if err != nil {
		return nil, err
	}
	var missing []string
	hit := make([]string, 0, len(uniq))
	for i, k := range uniq {
		if vals[i] != nil {
			out[k] = vals[i]
			t.hits.Add(1)
			hit = append(hit, k)
			continue
		}
		out[k] = nil
		if wrongType[i] {
			continue
		}
		t.misses.Add(1)
		missing = append(missing, k)
	}
	t.touchBatch(hit) // one LRU stripe lock per touched stripe
	if len(missing) == 0 || t.opts.Policy == CacheOnly {
		return out, nil
	}

	// 2. Write-back dirty state shadows storage (unflushed values and
	// delete tombstones must win over what storage still holds).
	if t.opts.Policy == WriteBack {
		live := missing[:0]
		t.dirtyMu.Lock()
		for _, k := range missing {
			if e, ok := t.dirty[k]; ok {
				if e.val != nil {
					out[k] = copyBytes(e.val)
				}
				continue // tombstone: stays nil
			}
			live = append(live, k)
		}
		t.dirtyMu.Unlock()
		missing = live
		if len(missing) == 0 {
			return out, nil
		}
	}

	// 3. Storage tier: join flights already in progress, lead the rest in
	// a single BatchGet round trip (shared singleflight core with Get).
	lead, join := t.splitFlights(missing)
	var fetchErr error
	var admitted []string
	if len(lead) > 0 {
		fetch := make([]string, 0, len(lead))
		for k := range lead {
			fetch = append(fetch, k)
		}
		svals, err := t.opts.Storage.BatchGet(fetch)
		t.publishFlights(lead, svals, err)
		fetchErr = err
		for k, f := range lead {
			if f.err == nil {
				out[k] = f.val
				admitted = append(admitted, k)
			}
		}
	}
	for k, f := range join {
		v, err := t.awaitFlight(f)
		switch {
		case err == ErrNotFound:
			// stays nil
		case err != nil:
			if fetchErr == nil {
				fetchErr = err
			}
		default:
			out[k] = v
		}
	}
	if fetchErr != nil {
		return nil, fetchErr
	}
	t.maybeEvictKeys(admitted)
	return out, nil
}

// BatchPut applies many writes according to the configured policy; a nil
// value deletes the key (matching Storage.BatchPut semantics). Under
// write-through the whole batch is one storage round trip; under
// write-back it is one dirty-map pass with a single backpressure check.
// The cache tier applies via the engine's striped MSet/BatchDel.
//
// Batches bypass the per-key write-through coalescing queues: concurrent
// single-key Sets on the same keys may interleave with the batch, with
// last-storage-writer-wins ordering (same guarantee Redis gives between a
// pipelined MSET and competing SETs).
func (t *Tiered) BatchPut(entries map[string][]byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.reqs.Add(int64(len(entries)))
	switch t.opts.Policy {
	case WriteThrough:
		if err := t.opts.Storage.BatchPut(entries); err != nil {
			// Mirror wtCommit's failure path for every key in the batch.
			for k := range entries {
				t.invalidate(k)
			}
			return err
		}
		t.applyBatchToCache(entries)
	case WriteBack:
		t.dirtyMu.Lock()
		for len(t.dirty) >= t.opts.MaxDirty && !t.closed.Load() {
			t.wakeFlusher()
			t.dirtyCond.Wait()
		}
		if t.closed.Load() {
			t.dirtyMu.Unlock()
			return ErrClosed
		}
		for k, v := range entries {
			t.dirtyGen++
			stored := copyBytes(v)
			if v != nil && stored == nil {
				stored = []byte{} // empty value, not a tombstone
			}
			t.dirty[k] = &dirtyEntry{val: stored, gen: t.dirtyGen}
		}
		reached := len(t.dirty) >= t.opts.FlushBatch
		t.dirtyMu.Unlock()
		t.applyBatchToCache(entries)
		if reached {
			t.wakeFlusher()
		}
	default:
		t.applyBatchToCache(entries)
	}
	return nil
}

// BatchDelete removes keys through every tier in one pass, returning how
// many existed — the RESP DEL reply. A key counts when it was live in the
// cache tier, held as an unflushed dirty value, or (for keys the cache no
// longer knew) present in the storage tier; that last group costs one
// extra Storage.BatchGet round trip, which is what makes the count
// correct for keys that were evicted to storage. Duplicate keys count at
// most once (Redis DEL semantics).
//
// Like BatchPut, multi-key deletes bypass the write-through per-key
// queues (last-storage-writer-wins against concurrent single-key Sets); a
// single-key write-through delete still routes through its queue.
func (t *Tiered) BatchDelete(keys []string) (int, error) {
	if t.closed.Load() {
		return 0, ErrClosed
	}
	t.reqs.Add(int64(len(keys)))
	uniq := dedupeKeys(keys)
	if len(uniq) == 0 {
		return 0, nil
	}

	if t.opts.Policy == CacheOnly {
		n := 0
		for _, live := range t.eng.BatchDelDetail(uniq) {
			if live {
				n++
			}
		}
		for _, r := range t.opts.Replicas {
			r.BatchDel(uniq)
		}
		t.forgetBatch(uniq)
		return n, nil
	}

	// Tiered policies: establish per-key existence before mutating. Keys
	// the cache holds count immediately; the rest consult write-back dirty
	// state and, as a last resort, one storage BatchGet round trip.
	n := 0
	var unknown []string
	for i, live := range t.eng.BatchExists(uniq) {
		if live {
			n++
		} else {
			unknown = append(unknown, uniq[i])
		}
	}
	if t.opts.Policy == WriteBack && len(unknown) > 0 {
		live := unknown[:0]
		t.dirtyMu.Lock()
		for _, k := range unknown {
			if e, ok := t.dirty[k]; ok {
				if e.val != nil {
					n++ // unflushed dirty value: the key existed
				}
				continue // tombstone: already deleted, nothing to count
			}
			live = append(live, k)
		}
		t.dirtyMu.Unlock()
		unknown = live
	}
	if len(unknown) > 0 {
		svals, err := t.opts.Storage.BatchGet(unknown)
		if err != nil {
			return 0, err // nothing deleted yet; surface the failure
		}
		n += len(svals) // BatchGet returns present keys only
	}

	switch t.opts.Policy {
	case WriteThrough:
		if len(uniq) == 1 {
			// Preserve per-key write ordering for the single-key case.
			if err := t.writeThrough(uniq[0], nil, true); err != nil {
				return 0, err
			}
			return n, nil
		}
		if err := t.opts.Storage.BatchDelete(uniq); err != nil {
			// Mirror wtCommit's failure path for every key in the batch.
			for _, k := range uniq {
				t.invalidate(k)
			}
			return 0, err
		}
	case WriteBack:
		t.dirtyMu.Lock()
		for len(t.dirty) >= t.opts.MaxDirty && !t.closed.Load() {
			t.wakeFlusher()
			t.dirtyCond.Wait()
		}
		if t.closed.Load() {
			t.dirtyMu.Unlock()
			return 0, ErrClosed
		}
		for _, k := range uniq {
			t.dirtyGen++
			t.dirty[k] = &dirtyEntry{gen: t.dirtyGen} // nil val = tombstone
		}
		reached := len(t.dirty) >= t.opts.FlushBatch
		t.dirtyMu.Unlock()
		defer func() {
			if reached {
				t.wakeFlusher()
			}
		}()
	}

	t.eng.BatchDel(uniq)
	for _, r := range t.opts.Replicas {
		r.BatchDel(uniq)
	}
	t.forgetBatch(uniq)
	return n, nil
}

// applyBatchToCache mutates the cache tier and replicas for a whole batch,
// taking each engine stripe lock once (and each LRU stripe lock once),
// then runs capacity eviction on the touched stripes only.
func (t *Tiered) applyBatchToCache(entries map[string][]byte) {
	kvs := make([]engine.KV, 0, len(entries))
	sets := make([]string, 0, len(entries))
	var dels []string
	for k, v := range entries {
		if v == nil {
			dels = append(dels, k)
		} else {
			kvs = append(kvs, engine.KV{Key: k, Val: v})
			sets = append(sets, k)
		}
	}
	t.eng.MSet(kvs)
	t.eng.BatchDel(dels)
	for _, r := range t.opts.Replicas {
		r.MSet(kvs)
		r.BatchDel(dels)
	}
	t.touchBatchEvicting(sets)
	t.forgetBatch(dels)
}
