package cache

import (
	"errors"

	"tierbase/internal/engine"
)

// Batch operations on the tiered store: the cache-tier leg of the
// MGET/MSET fast path. Cache hits resolve through the engine's lock-striped
// MGet (one stripe lock per touched shard); the remaining misses make a
// single Storage.BatchGet round trip — the optimization the paper credits
// for lowering PC_miss — with singleflight dedup against concurrent
// fetches of the same keys. Writes group into one storage round trip
// (write-through, via the per-key queues — see wtBatchCommit) or one
// striped dirty-set pass (write-back).

// dedupeKeys drops duplicate keys while preserving first-occurrence
// order; a duplicate-free input is returned as-is.
func dedupeKeys(keys []string) []string {
	if len(keys) <= 1 {
		return keys
	}
	seen := make(map[string]struct{}, len(keys))
	uniq := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		uniq = append(uniq, k)
	}
	return uniq
}

// BatchGet fetches many keys, consulting the cache tier first and the
// storage tier (one round trip) for the misses. The result maps key to
// value; absent keys map to nil. Duplicate keys are served once.
func (t *Tiered) BatchGet(keys []string) (map[string][]byte, error) {
	if t.closed.Load() {
		return nil, ErrClosed
	}
	t.reqs.Add(int64(len(keys)))
	out := make(map[string][]byte, len(keys))
	uniq := dedupeKeys(keys)

	// 1. Cache tier, one stripe lock per touched shard. Wrong-typed keys
	// report nil (Redis MGET semantics) but are NOT misses: fetching them
	// from storage would clobber a live list/set/hash with stale bytes.
	vals, wrongType, err := t.eng.MGetDetail(uniq)
	if err != nil {
		return nil, err
	}
	var missing []string
	hit := make([]string, 0, len(uniq))
	for i, k := range uniq {
		if vals[i] != nil {
			out[k] = vals[i]
			t.hits.Add(1)
			hit = append(hit, k)
			continue
		}
		out[k] = nil
		if wrongType[i] {
			continue
		}
		t.misses.Add(1)
		missing = append(missing, k)
	}
	// Per-stripe access sampling, one grouping pass per outcome (the
	// adaptive rebalancer reads these; wrong-typed keys are neither).
	t.sampleHitBatch(hit)
	t.sampleMissBatch(missing)
	t.touchBatch(hit) // one LRU stripe lock per touched stripe
	if len(missing) == 0 || t.opts.Policy == CacheOnly {
		return out, nil
	}

	// 2. Write-back dirty state shadows storage (unflushed values and
	// delete tombstones must win over what storage still holds). One
	// dirty-stripe lock per touched stripe.
	if t.opts.Policy == WriteBack {
		live := make([]string, 0, len(missing))
		t.eng.GroupKeysByShard(missing, func(si int, group []string) {
			ds := t.dirtyStripes[si]
			ds.mu.Lock()
			for _, k := range group {
				if e, ok := ds.entries[k]; ok {
					if e.val != nil && !e.enc {
						out[k] = copyBytes(e.val)
					}
					continue // tombstone or collection blob: stays nil
				}
				live = append(live, k)
			}
			ds.mu.Unlock()
		})
		missing = live
		if len(missing) == 0 {
			return out, nil
		}
	}

	// 3. Storage tier: join flights already in progress, lead the rest in
	// a single BatchGet round trip (shared singleflight core with Get).
	lead, join := t.splitFlights(missing)
	var fetchErr error
	var admitted []string
	if len(lead) > 0 {
		fetch := make([]string, 0, len(lead))
		for k := range lead {
			fetch = append(fetch, k)
		}
		svals, err := t.opts.Storage.BatchGet(fetch)
		t.publishFlights(lead, svals, err)
		if !errors.Is(err, ErrDegraded) {
			// Degraded (cache-only) mode: the misses stay nil rather
			// than failing the whole MGET — cache hits above are still
			// the best available answer.
			fetchErr = err
		}
		for k, f := range lead {
			if f.err == nil {
				out[k] = f.val
				admitted = append(admitted, k)
			}
		}
	}
	for k, f := range join {
		v, err := t.awaitFlight(f)
		switch {
		case err == ErrNotFound || err == engine.ErrWrongType || errors.Is(err, ErrDegraded):
			// stays nil (absent, a collection key, or degraded cache-only)
		case err != nil:
			if fetchErr == nil {
				fetchErr = err
			}
		default:
			out[k] = v
		}
	}
	if fetchErr != nil {
		return nil, fetchErr
	}
	t.maybeEvictKeys(admitted)
	return out, nil
}

// BatchPut applies many writes according to the configured policy; a nil
// value deletes the key (matching Storage.BatchPut semantics). Under
// write-through the batch routes through the SAME per-key queues as
// single-key writes: keys with no in-flight leader commit in one grouped
// storage round trip, keys with a leader piggyback on it (and are covered
// by its commit) — so a concurrent Set(k) and a batch containing k
// serialize per key, with no ordering bypass. Under write-back it is one
// striped dirty-set pass with per-stripe backpressure. The cache tier
// applies via the engine's striped MSet/BatchDel.
func (t *Tiered) BatchPut(entries map[string][]byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.reqs.Add(int64(len(entries)))
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	switch t.opts.Policy {
	case WriteThrough:
		if err := t.wtBatchCommit(keys, entries); err != nil {
			return err
		}
	case WriteBack:
		if err := t.wbBatchMark(entries); err != nil {
			return err
		}
		t.applyBatchToCache(entries)
		if t.dirtyCount.Load() >= int64(t.opts.FlushBatch) {
			t.wakeFlusher()
		}
	default:
		t.applyBatchToCache(entries)
	}
	t.replicateBatch(keys, entries)
	return nil
}

// wbBatchMark records a batch as dirty, one stripe lock (and one
// backpressure check) per touched stripe. A stripe group is admitted as a
// unit once its stripe has room, so a batch overshoots a stripe's budget
// by at most the group size — the striped analog of the old single-lock
// admission, without cross-stripe blocking.
//
// Admission is all-or-nothing against Close: if the store closes before
// the first stripe admits, the whole call fails with ErrClosed and no
// entry lands. If Close lands MID-batch (a backpressured stripe wait
// woke into a closed store), the remaining stripes admit without waiting
// — a partial batch must not be acked as failed — and the caller then
// flushes the dirty set itself (wbCloseRaceFlush), because Close's final
// flush may already have collected; only a successful flush acks.
func (t *Tiered) wbBatchMark(entries map[string][]byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	admitted, closedMidway := false, false
	t.eng.GroupKeysByShard(keys, func(si int, group []string) {
		if closedMidway && !admitted {
			return // closed before anything landed: clean abort
		}
		ds := t.dirtyStripes[si]
		ds.mu.Lock()
		if t.waitStripeRoomLocked(ds) {
			closedMidway = true
			if !admitted {
				ds.mu.Unlock()
				return
			}
		}
		for _, k := range group {
			v := entries[k]
			var stored []byte
			if v != nil {
				stored = copyBytes(v)
			}
			if v != nil && stored == nil {
				stored = []byte{} // empty value, not a tombstone
			}
			t.setDirtyLocked(ds, k, stored, false)
		}
		admitted = true
		ds.mu.Unlock()
	})
	return t.wbAdmissionOutcome(admitted, closedMidway)
}

// wbAdmissionOutcome resolves a write-back batch admission against a
// racing Close. Nothing admitted + closed = clean ErrClosed. Admitted +
// closed = the flusher is gone and Close's final flush may have already
// collected, so flush synchronously and ack only on success.
func (t *Tiered) wbAdmissionOutcome(admitted, closedMidway bool) error {
	if !closedMidway {
		return nil
	}
	if !admitted {
		return ErrClosed
	}
	// Surface a storage failure as itself: "cache: closed" would hide the
	// reason the flush (and therefore the ack) failed.
	return t.flushDirty(0)
}

// BatchDelete removes keys through every tier in one pass, returning how
// many existed — the RESP DEL reply. A key counts when it was live in the
// cache tier, held as an unflushed dirty value, or (for keys the cache no
// longer knew) present in the storage tier; that last group costs one
// extra Storage.BatchGet round trip, which is what makes the count
// correct for keys that were evicted to storage. Duplicate keys count at
// most once (Redis DEL semantics).
//
// Like BatchPut, write-through deletes route through the per-key queues
// (keys with no in-flight leader share one Storage.BatchDelete round
// trip; keys with a leader piggyback as pending deletes), so multi-key
// deletes order against concurrent single-key writes per key.
func (t *Tiered) BatchDelete(keys []string) (int, error) {
	if t.closed.Load() {
		return 0, ErrClosed
	}
	t.reqs.Add(int64(len(keys)))
	uniq := dedupeKeys(keys)
	if len(uniq) == 0 {
		return 0, nil
	}

	if t.opts.Policy == CacheOnly {
		n := 0
		for _, live := range t.eng.BatchDelDetail(uniq) {
			if live {
				n++
			}
		}
		for _, r := range t.opts.Replicas {
			r.BatchDel(uniq)
		}
		t.forgetBatch(uniq)
		t.replicateBatch(uniq, nil)
		return n, nil
	}

	// Tiered policies: establish per-key existence before mutating. Keys
	// the cache holds count immediately; the rest consult write-back dirty
	// state and, as a last resort, one storage BatchGet round trip.
	n := 0
	var unknown []string
	for i, live := range t.eng.BatchExists(uniq) {
		if live {
			n++
		} else {
			unknown = append(unknown, uniq[i])
		}
	}
	if t.opts.Policy == WriteBack && len(unknown) > 0 {
		live := make([]string, 0, len(unknown))
		t.eng.GroupKeysByShard(unknown, func(si int, group []string) {
			ds := t.dirtyStripes[si]
			ds.mu.Lock()
			for _, k := range group {
				if e, ok := ds.entries[k]; ok {
					if e.val != nil {
						n++ // unflushed dirty value: the key existed
					}
					continue // tombstone: already deleted, nothing to count
				}
				live = append(live, k)
			}
			ds.mu.Unlock()
		})
		unknown = live
	}
	if len(unknown) > 0 {
		svals, err := t.opts.Storage.BatchGet(unknown)
		if err != nil {
			return 0, err // nothing deleted yet; surface the failure
		}
		n += len(svals) // BatchGet returns present keys only
	}

	switch t.opts.Policy {
	case WriteThrough:
		// Unified ordering: the whole delete batch goes through the
		// per-key queues (cache apply included in the commit path).
		dels := make(map[string][]byte, len(uniq))
		for _, k := range uniq {
			dels[k] = nil
		}
		if err := t.wtBatchCommit(uniq, dels); err != nil {
			return 0, err
		}
		t.replicateBatch(uniq, nil)
		return n, nil
	case WriteBack:
		// Tombstones admit through wbBatchMark (nil value = tombstone),
		// sharing its Close-race discipline: clean ErrClosed before
		// anything lands, synchronous flush once tombstones have.
		dels := make(map[string][]byte, len(uniq))
		for _, k := range uniq {
			dels[k] = nil
		}
		if err := t.wbBatchMark(dels); err != nil {
			return 0, err
		}
		defer func() {
			if t.dirtyCount.Load() >= int64(t.opts.FlushBatch) {
				t.wakeFlusher()
			}
		}()
	}

	t.eng.BatchDel(uniq)
	for _, r := range t.opts.Replicas {
		r.BatchDel(uniq)
	}
	t.forgetBatch(uniq)
	t.replicateBatch(uniq, nil)
	return n, nil
}

// applyBatchToCache mutates the cache tier and replicas for a whole batch,
// taking each engine stripe lock once (and each LRU stripe lock once),
// then runs capacity eviction on the touched stripes only.
func (t *Tiered) applyBatchToCache(entries map[string][]byte) {
	kvs := make([]engine.KV, 0, len(entries))
	sets := make([]string, 0, len(entries))
	var dels []string
	for k, v := range entries {
		if v == nil {
			dels = append(dels, k)
		} else {
			kvs = append(kvs, engine.KV{Key: k, Val: v})
			sets = append(sets, k)
		}
	}
	t.eng.MSet(kvs)
	t.eng.BatchDel(dels)
	for _, r := range t.opts.Replicas {
		r.MSet(kvs)
		r.BatchDel(dels)
	}
	t.touchBatchEvicting(sets)
	t.forgetBatch(dels)
}
