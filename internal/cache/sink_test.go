package cache

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"tierbase/internal/engine"
)

// recordingSink captures the replicated op stream (with value copies —
// the contract says values may alias reusable buffers).
type recordingSink struct {
	mu  sync.Mutex
	ops []sinkOp
}

type sinkOp struct {
	key      string
	val      []byte
	del      bool
	encoded  bool
	expire   bool
	expireAt int64
	persist  bool
	flushAll bool
}

func (r *recordingSink) ReplicateSet(key string, val []byte, encoded bool) {
	r.mu.Lock()
	r.ops = append(r.ops, sinkOp{key: key, val: append([]byte(nil), val...), encoded: encoded})
	r.mu.Unlock()
}

func (r *recordingSink) ReplicateDelete(key string) {
	r.mu.Lock()
	r.ops = append(r.ops, sinkOp{key: key, del: true})
	r.mu.Unlock()
}

func (r *recordingSink) ReplicateExpire(key string, at int64) {
	r.mu.Lock()
	r.ops = append(r.ops, sinkOp{key: key, expire: true, expireAt: at})
	r.mu.Unlock()
}

func (r *recordingSink) ReplicatePersist(key string) {
	r.mu.Lock()
	r.ops = append(r.ops, sinkOp{key: key, persist: true})
	r.mu.Unlock()
}

func (r *recordingSink) ReplicateFlushAll() {
	r.mu.Lock()
	r.ops = append(r.ops, sinkOp{flushAll: true})
	r.mu.Unlock()
}

func (r *recordingSink) snapshot() []sinkOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]sinkOp(nil), r.ops...)
}

func newSinkStore(t *testing.T, policy Policy) (*Tiered, *recordingSink) {
	t.Helper()
	opts := Options{Policy: policy, Engine: engine.New(engine.Options{})}
	if policy != CacheOnly {
		opts.Storage = NewMapStorage()
	}
	ts, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	ts.SetSink(sink)
	t.Cleanup(func() { ts.Close() })
	return ts, sink
}

func TestSinkSeesAllMutationKinds(t *testing.T) {
	for _, policy := range []Policy{CacheOnly, WriteThrough, WriteBack} {
		t.Run(policy.String(), func(t *testing.T) {
			ts, sink := newSinkStore(t, policy)
			if err := ts.Set("a", []byte("1")); err != nil {
				t.Fatal(err)
			}
			if err := ts.PropagateString("b", []byte("2")); err != nil {
				t.Fatal(err)
			}
			if err := ts.PropagateEncoded("c", []byte{0xFF, 1, 1, 1, 'x'}); err != nil {
				t.Fatal(err)
			}
			if err := ts.Delete("a"); err != nil {
				t.Fatal(err)
			}
			if err := ts.PropagateDelete("b"); err != nil {
				t.Fatal(err)
			}
			if err := ts.BatchPut(map[string][]byte{"d": []byte("4")}); err != nil {
				t.Fatal(err)
			}
			if _, err := ts.BatchDelete([]string{"d"}); err != nil {
				t.Fatal(err)
			}
			ops := sink.snapshot()
			want := []sinkOp{
				{key: "a", val: []byte("1")},
				{key: "b", val: []byte("2")},
				{key: "c", val: []byte{0xFF, 1, 1, 1, 'x'}, encoded: true},
				{key: "a", del: true},
				{key: "b", del: true},
				{key: "d", val: []byte("4")},
				{key: "d", del: true},
			}
			if len(ops) != len(want) {
				t.Fatalf("got %d ops %+v, want %d", len(ops), ops, len(want))
			}
			for i, w := range want {
				g := ops[i]
				if g.key != w.key || g.del != w.del || g.encoded != w.encoded || string(g.val) != string(w.val) {
					t.Fatalf("op %d = %+v, want %+v", i, g, w)
				}
			}
		})
	}
}

func TestSinkIgnoresFillsAndEvictions(t *testing.T) {
	eng := engine.New(engine.Options{})
	st := NewMapStorage()
	st.Put("cold", []byte("v"))
	ts, err := New(Options{Policy: WriteThrough, Engine: eng, Storage: st})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	sink := &recordingSink{}
	ts.SetSink(sink)
	if v, err := ts.Get("cold"); err != nil || string(v) != "v" {
		t.Fatalf("Get cold = %q, %v", v, err)
	}
	if ops := sink.snapshot(); len(ops) != 0 {
		t.Fatalf("cache fill replicated: %+v", ops)
	}
}

// TestSinkOrderMatchesEngineOrder hammers one key with concurrent SETs
// and RMW-style propagations (the INCR shape) and asserts the sink's
// final op for the key matches the engine's final value — the property
// the PR 6 known gap broke (SET didn't take the stripe lock, so storage
// and any log could see the race loser last).
func TestSinkOrderMatchesEngineOrder(t *testing.T) {
	for _, policy := range []Policy{CacheOnly, WriteThrough, WriteBack} {
		t.Run(policy.String(), func(t *testing.T) {
			ts, sink := newSinkStore(t, policy)
			eng := ts.opts.Engine
			const key = "contended"
			const rounds = 200
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // writer: plain SETs
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					if err := ts.Set(key, []byte("set-"+strconv.Itoa(i))); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			go func() { // RMW: engine op + propagate under Locked
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					err := ts.Locked(key, func() error {
						val := []byte("rmw-" + strconv.Itoa(i))
						eng.Set(key, val)
						return ts.PropagateString(key, val)
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}()
			wg.Wait()

			final, err := eng.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			ops := sink.snapshot()
			var last sinkOp
			found := false
			for _, op := range ops {
				if op.key == key {
					last, found = op, true
				}
			}
			if !found {
				t.Fatal("no sink ops for contended key")
			}
			if last.del || string(last.val) != string(final) {
				t.Fatalf("last sink op %+v diverges from engine value %q", last, final)
			}
		})
	}
}

func TestSetStillWorksUnderStripeContention(t *testing.T) {
	// Many goroutines, many keys on few stripes: the new Set locking must
	// not deadlock against write-through queue piggybacking.
	eng := engine.New(engine.Options{Shards: 2})
	ts, err := New(Options{Policy: WriteThrough, Engine: eng, Storage: NewMapStorage()})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("k%d", i%10)
				if err := ts.Set(k, []byte{byte(g)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
