package cache

import (
	"sync"
	"time"

	"tierbase/internal/engine"
)

// Write-back implementation (paper §4.1.2).
//
// Updates ack from the cache tier immediately; dirty entries propagate to
// storage in batches. The paper's four mechanisms:
//
//   - Replication of cache: every mutation also lands on the replica
//     engines before the ack (handled in applyToCache).
//   - Managing dirty data: dirty size is bounded (MaxDirty) with
//     backpressure, and a maximum flush interval bounds staleness.
//   - Optimizing update: one BatchPut per flush round; multiple updates to
//     the same key naturally merge in the dirty map.
//   - Deferred cache-fetching: misses during updates are batched through
//     the fetch loop into BatchGet round trips.
//
// The dirty set is striped along the engine's lock stripes (dirtyStripe):
// each stripe owns its entries, its generation counter, its backpressure
// budget (MaxDirty split evenly, ceil) and its own cond. A writer blocks
// only when ITS stripe is saturated, and a flush wakes only the writers
// of stripes that actually freed room — the old single dirtyCond woke
// every blocked writer on every flush (a thundering herd) even when only
// one stripe's slots freed.

// dirtyStripe is one stripe of the write-back dirty set.
type dirtyStripe struct {
	mu      sync.Mutex
	cond    *sync.Cond // waited on by writers when this stripe is full
	entries map[string]*dirtyEntry
	gen     uint64 // per-stripe generation; stamps entries for flush checks
}

// dirtyStripeFor returns the dirty stripe owning key.
func (t *Tiered) dirtyStripeFor(key string) *dirtyStripe {
	return t.dirtyStripes[t.eng.ShardIndex(key)]
}

// waitStripeRoomLocked blocks until ds has room for another dirty entry
// (or the store closes). Caller holds ds.mu; returns with it held.
// Reports whether the store closed while waiting.
func (t *Tiered) waitStripeRoomLocked(ds *dirtyStripe) (closed bool) {
	if len(ds.entries) >= t.stripeMaxDirty && !t.closed.Load() {
		t.bpWaits.Add(1) // count blocked writers, not wakeups
		for len(ds.entries) >= t.stripeMaxDirty && !t.closed.Load() {
			t.wakeFlusher()
			ds.cond.Wait()
		}
	}
	return t.closed.Load()
}

// setDirtyLocked records key as dirty in ds (nil stored = tombstone; enc
// marks a typed collection blob), maintaining the cross-stripe count.
// Caller holds ds.mu.
func (t *Tiered) setDirtyLocked(ds *dirtyStripe, key string, stored []byte, enc bool) {
	ds.gen++
	if old, existed := ds.entries[key]; existed {
		t.dirtyBytes.Add(-dirtyEntryBytes(key, old.val))
	} else {
		t.dirtyCount.Add(1)
	}
	t.dirtyBytes.Add(dirtyEntryBytes(key, stored))
	ds.entries[key] = &dirtyEntry{val: stored, gen: ds.gen, enc: enc}
}

// dirtyEntryBytes approximates one dirty entry's heap footprint: the
// copied value buffer, the key, and the entry struct/map overhead.
func dirtyEntryBytes(key string, val []byte) int64 {
	const entryOverhead = 64 // dirtyEntry struct + map bucket slot, roughly
	return int64(len(key) + len(val) + entryOverhead)
}

// wakeFlusher nudges the flush loop without blocking (the channel holds
// one pending wake; an already-pending wake is enough).
func (t *Tiered) wakeFlusher() {
	select {
	case t.flushWake <- struct{}{}:
	default:
	}
}

// writeBack applies one write (or delete) under the write-back policy.
// enc marks val as a typed collection blob; pre marks a propagated outcome
// already applied to the primary engine (see rmw.go).
func (t *Tiered) writeBack(key string, val []byte, del, enc, pre bool) error {
	// Backpressure: hold the writer while ITS stripe of the dirty set is
	// saturated ("a backpressure mechanism is activated when dirty data
	// approaches a predefined threshold"). Other stripes' writers are
	// unaffected.
	ds := t.dirtyStripeFor(key)
	ds.mu.Lock()
	if t.waitStripeRoomLocked(ds) {
		ds.mu.Unlock()
		return ErrClosed
	}
	var stored []byte
	if !del {
		stored = copyBytes(val)
		if stored == nil {
			stored = []byte{} // empty value, not a tombstone
		}
	}
	t.setDirtyLocked(ds, key, stored, enc)
	ds.mu.Unlock()

	if pre {
		t.applyPropagated(key, val, del, enc)
	} else {
		t.applyToCache(key, val, del)
		if !del {
			t.maybeEvictKey(key)
		}
	}
	if t.dirtyCount.Load() >= int64(t.opts.FlushBatch) {
		t.wakeFlusher()
	}
	return nil
}

// flushLoop is the background dirty-data propagator. Writers nudge it
// through flushWake when a full batch accumulates (an earlier design
// bridged the dirty cond into a channel with a helper goroutine, but that
// bridge spins at 100% CPU whenever the dirty set stays above FlushBatch);
// the ticker bounds staleness when traffic trickles in below batch size.
func (t *Tiered) flushLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stopCh:
			return
		case <-ticker.C:
		case <-t.flushWake:
		}
		if err := t.flushDirty(t.opts.FlushBatch); err != nil {
			continue // storage failing: retry on the next tick, don't spin
		}
		// Keep draining while a full batch remains so a burst doesn't
		// wait out the ticker FlushBatch keys at a time.
		for t.dirtyCount.Load() >= int64(t.opts.FlushBatch) {
			select {
			case <-t.stopCh:
				return
			default:
			}
			if err := t.flushDirty(t.opts.FlushBatch); err != nil {
				break // back to the select; ticker provides the backoff
			}
		}
	}
}

// flushDirty writes up to max dirty entries (0 = all) to storage in one
// grouped round trip. Entries collect from the stripes round-robin,
// starting at a rotating cursor so a partial flush never starves the
// high-numbered stripes; entries overwritten during the flush stay dirty
// (per-stripe generation check). After the round trip, each drained
// stripe clears its flushed entries and wakes ONLY its own backpressured
// writers — stripes that contributed nothing stay asleep.
func (t *Tiered) flushDirty(max int) error {
	t.flushMu.Lock()
	defer t.flushMu.Unlock()
	pending := int(t.dirtyCount.Load())
	if pending == 0 {
		return nil
	}
	if max > 0 && pending > max {
		pending = max
	}
	nsh := len(t.dirtyStripes)
	start := int(t.flushCursor.Add(1)-1) % nsh
	batch := make(map[string][]byte, pending)
	// Collection is stripe-sequential, so the flushed (key, gen) records
	// land in flat slices with one contiguous range per stripe — no
	// per-stripe maps to allocate each round.
	type stripeRange struct{ si, lo, hi int }
	recs := make([]flushRec, 0, pending)
	var ranges []stripeRange
collect:
	for i := 0; i < nsh; i++ {
		si := (start + i) % nsh
		ds := t.dirtyStripes[si]
		lo := len(recs)
		ds.mu.Lock()
		for k, e := range ds.entries {
			if max > 0 && len(batch) >= max {
				ds.mu.Unlock()
				if len(recs) > lo {
					ranges = append(ranges, stripeRange{si, lo, len(recs)})
				}
				break collect
			}
			v := e.val
			if !e.enc {
				// Raw strings escape on the way to storage so they never
				// collide with typed collection blobs.
				v = engine.EscapeStringValue(v)
			}
			batch[k] = v
			recs = append(recs, flushRec{key: k, gen: e.gen})
		}
		ds.mu.Unlock()
		if len(recs) > lo {
			ranges = append(ranges, stripeRange{si, lo, len(recs)})
		}
	}
	if len(batch) == 0 {
		return nil
	}

	if err := t.opts.Storage.BatchPut(batch); err != nil {
		return err
	}

	for _, r := range ranges {
		ds := t.dirtyStripes[r.si]
		removed := 0
		ds.mu.Lock()
		for _, rec := range recs[r.lo:r.hi] {
			if e, ok := ds.entries[rec.key]; ok && e.gen == rec.gen {
				t.dirtyBytes.Add(-dirtyEntryBytes(rec.key, e.val))
				delete(ds.entries, rec.key)
				removed++
			}
		}
		if removed > 0 {
			t.dirtyCount.Add(int64(-removed))
			ds.cond.Broadcast() // release THIS stripe's waiters only
		}
		ds.mu.Unlock()
	}
	t.flushed.Add(int64(len(batch)))
	t.batches.Add(1)
	return nil
}

// flushRec is one flushed entry's generation stamp, checked before the
// post-flush delete so entries overwritten mid-flush stay dirty.
type flushRec struct {
	key string
	gen uint64
}

// FlushDirty forces all dirty entries to storage (checkpoint / tests).
func (t *Tiered) FlushDirty() error {
	for t.dirtyCount.Load() > 0 {
		if err := t.flushDirty(0); err != nil {
			return err
		}
	}
	return nil
}

// --- deferred cache-fetching ---

// deferredFetch submits a miss to the batch fetcher and waits.
func (t *Tiered) deferredFetch(key string) fetchResp {
	resp := make(chan fetchResp, 1)
	select {
	case t.fetchCh <- fetchReq{key: key, resp: resp}:
		return <-resp
	case <-t.stopCh:
		return fetchResp{err: ErrClosed}
	}
}

// fetchLoop accumulates fetch requests for FetchWindow (or until a full
// batch) and issues one BatchGet round trip for the group.
func (t *Tiered) fetchLoop() {
	defer t.wg.Done()
	const maxBatch = 64
	for {
		var first fetchReq
		select {
		case <-t.stopCh:
			return
		case first = <-t.fetchCh:
		}
		reqs := []fetchReq{first}
		timer := time.NewTimer(t.opts.FetchWindow)
	gather:
		for len(reqs) < maxBatch {
			select {
			case r := <-t.fetchCh:
				reqs = append(reqs, r)
			case <-timer.C:
				break gather
			case <-t.stopCh:
				timer.Stop()
				// Serve what we have before exiting.
				t.serveFetches(reqs)
				return
			}
		}
		timer.Stop()
		t.serveFetches(reqs)
	}
}

func (t *Tiered) serveFetches(reqs []fetchReq) {
	keys := make([]string, 0, len(reqs))
	seen := map[string]bool{}
	for _, r := range reqs {
		if !seen[r.key] {
			seen[r.key] = true
			keys = append(keys, r.key)
		}
	}
	vals, err := t.opts.Storage.BatchGet(keys)
	t.fetched.Add(int64(len(keys)))
	for _, r := range reqs {
		if err != nil {
			r.resp <- fetchResp{err: err}
			continue
		}
		v, ok := vals[r.key]
		if !ok {
			r.resp <- fetchResp{err: ErrNotFound}
			continue
		}
		if v == nil {
			v = []byte{} // defensive: present must stay present-empty
		}
		r.resp <- fetchResp{val: v}
	}
}
