package cache

import (
	"time"
)

// Write-back implementation (paper §4.1.2).
//
// Updates ack from the cache tier immediately; dirty entries propagate to
// storage in batches. The paper's four mechanisms:
//
//   - Replication of cache: every mutation also lands on the replica
//     engines before the ack (handled in applyToCache).
//   - Managing dirty data: dirty size is bounded (MaxDirty) with
//     backpressure, and a maximum flush interval bounds staleness.
//   - Optimizing update: one BatchPut per flush round; multiple updates to
//     the same key naturally merge in the dirty map.
//   - Deferred cache-fetching: misses during updates are batched through
//     the fetch loop into BatchGet round trips.

// wakeFlusher nudges the flush loop without blocking (the channel holds
// one pending wake; an already-pending wake is enough).
func (t *Tiered) wakeFlusher() {
	select {
	case t.flushWake <- struct{}{}:
	default:
	}
}

// writeBack applies one write (or delete) under the write-back policy.
func (t *Tiered) writeBack(key string, val []byte, del bool) error {
	// Backpressure: hold the writer while the dirty set is saturated
	// ("a backpressure mechanism is activated when dirty data approaches
	// a predefined threshold").
	t.dirtyMu.Lock()
	for len(t.dirty) >= t.opts.MaxDirty && !t.closed.Load() {
		t.wakeFlusher()
		t.dirtyCond.Wait()
	}
	if t.closed.Load() {
		t.dirtyMu.Unlock()
		return ErrClosed
	}
	t.dirtyGen++
	var stored []byte
	if !del {
		stored = copyBytes(val)
		if stored == nil {
			stored = []byte{} // empty value, not a tombstone
		}
	}
	t.dirty[key] = &dirtyEntry{val: stored, gen: t.dirtyGen}
	reached := len(t.dirty) >= t.opts.FlushBatch
	t.dirtyMu.Unlock()

	t.applyToCache(key, val, del)
	if !del {
		t.maybeEvictKey(key)
	}
	if reached {
		t.wakeFlusher()
	}
	return nil
}

// flushLoop is the background dirty-data propagator. Writers nudge it
// through flushWake when a full batch accumulates (an earlier design
// bridged the dirty cond into a channel with a helper goroutine, but that
// bridge spins at 100% CPU whenever the dirty set stays above FlushBatch);
// the ticker bounds staleness when traffic trickles in below batch size.
func (t *Tiered) flushLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stopCh:
			return
		case <-ticker.C:
		case <-t.flushWake:
		}
		if err := t.flushDirty(t.opts.FlushBatch); err != nil {
			continue // storage failing: retry on the next tick, don't spin
		}
		// Keep draining while a full batch remains so a burst doesn't
		// wait out the ticker 64 keys at a time.
		for {
			t.dirtyMu.Lock()
			pending := len(t.dirty)
			t.dirtyMu.Unlock()
			if pending < t.opts.FlushBatch {
				break
			}
			select {
			case <-t.stopCh:
				return
			default:
			}
			if err := t.flushDirty(t.opts.FlushBatch); err != nil {
				break // back to the select; ticker provides the backoff
			}
		}
	}
}

// flushDirty writes up to max dirty entries (0 = all) to storage in one
// batch. Entries overwritten during the flush stay dirty (generation check).
func (t *Tiered) flushDirty(max int) error {
	t.dirtyMu.Lock()
	if len(t.dirty) == 0 {
		t.dirtyMu.Unlock()
		return nil
	}
	batch := make(map[string][]byte)
	gens := make(map[string]uint64)
	for k, e := range t.dirty {
		batch[k] = e.val
		gens[k] = e.gen
		if max > 0 && len(batch) >= max {
			break
		}
	}
	t.dirtyMu.Unlock()

	if err := t.opts.Storage.BatchPut(batch); err != nil {
		return err
	}

	t.dirtyMu.Lock()
	for k, gen := range gens {
		if e, ok := t.dirty[k]; ok && e.gen == gen {
			delete(t.dirty, k)
		}
	}
	t.dirtyMu.Unlock()
	t.flushed.Add(int64(len(batch)))
	t.batches.Add(1)
	t.dirtyCond.Broadcast() // release backpressured writers
	return nil
}

// FlushDirty forces all dirty entries to storage (checkpoint / tests).
func (t *Tiered) FlushDirty() error {
	for {
		t.dirtyMu.Lock()
		n := len(t.dirty)
		t.dirtyMu.Unlock()
		if n == 0 {
			return nil
		}
		if err := t.flushDirty(0); err != nil {
			return err
		}
	}
}

// --- deferred cache-fetching ---

// deferredFetch submits a miss to the batch fetcher and waits.
func (t *Tiered) deferredFetch(key string) fetchResp {
	resp := make(chan fetchResp, 1)
	select {
	case t.fetchCh <- fetchReq{key: key, resp: resp}:
		return <-resp
	case <-t.stopCh:
		return fetchResp{err: ErrClosed}
	}
}

// fetchLoop accumulates fetch requests for FetchWindow (or until a full
// batch) and issues one BatchGet round trip for the group.
func (t *Tiered) fetchLoop() {
	defer t.wg.Done()
	const maxBatch = 64
	for {
		var first fetchReq
		select {
		case <-t.stopCh:
			return
		case first = <-t.fetchCh:
		}
		reqs := []fetchReq{first}
		timer := time.NewTimer(t.opts.FetchWindow)
	gather:
		for len(reqs) < maxBatch {
			select {
			case r := <-t.fetchCh:
				reqs = append(reqs, r)
			case <-timer.C:
				break gather
			case <-t.stopCh:
				timer.Stop()
				// Serve what we have before exiting.
				t.serveFetches(reqs)
				return
			}
		}
		timer.Stop()
		t.serveFetches(reqs)
	}
}

func (t *Tiered) serveFetches(reqs []fetchReq) {
	keys := make([]string, 0, len(reqs))
	seen := map[string]bool{}
	for _, r := range reqs {
		if !seen[r.key] {
			seen[r.key] = true
			keys = append(keys, r.key)
		}
	}
	vals, err := t.opts.Storage.BatchGet(keys)
	t.fetched.Add(int64(len(keys)))
	for _, r := range reqs {
		if err != nil {
			r.resp <- fetchResp{err: err}
			continue
		}
		v, ok := vals[r.key]
		if !ok {
			r.resp <- fetchResp{err: ErrNotFound}
			continue
		}
		if v == nil {
			v = []byte{} // defensive: present must stay present-empty
		}
		r.resp <- fetchResp{val: v}
	}
}
