package cache

import (
	"fmt"
	"sync/atomic"
	"testing"

	"tierbase/internal/lsm"
	"tierbase/internal/wal"
)

// countingAppender counts WAL appends reaching the storage tier — the
// probe for the "a batch is ONE WAL append" contract.
type countingAppender struct {
	wal.Appender
	appends atomic.Int64
}

func (c *countingAppender) Append(p []byte) error {
	c.appends.Add(1)
	return c.Appender.Append(p)
}

// TestLSMBatchPutSingleWALAppend: a 16-key BatchPut (with a mixed delete)
// reaches the LSM as exactly one write batch — one WAL append — instead of
// the old one-append-per-key loop.
func TestLSMBatchPutSingleWALAppend(t *testing.T) {
	ca := &countingAppender{}
	db, err := lsm.Open(lsm.Options{
		Dir: t.TempDir(),
		WALFactory: func(dir string) (wal.Appender, error) {
			l, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever})
			if err != nil {
				return nil, err
			}
			ca.Appender = l
			return ca, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewLSMStorage(db)

	entries := make(map[string][]byte, 16)
	for i := 0; i < 15; i++ {
		entries[fmt.Sprintf("bw%02d", i)] = []byte(fmt.Sprintf("v%02d", i))
	}
	entries["bw-del"] = nil // nil-deletes contract rides the same batch
	if err := s.BatchPut(entries); err != nil {
		t.Fatal(err)
	}
	if got := ca.appends.Load(); got != 1 {
		t.Fatalf("16-key BatchPut made %d WAL appends, want 1", got)
	}

	if err := s.BatchDelete([]string{"bw00", "bw01", "bw02"}); err != nil {
		t.Fatal(err)
	}
	if got := ca.appends.Load(); got != 2 {
		t.Fatalf("BatchDelete appends: %d total, want 2", got)
	}

	got, err := s.BatchGet([]string{"bw00", "bw03", "bw14", "bw-del", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["bw00"]; ok {
		t.Fatal("deleted key still present")
	}
	if string(got["bw03"]) != "v03" || string(got["bw14"]) != "v14" {
		t.Fatalf("batch get values: %v", got)
	}
	if _, ok := got["ghost"]; ok {
		t.Fatal("ghost present")
	}
}

// TestLSMBatchGetSingleMultiGet: BatchGet resolves through ONE native
// MultiGet walk (not a per-key Get loop), and present-empty values
// round-trip per the Storage contract.
func TestLSMBatchGetSingleMultiGet(t *testing.T) {
	db, err := lsm.Open(lsm.Options{Dir: t.TempDir(), DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewLSMStorage(db)
	if err := s.BatchPut(map[string][]byte{
		"mk1": []byte("v1"), "mk2": {}, "mk3": []byte("v3"),
	}); err != nil {
		t.Fatal(err)
	}
	before := db.Stats().MultiGets
	keys := make([]string, 0, 32)
	for i := 0; i < 29; i++ {
		keys = append(keys, fmt.Sprintf("absent%02d", i))
	}
	keys = append(keys, "mk1", "mk2", "mk3")
	got, err := s.BatchGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if walks := db.Stats().MultiGets - before; walks != 1 {
		t.Fatalf("32-key BatchGet did %d MultiGet walks, want 1", walks)
	}
	if len(got) != 3 {
		t.Fatalf("present keys: %d want 3 (%v)", len(got), got)
	}
	if v, ok := got["mk2"]; !ok || v == nil || len(v) != 0 {
		t.Fatalf("present-empty value mangled: %v %v", v, ok)
	}
}
