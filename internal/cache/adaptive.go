package cache

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/metrics"
)

// Workload-adaptive cache tiering: the cache tier watches its own access
// pattern and moves byte budget to where the hits are.
//
// Every LRU stripe carries cheap atomic hit/miss counters folded into
// sliding-window rates (metrics.WindowCounter — lock-free, one clock read
// plus one atomic add per sample). A background rebalancer ranks stripes
// by per-round miss pressure (the round's misses weighted by how hard the
// stripe pushes on its budget), steals budget from cold stripes and grants it to
// hot ones with a bounded per-round step, a per-stripe floor, and a
// hysteresis dead band around the mean so similar stripes don't trade
// budget back and forth. Eviction already runs per-stripe against the
// stripe budget, so the mechanism is "make the budget a live atomic
// target" plus an eviction nudge on stripes that shrank.
//
// Opt-in on top: hit-rate-targeted total sizing (TargetHitRate) drives
// the summed budget up toward MaxCapacityBytes while the sampled window
// hit rate is under target, and back down toward MinCapacityBytes while
// comfortably over — the AdaptiveMemoryStore shape, striped.

// tieringWindow is the sampling window shape: slots x slot duration.
// ~2 s covers many 100 ms rebalance rounds, so one round reacts to a
// trend, not to the last handful of requests.
const (
	tieringSlots   = 10
	tieringSlotDur = 200 * time.Millisecond
)

// minResizeSamples is the fewest in-window accesses adaptive sizing acts
// on; below it the hit rate is noise.
const minResizeSamples = 64

// rollbackCooldown is how many rounds stealing pauses after a rollback:
// long enough to break a harmful oscillation, short enough that a real
// workload shift (which can also spike misses right after a move) only
// delays re-convergence by a few rounds.
const rollbackCooldown = 4

// stripeTier is one stripe's sampling + budget state.
type stripeTier struct {
	budget    atomic.Int64 // live byte budget (eviction target); 0 = unbounded
	hits      atomic.Int64 // lifetime
	misses    atomic.Int64
	stolen    atomic.Int64 // cumulative bytes rebalanced away
	granted   atomic.Int64 // cumulative bytes rebalanced in
	winHits   *metrics.WindowCounter
	winMisses *metrics.WindowCounter
	// prevMisses is the lifetime miss count at the last rebalance round;
	// only the rebalancer touches it, under rebalMu. The round-over-round
	// delta is the steering signal: it reacts within one round, where the
	// 2 s display window would keep a stripe ranked cold (and donating)
	// long after a grant started starving it.
	prevMisses int64
}

func (s *stripeTier) sampleHit(n int64) {
	s.hits.Add(n)
	s.winHits.Mark(n)
}

func (s *stripeTier) sampleMiss(n int64) {
	s.misses.Add(n)
	s.winMisses.Mark(n)
}

// tiering is the Tiered store's adaptive state.
type tiering struct {
	stripes []*stripeTier
	floor   int64 // no stripe's budget is stolen below this
	step    int64 // max bytes moved into/out of one stripe per round

	// capacity is the live total budget (the stripes' budgets sum to it);
	// adaptive sizing moves it between the min/max bounds.
	capacity atomic.Int64

	// rebalMu serializes rounds: the background loop vs RebalanceNow from
	// tests/tools. Sampling and eviction never take it.
	rebalMu sync.Mutex

	// Hill-climb do-no-harm guard (all touched only under rebalMu): when a
	// round moves budget, lastMoves records the transfers and prevTotal the
	// miss total they were meant to improve. If the next round's total is
	// clearly worse, the transfers are reverted and stealing pauses for
	// cooldown rounds. This is what keeps the rebalancer within noise of a
	// static even split when the even split is already near-optimal (hot
	// keys hash-spread evenly, every stripe at its working-set knee): a bad
	// steal survives one round, then gets undone.
	lastMoves []budgetMove
	prevTotal int64
	cooldown  int

	rebalances atomic.Int64 // rounds that moved budget
	bytesMoved atomic.Int64 // cumulative budget moved stripe-to-stripe
	rollbacks  atomic.Int64 // rounds that reverted the previous round's moves
	grows      atomic.Int64 // adaptive-sizing grow steps
	shrinks    atomic.Int64 // adaptive-sizing shrink steps
}

// budgetMove is one stripe-to-stripe transfer inside a rebalance round.
type budgetMove struct {
	from, to int
	bytes    int64
}

// initTiering allocates per-stripe state and seeds the budgets with the
// even ceil split (stripes sum to at least the configured capacity, and a
// tiny capacity never rounds a stripe's budget down to an "unbounded" 0).
func (t *Tiered) initTiering(nsh int) {
	t.tier.stripes = make([]*stripeTier, nsh)
	for i := range t.tier.stripes {
		t.tier.stripes[i] = &stripeTier{
			winHits:   metrics.NewWindowCounter(tieringSlots, tieringSlotDur),
			winMisses: metrics.NewWindowCounter(tieringSlots, tieringSlotDur),
		}
	}
	if t.opts.CacheCapacityBytes <= 0 {
		return // unbounded cache: budgets stay 0, rebalancer never starts
	}
	even := (t.opts.CacheCapacityBytes + int64(nsh) - 1) / int64(nsh)
	for _, st := range t.tier.stripes {
		st.budget.Store(even)
	}
	t.tier.capacity.Store(even * int64(nsh))
	t.tier.floor = t.opts.StripeFloorBytes
	if t.tier.floor <= 0 {
		t.tier.floor = even / 8
	}
	if t.tier.floor < 1 {
		t.tier.floor = 1
	}
	if t.tier.floor > even {
		t.tier.floor = even // a floor above the even split could never seed
	}
	t.tier.step = t.opts.RebalanceStepBytes
	if t.tier.step <= 0 {
		t.tier.step = even / 4
	}
	if t.tier.step < 1 {
		t.tier.step = 1
	}
}

// sampleHitBatch / sampleMissBatch record batch-read outcomes per stripe
// in one counting-sort grouping pass each — noise next to the stripe
// locks (hits) or the storage round trip (misses) the batch already pays.
func (t *Tiered) sampleHitBatch(keys []string) {
	if len(keys) == 0 {
		return
	}
	t.eng.GroupKeysByShard(keys, func(si int, group []string) {
		t.tier.stripes[si].sampleHit(int64(len(group)))
	})
}

func (t *Tiered) sampleMissBatch(keys []string) {
	if len(keys) == 0 {
		return
	}
	t.eng.GroupKeysByShard(keys, func(si int, group []string) {
		t.tier.stripes[si].sampleMiss(int64(len(group)))
	})
}

// rebalanceLoop runs rounds until Close.
func (t *Tiered) rebalanceLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.opts.RebalanceInterval)
	defer tick.Stop()
	for {
		select {
		case <-t.stopCh:
			return
		case <-tick.C:
			t.RebalanceNow()
		}
	}
}

// stripeView is one stripe's snapshot inside a rebalance round.
type stripeView struct {
	si       int
	budget   int64
	resident int64
	pressure float64
	donated  int64 // bytes given up so far this round (donors only)
}

// RebalanceNow runs one rebalance round synchronously and reports the
// bytes moved. The background loop calls it on its interval; tests and
// tools may call it directly for deterministic stepping. Budget is
// conserved: the round moves budget between stripes (and resizes the
// total only in adaptive-sizing mode), never mints it.
func (t *Tiered) RebalanceNow() int64 {
	if t.lru == nil {
		return 0
	}
	t.tier.rebalMu.Lock()
	defer t.tier.rebalMu.Unlock()

	t.maybeResize()

	// Snapshot: miss pressure per stripe, from the misses of THIS round
	// (delta since the previous round — lag-1 feedback, so a donor that a
	// steal pushed into starvation stops ranking cold on the very next
	// round). Misses on a stripe far under its budget are cold misses,
	// not capacity starvation — weight by fullness so only budget-bound
	// stripes rank hot.
	views := make([]stripeView, len(t.tier.stripes))
	var total float64
	var rawTotal int64
	for i, st := range t.tier.stripes {
		b := st.budget.Load()
		r := t.eng.ShardMemUsed(i)
		full := float64(r) / float64(b)
		if full > 1 {
			full = 1
		}
		lifetime := st.misses.Load()
		delta := lifetime - st.prevMisses
		st.prevMisses = lifetime
		p := float64(delta) * full
		views[i] = stripeView{si: i, budget: b, resident: r, pressure: p}
		total += p
		rawTotal += delta
	}

	// Do-no-harm check on the previous round's moves: the unweighted miss
	// total this round is their outcome. Clearly worse (an eighth over, and
	// past a small absolute slack so near-zero totals don't trip it) means
	// the steal starved its donors more than it fed its grantees — revert
	// and cool down. Anything else commits the moves.
	if len(t.tier.lastMoves) > 0 {
		slack := t.tier.prevTotal / 8
		if slack < 4 {
			slack = 4
		}
		if rawTotal > t.tier.prevTotal+slack {
			reverted := t.rollbackLocked()
			t.tier.prevTotal = rawTotal
			t.tier.cooldown = rollbackCooldown
			return reverted
		}
		t.tier.lastMoves = nil
	}
	t.tier.prevTotal = rawTotal
	if t.tier.cooldown > 0 {
		t.tier.cooldown--
		return 0
	}

	if total == 0 {
		return 0 // no capacity pressure anywhere
	}
	mean := total / float64(len(views))
	hys := t.opts.RebalanceHysteresis

	// Classify with a dead band around the mean: only clearly-hot stripes
	// receive and only clearly-cold stripes donate, so near-mean stripes
	// (a shifting hotspot mid-transition, or uniform load) don't churn
	// budget back and forth between rounds.
	var hot, cold []stripeView
	for _, v := range views {
		switch {
		case v.pressure > mean*(1+hys) && v.resident*2 >= v.budget:
			// Hot and actually pressing on the budget. Half-full is the
			// bar, not nearly-full: a shrunk stripe's residency quantizes
			// to whole items and can sit well under its byte budget while
			// its working set starves.
			hot = append(hot, v)
		case v.pressure < mean*(1-hys) && v.budget > t.tier.floor:
			cold = append(cold, v)
		}
	}
	if len(hot) == 0 || len(cold) == 0 {
		return 0
	}
	// Neediest stripes receive first, coldest stripes donate first.
	sort.Slice(hot, func(a, b int) bool { return hot[a].pressure > hot[b].pressure })
	sort.Slice(cold, func(a, b int) bool { return cold[a].pressure < cold[b].pressure })

	var moved int64
	ci := 0
	avail := func(v *stripeView) int64 {
		// Bounded donation per round, symmetric to grants: a donor gives at
		// most step bytes total this round, and never goes below the floor.
		room := v.budget - t.tier.floor
		if lim := t.tier.step - v.donated; room > lim {
			room = lim
		}
		return room
	}
	shrunk := make([]int, 0, len(cold))
	for _, h := range hot {
		need := t.tier.step
		for need > 0 && ci < len(cold) {
			c := &cold[ci]
			take := avail(c)
			if take <= 0 {
				ci++
				continue
			}
			if take > need {
				take = need
			}
			c.budget -= take
			c.donated += take
			t.tier.stripes[c.si].budget.Add(-take)
			t.tier.stripes[c.si].stolen.Add(take)
			t.tier.stripes[h.si].budget.Add(take)
			t.tier.stripes[h.si].granted.Add(take)
			t.tier.lastMoves = append(t.tier.lastMoves, budgetMove{from: c.si, to: h.si, bytes: take})
			if len(shrunk) == 0 || shrunk[len(shrunk)-1] != c.si {
				shrunk = append(shrunk, c.si)
			}
			need -= take
			moved += take
			if avail(c) <= 0 {
				ci++
			}
		}
		if ci >= len(cold) {
			break
		}
	}
	if moved > 0 {
		t.tier.rebalances.Add(1)
		t.tier.bytesMoved.Add(moved)
		// Post-steal eviction nudge: shrunk stripes trim residency down to
		// their new budget now instead of waiting for their next write.
		for _, si := range shrunk {
			t.maybeEvictShard(si)
		}
	}
	return moved
}

// rollbackLocked undoes the previous round's transfers (clamped so no
// grantee drops below the floor), nudges eviction on the stripes that
// shrank back, and reports the bytes moved. Runs under rebalMu.
func (t *Tiered) rollbackLocked() int64 {
	var reverted int64
	shrunk := make([]int, 0, len(t.tier.lastMoves))
	for _, mv := range t.tier.lastMoves {
		amt := mv.bytes
		if room := t.tier.stripes[mv.to].budget.Load() - t.tier.floor; amt > room {
			amt = room // a later resize/steal may have shrunk the grantee
		}
		if amt <= 0 {
			continue
		}
		t.tier.stripes[mv.to].budget.Add(-amt)
		t.tier.stripes[mv.to].stolen.Add(amt)
		t.tier.stripes[mv.from].budget.Add(amt)
		t.tier.stripes[mv.from].granted.Add(amt)
		shrunk = append(shrunk, mv.to)
		reverted += amt
	}
	t.tier.lastMoves = nil
	if reverted > 0 {
		t.tier.bytesMoved.Add(reverted)
		for _, si := range shrunk {
			t.maybeEvictShard(si)
		}
	}
	t.tier.rollbacks.Add(1)
	return reverted
}

// maybeResize is the opt-in hit-rate-targeted total sizing step: sampled
// window hit rate vs TargetHitRate drives the summed budget between
// MinCapacityBytes and MaxCapacityBytes in bounded steps. Runs under
// rebalMu.
func (t *Tiered) maybeResize() {
	target := t.opts.TargetHitRate
	if target <= 0 {
		return
	}
	var h, m int64
	for _, st := range t.tier.stripes {
		h += st.winHits.Sum()
		m += st.winMisses.Sum()
	}
	if h+m < minResizeSamples {
		return
	}
	hr := float64(h) / float64(h+m)
	cur := t.tier.capacity.Load()
	// Step an eighth of current capacity per round; the dead band (2% over
	// target before shrinking) keeps the controller from sawing around the
	// target once it converges.
	step := cur / 8
	if step < 1 {
		step = 1
	}
	nsh := int64(len(t.tier.stripes))
	switch {
	case hr < target && cur < t.opts.MaxCapacityBytes:
		delta := step
		if cur+delta > t.opts.MaxCapacityBytes {
			delta = t.opts.MaxCapacityBytes - cur
		}
		per := delta / nsh
		rem := delta % nsh
		for i, st := range t.tier.stripes {
			d := per
			if int64(i) < rem {
				d++
			}
			st.budget.Add(d)
		}
		t.tier.capacity.Add(delta)
		t.tier.grows.Add(1)
	case hr > target+0.02 && cur > t.opts.MinCapacityBytes:
		delta := step
		if cur-delta < t.opts.MinCapacityBytes {
			delta = cur - t.opts.MinCapacityBytes
		}
		// Shrink respects the per-stripe floor; whatever the floors block
		// stays allocated (capacity adjusts by what actually came off).
		var removed int64
		per := delta / nsh
		rem := delta % nsh
		for i, st := range t.tier.stripes {
			want := per
			if int64(i) < rem {
				want++
			}
			room := st.budget.Load() - t.tier.floor
			if room <= 0 {
				continue
			}
			if want > room {
				want = room
			}
			st.budget.Add(-want)
			removed += want
		}
		if removed > 0 {
			t.tier.capacity.Add(-removed)
			t.tier.shrinks.Add(1)
			for si := range t.tier.stripes {
				t.maybeEvictShard(si)
			}
		}
	}
}

// --- observability ---

// StripeTiering is one stripe's tiering snapshot.
type StripeTiering struct {
	BudgetBytes   int64
	ResidentBytes int64
	WindowHits    int64
	WindowMisses  int64
	HitRate       float64 // in-window; 0 when the window saw no traffic
	StolenBytes   int64   // cumulative budget rebalanced away
	GrantedBytes  int64   // cumulative budget rebalanced in
}

// TieringStats is the adaptive-tiering snapshot behind INFO tiering.
type TieringStats struct {
	Adaptive        bool  // rebalancer running
	CapacityBytes   int64 // live total budget (0 = unbounded)
	ConfiguredBytes int64 // Options.CacheCapacityBytes
	FloorBytes      int64
	StepBytes       int64
	Rebalances      int64 // rounds that moved budget
	Rollbacks       int64 // rounds that reverted the previous round's moves
	BytesMoved      int64
	Grows           int64 // adaptive-sizing growth steps
	Shrinks         int64 // adaptive-sizing shrink steps
	WindowHitRate   float64
	Stripes         []StripeTiering
}

// TieringStats snapshots per-stripe budgets, residency and windowed hit
// rates plus the rebalance counters.
func (t *Tiered) TieringStats() TieringStats {
	out := TieringStats{
		Adaptive:        t.opts.AdaptiveTiering && t.lru != nil,
		CapacityBytes:   t.tier.capacity.Load(),
		ConfiguredBytes: t.opts.CacheCapacityBytes,
		FloorBytes:      t.tier.floor,
		StepBytes:       t.tier.step,
		Rebalances:      t.tier.rebalances.Load(),
		Rollbacks:       t.tier.rollbacks.Load(),
		BytesMoved:      t.tier.bytesMoved.Load(),
		Grows:           t.tier.grows.Load(),
		Shrinks:         t.tier.shrinks.Load(),
		Stripes:         make([]StripeTiering, len(t.tier.stripes)),
	}
	var h, m int64
	for i, st := range t.tier.stripes {
		wh, wm := st.winHits.Sum(), st.winMisses.Sum()
		h += wh
		m += wm
		s := StripeTiering{
			BudgetBytes:   st.budget.Load(),
			ResidentBytes: t.eng.ShardMemUsed(i),
			WindowHits:    wh,
			WindowMisses:  wm,
			StolenBytes:   st.stolen.Load(),
			GrantedBytes:  st.granted.Load(),
		}
		if wh+wm > 0 {
			s.HitRate = float64(wh) / float64(wh+wm)
		}
		out.Stripes[i] = s
	}
	if h+m > 0 {
		out.WindowHitRate = float64(h) / float64(h+m)
	}
	return out
}
