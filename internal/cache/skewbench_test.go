package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tierbase/internal/engine"
	"tierbase/internal/workload"
)

// Skew benchmark suite: the same read loop over uniform, zipf-0.99 and
// shifting-hotspot key distributions, once with the static even budget
// split and once with adaptive budget stealing live. Each run reports the
// achieved hit rate (hit_pct) next to ns/op, so the artifact records the
// adaptive-vs-static delta per distribution, not just raw read cost.
// Note the hash-striping caveat: zipf's head keys FNV-spread evenly
// across stripes, so the adaptive win there is small by construction —
// stripe-concentrated hotspots (TestAdaptiveBeatsStaticOnHotspot) are
// where stealing pays, and these benches bound its overhead elsewhere.

const skewBenchKeys = 16384

func skewBenchKey(i int64) string { return fmt.Sprintf("skew:%05d", i) }

func newSkewBenchChooser(b *testing.B, dist string) workload.KeyChooser {
	switch dist {
	case "uniform":
		return workload.NewUniform(skewBenchKeys)
	case "zipf":
		return workload.NewScrambledZipfian(skewBenchKeys, workload.ZipfianTheta)
	case "hotspot-shift":
		// Hot window jumps every 50k ops: several shifts per second of
		// sustained bench load, zero shifts under -benchtime 1x smoke runs.
		return workload.NewShiftingHotspot(skewBenchKeys, 0.1, 0.9, 50000)
	default:
		b.Fatalf("unknown distribution %q", dist)
		return nil
	}
}

func benchSkew(b *testing.B, dist string, adaptive bool) {
	val := make([]byte, 128)
	// Budgets act on engine-resident bytes; size the cache to hold 1/8 of
	// the keyspace in units of the measured per-key footprint.
	scratch := engine.New(engine.Options{})
	scratch.Set(skewBenchKey(0), val)
	perKey := scratch.Stats().MemBytes

	tr, err := New(Options{
		Policy:             WriteThrough,
		Engine:             engine.New(engine.Options{}),
		Storage:            NewMapStorage(),
		CacheCapacityBytes: skewBenchKeys / 8 * perKey,
		AdaptiveTiering:    adaptive,
		RebalanceInterval:  2 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	for i := int64(0); i < skewBenchKeys; i++ {
		if err := tr.Set(skewBenchKey(i), val); err != nil {
			b.Fatal(err)
		}
	}

	chooser := newSkewBenchChooser(b, dist)
	rng := rand.New(rand.NewSource(11))
	start := tr.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(skewBenchKey(chooser.Next(rng))); err != nil && err != ErrNotFound {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := tr.Stats()
	if reads := s.Hits - start.Hits + s.Misses - start.Misses; reads > 0 {
		b.ReportMetric(float64(s.Hits-start.Hits)/float64(reads)*100, "hit_pct")
	}
	ts := tr.TieringStats()
	b.ReportMetric(float64(ts.Rebalances), "rebalances")
}

// BenchmarkSkewSuite is the workload-adaptive tiering benchmark matrix:
// distribution x {static, adaptive}.
func BenchmarkSkewSuite(b *testing.B) {
	for _, dist := range []string{"uniform", "zipf", "hotspot-shift"} {
		for _, mode := range []string{"static", "adaptive"} {
			adaptive := mode == "adaptive"
			b.Run(dist+"/"+mode, func(b *testing.B) { benchSkew(b, dist, adaptive) })
		}
	}
}
