package cache

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/engine"
)

// Policy selects how the cache tier synchronizes with the storage tier.
type Policy int

// Policies.
const (
	// CacheOnly disables the storage tier (pure in-memory mode, the
	// Redis/Memcached-style deployment).
	CacheOnly Policy = iota
	// WriteThrough synchronously writes to storage before acking (§4.1.1);
	// best for read-heavy workloads needing high reliability.
	WriteThrough
	// WriteBack acks from the cache tier and flushes dirty data to storage
	// asynchronously in batches (§4.1.2); best for write-heavy workloads.
	WriteBack
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case WriteThrough:
		return "write-through"
	case WriteBack:
		return "write-back"
	default:
		return "cache-only"
	}
}

// Options configures a Tiered store.
type Options struct {
	Policy  Policy
	Engine  *engine.Engine
	Storage Storage // required unless CacheOnly
	// Replicas receive every cache mutation synchronously ("TierBase
	// maintains multiple replicas of dirty data and cache contents").
	Replicas []*engine.Engine
	// CacheCapacityBytes bounds the cache tier's DRAM use; 0 = unbounded.
	// This is the knob behind the paper's cache-ratio (NX) configurations.
	CacheCapacityBytes int64
	// FlushBatch is the write-back dirty batch size (default 128).
	FlushBatch int
	// FlushInterval is the max time dirty data waits (default 50 ms).
	FlushInterval time.Duration
	// MaxDirty triggers backpressure (default 8 * FlushBatch). The budget
	// splits evenly across the write-path stripes (ceil), and a writer
	// blocks only when its own stripe is saturated.
	MaxDirty int
	// FetchWindow batches deferred cache-fetches (default 1 ms).
	FetchWindow time.Duration
	// DisableCoalescing turns off write-through group commit (ablation).
	DisableCoalescing bool

	// AdaptiveTiering starts the background budget rebalancer: per-stripe
	// byte budgets follow the observed workload (windowed miss pressure)
	// instead of staying pinned at capacity/stripes. Requires
	// CacheCapacityBytes > 0. See adaptive.go.
	AdaptiveTiering bool
	// RebalanceInterval is the rebalancer period (default 100 ms).
	RebalanceInterval time.Duration
	// StripeFloorBytes is the minimum budget any stripe can be stolen
	// down to (default: an eighth of the even split, at least 1).
	StripeFloorBytes int64
	// RebalanceStepBytes bounds how much budget moves into or out of one
	// stripe per round (default: a quarter of the even split, at least 1).
	RebalanceStepBytes int64
	// RebalanceHysteresis is the dead band around the mean miss pressure:
	// a stripe must be this fraction above (below) the mean to be ranked
	// hot (cold). Default 0.25.
	RebalanceHysteresis float64

	// StorageRetries is how many times a failed storage call is retried
	// before the error surfaces (default 2; negative disables). Retries
	// back off exponentially from StorageRetryBackoff (default 5 ms).
	StorageRetries      int
	StorageRetryBackoff time.Duration
	// DegradeAfter trips degraded (cache-only) mode after this many
	// consecutive failed storage calls (default 3). While degraded,
	// storage reads short-circuit to "absent", writes fail fast without
	// retry sleeps, and one probe per DegradedProbeInterval (default
	// 500 ms) tests for recovery. See health.go.
	DegradeAfter          int
	DegradedProbeInterval time.Duration
	// ExpirySweepInterval starts a background sweep that deletes lapsed
	// TTL keys through the storage tier (0 = lazy only: expired keys
	// delete through on first touch). Without delete-through, a key that
	// expires in the cache tier resurrects from storage on its next miss.
	ExpirySweepInterval time.Duration
	// ExpirySweepBatch bounds keys deleted per sweep round (default 256).
	ExpirySweepBatch int

	// TargetHitRate, when > 0, enables hit-rate-targeted total sizing:
	// the rebalancer grows the total budget toward MaxCapacityBytes while
	// the sampled window hit rate is below target, and shrinks it toward
	// MinCapacityBytes while comfortably above. Requires AdaptiveTiering.
	TargetHitRate float64
	// MinCapacityBytes / MaxCapacityBytes bound adaptive total sizing
	// (defaults: CacheCapacityBytes/2 and 4*CacheCapacityBytes).
	MinCapacityBytes int64
	MaxCapacityBytes int64
}

func (o *Options) fill() {
	if o.FlushBatch <= 0 {
		o.FlushBatch = 128
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 50 * time.Millisecond
	}
	if o.MaxDirty <= 0 {
		o.MaxDirty = 8 * o.FlushBatch
	}
	if o.FetchWindow <= 0 {
		o.FetchWindow = time.Millisecond
	}
	if o.StorageRetries == 0 {
		o.StorageRetries = 2
	}
	if o.StorageRetries < 0 {
		o.StorageRetries = 0
	}
	if o.StorageRetryBackoff <= 0 {
		o.StorageRetryBackoff = 5 * time.Millisecond
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 3
	}
	if o.DegradedProbeInterval <= 0 {
		o.DegradedProbeInterval = 500 * time.Millisecond
	}
	if o.ExpirySweepBatch <= 0 {
		o.ExpirySweepBatch = 256
	}
	if o.RebalanceInterval <= 0 {
		o.RebalanceInterval = 100 * time.Millisecond
	}
	if o.RebalanceHysteresis <= 0 {
		o.RebalanceHysteresis = 0.25
	}
	if o.TargetHitRate > 0 {
		if o.MinCapacityBytes <= 0 {
			o.MinCapacityBytes = o.CacheCapacityBytes / 2
		}
		if o.MaxCapacityBytes <= 0 {
			o.MaxCapacityBytes = 4 * o.CacheCapacityBytes
		}
	}
}

// lruShard is one stripe of the capacity-eviction bookkeeping: its own
// recency list, position index and lock. Stripes align with the engine's
// lock stripes (same FNV hash, same count), so the LRU stripe a key
// touches shares cache-line affinity with the engine shard that served it,
// and eviction bookkeeping never serializes hits on other stripes.
type lruShard struct {
	mu  sync.Mutex
	ll  *list.List
	pos map[string]*list.Element
}

// Tiered is the tiered store: engine cache in front of pluggable storage.
type Tiered struct {
	opts Options
	eng  *engine.Engine

	// Per-stripe LRU bookkeeping for capacity eviction; lru[i] tracks the
	// keys resident in engine stripe i. Each stripe's live byte budget is
	// tier[i].budget (seeded from CacheCapacityBytes split evenly, rounded
	// up; the adaptive rebalancer moves it afterwards — see adaptive.go).
	lru []*lruShard

	// Per-stripe access sampling + live budgets (always allocated, one
	// entry per engine stripe) and the rebalancer state around them.
	tier tiering

	// Write-through per-key queues (write ordering + coalescing), striped
	// along the engine's stripes: wt[i] owns the queues of every key in
	// engine stripe i, so queue admission on one stripe never serializes
	// writes on another.
	wt []*wtStripe

	// Write-back dirty state, striped the same way: dirtyStripes[i] owns
	// the dirty entries (and the backpressure cond and generation counter)
	// of engine stripe i. dirtyCount tracks the total across stripes so
	// the flush trigger and Stats never sum under all the stripe locks.
	dirtyStripes []*dirtyStripe
	dirtyCount   atomic.Int64
	// dirtyBytes approximates the dirty set's heap footprint (copied value
	// buffers + keys + entry overhead) — the write-back backlog component
	// of the server's overload watermark.
	dirtyBytes atomic.Int64
	// stripeMaxDirty is each stripe's backpressure budget: MaxDirty split
	// evenly across stripes, rounded up (same ceil discipline as shardCap).
	stripeMaxDirty int
	// flushCursor rotates flushDirty's starting stripe so partial flushes
	// don't starve high-numbered stripes.
	flushCursor atomic.Uint32
	// flushMu serializes whole flush rounds (collect → BatchPut → clear).
	// Two interleaved rounds (background flusher vs an explicit
	// FlushDirty) could otherwise land a stale value in storage after a
	// newer one: both collect k, the newer round commits and clears, then
	// the stale round's BatchPut overwrites it with the older value.
	flushMu sync.Mutex

	// Singleflight state: at most one storage fetch per key is in flight;
	// concurrent misses of the same key wait on the leader's result
	// instead of issuing duplicate storage round trips.
	flMu    sync.Mutex
	flights map[string]*flight

	// Per-stripe RMW locks serializing op+propagate pairs (see rmw.go).
	// Set/Delete take them too, so plain writes order against RMW ops.
	rmw []sync.Mutex

	// Replication sink (see sink.go); nil when replication is off.
	sink OpSink

	// Storage-tier health: retry counters and the degraded-mode state
	// machine (see health.go); nil under CacheOnly.
	health *storageHealth

	// Deferred cache-fetch batcher.
	fetchCh chan fetchReq

	// flushWake nudges the write-back flusher when a batch is ready.
	flushWake chan struct{}

	stopCh chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// stats
	reqs      atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	coalesced atomic.Int64
	flushed   atomic.Int64
	batches   atomic.Int64
	fetched   atomic.Int64
	flShared  atomic.Int64 // miss fetches served by another caller's flight
	bpWaits   atomic.Int64 // write-back writers that blocked on a full stripe
}

// flight is one in-progress storage fetch; waiters block on done.
type flight struct {
	done chan struct{}
	val  []byte // valid after done closes; nil when absent
	err  error  // ErrNotFound when absent; storage error otherwise
}

type dirtyEntry struct {
	val []byte // nil = tombstone
	gen uint64
	enc bool // val is a typed collection blob, already storage-encoded
}

type fetchReq struct {
	key  string
	resp chan fetchResp
}

type fetchResp struct {
	val []byte // nil = absent
	err error
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("cache: closed")

// copyBytes clones b, preserving nilness: nil stays nil (absent /
// tombstone), empty stays empty non-nil (a present empty value). The
// usual append([]byte(nil), b...) idiom collapses empty to nil, which in
// write-back dirty state silently turns an empty value into a delete.
func copyBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// New builds a Tiered store.
func New(opts Options) (*Tiered, error) {
	opts.fill()
	if opts.Engine == nil {
		return nil, errors.New("cache: Engine required")
	}
	if opts.Policy != CacheOnly && opts.Storage == nil {
		return nil, errors.New("cache: Storage required for tiered policies")
	}
	// Decorate the storage tier with retry + degradation (health.go)
	// before anything captures opts.Storage: every call site below —
	// write-through commits, write-back flushes, miss fetches, batch
	// round trips — then inherits the policy transparently.
	var health *storageHealth
	if opts.Policy != CacheOnly {
		rs := newRetryStorage(opts.Storage, opts.StorageRetries,
			opts.StorageRetryBackoff, int64(opts.DegradeAfter),
			opts.DegradedProbeInterval)
		opts.Storage = rs
		health = rs.h
	}
	t := &Tiered{
		opts:    opts,
		eng:     opts.Engine,
		health:  health,
		flights: make(map[string]*flight),
		stopCh:  make(chan struct{}),
	}
	nsh := opts.Engine.NumShards()
	t.wt = make([]*wtStripe, nsh)
	for i := range t.wt {
		t.wt[i] = &wtStripe{queues: make(map[string]*wtQueue)}
	}
	t.rmw = make([]sync.Mutex, nsh)
	t.dirtyStripes = make([]*dirtyStripe, nsh)
	for i := range t.dirtyStripes {
		ds := &dirtyStripe{entries: make(map[string]*dirtyEntry)}
		ds.cond = sync.NewCond(&ds.mu)
		t.dirtyStripes[i] = ds
	}
	// Ceil division, as with the stripe byte budgets: stripe budgets sum
	// to at least MaxDirty and never round down to an unwritable zero.
	t.stripeMaxDirty = (opts.MaxDirty + nsh - 1) / nsh
	t.initTiering(nsh)
	if opts.CacheCapacityBytes > 0 {
		t.lru = make([]*lruShard, nsh)
		for i := range t.lru {
			t.lru[i] = &lruShard{ll: list.New(), pos: make(map[string]*list.Element)}
		}
		if opts.AdaptiveTiering {
			t.wg.Add(1)
			go t.rebalanceLoop()
		}
	}
	if opts.Policy == WriteBack {
		t.fetchCh = make(chan fetchReq, 1024)
		t.flushWake = make(chan struct{}, 1)
		t.wg.Add(2)
		go t.flushLoop()
		go t.fetchLoop()
	}
	if opts.Policy != CacheOnly && opts.ExpirySweepInterval > 0 {
		t.wg.Add(1)
		go t.expirySweepLoop()
	}
	return t, nil
}

// --- LRU (striped) ---

func (s *lruShard) touchLocked(key string) {
	if el, ok := s.pos[key]; ok {
		s.ll.MoveToFront(el)
	} else {
		s.pos[key] = s.ll.PushFront(key)
	}
}

func (s *lruShard) forgetLocked(key string) {
	if el, ok := s.pos[key]; ok {
		s.ll.Remove(el)
		delete(s.pos, key)
	}
}

func (t *Tiered) touch(key string) {
	if t.lru == nil {
		return
	}
	t.touchShard(t.eng.ShardIndex(key), key)
}

// touchShard promotes key on its (known) stripe without rehashing.
func (t *Tiered) touchShard(si int, key string) {
	if t.lru == nil {
		return
	}
	s := t.lru[si]
	s.mu.Lock()
	s.touchLocked(key)
	s.mu.Unlock()
}

func (t *Tiered) forget(key string) {
	if t.lru == nil {
		return
	}
	s := t.lru[t.eng.ShardIndex(key)]
	s.mu.Lock()
	s.forgetLocked(key)
	s.mu.Unlock()
}

// forEachLRUGroup buckets keys by LRU stripe (via the engine's exported
// counting-sort grouping) and calls visit once per touched stripe, so
// batch callers take each stripe lock once. No-op when capacity tracking
// is off.
func (t *Tiered) forEachLRUGroup(keys []string, visit func(si int, group []string)) {
	if t.lru == nil {
		return
	}
	t.eng.GroupKeysByShard(keys, visit)
}

// touchBatch promotes many keys, one stripe lock per touched stripe.
func (t *Tiered) touchBatch(keys []string) {
	t.forEachLRUGroup(keys, func(si int, group []string) {
		s := t.lru[si]
		s.mu.Lock()
		for _, k := range group {
			s.touchLocked(k)
		}
		s.mu.Unlock()
	})
}

// touchBatchEvicting promotes many keys and runs capacity eviction on
// each touched stripe, in one grouping pass.
func (t *Tiered) touchBatchEvicting(keys []string) {
	t.forEachLRUGroup(keys, func(si int, group []string) {
		s := t.lru[si]
		s.mu.Lock()
		for _, k := range group {
			s.touchLocked(k)
		}
		s.mu.Unlock()
		t.maybeEvictShard(si)
	})
}

// forgetBatch drops many keys from the LRU, one stripe lock per stripe.
func (t *Tiered) forgetBatch(keys []string) {
	t.forEachLRUGroup(keys, func(si int, group []string) {
		s := t.lru[si]
		s.mu.Lock()
		for _, k := range group {
			s.forgetLocked(k)
		}
		s.mu.Unlock()
	})
}

// maybeEvictShard removes cold clean entries from one stripe until that
// stripe's engine-resident bytes fit its budget. Dirty keys are skipped:
// they must reach storage first. Eviction, like the bookkeeping, is
// per-stripe — a hot stripe evicting never blocks hits on other stripes.
// The budget is a live atomic target: the adaptive rebalancer moves it
// between stripes, and the next eviction pass on a shrunk stripe trims
// residency down to the new value.
func (t *Tiered) maybeEvictShard(si int) {
	if t.lru == nil {
		return
	}
	s := t.lru[si]
	for t.eng.ShardMemUsed(si) > t.tier.stripes[si].budget.Load() {
		s.mu.Lock()
		el := s.ll.Back()
		var key string
		found := false
		// Walk from the back past dirty entries. Every key on this LRU
		// stripe lives on dirty stripe si too (same FNV stripes), so the
		// dirty check needs no per-key hash.
		for el != nil {
			k := el.Value.(string)
			if !t.isDirtyInStripe(si, k) {
				key = k
				found = true
				s.ll.Remove(el)
				delete(s.pos, k)
				break
			}
			el = el.Prev()
		}
		s.mu.Unlock()
		if !found {
			return // everything resident is dirty; flusher will unblock us
		}
		t.eng.Del(key)
		for _, r := range t.opts.Replicas {
			r.Del(key)
		}
		t.evictions.Add(1)
	}
}

// maybeEvictKey runs capacity eviction on the stripe owning key.
func (t *Tiered) maybeEvictKey(key string) {
	if t.lru == nil {
		return
	}
	t.maybeEvictShard(t.eng.ShardIndex(key))
}

// maybeEvictKeys runs capacity eviction once per stripe touched by keys.
func (t *Tiered) maybeEvictKeys(keys []string) {
	t.forEachLRUGroup(keys, func(si int, _ []string) {
		t.maybeEvictShard(si)
	})
}

// isDirtyInStripe reports whether key (known to live on stripe si) is
// dirty, without rehashing the key.
func (t *Tiered) isDirtyInStripe(si int, key string) bool {
	if t.opts.Policy != WriteBack {
		return false
	}
	ds := t.dirtyStripes[si]
	ds.mu.Lock()
	_, ok := ds.entries[key]
	ds.mu.Unlock()
	return ok
}

// dirtyLookup returns key's dirty entry, if any, under its stripe lock.
// Entries are replaced wholesale (never mutated in place), so reading the
// returned entry after the lock drops is safe.
func (t *Tiered) dirtyLookup(key string) (*dirtyEntry, bool) {
	ds := t.dirtyStripes[t.eng.ShardIndex(key)]
	ds.mu.Lock()
	e, ok := ds.entries[key]
	ds.mu.Unlock()
	return e, ok
}

// --- reads ---

// Get returns the value for key, consulting the cache tier first and the
// storage tier on a miss (populating the cache on the way back).
func (t *Tiered) Get(key string) ([]byte, error) {
	if t.closed.Load() {
		return nil, ErrClosed
	}
	t.reqs.Add(1)
	v, si, err := t.eng.GetWithShard(key)
	if err == nil {
		t.hits.Add(1)
		t.tier.stripes[si].sampleHit(1)
		t.touchShard(si, key)
		return v, nil
	} else if err == engine.ErrWrongType {
		return nil, err
	}
	t.misses.Add(1)
	t.tier.stripes[si].sampleMiss(1)
	if t.opts.Policy == CacheOnly {
		return nil, ErrNotFound
	}
	// Dirty tombstone shadows storage (write-back delete not yet flushed).
	if t.opts.Policy == WriteBack {
		if e, ok := t.dirtyLookup(key); ok {
			if e.val == nil {
				return nil, ErrNotFound
			}
			if e.enc {
				return nil, engine.ErrWrongType // unflushed collection blob
			}
			// Dirty value exists but was missing from cache (should not
			// happen — dirty keys are eviction-exempt — but be safe).
			return copyBytes(e.val), nil
		}
	}
	// TTL delete-through: if the miss is a lapsed-TTL key still occupying
	// the shard map, delete it through the storage tier instead of
	// fetching — the storage copy would otherwise resurrect the expired
	// key right here.
	if t.expireThrough(key) {
		return nil, ErrNotFound
	}
	v, err = t.fetchCoalesced(key)
	if err != nil {
		if errors.Is(err, ErrDegraded) {
			return nil, ErrNotFound // degraded: serve cache tier only
		}
		return nil, err
	}
	t.maybeEvictShard(si)
	return v, nil
}

// expireThrough confirms key's TTL has lapsed and, if so, deletes it
// through every tier under the key's RMW stripe lock — the cache-tier
// removal, the storage-tier delete (per the write policy) and the
// replication sink all observe it as an ordinary delete. Reports whether
// an expired key was taken. TakeExpired rechecks under the engine write
// lock, so a concurrent PERSIST or overwrite wins the race and no live
// value is deleted.
func (t *Tiered) expireThrough(key string) bool {
	if t.opts.Policy == CacheOnly {
		return false // engine lazy expiry suffices; nothing to resurrect
	}
	mu := &t.rmw[t.eng.ShardIndex(key)]
	mu.Lock()
	defer mu.Unlock()
	if !t.eng.TakeExpired(key) {
		return false
	}
	// Best-effort storage delete: the key is already gone from the cache
	// tier either way, and on failure the invalidate/tombstone machinery
	// of the write paths has recorded what it could. A write-through
	// failure here leaves the storage copy behind (it can resurrect once
	// more until the next delete-through attempt); the health counters
	// record the error.
	switch t.opts.Policy {
	case WriteThrough:
		_ = t.writeThrough(key, nil, true, false, false)
	case WriteBack:
		_ = t.writeBack(key, nil, true, false, false)
	}
	if t.sink != nil {
		t.sink.ReplicateDelete(key)
	}
	return true
}

// expirySweepLoop proactively deletes lapsed-TTL keys through the
// storage tier (ExpirySweepInterval > 0), so cold expired keys don't
// linger in storage until someone happens to touch them.
func (t *Tiered) expirySweepLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.opts.ExpirySweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stopCh:
			return
		case <-ticker.C:
			for _, k := range t.eng.CollectExpired(t.opts.ExpirySweepBatch) {
				t.expireThrough(k)
			}
		}
	}
}

// --- singleflight core (shared by Get and BatchGet) ---

// splitFlights partitions keys into flights this caller now leads
// (registered under flMu) and flights already in progress to join.
// Duplicate keys in the input collapse onto one flight.
func (t *Tiered) splitFlights(keys []string) (lead, join map[string]*flight) {
	lead = make(map[string]*flight, len(keys))
	join = make(map[string]*flight)
	t.flMu.Lock()
	for _, k := range keys {
		if _, ours := lead[k]; ours {
			continue
		}
		if f, ok := t.flights[k]; ok {
			join[k] = f
			continue
		}
		f := &flight{done: make(chan struct{})}
		t.flights[k] = f
		lead[k] = f
	}
	t.flMu.Unlock()
	return lead, join
}

// publishFlights completes led flights from one storage fetch: vals is a
// Storage.BatchGet result (present keys only — absence is a missing map
// entry, never a nil value), err poisons every flight. Fetched values are
// admitted into the cache tier (and replicas) before the flights close,
// so waiters observe a warm cache.
func (t *Tiered) publishFlights(lead map[string]*flight, vals map[string][]byte, err error) {
	for k, f := range lead {
		v, present := vals[k]
		switch {
		case err != nil:
			f.err = err
		case !present:
			f.err = ErrNotFound
		default:
			if v == nil {
				v = []byte{} // defensive: present must stay present-empty
			}
			if engine.IsTypedValue(v) {
				// Collection blob: decode into the cache tier; string
				// readers then observe the key exactly as they would a
				// resident collection (wrong type).
				if lerr := t.eng.LoadEncoded(k, v); lerr != nil {
					f.err = lerr
				} else {
					for _, r := range t.opts.Replicas {
						r.LoadEncoded(k, v)
					}
					t.touch(k)
					f.err = engine.ErrWrongType
				}
				break
			}
			f.val = engine.UnescapeStringValue(v)
			t.eng.Set(k, f.val)
			for _, r := range t.opts.Replicas {
				r.Set(k, f.val)
			}
			t.touch(k)
		}
	}
	t.flMu.Lock()
	for k := range lead {
		delete(t.flights, k)
	}
	t.flMu.Unlock()
	for _, f := range lead {
		close(f.done)
	}
}

// awaitFlight blocks on a flight led elsewhere and returns a private copy
// of its result.
func (t *Tiered) awaitFlight(f *flight) ([]byte, error) {
	<-f.done
	t.flShared.Add(1)
	if f.err != nil {
		return nil, f.err
	}
	return copyBytes(f.val), nil
}

// fetchCoalesced fetches key from the storage tier with singleflight
// dedup: the first caller becomes the leader, issues the round trip and
// admits the value into the cache tier; concurrent callers for the same
// key wait on that flight instead of duplicating the storage read.
func (t *Tiered) fetchCoalesced(key string) ([]byte, error) {
	lead, join := t.splitFlights([]string{key})
	if f, ok := join[key]; ok {
		return t.awaitFlight(f)
	}
	f := lead[key]
	v, ok, err := t.opts.Storage.Get(key)
	vals := map[string][]byte{}
	if err == nil && ok {
		if v == nil {
			v = []byte{} // present empty value, not absent
		}
		vals[key] = v
	}
	t.publishFlights(lead, vals, err)
	return f.val, f.err
}

// --- writes (dispatch by policy) ---

// Set stores key=val according to the configured policy.
//
// Set holds the key's RMW stripe lock for the whole write (like
// INCR/SETNX/CAS do via Locked), so a SET racing an RMW op on the same
// key reaches the engine, the storage write path and the replication
// sink in one consistent order. This closes the ordering gap found in
// PR 6 (storage could transiently hold the race loser); replication
// correctness depends on per-key sink order matching engine order.
func (t *Tiered) Set(key string, val []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.reqs.Add(1)
	mu := &t.rmw[t.eng.ShardIndex(key)]
	mu.Lock()
	defer mu.Unlock()
	var err error
	switch t.opts.Policy {
	case WriteThrough:
		err = t.writeThrough(key, val, false, false, false)
	case WriteBack:
		err = t.writeBack(key, val, false, false, false)
	default:
		t.applyToCache(key, val, false)
		t.maybeEvictKey(key)
	}
	if err == nil && t.sink != nil {
		t.sink.ReplicateSet(key, val, false)
	}
	return err
}

// Delete removes key according to the configured policy. Like Set it
// holds the key's RMW stripe lock so deletes order against RMW ops and
// the replication sink sees engine order.
func (t *Tiered) Delete(key string) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.reqs.Add(1)
	mu := &t.rmw[t.eng.ShardIndex(key)]
	mu.Lock()
	defer mu.Unlock()
	var err error
	switch t.opts.Policy {
	case WriteThrough:
		err = t.writeThrough(key, nil, true, false, false)
	case WriteBack:
		err = t.writeBack(key, nil, true, false, false)
	default:
		t.applyToCache(key, nil, true)
	}
	if err == nil && t.sink != nil {
		t.sink.ReplicateDelete(key)
	}
	return err
}

// Update is the read-modify-write entry point: fn receives the current
// value (or exists=false) and returns the new value. Under write-back a
// cache miss triggers the deferred cache-fetching path (batched reads,
// §4.1.2) before fn runs.
func (t *Tiered) Update(key string, fn func(old []byte, exists bool) []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.reqs.Add(1)
	var old []byte
	exists := false
	if v, si, err := t.eng.GetWithShard(key); err == nil {
		old, exists = v, true
		t.hits.Add(1)
		t.tier.stripes[si].sampleHit(1)
	} else {
		t.misses.Add(1)
		t.tier.stripes[si].sampleMiss(1)
		switch t.opts.Policy {
		case WriteBack:
			// Dirty state shadows storage.
			if e, ok := t.dirtyLookup(key); ok {
				if e.enc {
					return engine.ErrWrongType // unflushed collection blob
				}
				if e.val != nil {
					old, exists = append([]byte(nil), e.val...), true
				}
			} else {
				resp := t.deferredFetch(key)
				if resp.err != nil && resp.err != ErrNotFound {
					return resp.err
				}
				if resp.val != nil {
					v, derr := decodeStorageValue(resp.val)
					if derr != nil {
						return derr
					}
					old, exists = v, true
				}
			}
		case WriteThrough:
			v, ok, err := t.opts.Storage.Get(key)
			if err != nil {
				return err
			}
			if ok {
				v, derr := decodeStorageValue(v)
				if derr != nil {
					return derr
				}
				old, exists = v, true
			}
		}
	}
	newVal := fn(old, exists)
	if newVal == nil {
		return t.Delete(key)
	}
	switch t.opts.Policy {
	case WriteThrough:
		return t.writeThrough(key, newVal, false, false, false)
	case WriteBack:
		return t.writeBack(key, newVal, false, false, false)
	default:
		t.applyToCache(key, newVal, false)
		t.maybeEvictKey(key)
		return nil
	}
}

// ExpireAt sets key's TTL as an absolute UnixNano deadline, under the
// key's RMW stripe lock so the TTL change orders against writes and the
// replication sink. Reports whether the key existed. The deadline is
// absolute on the wire too (OpExpire): replicas applying the op late
// still expire the key at the same instant the master did.
func (t *Tiered) ExpireAt(key string, at int64) bool {
	if t.closed.Load() {
		return false
	}
	mu := &t.rmw[t.eng.ShardIndex(key)]
	mu.Lock()
	defer mu.Unlock()
	if !t.eng.ExpireAt(key, at) {
		return false
	}
	for _, r := range t.opts.Replicas {
		r.ExpireAt(key, at)
	}
	if t.sink != nil {
		t.sink.ReplicateExpire(key, at)
	}
	return true
}

// Persist clears key's TTL under its RMW stripe lock; reports whether
// the key existed.
func (t *Tiered) Persist(key string) bool {
	if t.closed.Load() {
		return false
	}
	mu := &t.rmw[t.eng.ShardIndex(key)]
	mu.Lock()
	defer mu.Unlock()
	if !t.eng.Persist(key) {
		return false
	}
	for _, r := range t.opts.Replicas {
		r.Persist(key)
	}
	if t.sink != nil {
		t.sink.ReplicatePersist(key)
	}
	return true
}

// FlushAll clears every tier: the cache engine, its replicas, the
// write-back dirty set (unflushed data is moot once the keyspace is
// gone), the LRU bookkeeping and the storage tier — without the storage
// clear, flushed keys resurrect from storage on their next miss.
//
// It takes every RMW stripe lock (in index order, the same order any
// multi-stripe path must use) for the whole operation, which excludes
// in-flight single-key commits and gives the replication sink a clean
// point in the op order. Batch commits release the stripe locks before
// their storage round trip, so a batch racing FLUSHALL can land its
// storage write after the clear — the known residual window documented
// in ROADMAP.md.
func (t *Tiered) FlushAll() error {
	if t.closed.Load() {
		return ErrClosed
	}
	for i := range t.rmw {
		t.rmw[i].Lock()
	}
	defer func() {
		for i := range t.rmw {
			t.rmw[i].Unlock()
		}
	}()

	if t.opts.Policy == WriteBack {
		// Drop dirty state under flushMu so a concurrent flush round
		// can't commit collected-but-now-cleared entries after us
		// (lock order flushMu -> ds.mu, matching flushDirty).
		t.flushMu.Lock()
		for _, ds := range t.dirtyStripes {
			ds.mu.Lock()
			n := len(ds.entries)
			if n > 0 {
				for k, e := range ds.entries {
					t.dirtyBytes.Add(-dirtyEntryBytes(k, e.val))
				}
				ds.entries = make(map[string]*dirtyEntry)
				t.dirtyCount.Add(-int64(n))
				ds.cond.Broadcast()
			}
			ds.gen++ // invalidate any in-flight flush round's gen stamps
			ds.mu.Unlock()
		}
		t.flushMu.Unlock()
	}

	t.eng.FlushAll()
	for _, r := range t.opts.Replicas {
		r.FlushAll()
	}
	if t.lru != nil {
		for _, s := range t.lru {
			s.mu.Lock()
			s.ll.Init()
			s.pos = make(map[string]*list.Element)
			s.mu.Unlock()
		}
	}

	var err error
	if t.opts.Policy != CacheOnly {
		err = FlushStorage(t.opts.Storage)
	}
	if t.sink != nil {
		t.sink.ReplicateFlushAll()
	}
	return err
}

// Health reports storage-tier health (retry/degradation counters); the
// zero value under CacheOnly, which has no storage tier.
func (t *Tiered) Health() HealthStats {
	if t.health == nil {
		return HealthStats{}
	}
	return t.health.snapshot()
}

// applyToCache mutates the cache tier and its replicas.
func (t *Tiered) applyToCache(key string, val []byte, del bool) {
	if del {
		t.eng.Del(key)
		for _, r := range t.opts.Replicas {
			r.Del(key)
		}
		t.forget(key)
		return
	}
	t.eng.Set(key, val)
	for _, r := range t.opts.Replicas {
		r.Set(key, val)
	}
	t.touch(key)
}

// invalidate drops a key from the cache tier (write-through failure path:
// "the corresponding cache entry is invalidated").
func (t *Tiered) invalidate(key string) {
	t.eng.Del(key)
	for _, r := range t.opts.Replicas {
		r.Del(key)
	}
	t.forget(key)
}

// --- stats ---

// Stats summarizes tiered-store behavior for cost measurement.
type Stats struct {
	Requests          int64
	Hits              int64
	Misses            int64
	Evictions         int64
	Coalesced         int64 // write-through writes absorbed by group commit
	Flushed           int64 // write-back entries flushed
	Batches           int64 // write-back flush round trips
	Fetched           int64 // deferred cache-fetch keys
	Shared            int64 // miss fetches coalesced onto another caller's flight
	BackpressureWaits int64 // write-back writers that blocked on a full stripe
	Dirty             int   // current dirty entries (all stripes)
}

// Stats returns a snapshot of counters.
func (t *Tiered) Stats() Stats {
	return Stats{
		Requests:          t.reqs.Load(),
		Hits:              t.hits.Load(),
		Misses:            t.misses.Load(),
		Evictions:         t.evictions.Load(),
		Coalesced:         t.coalesced.Load(),
		Flushed:           t.flushed.Load(),
		Batches:           t.batches.Load(),
		Fetched:           t.fetched.Load(),
		Shared:            t.flShared.Load(),
		BackpressureWaits: t.bpWaits.Load(),
		Dirty:             int(t.dirtyCount.Load()),
	}
}

// DirtyBytes approximates the write-back dirty backlog's heap footprint
// (copied value buffers + keys + entry overhead). Lock-free; the
// server's overload watermark samples it.
func (t *Tiered) DirtyBytes() int64 { return t.dirtyBytes.Load() }

// WriteStripes reports the number of write-path stripes (== the engine's
// lock stripes; the INFO writepath section surfaces this).
func (t *Tiered) WriteStripes() int { return len(t.wt) }

// DirtyStripes reports the current dirty-entry count per write-path
// stripe. The slice sums to Stats().Dirty; stripes are the engine's.
func (t *Tiered) DirtyStripes() []int {
	out := make([]int, len(t.dirtyStripes))
	for i, ds := range t.dirtyStripes {
		ds.mu.Lock()
		out[i] = len(ds.entries)
		ds.mu.Unlock()
	}
	return out
}

// Policy reports the configured synchronization policy.
func (t *Tiered) Policy() Policy { return t.opts.Policy }

// MissRatio returns misses/requests (the MR of the cost model).
func (t *Tiered) MissRatio() float64 {
	r := t.reqs.Load()
	if r == 0 {
		return 0
	}
	return float64(t.misses.Load()) / float64(r)
}

// Engine exposes the cache-tier engine (for measurement).
func (t *Tiered) Engine() *engine.Engine { return t.eng }

// Close flushes dirty data and stops background work.
func (t *Tiered) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.stopCh)
	// Release every stripe's backpressured writers. The broadcast must
	// hold the stripe lock: a writer between its closed-check and
	// cond.Wait would otherwise miss an unlocked broadcast and sleep
	// through shutdown.
	for _, ds := range t.dirtyStripes {
		ds.mu.Lock()
		ds.cond.Broadcast()
		ds.mu.Unlock()
	}
	t.wg.Wait()
	if t.opts.Policy == WriteBack {
		return t.flushDirty(0) // final full flush
	}
	return nil
}
