package cache

import "tierbase/internal/engine"

// Cross-tier read-modify-write support. Commands that mutate engine state
// in place (INCR, SETNX, CAS, every collection write) cannot route their
// mutation through Set/Delete — the engine op IS the mutation — so the
// server runs them as:
//
//	tiered.Warm(key)                 // fault storage state into the engine
//	tiered.Locked(key, func() error {
//	    ... engine op ...
//	    return tiered.PropagateX(key, result)
//	})
//
// Warm makes the engine authoritative for the key before the op (so INCR
// composes with a value that was evicted, or that predates a restart).
// Locked serializes the op+propagate pair per stripe: without it, two
// INCRs could enqueue their captured results out of engine order and the
// storage tier would converge on the older value. Propagate* then pushes
// the outcome through the normal write path (per-key ordering, write-back
// dirty set, coalescing) WITHOUT re-applying it to the primary engine —
// the op already ran there, and replaying a captured value could briefly
// roll back a newer concurrent update. Replicas do get the outcome (they
// never saw the in-place op).

// Warm faults key into the cache tier from the storage tier if it is not
// resident, so a subsequent engine op observes tiered state. Typed blobs
// install as collections; misses and storage errors are ignored (the op
// then sees an absent key, which is the best available answer).
func (t *Tiered) Warm(key string) {
	if t.opts.Policy == CacheOnly || t.eng.Exists(key) {
		return
	}
	_, _ = t.Get(key)
}

// Locked runs fn under key's RMW stripe lock, serializing it against
// other Locked calls for keys on the same engine stripe.
func (t *Tiered) Locked(key string, fn func() error) error {
	mu := &t.rmw[t.eng.ShardIndex(key)]
	mu.Lock()
	defer mu.Unlock()
	return fn()
}

// PropagateString routes an engine-applied string outcome (INCR result,
// SETNX/CAS value) to the storage tier through the configured write path.
// The sink is fed before the policy switch — the engine already holds
// the outcome, and CacheOnly deployments replicate too.
func (t *Tiered) PropagateString(key string, val []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if t.sink != nil {
		t.sink.ReplicateSet(key, val, false)
	}
	switch t.opts.Policy {
	case WriteThrough:
		return t.writeThrough(key, val, false, false, true)
	case WriteBack:
		return t.writeBack(key, val, false, false, true)
	}
	return nil // cache-only: the engine already holds the whole truth
}

// PropagateEncoded routes a typed collection blob (engine.EncodeCollection
// output) to the storage tier.
func (t *Tiered) PropagateEncoded(key string, blob []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if t.sink != nil {
		t.sink.ReplicateSet(key, blob, true)
	}
	switch t.opts.Policy {
	case WriteThrough:
		return t.writeThrough(key, blob, false, true, true)
	case WriteBack:
		return t.writeBack(key, blob, false, true, true)
	}
	return nil
}

// PropagateDelete routes an engine-applied deletion (a collection emptied
// by its last pop) to the storage tier.
func (t *Tiered) PropagateDelete(key string) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if t.sink != nil {
		t.sink.ReplicateDelete(key)
	}
	switch t.opts.Policy {
	case WriteThrough:
		return t.writeThrough(key, nil, true, false, true)
	case WriteBack:
		return t.writeBack(key, nil, true, false, true)
	}
	return nil
}

// applyPropagated lands a propagated outcome on the replicas and the LRU
// bookkeeping once its write path accepts it. The primary engine is NOT
// touched: the op already ran there.
func (t *Tiered) applyPropagated(key string, val []byte, del, enc bool) {
	if del {
		for _, r := range t.opts.Replicas {
			r.Del(key)
		}
		t.forget(key)
		return
	}
	for _, r := range t.opts.Replicas {
		if enc {
			r.LoadEncoded(key, val)
		} else {
			r.Set(key, val)
		}
	}
	t.touch(key)
	t.maybeEvictKey(key)
}

// decodeStorageValue interprets a raw storage value for a string reader:
// typed blobs surface as engine.ErrWrongType (the key is a collection),
// escaped strings unescape. The returned slice may alias v.
func decodeStorageValue(v []byte) ([]byte, error) {
	if engine.IsTypedValue(v) {
		return nil, engine.ErrWrongType
	}
	return engine.UnescapeStringValue(v), nil
}
