package cache

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/engine"
)

// Cache-tier benchmarks: the batch fast path with LRU bookkeeping active
// (CacheCapacityBytes > 0 so every hit promotes its key). Run with -cpu to
// see how eviction bookkeeping scales with cores; these are the numbers
// the CI bench job records as the perf trajectory baseline.

const benchKeys = 4096

func newBenchTiered(b *testing.B, capacity int64) *Tiered {
	b.Helper()
	stor := NewMapStorage()
	tr, err := New(Options{
		Policy:             WriteThrough,
		Engine:             engine.New(engine.Options{}),
		Storage:            stor,
		CacheCapacityBytes: capacity,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	val := []byte("0123456789abcdef0123456789abcdef")
	for i := 0; i < benchKeys; i++ {
		if err := tr.Set(fmt.Sprintf("bench:%04d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

// BenchmarkTieredBatchGet measures parallel 16-key batch reads served
// entirely from the cache tier while the capacity LRU tracks every hit.
func BenchmarkTieredBatchGet(b *testing.B) {
	tr := newBenchTiered(b, 1<<30) // bounded => LRU active, no eviction
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		keys := make([]string, 16)
		for pb.Next() {
			base := int(seq.Add(1)) * 17
			for j := range keys {
				keys[j] = fmt.Sprintf("bench:%04d", (base+j*13)%benchKeys)
			}
			if _, err := tr.BatchGet(keys); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTieredGetHit measures parallel single-key cache hits with LRU
// promotion on every read.
func BenchmarkTieredGetHit(b *testing.B) {
	tr := newBenchTiered(b, 1<<30)
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := fmt.Sprintf("bench:%04d", int(seq.Add(1))*31%benchKeys)
			if _, err := tr.Get(k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTieredSetDirtyEvictionScan measures parallel writes while the
// cache sits over budget with a large unflushable dirty set: every write
// triggers an eviction scan that must walk past dirty entries. The global
// LRU walked the entire list per scan (O(resident)); the striped LRU
// walks one stripe (O(resident/shards)), which shows even without
// hardware parallelism.
func BenchmarkTieredSetDirtyEvictionScan(b *testing.B) {
	stor := NewMapStorage()
	tr, err := New(Options{
		Policy:             WriteBack,
		Engine:             engine.New(engine.Options{}),
		Storage:            stor,
		CacheCapacityBytes: 64 << 10,
		FlushBatch:         1 << 20, // never reached: dirty set stays put
		FlushInterval:      time.Hour,
		MaxDirty:           1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		tr.FlushDirty() // unblock Close's final flush
		tr.Close()
	})
	val := []byte("0123456789abcdef0123456789abcdef0123456789abcdef")
	for i := 0; i < benchKeys; i++ {
		if err := tr.Set(fmt.Sprintf("dirty:%04d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := fmt.Sprintf("dirty:%04d", int(seq.Add(1))*31%benchKeys)
			if err := tr.Set(k, val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- write-path benchmarks (the CI bench artifact's write coverage) ---

// BenchmarkWTSetSameKey measures write-through writes from all goroutines
// converging on ONE hot key: the per-key coalescing queue is the whole
// benchmark. Before the write path was striped this also serialized every
// other write in the store on the global queue-map lock.
func BenchmarkWTSetSameKey(b *testing.B) {
	tr := newBenchTiered(b, 1<<30)
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := tr.Set("bench:0000", val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWTSetSpreadKeys measures write-through writes spread across
// the keyspace: queue admission should scale with stripes, not fight
// over one map lock.
func BenchmarkWTSetSpreadKeys(b *testing.B) {
	tr := newBenchTiered(b, 1<<30)
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := fmt.Sprintf("bench:%04d", int(seq.Add(1))*31%benchKeys)
			if err := tr.Set(k, val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWTSetHotSpreadMix interleaves hot-key writes with spread-key
// writes: the contended single-key path sharing the store with unrelated
// write traffic. Striped queues isolate the hot key's coalescing from the
// spread admissions; the old global queue-map lock serialized them all.
func BenchmarkWTSetHotSpreadMix(b *testing.B) {
	tr := newBenchTiered(b, 1<<30)
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := int(seq.Add(1))
			if n%4 == 0 {
				if err := tr.Set("bench:0000", val); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if err := tr.Set(fmt.Sprintf("bench:%04d", n*31%benchKeys), val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWBSetFlushThroughput measures sustained write-back writes with
// the background flusher draining: dirty admission (striped, per-stripe
// backpressure) plus flush rounds, the full async write pipeline.
func BenchmarkWBSetFlushThroughput(b *testing.B) {
	stor := NewMapStorage()
	tr, err := New(Options{
		Policy:     WriteBack,
		Engine:     engine.New(engine.Options{}),
		Storage:    stor,
		FlushBatch: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := fmt.Sprintf("bench:%04d", int(seq.Add(1))*31%benchKeys)
			if err := tr.Set(k, val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWBBackpressureSaturated measures write-back writes with the
// dirty set pinned at its budget: every write waits for a flush to free
// its slot. This is the thundering-herd benchmark — the old single
// dirtyCond broadcast-woke EVERY blocked writer on every flush round
// (O(waiters) spurious wakeups per freed slot); per-stripe conds wake
// only the stripe that drained.
func BenchmarkWBBackpressureSaturated(b *testing.B) {
	stor := NewMapStorage()
	tr, err := New(Options{
		Policy:        WriteBack,
		Engine:        engine.New(engine.Options{}),
		Storage:       stor,
		MaxDirty:      64, // 4-slot stripe budgets: writers block routinely
		FlushBatch:    32,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := fmt.Sprintf("bench:%04d", int(seq.Add(1))*31%benchKeys)
			if err := tr.Set(k, val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWTBatchVsSingle compares one 16-key BatchPut against 16
// single-key Sets — the ordering-unification cost: the batch pays queue
// admission per key but still commits all led keys in one storage round
// trip.
func BenchmarkWTBatchVsSingle(b *testing.B) {
	val := []byte("0123456789abcdef0123456789abcdef")
	keysOf := func(base int) []string {
		keys := make([]string, 16)
		for j := range keys {
			keys[j] = fmt.Sprintf("bench:%04d", (base+j*13)%benchKeys)
		}
		return keys
	}
	b.Run("batch16", func(b *testing.B) {
		tr := newBenchTiered(b, 1<<30)
		b.ReportAllocs()
		b.ResetTimer()
		var seq atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				entries := make(map[string][]byte, 16)
				for _, k := range keysOf(int(seq.Add(1)) * 17) {
					entries[k] = val
				}
				if err := tr.BatchPut(entries); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("single16", func(b *testing.B) {
		tr := newBenchTiered(b, 1<<30)
		b.ReportAllocs()
		b.ResetTimer()
		var seq atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				for _, k := range keysOf(int(seq.Add(1)) * 17) {
					if err := tr.Set(k, val); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	})
}

// BenchmarkWTBatchPutRemote measures 16-key write-through batches against
// a storage tier with a real round-trip latency — the deployment the
// batch fast path exists for. The whole batch must cost ~one RTT
// (uncontended keys share one grouped BatchPut); this is the number that
// must not regress as batches route through the ordering queues.
func BenchmarkWTBatchPutRemote(b *testing.B) {
	stor := NewMapStorage()
	remote := NewRemote(stor, 100*time.Microsecond)
	tr, err := New(Options{
		Policy:  WriteThrough,
		Engine:  engine.New(engine.Options{}),
		Storage: remote,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			entries := make(map[string][]byte, 16)
			base := int(seq.Add(1)) * 17
			for j := 0; j < 16; j++ {
				entries[fmt.Sprintf("bench:%04d", (base+j*13)%benchKeys)] = val
			}
			if err := tr.BatchPut(entries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTieredBatchPut measures parallel 16-key batch writes under
// capacity pressure (eviction churn across stripes).
func BenchmarkTieredBatchPut(b *testing.B) {
	tr := newBenchTiered(b, 256<<10) // tight budget: eviction runs steadily
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// Fresh map per iteration: reusing one map accumulated keys
			// across iterations, silently growing the "16-key" batch to
			// the whole keyspace.
			entries := make(map[string][]byte, 16)
			base := int(seq.Add(1)) * 17
			for j := 0; j < 16; j++ {
				entries[fmt.Sprintf("bench:%04d", (base+j*13)%benchKeys)] = val
			}
			if err := tr.BatchPut(entries); err != nil {
				b.Fatal(err)
			}
		}
	})
}
