package cache

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/engine"
)

// Cache-tier benchmarks: the batch fast path with LRU bookkeeping active
// (CacheCapacityBytes > 0 so every hit promotes its key). Run with -cpu to
// see how eviction bookkeeping scales with cores; these are the numbers
// the CI bench job records as the perf trajectory baseline.

const benchKeys = 4096

func newBenchTiered(b *testing.B, capacity int64) *Tiered {
	b.Helper()
	stor := NewMapStorage()
	tr, err := New(Options{
		Policy:             WriteThrough,
		Engine:             engine.New(engine.Options{}),
		Storage:            stor,
		CacheCapacityBytes: capacity,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	val := []byte("0123456789abcdef0123456789abcdef")
	for i := 0; i < benchKeys; i++ {
		if err := tr.Set(fmt.Sprintf("bench:%04d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

// BenchmarkTieredBatchGet measures parallel 16-key batch reads served
// entirely from the cache tier while the capacity LRU tracks every hit.
func BenchmarkTieredBatchGet(b *testing.B) {
	tr := newBenchTiered(b, 1<<30) // bounded => LRU active, no eviction
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		keys := make([]string, 16)
		for pb.Next() {
			base := int(seq.Add(1)) * 17
			for j := range keys {
				keys[j] = fmt.Sprintf("bench:%04d", (base+j*13)%benchKeys)
			}
			if _, err := tr.BatchGet(keys); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTieredGetHit measures parallel single-key cache hits with LRU
// promotion on every read.
func BenchmarkTieredGetHit(b *testing.B) {
	tr := newBenchTiered(b, 1<<30)
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := fmt.Sprintf("bench:%04d", int(seq.Add(1))*31%benchKeys)
			if _, err := tr.Get(k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTieredSetDirtyEvictionScan measures parallel writes while the
// cache sits over budget with a large unflushable dirty set: every write
// triggers an eviction scan that must walk past dirty entries. The global
// LRU walked the entire list per scan (O(resident)); the striped LRU
// walks one stripe (O(resident/shards)), which shows even without
// hardware parallelism.
func BenchmarkTieredSetDirtyEvictionScan(b *testing.B) {
	stor := NewMapStorage()
	tr, err := New(Options{
		Policy:             WriteBack,
		Engine:             engine.New(engine.Options{}),
		Storage:            stor,
		CacheCapacityBytes: 64 << 10,
		FlushBatch:         1 << 20, // never reached: dirty set stays put
		FlushInterval:      time.Hour,
		MaxDirty:           1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		tr.FlushDirty() // unblock Close's final flush
		tr.Close()
	})
	val := []byte("0123456789abcdef0123456789abcdef0123456789abcdef")
	for i := 0; i < benchKeys; i++ {
		if err := tr.Set(fmt.Sprintf("dirty:%04d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := fmt.Sprintf("dirty:%04d", int(seq.Add(1))*31%benchKeys)
			if err := tr.Set(k, val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTieredBatchPut measures parallel 16-key batch writes under
// capacity pressure (eviction churn across stripes).
func BenchmarkTieredBatchPut(b *testing.B) {
	tr := newBenchTiered(b, 256<<10) // tight budget: eviction runs steadily
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		entries := make(map[string][]byte, 16)
		for pb.Next() {
			base := int(seq.Add(1)) * 17
			for j := 0; j < 16; j++ {
				entries[fmt.Sprintf("bench:%04d", (base+j*13)%benchKeys)] = val
			}
			if err := tr.BatchPut(entries); err != nil {
				b.Fatal(err)
			}
		}
	})
}
