// Package cache implements TierBase's tiered storage layer (paper §4.1):
// a cache tier (the in-memory engine) synchronized with a disaggregated
// storage tier through write-through or write-back policies. It contains
// the techniques the paper credits for a low miss penalty and low storage
// cost: per-key write queues, write coalescing (group commit), dirty-data
// batching with backpressure, deferred cache-fetching, and cache-content
// replication.
package cache

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/lsm"
)

// ErrNotFound is returned when a key is absent from both tiers.
var ErrNotFound = errors.New("cache: key not found")

// Storage is the pluggable storage-tier adapter (paper §3: "TierBase
// offers various disaggregated storage options through a pluggable storage
// adapter"). Implementations must be safe for concurrent use.
//
// Presence is explicit — the (value, ok) shape. The old convention
// ("absent maps to nil") could not represent a stored empty value, so
// `SET k ""` silently degraded to absent once the key went cold and
// round-tripped through storage. Now:
//
//   - Get returns ok=false for absence (not an error); a present empty
//     value is ([]byte{}, true, nil).
//   - BatchGet returns only present keys — absence is a missing map
//     entry (the map lookup is the (value, ok)) — and present values are
//     always non-nil, even when empty.
type Storage interface {
	// Get returns the value for key and whether it exists.
	Get(key string) (val []byte, ok bool, err error)
	Put(key string, val []byte) error
	Delete(key string) error
	// BatchGet fetches many keys in one round trip. Present keys appear
	// in the result with a non-nil (possibly empty) value; absent keys
	// are omitted.
	BatchGet(keys []string) (map[string][]byte, error)
	// BatchPut applies many writes in one round trip; nil value = delete.
	// The nil-deletes contract is load-bearing: the write-through batch
	// commit (wtCommitGroup) relies on it to carry a mixed put/delete
	// batch in a single round trip.
	BatchPut(entries map[string][]byte) error
	// BatchDelete removes many keys in one round trip.
	BatchDelete(keys []string) error
}

// StorageFlusher is the optional bulk-clear extension of Storage. A
// replicated FLUSHALL must empty the storage tier too — otherwise
// flushed keys resurrect from storage on the next cache miss (the same
// failure mode ROADMAP.md records for TTL expiry). Implementations clear
// every key in (logically) one operation.
type StorageFlusher interface {
	FlushAll() error
}

// FlushStorage clears every key from s. Storage implementations that
// support bulk clearing implement StorageFlusher; for the rest this
// reports an error rather than silently leaving stale keys behind.
func FlushStorage(s Storage) error {
	if f, ok := s.(StorageFlusher); ok {
		return f.FlushAll()
	}
	return errors.New("cache: storage does not support FlushAll")
}

// presentValue normalizes a known-present value to the BatchGet/Get
// contract: a private copy, non-nil even when empty (make never returns
// nil, so a stored empty — or nil — value stays present-empty).
func presentValue(v []byte) []byte {
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// --- LSM adapter ---

// LSMStorage adapts an lsm.DB to the Storage interface — the UCS role.
type LSMStorage struct {
	DB *lsm.DB
}

// NewLSMStorage wraps db.
func NewLSMStorage(db *lsm.DB) *LSMStorage { return &LSMStorage{DB: db} }

// Get implements Storage. The LSM collapses empty values to nil
// internally; presence comes from the tombstone check, so a stored empty
// value still reports ok=true with a non-nil empty slice.
func (s *LSMStorage) Get(key string) ([]byte, bool, error) {
	v, err := s.DB.Get([]byte(key))
	if err == lsm.ErrNotFound {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return presentValue(v), true, nil
}

// Put implements Storage.
func (s *LSMStorage) Put(key string, val []byte) error {
	return s.DB.Put([]byte(key), val)
}

// Delete implements Storage.
func (s *LSMStorage) Delete(key string) error {
	return s.DB.Delete([]byte(key))
}

// BatchGet implements Storage natively: one lsm.DB.MultiGet resolves the
// whole batch in a single snapshot and level walk (sorted keys, shared
// block decodes) — the old per-key DB.Get loop paid one snapshot and one
// full hierarchy probe per key.
func (s *LSMStorage) BatchGet(keys []string) (map[string][]byte, error) {
	bkeys := make([][]byte, len(keys))
	for i, k := range keys {
		bkeys[i] = []byte(k)
	}
	vals, found, err := s.DB.MultiGet(bkeys)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for i, k := range keys {
		if found[i] {
			// MultiGet's contract already matches presentValue's: found
			// values are private non-nil copies — no second copy needed.
			out[k] = vals[i]
		}
	}
	return out, nil
}

// BatchPut implements Storage natively: the whole batch (mixed puts and
// nil-value deletes) commits as one lsm.Batch — one sequence range, one
// WAL append, one fsync window — instead of one write-lock round and WAL
// record per key.
func (s *LSMStorage) BatchPut(entries map[string][]byte) error {
	b := &lsm.Batch{}
	for k, v := range entries {
		if v == nil {
			b.Delete([]byte(k))
		} else {
			b.Put([]byte(k), v)
		}
	}
	return s.DB.Apply(b)
}

// BatchDelete implements Storage natively: one batch of tombstones, one
// WAL append.
func (s *LSMStorage) BatchDelete(keys []string) error {
	b := &lsm.Batch{}
	for _, k := range keys {
		b.Delete([]byte(k))
	}
	return s.DB.Apply(b)
}

// FlushAll implements StorageFlusher by scanning live keys in bounded
// batches and writing a tombstone batch for each — the LSM has no
// O(1) truncate, so this is the honest cost of a replicated FLUSHALL
// against the UCS role. Each round scans from just past the previous
// batch's last key, so the loop terminates even while concurrent
// writers add keys behind the scan cursor.
func (s *LSMStorage) FlushAll() error {
	const batch = 512
	var start []byte
	for {
		kvs, err := s.DB.Scan(start, nil, batch)
		if err != nil {
			return err
		}
		if len(kvs) == 0 {
			return nil
		}
		b := &lsm.Batch{}
		for _, kv := range kvs {
			b.Delete(kv.Key)
		}
		if err := s.DB.Apply(b); err != nil {
			return err
		}
		last := kvs[len(kvs)-1].Key
		start = append(append([]byte(nil), last...), 0)
		if len(kvs) < batch {
			return nil
		}
	}
}

// --- remote wrapper: models the disaggregation network hop ---

// Remote wraps a Storage with a per-round-trip latency (the cache/storage
// disaggregation cost) and RPC counters. Batch operations pay one round
// trip — this is exactly why the paper's batching optimizations lower
// PC_miss and PC_storage.
type Remote struct {
	Inner Storage
	// RTT is the injected round-trip latency per call (0 = none).
	RTT time.Duration

	gets      atomic.Int64
	puts      atomic.Int64
	deletes   atomic.Int64
	batchGets atomic.Int64
	batchPuts atomic.Int64
	batchDels atomic.Int64
	flushes   atomic.Int64
	keysMoved atomic.Int64
}

// NewRemote wraps inner with rtt per round trip.
func NewRemote(inner Storage, rtt time.Duration) *Remote {
	return &Remote{Inner: inner, RTT: rtt}
}

func (r *Remote) pause() {
	if r.RTT <= 0 {
		return
	}
	// Spin-wait: time.Sleep floors at the kernel tick (>1 ms on coarse
	// timers), which would inflate sub-millisecond RTTs by an order of
	// magnitude and distort every miss-penalty measurement. Yield each
	// iteration: a network round trip leaves the CPU free, so goroutines
	// waiting to run (e.g. writers that should coalesce behind this one)
	// must get the processor even at GOMAXPROCS=1.
	deadline := time.Now().Add(r.RTT)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Get implements Storage.
func (r *Remote) Get(key string) ([]byte, bool, error) {
	r.gets.Add(1)
	r.pause()
	return r.Inner.Get(key)
}

// Put implements Storage.
func (r *Remote) Put(key string, val []byte) error {
	r.puts.Add(1)
	r.pause()
	return r.Inner.Put(key, val)
}

// Delete implements Storage.
func (r *Remote) Delete(key string) error {
	r.deletes.Add(1)
	r.pause()
	return r.Inner.Delete(key)
}

// BatchGet implements Storage.
func (r *Remote) BatchGet(keys []string) (map[string][]byte, error) {
	r.batchGets.Add(1)
	r.keysMoved.Add(int64(len(keys)))
	r.pause()
	return r.Inner.BatchGet(keys)
}

// BatchPut implements Storage.
func (r *Remote) BatchPut(entries map[string][]byte) error {
	r.batchPuts.Add(1)
	r.keysMoved.Add(int64(len(entries)))
	r.pause()
	return r.Inner.BatchPut(entries)
}

// BatchDelete implements Storage.
func (r *Remote) BatchDelete(keys []string) error {
	r.batchDels.Add(1)
	r.keysMoved.Add(int64(len(keys)))
	r.pause()
	return r.Inner.BatchDelete(keys)
}

// FlushAll implements StorageFlusher when the inner storage does; one
// round trip regardless of key count (the whole point of pushing the
// clear down instead of enumerating keys over the wire).
func (r *Remote) FlushAll() error {
	r.flushes.Add(1)
	r.pause()
	return FlushStorage(r.Inner)
}

// RPCStats reports storage-tier round trips by type.
type RPCStats struct {
	Gets, Puts, Deletes, BatchGets, BatchPuts, BatchDels, Flushes, KeysMoved int64
}

// Stats returns the RPC counters.
func (r *Remote) Stats() RPCStats {
	return RPCStats{
		Gets:      r.gets.Load(),
		Puts:      r.puts.Load(),
		Deletes:   r.deletes.Load(),
		BatchGets: r.batchGets.Load(),
		BatchPuts: r.batchPuts.Load(),
		BatchDels: r.batchDels.Load(),
		Flushes:   r.flushes.Load(),
		KeysMoved: r.keysMoved.Load(),
	}
}

// TotalRPCs returns the total number of storage round trips.
func (r *Remote) TotalRPCs() int64 {
	s := r.Stats()
	return s.Gets + s.Puts + s.Deletes + s.BatchGets + s.BatchPuts + s.BatchDels + s.Flushes
}

// --- map storage: in-memory test double / pure-cache backend ---

// MapStorage is a trivial Storage for tests and cache-only deployments.
type MapStorage struct {
	mu sync.RWMutex
	m  map[string][]byte
	// FailPuts makes writes fail (for write-through failure-path tests).
	FailPuts atomic.Bool
}

// NewMapStorage returns an empty MapStorage.
func NewMapStorage() *MapStorage { return &MapStorage{m: make(map[string][]byte)} }

var errInjectedFailure = errors.New("cache: injected storage failure")

// Get implements Storage.
func (s *MapStorage) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[key]
	if !ok {
		return nil, false, nil
	}
	return presentValue(v), true, nil
}

// Put implements Storage.
func (s *MapStorage) Put(key string, val []byte) error {
	if s.FailPuts.Load() {
		return errInjectedFailure
	}
	s.mu.Lock()
	s.m[key] = append([]byte(nil), val...)
	s.mu.Unlock()
	return nil
}

// Delete implements Storage.
func (s *MapStorage) Delete(key string) error {
	if s.FailPuts.Load() {
		return errInjectedFailure
	}
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

// BatchGet implements Storage.
func (s *MapStorage) BatchGet(keys []string) (map[string][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := s.m[k]; ok {
			out[k] = presentValue(v)
		}
	}
	return out, nil
}

// BatchPut implements Storage.
func (s *MapStorage) BatchPut(entries map[string][]byte) error {
	if s.FailPuts.Load() {
		return errInjectedFailure
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range entries {
		if v == nil {
			delete(s.m, k)
		} else {
			s.m[k] = append([]byte(nil), v...)
		}
	}
	return nil
}

// BatchDelete implements Storage.
func (s *MapStorage) BatchDelete(keys []string) error {
	if s.FailPuts.Load() {
		return errInjectedFailure
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		delete(s.m, k)
	}
	return nil
}

// FlushAll implements StorageFlusher.
func (s *MapStorage) FlushAll() error {
	if s.FailPuts.Load() {
		return errInjectedFailure
	}
	s.mu.Lock()
	s.m = make(map[string][]byte)
	s.mu.Unlock()
	return nil
}

// Len returns the number of stored keys.
func (s *MapStorage) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
