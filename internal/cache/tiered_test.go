package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"tierbase/internal/engine"
	"tierbase/internal/lsm"
)

func newWT(t *testing.T, stor Storage) *Tiered {
	t.Helper()
	tr, err := New(Options{Policy: WriteThrough, Engine: engine.New(engine.Options{}), Storage: stor})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func newWB(t *testing.T, stor Storage, opts ...func(*Options)) *Tiered {
	t.Helper()
	o := Options{
		Policy:        WriteBack,
		Engine:        engine.New(engine.Options{}),
		Storage:       stor,
		FlushBatch:    8,
		FlushInterval: 10 * time.Millisecond,
	}
	for _, f := range opts {
		f(&o)
	}
	tr, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Policy: WriteThrough}); err == nil {
		t.Fatal("missing engine accepted")
	}
	if _, err := New(Options{Policy: WriteThrough, Engine: engine.New(engine.Options{})}); err == nil {
		t.Fatal("missing storage accepted")
	}
	if _, err := New(Options{Policy: CacheOnly, Engine: engine.New(engine.Options{})}); err != nil {
		t.Fatalf("cache-only should not need storage: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if CacheOnly.String() != "cache-only" || WriteThrough.String() != "write-through" || WriteBack.String() != "write-back" {
		t.Fatal("policy names")
	}
}

// --- write-through ---

func TestWTSetReachesStorageSynchronously(t *testing.T) {
	stor := NewMapStorage()
	tr := newWT(t, stor)
	if err := tr.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Synchronous: value must already be durable.
	v, ok, err := stor.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("storage: %q %v %v", v, ok, err)
	}
	// And cached.
	v, err = tr.Engine().Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("cache: %q %v", v, err)
	}
}

func TestWTStorageFailureInvalidatesCache(t *testing.T) {
	stor := NewMapStorage()
	tr := newWT(t, stor)
	tr.Set("k", []byte("v1"))
	stor.FailPuts.Store(true)
	if err := tr.Set("k", []byte("v2")); err == nil {
		t.Fatal("failed storage write must surface")
	}
	// Cache entry must be invalidated so readers refetch from storage.
	if _, err := tr.Engine().Get("k"); err != engine.ErrNotFound {
		t.Fatalf("cache should be invalidated: %v", err)
	}
	stor.FailPuts.Store(false)
	v, err := tr.Get("k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("refetch: %q %v", v, err)
	}
}

func TestWTDelete(t *testing.T) {
	stor := NewMapStorage()
	tr := newWT(t, stor)
	tr.Set("k", []byte("v"))
	if err := tr.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := stor.Get("k"); ok {
		t.Fatal("storage still has key")
	}
	if _, err := tr.Get("k"); err != ErrNotFound {
		t.Fatalf("get after delete: %v", err)
	}
}

// TestWTCoalescing: hot-key write coalescing through the per-key queues.
// Plain SET now holds its RMW stripe lock through the storage commit
// (strict per-key ordering for replication), so concurrent same-key SETs
// serialize instead of coalescing; the coalescing path that remains is
// the queue piggyback used by batch writes, exercised here with
// single-entry batches hammering one hot key.
func TestWTCoalescing(t *testing.T) {
	stor := NewMapStorage()
	slow := NewRemote(stor, 2*time.Millisecond)
	tr, err := New(Options{Policy: WriteThrough, Engine: engine.New(engine.Options{}), Storage: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	const writers = 20
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries := map[string][]byte{"hot": []byte(fmt.Sprintf("v%02d", i))}
			if err := tr.BatchPut(entries); err != nil {
				t.Errorf("batchput: %v", err)
			}
		}(i)
	}
	wg.Wait()
	// With a 2 ms RTT and 20 concurrent writers, coalescing must make
	// storage round trips far fewer than writers.
	puts := slow.Stats().Puts
	if puts >= writers {
		t.Fatalf("no coalescing: %d puts for %d writers", puts, writers)
	}
	// Cache and storage must converge to the same final value.
	cv, _ := tr.Get("hot")
	sv, _, _ := stor.Get("hot")
	if !bytes.Equal(cv, sv) {
		t.Fatalf("divergence: cache=%q storage=%q", cv, sv)
	}
}

func TestWTCoalescingDisabled(t *testing.T) {
	stor := NewMapStorage()
	remote := NewRemote(stor, 0)
	tr, err := New(Options{
		Policy: WriteThrough, Engine: engine.New(engine.Options{}),
		Storage: remote, DisableCoalescing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 10; i++ {
		tr.Set("k", []byte("v"))
	}
	if remote.Stats().Puts != 10 {
		t.Fatalf("ablation: expected 10 puts, got %d", remote.Stats().Puts)
	}
}

func TestWTPerKeyOrdering(t *testing.T) {
	stor := NewMapStorage()
	tr := newWT(t, stor)
	// Sequential writes from one goroutine must land in order.
	for i := 0; i < 100; i++ {
		if err := tr.Set("seq", []byte(fmt.Sprintf("%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, _, _ := stor.Get("seq")
	if string(v) != "099" {
		t.Fatalf("final storage value %q", v)
	}
}

func TestWTUpdateRMW(t *testing.T) {
	stor := NewMapStorage()
	stor.Put("ctr", []byte("10"))
	tr := newWT(t, stor)
	err := tr.Update("ctr", func(old []byte, exists bool) []byte {
		if !exists {
			t.Fatal("existing key reported absent")
		}
		return append(old, '!')
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ := stor.Get("ctr")
	if string(v) != "10!" {
		t.Fatalf("rmw result %q", v)
	}
}

// --- write-back ---

func TestWBAcksBeforeStorage(t *testing.T) {
	stor := NewMapStorage()
	slow := NewRemote(stor, 5*time.Millisecond)
	tr := newWB(t, slow, func(o *Options) { o.FlushInterval = time.Hour; o.FlushBatch = 1000 })
	start := time.Now()
	for i := 0; i < 50; i++ {
		if err := tr.Set(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("write-back writes should not wait on storage: %v", el)
	}
	if tr.Stats().Dirty != 50 {
		t.Fatalf("dirty count %d", tr.Stats().Dirty)
	}
	// Data visible in cache immediately.
	if v, err := tr.Get("k0"); err != nil || string(v) != "v" {
		t.Fatalf("cache read: %q %v", v, err)
	}
}

func TestWBFlushesInBatches(t *testing.T) {
	stor := NewMapStorage()
	remote := NewRemote(stor, 0)
	tr := newWB(t, remote, func(o *Options) { o.FlushBatch = 10; o.FlushInterval = 5 * time.Millisecond })
	for i := 0; i < 100; i++ {
		tr.Set(fmt.Sprintf("k%02d", i), []byte("v"))
	}
	if err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if stor.Len() != 100 {
		t.Fatalf("storage has %d keys", stor.Len())
	}
	st := remote.Stats()
	if st.BatchPuts == 0 || st.Puts > 0 {
		t.Fatalf("writes should go through batches: %+v", st)
	}
	// Batch efficiency: far fewer round trips than keys.
	if st.BatchPuts > 30 {
		t.Fatalf("too many batch round trips: %d", st.BatchPuts)
	}
}

func TestWBMergesUpdatesToSameKey(t *testing.T) {
	stor := NewMapStorage()
	remote := NewRemote(stor, 0)
	tr := newWB(t, remote, func(o *Options) { o.FlushInterval = time.Hour; o.FlushBatch = 1000 })
	for i := 0; i < 50; i++ {
		tr.Set("hot", []byte(fmt.Sprintf("v%02d", i)))
	}
	tr.FlushDirty()
	if moved := remote.Stats().KeysMoved; moved != 1 {
		t.Fatalf("same-key updates not merged: %d keys moved", moved)
	}
	v, _, _ := stor.Get("hot")
	if string(v) != "v49" {
		t.Fatalf("final value %q", v)
	}
}

func TestWBDeleteTombstoneShadowsStorage(t *testing.T) {
	stor := NewMapStorage()
	stor.Put("k", []byte("stale"))
	tr := newWB(t, stor, func(o *Options) { o.FlushInterval = time.Hour; o.FlushBatch = 1000 })
	// Key in storage, absent in cache. Delete writes a dirty tombstone.
	if err := tr.Delete("k"); err != nil {
		t.Fatal(err)
	}
	// A read must NOT resurrect the stale storage value.
	if _, err := tr.Get("k"); err != ErrNotFound {
		t.Fatalf("stale resurrection: %v", err)
	}
	tr.FlushDirty()
	if _, ok, _ := stor.Get("k"); ok {
		t.Fatal("tombstone not propagated")
	}
}

func TestWBBackpressure(t *testing.T) {
	stor := NewMapStorage()
	slow := NewRemote(stor, time.Millisecond)
	tr := newWB(t, slow, func(o *Options) {
		o.FlushBatch = 4
		o.MaxDirty = 8
		o.FlushInterval = time.Millisecond
	})
	// Writing far beyond MaxDirty must not grow dirty unboundedly.
	for i := 0; i < 200; i++ {
		if err := tr.Set(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if d := tr.Stats().Dirty; d > 16 {
		t.Fatalf("backpressure ineffective: %d dirty", d)
	}
}

func TestWBUpdateFetchesFromStorage(t *testing.T) {
	stor := NewMapStorage()
	stor.Put("k", []byte("base"))
	remote := NewRemote(stor, 0)
	tr := newWB(t, remote)
	err := tr.Update("k", func(old []byte, exists bool) []byte {
		if !exists || string(old) != "base" {
			t.Fatalf("deferred fetch broken: %q %v", old, exists)
		}
		return append(old, '+')
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.FlushDirty()
	v, _, _ := stor.Get("k")
	if string(v) != "base+" {
		t.Fatalf("value %q", v)
	}
	if remote.Stats().BatchGets == 0 {
		t.Fatal("fetch should use the batched path")
	}
}

func TestWBDeferredFetchBatching(t *testing.T) {
	stor := NewMapStorage()
	for i := 0; i < 32; i++ {
		stor.Put(fmt.Sprintf("k%02d", i), []byte("v"))
	}
	remote := NewRemote(stor, 2*time.Millisecond)
	tr := newWB(t, remote, func(o *Options) { o.FetchWindow = 5 * time.Millisecond })
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Update(fmt.Sprintf("k%02d", i), func(old []byte, _ bool) []byte {
				return append(old, '!')
			})
		}(i)
	}
	wg.Wait()
	st := remote.Stats()
	if st.BatchGets >= 32 {
		t.Fatalf("fetches not batched: %d round trips", st.BatchGets)
	}
}

func TestWBUpdateMissingKey(t *testing.T) {
	stor := NewMapStorage()
	tr := newWB(t, stor)
	err := tr.Update("new", func(old []byte, exists bool) []byte {
		if exists {
			t.Fatal("missing key reported present")
		}
		return []byte("created")
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr.Get("new")
	if err != nil || string(v) != "created" {
		t.Fatalf("%q %v", v, err)
	}
}

func TestWBCloseFlushesEverything(t *testing.T) {
	stor := NewMapStorage()
	eng := engine.New(engine.Options{})
	tr, err := New(Options{
		Policy: WriteBack, Engine: eng, Storage: stor,
		FlushInterval: time.Hour, FlushBatch: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Set(fmt.Sprintf("k%03d", i), []byte("v"))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if stor.Len() != 500 {
		t.Fatalf("close lost dirty data: %d/500 in storage", stor.Len())
	}
	if err := tr.Set("late", []byte("v")); err != ErrClosed {
		t.Fatalf("write after close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// --- miss path, eviction, replication ---

func TestMissPathPopulatesCache(t *testing.T) {
	stor := NewMapStorage()
	stor.Put("cold", []byte("from-storage"))
	tr := newWT(t, stor)
	v, err := tr.Get("cold")
	if err != nil || string(v) != "from-storage" {
		t.Fatalf("%q %v", v, err)
	}
	if tr.Stats().Misses != 1 {
		t.Fatalf("misses %d", tr.Stats().Misses)
	}
	// Second read is a hit served from cache.
	tr.Get("cold")
	if tr.Stats().Hits != 1 {
		t.Fatalf("hits %d", tr.Stats().Hits)
	}
	if tr.MissRatio() != 0.5 {
		t.Fatalf("MR %.2f", tr.MissRatio())
	}
}

func TestCapacityEvictionLRU(t *testing.T) {
	stor := NewMapStorage()
	eng := engine.New(engine.Options{})
	tr, err := New(Options{
		Policy: WriteThrough, Engine: eng, Storage: stor,
		CacheCapacityBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	val := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 50; i++ {
		tr.Set(fmt.Sprintf("k%02d", i), val)
	}
	if eng.MemUsed() > 2048+512 {
		t.Fatalf("cache over capacity: %d", eng.MemUsed())
	}
	if tr.Stats().Evictions == 0 {
		t.Fatal("no evictions")
	}
	// Evicted keys are still readable through storage.
	v, err := tr.Get("k00")
	if err != nil || !bytes.Equal(v, val) {
		t.Fatalf("evicted key lost: %v", err)
	}
}

func TestEvictionSkipsDirty(t *testing.T) {
	stor := NewMapStorage()
	eng := engine.New(engine.Options{})
	tr, err := New(Options{
		Policy: WriteBack, Engine: eng, Storage: stor,
		CacheCapacityBytes: 1024,
		FlushInterval:      time.Hour, FlushBatch: 100000, MaxDirty: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	val := bytes.Repeat([]byte("d"), 100)
	for i := 0; i < 20; i++ {
		tr.Set(fmt.Sprintf("k%02d", i), val)
	}
	// All dirty, nothing flushed: dirty keys must survive in cache even
	// though capacity is exceeded.
	for i := 0; i < 20; i++ {
		if _, err := eng.Get(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatalf("dirty key %d evicted before flush", i)
		}
	}
	// After flushing, eviction can proceed.
	tr.FlushDirty()
	tr.Set("trigger", val)
	if eng.MemUsed() > 4096 {
		t.Fatalf("eviction still blocked after flush: %d bytes", eng.MemUsed())
	}
}

func TestReplicasReceiveMutations(t *testing.T) {
	stor := NewMapStorage()
	replica := engine.New(engine.Options{})
	tr, err := New(Options{
		Policy: WriteBack, Engine: engine.New(engine.Options{}), Storage: stor,
		Replicas: []*engine.Engine{replica},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Set("k", []byte("v"))
	v, err := replica.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("replica: %q %v", v, err)
	}
	tr.Delete("k")
	if _, err := replica.Get("k"); err != engine.ErrNotFound {
		t.Fatalf("replica delete: %v", err)
	}
}

func TestCacheOnlyMode(t *testing.T) {
	tr, err := New(Options{Policy: CacheOnly, Engine: engine.New(engine.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Set("k", []byte("v"))
	v, err := tr.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("%q %v", v, err)
	}
	if _, err := tr.Get("missing"); err != ErrNotFound {
		t.Fatalf("miss: %v", err)
	}
	tr.Delete("k")
	if _, err := tr.Get("k"); err != ErrNotFound {
		t.Fatal("delete failed")
	}
}

func TestTieredOverLSM(t *testing.T) {
	db, err := lsm.Open(lsm.Options{Dir: t.TempDir(), DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tr := newWT(t, NewLSMStorage(db))
	for i := 0; i < 200; i++ {
		if err := tr.Set(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tr.Engine().FlushAll() // force all reads through the storage tier
	for i := 0; i < 200; i++ {
		v, err := tr.Get(fmt.Sprintf("k%03d", i))
		if err != nil || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("lsm roundtrip %d: %q %v", i, v, err)
		}
	}
	tr.Delete("k000")
	if _, err := tr.Get("k000"); err != ErrNotFound {
		t.Fatalf("lsm delete: %v", err)
	}
}

func TestConcurrentMixedTiered(t *testing.T) {
	stor := NewMapStorage()
	tr := newWB(t, stor, func(o *Options) { o.MaxDirty = 64; o.FlushBatch = 16 })
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("k%02d", (g*300+i)%40)
				switch g % 3 {
				case 0:
					tr.Set(k, []byte("v"))
				case 1:
					tr.Get(k)
				case 2:
					tr.Update(k, func(old []byte, _ bool) []byte { return append(old[:0:0], 'u') })
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
}
