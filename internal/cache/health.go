package cache

import (
	"errors"
	"sync/atomic"
	"time"
)

// Storage-tier graceful degradation. The storage tier is a network hop
// away (paper §3's disaggregation), so transient failures — a slow disk,
// a flapping link, a restarting UCS node — are a matter of when, not if.
// Rather than surfacing every blip to clients, the tiered store wraps its
// Storage in retryStorage at construction: every storage call gets a
// bounded retry-with-backoff, and a run of consecutive failures trips the
// store into DEGRADED mode, where reads serve from the cache tier only
// (a miss reports absent instead of stalling on a dead disk) and writes
// fail fast. One probe per DegradedProbeInterval keeps testing the
// storage tier; the first success heals the store back to normal.

// ErrDegraded reports a storage read short-circuited because the store
// is in degraded (cache-only) mode. Read paths translate it to "absent";
// read-modify-write and delete paths surface it, since guessing absence
// there could clobber stored data once the tier recovers.
var ErrDegraded = errors.New("cache: storage degraded, serving cache tier only")

// storageHealth is the shared health state behind retryStorage — all
// atomics, read on every storage call.
type storageHealth struct {
	errors      atomic.Int64 // failed storage attempts (each retry counts)
	retries     atomic.Int64 // retry attempts after a failure
	degradedOps atomic.Int64 // reads short-circuited while degraded
	transitions atomic.Int64 // healthy -> degraded trips
	consecFails atomic.Int64 // consecutive failed calls (resets on success)
	lastProbe   atomic.Int64 // UnixNano of the last degraded-mode probe
	degraded    atomic.Bool
}

// success records a storage call that went through, healing a degraded
// store.
func (h *storageHealth) success() {
	h.consecFails.Store(0)
	h.degraded.CompareAndSwap(true, false)
}

// failure records a failed attempt; degradeAfter consecutive failed
// calls trip degraded mode.
func (h *storageHealth) failure(degradeAfter int64) {
	h.errors.Add(1)
	if h.consecFails.Add(1) >= degradeAfter {
		if h.degraded.CompareAndSwap(false, true) {
			h.transitions.Add(1)
		}
	}
}

// allowRead reports whether a storage read may proceed: always when
// healthy, one probe per interval when degraded (the CAS elects exactly
// one prober; everyone else serves cache-only).
func (h *storageHealth) allowRead(probeInterval time.Duration) bool {
	if !h.degraded.Load() {
		return true
	}
	now := time.Now().UnixNano()
	last := h.lastProbe.Load()
	return now-last >= int64(probeInterval) && h.lastProbe.CompareAndSwap(last, now)
}

// HealthStats is a point-in-time snapshot of storage-tier health,
// surfaced through INFO health.
type HealthStats struct {
	Degraded         bool
	StorageErrors    int64
	StorageRetries   int64
	DegradedOps      int64
	DegradedTransit  int64
	ConsecutiveFails int64
}

func (h *storageHealth) snapshot() HealthStats {
	return HealthStats{
		Degraded:         h.degraded.Load(),
		StorageErrors:    h.errors.Load(),
		StorageRetries:   h.retries.Load(),
		DegradedOps:      h.degradedOps.Load(),
		DegradedTransit:  h.transitions.Load(),
		ConsecutiveFails: h.consecFails.Load(),
	}
}

// retryStorage decorates a Storage with bounded retry-with-backoff and
// the degradation state machine. It is installed by New() in place of
// Options.Storage, so every existing call site — write-through commits,
// write-back flushes, miss fetches, batch round trips — inherits the
// behavior without knowing about it.
type retryStorage struct {
	inner         Storage
	h             *storageHealth
	retries       int           // extra attempts after the first failure
	backoff       time.Duration // sleep before retry i is backoff << i
	degradeAfter  int64
	probeInterval time.Duration
}

func newRetryStorage(inner Storage, retries int, backoff time.Duration,
	degradeAfter int64, probeInterval time.Duration) *retryStorage {
	return &retryStorage{
		inner:         inner,
		h:             &storageHealth{},
		retries:       retries,
		backoff:       backoff,
		degradeAfter:  degradeAfter,
		probeInterval: probeInterval,
	}
}

// do runs one storage operation under the retry/degradation policy.
// Reads are gated first: a degraded store short-circuits them (cache-only
// serving) except for the elected probe. While degraded, ops fail fast —
// a single attempt with no retry sleeps — so a dead disk costs one quick
// error, not retries*backoff per call; the attempt itself still doubles
// as a recovery signal.
func (r *retryStorage) do(read bool, op func() error) error {
	if read && !r.h.allowRead(r.probeInterval) {
		r.h.degradedOps.Add(1)
		return ErrDegraded
	}
	attempts := r.retries
	if r.h.degraded.Load() {
		attempts = 0
	}
	for i := 0; ; i++ {
		err := op()
		if err == nil {
			r.h.success()
			return nil
		}
		r.h.failure(r.degradeAfter)
		if i >= attempts {
			return err
		}
		r.h.retries.Add(1)
		time.Sleep(r.backoff << i)
	}
}

// Get implements Storage.
func (r *retryStorage) Get(key string) ([]byte, bool, error) {
	var val []byte
	var ok bool
	err := r.do(true, func() error {
		var e error
		val, ok, e = r.inner.Get(key)
		return e
	})
	if err != nil {
		return nil, false, err
	}
	return val, ok, nil
}

// Put implements Storage.
func (r *retryStorage) Put(key string, val []byte) error {
	return r.do(false, func() error { return r.inner.Put(key, val) })
}

// Delete implements Storage.
func (r *retryStorage) Delete(key string) error {
	return r.do(false, func() error { return r.inner.Delete(key) })
}

// BatchGet implements Storage.
func (r *retryStorage) BatchGet(keys []string) (map[string][]byte, error) {
	var out map[string][]byte
	err := r.do(true, func() error {
		var e error
		out, e = r.inner.BatchGet(keys)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchPut implements Storage.
func (r *retryStorage) BatchPut(entries map[string][]byte) error {
	return r.do(false, func() error { return r.inner.BatchPut(entries) })
}

// BatchDelete implements Storage.
func (r *retryStorage) BatchDelete(keys []string) error {
	return r.do(false, func() error { return r.inner.BatchDelete(keys) })
}

// FlushAll implements StorageFlusher by forwarding to the inner storage
// (FlushStorage reports an error if it doesn't support bulk clears).
func (r *retryStorage) FlushAll() error {
	return r.do(false, func() error { return FlushStorage(r.inner) })
}

var _ Storage = (*retryStorage)(nil)
var _ StorageFlusher = (*retryStorage)(nil)
