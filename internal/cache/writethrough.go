package cache

// Write-through implementation (paper §4.1.1).
//
// Three techniques from the paper:
//
//   - Temporary update buffer: the cache tier is NOT updated until the
//     storage write succeeds; concurrent readers keep seeing the previous
//     value, and a storage failure invalidates the entry so subsequent
//     reads refetch from storage. (Our Set carries the full new value, so
//     the "buffer" is the pending write itself.)
//   - Sequential write ordering: a per-key queue admits one in-flight
//     storage write per key; later writes wait behind it, preserving
//     per-key order.
//   - Write coalescing: writes that arrive while one is in flight are
//     merged — only the latest value is written when the leader finishes,
//     and every coalesced waiter is acked by that single storage round
//     trip (the group-commit analog).

type wtQueue struct {
	inflight bool
	pending  *wtPending
}

type wtPending struct {
	val     []byte
	del     bool
	waiters []chan error
}

// writeThrough routes one write (or delete) through the per-key queue.
func (t *Tiered) writeThrough(key string, val []byte, del bool) error {
	if t.opts.DisableCoalescing {
		return t.wtCommit(key, val, del)
	}
	t.wtMu.Lock()
	q, ok := t.wtQueues[key]
	if !ok {
		q = &wtQueue{}
		t.wtQueues[key] = q
	}
	if q.inflight {
		// Piggyback on the in-flight leader: replace the pending value
		// (coalescing) and wait for the commit that covers us.
		if q.pending == nil {
			q.pending = &wtPending{}
		} else {
			t.coalesced.Add(1) // an earlier pending value was absorbed
		}
		q.pending.val = val
		q.pending.del = del
		ch := make(chan error, 1)
		q.pending.waiters = append(q.pending.waiters, ch)
		t.wtMu.Unlock()
		return <-ch
	}
	q.inflight = true
	t.wtMu.Unlock()

	err := t.wtCommit(key, val, del)

	// Hand any writes that queued up behind us to a continuation worker.
	t.wtMu.Lock()
	if q.pending != nil {
		next := q.pending
		q.pending = nil
		t.wtMu.Unlock()
		go t.wtDrain(key, q, next)
	} else {
		q.inflight = false
		delete(t.wtQueues, key)
		t.wtMu.Unlock()
	}
	return err
}

// wtDrain commits coalesced rounds until the queue empties.
func (t *Tiered) wtDrain(key string, q *wtQueue, cur *wtPending) {
	for {
		err := t.wtCommit(key, cur.val, cur.del)
		for _, ch := range cur.waiters {
			ch <- err
		}
		t.wtMu.Lock()
		if q.pending != nil {
			cur = q.pending
			q.pending = nil
			t.wtMu.Unlock()
			continue
		}
		q.inflight = false
		delete(t.wtQueues, key)
		t.wtMu.Unlock()
		return
	}
}

// wtCommit performs one synchronous storage write and, on success, applies
// the result to the cache tier; on failure it invalidates the cache entry.
func (t *Tiered) wtCommit(key string, val []byte, del bool) error {
	var err error
	if del {
		err = t.opts.Storage.Delete(key)
	} else {
		err = t.opts.Storage.Put(key, val)
	}
	if err != nil {
		t.invalidate(key)
		return err
	}
	t.applyToCache(key, val, del)
	if !del {
		t.maybeEvictKey(key)
	}
	return nil
}
