package cache

import (
	"sync"

	"tierbase/internal/engine"
)

// Write-through implementation (paper §4.1.1).
//
// Three techniques from the paper:
//
//   - Temporary update buffer: the cache tier is NOT updated until the
//     storage write succeeds; concurrent readers keep seeing the previous
//     value, and a storage failure invalidates the entry so subsequent
//     reads refetch from storage. (Our Set carries the full new value, so
//     the "buffer" is the pending write itself.)
//   - Sequential write ordering: a per-key queue admits one in-flight
//     storage write per key; later writes wait behind it, preserving
//     per-key order.
//   - Write coalescing: writes that arrive while one is in flight are
//     merged — only the latest value is written when the leader finishes,
//     and every coalesced waiter is acked by that single storage round
//     trip (the group-commit analog).
//
// The queues are striped along the engine's lock stripes (wtStripe):
// admission for a key takes only its stripe's lock, so hot-key coalescing
// on one stripe never serializes writes on the others. Batch writes
// (BatchPut/BatchDelete) route through the SAME ordering machinery via
// wtBatchCommit: keys with no in-flight leader are claimed by the batch
// (a per-stripe marker, not per-key queue entries — O(stripes) in the
// uncontended case) and committed in one grouped storage round trip;
// keys with a leader piggyback as pending and are covered by that
// leader's (or its drain worker's) commit, and single-key writers that
// find their key under a batch marker piggyback symmetrically. There is
// no ordering bypass — a concurrent Set(k) and a batch containing k
// serialize through k's queue like any two single-key writes.

// wtStripe is one stripe of the write-through ordering queues: the queues
// of every key in the matching engine stripe, behind one lock, plus the
// markers of in-flight batches currently leading keys on this stripe.
type wtStripe struct {
	mu      sync.Mutex
	queues  map[string]*wtQueue
	batches []*wtBatchMark
}

// wtBatchMark is one stripe's record of an in-flight batch commit: the
// batch leads every key in led. A single-key writer that finds its key
// covered piggybacks by materializing a batch-owned queue (see
// coveredByBatchLocked) — so the common uncontended batch posts one
// marker per stripe instead of one queue entry per key.
type wtBatchMark struct {
	// entries is the batch's full op map (shared across the batch's
	// stripes); led is this stripe's led keys. full means led covers every
	// batch key on this stripe, so membership can be tested against
	// entries (O(1)) instead of scanning led.
	entries map[string][]byte
	led     []string
	full    bool
}

// coveredByBatchLocked reports whether an in-flight batch on this stripe
// leads key. Caller holds st.mu.
func (st *wtStripe) coveredByBatchLocked(key string) bool {
	for _, m := range st.batches {
		if m.full {
			if _, ok := m.entries[key]; ok {
				return true
			}
			continue
		}
		for _, k := range m.led {
			if k == key {
				return true
			}
		}
	}
	return false
}

type wtQueue struct {
	inflight bool
	// batchOwned marks a queue materialized under an in-flight batch
	// marker: the batch is the key's leader, and its completion (not a
	// writer goroutine) hands the queue to a drain worker.
	batchOwned bool
	pending    *wtPending
}

type wtPending struct {
	val     []byte
	del     bool
	enc     bool // val is a typed collection blob (already storage-encoded)
	pre     bool // outcome already applied to the primary engine (propagated)
	waiters []chan error
}

// wtStripeFor returns the queue stripe owning key.
func (t *Tiered) wtStripeFor(key string) *wtStripe {
	return t.wt[t.eng.ShardIndex(key)]
}

// writeThrough routes one write (or delete) through the per-key queue on
// the key's stripe. enc marks val as a typed collection blob; pre marks a
// propagated outcome already applied to the primary engine (see rmw.go).
func (t *Tiered) writeThrough(key string, val []byte, del, enc, pre bool) error {
	if t.opts.DisableCoalescing {
		return t.wtCommit(key, val, del, enc, pre)
	}
	st := t.wtStripeFor(key)
	st.mu.Lock()
	q, ok := st.queues[key]
	if !ok && len(st.batches) > 0 && st.coveredByBatchLocked(key) {
		// An in-flight batch leads this key: materialize its queue so we
		// (and later writers) order behind the batch's commit.
		q = &wtQueue{inflight: true, batchOwned: true}
		st.queues[key] = q
		ok = true
	}
	if ok {
		// Piggyback on the in-flight leader: replace the pending value
		// (coalescing) and wait for the commit that covers us.
		ch := t.wtEnqueueLocked(q, val, del, enc, pre)
		st.mu.Unlock()
		return <-ch
	}
	q = &wtQueue{inflight: true}
	st.queues[key] = q
	st.mu.Unlock()

	err := t.wtCommit(key, val, del, enc, pre)
	t.wtFinishLeaderLocked(st, key, true)
	return err
}

// wtEnqueueLocked piggybacks one write behind key's in-flight leader:
// the pending value is replaced (coalescing) and the caller's ack channel
// joins the waiters the covering commit will release. Caller holds the
// stripe lock.
func (t *Tiered) wtEnqueueLocked(q *wtQueue, val []byte, del, enc, pre bool) chan error {
	if q.pending == nil {
		q.pending = &wtPending{}
	} else {
		t.coalesced.Add(1) // an earlier pending value was absorbed
	}
	q.pending.val = val
	q.pending.del = del
	q.pending.enc = enc
	q.pending.pre = pre
	ch := make(chan error, 1)
	q.pending.waiters = append(q.pending.waiters, ch)
	return ch
}

// wtFinishLeaderLocked ends a leader's tenure on key: writes that queued
// up behind it are handed to a drain worker; otherwise the queue retires.
// When lock is true the stripe lock is acquired here (single-key path);
// batch completion calls it with the stripe lock already held.
func (t *Tiered) wtFinishLeaderLocked(st *wtStripe, key string, lock bool) {
	if lock {
		st.mu.Lock()
		defer st.mu.Unlock()
	}
	q := st.queues[key]
	if q.pending != nil {
		next := q.pending
		q.pending = nil
		go t.wtDrain(st, key, q, next)
		return
	}
	q.inflight = false
	delete(st.queues, key)
}

// wtDrain commits coalesced rounds until the queue empties.
func (t *Tiered) wtDrain(st *wtStripe, key string, q *wtQueue, cur *wtPending) {
	for {
		err := t.wtCommit(key, cur.val, cur.del, cur.enc, cur.pre)
		for _, ch := range cur.waiters {
			ch <- err
		}
		st.mu.Lock()
		if q.pending != nil {
			cur = q.pending
			q.pending = nil
			st.mu.Unlock()
			continue
		}
		q.inflight = false
		delete(st.queues, key)
		st.mu.Unlock()
		return
	}
}

// wtCommit performs one synchronous storage write and, on success, applies
// the result to the cache tier; on failure it invalidates the cache entry.
// Raw string values are escaped on the way to storage so they never
// collide with typed collection blobs; pre-applied (propagated) outcomes
// skip the primary-engine apply (rmw.go).
func (t *Tiered) wtCommit(key string, val []byte, del, enc, pre bool) error {
	var err error
	if del {
		err = t.opts.Storage.Delete(key)
	} else {
		stored := val
		if !enc {
			stored = engine.EscapeStringValue(val)
		}
		err = t.opts.Storage.Put(key, stored)
	}
	if err != nil {
		t.invalidate(key)
		return err
	}
	if pre {
		t.applyPropagated(key, val, del, enc)
		return nil
	}
	t.applyToCache(key, val, del)
	if !del {
		t.maybeEvictKey(key)
	}
	return nil
}

// --- unified batch ordering ---

// wtBatchCommit applies a whole batch of write-through ops (entries maps
// key to new value; nil = delete; uniq lists the keys, duplicates already
// collapsed) through the per-key queues:
//
//   - Keys with no in-flight leader are claimed by this call (it becomes
//     their leader) and commit in ONE grouped storage round trip.
//   - Keys with an in-flight leader piggyback as that key's pending write
//     and are covered by the leader's commit — exactly as a single-key
//     Set would be.
//
// Per-key ordering with concurrent single-key writes is therefore the
// queue's ordering; the old "batches bypass the queues, last storage
// writer wins" caveat is gone. Returns the first error among the grouped
// commit and the piggybacked acks.
func (t *Tiered) wtBatchCommit(uniq []string, entries map[string][]byte) error {
	if t.opts.DisableCoalescing {
		return t.wtCommitGroup(uniq, entries)
	}
	if len(uniq) == 1 {
		// A batch of one is a single-key write; skip the marker machinery.
		k := uniq[0]
		v := entries[k]
		return t.writeThrough(k, v, v == nil, false, false)
	}

	// Admission: one stripe lock per touched stripe. The uncontended fast
	// path (no queues, no other batch markers on the stripe) leads the
	// whole stripe group by posting ONE marker — no per-key bookkeeping.
	// On a contended stripe, keys with an in-flight leader (queue or
	// another batch's marker) piggyback; the rest are led under a partial
	// marker.
	type stripeMark struct {
		st *wtStripe
		m  *wtBatchMark
	}
	var marks []stripeMark
	// markSlab backs every posted marker in one allocation; it never
	// regrows (cap = touched stripes at most), so marker pointers are
	// stable.
	var markSlab []wtBatchMark
	post := func(st *wtStripe, led []string, full bool) {
		if markSlab == nil {
			n := len(uniq)
			if nsh := len(t.wt); nsh < n {
				n = nsh
			}
			markSlab = make([]wtBatchMark, 0, n)
		}
		markSlab = append(markSlab, wtBatchMark{entries: entries, led: led, full: full})
		m := &markSlab[len(markSlab)-1]
		st.batches = append(st.batches, m)
		marks = append(marks, stripeMark{st, m})
	}
	nLed := 0
	var waits []chan error
	t.eng.GroupKeysByShard(uniq, func(si int, group []string) {
		st := t.wt[si]
		st.mu.Lock()
		if len(st.queues) == 0 && len(st.batches) == 0 {
			post(st, group, true)
			st.mu.Unlock()
			nLed += len(group)
			return
		}
		// Contended stripe: piggybacked keys filter out of the group in
		// place (the group subslice is ours alone), the rest are led.
		led := group[:0]
		for _, k := range group {
			if q, ok := st.queues[k]; ok {
				v := entries[k]
				waits = append(waits, t.wtEnqueueLocked(q, v, v == nil, false, false))
				continue
			}
			if st.coveredByBatchLocked(k) {
				q := &wtQueue{inflight: true, batchOwned: true}
				st.queues[k] = q
				v := entries[k]
				waits = append(waits, t.wtEnqueueLocked(q, v, v == nil, false, false))
				continue
			}
			led = append(led, k)
		}
		if len(led) > 0 {
			post(st, led, len(led) == len(group))
			nLed += len(led)
		}
		st.mu.Unlock()
	})

	var err error
	if nLed > 0 {
		ledEntries := entries
		var led []string
		if nLed < len(uniq) {
			ledEntries = make(map[string][]byte, nLed)
			led = make([]string, 0, nLed)
			for _, sm := range marks {
				for _, k := range sm.m.led {
					ledEntries[k] = entries[k]
					led = append(led, k)
				}
			}
		} else {
			led = uniq
		}
		err = t.wtCommitGroup(led, ledEntries)
		// Unpost each marker and end the led keys' tenure. Writers that
		// arrived during the round trip materialized batch-owned queues;
		// hand those to drain workers. A stripe with no queues saw no
		// contention and needs no per-key work at all.
		for _, sm := range marks {
			st := sm.st
			st.mu.Lock()
			for i, m := range st.batches {
				if m == sm.m {
					st.batches = append(st.batches[:i], st.batches[i+1:]...)
					break
				}
			}
			if len(st.queues) > 0 {
				for _, k := range sm.m.led {
					if q, ok := st.queues[k]; ok && q.batchOwned {
						q.batchOwned = false
						t.wtFinishLeaderLocked(st, k, false)
					}
				}
			}
			st.mu.Unlock()
		}
	}
	for _, ch := range waits {
		if werr := <-ch; werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// wtCommitGroup is the grouped analog of wtCommit: one storage round trip
// for the whole key group — Storage.BatchDelete when every op is a delete,
// Storage.BatchPut otherwise (its nil-value-deletes contract carries mixed
// batches) — then the batch applies to the cache tier on success, or every
// key invalidates on failure (the per-key failure contract, batch-wide).
func (t *Tiered) wtCommitGroup(keys []string, entries map[string][]byte) error {
	allDel := true
	for _, k := range keys {
		if entries[k] != nil {
			allDel = false
			break
		}
	}
	var err error
	if allDel {
		err = t.opts.Storage.BatchDelete(keys)
	} else {
		err = t.opts.Storage.BatchPut(escapeEntries(entries))
	}
	if err != nil {
		for _, k := range keys {
			t.invalidate(k)
		}
		return err
	}
	t.applyBatchToCache(entries)
	return nil
}

// escapeEntries returns entries with any typed-marker-colliding string
// value escaped for storage. The common case (no collisions) returns the
// input map untouched; otherwise a shallow copy is built so the caller's
// map — which later applies to the cache tier — keeps the raw values.
func escapeEntries(entries map[string][]byte) map[string][]byte {
	var escaped map[string][]byte
	for k, v := range entries {
		ev := engine.EscapeStringValue(v)
		if len(ev) == len(v) {
			continue
		}
		if escaped == nil {
			escaped = make(map[string][]byte, len(entries))
			for k2, v2 := range entries {
				escaped[k2] = v2
			}
		}
		escaped[k] = ev
	}
	if escaped != nil {
		return escaped
	}
	return entries
}
