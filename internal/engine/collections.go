package engine

import (
	"sort"
)

// This file implements the non-string data types: lists, sets, sorted sets
// and hashes (the wide-column surface). Collection payloads always live in
// DRAM; compression and PMem offload apply to string values only, matching
// TierBase's deployment (values dominate memory in the string-heavy
// production workloads the paper evaluates).

// getOrCreateLocked returns the item for key in shard s, creating it with
// kind if absent. Returns ErrWrongType if it exists with a different kind.
// Caller holds s.mu write lock.
func (e *Engine) getOrCreateLocked(s *shard, key string, kind Kind) (*item, error) {
	now := e.now()
	it, ok := s.items[key]
	if ok && it.expiredAt(now) {
		e.deleteItemLocked(s, key, it)
		ok = false
	}
	if !ok {
		it = &item{kind: kind, memBytes: int64(len(key)) + itemOverhead}
		switch kind {
		case KindSet:
			it.set = make(map[string]struct{})
		case KindZSet:
			it.zset = newZSet()
		case KindHash:
			it.hash = make(map[string][]byte)
		}
		s.items[key] = it
		s.memUsed.Add(it.memBytes)
		return it, nil
	}
	if it.kind != kind {
		return nil, ErrWrongType
	}
	return it, nil
}

// getTyped returns the live item in shard s if it has the wanted kind.
// Caller holds s.mu (either mode).
func (e *Engine) getTyped(s *shard, key string, kind Kind) (*item, error) {
	it, ok := s.getItem(key, e.now())
	if !ok {
		return nil, ErrNotFound
	}
	if it.kind != kind {
		return nil, ErrWrongType
	}
	return it, nil
}

// adjustMem updates both the item and shard accounting. Caller holds s.mu
// write lock.
func (e *Engine) adjustMem(s *shard, it *item, delta int64) {
	it.memBytes += delta
	s.memUsed.Add(delta)
}

// --- lists ---

// LPush prepends values; returns the new length.
func (e *Engine) LPush(key string, vals ...[]byte) (int, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getOrCreateLocked(s, key, KindList)
	if err != nil {
		return 0, err
	}
	for _, v := range vals {
		cp := append([]byte(nil), v...)
		it.list = append([][]byte{cp}, it.list...)
		e.adjustMem(s, it, int64(len(cp))+24)
	}
	it.version = s.nextVersion()
	return len(it.list), nil
}

// RPush appends values; returns the new length.
func (e *Engine) RPush(key string, vals ...[]byte) (int, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getOrCreateLocked(s, key, KindList)
	if err != nil {
		return 0, err
	}
	for _, v := range vals {
		cp := append([]byte(nil), v...)
		it.list = append(it.list, cp)
		e.adjustMem(s, it, int64(len(cp))+24)
	}
	it.version = s.nextVersion()
	return len(it.list), nil
}

// LPop removes and returns the head.
func (e *Engine) LPop(key string) ([]byte, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getTyped(s, key, KindList)
	if err != nil {
		return nil, err
	}
	if len(it.list) == 0 {
		return nil, ErrNotFound
	}
	v := it.list[0]
	it.list = it.list[1:]
	e.adjustMem(s, it, -int64(len(v))-24)
	it.version = s.nextVersion()
	if len(it.list) == 0 {
		e.deleteItemLocked(s, key, it)
	}
	return v, nil
}

// RPop removes and returns the tail.
func (e *Engine) RPop(key string) ([]byte, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getTyped(s, key, KindList)
	if err != nil {
		return nil, err
	}
	if len(it.list) == 0 {
		return nil, ErrNotFound
	}
	v := it.list[len(it.list)-1]
	it.list = it.list[:len(it.list)-1]
	e.adjustMem(s, it, -int64(len(v))-24)
	it.version = s.nextVersion()
	if len(it.list) == 0 {
		e.deleteItemLocked(s, key, it)
	}
	return v, nil
}

// LLen returns the list length (0 if absent).
func (e *Engine) LLen(key string) (int, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindList)
	if err == ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return len(it.list), nil
}

// LRange returns elements [start, stop] with Redis negative-index rules.
func (e *Engine) LRange(key string, start, stop int) ([][]byte, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindList)
	if err == ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	n := len(it.list)
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || start >= n {
		return nil, nil
	}
	out := make([][]byte, 0, stop-start+1)
	for i := start; i <= stop; i++ {
		out = append(out, append([]byte(nil), it.list[i]...))
	}
	return out, nil
}

// --- sets ---

// SAdd inserts members; returns how many were new.
func (e *Engine) SAdd(key string, members ...string) (int, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getOrCreateLocked(s, key, KindSet)
	if err != nil {
		return 0, err
	}
	added := 0
	for _, m := range members {
		if _, ok := it.set[m]; !ok {
			it.set[m] = struct{}{}
			e.adjustMem(s, it, int64(len(m))+16)
			added++
		}
	}
	it.version = s.nextVersion()
	return added, nil
}

// SRem removes members; returns how many were present.
func (e *Engine) SRem(key string, members ...string) (int, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getTyped(s, key, KindSet)
	if err == ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, m := range members {
		if _, ok := it.set[m]; ok {
			delete(it.set, m)
			e.adjustMem(s, it, -int64(len(m))-16)
			removed++
		}
	}
	it.version = s.nextVersion()
	if len(it.set) == 0 {
		e.deleteItemLocked(s, key, it)
	}
	return removed, nil
}

// SIsMember reports membership.
func (e *Engine) SIsMember(key, member string) (bool, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindSet)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	_, ok := it.set[member]
	return ok, nil
}

// SCard returns the set size (0 if absent).
func (e *Engine) SCard(key string) (int, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindSet)
	if err == ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return len(it.set), nil
}

// SMembers returns all members, sorted for determinism.
func (e *Engine) SMembers(key string) ([]string, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindSet)
	if err == ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(it.set))
	for m := range it.set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// --- sorted sets ---

// zset keeps member→score plus a score-ordered slice for range queries.
type zset struct {
	scores map[string]float64
	sorted []zentry // ascending (score, member)
}

type zentry struct {
	member string
	score  float64
}

func newZSet() *zset { return &zset{scores: make(map[string]float64)} }

func zless(a, b zentry) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.member < b.member
}

func (z *zset) insert(member string, score float64) (isNew bool) {
	if old, ok := z.scores[member]; ok {
		if old == score {
			return false
		}
		z.remove(member, old)
	} else {
		isNew = true
	}
	z.scores[member] = score
	ent := zentry{member, score}
	i := sort.Search(len(z.sorted), func(i int) bool { return !zless(z.sorted[i], ent) })
	z.sorted = append(z.sorted, zentry{})
	copy(z.sorted[i+1:], z.sorted[i:])
	z.sorted[i] = ent
	return isNew
}

func (z *zset) remove(member string, score float64) {
	ent := zentry{member, score}
	i := sort.Search(len(z.sorted), func(i int) bool { return !zless(z.sorted[i], ent) })
	for i < len(z.sorted) && z.sorted[i].member != member {
		i++
	}
	if i < len(z.sorted) {
		z.sorted = append(z.sorted[:i], z.sorted[i+1:]...)
	}
	delete(z.scores, member)
}

// ZAdd inserts or updates a member; returns whether it was new.
func (e *Engine) ZAdd(key, member string, score float64) (bool, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getOrCreateLocked(s, key, KindZSet)
	if err != nil {
		return false, err
	}
	isNew := it.zset.insert(member, score)
	if isNew {
		e.adjustMem(s, it, int64(len(member))+32)
	}
	it.version = s.nextVersion()
	return isNew, nil
}

// ZIncrBy adds delta to a member's score (creating it at delta).
func (e *Engine) ZIncrBy(key, member string, delta float64) (float64, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getOrCreateLocked(s, key, KindZSet)
	if err != nil {
		return 0, err
	}
	cur := it.zset.scores[member]
	if _, ok := it.zset.scores[member]; !ok {
		e.adjustMem(s, it, int64(len(member))+32)
	}
	it.zset.insert(member, cur+delta)
	it.version = s.nextVersion()
	return cur + delta, nil
}

// ZScore returns a member's score.
func (e *Engine) ZScore(key, member string) (float64, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindZSet)
	if err != nil {
		return 0, err
	}
	sc, ok := it.zset.scores[member]
	if !ok {
		return 0, ErrNotFound
	}
	return sc, nil
}

// ZRem removes a member; reports whether it was present.
func (e *Engine) ZRem(key, member string) (bool, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getTyped(s, key, KindZSet)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	sc, ok := it.zset.scores[member]
	if !ok {
		return false, nil
	}
	it.zset.remove(member, sc)
	e.adjustMem(s, it, -int64(len(member))-32)
	it.version = s.nextVersion()
	if len(it.zset.scores) == 0 {
		e.deleteItemLocked(s, key, it)
	}
	return true, nil
}

// ZCard returns the member count (0 if absent).
func (e *Engine) ZCard(key string) (int, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindZSet)
	if err == ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return len(it.zset.scores), nil
}

// ZMember is one (member, score) pair.
type ZMember struct {
	Member string
	Score  float64
}

// ZRange returns members by rank [start, stop], Redis negative-index rules.
func (e *Engine) ZRange(key string, start, stop int) ([]ZMember, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindZSet)
	if err == ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	n := len(it.zset.sorted)
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || start >= n {
		return nil, nil
	}
	out := make([]ZMember, 0, stop-start+1)
	for i := start; i <= stop; i++ {
		out = append(out, ZMember{it.zset.sorted[i].member, it.zset.sorted[i].score})
	}
	return out, nil
}

// ZRangeByScore returns members with min <= score <= max, ascending.
func (e *Engine) ZRangeByScore(key string, min, max float64) ([]ZMember, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindZSet)
	if err == ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []ZMember
	lo := sort.Search(len(it.zset.sorted), func(i int) bool { return it.zset.sorted[i].score >= min })
	for i := lo; i < len(it.zset.sorted) && it.zset.sorted[i].score <= max; i++ {
		out = append(out, ZMember{it.zset.sorted[i].member, it.zset.sorted[i].score})
	}
	return out, nil
}

// --- hashes (wide-column surface) ---

// HSet stores a field; reports whether the field was new.
func (e *Engine) HSet(key, field string, val []byte) (bool, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getOrCreateLocked(s, key, KindHash)
	if err != nil {
		return false, err
	}
	old, existed := it.hash[field]
	cp := append([]byte(nil), val...)
	it.hash[field] = cp
	if existed {
		e.adjustMem(s, it, int64(len(cp)-len(old)))
	} else {
		e.adjustMem(s, it, int64(len(field)+len(cp))+32)
	}
	it.version = s.nextVersion()
	return !existed, nil
}

// HGet fetches a field.
func (e *Engine) HGet(key, field string) ([]byte, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindHash)
	if err != nil {
		return nil, err
	}
	v, ok := it.hash[field]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// HDel removes fields; returns how many existed.
func (e *Engine) HDel(key string, fields ...string) (int, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, err := e.getTyped(s, key, KindHash)
	if err == ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, f := range fields {
		if v, ok := it.hash[f]; ok {
			delete(it.hash, f)
			e.adjustMem(s, it, -int64(len(f)+len(v))-32)
			n++
		}
	}
	it.version = s.nextVersion()
	if len(it.hash) == 0 {
		e.deleteItemLocked(s, key, it)
	}
	return n, nil
}

// HLen returns the field count (0 if absent).
func (e *Engine) HLen(key string) (int, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindHash)
	if err == ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return len(it.hash), nil
}

// HGetAll returns all fields sorted by name.
type HashField struct {
	Field string
	Value []byte
}

// HGetAll returns every field of the hash, sorted by field name.
func (e *Engine) HGetAll(key string) ([]HashField, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, err := e.getTyped(s, key, KindHash)
	if err == ErrNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make([]HashField, 0, len(it.hash))
	for f, v := range it.hash {
		out = append(out, HashField{f, append([]byte(nil), v...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Field < out[j].Field })
	return out, nil
}
