package engine

// Batch operations: the engine-level fast path for MGET/MSET-style
// traffic. Keys are grouped by lock stripe and each stripe lock is taken
// exactly once per batch, so an N-key batch costs O(shards touched) lock
// acquisitions instead of N — the in-memory analog of the paper's
// one-round-trip BatchGet/BatchPut against the storage tier.

// KV is one key/value pair for MSet.
type KV struct {
	Key string
	Val []byte
}

// forEachShardGroup buckets positions of keys by stripe index (a stable
// counting sort — three flat allocations, no per-bucket slices) and calls
// visit once per touched shard with the input positions in input order.
// keyAt adapts over []string and []KV.
func (e *Engine) forEachShardGroup(n int, keyAt func(i int) string, visit func(s *shard, idxs []int)) {
	nShards := len(e.shards)
	counts := make([]int, nShards+1)
	sidx := make([]uint32, n)
	for i := 0; i < n; i++ {
		si := e.shardIndex(keyAt(i))
		sidx[i] = si
		counts[si+1]++
	}
	for s := 0; s < nShards; s++ {
		counts[s+1] += counts[s]
	}
	order := make([]int, n)
	fill := append([]int(nil), counts[:nShards]...)
	for i := 0; i < n; i++ {
		order[fill[sidx[i]]] = i
		fill[sidx[i]]++
	}
	for s := 0; s < nShards; s++ {
		if lo, hi := counts[s], counts[s+1]; lo < hi {
			visit(e.shards[s], order[lo:hi])
		}
	}
}

// GroupKeysByShard buckets keys by lock stripe (the same counting-sort
// idiom as forEachShardGroup — three flat allocations, no per-bucket
// slices) and calls visit once per touched stripe with that stripe's keys
// in input order. It is the exported grouping primitive for layers that
// keep per-stripe state aligned with the engine's stripes (the cache
// tier's LRU shards, write-through queues and write-back dirty set): one
// grouping pass, one stripe-lock acquisition per touched stripe.
func (e *Engine) GroupKeysByShard(keys []string, visit func(shard int, group []string)) {
	switch len(keys) {
	case 0:
		return
	case 1:
		visit(int(e.shardIndex(keys[0])), keys)
		return
	}
	nShards := len(e.shards)
	counts := make([]int, nShards+1)
	sidx := make([]uint32, len(keys))
	for i, k := range keys {
		si := e.shardIndex(k)
		sidx[i] = si
		counts[si+1]++
	}
	for s := 0; s < nShards; s++ {
		counts[s+1] += counts[s]
	}
	ordered := make([]string, len(keys))
	fill := append([]int(nil), counts[:nShards]...)
	for i, k := range keys {
		ordered[fill[sidx[i]]] = k
		fill[sidx[i]]++
	}
	for s := 0; s < nShards; s++ {
		if lo, hi := counts[s], counts[s+1]; lo < hi {
			visit(s, ordered[lo:hi])
		}
	}
}

// MGet fetches many string values. The result aligns with keys: absent,
// expired and wrong-typed keys yield a nil entry (Redis MGET semantics);
// present values are always non-nil, even when empty. Each touched stripe
// is read-locked once.
func (e *Engine) MGet(keys []string) ([][]byte, error) {
	vals, _, err := e.MGetDetail(keys)
	return vals, err
}

// MGetDetail is MGet plus a per-key wrong-type flag, for callers (the
// tiered cache) that must distinguish "nil because absent" (a miss worth
// a storage fetch) from "nil because the key holds a list/set/hash"
// (which a storage fetch must NOT overwrite).
func (e *Engine) MGetDetail(keys []string) ([][]byte, []bool, error) {
	out := make([][]byte, len(keys))
	wrongType := make([]bool, len(keys))
	if len(keys) == 0 {
		return out, wrongType, nil
	}
	svs := make([]storedVal, len(keys))
	found := make([]bool, len(keys))
	now := e.now()

	collect := func(s *shard, idxs []int) {
		var hits, misses int64
		s.mu.RLock()
		for _, i := range idxs {
			it, ok := s.getItem(keys[i], now)
			if !ok {
				misses++
				continue
			}
			if it.kind != KindString {
				wrongType[i] = true // nil entry, counts as neither
				continue
			}
			svs[i] = it.str
			found[i] = true
			hits++
		}
		s.mu.RUnlock()
		if hits > 0 {
			s.hits.Add(hits)
		}
		if misses > 0 {
			s.misses.Add(misses)
		}
	}

	if len(keys) == 1 {
		collect(e.shardFor(keys[0]), []int{0})
	} else {
		e.forEachShardGroup(len(keys), func(i int) string { return keys[i] }, collect)
	}

	// Decode outside all locks (decompression / PMem reads are the
	// expensive part and must not serialize the stripe).
	for i := range keys {
		if !found[i] {
			continue
		}
		v, err := e.decodeValue(svs[i])
		if err != nil {
			return nil, nil, err
		}
		if v == nil {
			v = []byte{}
		}
		out[i] = v
	}
	return out, wrongType, nil
}

// MSet stores many string values, clearing any TTLs (Redis MSET
// semantics). Values are encoded (compressed / PMem-placed) outside the
// locks, then each touched stripe is write-locked once. Duplicate keys
// apply in input order: the last pair wins.
func (e *Engine) MSet(pairs []KV) error {
	if len(pairs) == 0 {
		return nil
	}
	svs := make([]storedVal, len(pairs))
	for i, p := range pairs {
		svs[i], _ = e.encodeValue(p.Val)
	}
	apply := func(s *shard, idxs []int) {
		s.mu.Lock()
		for _, i := range idxs {
			e.setLocked(s, pairs[i].Key, svs[i])
		}
		s.mu.Unlock()
	}
	if len(pairs) == 1 {
		apply(e.shardFor(pairs[0].Key), []int{0})
		return nil
	}
	e.forEachShardGroup(len(pairs), func(i int) string { return pairs[i].Key }, apply)
	return nil
}

// BatchExists reports per-key liveness without bumping hit/miss stats or
// decoding values — the existence probe behind the tiered DEL count. Each
// touched stripe is read-locked once.
func (e *Engine) BatchExists(keys []string) []bool {
	out := make([]bool, len(keys))
	if len(keys) == 0 {
		return out
	}
	now := e.now()
	collect := func(s *shard, idxs []int) {
		s.mu.RLock()
		for _, i := range idxs {
			if _, ok := s.getItem(keys[i], now); ok {
				out[i] = true
			}
		}
		s.mu.RUnlock()
	}
	if len(keys) == 1 {
		collect(e.shardFor(keys[0]), []int{0})
		return out
	}
	e.forEachShardGroup(len(keys), func(i int) string { return keys[i] }, collect)
	return out
}

// BatchDel removes keys, returning how many were live. Each touched
// stripe is write-locked once.
func (e *Engine) BatchDel(keys []string) int {
	n := 0
	for _, live := range e.BatchDelDetail(keys) {
		if live {
			n++
		}
	}
	return n
}

// BatchDelDetail removes keys like BatchDel but reports per-key liveness,
// for callers (the tiered cache's BatchDelete) that must consult the
// storage tier for exactly the keys the cache no longer held. A duplicate
// key reports live only at its first position.
func (e *Engine) BatchDelDetail(keys []string) []bool {
	existed := make([]bool, len(keys))
	if len(keys) == 0 {
		return existed
	}
	now := e.now()
	apply := func(s *shard, idxs []int) {
		s.mu.Lock()
		for _, i := range idxs {
			if it, ok := s.items[keys[i]]; ok {
				if !it.expiredAt(now) {
					existed[i] = true
				}
				e.deleteItemLocked(s, keys[i], it)
			}
		}
		s.mu.Unlock()
	}
	if len(keys) == 1 {
		apply(e.shardFor(keys[0]), []int{0})
		return existed
	}
	e.forEachShardGroup(len(keys), func(i int) string { return keys[i] }, apply)
	return existed
}
