package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// --- shard routing ---

func TestShardCountRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	}
	for _, c := range cases {
		e := New(Options{Shards: c.in})
		if got := e.NumShards(); got != c.want {
			t.Errorf("Shards=%d: got %d stripes, want %d", c.in, got, c.want)
		}
	}
}

func TestShardRoutingStable(t *testing.T) {
	e := New(Options{Shards: 16})
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key%d", i)
		if e.shardIndex(k) != e.shardIndex(k) {
			t.Fatalf("unstable routing for %q", k)
		}
		if int(e.shardIndex(k)) >= e.NumShards() {
			t.Fatalf("shard index out of range for %q", k)
		}
	}
}

func TestShardRoutingSpreads(t *testing.T) {
	e := New(Options{Shards: 16})
	used := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		used[e.shardIndex(fmt.Sprintf("key%d", i))] = true
	}
	// FNV over 1000 distinct keys must hit essentially every stripe.
	if len(used) < 12 {
		t.Fatalf("keys landed on only %d/16 shards", len(used))
	}
}

func TestOpsRouteAcrossShards(t *testing.T) {
	// The same data must be visible regardless of shard count.
	for _, n := range []int{1, 4, 16} {
		e := New(Options{Shards: n})
		for i := 0; i < 200; i++ {
			e.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
		}
		if e.Len() != 200 {
			t.Fatalf("shards=%d: len %d", n, e.Len())
		}
		for i := 0; i < 200; i++ {
			v, err := e.Get(fmt.Sprintf("k%d", i))
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("shards=%d: get k%d = %q, %v", n, i, v, err)
			}
		}
		if st := e.Stats(); st.Keys != 200 || st.Hits != 200 {
			t.Fatalf("shards=%d: stats %+v", n, st)
		}
	}
}

// --- batch operations ---

func TestMGetBasic(t *testing.T) {
	e := New(Options{})
	e.Set("a", []byte("1"))
	e.Set("b", []byte("2"))
	vals, err := e.MGet([]string{"a", "missing", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "1" || vals[1] != nil || string(vals[2]) != "2" {
		t.Fatalf("vals: %q", vals)
	}
	st := e.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMGetEmptyAndEmptyValue(t *testing.T) {
	e := New(Options{})
	if vals, err := e.MGet(nil); err != nil || len(vals) != 0 {
		t.Fatalf("empty MGet: %v %v", vals, err)
	}
	// A present-but-empty value must be distinguishable from absent.
	e.Set("empty", []byte{})
	vals, err := e.MGet([]string{"empty", "absent"})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] == nil || len(vals[0]) != 0 {
		t.Fatalf("empty value should be non-nil empty, got %v", vals[0])
	}
	if vals[1] != nil {
		t.Fatalf("absent should be nil, got %q", vals[1])
	}
}

func TestMGetWrongTypeIsNil(t *testing.T) {
	e := New(Options{})
	e.Set("s", []byte("v"))
	e.LPush("l", []byte("x"))
	vals, err := e.MGet([]string{"s", "l"})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "v" || vals[1] != nil {
		t.Fatalf("vals: %q", vals)
	}
}

func TestMGetExpired(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	e.Set("live", []byte("v"))
	e.Set("dead", []byte("v"))
	e.Expire("dead", time.Second)
	now = now.Add(time.Minute)
	vals, err := e.MGet([]string{"live", "dead"})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] == nil || vals[1] != nil {
		t.Fatalf("vals: %q", vals)
	}
}

func TestMSetBasic(t *testing.T) {
	e := New(Options{})
	err := e.MSet([]KV{
		{Key: "a", Val: []byte("1")},
		{Key: "b", Val: []byte("2")},
		{Key: "c", Val: []byte("3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		if v, err := e.Get(k); err != nil || string(v) != want {
			t.Fatalf("get %s: %q %v", k, v, err)
		}
	}
}

func TestMSetDuplicateLastWins(t *testing.T) {
	e := New(Options{})
	e.MSet([]KV{
		{Key: "k", Val: []byte("first")},
		{Key: "k", Val: []byte("second")},
	})
	if v, _ := e.Get("k"); string(v) != "second" {
		t.Fatalf("got %q", v)
	}
	if e.Len() != 1 {
		t.Fatalf("len %d", e.Len())
	}
}

func TestMSetOverwritesWrongTypeAndClearsTTL(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	e.LPush("l", []byte("x"))
	e.Set("t", []byte("v"))
	e.Expire("t", time.Second)
	e.MSet([]KV{{Key: "l", Val: []byte("str")}, {Key: "t", Val: []byte("v2")}})
	if e.Type("l") != KindString {
		t.Fatal("MSET must overwrite non-string keys (SET semantics)")
	}
	now = now.Add(time.Minute)
	if !e.Exists("t") {
		t.Fatal("MSET must clear TTL (SET semantics)")
	}
}

func TestBatchDel(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	e.Set("a", []byte("1"))
	e.Set("b", []byte("2"))
	e.Set("dead", []byte("3"))
	e.Expire("dead", time.Second)
	now = now.Add(time.Minute)
	// Expired keys are removed but not counted as live deletions.
	if n := e.BatchDel([]string{"a", "b", "dead", "missing"}); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if e.Len() != 0 {
		t.Fatalf("len %d", e.Len())
	}
	if e.MemUsed() != 0 {
		t.Fatalf("mem leak: %d", e.MemUsed())
	}
}

func TestBatchMemAccounting(t *testing.T) {
	e := New(Options{})
	kvs := make([]KV, 100)
	keys := make([]string, 100)
	for i := range kvs {
		keys[i] = fmt.Sprintf("k%d", i)
		kvs[i] = KV{Key: keys[i], Val: make([]byte, 100)}
	}
	e.MSet(kvs)
	if e.MemUsed() < 100*100 {
		t.Fatalf("mem %d too small", e.MemUsed())
	}
	e.BatchDel(keys)
	if e.MemUsed() != 0 {
		t.Fatalf("mem leak after BatchDel: %d", e.MemUsed())
	}
}

func TestSweepExpiredRotatesAllShards(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Shards: 8, Clock: func() time.Time { return now }})
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("k%d", i)
		e.Set(k, []byte("v"))
		e.Expire(k, time.Second)
	}
	now = now.Add(time.Minute)
	// Small budgets must still drain everything over repeated calls
	// thanks to the rotating shard cursor.
	total := 0
	for i := 0; i < 100 && total < 400; i++ {
		total += e.SweepExpired(50)
	}
	if total != 400 {
		t.Fatalf("swept %d, want 400", total)
	}
	if st := e.Stats(); st.Expired != 400 {
		t.Fatalf("expired counter %d", st.Expired)
	}
}

// --- concurrency stress (run with -race) ---

func TestConcurrentShardStress(t *testing.T) {
	e := New(Options{Shards: 8})
	const (
		goroutines = 16
		iters      = 300
		keySpace   = 64
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%keySpace)
				switch (g + i) % 8 {
				case 0:
					e.Set(k, []byte("v"))
				case 1:
					e.Get(k)
				case 2:
					e.Del(k)
				case 3:
					e.IncrBy(fmt.Sprintf("ctr%d", i%4), 1)
				case 4:
					e.Expire(k, time.Millisecond)
				case 5:
					batch := []KV{
						{Key: fmt.Sprintf("k%d", i%keySpace), Val: []byte("b1")},
						{Key: fmt.Sprintf("k%d", (i+17)%keySpace), Val: []byte("b2")},
						{Key: fmt.Sprintf("k%d", (i+31)%keySpace), Val: []byte("b3")},
					}
					e.MSet(batch)
				case 6:
					e.MGet([]string{
						fmt.Sprintf("k%d", i%keySpace),
						fmt.Sprintf("k%d", (i+7)%keySpace),
						fmt.Sprintf("k%d", (i+13)%keySpace),
					})
				case 7:
					e.BatchDel([]string{
						fmt.Sprintf("k%d", (i+3)%keySpace),
						fmt.Sprintf("k%d", (i+11)%keySpace),
					})
				}
				if i%50 == 0 {
					e.SweepExpired(32)
					e.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if e.MemUsed() < 0 {
		t.Fatal("negative memory accounting after stress")
	}
	e.FlushAll()
	if e.MemUsed() != 0 || e.Len() != 0 {
		t.Fatalf("residue after FlushAll: mem=%d len=%d", e.MemUsed(), e.Len())
	}
}
