package engine

import (
	"fmt"
	"testing"
	"time"
)

func TestBatchExists(t *testing.T) {
	e := New(Options{})
	e.Set("a", []byte("1"))
	e.Set("empty", []byte{})
	if _, err := e.RPush("list", []byte("x")); err != nil {
		t.Fatal(err)
	}
	e.Set("ttl", []byte("v"))
	e.Expire("ttl", -time.Second) // already expired
	got := e.BatchExists([]string{"a", "empty", "list", "ttl", "nope"})
	want := []bool{true, true, true, false, false}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("BatchExists[%d] = %v, want %v", i, got[i], w)
		}
	}
	// Probing must not disturb the data or the hit/miss stats.
	st := e.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("existence probe polluted stats: %+v", st)
	}
	if v, err := e.Get("a"); err != nil || string(v) != "1" {
		t.Fatalf("probe mutated data: %q %v", v, err)
	}
}

func TestBatchDelDetail(t *testing.T) {
	e := New(Options{})
	e.Set("a", []byte("1"))
	e.Set("b", []byte("2"))
	existed := e.BatchDelDetail([]string{"a", "nope", "b", "a"})
	want := []bool{true, false, true, false} // duplicate reports at first position only
	for i, w := range want {
		if existed[i] != w {
			t.Fatalf("BatchDelDetail[%d] = %v, want %v", i, existed[i], w)
		}
	}
	if e.Len() != 0 {
		t.Fatalf("%d keys left", e.Len())
	}
}

func TestShardMemUsedSumsToMemUsed(t *testing.T) {
	e := New(Options{})
	for i := 0; i < 256; i++ {
		e.Set(fmt.Sprintf("k%03d", i), []byte("0123456789"))
	}
	var sum int64
	for i := 0; i < e.NumShards(); i++ {
		sum += e.ShardMemUsed(i)
	}
	if total := e.MemUsed(); sum != total {
		t.Fatalf("per-shard sum %d != MemUsed %d", sum, total)
	}
	// ShardIndex must agree with where the bytes landed.
	e2 := New(Options{})
	e2.Set("probe", []byte("v"))
	si := e2.ShardIndex("probe")
	if e2.ShardMemUsed(si) == 0 {
		t.Fatalf("ShardIndex(probe)=%d holds no bytes", si)
	}
}
