package engine

import (
	"encoding/binary"
	"errors"
	"math"
)

// Typed-value codec: snapshots collection items (lists, sets, sorted
// sets, hashes) into self-describing byte blobs so the tiered write path
// can persist them through the string-only storage tier and reinstall
// them on a cache miss (including after a process restart).
//
// Blob format:
//
//	0xFF | kind byte | uvarint count | count × element
//
// list element:  uvarint len | bytes
// set element:   uvarint len | member
// zset element:  uvarint len | member | 8-byte big-endian float64 bits
// hash element:  uvarint flen | field | uvarint vlen | value
//
// Raw string values share the same storage namespace, so a string that
// happens to begin with 0xFF is escaped on its way to storage as
// 0xFF 0x00 <raw>; kind bytes are never 0x00, so escaped strings and
// typed blobs cannot collide. Strings not starting with 0xFF (the
// overwhelmingly common case) pass through storage unchanged.
const (
	typedMarker = 0xFF
	escapedKind = 0x00
)

// ErrBadEncoding reports a corrupt typed-value blob.
var ErrBadEncoding = errors.New("engine: bad typed-value encoding")

// EscapeStringValue makes a raw string value safe to store alongside
// typed blobs. Values not beginning with the typed marker are returned
// unchanged (no copy); marker-prefixed values get a two-byte escape.
func EscapeStringValue(raw []byte) []byte {
	if len(raw) == 0 || raw[0] != typedMarker {
		return raw
	}
	out := make([]byte, 0, len(raw)+2)
	out = append(out, typedMarker, escapedKind)
	return append(out, raw...)
}

// UnescapeStringValue undoes EscapeStringValue. The result may alias v.
func UnescapeStringValue(v []byte) []byte {
	if len(v) >= 2 && v[0] == typedMarker && v[1] == escapedKind {
		return v[2:]
	}
	return v
}

// IsTypedValue reports whether a storage value is a typed collection blob
// (as opposed to a raw or escaped string).
func IsTypedValue(v []byte) bool {
	return len(v) >= 2 && v[0] == typedMarker && v[1] != escapedKind
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendLenBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendLenString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// EncodeCollection snapshots the collection at key into a typed blob.
// ok is false when the key is absent, expired, or holds a string (strings
// travel to storage as themselves, not as blobs).
func (e *Engine) EncodeCollection(key string) (blob []byte, ok bool) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, live := s.getItem(key, e.now())
	if !live || it.kind == KindString {
		return nil, false
	}
	return encodeCollectionLocked(it)
}

// encodeCollectionLocked builds the typed blob for a non-string item.
// The caller holds the item's shard lock (read or write).
func encodeCollectionLocked(it *item) (blob []byte, ok bool) {
	blob = append(blob, typedMarker, byte(it.kind))
	switch it.kind {
	case KindList:
		blob = appendUvarint(blob, uint64(len(it.list)))
		for _, v := range it.list {
			blob = appendLenBytes(blob, v)
		}
	case KindSet:
		blob = appendUvarint(blob, uint64(len(it.set)))
		for m := range it.set {
			blob = appendLenString(blob, m)
		}
	case KindZSet:
		blob = appendUvarint(blob, uint64(len(it.zset.sorted)))
		for _, ent := range it.zset.sorted {
			blob = appendLenString(blob, ent.member)
			var fb [8]byte
			binary.BigEndian.PutUint64(fb[:], math.Float64bits(ent.score))
			blob = append(blob, fb[:]...)
		}
	case KindHash:
		blob = appendUvarint(blob, uint64(len(it.hash)))
		for f, v := range it.hash {
			blob = appendLenString(blob, f)
			blob = appendLenBytes(blob, v)
		}
	default:
		return nil, false
	}
	return blob, true
}

// readLenBytes decodes one uvarint-length-prefixed element, returning the
// element (aliasing p) and the remainder.
func readLenBytes(p []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(p)
	if n <= 0 || l > uint64(len(p)-n) {
		return nil, nil, ErrBadEncoding
	}
	p = p[n:]
	return p[:l], p[l:], nil
}

// LoadEncoded decodes a typed blob (produced by EncodeCollection) and
// installs it at key, replacing any existing entry. The installed item
// has no TTL: TTL state is cache-tier-only and does not survive the trip
// through storage. All element bytes are copied out of blob.
func (e *Engine) LoadEncoded(key string, blob []byte) error {
	if !IsTypedValue(blob) {
		return ErrBadEncoding
	}
	kind := Kind(blob[1])
	p := blob[2:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return ErrBadEncoding
	}
	p = p[n:]
	it := &item{kind: kind, memBytes: int64(len(key)) + itemOverhead}
	switch kind {
	case KindList:
		it.list = make([][]byte, 0, count)
		for i := uint64(0); i < count; i++ {
			el, rest, err := readLenBytes(p)
			if err != nil {
				return err
			}
			p = rest
			it.list = append(it.list, append([]byte(nil), el...))
			it.memBytes += int64(len(el)) + 24
		}
	case KindSet:
		it.set = make(map[string]struct{}, count)
		for i := uint64(0); i < count; i++ {
			el, rest, err := readLenBytes(p)
			if err != nil {
				return err
			}
			p = rest
			it.set[string(el)] = struct{}{}
			it.memBytes += int64(len(el)) + 16
		}
	case KindZSet:
		it.zset = newZSet()
		for i := uint64(0); i < count; i++ {
			el, rest, err := readLenBytes(p)
			if err != nil {
				return err
			}
			if len(rest) < 8 {
				return ErrBadEncoding
			}
			score := math.Float64frombits(binary.BigEndian.Uint64(rest[:8]))
			p = rest[8:]
			it.zset.insert(string(el), score)
			it.memBytes += int64(len(el)) + 32
		}
	case KindHash:
		it.hash = make(map[string][]byte, count)
		for i := uint64(0); i < count; i++ {
			f, rest, err := readLenBytes(p)
			if err != nil {
				return err
			}
			v, rest, err := readLenBytes(rest)
			if err != nil {
				return err
			}
			p = rest
			it.hash[string(f)] = append([]byte(nil), v...)
			it.memBytes += int64(len(f)+len(v)) + 32
		}
	default:
		return ErrBadEncoding
	}
	if len(p) != 0 {
		return ErrBadEncoding
	}
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, exists := s.items[key]; exists {
		e.deleteItemLocked(s, key, old)
	}
	it.version = s.nextVersion()
	s.items[key] = it
	s.memUsed.Add(it.memBytes)
	return nil
}
