package engine

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

func TestExpireAtAbsoluteDeadline(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	e.Set("k", []byte("v"))
	if !e.ExpireAt("k", now.Add(time.Second).UnixNano()) {
		t.Fatal("ExpireAt on present key")
	}
	if e.ExpireAt("missing", now.Add(time.Second).UnixNano()) {
		t.Fatal("ExpireAt on absent key")
	}
	if ttl, ok := e.TTL("k"); !ok || ttl != time.Second {
		t.Fatalf("ttl %v %v", ttl, ok)
	}
	now = now.Add(2 * time.Second)
	if e.Exists("k") {
		t.Fatal("exists past the deadline")
	}
	// A deadline already in the past expires immediately.
	e.Set("p", []byte("v"))
	if !e.ExpireAt("p", now.Add(-time.Second).UnixNano()) {
		t.Fatal("past-deadline ExpireAt on present key")
	}
	if e.Exists("p") {
		t.Fatal("past-deadline key still exists")
	}
}

func TestTakeExpired(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	e.Set("k", []byte("v"))
	e.Expire("k", time.Second)
	if e.TakeExpired("k") {
		t.Fatal("took a live key")
	}
	now = now.Add(2 * time.Second)
	if !e.TakeExpired("k") {
		t.Fatal("expired key not taken")
	}
	// The take deleted it: a second take reports false (single winner).
	if e.TakeExpired("k") {
		t.Fatal("double take")
	}
	if e.Len() != 0 {
		t.Fatalf("len %d after take", e.Len())
	}
}

func TestCollectExpired(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%d", i)
		e.Set(k, []byte("v"))
		if i < 5 {
			e.Expire(k, time.Second)
		}
	}
	if got := e.CollectExpired(100); len(got) != 0 {
		t.Fatalf("collected live keys: %v", got)
	}
	now = now.Add(time.Minute)
	got := e.CollectExpired(100)
	sort.Strings(got)
	if len(got) != 5 {
		t.Fatalf("collected %v, want the 5 expired keys", got)
	}
	// Collect is read-only: the items are still present until taken.
	if e.TakeExpired(got[0]) != true {
		t.Fatal("collected key not takeable")
	}
	if capped := e.CollectExpired(2); len(capped) != 2 {
		t.Fatalf("max not honored: %v", capped)
	}
}

func TestForEachEncodedChunkedCoversEverything(t *testing.T) {
	e := New(Options{Shards: 4})
	want := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%d", i)
		v := fmt.Sprintf("value-%d", i)
		e.Set(k, []byte(v))
		want[k] = v
	}
	e.RPush("list", []byte("a"), []byte("b"))

	got := map[string]string{}
	encoded := 0
	chunks := 0
	// Tiny chunk budget: forces many chunks, exercising the resume-cursor
	// path within a shard.
	err := e.ForEachEncodedChunked(64, func(chunk []SnapEntry) bool {
		chunks++
		for _, entry := range chunk {
			if entry.Encoded {
				encoded++
				continue
			}
			if _, dup := got[entry.Key]; dup {
				t.Fatalf("key %q visited twice", entry.Key)
			}
			got[entry.Key] = string(entry.Val)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if chunks < 10 {
		t.Fatalf("only %d chunks for a 64-byte budget", chunks)
	}
	if encoded != 1 {
		t.Fatalf("encoded entries = %d, want the 1 list", encoded)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d string keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestForEachEncodedChunkedEarlyStop(t *testing.T) {
	e := New(Options{})
	for i := 0; i < 100; i++ {
		e.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	calls := 0
	err := e.ForEachEncodedChunked(1, func(chunk []SnapEntry) bool {
		calls++
		return calls < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times after returning false", calls)
	}
}

func TestForEachEncodedChunkedSkipsExpired(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	e.Set("live", []byte("v"))
	e.Set("dead", []byte("v"))
	e.Expire("dead", time.Second)
	now = now.Add(time.Minute)
	seen := map[string]bool{}
	if err := e.ForEachEncodedChunked(0, func(chunk []SnapEntry) bool {
		for _, entry := range chunk {
			seen[entry.Key] = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !seen["live"] || seen["dead"] {
		t.Fatalf("snapshot saw %v", seen)
	}
}
