package engine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tierbase/internal/compress"
	"tierbase/internal/pmem"
	"tierbase/internal/workload"
)

func TestSetGetDel(t *testing.T) {
	e := New(Options{})
	if err := e.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := e.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("get: %q %v", v, err)
	}
	if n := e.Del("k", "missing"); n != 1 {
		t.Fatalf("del count %d", n)
	}
	if _, err := e.Get("k"); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestGetCopiesValue(t *testing.T) {
	e := New(Options{})
	e.Set("k", []byte("orig"))
	v, _ := e.Get("k")
	v[0] = 'X'
	v2, _ := e.Get("k")
	if string(v2) != "orig" {
		t.Fatal("engine-owned memory was mutated by caller")
	}
}

func TestSetNX(t *testing.T) {
	e := New(Options{})
	ok, _ := e.SetNX("k", []byte("first"))
	if !ok {
		t.Fatal("first SetNX should store")
	}
	ok, _ = e.SetNX("k", []byte("second"))
	if ok {
		t.Fatal("second SetNX should not store")
	}
	v, _ := e.Get("k")
	if string(v) != "first" {
		t.Fatalf("got %q", v)
	}
}

func TestExistsType(t *testing.T) {
	e := New(Options{})
	e.Set("s", []byte("v"))
	e.LPush("l", []byte("a"))
	if !e.Exists("s") || !e.Exists("l") || e.Exists("nope") {
		t.Fatal("exists wrong")
	}
	if e.Type("s") != KindString || e.Type("l") != KindList || e.Type("nope") != KindNone {
		t.Fatal("type wrong")
	}
	if KindString.String() != "string" || KindNone.String() != "none" {
		t.Fatal("kind names")
	}
}

func TestWrongType(t *testing.T) {
	e := New(Options{})
	e.Set("s", []byte("v"))
	if _, err := e.LPush("s", []byte("x")); err != ErrWrongType {
		t.Fatalf("lpush on string: %v", err)
	}
	if _, err := e.Get("s"); err != nil {
		t.Fatal(err)
	}
	e.LPush("l", []byte("x"))
	if _, err := e.Get("l"); err != ErrWrongType {
		t.Fatalf("get on list: %v", err)
	}
}

func TestIncrBy(t *testing.T) {
	e := New(Options{})
	v, err := e.IncrBy("ctr", 5)
	if err != nil || v != 5 {
		t.Fatalf("incr: %d %v", v, err)
	}
	v, _ = e.IncrBy("ctr", -2)
	if v != 3 {
		t.Fatalf("incr: %d", v)
	}
	raw, _ := e.Get("ctr")
	if string(raw) != "3" {
		t.Fatalf("stored %q", raw)
	}
	e.Set("s", []byte("not-a-number"))
	if _, err := e.IncrBy("s", 1); err != ErrNotInteger {
		t.Fatalf("want ErrNotInteger, got %v", err)
	}
}

func TestCompareAndSet(t *testing.T) {
	e := New(Options{})
	// CAS on absent key with nil old = create.
	if err := e.CompareAndSet("k", nil, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Wrong old value.
	if err := e.CompareAndSet("k", []byte("wrong"), []byte("v2")); err != ErrCASMismatch {
		t.Fatalf("want mismatch, got %v", err)
	}
	// Correct old value.
	if err := e.CompareAndSet("k", []byte("v1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _ := e.Get("k")
	if string(v) != "v2" {
		t.Fatalf("got %q", v)
	}
	// CAS expecting absence on a present key.
	if err := e.CompareAndSet("k", nil, []byte("v3")); err != ErrCASMismatch {
		t.Fatalf("want mismatch, got %v", err)
	}
}

func TestVersionCAS(t *testing.T) {
	e := New(Options{})
	e.Set("k", []byte("v1"))
	_, ver, err := e.GetWithVersion("k")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetIfVersion("k", []byte("v2"), ver); err != nil {
		t.Fatal(err)
	}
	// Stale version must fail.
	if err := e.SetIfVersion("k", []byte("v3"), ver); err != ErrCASMismatch {
		t.Fatalf("stale version: %v", err)
	}
	v, _ := e.Get("k")
	if string(v) != "v2" {
		t.Fatalf("got %q", v)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	e.Set("k", []byte("v"))
	if !e.Expire("k", time.Second) {
		t.Fatal("expire on present key")
	}
	if ttl, ok := e.TTL("k"); !ok || ttl != time.Second {
		t.Fatalf("ttl %v %v", ttl, ok)
	}
	now = now.Add(2 * time.Second)
	if _, err := e.Get("k"); err != ErrNotFound {
		t.Fatalf("expired key should be gone: %v", err)
	}
	if e.Exists("k") {
		t.Fatal("exists after expiry")
	}
}

func TestPersist(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	e.Set("k", []byte("v"))
	e.Expire("k", time.Second)
	if !e.Persist("k") {
		t.Fatal("persist failed")
	}
	now = now.Add(time.Hour)
	if !e.Exists("k") {
		t.Fatal("persisted key expired")
	}
	if _, ok := e.TTL("k"); ok {
		t.Fatal("TTL should be cleared")
	}
}

func TestSweepExpired(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i)
		e.Set(k, []byte("v"))
		if i%2 == 0 {
			e.Expire(k, time.Second)
		}
	}
	now = now.Add(time.Minute)
	removed := e.SweepExpired(1000)
	if removed != 25 {
		t.Fatalf("swept %d, want 25", removed)
	}
	if e.Len() != 25 {
		t.Fatalf("len %d", e.Len())
	}
}

func TestOverwriteResetsTTL(t *testing.T) {
	now := time.Unix(100, 0)
	e := New(Options{Clock: func() time.Time { return now }})
	e.Set("k", []byte("v1"))
	e.Expire("k", time.Second)
	e.Set("k", []byte("v2"))
	now = now.Add(time.Minute)
	if !e.Exists("k") {
		t.Fatal("SET should clear TTL (Redis semantics)")
	}
}

func TestMemAccounting(t *testing.T) {
	e := New(Options{})
	if e.MemUsed() != 0 {
		t.Fatal("fresh engine nonzero")
	}
	e.Set("key1", make([]byte, 1000))
	used := e.MemUsed()
	if used < 1000 {
		t.Fatalf("used %d too small", used)
	}
	e.Del("key1")
	if e.MemUsed() != 0 {
		t.Fatalf("leak after delete: %d", e.MemUsed())
	}
}

func TestMemAccountingNeverNegativeProperty(t *testing.T) {
	f := func(ops []struct {
		Key uint8
		Val []byte
		Del bool
	}) bool {
		e := New(Options{})
		for _, op := range ops {
			k := fmt.Sprintf("k%d", op.Key%16)
			if op.Del {
				e.Del(k)
			} else {
				e.Set(k, op.Val)
			}
			if e.MemUsed() < 0 {
				return false
			}
		}
		e.FlushAll()
		return e.MemUsed() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionTransparent(t *testing.T) {
	ds := workload.NewKV1()
	pbc := compress.NewPBC()
	pbc.Train(workload.Sample(ds, 200))
	e := New(Options{Compressor: pbc, CompressMin: 16})
	val := ds.Record(9999)
	e.Set("k", val)
	got, err := e.Get("k")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("compressed roundtrip: %v", err)
	}
}

func TestCompressionSavesMemory(t *testing.T) {
	ds := workload.NewKV2()
	dict := compress.NewDeflate(6, true)
	dict.Train(workload.Sample(ds, 300))

	plain := New(Options{})
	comp := New(Options{Compressor: dict, CompressMin: 16})
	for i := int64(0); i < 200; i++ {
		k := fmt.Sprintf("key%05d", i)
		plain.Set(k, ds.Record(i))
		comp.Set(k, ds.Record(i))
	}
	if comp.MemUsed() >= plain.MemUsed() {
		t.Fatalf("compression did not save memory: %d vs %d", comp.MemUsed(), plain.MemUsed())
	}
}

func TestCompressionMonitorWired(t *testing.T) {
	ds := workload.NewKV1()
	pbc := compress.NewPBC()
	pbc.Train(workload.Sample(ds, 100))
	mon := compress.NewMonitor(0.5)
	e := New(Options{Compressor: pbc, Monitor: mon, CompressMin: 1})
	for i := int64(0); i < 50; i++ {
		e.Set(fmt.Sprintf("k%d", i), ds.Record(5000+i))
	}
	if mon.Records() != 50 {
		t.Fatalf("monitor saw %d records", mon.Records())
	}
}

func TestPMemOffload(t *testing.T) {
	arena := pmem.NewArena(pmem.OpenVolatile(1<<20, pmem.Latency{}), 0)
	e := New(Options{Arena: arena, PMemMin: 64})
	small := []byte("tiny")
	big := bytes.Repeat([]byte("B"), 500)
	e.Set("small", small)
	e.Set("big", big)
	st := e.Stats()
	if st.PMemUsed == 0 {
		t.Fatal("big value should be in PMem")
	}
	// DRAM usage should not include the big value body.
	if st.MemBytes > int64(len(small))+600 {
		t.Fatalf("DRAM usage too high: %d", st.MemBytes)
	}
	got, err := e.Get("big")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("pmem roundtrip: %v", err)
	}
	// Delete must free the arena allocation.
	e.Del("big")
	if e.Stats().PMemUsed != 0 {
		t.Fatalf("pmem leak: %d", e.Stats().PMemUsed)
	}
}

func TestPMemWithCompression(t *testing.T) {
	ds := workload.NewKV2()
	dict := compress.NewDeflate(6, true)
	dict.Train(workload.Sample(ds, 200))
	arena := pmem.NewArena(pmem.OpenVolatile(1<<20, pmem.Latency{}), 0)
	e := New(Options{Compressor: dict, CompressMin: 16, Arena: arena, PMemMin: 32})
	val := ds.Record(7777)
	e.Set("k", val)
	got, err := e.Get("k")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("pmem+compress roundtrip: %v", err)
	}
}

func TestHitMissStats(t *testing.T) {
	e := New(Options{})
	e.Set("k", []byte("v"))
	e.Get("k")
	e.Get("k")
	e.Get("missing")
	st := e.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.Keys != 1 {
		t.Fatalf("keys=%d", st.Keys)
	}
}

func TestForEachString(t *testing.T) {
	e := New(Options{})
	e.Set("a", []byte("1"))
	e.Set("b", []byte("2"))
	e.LPush("l", []byte("x")) // non-strings skipped
	seen := map[string]string{}
	err := e.ForEachString(func(k string, v []byte) bool {
		seen[k] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen["a"] != "1" || seen["b"] != "2" {
		t.Fatalf("seen: %v", seen)
	}
	// Early stop.
	count := 0
	e.ForEachString(func(k string, v []byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestFlushAll(t *testing.T) {
	arena := pmem.NewArena(pmem.OpenVolatile(1<<20, pmem.Latency{}), 0)
	e := New(Options{Arena: arena, PMemMin: 8})
	for i := 0; i < 10; i++ {
		e.Set(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("v"), 100))
	}
	e.FlushAll()
	if e.Len() != 0 || e.MemUsed() != 0 || e.Stats().PMemUsed != 0 {
		t.Fatalf("flush left residue: %+v", e.Stats())
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	e := New(Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%50)
				switch g % 4 {
				case 0:
					e.Set(k, []byte("v"))
				case 1:
					e.Get(k)
				case 2:
					e.IncrBy(fmt.Sprintf("ctr%d", g), 1)
				case 3:
					e.Del(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if e.MemUsed() < 0 {
		t.Fatal("negative memory accounting after concurrency")
	}
}

func TestParseAppendIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, err := parseInt(appendInt(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := parseInt([]byte("")); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := parseInt([]byte("-")); err == nil {
		t.Fatal("bare minus should fail")
	}
	if _, err := parseInt([]byte("12x")); err == nil {
		t.Fatal("junk should fail")
	}
}
