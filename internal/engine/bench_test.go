package engine

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

// Parallel mixed-workload benchmarks: the artifact behind the sharding
// decision. Run with several GOMAXPROCS settings to see the single-mutex
// engine flatline while the striped engine scales:
//
//	go test ./internal/engine -bench ParallelMixed -cpu 1,2,4,8
//
// The mix is 70% GET / 20% SET / 10% INCR over a zipf-ish hot keyspace —
// the skewed read-heavy shape of the paper's production workloads.

const benchKeySpace = 1 << 14

func benchKeys() []string {
	keys := make([]string, benchKeySpace)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%08d", i)
	}
	return keys
}

func benchmarkParallelMixed(b *testing.B, shards int) {
	e := New(Options{Shards: shards})
	keys := benchKeys()
	val := make([]byte, 64)
	for _, k := range keys {
		e.Set(k, val)
	}
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			// Skew: half the ops hit the hottest 1/16 of the keyspace.
			idx := rng.Intn(benchKeySpace)
			if rng.Intn(2) == 0 {
				idx %= benchKeySpace / 16
			}
			k := keys[idx]
			switch r := rng.Intn(10); {
			case r < 7:
				e.Get(k)
			case r < 9:
				e.Set(k, val)
			default:
				e.IncrBy("ctr"+k[len(k)-2:], 1)
			}
		}
	})
}

// BenchmarkEngineParallelMixed1Shard is the pre-refactor single-mutex
// baseline (Shards: 1 reproduces it exactly).
func BenchmarkEngineParallelMixed1Shard(b *testing.B) { benchmarkParallelMixed(b, 1) }

// BenchmarkEngineParallelMixedSharded is the striped engine at the
// default stripe count.
func BenchmarkEngineParallelMixedSharded(b *testing.B) { benchmarkParallelMixed(b, DefaultShards) }

// benchmarkBatch measures the batch fast path against the equivalent
// single-op loop: one stripe lock per touched shard vs one per key.
func benchmarkBatch(b *testing.B, batched bool, batchSize int) {
	e := New(Options{})
	keys := benchKeys()
	val := make([]byte, 64)
	for _, k := range keys {
		e.Set(k, val)
	}
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		batch := make([]string, batchSize)
		for pb.Next() {
			base := rng.Intn(benchKeySpace - batchSize)
			for i := range batch {
				batch[i] = keys[base+i]
			}
			if batched {
				if _, err := e.MGet(batch); err != nil {
					b.Fatal(err)
				}
			} else {
				for _, k := range batch {
					if _, err := e.Get(k); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

func BenchmarkEngineGetLoop16(b *testing.B)   { benchmarkBatch(b, false, 16) }
func BenchmarkEngineMGetBatch16(b *testing.B) { benchmarkBatch(b, true, 16) }
