package engine

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestListPushPop(t *testing.T) {
	e := New(Options{})
	n, err := e.RPush("l", []byte("a"), []byte("b"))
	if err != nil || n != 2 {
		t.Fatalf("rpush: %d %v", n, err)
	}
	n, _ = e.LPush("l", []byte("z"))
	if n != 3 {
		t.Fatalf("lpush len %d", n)
	}
	v, _ := e.LPop("l")
	if string(v) != "z" {
		t.Fatalf("lpop %q", v)
	}
	v, _ = e.RPop("l")
	if string(v) != "b" {
		t.Fatalf("rpop %q", v)
	}
	if n, _ := e.LLen("l"); n != 1 {
		t.Fatalf("llen %d", n)
	}
}

func TestListEmptyKeyRemoved(t *testing.T) {
	e := New(Options{})
	e.RPush("l", []byte("only"))
	e.LPop("l")
	if e.Exists("l") {
		t.Fatal("empty list should be deleted")
	}
	if _, err := e.LPop("l"); err != ErrNotFound {
		t.Fatalf("pop empty: %v", err)
	}
	if n, _ := e.LLen("l"); n != 0 {
		t.Fatal("llen of absent should be 0")
	}
}

func TestLRange(t *testing.T) {
	e := New(Options{})
	for i := 0; i < 10; i++ {
		e.RPush("l", []byte(fmt.Sprintf("v%d", i)))
	}
	out, _ := e.LRange("l", 0, 2)
	if len(out) != 3 || string(out[0]) != "v0" || string(out[2]) != "v2" {
		t.Fatalf("range: %v", out)
	}
	out, _ = e.LRange("l", -3, -1)
	if len(out) != 3 || string(out[0]) != "v7" {
		t.Fatalf("negative range: %q", out[0])
	}
	out, _ = e.LRange("l", 5, 100)
	if len(out) != 5 {
		t.Fatalf("clamped range len %d", len(out))
	}
	out, _ = e.LRange("l", 8, 2)
	if out != nil {
		t.Fatal("inverted range should be empty")
	}
	out, _ = e.LRange("absent", 0, -1)
	if out != nil {
		t.Fatal("absent list should be empty")
	}
}

func TestSetOps(t *testing.T) {
	e := New(Options{})
	n, _ := e.SAdd("s", "a", "b", "a")
	if n != 2 {
		t.Fatalf("sadd added %d", n)
	}
	if ok, _ := e.SIsMember("s", "a"); !ok {
		t.Fatal("member missing")
	}
	if ok, _ := e.SIsMember("s", "zz"); ok {
		t.Fatal("phantom member")
	}
	if n, _ := e.SCard("s"); n != 2 {
		t.Fatalf("scard %d", n)
	}
	members, _ := e.SMembers("s")
	if len(members) != 2 || members[0] != "a" || members[1] != "b" {
		t.Fatalf("members %v", members)
	}
	n, _ = e.SRem("s", "a", "nope")
	if n != 1 {
		t.Fatalf("srem %d", n)
	}
	e.SRem("s", "b")
	if e.Exists("s") {
		t.Fatal("empty set should be deleted")
	}
}

func TestZSetBasics(t *testing.T) {
	e := New(Options{})
	isNew, _ := e.ZAdd("z", "alice", 10)
	if !isNew {
		t.Fatal("first add should be new")
	}
	isNew, _ = e.ZAdd("z", "alice", 20)
	if isNew {
		t.Fatal("update should not be new")
	}
	s, err := e.ZScore("z", "alice")
	if err != nil || s != 20 {
		t.Fatalf("score %f %v", s, err)
	}
	e.ZAdd("z", "bob", 5)
	e.ZAdd("z", "carol", 15)
	out, _ := e.ZRange("z", 0, -1)
	if len(out) != 3 || out[0].Member != "bob" || out[2].Member != "alice" {
		t.Fatalf("zrange %v", out)
	}
	out, _ = e.ZRangeByScore("z", 10, 20)
	if len(out) != 2 || out[0].Member != "carol" {
		t.Fatalf("zrangebyscore %v", out)
	}
	if n, _ := e.ZCard("z"); n != 3 {
		t.Fatalf("zcard %d", n)
	}
	ok, _ := e.ZRem("z", "bob")
	if !ok {
		t.Fatal("zrem existing")
	}
	ok, _ = e.ZRem("z", "bob")
	if ok {
		t.Fatal("zrem absent")
	}
	if _, err := e.ZScore("z", "bob"); err != ErrNotFound {
		t.Fatalf("removed member: %v", err)
	}
}

func TestZIncrBy(t *testing.T) {
	e := New(Options{})
	v, _ := e.ZIncrBy("z", "m", 2.5)
	if v != 2.5 {
		t.Fatalf("first incr %f", v)
	}
	v, _ = e.ZIncrBy("z", "m", 1.5)
	if v != 4 {
		t.Fatalf("second incr %f", v)
	}
	out, _ := e.ZRange("z", 0, -1)
	if len(out) != 1 || out[0].Score != 4 {
		t.Fatalf("zrange after incr %v", out)
	}
}

func TestZSetTieBreakByMember(t *testing.T) {
	e := New(Options{})
	e.ZAdd("z", "zeta", 1)
	e.ZAdd("z", "alpha", 1)
	out, _ := e.ZRange("z", 0, -1)
	if out[0].Member != "alpha" {
		t.Fatalf("tie-break order: %v", out)
	}
}

func TestZSetSortedInvariantProperty(t *testing.T) {
	f := func(ops []struct {
		M uint8
		S int8
	}) bool {
		e := New(Options{})
		for _, op := range ops {
			e.ZAdd("z", fmt.Sprintf("m%d", op.M%20), float64(op.S))
		}
		out, _ := e.ZRange("z", 0, -1)
		for i := 1; i < len(out); i++ {
			if out[i].Score < out[i-1].Score {
				return false
			}
			if out[i].Score == out[i-1].Score && out[i].Member < out[i-1].Member {
				return false
			}
		}
		n, _ := e.ZCard("z")
		return n == len(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHashOps(t *testing.T) {
	e := New(Options{})
	isNew, _ := e.HSet("h", "f1", []byte("v1"))
	if !isNew {
		t.Fatal("first hset")
	}
	isNew, _ = e.HSet("h", "f1", []byte("v1b"))
	if isNew {
		t.Fatal("overwrite hset")
	}
	e.HSet("h", "f2", []byte("v2"))
	v, _ := e.HGet("h", "f1")
	if string(v) != "v1b" {
		t.Fatalf("hget %q", v)
	}
	if _, err := e.HGet("h", "nope"); err != ErrNotFound {
		t.Fatalf("missing field: %v", err)
	}
	if n, _ := e.HLen("h"); n != 2 {
		t.Fatalf("hlen %d", n)
	}
	all, _ := e.HGetAll("h")
	if len(all) != 2 || all[0].Field != "f1" || all[1].Field != "f2" {
		t.Fatalf("hgetall %v", all)
	}
	n, _ := e.HDel("h", "f1", "ghost")
	if n != 1 {
		t.Fatalf("hdel %d", n)
	}
	e.HDel("h", "f2")
	if e.Exists("h") {
		t.Fatal("empty hash should be deleted")
	}
}

func TestWideColumnPattern(t *testing.T) {
	// Wide-column usage: row key -> column family of qualified columns.
	e := New(Options{})
	row := "user:42"
	e.HSet(row, "profile:name", []byte("Wei"))
	e.HSet(row, "profile:city", []byte("Hangzhou"))
	e.HSet(row, "stats:logins", []byte("17"))
	all, _ := e.HGetAll(row)
	if len(all) != 3 {
		t.Fatalf("columns: %d", len(all))
	}
	v, _ := e.HGet(row, "profile:city")
	if string(v) != "Hangzhou" {
		t.Fatalf("column read %q", v)
	}
}

func TestCollectionsMemAccounting(t *testing.T) {
	e := New(Options{})
	e.RPush("l", []byte("abc"))
	e.SAdd("s", "member")
	e.ZAdd("z", "m", 1)
	e.HSet("h", "f", []byte("v"))
	if e.MemUsed() <= 0 {
		t.Fatal("collections not accounted")
	}
	e.FlushAll()
	if e.MemUsed() != 0 {
		t.Fatalf("residue: %d", e.MemUsed())
	}
}
