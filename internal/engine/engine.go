// Package engine implements the cache-tier in-memory engine of TierBase
// (paper §3): a multi-model key-value store with Redis-compatible data
// types (strings, lists, sets, sorted sets, hashes/wide-columns), CAS
// operations and TTLs. Values can transparently pass through a pre-trained
// compressor (§4.2) and/or be offloaded to the simulated persistent-memory
// arena (§4.3: keys and indexes stay in DRAM, large values move to PMem).
//
// The engine is safe for concurrent use and internally lock-striped: keys
// hash (FNV-1a) onto a power-of-two number of shards, each with its own
// RWMutex, map and stat counters, so operations on different shards never
// contend. Batch operations (MGet/MSet/BatchDel) group keys by shard and
// take each stripe lock exactly once. The server tier still decides the
// threading model (one engine per data node under elastic threading); the
// striping removes the single-mutex bottleneck within one engine.
package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/compress"
	"tierbase/internal/pmem"
)

// Kind enumerates value types.
type Kind uint8

// Value kinds.
const (
	KindNone Kind = iota
	KindString
	KindList
	KindSet
	KindZSet
	KindHash
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindList:
		return "list"
	case KindSet:
		return "set"
	case KindZSet:
		return "zset"
	case KindHash:
		return "hash"
	default:
		return "none"
	}
}

// Engine errors.
var (
	ErrNotFound    = errors.New("engine: key not found")
	ErrWrongType   = errors.New("engine: operation against wrong value type")
	ErrCASMismatch = errors.New("engine: compare-and-set mismatch")
	ErrNotInteger  = errors.New("engine: value is not an integer")
)

// DefaultShards is the default number of lock stripes.
const DefaultShards = 16

// Options configures an Engine.
type Options struct {
	// Compressor transparently encodes string values (nil = raw).
	Compressor compress.Compressor
	// CompressMin is the minimum value size to compress (default 32 B).
	CompressMin int
	// Monitor observes compression outcomes for retrain decisions.
	Monitor *compress.Monitor
	// Arena offloads string values >= PMemMin bytes to persistent memory.
	Arena *pmem.Arena
	// PMemMin is the offload threshold (default 64 B).
	PMemMin int
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
	// Shards is the number of lock stripes, rounded up to a power of two
	// (default DefaultShards). 1 reproduces the old single-mutex engine
	// (useful as a contention baseline in benchmarks).
	Shards int
}

func (o *Options) fill() {
	if o.CompressMin <= 0 {
		o.CompressMin = 32
	}
	if o.PMemMin <= 0 {
		o.PMemMin = 64
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	o.Shards = ceilPow2(o.Shards)
}

// ceilPow2 rounds n up to the next power of two (capped at 1<<16).
func ceilPow2(n int) int {
	p := 1
	for p < n && p < 1<<16 {
		p <<= 1
	}
	return p
}

// storedVal is the physical representation of a string value.
type storedVal struct {
	inline     []byte   // DRAM-resident bytes (possibly compressed)
	ref        pmem.Ref // PMem-resident bytes (possibly compressed); used when !ref.IsZero()
	compressed bool
	rawLen     int
}

// item is one keyed entry.
type item struct {
	kind     Kind
	str      storedVal
	list     [][]byte
	set      map[string]struct{}
	zset     *zset
	hash     map[string][]byte
	expireAt int64  // unixnano; 0 = no expiry
	version  uint64 // bumped on every mutation; CAS token
	memBytes int64  // approximate DRAM footprint
}

// shard is one lock stripe: an independent map plus its own counters, so
// hot shards never contend with cold ones (not on the lock, not on the
// stat cachelines).
type shard struct {
	mu    sync.RWMutex
	items map[string]*item

	memUsed atomic.Int64 // DRAM bytes (keys + values kept inline)
	hits    atomic.Int64
	misses  atomic.Int64
	expired atomic.Int64
	version atomic.Uint64

	// Pad the struct past a cacheline: shards are individually
	// heap-allocated, and the pad pushes them into a size class large
	// enough that two shards' counters never land on one line.
	_ [40]byte
}

// Engine is the in-memory store.
type Engine struct {
	shards []*shard
	mask   uint32
	opts   Options

	// sweepCursor rotates SweepExpired's starting shard so short sweeps
	// still cover the whole keyspace over successive calls.
	sweepCursor atomic.Uint32
}

// New creates an engine.
func New(opts Options) *Engine {
	opts.fill()
	e := &Engine{
		shards: make([]*shard, opts.Shards),
		mask:   uint32(opts.Shards - 1),
		opts:   opts,
	}
	for i := range e.shards {
		e.shards[i] = &shard{items: make(map[string]*item)}
	}
	return e
}

// NumShards reports the number of lock stripes.
func (e *Engine) NumShards() int { return len(e.shards) }

// ShardIndex reports the stripe index owning key. Callers that keep their
// own per-stripe state (e.g. the cache tier's LRU shards) use this to
// align it with the engine's striping, so one key always maps to the same
// stripe on both sides.
func (e *Engine) ShardIndex(key string) int { return int(e.shardIndex(key)) }

// ShardMemUsed reports the DRAM bytes resident in stripe i (keys plus
// inline values), the per-stripe leg of MemUsed.
func (e *Engine) ShardMemUsed(i int) int64 { return e.shards[i].memUsed.Load() }

// fnv1a is an inlined, allocation-free FNV-1a over the key bytes.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// shardIndex maps a key to its stripe index.
func (e *Engine) shardIndex(key string) uint32 { return fnv1a(key) & e.mask }

// shardFor returns the stripe owning key.
func (e *Engine) shardFor(key string) *shard { return e.shards[e.shardIndex(key)] }

// now returns the configured clock's time in unixnanos.
func (e *Engine) now() int64 { return e.opts.Clock().UnixNano() }

// nextVersion allocates a monotone mutation version within a shard.
// Versions only need to distinguish successive states of one key, and a
// key never changes shard, so per-shard counters avoid a global hotspot.
func (s *shard) nextVersion() uint64 { return s.version.Add(1) }

// expiredAt reports whether the item's TTL has lapsed.
func (it *item) expiredAt(now int64) bool {
	return it.expireAt != 0 && now >= it.expireAt
}

// getItem returns the live item for key, honoring lazy expiration.
// Caller must hold s.mu (either mode); expired items are treated as absent
// (actual deletion happens in write paths or the sweeper).
func (s *shard) getItem(key string, now int64) (*item, bool) {
	it, ok := s.items[key]
	if !ok || it.expiredAt(now) {
		return nil, false
	}
	return it, true
}

// deleteItemLocked removes an item and adjusts accounting. Caller holds
// s.mu write lock.
func (e *Engine) deleteItemLocked(s *shard, key string, it *item) {
	if !it.str.ref.IsZero() && e.opts.Arena != nil {
		e.opts.Arena.Free(it.str.ref)
	}
	s.memUsed.Add(-it.memBytes)
	delete(s.items, key)
}

// --- value encode/decode (compression + PMem placement) ---

// encodeValue prepares the physical representation of a string value.
func (e *Engine) encodeValue(val []byte) (storedVal, bool) {
	sv := storedVal{rawLen: len(val)}
	data := val
	unmatched := false
	if c := e.opts.Compressor; c != nil && len(val) >= e.opts.CompressMin {
		comp := c.Compress(val)
		if e.opts.Monitor != nil {
			unmatched = compress.IsEscape(comp) && c.Name() == "pbc"
			e.opts.Monitor.Observe(len(val), len(comp), unmatched)
		}
		if len(comp) < len(val) {
			data = comp
			sv.compressed = true
		}
	}
	if e.opts.Arena != nil && len(data) >= e.opts.PMemMin {
		if ref, err := e.opts.Arena.Put(data); err == nil {
			sv.ref = ref
			return sv, unmatched
		}
		// Arena full: fall back to DRAM.
	}
	sv.inline = append([]byte(nil), data...)
	return sv, unmatched
}

// decodeValue materializes the logical bytes of a stored value.
func (e *Engine) decodeValue(sv storedVal) ([]byte, error) {
	data := sv.inline
	if !sv.ref.IsZero() {
		var err error
		data, err = e.opts.Arena.Get(sv.ref)
		if err != nil {
			return nil, err
		}
	}
	if sv.compressed {
		return e.opts.Compressor.Decompress(data)
	}
	// Copy so callers can't mutate engine-owned memory. The copy is
	// always non-nil: a present empty value must stay distinguishable
	// from an absent key (nil).
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// dramBytes is the DRAM cost of a stored value (PMem-resident bytes are
// accounted by the arena, not here).
func (sv storedVal) dramBytes() int64 {
	return int64(len(sv.inline))
}

// itemOverhead approximates per-item bookkeeping bytes (map entry, struct).
const itemOverhead = 64

// newStringItem builds a string item with accounting; caller inserts it.
func newStringItem(key string, sv storedVal, version uint64) *item {
	return &item{
		kind:     KindString,
		str:      sv,
		version:  version,
		memBytes: int64(len(key)) + sv.dramBytes() + itemOverhead,
	}
}

// setLocked replaces any existing entry for key with a string item.
// Caller holds s.mu write lock.
func (e *Engine) setLocked(s *shard, key string, sv storedVal) {
	if old, exists := s.items[key]; exists {
		e.deleteItemLocked(s, key, old)
	}
	it := newStringItem(key, sv, s.nextVersion())
	s.items[key] = it
	s.memUsed.Add(it.memBytes)
}

// --- string operations ---

// Set stores a string value, clearing any TTL.
func (e *Engine) Set(key string, val []byte) error {
	sv, _ := e.encodeValue(val)
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e.setLocked(s, key, sv)
	return nil
}

// SetNX stores val only if key is absent; reports whether it stored.
func (e *Engine) SetNX(key string, val []byte) (bool, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	_, live := s.getItem(key, e.now())
	s.mu.RUnlock()
	if live {
		return false, nil
	}
	// Encode outside the lock; wasted work only when a concurrent SetNX
	// wins the race below, which the write-locked re-check detects.
	sv, _ := e.encodeValue(val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.getItem(key, e.now()); live {
		return false, nil
	}
	e.setLocked(s, key, sv)
	return true, nil
}

// Get fetches a string value.
func (e *Engine) Get(key string) ([]byte, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	it, ok := s.getItem(key, e.now())
	if !ok {
		s.mu.RUnlock()
		s.misses.Add(1)
		return nil, ErrNotFound
	}
	if it.kind != KindString {
		s.mu.RUnlock()
		return nil, ErrWrongType
	}
	sv := it.str
	s.mu.RUnlock()
	s.hits.Add(1)
	return e.decodeValue(sv)
}

// GetWithShard is Get plus the stripe index the key hashed to. The cache
// tier's per-stripe access sampling needs that index on every read, and
// Get already computed it — returning it saves the caller a second
// FNV pass over the key on the hottest path in the system.
func (e *Engine) GetWithShard(key string) ([]byte, int, error) {
	si := e.shardIndex(key)
	s := e.shards[si]
	s.mu.RLock()
	it, ok := s.getItem(key, e.now())
	if !ok {
		s.mu.RUnlock()
		s.misses.Add(1)
		return nil, int(si), ErrNotFound
	}
	if it.kind != KindString {
		s.mu.RUnlock()
		return nil, int(si), ErrWrongType
	}
	sv := it.str
	s.mu.RUnlock()
	s.hits.Add(1)
	v, err := e.decodeValue(sv)
	return v, int(si), err
}

// GetWithVersion fetches a string value plus its CAS version token.
func (e *Engine) GetWithVersion(key string) ([]byte, uint64, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	it, ok := s.getItem(key, e.now())
	if !ok {
		s.mu.RUnlock()
		s.misses.Add(1)
		return nil, 0, ErrNotFound
	}
	if it.kind != KindString {
		s.mu.RUnlock()
		return nil, 0, ErrWrongType
	}
	sv, ver := it.str, it.version
	s.mu.RUnlock()
	s.hits.Add(1)
	val, err := e.decodeValue(sv)
	return val, ver, err
}

// Del removes keys; returns how many existed. Multi-key deletes group by
// shard and take each stripe lock once (see BatchDel).
func (e *Engine) Del(keys ...string) int { return e.BatchDel(keys) }

// Exists reports whether key is live.
func (e *Engine) Exists(key string) bool {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.getItem(key, e.now())
	return ok
}

// Type returns the kind of key (KindNone if absent).
func (e *Engine) Type(key string) Kind {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.getItem(key, e.now())
	if !ok {
		return KindNone
	}
	return it.kind
}

// CompareAndSet replaces key's value with newVal only if the current value
// equals oldVal (the paper's CAS operation). oldVal nil means "key absent".
func (e *Engine) CompareAndSet(key string, oldVal, newVal []byte) error {
	// Pre-encode outside the lock; wasted work only on mismatch.
	sv, _ := e.encodeValue(newVal)
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.getItem(key, e.now())
	if !ok {
		if oldVal != nil {
			return ErrCASMismatch
		}
	} else {
		if it.kind != KindString {
			return ErrWrongType
		}
		cur, err := e.decodeValue(it.str)
		if err != nil {
			return err
		}
		if oldVal == nil || !bytesEqual(cur, oldVal) {
			return ErrCASMismatch
		}
	}
	e.setLocked(s, key, sv)
	return nil
}

// SetIfVersion replaces key's value only if its version token matches
// (optimistic concurrency for read-modify-write).
func (e *Engine) SetIfVersion(key string, val []byte, version uint64) error {
	sv, _ := e.encodeValue(val)
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.getItem(key, e.now())
	if !ok || it.version != version {
		return ErrCASMismatch
	}
	e.setLocked(s, key, sv)
	return nil
}

// IncrBy adds delta to the integer value at key (0 if absent).
func (e *Engine) IncrBy(key string, delta int64) (int64, error) {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.getItem(key, e.now())
	var cur int64
	if ok {
		if it.kind != KindString {
			return 0, ErrWrongType
		}
		raw, err := e.decodeValue(it.str)
		if err != nil {
			return 0, err
		}
		cur, err = parseInt(raw)
		if err != nil {
			return 0, ErrNotInteger
		}
	}
	cur += delta
	buf := appendInt(nil, cur)
	sv := storedVal{inline: buf, rawLen: len(buf)} // counters are never compressed/offloaded
	e.setLocked(s, key, sv)
	return cur, nil
}

// --- TTL ---

// Expire sets a TTL; reports whether the key existed.
func (e *Engine) Expire(key string, d time.Duration) bool {
	return e.ExpireAt(key, e.now()+int64(d))
}

// ExpireAt sets an absolute expiry deadline (UnixNano on the engine's
// clock); reports whether the key existed. Replication uses this form:
// an op applied seconds late on a slow replica must expire the key at
// the master's wall-clock instant, not late-arrival + TTL.
func (e *Engine) ExpireAt(key string, at int64) bool {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.getItem(key, e.now())
	if !ok {
		return false
	}
	it.expireAt = at
	return true
}

// TakeExpired deletes key if (and only if) it is present with a lapsed
// TTL, reporting whether it did. This is the expiry-driven
// delete-through hook: lazy expiry leaves the dead item in the map and
// getItem merely hides it, so without this seam an expired key
// resurrects from the storage tier on its next cold read. The caller
// (cache.Tiered) routes a tombstone through the write path when this
// returns true.
func (e *Engine) TakeExpired(key string) bool {
	s := e.shardFor(key)
	s.mu.Lock()
	it, ok := s.items[key]
	if !ok || !it.expiredAt(e.now()) {
		s.mu.Unlock()
		return false
	}
	e.deleteItemLocked(s, key, it)
	s.expired.Add(1)
	s.mu.Unlock()
	return true
}

// CollectExpired returns up to max keys whose TTL has lapsed but whose
// items still occupy the shard maps. Read locks only — the caller
// confirms and deletes each key through TakeExpired (directly or via
// the tiered delete-through path), which rechecks under the write lock
// so a concurrent PERSIST or overwrite wins the race.
func (e *Engine) CollectExpired(max int) []string {
	if max <= 0 {
		return nil
	}
	var out []string
	for _, s := range e.shards {
		s.mu.RLock()
		now := e.now()
		for key, it := range s.items {
			if it.expiredAt(now) {
				out = append(out, key)
				if len(out) >= max {
					break
				}
			}
		}
		s.mu.RUnlock()
		if len(out) >= max {
			break
		}
	}
	return out
}

// Persist clears a TTL; reports whether the key existed.
func (e *Engine) Persist(key string) bool {
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.getItem(key, e.now())
	if !ok {
		return false
	}
	it.expireAt = 0
	return true
}

// TTL returns the remaining lifetime; (0, false) if absent or no TTL.
func (e *Engine) TTL(key string) (time.Duration, bool) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.getItem(key, e.now())
	if !ok || it.expireAt == 0 {
		return 0, false
	}
	return time.Duration(it.expireAt - e.now()), true
}

// SweepExpired scans up to max keys and deletes lapsed ones, returning the
// number removed (the active expiration cycle; lazy expiry handles access).
// The sweep is per-shard incremental: each stripe is scanned under its own
// write lock, so an expiry cycle never stalls readers of other shards, and
// the rotating start cursor lets small budgets cover the whole keyspace
// across successive calls.
func (e *Engine) SweepExpired(max int) int {
	if max <= 0 {
		return 0
	}
	now := e.now()
	start := e.sweepCursor.Add(1)
	n := uint32(len(e.shards))
	removed := 0
	scanned := 0
	for i := uint32(0); i < n && scanned < max; i++ {
		s := e.shards[(start+i)&e.mask]
		shardRemoved := 0
		s.mu.Lock()
		for key, it := range s.items {
			if scanned >= max {
				break
			}
			scanned++
			if it.expiredAt(now) {
				e.deleteItemLocked(s, key, it)
				shardRemoved++
			}
		}
		s.mu.Unlock()
		if shardRemoved > 0 {
			s.expired.Add(int64(shardRemoved))
			removed += shardRemoved
		}
	}
	return removed
}

// --- introspection ---

// Stats summarizes engine state.
type Stats struct {
	Keys     int
	MemBytes int64 // DRAM only
	PMemUsed int64
	Hits     int64
	Misses   int64
	Expired  int64
}

// Stats returns a snapshot of counters, folded across shards.
func (e *Engine) Stats() Stats {
	var st Stats
	for _, s := range e.shards {
		s.mu.RLock()
		st.Keys += len(s.items)
		s.mu.RUnlock()
		st.MemBytes += s.memUsed.Load()
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		st.Expired += s.expired.Load()
	}
	if e.opts.Arena != nil {
		st.PMemUsed = e.opts.Arena.Used()
	}
	return st
}

// MemUsed returns approximate DRAM bytes (summed across shards).
func (e *Engine) MemUsed() int64 {
	var total int64
	for _, s := range e.shards {
		total += s.memUsed.Load()
	}
	return total
}

// Len returns the number of keys (including not-yet-swept expired ones).
func (e *Engine) Len() int {
	n := 0
	for _, s := range e.shards {
		s.mu.RLock()
		n += len(s.items)
		s.mu.RUnlock()
	}
	return n
}

// ForEachString visits every live string key (decoded); used for
// replication snapshots and cost measurement. The callback must not call
// back into the engine. Iteration order is unspecified. The snapshot is
// taken shard by shard, so it is consistent within a shard but not across
// shards (same guarantee a Redis SCAN cursor gives).
func (e *Engine) ForEachString(fn func(key string, val []byte) bool) error {
	type kv struct {
		k  string
		sv storedVal
	}
	for _, s := range e.shards {
		s.mu.RLock()
		now := e.now()
		snapshot := make([]kv, 0, len(s.items))
		for k, it := range s.items {
			if it.kind == KindString && !it.expiredAt(now) {
				snapshot = append(snapshot, kv{k, it.str})
			}
		}
		s.mu.RUnlock()
		for _, p := range snapshot {
			val, err := e.decodeValue(p.sv)
			if err != nil {
				return err
			}
			if !fn(p.k, val) {
				return nil
			}
		}
	}
	return nil
}

// ForEachEncoded visits every live key of every kind: strings yield
// their value with encoded=false, collections yield a typed blob
// (EncodeCollection format) with encoded=true. Each shard is
// snapshotted under its read lock (collections are serialized inside
// the critical section — their internals are mutable), so the view is
// per-shard consistent, like ForEachString. Used for replication
// full-sync snapshots.
func (e *Engine) ForEachEncoded(fn func(key string, val []byte, encoded bool) bool) error {
	type ekv struct {
		k   string
		sv  storedVal // strings: decoded outside the lock
		eb  []byte    // collections: blob built under the lock
		enc bool
	}
	for _, s := range e.shards {
		s.mu.RLock()
		now := e.now()
		snapshot := make([]ekv, 0, len(s.items))
		for k, it := range s.items {
			if it.expiredAt(now) {
				continue
			}
			if it.kind == KindString {
				snapshot = append(snapshot, ekv{k: k, sv: it.str})
			} else if blob, ok := encodeCollectionLocked(it); ok {
				snapshot = append(snapshot, ekv{k: k, eb: blob, enc: true})
			}
		}
		s.mu.RUnlock()
		for _, p := range snapshot {
			val := p.eb
			if !p.enc {
				var err error
				val, err = e.decodeValue(p.sv)
				if err != nil {
					return err
				}
			}
			if !fn(p.k, val, p.enc) {
				return nil
			}
		}
	}
	return nil
}

// SnapEntry is one key in a chunked snapshot walk (ForEachEncodedChunked).
type SnapEntry struct {
	Key     string
	Val     []byte
	Encoded bool // Val is a typed collection blob (EncodeCollection format)
}

// ForEachEncodedChunked is the bounded-buffer form of ForEachEncoded,
// built for replication full-sync snapshots feeding a socket: plain
// ForEachEncoded materializes a whole shard (every collection
// serialized) in one slice before the first callback, so a big shard
// costs O(shard) memory per attached replica. Here only the key list is
// captured up front (strings, cheap); values materialize in chunks of
// ~maxChunkBytes (at least one entry per chunk), each chunk under its
// own short read-lock hold, and fn runs with no lock held — a stalled
// replica socket inside fn never blocks writers, and buffered memory
// stays O(chunk).
//
// Keys deleted between the key listing and their chunk are skipped; a
// key mutated in between yields its newer value. Callers tolerate both
// by streaming the op log from a position at or before the walk.
// Returning false from fn stops the walk.
func (e *Engine) ForEachEncodedChunked(maxChunkBytes int, fn func(chunk []SnapEntry) bool) error {
	if maxChunkBytes <= 0 {
		maxChunkBytes = 1 << 20
	}
	type ekv struct {
		k   string
		sv  storedVal // strings: decoded outside the lock
		eb  []byte    // collections: blob built under the lock
		enc bool
	}
	for _, s := range e.shards {
		s.mu.RLock()
		keys := make([]string, 0, len(s.items))
		now := e.now()
		for k, it := range s.items {
			if !it.expiredAt(now) {
				keys = append(keys, k)
			}
		}
		s.mu.RUnlock()
		for i := 0; i < len(keys); {
			s.mu.RLock()
			now = e.now()
			var raw []ekv
			bytes := 0
			for ; i < len(keys) && (len(raw) == 0 || bytes < maxChunkBytes); i++ {
				it, ok := s.items[keys[i]]
				if !ok || it.expiredAt(now) {
					continue // deleted or lapsed since the key listing
				}
				if it.kind == KindString {
					raw = append(raw, ekv{k: keys[i], sv: it.str})
					bytes += int(it.memBytes)
				} else if blob, ok := encodeCollectionLocked(it); ok {
					raw = append(raw, ekv{k: keys[i], eb: blob, enc: true})
					bytes += len(blob)
				}
			}
			s.mu.RUnlock()
			if len(raw) == 0 {
				continue
			}
			chunk := make([]SnapEntry, 0, len(raw))
			for _, p := range raw {
				val := p.eb
				if !p.enc {
					var err error
					val, err = e.decodeValue(p.sv)
					if err != nil {
						return err
					}
				}
				chunk = append(chunk, SnapEntry{Key: p.k, Val: val, Encoded: p.enc})
			}
			if !fn(chunk) {
				return nil
			}
		}
	}
	return nil
}

// FlushAll removes every key (FLUSHALL analog, used by tests/benches).
// Each shard is cleared under its own lock; readers of other shards
// proceed while one stripe flushes.
func (e *Engine) FlushAll() {
	for _, s := range e.shards {
		s.mu.Lock()
		for key, it := range s.items {
			e.deleteItemLocked(s, key, it)
		}
		s.mu.Unlock()
	}
}

// --- small helpers ---

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, ErrNotInteger
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, ErrNotInteger
		}
	}
	var v int64
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, ErrNotInteger
		}
		v = v*10 + int64(b[i]-'0')
	}
	if neg {
		v = -v
	}
	return v, nil
}

func appendInt(out []byte, v int64) []byte {
	if v < 0 {
		out = append(out, '-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	if v == 0 {
		return append(out, '0')
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(out, buf[i:]...)
}
