// Package engine implements the cache-tier in-memory engine of TierBase
// (paper §3): a multi-model key-value store with Redis-compatible data
// types (strings, lists, sets, sorted sets, hashes/wide-columns), CAS
// operations and TTLs. Values can transparently pass through a pre-trained
// compressor (§4.2) and/or be offloaded to the simulated persistent-memory
// arena (§4.3: keys and indexes stay in DRAM, large values move to PMem).
//
// The engine is safe for concurrent use; the server tier decides the
// threading model (one engine per shard under elastic threading).
package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"tierbase/internal/compress"
	"tierbase/internal/pmem"
)

// Kind enumerates value types.
type Kind uint8

// Value kinds.
const (
	KindNone Kind = iota
	KindString
	KindList
	KindSet
	KindZSet
	KindHash
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindList:
		return "list"
	case KindSet:
		return "set"
	case KindZSet:
		return "zset"
	case KindHash:
		return "hash"
	default:
		return "none"
	}
}

// Engine errors.
var (
	ErrNotFound    = errors.New("engine: key not found")
	ErrWrongType   = errors.New("engine: operation against wrong value type")
	ErrCASMismatch = errors.New("engine: compare-and-set mismatch")
	ErrNotInteger  = errors.New("engine: value is not an integer")
)

// Options configures an Engine.
type Options struct {
	// Compressor transparently encodes string values (nil = raw).
	Compressor compress.Compressor
	// CompressMin is the minimum value size to compress (default 32 B).
	CompressMin int
	// Monitor observes compression outcomes for retrain decisions.
	Monitor *compress.Monitor
	// Arena offloads string values >= PMemMin bytes to persistent memory.
	Arena *pmem.Arena
	// PMemMin is the offload threshold (default 64 B).
	PMemMin int
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
}

func (o *Options) fill() {
	if o.CompressMin <= 0 {
		o.CompressMin = 32
	}
	if o.PMemMin <= 0 {
		o.PMemMin = 64
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// storedVal is the physical representation of a string value.
type storedVal struct {
	inline     []byte   // DRAM-resident bytes (possibly compressed)
	ref        pmem.Ref // PMem-resident bytes (possibly compressed); used when !ref.IsZero()
	compressed bool
	rawLen     int
}

// item is one keyed entry.
type item struct {
	kind     Kind
	str      storedVal
	list     [][]byte
	set      map[string]struct{}
	zset     *zset
	hash     map[string][]byte
	expireAt int64  // unixnano; 0 = no expiry
	version  uint64 // bumped on every mutation; CAS token
	memBytes int64  // approximate DRAM footprint
}

// Engine is the in-memory store.
type Engine struct {
	mu    sync.RWMutex
	items map[string]*item
	opts  Options

	memUsed atomic.Int64 // DRAM bytes (keys + values kept inline)
	hits    atomic.Int64
	misses  atomic.Int64
	expired atomic.Int64
	version atomic.Uint64
}

// New creates an engine.
func New(opts Options) *Engine {
	opts.fill()
	return &Engine{items: make(map[string]*item), opts: opts}
}

// now returns the configured clock's time in unixnanos.
func (e *Engine) now() int64 { return e.opts.Clock().UnixNano() }

// nextVersion allocates a monotone mutation version.
func (e *Engine) nextVersion() uint64 { return e.version.Add(1) }

// expiredLocked reports whether it has lapsed; caller holds at least RLock.
func (it *item) expiredAt(now int64) bool {
	return it.expireAt != 0 && now >= it.expireAt
}

// getItem returns the live item for key, honoring lazy expiration.
// Caller must hold e.mu (either mode); expired items are treated as absent
// (actual deletion happens in write paths or the sweeper).
func (e *Engine) getItem(key string, now int64) (*item, bool) {
	it, ok := e.items[key]
	if !ok || it.expiredAt(now) {
		return nil, false
	}
	return it, true
}

// deleteItemLocked removes an item and adjusts accounting. Caller holds Lock.
func (e *Engine) deleteItemLocked(key string, it *item) {
	if !it.str.ref.IsZero() && e.opts.Arena != nil {
		e.opts.Arena.Free(it.str.ref)
	}
	e.memUsed.Add(-it.memBytes)
	delete(e.items, key)
}

// --- value encode/decode (compression + PMem placement) ---

// encodeValue prepares the physical representation of a string value.
func (e *Engine) encodeValue(val []byte) (storedVal, bool) {
	sv := storedVal{rawLen: len(val)}
	data := val
	unmatched := false
	if c := e.opts.Compressor; c != nil && len(val) >= e.opts.CompressMin {
		comp := c.Compress(val)
		if e.opts.Monitor != nil {
			unmatched = compress.IsEscape(comp) && c.Name() == "pbc"
			e.opts.Monitor.Observe(len(val), len(comp), unmatched)
		}
		if len(comp) < len(val) {
			data = comp
			sv.compressed = true
		}
	}
	if e.opts.Arena != nil && len(data) >= e.opts.PMemMin {
		if ref, err := e.opts.Arena.Put(data); err == nil {
			sv.ref = ref
			return sv, unmatched
		}
		// Arena full: fall back to DRAM.
	}
	sv.inline = append([]byte(nil), data...)
	return sv, unmatched
}

// decodeValue materializes the logical bytes of a stored value.
func (e *Engine) decodeValue(sv storedVal) ([]byte, error) {
	data := sv.inline
	if !sv.ref.IsZero() {
		var err error
		data, err = e.opts.Arena.Get(sv.ref)
		if err != nil {
			return nil, err
		}
	}
	if sv.compressed {
		return e.opts.Compressor.Decompress(data)
	}
	// Copy so callers can't mutate engine-owned memory.
	return append([]byte(nil), data...), nil
}

// dramBytes is the DRAM cost of a stored value (PMem-resident bytes are
// accounted by the arena, not here).
func (sv storedVal) dramBytes() int64 {
	return int64(len(sv.inline))
}

// --- string operations ---

// Set stores a string value, clearing any TTL.
func (e *Engine) Set(key string, val []byte) error {
	sv, _ := e.encodeValue(val)
	e.mu.Lock()
	defer e.mu.Unlock()
	old, exists := e.items[key]
	if exists {
		e.deleteItemLocked(key, old)
	}
	it := &item{
		kind:     KindString,
		str:      sv,
		version:  e.nextVersion(),
		memBytes: int64(len(key)) + sv.dramBytes() + itemOverhead,
	}
	e.items[key] = it
	e.memUsed.Add(it.memBytes)
	return nil
}

// itemOverhead approximates per-item bookkeeping bytes (map entry, struct).
const itemOverhead = 64

// SetNX stores val only if key is absent; reports whether it stored.
func (e *Engine) SetNX(key string, val []byte) (bool, error) {
	e.mu.Lock()
	if it, ok := e.getItem(key, e.now()); ok && it != nil {
		e.mu.Unlock()
		return false, nil
	}
	e.mu.Unlock()
	// Racy window is fine: Set re-checks nothing but overwrite semantics
	// of concurrent SetNX callers is last-writer-wins on the same absent
	// key, matching Redis behavior under pipelining. For strictness we
	// redo the check under the write lock:
	sv, _ := e.encodeValue(val)
	e.mu.Lock()
	defer e.mu.Unlock()
	if it, ok := e.getItem(key, e.now()); ok && it != nil {
		return false, nil
	}
	if old, exists := e.items[key]; exists { // expired remnant
		e.deleteItemLocked(key, old)
	}
	it := &item{
		kind:     KindString,
		str:      sv,
		version:  e.nextVersion(),
		memBytes: int64(len(key)) + sv.dramBytes() + itemOverhead,
	}
	e.items[key] = it
	e.memUsed.Add(it.memBytes)
	return true, nil
}

// Get fetches a string value.
func (e *Engine) Get(key string) ([]byte, error) {
	e.mu.RLock()
	it, ok := e.getItem(key, e.now())
	if !ok {
		e.mu.RUnlock()
		e.misses.Add(1)
		return nil, ErrNotFound
	}
	if it.kind != KindString {
		e.mu.RUnlock()
		return nil, ErrWrongType
	}
	sv := it.str
	e.mu.RUnlock()
	e.hits.Add(1)
	return e.decodeValue(sv)
}

// GetWithVersion fetches a string value plus its CAS version token.
func (e *Engine) GetWithVersion(key string) ([]byte, uint64, error) {
	e.mu.RLock()
	it, ok := e.getItem(key, e.now())
	if !ok {
		e.mu.RUnlock()
		e.misses.Add(1)
		return nil, 0, ErrNotFound
	}
	if it.kind != KindString {
		e.mu.RUnlock()
		return nil, 0, ErrWrongType
	}
	sv, ver := it.str, it.version
	e.mu.RUnlock()
	e.hits.Add(1)
	val, err := e.decodeValue(sv)
	return val, ver, err
}

// Del removes keys; returns how many existed.
func (e *Engine) Del(keys ...string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	n := 0
	for _, key := range keys {
		if it, ok := e.items[key]; ok {
			if !it.expiredAt(now) {
				n++
			}
			e.deleteItemLocked(key, it)
		}
	}
	return n
}

// Exists reports whether key is live.
func (e *Engine) Exists(key string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.getItem(key, e.now())
	return ok
}

// Type returns the kind of key (KindNone if absent).
func (e *Engine) Type(key string) Kind {
	e.mu.RLock()
	defer e.mu.RUnlock()
	it, ok := e.getItem(key, e.now())
	if !ok {
		return KindNone
	}
	return it.kind
}

// CompareAndSet replaces key's value with newVal only if the current value
// equals oldVal (the paper's CAS operation). oldVal nil means "key absent".
func (e *Engine) CompareAndSet(key string, oldVal, newVal []byte) error {
	// Pre-encode outside the lock; wasted work only on mismatch.
	sv, _ := e.encodeValue(newVal)
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.getItem(key, e.now())
	if !ok {
		if oldVal != nil {
			return ErrCASMismatch
		}
	} else {
		if it.kind != KindString {
			return ErrWrongType
		}
		cur, err := e.decodeValue(it.str)
		if err != nil {
			return err
		}
		if oldVal == nil || !bytesEqual(cur, oldVal) {
			return ErrCASMismatch
		}
	}
	if old, exists := e.items[key]; exists {
		e.deleteItemLocked(key, old)
	}
	ni := &item{
		kind:     KindString,
		str:      sv,
		version:  e.nextVersion(),
		memBytes: int64(len(key)) + sv.dramBytes() + itemOverhead,
	}
	e.items[key] = ni
	e.memUsed.Add(ni.memBytes)
	return nil
}

// SetIfVersion replaces key's value only if its version token matches
// (optimistic concurrency for read-modify-write).
func (e *Engine) SetIfVersion(key string, val []byte, version uint64) error {
	sv, _ := e.encodeValue(val)
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.getItem(key, e.now())
	if !ok || it.version != version {
		return ErrCASMismatch
	}
	e.deleteItemLocked(key, it)
	ni := &item{
		kind:     KindString,
		str:      sv,
		version:  e.nextVersion(),
		memBytes: int64(len(key)) + sv.dramBytes() + itemOverhead,
	}
	e.items[key] = ni
	e.memUsed.Add(ni.memBytes)
	return nil
}

// IncrBy adds delta to the integer value at key (0 if absent).
func (e *Engine) IncrBy(key string, delta int64) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.getItem(key, e.now())
	var cur int64
	if ok {
		if it.kind != KindString {
			return 0, ErrWrongType
		}
		raw, err := e.decodeValue(it.str)
		if err != nil {
			return 0, err
		}
		cur, err = parseInt(raw)
		if err != nil {
			return 0, ErrNotInteger
		}
	}
	cur += delta
	buf := appendInt(nil, cur)
	sv := storedVal{inline: buf, rawLen: len(buf)} // counters are never compressed/offloaded
	if old, exists := e.items[key]; exists {
		e.deleteItemLocked(key, old)
	}
	ni := &item{
		kind:     KindString,
		str:      sv,
		version:  e.nextVersion(),
		memBytes: int64(len(key)) + sv.dramBytes() + itemOverhead,
	}
	e.items[key] = ni
	e.memUsed.Add(ni.memBytes)
	return cur, nil
}

// --- TTL ---

// Expire sets a TTL; reports whether the key existed.
func (e *Engine) Expire(key string, d time.Duration) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.getItem(key, e.now())
	if !ok {
		return false
	}
	it.expireAt = e.now() + int64(d)
	return true
}

// Persist clears a TTL; reports whether the key existed.
func (e *Engine) Persist(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	it, ok := e.getItem(key, e.now())
	if !ok {
		return false
	}
	it.expireAt = 0
	return true
}

// TTL returns the remaining lifetime; (0, false) if absent or no TTL.
func (e *Engine) TTL(key string) (time.Duration, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	it, ok := e.getItem(key, e.now())
	if !ok || it.expireAt == 0 {
		return 0, false
	}
	return time.Duration(it.expireAt - e.now()), true
}

// SweepExpired scans up to max keys and deletes lapsed ones, returning the
// number removed (the active expiration cycle; lazy expiry handles access).
func (e *Engine) SweepExpired(max int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	removed := 0
	scanned := 0
	for key, it := range e.items {
		if scanned >= max {
			break
		}
		scanned++
		if it.expiredAt(now) {
			e.deleteItemLocked(key, it)
			removed++
		}
	}
	e.expired.Add(int64(removed))
	return removed
}

// --- introspection ---

// Stats summarizes engine state.
type Stats struct {
	Keys     int
	MemBytes int64 // DRAM only
	PMemUsed int64
	Hits     int64
	Misses   int64
	Expired  int64
}

// Stats returns a snapshot of counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	keys := len(e.items)
	e.mu.RUnlock()
	st := Stats{
		Keys:     keys,
		MemBytes: e.memUsed.Load(),
		Hits:     e.hits.Load(),
		Misses:   e.misses.Load(),
		Expired:  e.expired.Load(),
	}
	if e.opts.Arena != nil {
		st.PMemUsed = e.opts.Arena.Used()
	}
	return st
}

// MemUsed returns approximate DRAM bytes.
func (e *Engine) MemUsed() int64 { return e.memUsed.Load() }

// Len returns the number of keys (including not-yet-swept expired ones).
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.items)
}

// ForEachString visits every live string key (decoded); used for
// replication snapshots and cost measurement. The callback must not call
// back into the engine. Iteration order is unspecified.
func (e *Engine) ForEachString(fn func(key string, val []byte) bool) error {
	type kv struct {
		k  string
		sv storedVal
	}
	e.mu.RLock()
	now := e.now()
	snapshot := make([]kv, 0, len(e.items))
	for k, it := range e.items {
		if it.kind == KindString && !it.expiredAt(now) {
			snapshot = append(snapshot, kv{k, it.str})
		}
	}
	e.mu.RUnlock()
	for _, p := range snapshot {
		val, err := e.decodeValue(p.sv)
		if err != nil {
			return err
		}
		if !fn(p.k, val) {
			return nil
		}
	}
	return nil
}

// FlushAll removes every key (FLUSHALL analog, used by tests/benches).
func (e *Engine) FlushAll() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key, it := range e.items {
		e.deleteItemLocked(key, it)
	}
}

// --- small helpers ---

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, ErrNotInteger
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, ErrNotInteger
		}
	}
	var v int64
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, ErrNotInteger
		}
		v = v*10 + int64(b[i]-'0')
	}
	if neg {
		v = -v
	}
	return v, nil
}

func appendInt(out []byte, v int64) []byte {
	if v < 0 {
		out = append(out, '-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	if v == 0 {
		return append(out, '0')
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(out, buf[i:]...)
}
