// Package replication implements TierBase's cache-tier replication layer
// (paper §3: "TierBase supports both single-replica and multi-replica
// modes, implementing various replication protocols to accommodate
// different reliability requirements"; §4.1.2 relies on it to protect
// dirty data under write-back).
//
// The master applies each mutation locally, appends it to a bounded
// operation log, and streams it to attached replicas. Replicas that fall
// behind the log window are re-seeded with a full snapshot (full sync)
// before resuming the stream. The master can be configured to wait for k
// replica acknowledgements before acking a write (semi-synchronous mode),
// which is the durability knob write-back caching needs.
package replication

import (
	"errors"
	"fmt"
	"sync"

	"tierbase/internal/engine"
)

// OpKind enumerates replicated operations.
type OpKind uint8

// Replicated operation kinds.
const (
	OpSet OpKind = iota
	OpDel
)

// Op is one replicated mutation.
type Op struct {
	Seq  uint64
	Kind OpKind
	Key  string
	Val  []byte
}

// Replica is a destination for the replication stream.
type Replica struct {
	eng  *engine.Engine
	mu   sync.Mutex
	last uint64 // last applied sequence
}

// NewReplica wraps an engine as a replication target.
func NewReplica(eng *engine.Engine) *Replica { return &Replica{eng: eng} }

// Engine exposes the underlying engine (reads, promotion).
func (r *Replica) Engine() *engine.Engine { return r.eng }

// LastApplied returns the replica's replication offset.
func (r *Replica) LastApplied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// apply applies one op; ops must arrive in sequence order.
func (r *Replica) apply(op Op) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if op.Seq <= r.last {
		return nil // duplicate delivery is idempotent
	}
	if op.Seq != r.last+1 {
		return fmt.Errorf("replication: gap: have %d got %d", r.last, op.Seq)
	}
	switch op.Kind {
	case OpSet:
		r.eng.Set(op.Key, op.Val)
	case OpDel:
		r.eng.Del(op.Key)
	}
	r.last = op.Seq
	return nil
}

// fullSync seeds the replica from a snapshot ending at seq.
func (r *Replica) fullSync(snapshot map[string][]byte, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.eng.FlushAll()
	for k, v := range snapshot {
		r.eng.Set(k, v)
	}
	r.last = seq
}

// Master replicates mutations applied through it to attached replicas.
type Master struct {
	eng *engine.Engine

	mu       sync.Mutex
	seq      uint64
	log      []Op // window of recent ops; log[0].Seq == logStart
	logStart uint64
	logCap   int
	replicas []*Replica

	// AckReplicas is how many replicas must apply a write before Set/Del
	// return (0 = fully asynchronous). With in-process replicas the apply
	// is immediate; the knob models the protocol choice and is honored by
	// the error path (a gap forces full sync before the ack).
	AckReplicas int

	fullSyncs int64
}

// NewMaster wraps an engine as a replication source. logCap bounds the
// retained op window (older replicas need a full sync); default 4096.
func NewMaster(eng *engine.Engine, logCap int) *Master {
	if logCap <= 0 {
		logCap = 4096
	}
	return &Master{eng: eng, logCap: logCap, logStart: 1}
}

// Engine exposes the master engine.
func (m *Master) Engine() *engine.Engine { return m.eng }

// Attach connects a replica, bringing it up to date via full sync.
func (m *Master) Attach(r *Replica) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncReplicaLocked(r)
	m.replicas = append(m.replicas, r)
}

// Detach removes a replica from the stream.
func (m *Master) Detach(r *Replica) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, x := range m.replicas {
		if x == r {
			m.replicas = append(m.replicas[:i], m.replicas[i+1:]...)
			return
		}
	}
}

// syncReplicaLocked brings a replica to the master's current state.
func (m *Master) syncReplicaLocked(r *Replica) {
	behind := r.LastApplied()
	if behind+1 >= m.logStart && behind <= m.seq {
		// Partial sync from the log window.
		for _, op := range m.log {
			if op.Seq > behind {
				if err := r.apply(op); err != nil {
					break // falls through to full sync below
				}
			}
		}
		if r.LastApplied() == m.seq {
			return
		}
	}
	// Full sync: snapshot the master engine.
	snapshot := map[string][]byte{}
	m.eng.ForEachString(func(k string, v []byte) bool {
		snapshot[k] = v
		return true
	})
	r.fullSync(snapshot, m.seq)
	m.fullSyncs++
}

// FullSyncs reports how many full re-seeds have happened.
func (m *Master) FullSyncs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fullSyncs
}

// ErrNotEnoughAcks is returned in semi-sync mode when too few replicas
// confirmed the write.
var ErrNotEnoughAcks = errors.New("replication: not enough replica acks")

// Set applies and replicates a SET.
func (m *Master) Set(key string, val []byte) error {
	return m.replicate(Op{Kind: OpSet, Key: key, Val: append([]byte(nil), val...)})
}

// Del applies and replicates a DEL.
func (m *Master) Del(key string) error {
	return m.replicate(Op{Kind: OpDel, Key: key})
}

func (m *Master) replicate(op Op) error {
	m.mu.Lock()
	m.seq++
	op.Seq = m.seq
	switch op.Kind {
	case OpSet:
		m.eng.Set(op.Key, op.Val)
	case OpDel:
		m.eng.Del(op.Key)
	}
	m.log = append(m.log, op)
	if len(m.log) > m.logCap {
		drop := len(m.log) - m.logCap
		m.log = m.log[drop:]
		m.logStart = m.log[0].Seq
	}
	acks := 0
	for _, r := range m.replicas {
		if err := r.apply(op); err != nil {
			// Stream broken (gap): repair with a sync.
			m.syncReplicaLocked(r)
		}
		if r.LastApplied() >= op.Seq {
			acks++
		}
	}
	need := m.AckReplicas
	m.mu.Unlock()
	if need > 0 && acks < need {
		return ErrNotEnoughAcks
	}
	return nil
}

// Seq returns the master's replication offset.
func (m *Master) Seq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// Promote turns a replica into a fresh master (failover). The returned
// master starts a new log window at the replica's applied offset.
func Promote(r *Replica, logCap int) *Master {
	m := NewMaster(r.eng, logCap)
	m.seq = r.LastApplied()
	m.logStart = m.seq + 1
	return m
}
