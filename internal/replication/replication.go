// Package replication implements TierBase's cache-tier replication layer
// (paper §3: "TierBase supports both single-replica and multi-replica
// modes, implementing various replication protocols to accommodate
// different reliability requirements"; §4.1.2 relies on it to protect
// dirty data under write-back).
//
// The package is a transport-agnostic seam: the master appends every
// logical mutation to a bounded, sequenced OpLog; any number of Stream
// subscribers (one per attached replica connection) cursor over the log
// and block for new ops; an AckTracker records how far each replica has
// acknowledged so semi-synchronous writes can wait for k replicas before
// acking the client. Framing for the network leg (length-prefixed binary
// op/ack/snapshot frames) lives in wire.go; the server package owns the
// sockets and the handshake. See README.md for the full contract.
package replication

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// OpKind enumerates replicated operations.
type OpKind uint8

// Replicated operation kinds. Every op carries the full resulting state
// of its key (RMW outcomes replicate as the value they produced), so
// replaying a window of ops over a newer snapshot converges.
const (
	// OpSet stores a raw string value.
	OpSet OpKind = iota
	// OpSetEncoded stores a typed collection blob (engine codec format):
	// the full post-mutation state of a list/set/zset/hash.
	OpSetEncoded
	// OpDel removes a key.
	OpDel
	// OpExpire sets a key's absolute expiry deadline. Val carries the
	// deadline as decimal UnixNano text — absolute, not relative, so a
	// replica applying the op late (slow link, replay) expires the key at
	// the same wall-clock instant the master did.
	OpExpire
	// OpPersist clears a key's expiry (empty Val).
	OpPersist
	// OpFlushAll clears the whole keyspace — cache AND private storage
	// tier on the replica (empty Key and Val).
	OpFlushAll
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpSet:
		return "set"
	case OpSetEncoded:
		return "set-encoded"
	case OpDel:
		return "del"
	case OpExpire:
		return "expire"
	case OpPersist:
		return "persist"
	case OpFlushAll:
		return "flushall"
	}
	return "unknown"
}

// Op is one replicated mutation. Ops are immutable once appended: Val
// must not be modified by any reader.
type Op struct {
	Seq  uint64
	Kind OpKind
	Key  string
	Val  []byte // nil for OpDel
}

// Log errors.
var (
	// ErrLogTrimmed means the requested position fell out of the log's
	// retained window; the subscriber needs a full sync.
	ErrLogTrimmed = errors.New("replication: position trimmed from op log")
	// ErrSeqGap is returned by AppendAt when the op skips sequences.
	ErrSeqGap = errors.New("replication: sequence gap")
	// ErrClosed is returned by Stream.Recv after the log closes.
	ErrClosed = errors.New("replication: op log closed")
	// ErrCanceled is returned by Stream.Recv after Cancel.
	ErrCanceled = errors.New("replication: stream canceled")
)

// DefaultLogCap is the default retained op window.
const DefaultLogCap = 65536

// OpLog is a bounded, sequenced in-memory operation log with blocking
// subscribers. A master Appends (assigning sequence numbers); a replica
// mirrors its master's log with AppendAt so promotion simply continues
// the sequence. Subscribers that fall out of the retained window get
// ErrLogTrimmed and must full-sync.
type OpLog struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ops   []Op   // retained window; ops[0].Seq == start
	start uint64 // seq of ops[0] (== seq+1 when empty)
	seq   uint64 // last appended sequence (0 = none)
	cap   int
	close bool

	// bytes approximates the retained window's heap footprint (key and
	// value payloads plus per-op struct overhead). Read lock-free by
	// overload watermark sampling.
	bytes atomic.Int64
}

// opOverheadBytes is the accounted per-op fixed cost: the Op struct
// itself plus slice/string headers already counted, rounded up to cover
// allocator slop.
const opOverheadBytes = 48

func opBytes(op Op) int64 {
	return int64(len(op.Key) + len(op.Val) + opOverheadBytes)
}

// NewOpLog creates a log retaining up to capacity ops (<=0 uses
// DefaultLogCap).
func NewOpLog(capacity int) *OpLog {
	if capacity <= 0 {
		capacity = DefaultLogCap
	}
	l := &OpLog{start: 1, cap: capacity}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Append assigns the next sequence to a new op and appends it, waking
// subscribers. val is copied (callers may pass buffers they reuse, e.g.
// RESP parse arenas). Returns the assigned sequence.
func (l *OpLog) Append(kind OpKind, key string, val []byte) uint64 {
	var v []byte
	if kind != OpDel && val != nil {
		v = make([]byte, len(val))
		copy(v, val)
	}
	l.mu.Lock()
	l.seq++
	op := Op{Seq: l.seq, Kind: kind, Key: key, Val: v}
	l.ops = append(l.ops, op)
	l.bytes.Add(opBytes(op))
	l.trimLocked()
	seq := l.seq
	l.cond.Broadcast()
	l.mu.Unlock()
	return seq
}

// AppendAt appends an op that already carries its sequence (a replica
// mirroring its master's stream). Duplicate delivery (op.Seq <= Seq())
// is ignored; a gap is an error. AppendAt takes ownership of op.Val.
func (l *OpLog) AppendAt(op Op) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if op.Seq <= l.seq {
		return nil // idempotent redelivery
	}
	if op.Seq != l.seq+1 {
		return ErrSeqGap
	}
	l.seq = op.Seq
	l.ops = append(l.ops, op)
	l.bytes.Add(opBytes(op))
	l.trimLocked()
	l.cond.Broadcast()
	return nil
}

// trimLocked drops the oldest ops past the retained capacity. The head
// slices forward; append's eventual reallocation reclaims the dead
// prefix, so memory stays O(window).
func (l *OpLog) trimLocked() {
	if len(l.ops) > l.cap {
		drop := len(l.ops) - l.cap
		var freed int64
		for _, op := range l.ops[:drop] {
			freed += opBytes(op)
		}
		l.bytes.Add(-freed)
		l.ops = l.ops[drop:]
		l.start += uint64(drop)
	}
}

// Reset discards the window and restarts the sequence at seq (a replica
// installing a full-sync snapshot that ends at seq).
func (l *OpLog) Reset(seq uint64) {
	l.mu.Lock()
	l.ops = nil
	l.bytes.Store(0)
	l.seq = seq
	l.start = seq + 1
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Bytes returns the approximate heap footprint of the retained op
// window. Lock-free; intended for overload watermark sampling.
func (l *OpLog) Bytes() int64 {
	return l.bytes.Load()
}

// Seq returns the last appended sequence (0 when empty).
func (l *OpLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// StartSeq returns the oldest retained sequence (Seq()+1 when empty).
func (l *OpLog) StartSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.start
}

// Close wakes all subscribers; subsequent Recv calls return ErrClosed
// once they drain.
func (l *OpLog) Close() {
	l.mu.Lock()
	l.close = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Stream opens a subscriber cursor positioned after sequence `after`
// (0 = from the beginning). ErrLogTrimmed means `after` predates the
// retained window and the subscriber needs a full sync first.
func (l *OpLog) Stream(after uint64) (*Stream, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after+1 < l.start {
		return nil, ErrLogTrimmed
	}
	return &Stream{log: l, next: after + 1}, nil
}

// Stream is one subscriber's cursor over an OpLog.
type Stream struct {
	log      *OpLog
	next     uint64
	canceled bool
}

// Recv blocks until at least one op at or past the cursor is available,
// then returns a batch of up to cap(buf) ops (buf is reused; pass nil
// for a fresh default-sized buffer). Errors: ErrClosed after the log
// closes and the cursor drains, ErrCanceled after Cancel, ErrLogTrimmed
// if the cursor fell out of the retained window (subscriber too slow —
// full sync needed).
func (s *Stream) Recv(buf []Op) ([]Op, error) {
	l := s.log
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if s.canceled {
			return nil, ErrCanceled
		}
		if s.next < l.start {
			return nil, ErrLogTrimmed
		}
		if s.next <= l.seq {
			break
		}
		if l.close {
			return nil, ErrClosed
		}
		l.cond.Wait()
	}
	if cap(buf) == 0 {
		buf = make([]Op, 0, 256)
	}
	idx := int(s.next - l.start)
	n := int(l.seq - s.next + 1)
	if n > cap(buf) {
		n = cap(buf)
	}
	buf = append(buf[:0], l.ops[idx:idx+n]...)
	s.next += uint64(n)
	return buf, nil
}

// Cancel unblocks any pending Recv with ErrCanceled (connection
// teardown).
func (s *Stream) Cancel() {
	l := s.log
	l.mu.Lock()
	s.canceled = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// --- semi-synchronous acknowledgement tracking ---

// ErrNotEnoughAcks is returned in semi-sync mode when too few replicas
// acknowledged the write before the timeout.
var ErrNotEnoughAcks = errors.New("replication: not enough replica acks")

// AckTracker records each replica's acknowledged sequence and lets
// writers wait until k replicas reach a sequence — the semi-synchronous
// durability knob write-back caching needs (paper §4.1.2).
type AckTracker struct {
	mu      sync.Mutex
	acked   map[string]uint64
	waiters map[*ackWaiter]struct{}
}

type ackWaiter struct {
	seq  uint64
	need int
	ch   chan struct{}
}

// NewAckTracker creates an empty tracker.
func NewAckTracker() *AckTracker {
	return &AckTracker{
		acked:   make(map[string]uint64),
		waiters: make(map[*ackWaiter]struct{}),
	}
}

// Attach registers replica id with nothing acknowledged yet. A freshly
// attached replica counts toward waiters at sequence 0 (a write that
// produced no ops waits on the current sequence, which may be 0), and
// Ack only ever moves it forward.
func (t *AckTracker) Attach(id string) {
	t.mu.Lock()
	if _, ok := t.acked[id]; !ok {
		t.acked[id] = 0
		for w := range t.waiters {
			if t.countLocked(w.seq) >= w.need {
				close(w.ch)
				delete(t.waiters, w)
			}
		}
	}
	t.mu.Unlock()
}

// Ack records replica id as having applied everything up to seq.
func (t *AckTracker) Ack(id string, seq uint64) {
	t.mu.Lock()
	if seq > t.acked[id] {
		t.acked[id] = seq
	}
	for w := range t.waiters {
		if t.countLocked(w.seq) >= w.need {
			close(w.ch)
			delete(t.waiters, w)
		}
	}
	t.mu.Unlock()
}

// Detach removes a replica (disconnect); waiters it was counted toward
// re-evaluate at their timeout.
func (t *AckTracker) Detach(id string) {
	t.mu.Lock()
	delete(t.acked, id)
	t.mu.Unlock()
}

// countLocked counts replicas at or past seq.
func (t *AckTracker) countLocked(seq uint64) int {
	n := 0
	for _, a := range t.acked {
		if a >= seq {
			n++
		}
	}
	return n
}

// Wait blocks until at least need replicas acknowledged seq, or returns
// ErrNotEnoughAcks at the timeout. need <= 0 returns immediately.
func (t *AckTracker) Wait(seq uint64, need int, timeout time.Duration) error {
	if need <= 0 {
		return nil
	}
	t.mu.Lock()
	if t.countLocked(seq) >= need {
		t.mu.Unlock()
		return nil
	}
	w := &ackWaiter{seq: seq, need: need, ch: make(chan struct{})}
	t.waiters[w] = struct{}{}
	t.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.ch:
		return nil
	case <-timer.C:
		t.mu.Lock()
		if _, still := t.waiters[w]; !still {
			// Ack raced the timeout and completed us.
			t.mu.Unlock()
			return nil
		}
		delete(t.waiters, w)
		t.mu.Unlock()
		return ErrNotEnoughAcks
	}
}

// Acked returns replica id's acknowledged sequence and whether it is
// attached — the laggard-shedding probe (a master disconnects a replica
// whose Seq()-Acked(id) backlog exceeds its bound).
func (t *AckTracker) Acked(id string) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seq, ok := t.acked[id]
	return seq, ok
}

// Snapshot returns a copy of the per-replica acked sequences (INFO
// replication).
func (t *AckTracker) Snapshot() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.acked))
	for id, seq := range t.acked {
		out[id] = seq
	}
	return out
}
