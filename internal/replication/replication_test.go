package replication

import (
	"fmt"
	"testing"

	"tierbase/internal/engine"
)

func TestBasicReplication(t *testing.T) {
	m := NewMaster(engine.New(engine.Options{}), 0)
	r := NewReplica(engine.New(engine.Options{}))
	m.Attach(r)
	m.Set("k", []byte("v"))
	v, err := r.Engine().Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("replica: %q %v", v, err)
	}
	m.Del("k")
	if _, err := r.Engine().Get("k"); err != engine.ErrNotFound {
		t.Fatalf("replica delete: %v", err)
	}
	if r.LastApplied() != m.Seq() {
		t.Fatalf("offsets: %d vs %d", r.LastApplied(), m.Seq())
	}
}

func TestAttachLateReplicaFullSync(t *testing.T) {
	m := NewMaster(engine.New(engine.Options{}), 0)
	for i := 0; i < 100; i++ {
		m.Set(fmt.Sprintf("k%02d", i), []byte("v"))
	}
	r := NewReplica(engine.New(engine.Options{}))
	m.Attach(r)
	if r.Engine().Len() != 100 {
		t.Fatalf("late replica has %d keys", r.Engine().Len())
	}
	if r.LastApplied() != m.Seq() {
		t.Fatal("late replica offset behind")
	}
	// Stream continues after sync.
	m.Set("new", []byte("n"))
	if _, err := r.Engine().Get("new"); err != nil {
		t.Fatal("stream broken after full sync")
	}
}

func TestLogWindowPartialSync(t *testing.T) {
	m := NewMaster(engine.New(engine.Options{}), 1000)
	r := NewReplica(engine.New(engine.Options{}))
	m.Attach(r)
	m.Set("a", []byte("1"))
	m.Detach(r)
	// Master advances while replica is detached (within log window).
	m.Set("b", []byte("2"))
	m.Set("c", []byte("3"))
	before := m.FullSyncs()
	m.Attach(r)
	if m.FullSyncs() != before {
		t.Fatal("partial sync should not require full sync")
	}
	if _, err := r.Engine().Get("c"); err != nil {
		t.Fatal("partial sync incomplete")
	}
}

func TestFullSyncWhenLogRotated(t *testing.T) {
	m := NewMaster(engine.New(engine.Options{}), 4) // tiny window
	r := NewReplica(engine.New(engine.Options{}))
	m.Attach(r)
	m.Detach(r)
	for i := 0; i < 50; i++ {
		m.Set(fmt.Sprintf("k%02d", i), []byte("v"))
	}
	before := m.FullSyncs()
	m.Attach(r)
	if m.FullSyncs() != before+1 {
		t.Fatal("rotated log must force full sync")
	}
	if r.Engine().Len() != 50 {
		t.Fatalf("replica has %d keys after full sync", r.Engine().Len())
	}
}

func TestSemiSyncAcks(t *testing.T) {
	m := NewMaster(engine.New(engine.Options{}), 0)
	m.AckReplicas = 1
	// No replicas attached: semi-sync must fail.
	if err := m.Set("k", []byte("v")); err != ErrNotEnoughAcks {
		t.Fatalf("want ErrNotEnoughAcks, got %v", err)
	}
	r := NewReplica(engine.New(engine.Options{}))
	m.Attach(r)
	if err := m.Set("k", []byte("v")); err != nil {
		t.Fatalf("with replica: %v", err)
	}
}

func TestDuplicateApplyIdempotent(t *testing.T) {
	r := NewReplica(engine.New(engine.Options{}))
	op := Op{Seq: 1, Kind: OpSet, Key: "k", Val: []byte("v")}
	if err := r.apply(op); err != nil {
		t.Fatal(err)
	}
	if err := r.apply(op); err != nil {
		t.Fatalf("duplicate: %v", err)
	}
	if r.LastApplied() != 1 {
		t.Fatal("offset moved on duplicate")
	}
}

func TestGapDetected(t *testing.T) {
	r := NewReplica(engine.New(engine.Options{}))
	r.apply(Op{Seq: 1, Kind: OpSet, Key: "a", Val: []byte("1")})
	if err := r.apply(Op{Seq: 3, Kind: OpSet, Key: "c", Val: []byte("3")}); err == nil {
		t.Fatal("gap not detected")
	}
}

func TestPromote(t *testing.T) {
	m := NewMaster(engine.New(engine.Options{}), 0)
	r := NewReplica(engine.New(engine.Options{}))
	m.Attach(r)
	for i := 0; i < 10; i++ {
		m.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	// Failover: replica becomes master, keeps data, accepts writes.
	nm := Promote(r, 0)
	if nm.Engine().Len() != 10 {
		t.Fatalf("promoted master has %d keys", nm.Engine().Len())
	}
	if nm.Seq() != 10 {
		t.Fatalf("promoted seq %d", nm.Seq())
	}
	if err := nm.Set("post-failover", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// A new replica can attach to the promoted master.
	r2 := NewReplica(engine.New(engine.Options{}))
	nm.Attach(r2)
	if r2.Engine().Len() != 11 {
		t.Fatalf("new replica keys %d", r2.Engine().Len())
	}
}

func TestMultipleReplicasConverge(t *testing.T) {
	m := NewMaster(engine.New(engine.Options{}), 0)
	var reps []*Replica
	for i := 0; i < 3; i++ {
		r := NewReplica(engine.New(engine.Options{}))
		m.Attach(r)
		reps = append(reps, r)
	}
	for i := 0; i < 200; i++ {
		if i%10 == 9 {
			m.Del(fmt.Sprintf("k%03d", i-5))
		} else {
			m.Set(fmt.Sprintf("k%03d", i), []byte(fmt.Sprint(i)))
		}
	}
	want := m.Engine().Len()
	for i, r := range reps {
		if r.Engine().Len() != want {
			t.Fatalf("replica %d has %d keys, master %d", i, r.Engine().Len(), want)
		}
	}
}
