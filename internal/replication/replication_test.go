package replication

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func TestOpLogAppendAndStream(t *testing.T) {
	l := NewOpLog(16)
	if got := l.Append(OpSet, "a", []byte("1")); got != 1 {
		t.Fatalf("first seq = %d, want 1", got)
	}
	l.Append(OpDel, "b", nil)
	l.Append(OpSetEncoded, "c", []byte{0xFF, 1})

	s, err := l.Stream(0)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := s.Recv(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("got %d ops, want 3", len(ops))
	}
	if ops[0].Key != "a" || ops[0].Kind != OpSet || string(ops[0].Val) != "1" {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[1].Kind != OpDel || ops[1].Val != nil {
		t.Fatalf("op1 = %+v", ops[1])
	}
	if ops[2].Kind != OpSetEncoded || ops[2].Seq != 3 {
		t.Fatalf("op2 = %+v", ops[2])
	}
}

func TestOpLogAppendCopiesValue(t *testing.T) {
	l := NewOpLog(4)
	buf := []byte("orig")
	l.Append(OpSet, "k", buf)
	copy(buf, "XXXX") // caller reuses its buffer (RESP arena behavior)
	s, _ := l.Stream(0)
	ops, _ := s.Recv(nil)
	if string(ops[0].Val) != "orig" {
		t.Fatalf("val aliased caller buffer: %q", ops[0].Val)
	}
}

func TestOpLogStreamBlocksUntilAppend(t *testing.T) {
	l := NewOpLog(16)
	s, _ := l.Stream(0)
	got := make(chan []Op, 1)
	go func() {
		ops, err := s.Recv(nil)
		if err != nil {
			t.Error(err)
		}
		got <- ops
	}()
	time.Sleep(20 * time.Millisecond)
	l.Append(OpSet, "k", []byte("v"))
	select {
	case ops := <-got:
		if len(ops) != 1 || ops[0].Key != "k" {
			t.Fatalf("ops = %+v", ops)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not wake on Append")
	}
}

func TestOpLogTrim(t *testing.T) {
	l := NewOpLog(4)
	for i := 0; i < 10; i++ {
		l.Append(OpSet, "k", []byte("v"))
	}
	if start := l.StartSeq(); start != 7 {
		t.Fatalf("start = %d, want 7 (cap 4, seq 10)", start)
	}
	if _, err := l.Stream(0); !errors.Is(err, ErrLogTrimmed) {
		t.Fatalf("Stream(0) err = %v, want ErrLogTrimmed", err)
	}
	s, err := l.Stream(6) // exactly at the window edge
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := s.Recv(nil)
	if len(ops) != 4 || ops[0].Seq != 7 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestOpLogStreamTrimmedWhileWaiting(t *testing.T) {
	l := NewOpLog(2)
	l.Append(OpSet, "a", nil)
	s, _ := l.Stream(0)
	if _, err := s.Recv(nil); err != nil { // drain seq 1
		t.Fatal(err)
	}
	// Push the window past the cursor while it is idle.
	for i := 0; i < 5; i++ {
		l.Append(OpSet, "b", nil)
	}
	if _, err := s.Recv(nil); !errors.Is(err, ErrLogTrimmed) {
		t.Fatalf("err = %v, want ErrLogTrimmed", err)
	}
}

func TestOpLogAppendAt(t *testing.T) {
	l := NewOpLog(16)
	if err := l.AppendAt(Op{Seq: 1, Kind: OpSet, Key: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAt(Op{Seq: 1, Kind: OpSet, Key: "a"}); err != nil {
		t.Fatalf("duplicate redelivery should be ignored: %v", err)
	}
	if err := l.AppendAt(Op{Seq: 3, Kind: OpSet, Key: "c"}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap err = %v, want ErrSeqGap", err)
	}
	if err := l.AppendAt(Op{Seq: 2, Kind: OpSet, Key: "b"}); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", l.Seq())
	}
	// Promotion continues the mirrored sequence.
	if got := l.Append(OpSet, "d", nil); got != 3 {
		t.Fatalf("post-promotion seq = %d, want 3", got)
	}
}

func TestOpLogReset(t *testing.T) {
	l := NewOpLog(16)
	l.Append(OpSet, "a", nil)
	l.Reset(100)
	if l.Seq() != 100 || l.StartSeq() != 101 {
		t.Fatalf("seq=%d start=%d after Reset(100)", l.Seq(), l.StartSeq())
	}
	if err := l.AppendAt(Op{Seq: 101, Kind: OpSet, Key: "b"}); err != nil {
		t.Fatal(err)
	}
}

func TestOpLogCloseAndCancel(t *testing.T) {
	l := NewOpLog(16)
	s, _ := l.Stream(0)
	done := make(chan error, 1)
	go func() {
		_, err := s.Recv(nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}

	l2 := NewOpLog(16)
	s2, _ := l2.Stream(0)
	go func() {
		_, err := s2.Recv(nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s2.Cancel()
	if err := <-done; !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestOpLogConcurrentAppendStream(t *testing.T) {
	l := NewOpLog(1 << 16)
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			l.Append(OpSet, "k", []byte("v"))
		}
	}()
	s, _ := l.Stream(0)
	var seen uint64
	var buf []Op
	for seen < n {
		ops, err := s.Recv(buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			seen++
			if op.Seq != seen {
				t.Fatalf("seq %d out of order (want %d)", op.Seq, seen)
			}
		}
		buf = ops
	}
	wg.Wait()
}

func TestWireRoundTrip(t *testing.T) {
	var netBuf bytes.Buffer
	w := bufio.NewWriter(&netBuf)
	ops := []Op{
		{Seq: 1, Kind: OpSet, Key: "k1", Val: []byte("v1")},
		{Seq: 2, Kind: OpDel, Key: "gone"},
		{Seq: 3, Kind: OpSetEncoded, Key: "list", Val: []byte{0xFF, 0x01, 0x02}},
	}
	if err := WriteSnapBegin(w, 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapEntry(w, "s1", []byte("raw"), false); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapEntry(w, "s2", []byte{0xFF, 9}, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapEnd(w, 3); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := WriteOp(w, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteAck(w, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := bufio.NewReader(&netBuf)
	f, err := ReadFrame(r)
	if err != nil || !f.IsSnapBegin() || f.Seq != 3 {
		t.Fatalf("snap-begin = %+v, err %v", f, err)
	}
	f, _ = ReadFrame(r)
	if !f.IsSnapEntry() || f.Key != "s1" || string(f.Val) != "raw" || f.Encoded {
		t.Fatalf("snap-entry 1 = %+v", f)
	}
	f, _ = ReadFrame(r)
	if !f.IsSnapEntry() || f.Key != "s2" || !f.Encoded {
		t.Fatalf("snap-entry 2 = %+v", f)
	}
	f, _ = ReadFrame(r)
	if !f.IsSnapEnd() || f.Seq != 3 {
		t.Fatalf("snap-end = %+v", f)
	}
	for i, want := range ops {
		f, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if !f.IsOp() {
			t.Fatalf("frame %d not an op: %+v", i, f)
		}
		got := f.Op
		if got.Seq != want.Seq || got.Kind != want.Kind || got.Key != want.Key || !bytes.Equal(got.Val, want.Val) {
			t.Fatalf("op %d = %+v, want %+v", i, got, want)
		}
	}
	f, _ = ReadFrame(r)
	if !f.IsAck() || f.Seq != 3 {
		t.Fatalf("ack = %+v", f)
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("trailing read err = %v, want io.EOF", err)
	}
}

func TestWireTornFrame(t *testing.T) {
	var netBuf bytes.Buffer
	w := bufio.NewWriter(&netBuf)
	if err := WriteOp(w, Op{Seq: 1, Kind: OpSet, Key: "key", Val: []byte("value")}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	torn := netBuf.Bytes()[:netBuf.Len()-3]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(torn))); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestAckTrackerWait(t *testing.T) {
	a := NewAckTracker()
	if err := a.Wait(5, 0, 0); err != nil {
		t.Fatalf("need=0 should not wait: %v", err)
	}
	if err := a.Wait(5, 1, 20*time.Millisecond); !errors.Is(err, ErrNotEnoughAcks) {
		t.Fatalf("err = %v, want ErrNotEnoughAcks", err)
	}
	a.Ack("r1", 5)
	if err := a.Wait(5, 1, 0); err != nil {
		t.Fatalf("already acked: %v", err)
	}
	if err := a.Wait(5, 2, 20*time.Millisecond); !errors.Is(err, ErrNotEnoughAcks) {
		t.Fatalf("two replicas required, one acked: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- a.Wait(10, 2, 2*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	a.Ack("r1", 10)
	a.Ack("r2", 12)
	if err := <-done; err != nil {
		t.Fatalf("wait should complete on acks: %v", err)
	}

	a.Detach("r1")
	snap := a.Snapshot()
	if _, ok := snap["r1"]; ok {
		t.Fatal("detached replica still in snapshot")
	}
	if snap["r2"] != 12 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
