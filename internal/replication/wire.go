package replication

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire framing for the network leg of replication. After the RESP
// handshake (`SYNC <lastApplied> <nodeID>` answered by `+CONTINUE` or
// `+FULLSYNC`), the connection switches to these length-prefixed binary
// frames: master→replica carries snapshot entries and ops, replica→master
// carries cumulative acks. Integers are uvarints; keys and values are
// length-prefixed byte strings.
//
//	op        : 'o' seq kind klen key [vlen val]   (val omitted for OpDel)
//	ack       : 'a' seq
//	ping      : 'p' seq        (master keepalive; seq = current log head.
//	                            The replica answers with a cumulative ack,
//	                            so an idle link still proves liveness both
//	                            ways and refreshes read deadlines.)
//	snap-begin: 'b' seq        (log position the snapshot will end at)
//	snap-entry: 's' enc klen key vlen val          (enc: 0 raw, 1 encoded)
//	snap-end  : 'e' seq        (replica resets its log to seq)
const (
	frameOp        = 'o'
	frameAck       = 'a'
	framePing      = 'p'
	frameSnapBegin = 'b'
	frameSnapEntry = 's'
	frameSnapEnd   = 'e'
)

// maxFrameLen bounds a single key or value length on the read side so a
// corrupt stream fails fast instead of allocating gigabytes.
const maxFrameLen = 1 << 30

// Frame is one decoded replication frame.
type Frame struct {
	Type byte
	Op   Op     // frameOp
	Seq  uint64 // frameAck, frameSnapBegin, frameSnapEnd
	// frameSnapEntry:
	Key     string
	Val     []byte
	Encoded bool
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeBytes(w *bufio.Writer, b []byte) error {
	if err := writeUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// WriteOp frames one op. The caller flushes.
func WriteOp(w *bufio.Writer, op Op) error {
	if err := w.WriteByte(frameOp); err != nil {
		return err
	}
	if err := writeUvarint(w, op.Seq); err != nil {
		return err
	}
	if err := w.WriteByte(byte(op.Kind)); err != nil {
		return err
	}
	if err := writeString(w, op.Key); err != nil {
		return err
	}
	if op.Kind == OpDel {
		return nil
	}
	return writeBytes(w, op.Val)
}

// WriteAck frames a cumulative acknowledgement. The caller flushes.
func WriteAck(w *bufio.Writer, seq uint64) error {
	if err := w.WriteByte(frameAck); err != nil {
		return err
	}
	return writeUvarint(w, seq)
}

// WritePing frames a keepalive carrying the master's current log head.
// The caller flushes.
func WritePing(w *bufio.Writer, seq uint64) error {
	if err := w.WriteByte(framePing); err != nil {
		return err
	}
	return writeUvarint(w, seq)
}

// WriteSnapBegin opens a full-sync snapshot that will end at seq.
func WriteSnapBegin(w *bufio.Writer, seq uint64) error {
	if err := w.WriteByte(frameSnapBegin); err != nil {
		return err
	}
	return writeUvarint(w, seq)
}

// WriteSnapEntry frames one snapshot key (encoded=true for typed
// collection blobs in engine codec format).
func WriteSnapEntry(w *bufio.Writer, key string, val []byte, encoded bool) error {
	if err := w.WriteByte(frameSnapEntry); err != nil {
		return err
	}
	enc := byte(0)
	if encoded {
		enc = 1
	}
	if err := w.WriteByte(enc); err != nil {
		return err
	}
	if err := writeString(w, key); err != nil {
		return err
	}
	return writeBytes(w, val)
}

// WriteSnapEnd closes a full-sync snapshot; the replica resets its op
// log to seq and streams from there.
func WriteSnapEnd(w *bufio.Writer, seq uint64) error {
	if err := w.WriteByte(frameSnapEnd); err != nil {
		return err
	}
	return writeUvarint(w, seq)
}

func readLen(r *bufio.Reader) (int, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if v > maxFrameLen {
		return 0, fmt.Errorf("replication: frame length %d exceeds limit", v)
	}
	return int(v), nil
}

func readBytes(r *bufio.Reader) ([]byte, error) {
	n, err := readLen(r)
	if err != nil {
		return nil, err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// ReadFrame decodes the next frame. Byte slices in the result are
// freshly allocated (safe to retain). io.EOF surfaces unchanged when the
// stream ends cleanly between frames.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	t, err := r.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	f := Frame{Type: t}
	switch t {
	case frameOp:
		seq, err := binary.ReadUvarint(r)
		if err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		kind, err := r.ReadByte()
		if err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		key, err := readBytes(r)
		if err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		f.Op = Op{Seq: seq, Kind: OpKind(kind), Key: string(key)}
		if OpKind(kind) != OpDel {
			val, err := readBytes(r)
			if err != nil {
				return Frame{}, unexpectedEOF(err)
			}
			f.Op.Val = val
		}
	case frameAck, framePing, frameSnapBegin, frameSnapEnd:
		seq, err := binary.ReadUvarint(r)
		if err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		f.Seq = seq
	case frameSnapEntry:
		enc, err := r.ReadByte()
		if err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		key, err := readBytes(r)
		if err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		val, err := readBytes(r)
		if err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		f.Key = string(key)
		f.Val = val
		f.Encoded = enc != 0
	default:
		return Frame{}, fmt.Errorf("replication: unknown frame type %q", t)
	}
	return f, nil
}

// unexpectedEOF maps a mid-frame EOF to io.ErrUnexpectedEOF so callers
// can distinguish a clean between-frames close from a torn frame.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Frame type predicates (exported for the server's handshake loops).

// IsOp reports an op frame.
func (f Frame) IsOp() bool { return f.Type == frameOp }

// IsAck reports an ack frame.
func (f Frame) IsAck() bool { return f.Type == frameAck }

// IsPing reports a keepalive frame.
func (f Frame) IsPing() bool { return f.Type == framePing }

// IsSnapBegin reports a snapshot-begin frame.
func (f Frame) IsSnapBegin() bool { return f.Type == frameSnapBegin }

// IsSnapEntry reports a snapshot-entry frame.
func (f Frame) IsSnapEntry() bool { return f.Type == frameSnapEntry }

// IsSnapEnd reports a snapshot-end frame.
func (f Frame) IsSnapEnd() bool { return f.Type == frameSnapEnd }
