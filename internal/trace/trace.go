// Package trace implements the sample-based evaluation method of the cost
// optimization framework (paper §5.3): record a representative period of
// workload from production, then replay the key-value operation trace
// against candidate configurations, measuring maximum performance and
// space. It also synthesizes the two production case-study traces (§6.5)
// from their published statistics.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"tierbase/internal/workload"
)

// OpKind enumerates trace operations.
type OpKind byte

// Trace operation kinds.
const (
	OpRead   OpKind = 'R'
	OpWrite  OpKind = 'W'
	OpDelete OpKind = 'D'
)

// Entry is one trace record. Tick is a logical timestamp (request index
// in the recorded period); the replayer uses it only for access-interval
// statistics, not for pacing.
type Entry struct {
	Tick int64
	Op   OpKind
	Key  string
	Val  []byte // nil for reads/deletes
}

// Trace is an in-memory operation trace.
type Trace struct {
	Name    string
	Entries []Entry
	// TickHz converts ticks to seconds for interval statistics (how many
	// ticks elapse per second of recorded wall time).
	TickHz float64
}

// --- file format: [op 1B][tick varint][klen varint][key][vlen varint][val] ---

// Save writes the trace to path.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create: %w", err)
	}
	w := bufio.NewWriterSize(f, 256<<10)
	var tmp [binary.MaxVarintLen64]byte
	// header: name len + name + tickhz (as varint of millihertz)
	n := binary.PutUvarint(tmp[:], uint64(len(t.Name)))
	w.Write(tmp[:n])
	w.WriteString(t.Name)
	n = binary.PutUvarint(tmp[:], uint64(t.TickHz*1000))
	w.Write(tmp[:n])
	for _, e := range t.Entries {
		w.WriteByte(byte(e.Op))
		n = binary.PutUvarint(tmp[:], uint64(e.Tick))
		w.Write(tmp[:n])
		n = binary.PutUvarint(tmp[:], uint64(len(e.Key)))
		w.Write(tmp[:n])
		w.WriteString(e.Key)
		n = binary.PutUvarint(tmp[:], uint64(len(e.Val)))
		w.Write(tmp[:n])
		w.Write(e.Val)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace from path.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256<<10)
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, err
	}
	tickMilliHz, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: string(nameBuf), TickHz: float64(tickMilliHz) / 1000}
	for {
		op, err := r.ReadByte()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		tick, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		klen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(r, key); err != nil {
			return nil, err
		}
		vlen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		var val []byte
		if vlen > 0 {
			val = make([]byte, vlen)
			if _, err := io.ReadFull(r, val); err != nil {
				return nil, err
			}
		}
		t.Entries = append(t.Entries, Entry{
			Tick: int64(tick), Op: OpKind(op), Key: string(key), Val: val,
		})
	}
}

// --- statistics ---

// Stats summarizes a trace.
type Stats struct {
	Ops          int
	Reads        int
	Writes       int
	Deletes      int
	DistinctKeys int
	ValueBytes   int64
	// MeanAccessIntervalS is the mean time between successive accesses to
	// the same key (§6.5.3's "average access interval for a key").
	MeanAccessIntervalS float64
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	st := Stats{Ops: len(t.Entries)}
	last := make(map[string]int64)
	var intervalSum float64
	var intervalN int64
	for _, e := range t.Entries {
		switch e.Op {
		case OpRead:
			st.Reads++
		case OpWrite:
			st.Writes++
		case OpDelete:
			st.Deletes++
		}
		st.ValueBytes += int64(len(e.Val))
		if prev, ok := last[e.Key]; ok && t.TickHz > 0 {
			intervalSum += float64(e.Tick-prev) / t.TickHz
			intervalN++
		}
		last[e.Key] = e.Tick
	}
	st.DistinctKeys = len(last)
	if intervalN > 0 {
		st.MeanAccessIntervalS = intervalSum / float64(intervalN)
	}
	return st
}

// Keys returns the trace's key stream (for MRC construction).
func (t *Trace) Keys() []string {
	out := make([]string, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.Key
	}
	return out
}

// Validate checks structural invariants (monotone ticks, ops populated).
func (t *Trace) Validate() error {
	var prev int64 = -1
	for i, e := range t.Entries {
		if e.Tick < prev {
			return fmt.Errorf("trace: tick regression at %d", i)
		}
		prev = e.Tick
		if e.Op != OpRead && e.Op != OpWrite && e.Op != OpDelete {
			return fmt.Errorf("trace: bad op %q at %d", e.Op, i)
		}
		if e.Op == OpWrite && e.Val == nil {
			return errors.New("trace: write without value")
		}
	}
	return nil
}

// --- case-study trace generators (§6.5) ---

// UserInfoOptions shapes the Case 1 synthetic trace. Defaults reproduce
// the published statistics: reads:writes = 32:1 (16M reads vs 500k writes
// per second at peak), zipfian key popularity, KV1-shaped profile values,
// and a mean per-key access interval above ~1000 ticks-seconds.
type UserInfoOptions struct {
	Ops   int   // total operations (default 100k)
	Users int64 // user population (default Ops/10)
	Seed  int64
}

// GenUserInfo synthesizes the User Info Service trace.
func GenUserInfo(o UserInfoOptions) *Trace {
	if o.Ops <= 0 {
		o.Ops = 100_000
	}
	if o.Users <= 0 {
		o.Users = int64(o.Ops / 10)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	rng := rand.New(rand.NewSource(o.Seed))
	ds := workload.NewKV1()
	chooser := workload.NewScrambledZipfian(o.Users, 0.92)
	t := &Trace{Name: "userinfo", TickHz: 1}
	const readsPerWrite = 32
	for i := 0; i < o.Ops; i++ {
		uid := chooser.Next(rng)
		key := fmt.Sprintf("user:%012d", uid)
		if rng.Intn(readsPerWrite+1) == 0 {
			t.Entries = append(t.Entries, Entry{
				Tick: int64(i), Op: OpWrite, Key: key, Val: ds.Record(uid),
			})
		} else {
			t.Entries = append(t.Entries, Entry{Tick: int64(i), Op: OpRead, Key: key})
		}
	}
	return t
}

// ReconciliationOptions shapes the Case 2 synthetic trace: read:write
// close to 1:1, strong temporal skewness ("recent data is frequently
// accessed in the cache, while long-term data is occasionally retrieved";
// write-through hit rate ~80% with ~1% of data hot).
type ReconciliationOptions struct {
	Ops  int // default 100k
	Seed int64
}

// GenReconciliation synthesizes the Capital Reconciliation trace:
// channel writes append new transaction entries; the reconciliation
// system reads mostly recent entries back for verification.
func GenReconciliation(o ReconciliationOptions) *Trace {
	if o.Ops <= 0 {
		o.Ops = 100_000
	}
	if o.Seed == 0 {
		o.Seed = 2
	}
	rng := rand.New(rand.NewSource(o.Seed))
	ds := workload.NewKV2()
	t := &Trace{Name: "reconciliation", TickHz: 1}
	var written int64
	latest := workload.NewZipfian(1, 0.99) // offset-from-newest chooser
	for i := 0; i < o.Ops; i++ {
		if written == 0 || rng.Intn(2) == 0 {
			// Channel write: a fresh transaction entry.
			key := fmt.Sprintf("txn:%015d", written)
			t.Entries = append(t.Entries, Entry{
				Tick: int64(i), Op: OpWrite, Key: key, Val: ds.Record(written),
			})
			written++
			latest.SetItemCount(written)
		} else {
			// Reconciliation read: skewed toward the most recent entries.
			off := latest.Next(rng)
			idx := written - 1 - off
			if idx < 0 {
				idx = 0
			}
			t.Entries = append(t.Entries, Entry{
				Tick: int64(i), Op: OpRead, Key: fmt.Sprintf("txn:%015d", idx),
			})
		}
	}
	return t
}

// SortableByTick re-sorts entries by tick (generators emit in order; this
// guards traces assembled from merged sources).
func (t *Trace) SortByTick() {
	sort.SliceStable(t.Entries, func(i, j int) bool { return t.Entries[i].Tick < t.Entries[j].Tick })
}
