package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := &Trace{Name: "test", TickHz: 2.5}
	tr.Entries = []Entry{
		{Tick: 0, Op: OpWrite, Key: "a", Val: []byte("v1")},
		{Tick: 1, Op: OpRead, Key: "a"},
		{Tick: 5, Op: OpDelete, Key: "a"},
		{Tick: 9, Op: OpWrite, Key: "b", Val: []byte{0, 1, 2, 255}},
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "test" || math.Abs(got.TickHz-2.5) > 1e-9 {
		t.Fatalf("header: %q %f", got.Name, got.TickHz)
	}
	if len(got.Entries) != 4 {
		t.Fatalf("entries %d", len(got.Entries))
	}
	for i := range tr.Entries {
		w, g := tr.Entries[i], got.Entries[i]
		if w.Tick != g.Tick || w.Op != g.Op || w.Key != g.Key || !bytes.Equal(w.Val, g.Val) {
			t.Fatalf("entry %d: %+v vs %+v", i, w, g)
		}
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{TickHz: 1}
	tr.Entries = []Entry{
		{Tick: 0, Op: OpWrite, Key: "k", Val: []byte("1234")},
		{Tick: 10, Op: OpRead, Key: "k"},
		{Tick: 30, Op: OpRead, Key: "k"},
		{Tick: 30, Op: OpDelete, Key: "other"},
	}
	st := tr.Summarize()
	if st.Ops != 4 || st.Reads != 2 || st.Writes != 1 || st.Deletes != 1 {
		t.Fatalf("counts: %+v", st)
	}
	if st.DistinctKeys != 2 {
		t.Fatalf("distinct %d", st.DistinctKeys)
	}
	if st.ValueBytes != 4 {
		t.Fatalf("bytes %d", st.ValueBytes)
	}
	// Intervals: k at 0,10,30 -> intervals 10 and 20 -> mean 15.
	if math.Abs(st.MeanAccessIntervalS-15) > 1e-9 {
		t.Fatalf("interval %f", st.MeanAccessIntervalS)
	}
}

func TestValidate(t *testing.T) {
	good := &Trace{Entries: []Entry{
		{Tick: 0, Op: OpWrite, Key: "k", Val: []byte("v")},
		{Tick: 1, Op: OpRead, Key: "k"},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad1 := &Trace{Entries: []Entry{{Tick: 5, Op: OpRead, Key: "k"}, {Tick: 1, Op: OpRead, Key: "k"}}}
	if err := bad1.Validate(); err == nil {
		t.Fatal("tick regression not caught")
	}
	bad2 := &Trace{Entries: []Entry{{Tick: 0, Op: 'X', Key: "k"}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("bad op not caught")
	}
	bad3 := &Trace{Entries: []Entry{{Tick: 0, Op: OpWrite, Key: "k"}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("write without value not caught")
	}
}

func TestGenUserInfoShape(t *testing.T) {
	tr := GenUserInfo(UserInfoOptions{Ops: 30000})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Summarize()
	if st.Ops != 30000 {
		t.Fatalf("ops %d", st.Ops)
	}
	// Published shape: read-heavy around 32:1.
	ratio := float64(st.Reads) / float64(st.Writes)
	if ratio < 20 || ratio > 50 {
		t.Fatalf("read:write ratio %.1f, want ~32", ratio)
	}
	// Skewness: distinct keys well below ops (hot keys re-accessed).
	if st.DistinctKeys >= st.Ops/2 {
		t.Fatalf("no skew: %d distinct of %d", st.DistinctKeys, st.Ops)
	}
	// Determinism.
	tr2 := GenUserInfo(UserInfoOptions{Ops: 30000})
	if tr2.Entries[100].Key != tr.Entries[100].Key {
		t.Fatal("generator not deterministic")
	}
}

func TestGenReconciliationShape(t *testing.T) {
	tr := GenReconciliation(ReconciliationOptions{Ops: 30000})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Summarize()
	// Published shape: ~1:1 read:write.
	ratio := float64(st.Reads) / float64(st.Writes)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("read:write ratio %.2f, want ~1", ratio)
	}
	// Temporal locality: reads should target recent writes — the mean
	// access interval stays small relative to the trace span.
	if st.MeanAccessIntervalS > float64(st.Ops)/4 {
		t.Fatalf("poor temporal locality: %f", st.MeanAccessIntervalS)
	}
}

func TestKeysAndSort(t *testing.T) {
	tr := &Trace{Entries: []Entry{
		{Tick: 2, Op: OpRead, Key: "b"},
		{Tick: 1, Op: OpRead, Key: "a"},
	}}
	tr.SortByTick()
	keys := tr.Keys()
	if keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys %v", keys)
	}
}
