package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestMeterBasics(t *testing.T) {
	m := NewMeter()
	if m.Rate() != 0 {
		t.Fatal("unmarked meter should have rate 0")
	}
	m.Mark(10)
	m.Mark(5)
	if m.Count() != 15 {
		t.Fatalf("count = %d, want 15", m.Count())
	}
	time.Sleep(10 * time.Millisecond)
	if m.Rate() <= 0 {
		t.Fatalf("rate should be positive, got %f", m.Rate())
	}
	m.Reset()
	if m.Count() != 0 || m.Rate() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Mark(1)
			}
		}()
	}
	wg.Wait()
	if m.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", m.Count())
	}
}

func TestWindowMeterRate(t *testing.T) {
	w := NewWindowMeter(5, 100*time.Millisecond)
	base := time.Unix(1000, 0)
	now := base
	w.SetClock(func() time.Time { return now })

	// 100 events in slot 0
	w.Mark(100)
	r := w.Rate()
	// one populated slot of 0.1s: 100/0.1 = 1000/s
	if r < 900 || r > 1100 {
		t.Fatalf("rate = %f, want ~1000", r)
	}

	// advance two slots, mark 50
	now = base.Add(200 * time.Millisecond)
	w.Mark(50)
	r = w.Rate()
	// populated slots: 3 (two may be zeroed skips); total 150 over 0.3s = 500
	if r < 400 || r > 600 {
		t.Fatalf("rate = %f, want ~500", r)
	}
}

func TestWindowMeterExpiry(t *testing.T) {
	w := NewWindowMeter(3, 100*time.Millisecond)
	base := time.Unix(2000, 0)
	now := base
	w.SetClock(func() time.Time { return now })
	w.Mark(300)
	// jump far beyond the window; old slot must be evicted
	now = base.Add(time.Second)
	w.Mark(3)
	r := w.Rate()
	if r > 100 {
		t.Fatalf("stale events leaked into rate: %f", r)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(1.5)
	ts.AddAt(2*time.Second, 3.0)
	pts := ts.Samples()
	if len(pts) != 2 {
		t.Fatalf("len = %d, want 2", len(pts))
	}
	if pts[1].Elapsed != 2*time.Second || pts[1].Value != 3.0 {
		t.Fatalf("AddAt point wrong: %+v", pts[1])
	}
	// Samples must be a copy
	pts[0].Value = 99
	if ts.Samples()[0].Value == 99 {
		t.Fatal("Samples leaked internal slice")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	if g.Get() != 5 {
		t.Fatalf("get = %d", g.Get())
	}
	if g.Add(3) != 8 {
		t.Fatalf("add result wrong")
	}
	if g.Get() != 8 {
		t.Fatalf("get after add = %d", g.Get())
	}
}

func TestWindowCounterRate(t *testing.T) {
	w := NewWindowCounter(5, 100*time.Millisecond)
	base := time.Unix(3000, 0).UnixNano()
	now := base
	w.SetClock(func() int64 { return now })

	w.Mark(100)
	// one populated slot of 0.1s: 100/0.1 = 1000/s
	if r := w.Rate(); r < 900 || r > 1100 {
		t.Fatalf("rate = %f, want ~1000", r)
	}

	// advance two slots, mark 50: two populated slots, 150 over 0.2s
	now = base + int64(200*time.Millisecond)
	w.Mark(50)
	if r := w.Rate(); r < 700 || r > 800 {
		t.Fatalf("rate = %f, want ~750", r)
	}
}

func TestWindowCounterExpiry(t *testing.T) {
	w := NewWindowCounter(3, 100*time.Millisecond)
	base := time.Unix(4000, 0).UnixNano()
	now := base
	w.SetClock(func() int64 { return now })
	w.Mark(300)
	// Jump far beyond the window: the old slot's epoch is stale, so Rate
	// must not count it...
	now = base + int64(time.Second)
	w.Mark(3)
	if r := w.Rate(); r > 100 {
		t.Fatalf("stale events leaked into rate: %f", r)
	}
	// ...and the next Mark landing on the recycled slot resets its count
	// instead of accumulating onto the stale 300.
	now = base + int64(time.Second) + int64(300*time.Millisecond)
	w.Mark(10)
	if r := w.Rate(); r > 200 {
		t.Fatalf("recycled slot kept its stale count: rate = %f", r)
	}
}

func TestWindowCounterConcurrent(t *testing.T) {
	w := NewWindowCounter(8, 50*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Mark(1)
			}
		}()
	}
	wg.Wait()
	// 8000 marks within well under the 400ms window; the counter is
	// allowed to be approximate under rollover races but not wildly off.
	if r := w.Rate(); r < 1000 {
		t.Fatalf("concurrent rate collapsed: %f", r)
	}
}
