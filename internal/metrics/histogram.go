// Package metrics provides lightweight, allocation-free measurement
// primitives used throughout TierBase: a log-bucketed latency histogram,
// throughput meters, and fixed-interval time series. It backs the Monitor
// component of the architecture (paper §3) and the measurement side of the
// cost-optimization framework (paper §5.3).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// histogram layout: buckets are arranged in groups of subBuckets buckets;
// group g covers values [2^g * subBuckets, 2^(g+1) * subBuckets) with linear
// sub-bucketing inside the group. This mirrors HdrHistogram's layout and
// keeps relative error below 1/subBuckets.
const (
	subBucketBits = 5 // 32 sub-buckets per power-of-two group: <= ~3.1% error
	subBuckets    = 1 << subBucketBits
	numGroups     = 40 // covers values up to ~2^45; plenty for ns latencies
	totalBuckets  = subBuckets * (numGroups + 1)
)

// Histogram is a concurrent log-bucketed histogram of int64 values
// (typically latencies in nanoseconds). The zero value is NOT usable;
// call NewHistogram.
type Histogram struct {
	counts [totalBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// group = floor(log2(v)) - subBucketBits + 1, so that group g >= 1
	// covers [subBuckets << (g-1), subBuckets << g) with subBuckets linear
	// sub-buckets of width 1 << (g-1).
	group := 63 - subBucketBits - leadingZeros64(uint64(v)) + 1
	if group > numGroups {
		group = numGroups
	}
	sub := (v >> uint(group-1)) - subBuckets // in [0, subBuckets)
	idx := group*subBuckets + int(sub)
	if idx >= totalBuckets {
		idx = totalBuckets - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// bucketLow returns the lowest value contained in bucket idx.
func bucketLow(idx int) int64 {
	group := idx / subBuckets
	sub := int64(idx % subBuckets)
	if group == 0 {
		return sub
	}
	return (sub + subBuckets) << uint(group-1)
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds a single observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordDuration records a time.Duration in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the arithmetic mean of recorded values, 0 if empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest recorded value, 0 if empty.
func (h *Histogram) Min() int64 {
	if h.total.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded value, 0 if empty.
func (h *Histogram) Max() int64 {
	if h.total.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// valueAt returns a representative value (midpoint) for bucket idx.
func valueAt(idx int) int64 {
	group := idx / subBuckets
	sub := int64(idx % subBuckets)
	var low, width int64
	if group == 0 {
		low = sub
		width = 1
	} else {
		shift := uint(group - 1)
		low = (sub + subBuckets) << shift
		width = 1 << shift
	}
	return low + width/2
}

// Quantile returns an approximation of the q-quantile (q in [0,1]).
func (h *Histogram) Quantile(q float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < totalBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= target {
			v := valueAt(i)
			if v > h.Max() {
				return h.Max()
			}
			return v
		}
	}
	return h.Max()
}

// P50, P99, P999 are convenience quantile accessors.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// Reset clears all recorded values.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// Merge adds all observations from other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < totalBuckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	if other.total.Load() > 0 {
		om, oM := other.min.Load(), other.max.Load()
		for {
			cur := h.min.Load()
			if om >= cur || h.min.CompareAndSwap(cur, om) {
				break
			}
		}
		for {
			cur := h.max.Load()
			if oM <= cur || h.max.CompareAndSwap(cur, oM) {
				break
			}
		}
	}
}

// Snapshot captures a point-in-time summary of the histogram.
type Snapshot struct {
	Count int64
	Mean  float64
	Min   int64
	Max   int64
	P50   int64
	P90   int64
	P99   int64
	P999  int64
}

// Snapshot returns a consistent-enough summary (not linearizable under
// concurrent writes, which is fine for monitoring).
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// String formats the snapshot for human consumption (durations assumed ns).
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		s.Count,
		time.Duration(int64(s.Mean)),
		time.Duration(s.P50),
		time.Duration(s.P99),
		time.Duration(s.Max))
}

// --- exact small-sample percentile helper (used by tests & calibration) ---

// ExactQuantile computes the exact q-quantile of values (nearest-rank).
// It sorts a copy; intended for small calibration samples, not hot paths.
func ExactQuantile(values []int64, q float64) int64 {
	if len(values) == 0 {
		return 0
	}
	cp := make([]int64, len(values))
	copy(cp, values)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(q*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}
