package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Meter counts events and reports throughput over the elapsed window.
// It is safe for concurrent use.
type Meter struct {
	count   atomic.Int64
	started atomic.Int64 // unix nanos of first Mark (or Start)
}

// NewMeter returns a meter whose clock starts at the first Mark.
func NewMeter() *Meter { return &Meter{} }

// Start pins the meter start time to now (optional; otherwise first Mark).
func (m *Meter) Start() { m.started.CompareAndSwap(0, time.Now().UnixNano()) }

// Mark records n events.
func (m *Meter) Mark(n int64) {
	m.started.CompareAndSwap(0, time.Now().UnixNano())
	m.count.Add(n)
}

// Count returns the total marked events.
func (m *Meter) Count() int64 { return m.count.Load() }

// Rate returns events per second since the meter started.
// Returns 0 if nothing was marked or no time has elapsed.
func (m *Meter) Rate() float64 {
	start := m.started.Load()
	if start == 0 {
		return 0
	}
	elapsed := time.Since(time.Unix(0, start)).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count.Load()) / elapsed
}

// Reset clears the meter.
func (m *Meter) Reset() {
	m.count.Store(0)
	m.started.Store(0)
}

// WindowMeter tracks event rate over a sliding window of fixed-size slots.
// It is used by the elastic threading controller to detect workload bursts
// (paper §4.4) without keeping unbounded history.
type WindowMeter struct {
	mu       sync.Mutex
	slotDur  time.Duration
	slots    []int64
	slotTime []int64 // unix nano of slot start
	head     int
	now      func() time.Time
}

// NewWindowMeter creates a meter with n slots of d each (window = n*d).
func NewWindowMeter(n int, d time.Duration) *WindowMeter {
	if n < 1 {
		n = 1
	}
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	return &WindowMeter{
		slotDur:  d,
		slots:    make([]int64, n),
		slotTime: make([]int64, n),
		now:      time.Now,
	}
}

// SetClock overrides the time source (for tests).
func (w *WindowMeter) SetClock(now func() time.Time) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

func (w *WindowMeter) advance(t time.Time) {
	slotStart := t.Truncate(w.slotDur).UnixNano()
	if w.slotTime[w.head] == slotStart {
		return
	}
	// Move head forward until we land on the current slot, zeroing skipped slots.
	for w.slotTime[w.head] != slotStart {
		w.head = (w.head + 1) % len(w.slots)
		prev := w.slotTime[(w.head+len(w.slots)-1)%len(w.slots)]
		next := prev + int64(w.slotDur)
		if prev == 0 || next > slotStart {
			next = slotStart
		}
		w.slotTime[w.head] = next
		w.slots[w.head] = 0
	}
}

// Mark records n events at the current time.
func (w *WindowMeter) Mark(n int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advance(w.now())
	w.slots[w.head] += n
}

// Rate returns events/sec over the whole window, counting only populated slots.
func (w *WindowMeter) Rate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advance(w.now())
	var total int64
	var populated int
	for i := range w.slots {
		if w.slotTime[i] != 0 {
			total += w.slots[i]
			populated++
		}
	}
	if populated == 0 {
		return 0
	}
	secs := float64(populated) * w.slotDur.Seconds()
	return float64(total) / secs
}

// WindowCounter is a lock-free sliding-window event counter: Mark is one
// clock read plus one atomic add, cheap enough for per-request accounting
// where WindowMeter's mutex would serialize submitters. The window is n
// slots of d each; Rate sums slots whose epoch still falls inside the
// window. Counts are approximate under slot-rollover races (a concurrent
// Mark can be lost while a slot is being recycled) — it is a monitoring
// figure, not an exact counter.
type WindowCounter struct {
	slotDur int64 // nanos
	slots   []windowSlot
	now     func() int64 // unix nanos
}

type windowSlot struct {
	epoch atomic.Int64 // slot index: unix nanos / slotDur (0 = never used)
	count atomic.Int64
}

// NewWindowCounter creates a counter with n slots of d each (window = n*d).
func NewWindowCounter(n int, d time.Duration) *WindowCounter {
	if n < 2 {
		n = 2
	}
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	return &WindowCounter{
		slotDur: int64(d),
		slots:   make([]windowSlot, n),
		now:     func() int64 { return time.Now().UnixNano() },
	}
}

// SetClock overrides the time source with a unix-nanos function (tests).
func (w *WindowCounter) SetClock(now func() int64) { w.now = now }

// Mark records n events in the current slot.
func (w *WindowCounter) Mark(n int64) {
	idx := w.now() / w.slotDur
	s := &w.slots[int(idx%int64(len(w.slots)))]
	if e := s.epoch.Load(); e != idx {
		// First marker to land in a recycled slot resets it.
		if s.epoch.CompareAndSwap(e, idx) {
			s.count.Store(0)
		}
	}
	s.count.Add(n)
}

// Rate returns events/sec over the populated, still-current slots.
func (w *WindowCounter) Rate() float64 {
	nowIdx := w.now() / w.slotDur
	var total int64
	var populated int
	for i := range w.slots {
		e := w.slots[i].epoch.Load()
		if e != 0 && nowIdx-e < int64(len(w.slots)) {
			total += w.slots[i].count.Load()
			populated++
		}
	}
	if populated == 0 {
		return 0
	}
	secs := float64(populated) * time.Duration(w.slotDur).Seconds()
	return float64(total) / secs
}

// Sum returns the event total over the still-current slots. Unlike Rate
// it does not normalize by populated slots, so two counters sharing a
// window shape compose into exact in-window ratios (hits/(hits+misses))
// even when one of them saw activity in fewer slots.
func (w *WindowCounter) Sum() int64 {
	nowIdx := w.now() / w.slotDur
	var total int64
	for i := range w.slots {
		e := w.slots[i].epoch.Load()
		if e != 0 && nowIdx-e < int64(len(w.slots)) {
			total += w.slots[i].count.Load()
		}
	}
	return total
}

// TimeSeries records (t, value) points at moments chosen by the caller.
// Used by the fig9 burst experiment to emit a throughput timeline.
type TimeSeries struct {
	mu     sync.Mutex
	Start  time.Time
	Points []TimePoint
}

// TimePoint is one sample of a time series.
type TimePoint struct {
	Elapsed time.Duration
	Value   float64
}

// NewTimeSeries starts an empty series anchored at now.
func NewTimeSeries() *TimeSeries { return &TimeSeries{Start: time.Now()} }

// Add appends a sample with the current elapsed time.
func (ts *TimeSeries) Add(v float64) {
	ts.mu.Lock()
	ts.Points = append(ts.Points, TimePoint{Elapsed: time.Since(ts.Start), Value: v})
	ts.mu.Unlock()
}

// AddAt appends a sample at an explicit elapsed offset (for simulated time).
func (ts *TimeSeries) AddAt(elapsed time.Duration, v float64) {
	ts.mu.Lock()
	ts.Points = append(ts.Points, TimePoint{Elapsed: elapsed, Value: v})
	ts.mu.Unlock()
}

// Samples returns a copy of the recorded points.
func (ts *TimeSeries) Samples() []TimePoint {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TimePoint, len(ts.Points))
	copy(out, ts.Points)
	return out
}

// Gauge is an atomically updated instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments the gauge by d and returns the new value.
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// Get returns the current value.
func (g *Gauge) Get() int64 { return g.v.Load() }
