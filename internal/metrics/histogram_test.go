package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram should report zeros: %+v", h.Snapshot())
	}
	if h.Quantile(0.99) != 0 {
		t.Fatalf("empty quantile should be 0")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(1234)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Min() != 1234 || h.Max() != 1234 {
		t.Fatalf("min/max = %d/%d, want 1234/1234", h.Min(), h.Max())
	}
	q := h.Quantile(0.5)
	if relErr(q, 1234) > 0.05 {
		t.Fatalf("p50 = %d, want ~1234", q)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative values should clamp to 0, min=%d", h.Min())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	values := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// lognormal-ish latency distribution between ~1us and ~10ms
		v := int64(1000 * (1 + rng.ExpFloat64()*500))
		h.Record(v)
		values = append(values, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := ExactQuantile(values, q)
		if relErr(got, want) > 0.05 {
			t.Errorf("q=%v: got %d want %d (rel err %.3f)", q, got, want, relErr(got, want))
		}
	}
}

func TestHistogramMeanSum(t *testing.T) {
	h := NewHistogram()
	var sum int64
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
		sum += i
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}
	if h.Mean() != float64(sum)/100 {
		t.Fatalf("mean = %f, want %f", h.Mean(), float64(sum)/100)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	h.Record(20)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("reset did not clear: %+v", h.Snapshot())
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatalf("post-reset record broken: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 1000; i++ {
		a.Record(int64(i))
		b.Record(int64(i + 1000))
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d, want 2000", a.Count())
	}
	if a.Min() != 0 || relErr(a.Max(), 1999) > 0.05 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 5000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1_000_000))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	// Property: quantiles are non-decreasing in q.
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v % 10_000_000))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Property: for any value, the representative value of its bucket is
	// within ~2/subBuckets relative error.
	f := func(raw uint32) bool {
		v := int64(raw)
		idx := bucketIndex(v)
		rep := valueAt(idx)
		if v < subBuckets {
			return rep == v || rep == v+0 // exact in the linear range
		}
		return relErr(rep, v) <= 2.0/subBuckets+0.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketLowConsistent(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1 << 30} {
		idx := bucketIndex(v)
		low := bucketLow(idx)
		if low > v {
			t.Errorf("bucketLow(%d)=%d > value %d", idx, low, v)
		}
		if idx > 0 && bucketLow(idx-1) >= bucketLow(idx) && bucketLow(idx) != 0 {
			t.Errorf("bucketLow not increasing at idx %d", idx)
		}
	}
}

func TestExactQuantile(t *testing.T) {
	vals := []int64{5, 1, 9, 3, 7}
	if got := ExactQuantile(vals, 0); got != 1 {
		t.Errorf("q0 = %d, want 1", got)
	}
	if got := ExactQuantile(vals, 1); got != 9 {
		t.Errorf("q1 = %d, want 9", got)
	}
	if got := ExactQuantile(vals, 0.5); got != 5 {
		t.Errorf("q0.5 = %d, want 5", got)
	}
	if got := ExactQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
	// input must not be mutated
	if vals[0] != 5 || vals[4] != 7 {
		t.Errorf("ExactQuantile mutated input: %v", vals)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(time.Millisecond)
	s := h.Snapshot().String()
	if s == "" {
		t.Fatal("empty snapshot string")
	}
}

func relErr(got, want int64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}
