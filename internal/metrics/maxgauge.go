package metrics

import "sync/atomic"

// MaxGauge tracks a running maximum (e.g. the worst replication-frame
// write stall, the longest master-side write blocked behind a slow
// replica link). Lock-free: Observe is a CAS loop on the hot path,
// Load/Reset are single atomics. The zero value is ready to use.
type MaxGauge struct {
	max atomic.Int64
}

// Observe records v if it exceeds the current maximum.
func (g *MaxGauge) Observe(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur {
			return
		}
		if g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the maximum observed since the last Reset (0 if none).
func (g *MaxGauge) Load() int64 { return g.max.Load() }

// Reset clears the maximum and returns the value it held.
func (g *MaxGauge) Reset() int64 { return g.max.Swap(0) }
