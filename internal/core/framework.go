package core

import (
	"fmt"
	"sort"
	"strings"
)

// Cost Optimization Framework (paper §5.3): the sample → load → replay →
// calculate → iterate loop. The framework is measurement-agnostic: a
// ConfigEvaluator (implemented by internal/bench's replay harness) loads a
// data snapshot into a candidate configuration, replays the recorded
// trace, and reports the measured MaxPerf/MaxSpace. This package turns
// those measurements into costs and picks the optimum.

// Config names one candidate storage configuration to evaluate.
type Config struct {
	Name string
	// Params carries configuration-specific knobs (compressor name,
	// cache ratio, policy, threading mode, ...), interpreted by the
	// evaluator.
	Params map[string]string
}

// ConfigEvaluator performs steps 2-3 of the framework for one candidate:
// load the sampled snapshot, replay the trace, and measure capability.
type ConfigEvaluator interface {
	Measure(cfg Config) (Measured, error)
}

// ConfigEvaluatorFunc adapts a function to the interface.
type ConfigEvaluatorFunc func(cfg Config) (Measured, error)

// Measure implements ConfigEvaluator.
func (f ConfigEvaluatorFunc) Measure(cfg Config) (Measured, error) { return f(cfg) }

// Report is the outcome of a framework run.
type Report struct {
	Workload    Workload
	Instance    Instance
	Evaluations []Evaluation
	Best        Evaluation
	// Failures records configurations that could not be measured.
	Failures map[string]error
}

// FindOptimal runs the framework's iteration step over all candidates
// (steps 2-4 repeated per configuration, step 5's comparison at the end).
func FindOptimal(w Workload, i Instance, configs []Config, eval ConfigEvaluator, tol Tolerance) (*Report, error) {
	if len(configs) == 0 {
		return nil, ErrNoConfigs
	}
	rep := &Report{Workload: w, Instance: i, Failures: map[string]error{}}
	var measured []Measured
	for _, cfg := range configs {
		m, err := eval.Measure(cfg)
		if err != nil {
			rep.Failures[cfg.Name] = err
			continue
		}
		if m.Config == "" {
			m.Config = cfg.Name
		}
		measured = append(measured, tol.Apply(m))
	}
	if len(measured) == 0 {
		return rep, fmt.Errorf("core: all %d configurations failed to measure", len(configs))
	}
	rep.Evaluations = Evaluate(w, i, measured)
	sort.Slice(rep.Evaluations, func(a, b int) bool {
		return rep.Evaluations[a].Cost < rep.Evaluations[b].Cost
	})
	rep.Best = rep.Evaluations[0]
	return rep, nil
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: QPS=%.0f data=%.2fGB on %s\n",
		r.Workload.Name, r.Workload.QPS, r.Workload.DataSizeGB, r.Instance.Name)
	fmt.Fprintf(&b, "%-24s %10s %10s %10s %10s\n", "config", "PC", "SC", "cost", "class")
	for _, e := range r.Evaluations {
		marker := " "
		if e.Measured.Config == r.Best.Measured.Config {
			marker = "*"
		}
		cls := Balanced
		switch {
		case e.PC > e.SC*1.05:
			cls = PerformanceCritical
		case e.SC > e.PC*1.05:
			cls = SpaceCritical
		}
		fmt.Fprintf(&b, "%-24s %10.3f %10.3f %10.3f %-22s %s\n",
			e.Measured.Config, e.PC, e.SC, e.Cost, cls, marker)
	}
	for name, err := range r.Failures {
		fmt.Fprintf(&b, "FAILED %-17s %v\n", name, err)
	}
	return b.String()
}
