// Package core implements the Space-Performance Cost Model — the primary
// contribution of the TierBase paper (§2, §5).
//
// The model prices a workload on a fleet of identical resource instances
// as the maximum of its performance cost (PC) and space cost (SC):
// provisioning must satisfy the binding constraint, whether that is query
// throughput or data volume (Definition 1). From measured per-instance
// capability (MaxPerf, MaxSpace) it derives the cost metrics CPQPS and
// CPGB (Definition 2), the Optimal Cost Theorem (Theorem 2.1: the optimal
// configuration balances PC and SC), the tiered-storage cost model
// (Equation 3) with its optimal cache ratio (Theorem 5.1), and the adapted
// Five-Minute Rule (Equation 5) with break-even intervals.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Instance describes one resource instance (container/VM) — the unit of
// allocation. The paper's standard container is 1 CPU core + 4 GB DRAM
// with relative cost 1.0.
type Instance struct {
	Name     string
	Cost     float64 // monetary cost per instance (relative units)
	CPUCores float64
	MemoryGB float64
	DiskGB   float64
}

// StandardContainer is the paper's cost unit (§6.4.1).
var StandardContainer = Instance{
	Name: "standard-1c4g", Cost: 1.0, CPUCores: 1, MemoryGB: 4,
}

// Workload captures the requirements of one workload w.
type Workload struct {
	Name           string
	QPS            float64 // total queries per second
	DataSizeGB     float64 // total logical data volume
	ReadRatio      float64 // fraction of reads (informational)
	AvgRecordBytes float64 // mean record size (five-minute rule input)
}

// Measured is the benchmarked capability of configuration s on instance i:
// MaxPerf(w,i,s) and MaxSpace(w,i,s) from the paper.
type Measured struct {
	Config     string  // configuration label (e.g. "tierbase-pbc")
	MaxPerfQPS float64 // max sustainable QPS per instance
	MaxSpaceGB float64 // max storable data per instance
}

// Tolerance derates measured capability for redundancy and skew headroom
// ("we incorporate tolerance ratios for both MaxPerf and MaxSpace").
// 1.0 means no derating; 0.8 means plan at 80% of measured capability.
type Tolerance struct {
	Perf  float64
	Space float64
}

// DefaultTolerance plans at 80% utilization on both axes.
var DefaultTolerance = Tolerance{Perf: 0.8, Space: 0.8}

func (t Tolerance) fill() Tolerance {
	if t.Perf <= 0 || t.Perf > 1 {
		t.Perf = 1
	}
	if t.Space <= 0 || t.Space > 1 {
		t.Space = 1
	}
	return t
}

// Apply derates a measurement.
func (t Tolerance) Apply(m Measured) Measured {
	t = t.fill()
	m.MaxPerfQPS *= t.Perf
	m.MaxSpaceGB *= t.Space
	return m
}

// --- Definition 1: instance-granular costs (with ceiling) ---

// PC is the performance cost: Cost(i) × ceil(QPS / MaxPerf).
func PC(w Workload, i Instance, m Measured) float64 {
	if m.MaxPerfQPS <= 0 {
		return math.Inf(1)
	}
	return i.Cost * math.Ceil(w.QPS/m.MaxPerfQPS)
}

// SC is the space cost: Cost(i) × ceil(DataSize / MaxSpace).
func SC(w Workload, i Instance, m Measured) float64 {
	if m.MaxSpaceGB <= 0 {
		return math.Inf(1)
	}
	return i.Cost * math.Ceil(w.DataSizeGB/m.MaxSpaceGB)
}

// Cost is Definition 1: C(w,i,s) = max(PC, SC).
func Cost(w Workload, i Instance, m Measured) float64 {
	return math.Max(PC(w, i, m), SC(w, i, m))
}

// --- Definition 2: smooth cost metrics (ceiling removed) ---

// CPQPS is the cost per query per second: Cost(i) / MaxPerf.
func CPQPS(i Instance, m Measured) float64 {
	if m.MaxPerfQPS <= 0 {
		return math.Inf(1)
	}
	return i.Cost / m.MaxPerfQPS
}

// CPGB is the cost per gigabyte: Cost(i) / MaxSpace.
func CPGB(i Instance, m Measured) float64 {
	if m.MaxSpaceGB <= 0 {
		return math.Inf(1)
	}
	return i.Cost / m.MaxSpaceGB
}

// SmoothPC is CPQPS × QPS.
func SmoothPC(w Workload, i Instance, m Measured) float64 {
	return CPQPS(i, m) * w.QPS
}

// SmoothSC is CPGB × DataSize.
func SmoothSC(w Workload, i Instance, m Measured) float64 {
	return CPGB(i, m) * w.DataSizeGB
}

// SmoothCost is Equation 2: max(CPQPS×QPS, CPGB×DataSize).
func SmoothCost(w Workload, i Instance, m Measured) float64 {
	return math.Max(SmoothPC(w, i, m), SmoothSC(w, i, m))
}

// Criticality classifies a workload under a configuration (§2.1, Fig 2a).
type Criticality int

// Workload criticality classes.
const (
	Balanced Criticality = iota
	PerformanceCritical
	SpaceCritical
)

// String names the criticality.
func (c Criticality) String() string {
	switch c {
	case PerformanceCritical:
		return "performance-critical"
	case SpaceCritical:
		return "space-critical"
	default:
		return "balanced"
	}
}

// Classify reports which cost dominates (with 5% indifference band).
func Classify(w Workload, i Instance, m Measured) Criticality {
	pc, sc := SmoothPC(w, i, m), SmoothSC(w, i, m)
	switch {
	case pc > sc*1.05:
		return PerformanceCritical
	case sc > pc*1.05:
		return SpaceCritical
	default:
		return Balanced
	}
}

// --- Theorem 2.1: Optimal Cost ---

// Evaluation is one configuration's cost breakdown for a workload.
type Evaluation struct {
	Measured Measured
	PC       float64
	SC       float64
	Cost     float64
	Gap      float64 // |PC - SC|
}

// Evaluate prices every configuration for the workload (smooth metrics).
func Evaluate(w Workload, i Instance, configs []Measured) []Evaluation {
	out := make([]Evaluation, 0, len(configs))
	for _, m := range configs {
		pc, sc := SmoothPC(w, i, m), SmoothSC(w, i, m)
		out = append(out, Evaluation{
			Measured: m, PC: pc, SC: sc,
			Cost: math.Max(pc, sc), Gap: math.Abs(pc - sc),
		})
	}
	return out
}

// ErrNoConfigs is returned when the configuration set is empty.
var ErrNoConfigs = errors.New("core: no configurations to evaluate")

// OptimalConfig returns the min-max-cost configuration (C* of Theorem 2.1).
func OptimalConfig(w Workload, i Instance, configs []Measured) (Evaluation, error) {
	evals := Evaluate(w, i, configs)
	if len(evals) == 0 {
		return Evaluation{}, ErrNoConfigs
	}
	best := evals[0]
	for _, e := range evals[1:] {
		if e.Cost < best.Cost {
			best = e
		}
	}
	return best, nil
}

// BalancedConfig returns argmin |PC - SC| — the theorem's characterization
// of the optimum on a dense trade-off frontier.
func BalancedConfig(w Workload, i Instance, configs []Measured) (Evaluation, error) {
	evals := Evaluate(w, i, configs)
	if len(evals) == 0 {
		return Evaluation{}, ErrNoConfigs
	}
	best := evals[0]
	for _, e := range evals[1:] {
		if e.Gap < best.Gap {
			best = e
		}
	}
	return best, nil
}

// --- Equation 3: tiered-storage cost ---

// TieredInputs are the per-unit costs of both tiers for a workload.
// All fields are workload-level monetary costs:
//
//	PCCache   — cost of serving the full QPS from the cache tier
//	PCMiss    — extra cost of serving the full QPS through the miss path
//	SCCache   — cost of storing ALL data in the cache tier
//	PCStorage — cost of serving the full QPS from the storage tier
//	SCStorage — cost of storing all data in the storage tier
type TieredInputs struct {
	PCCache   float64
	PCMiss    float64
	SCCache   float64
	PCStorage float64
	SCStorage float64
}

// TieredInputsFrom derives TieredInputs from per-config measurements.
// missPenaltyQPS is the extra per-instance throughput cost of miss
// handling expressed as the max miss-QPS an instance sustains.
func TieredInputsFrom(w Workload, i Instance, cacheCfg, storageCfg Measured, missPenaltyQPS float64) TieredInputs {
	in := TieredInputs{
		PCCache:   SmoothPC(w, i, cacheCfg),
		SCCache:   SmoothSC(w, i, cacheCfg),
		PCStorage: SmoothPC(w, i, storageCfg),
		SCStorage: SmoothSC(w, i, storageCfg),
	}
	if missPenaltyQPS > 0 {
		in.PCMiss = i.Cost / missPenaltyQPS * w.QPS
	}
	return in
}

// TieredCost is Equation 3:
//
//	C = max(PC_cache + PC_miss×MR, SC_cache×CR) + max(PC_storage×MR, SC_storage)
func TieredCost(in TieredInputs, cr, mr float64) float64 {
	cacheCost := math.Max(in.PCCache+in.PCMiss*mr, in.SCCache*cr)
	storageCost := math.Max(in.PCStorage*mr, in.SCStorage)
	return cacheCost + storageCost
}

// CacheTierCost is Equation 6 (the cache-tier term alone, used when the
// storage pool is large enough that its cost is SC-dominated).
func CacheTierCost(in TieredInputs, cr, mr float64) float64 {
	return math.Max(in.PCCache+in.PCMiss*mr, in.SCCache*cr)
}

// TieredWorthIt reports whether tiering beats both single-tier options:
// C_tiered < min(C_cache, C_storage) (§2.4).
func TieredWorthIt(in TieredInputs, cr, mr float64) bool {
	tiered := TieredCost(in, cr, mr)
	cacheOnly := math.Max(in.PCCache, in.SCCache)
	storageOnly := math.Max(in.PCStorage, in.SCStorage)
	return tiered < math.Min(cacheOnly, storageOnly)
}

// --- Theorem 5.1: optimal cache ratio ---

// MRC is a miss-ratio curve: MR = f(CR), non-increasing on [0,1].
type MRC func(cr float64) float64

// OptimalCacheRatio solves Theorem 5.1 by bisection: the CR* where
// g(CR) = PC_cache + PC_miss×f(CR) meets h(CR) = SC_cache×CR.
// Returns CR*, the resulting MR, and the cache-tier cost at the optimum.
// When the curves do not intersect in [0,1], the cheaper endpoint wins.
func OptimalCacheRatio(in TieredInputs, f MRC) (crStar, mrStar, cost float64) {
	g := func(cr float64) float64 { return in.PCCache + in.PCMiss*f(cr) }
	h := func(cr float64) float64 { return in.SCCache * cr }
	d := func(cr float64) float64 { return g(cr) - h(cr) }
	lo, hi := 0.0, 1.0
	if d(lo) <= 0 {
		// Space cost dominates even with an empty cache: CR*=0.
		return 0, f(0), CacheTierCost(in, 0, f(0))
	}
	if d(hi) >= 0 {
		// Performance cost dominates even with a full cache: CR*=1.
		return 1, f(1), CacheTierCost(in, 1, f(1))
	}
	for iter := 0; iter < 100 && hi-lo > 1e-9; iter++ {
		mid := (lo + hi) / 2
		if d(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	crStar = (lo + hi) / 2
	mrStar = f(crStar)
	return crStar, mrStar, CacheTierCost(in, crStar, mrStar)
}

// --- Five-Minute Rule ---

// ClassicBreakEven is Equation 4 (Gray & Putzolu, 1987):
//
//	interval = (PagesPerMBofRAM / AccessesPerSecondPerDisk) ×
//	           (PricePerDiskDrive / PricePerMBofRAM)
func ClassicBreakEven(pagesPerMB, accessesPerSecPerDisk, pricePerDisk, pricePerMBRAM float64) float64 {
	if accessesPerSecPerDisk <= 0 || pricePerMBRAM <= 0 {
		return math.Inf(1)
	}
	return (pagesPerMB / accessesPerSecPerDisk) * (pricePerDisk / pricePerMBRAM)
}

// BreakEvenInterval is Equation 5, the adaptation for modern distributed
// systems:
//
//	interval = CPQPS_slow / (CPGB_fast × AvgRecordSize)
//
// cpqpsSlow prices one access per second on the slow (space-optimized)
// configuration; cpgbFast prices one GB on the fast configuration;
// avgRecordBytes is the workload's mean record size. If a record's mean
// access interval is shorter than the result, keep it in fast storage.
func BreakEvenInterval(cpqpsSlow, cpgbFast, avgRecordBytes float64) float64 {
	recGB := avgRecordBytes / (1 << 30)
	denom := cpgbFast * recGB
	if denom <= 0 {
		return math.Inf(1)
	}
	return cpqpsSlow / denom
}

// BreakEvenEntry is one row of the paper's Table 3.
type BreakEvenEntry struct {
	Fast, Slow string
	IntervalS  float64
}

// BreakEvenTable computes pairwise break-even intervals between
// configurations ordered fast→slow by CPQPS. For each (fast, slow) pair
// with CPQPS_fast < CPQPS_slow it reports Equation 5's threshold.
func BreakEvenTable(i Instance, configs []Measured, avgRecordBytes float64) []BreakEvenEntry {
	ordered := append([]Measured(nil), configs...)
	sort.Slice(ordered, func(a, b int) bool {
		return CPQPS(i, ordered[a]) < CPQPS(i, ordered[b])
	})
	var out []BreakEvenEntry
	for a := 0; a < len(ordered); a++ {
		for b := a + 1; b < len(ordered); b++ {
			fast, slow := ordered[a], ordered[b]
			out = append(out, BreakEvenEntry{
				Fast: fast.Config,
				Slow: slow.Config,
				IntervalS: BreakEvenInterval(
					CPQPS(i, slow), CPGB(i, fast), avgRecordBytes),
			})
		}
	}
	return out
}

// RecommendStorage picks the cheapest configuration for a record accessed
// once every accessIntervalS seconds, using the break-even chain: choose
// the slowest (most space-efficient) config whose break-even interval
// against every faster config is below the access interval.
func RecommendStorage(i Instance, configs []Measured, avgRecordBytes, accessIntervalS float64) (Measured, error) {
	if len(configs) == 0 {
		return Measured{}, ErrNoConfigs
	}
	ordered := append([]Measured(nil), configs...)
	sort.Slice(ordered, func(a, b int) bool {
		return CPQPS(i, ordered[a]) < CPQPS(i, ordered[b])
	})
	best := ordered[0] // fastest by default
	for idx := 1; idx < len(ordered); idx++ {
		slow := ordered[idx]
		// Moving to `slow` pays off if the record is accessed less often
		// than the break-even interval vs. the current best.
		be := BreakEvenInterval(CPQPS(i, slow), CPGB(i, best), avgRecordBytes)
		if accessIntervalS > be {
			best = slow
		}
	}
	return best, nil
}

// String renders an evaluation row.
func (e Evaluation) String() string {
	return fmt.Sprintf("%-24s PC=%8.3f SC=%8.3f C=%8.3f", e.Measured.Config, e.PC, e.SC, e.Cost)
}
