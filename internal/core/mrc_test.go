package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"tierbase/internal/workload"
)

// bruteStackDistance is the O(n²) reference implementation.
func bruteStackDistance(trace []string) []int {
	out := make([]int, len(trace))
	last := map[string]int{}
	for i, k := range trace {
		prev, ok := last[k]
		if !ok {
			out[i] = -1
		} else {
			distinct := map[string]struct{}{}
			for j := prev + 1; j < i; j++ {
				distinct[trace[j]] = struct{}{}
			}
			out[i] = len(distinct)
		}
		last[k] = i
	}
	return out
}

func TestStackDistancesSmall(t *testing.T) {
	trace := []string{"a", "b", "c", "a", "b", "b"}
	got := StackDistances(trace)
	want := []int{-1, -1, -1, 2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestStackDistancesMatchBrute(t *testing.T) {
	f := func(raw []uint8) bool {
		trace := make([]string, len(raw))
		for i, b := range raw {
			trace[i] = fmt.Sprintf("k%d", b%16)
		}
		got := StackDistances(trace)
		want := bruteStackDistance(trace)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMRCFullCacheZeroSteadyMisses(t *testing.T) {
	trace := []string{"a", "b", "a", "b", "a", "b"}
	m := BuildMRC(trace)
	if m.Distinct() != 2 {
		t.Fatalf("distinct %d", m.Distinct())
	}
	steady := m.Curve(true)
	if mr := steady(1.0); mr != 0 {
		t.Fatalf("steady MR at CR=1 should be 0, got %f", mr)
	}
	cold := m.Curve(false)
	if mr := cold(1.0); mr <= 0 {
		t.Fatalf("cold MR at CR=1 should include compulsory misses, got %f", mr)
	}
}

func TestMRCNonIncreasingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	z := workload.NewZipfian(500, 0.99)
	trace := make([]string, 20000)
	for i := range trace {
		trace[i] = fmt.Sprintf("k%d", z.Next(rng))
	}
	m := BuildMRC(trace)
	f := m.Curve(true)
	prev := f(0)
	for cr := 0.02; cr <= 1.0; cr += 0.02 {
		cur := f(cr)
		if cur > prev+1e-9 {
			t.Fatalf("MRC increased at CR=%.2f: %f -> %f", cr, prev, cur)
		}
		prev = cur
	}
}

func TestMRCSkewedBeatsUniform(t *testing.T) {
	// With 10% cache, a zipfian trace must have a far lower MR than a
	// uniform trace — the core premise of tiered storage (§2.5.2).
	rng := rand.New(rand.NewSource(5))
	n := int64(2000)
	z := workload.NewZipfian(n, 0.99)
	u := workload.NewUniform(n)
	zt := make([]string, 40000)
	ut := make([]string, 40000)
	for i := range zt {
		zt[i] = fmt.Sprintf("k%d", z.Next(rng))
		ut[i] = fmt.Sprintf("k%d", u.Next(rng))
	}
	zf := BuildMRC(zt).Curve(true)
	uf := BuildMRC(ut).Curve(true)
	if zf(0.1) >= uf(0.1) {
		t.Fatalf("zipf MR %.3f should beat uniform MR %.3f at CR=0.1", zf(0.1), uf(0.1))
	}
	if zf(0.1) > 0.5 {
		t.Fatalf("zipf MR at 10%% cache too high: %.3f", zf(0.1))
	}
}

func TestZipfMRCShape(t *testing.T) {
	f := ZipfMRC(10000, 0.99)
	if f(0) != 1 || f(1) != 0 {
		t.Fatalf("endpoints: f(0)=%f f(1)=%f", f(0), f(1))
	}
	prev := f(0)
	for cr := 0.05; cr <= 1.0; cr += 0.05 {
		cur := f(cr)
		if cur > prev+1e-9 {
			t.Fatalf("analytic MRC increased at %.2f", cr)
		}
		prev = cur
	}
	// Strong skew: 10% of items should absorb >50% of hits.
	if mr := f(0.1); mr > 0.5 {
		t.Fatalf("zipf(0.99) MR at CR=0.1 = %f, want < 0.5", mr)
	}
}

func TestZipfMRCDegenerate(t *testing.T) {
	f := ZipfMRC(0, 0.99) // clamps to 1 item
	if f(0.5) < 0 || f(0.5) > 1 {
		t.Fatal("out of range")
	}
}

func TestEmptyTrace(t *testing.T) {
	m := BuildMRC(nil)
	if mr := m.Curve(true)(0.5); mr != 0 {
		t.Fatalf("empty trace MR %f", mr)
	}
	if m.MissRatioAtKeys(10) != 0 {
		t.Fatal("empty MissRatioAtKeys")
	}
}

func TestFrameworkFindOptimal(t *testing.T) {
	capabilities := map[string]Measured{
		"raw":  {MaxPerfQPS: 100000, MaxSpaceGB: 2},
		"pbc":  {MaxPerfQPS: 50000, MaxSpaceGB: 8},
		"bust": {},
	}
	eval := ConfigEvaluatorFunc(func(cfg Config) (Measured, error) {
		m, ok := capabilities[cfg.Name]
		if !ok || cfg.Name == "bust" {
			return Measured{}, fmt.Errorf("unmeasurable")
		}
		return m, nil
	})
	w := Workload{Name: "case", QPS: 40000, DataSizeGB: 12}
	rep, err := FindOptimal(w, StandardContainer, []Config{
		{Name: "raw"}, {Name: "pbc"}, {Name: "bust"},
	}, eval, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	// raw: max(0.4, 6)=6 ; pbc: max(0.8, 1.5)=1.5 -> pbc wins.
	if rep.Best.Measured.Config != "pbc" {
		t.Fatalf("best %s", rep.Best.Measured.Config)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures: %v", rep.Failures)
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
}

func TestFrameworkAllFail(t *testing.T) {
	eval := ConfigEvaluatorFunc(func(Config) (Measured, error) {
		return Measured{}, fmt.Errorf("nope")
	})
	if _, err := FindOptimal(wl, StandardContainer, []Config{{Name: "x"}}, eval, Tolerance{}); err == nil {
		t.Fatal("should fail when nothing measures")
	}
	if _, err := FindOptimal(wl, StandardContainer, nil, eval, Tolerance{}); err != ErrNoConfigs {
		t.Fatalf("empty: %v", err)
	}
}
