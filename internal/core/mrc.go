package core

import (
	"math"
	"sort"
)

// Miss-ratio-curve estimation (paper §2.4 references the Miss Ratio Curve
// MR = f(CR); §5.2 uses it to find the optimal cache ratio). This file
// implements Mattson's stack-distance algorithm with a Fenwick tree
// (O(n log n)) over a key-access trace, producing an empirical MRC that
// plugs straight into OptimalCacheRatio.

// fenwick is a binary indexed tree over access positions.
type fenwick struct{ t []int }

func newFenwick(n int) *fenwick { return &fenwick{t: make([]int, n+1)} }

func (f *fenwick) add(i, d int) {
	for i++; i < len(f.t); i += i & (-i) {
		f.t[i] += d
	}
}

// sum returns the prefix sum over [0, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.t[i]
	}
	return s
}

// StackDistances computes, for each access in the trace, its LRU stack
// distance: the number of distinct keys referenced since the previous
// access to the same key. Cold (first) accesses get distance -1.
func StackDistances(trace []string) []int {
	n := len(trace)
	bit := newFenwick(n)
	last := make(map[string]int, n/4+1)
	out := make([]int, n)
	for i, key := range trace {
		if prev, ok := last[key]; ok {
			// Distinct keys touched in (prev, i) = marks in that window.
			out[i] = bit.sum(i-1) - bit.sum(prev)
			bit.add(prev, -1) // key's marker moves to position i
		} else {
			out[i] = -1
		}
		bit.add(i, 1)
		last[key] = i
	}
	return out
}

// EmpiricalMRC is a measured miss-ratio curve over cache sizes expressed
// as a fraction of the distinct key population.
type EmpiricalMRC struct {
	// distances holds sorted non-cold stack distances.
	distances []int
	accesses  int
	cold      int
	distinct  int
}

// BuildMRC computes the empirical MRC of a key trace.
func BuildMRC(trace []string) *EmpiricalMRC {
	dists := StackDistances(trace)
	uniq := make(map[string]struct{}, len(trace)/4+1)
	for _, k := range trace {
		uniq[k] = struct{}{}
	}
	m := &EmpiricalMRC{accesses: len(trace), distinct: len(uniq)}
	for _, d := range dists {
		if d < 0 {
			m.cold++
		} else {
			m.distances = append(m.distances, d)
		}
	}
	sort.Ints(m.distances)
	return m
}

// Distinct returns the trace's distinct key count.
func (m *EmpiricalMRC) Distinct() int { return m.distinct }

// MissRatioAtKeys returns the LRU miss ratio with capacity for c keys.
// Cold misses always count.
func (m *EmpiricalMRC) MissRatioAtKeys(c int) float64 {
	if m.accesses == 0 {
		return 0
	}
	// Misses = cold + accesses whose stack distance >= c.
	idx := sort.SearchInts(m.distances, c)
	warmMisses := len(m.distances) - idx
	return float64(m.cold+warmMisses) / float64(m.accesses)
}

// Curve returns f(CR) with CR = cacheKeys/distinctKeys, clamped to [0,1].
// The cold-miss floor is removed when steady is true, modeling steady-state
// behavior where the population has been seen at least once.
func (m *EmpiricalMRC) Curve(steady bool) MRC {
	return func(cr float64) float64 {
		if m.accesses == 0 || m.distinct == 0 {
			return 0
		}
		if cr < 0 {
			cr = 0
		}
		if cr > 1 {
			cr = 1
		}
		c := int(math.Round(cr * float64(m.distinct)))
		mr := m.MissRatioAtKeys(c)
		if steady {
			coldMR := float64(m.cold) / float64(m.accesses)
			warmAccesses := float64(m.accesses - m.cold)
			if warmAccesses <= 0 {
				return 0
			}
			mr = (mr*float64(m.accesses) - coldMR*float64(m.accesses)) / warmAccesses
			if mr < 0 {
				mr = 0
			}
		}
		return mr
	}
}

// ZipfMRC returns an analytic miss-ratio curve for a zipfian workload with
// skew theta over n items: the hit ratio of caching the top c items equals
// the probability mass of ranks 1..c. Used when no trace is available.
func ZipfMRC(n int64, theta float64) MRC {
	if n < 1 {
		n = 1
	}
	// Precompute normalized cumulative mass at log-spaced points.
	var total float64
	for i := int64(1); i <= n; i++ {
		total += 1 / math.Pow(float64(i), theta)
	}
	// cum[i] = mass of top (i+1) ranks (sampled; interpolate between).
	samples := 512
	if int64(samples) > n {
		samples = int(n)
	}
	cumAt := make([]float64, samples+1)
	ranksAt := make([]int64, samples+1)
	var cum float64
	next := 0
	for i := int64(1); i <= n; i++ {
		cum += 1 / math.Pow(float64(i), theta)
		for next <= samples && i >= int64(math.Round(float64(next)/float64(samples)*float64(n))) {
			cumAt[next] = cum / total
			ranksAt[next] = i
			next++
		}
	}
	for next <= samples {
		cumAt[next] = 1
		ranksAt[next] = n
		next++
	}
	_ = ranksAt
	return func(cr float64) float64 {
		if cr <= 0 {
			return 1
		}
		if cr >= 1 {
			return 0
		}
		pos := cr * float64(samples)
		lo := int(pos)
		frac := pos - float64(lo)
		hit := cumAt[lo]
		if lo+1 <= samples {
			hit += frac * (cumAt[lo+1] - cumAt[lo])
		}
		return 1 - hit
	}
}
