package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

var wl = Workload{Name: "w", QPS: 80000, DataSizeGB: 10, ReadRatio: 0.95, AvgRecordBytes: 100}

func TestPCSCCeiling(t *testing.T) {
	m := Measured{Config: "c", MaxPerfQPS: 30000, MaxSpaceGB: 4}
	// 80000/30000 = 2.67 -> 3 instances for perf; 10/4 = 2.5 -> 3 for space.
	if got := PC(wl, StandardContainer, m); got != 3 {
		t.Fatalf("PC = %f", got)
	}
	if got := SC(wl, StandardContainer, m); got != 3 {
		t.Fatalf("SC = %f", got)
	}
	if got := Cost(wl, StandardContainer, m); got != 3 {
		t.Fatalf("C = %f", got)
	}
}

func TestZeroCapabilityIsInfinite(t *testing.T) {
	m := Measured{MaxPerfQPS: 0, MaxSpaceGB: 0}
	if !math.IsInf(PC(wl, StandardContainer, m), 1) || !math.IsInf(SC(wl, StandardContainer, m), 1) {
		t.Fatal("zero capability should cost infinity")
	}
	if !math.IsInf(CPQPS(StandardContainer, m), 1) || !math.IsInf(CPGB(StandardContainer, m), 1) {
		t.Fatal("unit costs should be infinite")
	}
}

func TestSmoothMetrics(t *testing.T) {
	m := Measured{MaxPerfQPS: 40000, MaxSpaceGB: 2}
	if got := CPQPS(StandardContainer, m); got != 1.0/40000 {
		t.Fatalf("CPQPS %g", got)
	}
	if got := CPGB(StandardContainer, m); got != 0.5 {
		t.Fatalf("CPGB %g", got)
	}
	if got := SmoothPC(wl, StandardContainer, m); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("smooth PC %g", got)
	}
	if got := SmoothSC(wl, StandardContainer, m); math.Abs(got-5.0) > 1e-9 {
		t.Fatalf("smooth SC %g", got)
	}
	if got := SmoothCost(wl, StandardContainer, m); math.Abs(got-5.0) > 1e-9 {
		t.Fatalf("smooth C %g", got)
	}
}

func TestTolerance(t *testing.T) {
	m := Measured{MaxPerfQPS: 100, MaxSpaceGB: 10}
	d := Tolerance{Perf: 0.8, Space: 0.5}.Apply(m)
	if d.MaxPerfQPS != 80 || d.MaxSpaceGB != 5 {
		t.Fatalf("derated: %+v", d)
	}
	// Invalid tolerances normalize to 1.
	u := Tolerance{Perf: -1, Space: 2}.Apply(m)
	if u.MaxPerfQPS != 100 || u.MaxSpaceGB != 10 {
		t.Fatalf("invalid tolerance: %+v", u)
	}
}

func TestClassify(t *testing.T) {
	// High QPS, tiny data => performance-critical.
	pc := Classify(Workload{QPS: 1e6, DataSizeGB: 0.1}, StandardContainer, Measured{MaxPerfQPS: 1e4, MaxSpaceGB: 4})
	if pc != PerformanceCritical {
		t.Fatalf("got %v", pc)
	}
	// Low QPS, huge data => space-critical.
	sc := Classify(Workload{QPS: 100, DataSizeGB: 1000}, StandardContainer, Measured{MaxPerfQPS: 1e5, MaxSpaceGB: 4})
	if sc != SpaceCritical {
		t.Fatalf("got %v", sc)
	}
	if pc.String() != "performance-critical" || sc.String() != "space-critical" || Balanced.String() != "balanced" {
		t.Fatal("names")
	}
}

func TestOptimalConfigPicksMinMax(t *testing.T) {
	configs := []Measured{
		{Config: "fast-big-mem", MaxPerfQPS: 100000, MaxSpaceGB: 1},
		{Config: "balanced", MaxPerfQPS: 50000, MaxSpaceGB: 4},
		{Config: "compressed", MaxPerfQPS: 20000, MaxSpaceGB: 12},
	}
	best, err := OptimalConfig(wl, StandardContainer, configs)
	if err != nil {
		t.Fatal(err)
	}
	// fast: max(0.8, 10) = 10; balanced: max(1.6, 2.5) = 2.5;
	// compressed: max(4, 0.83) = 4. Balanced wins.
	if best.Measured.Config != "balanced" {
		t.Fatalf("best = %s (cost %f)", best.Measured.Config, best.Cost)
	}
	if _, err := OptimalConfig(wl, StandardContainer, nil); !errors.Is(err, ErrNoConfigs) {
		t.Fatalf("empty: %v", err)
	}
}

func TestOptimalCostTheoremOnFrontier(t *testing.T) {
	// Theorem 2.1: on a dense non-increasing trade-off frontier
	// (CPQPS = f(CPGB), f non-increasing), the min-max-cost configuration
	// is the one minimizing |PC - SC|.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Workload{QPS: 1000 + rng.Float64()*1e5, DataSizeGB: 1 + rng.Float64()*50}
		// Generate a dense frontier: as space capacity rises, perf falls.
		var configs []Measured
		const n = 200
		for k := 0; k < n; k++ {
			frac := float64(k+1) / n
			configs = append(configs, Measured{
				Config:     "s" + string(rune('0'+k%10)),
				MaxSpaceGB: 0.5 + frac*16,                   // 0.5 .. 16.5 GB
				MaxPerfQPS: 1000 + (1-frac)*(1-frac)*100000, // falls as space rises
			})
		}
		best, _ := OptimalConfig(w, StandardContainer, configs)
		bal, _ := BalancedConfig(w, StandardContainer, configs)
		// The balanced config's cost must be within a frontier-step of the
		// true optimum (they coincide in the continuous limit).
		return bal.Cost <= best.Cost*1.10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTieredCostEquation3(t *testing.T) {
	in := TieredInputs{PCCache: 1, PCMiss: 2, SCCache: 10, PCStorage: 4, SCStorage: 1}
	// CR=0.2, MR=0.1:
	// cache = max(1 + 2*0.1, 10*0.2) = max(1.2, 2) = 2
	// storage = max(4*0.1, 1) = 1
	if got := TieredCost(in, 0.2, 0.1); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("tiered cost %g", got)
	}
	if got := CacheTierCost(in, 0.2, 0.1); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("cache tier cost %g", got)
	}
}

func TestTieredWorthIt(t *testing.T) {
	// Skewed access + big cost disparity: tiering wins.
	in := TieredInputs{PCCache: 1, PCMiss: 0.5, SCCache: 20, PCStorage: 10, SCStorage: 1}
	if !TieredWorthIt(in, 0.05, 0.05) {
		t.Fatal("tiering should win for skewed workload")
	}
	// Uniform access (high MR at low CR): tiering loses to pure cache.
	if TieredWorthIt(TieredInputs{PCCache: 1, PCMiss: 5, SCCache: 2, PCStorage: 10, SCStorage: 1}, 0.9, 0.9) {
		t.Fatal("tiering should lose when cache must hold ~everything anyway")
	}
}

func TestOptimalCacheRatioBisection(t *testing.T) {
	in := TieredInputs{PCCache: 1, PCMiss: 8, SCCache: 20}
	f := MRC(func(cr float64) float64 { return math.Pow(1-cr, 3) }) // steep MRC
	crStar, mrStar, cost := OptimalCacheRatio(in, f)
	// At the optimum g(CR*) == h(CR*).
	g := in.PCCache + in.PCMiss*f(crStar)
	h := in.SCCache * crStar
	if math.Abs(g-h) > 1e-6 {
		t.Fatalf("balance violated: g=%f h=%f at CR*=%f", g, h, crStar)
	}
	if mrStar != f(crStar) {
		t.Fatal("MR* inconsistent")
	}
	// No interior CR should be cheaper.
	for cr := 0.0; cr <= 1.0; cr += 0.01 {
		if c := CacheTierCost(in, cr, f(cr)); c < cost-1e-9 {
			t.Fatalf("CR=%f cost %f beats optimum %f at CR*=%f", cr, c, cost, crStar)
		}
	}
}

func TestOptimalCacheRatioEndpoints(t *testing.T) {
	flat := MRC(func(cr float64) float64 { return 0.5 })
	// Space dominates everywhere: optimal CR=0.
	cr, _, _ := OptimalCacheRatio(TieredInputs{PCCache: 0.0, PCMiss: 0.0, SCCache: 100}, flat)
	if cr != 0 {
		t.Fatalf("CR* = %f, want 0", cr)
	}
	// Perf dominates everywhere: optimal CR=1.
	cr, _, _ = OptimalCacheRatio(TieredInputs{PCCache: 100, PCMiss: 100, SCCache: 0.001}, flat)
	if cr != 1 {
		t.Fatalf("CR* = %f, want 1", cr)
	}
}

func TestOptimalCacheRatioPropertyBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := TieredInputs{
			PCCache: rng.Float64() * 2,
			PCMiss:  0.5 + rng.Float64()*10,
			SCCache: 0.5 + rng.Float64()*30,
		}
		theta := 0.6 + rng.Float64()*0.39
		mrc := ZipfMRC(10000, theta)
		crStar, _, cost := OptimalCacheRatio(in, mrc)
		if crStar < 0 || crStar > 1 {
			return false
		}
		// Sampled costs must not beat the reported optimum meaningfully.
		for cr := 0.0; cr <= 1.0; cr += 0.05 {
			if CacheTierCost(in, cr, mrc(cr)) < cost*0.999-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClassicBreakEven(t *testing.T) {
	// Gray & Putzolu's 1987 parameters: ~128 pages/MB, 15 accesses/s/disk,
	// $15k/disk, $5k/MB RAM -> around 400s... the canonical "5 minutes"
	// comes from 1KB records; just verify the formula's shape.
	got := ClassicBreakEven(128, 15, 15000, 5000)
	want := (128.0 / 15.0) * (15000.0 / 5000.0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("classic: %f want %f", got, want)
	}
	if !math.IsInf(ClassicBreakEven(1, 0, 1, 1), 1) {
		t.Fatal("zero access rate should be infinite")
	}
}

func TestBreakEvenIntervalShape(t *testing.T) {
	// Bigger records -> shorter break-even interval (cheaper to keep the
	// record in fast storage only if accessed very frequently... inverse).
	small := BreakEvenInterval(0.001, 2.0, 100)
	large := BreakEvenInterval(0.001, 2.0, 10000)
	if large >= small {
		t.Fatalf("interval should shrink with record size: %f vs %f", small, large)
	}
	// Cheaper fast storage -> longer worthwhile residency? No: cheaper
	// fast storage (lower CPGB_fast) RAISES the interval.
	cheapFast := BreakEvenInterval(0.001, 0.5, 100)
	if cheapFast <= small {
		t.Fatalf("cheaper fast storage should lengthen interval: %f vs %f", cheapFast, small)
	}
	if !math.IsInf(BreakEvenInterval(1, 0, 100), 1) {
		t.Fatal("zero CPGB should be infinite")
	}
}

func TestBreakEvenTableOrdering(t *testing.T) {
	configs := []Measured{
		{Config: "raw", MaxPerfQPS: 100000, MaxSpaceGB: 2},
		{Config: "pmem", MaxPerfQPS: 80000, MaxSpaceGB: 5},
		{Config: "pbc", MaxPerfQPS: 40000, MaxSpaceGB: 8},
	}
	table := BreakEvenTable(StandardContainer, configs, 100)
	if len(table) != 3 {
		t.Fatalf("pairs: %d", len(table))
	}
	// Paper Table 3 ordering: raw->pmem < raw->pbc < pmem->pbc intervals.
	byPair := map[string]float64{}
	for _, e := range table {
		byPair[e.Fast+"->"+e.Slow] = e.IntervalS
	}
	if !(byPair["raw->pmem"] < byPair["raw->pbc"]) {
		t.Fatalf("ordering: %v", byPair)
	}
	if !(byPair["raw->pbc"] < byPair["pmem->pbc"]) {
		t.Fatalf("ordering: %v", byPair)
	}
}

func TestRecommendStorage(t *testing.T) {
	configs := []Measured{
		{Config: "raw", MaxPerfQPS: 100000, MaxSpaceGB: 2},
		{Config: "pmem", MaxPerfQPS: 80000, MaxSpaceGB: 5},
		{Config: "pbc", MaxPerfQPS: 40000, MaxSpaceGB: 8},
	}
	// Very hot record: stay raw.
	hot, err := RecommendStorage(StandardContainer, configs, 100, 1)
	if err != nil || hot.Config != "raw" {
		t.Fatalf("hot: %s %v", hot.Config, err)
	}
	// Very cold record: use the most space-efficient config.
	cold, _ := RecommendStorage(StandardContainer, configs, 100, 1e9)
	if cold.Config != "pbc" {
		t.Fatalf("cold: %s", cold.Config)
	}
	if _, err := RecommendStorage(StandardContainer, nil, 100, 1); !errors.Is(err, ErrNoConfigs) {
		t.Fatal("empty configs")
	}
}

func TestEvaluationString(t *testing.T) {
	e := Evaluation{Measured: Measured{Config: "x"}, PC: 1, SC: 2, Cost: 2}
	if !strings.Contains(e.String(), "x") {
		t.Fatal("missing config name")
	}
}

func TestSortStability(t *testing.T) {
	// BreakEvenTable must not mutate the caller's slice.
	configs := []Measured{
		{Config: "b", MaxPerfQPS: 1, MaxSpaceGB: 1},
		{Config: "a", MaxPerfQPS: 100, MaxSpaceGB: 1},
	}
	BreakEvenTable(StandardContainer, configs, 100)
	if configs[0].Config != "b" {
		t.Fatal("input mutated")
	}
	if !sort.SliceIsSorted([]int{1, 2}, func(i, j int) bool { return i < j }) {
		t.Fatal("sanity")
	}
}
