// Package compress implements TierBase's pre-trained compression mechanism
// (paper §4.2): an offline training phase builds a dictionary (Zstd-style)
// or a pattern set (PBC), which the compression phase then applies to every
// record. A monitor watches compression efficiency in production and
// triggers re-training; a recommender picks the best compressor for a
// workload sample.
//
// Substitution note (see DESIGN.md): the paper uses Zstandard; stdlib-only
// Go has no Zstd, so the "Zstd" role is played by DEFLATE (compress/flate)
// wrapped with the same pre-trained-dictionary machinery. The experiments
// concern the pre-training mechanism, not the entropy coder, and the
// orderings the paper reports (ratio: PBC < dict < no-dict; speed:
// dict > PBC > no-dict on SET, PBC ~ raw on GET) are preserved.
package compress

import (
	"errors"
	"fmt"
)

// Compressor is the uniform interface over all compression strategies.
// Implementations are safe for concurrent use after Train.
type Compressor interface {
	// Name identifies the compressor (e.g. "raw", "deflate", "deflate-dict", "pbc").
	Name() string
	// Train performs the offline pre-training phase on sample records.
	// Training again replaces the previous dictionary/patterns.
	Train(samples [][]byte) error
	// Compress returns the encoded form of src.
	Compress(src []byte) []byte
	// Decompress reverses Compress.
	Decompress(src []byte) ([]byte, error)
}

// ErrCorrupt reports undecodable compressed data.
var ErrCorrupt = errors.New("compress: corrupt data")

// Raw is the identity compressor (the TierBase-Raw configuration).
type Raw struct{}

// Name implements Compressor.
func (Raw) Name() string { return "raw" }

// Train implements Compressor (no-op).
func (Raw) Train([][]byte) error { return nil }

// Compress implements Compressor (returns src unchanged).
func (Raw) Compress(src []byte) []byte { return src }

// Decompress implements Compressor.
func (Raw) Decompress(src []byte) ([]byte, error) { return src, nil }

// ByName constructs a compressor from its name; level applies to deflate
// variants (1..9; 0 = default 6).
func ByName(name string, level int) (Compressor, error) {
	switch name {
	case "raw", "":
		return Raw{}, nil
	case "deflate", "zstd-b":
		return NewDeflate(level, false), nil
	case "deflate-dict", "zstd-d":
		return NewDeflate(level, true), nil
	case "pbc":
		return NewPBC(), nil
	default:
		return nil, fmt.Errorf("compress: unknown compressor %q", name)
	}
}

// MeasureRatio compresses every record and returns compressedBytes/rawBytes
// (lower is better; the paper's "Comp. Ratio").
func MeasureRatio(c Compressor, records [][]byte) float64 {
	var raw, comp int64
	for _, r := range records {
		raw += int64(len(r))
		comp += int64(len(c.Compress(r)))
	}
	if raw == 0 {
		return 1
	}
	return float64(comp) / float64(raw)
}
