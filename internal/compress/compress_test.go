package compress

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"tierbase/internal/workload"
)

func allCompressors(t *testing.T, train [][]byte) []Compressor {
	t.Helper()
	cs := []Compressor{Raw{}, NewDeflate(6, false), NewDeflate(6, true), NewPBC()}
	for _, c := range cs {
		if err := c.Train(train); err != nil {
			t.Fatalf("%s train: %v", c.Name(), err)
		}
	}
	return cs
}

func TestRoundTripAllCompressors(t *testing.T) {
	samples := workload.Sample(workload.NewKV1(), 200)
	for _, c := range allCompressors(t, samples) {
		for i := int64(1000); i < 1100; i++ {
			rec := workload.NewKV1().Record(i)
			comp := c.Compress(rec)
			got, err := c.Decompress(comp)
			if err != nil {
				t.Fatalf("%s: decompress: %v", c.Name(), err)
			}
			if !bytes.Equal(got, rec) {
				t.Fatalf("%s: roundtrip mismatch:\n got %q\nwant %q", c.Name(), got, rec)
			}
		}
	}
}

func TestRoundTripArbitraryBytes(t *testing.T) {
	samples := workload.Sample(workload.NewCities(), 100)
	cs := allCompressors(t, samples)
	f := func(data []byte) bool {
		for _, c := range cs {
			got, err := c.Decompress(c.Compress(data))
			if err != nil {
				return false
			}
			if len(data) == 0 && len(got) == 0 {
				continue
			}
			if !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPretrainedBeatsUntrained(t *testing.T) {
	for _, ds := range []workload.Dataset{workload.NewKV1(), workload.NewKV2(), workload.NewCities()} {
		train := workload.Sample(ds, 500)
		eval := make([][]byte, 300)
		for i := range eval {
			eval[i] = ds.Record(int64(10000 + i))
		}
		plain := NewDeflate(6, false)
		dict := NewDeflate(6, true)
		dict.Train(train)
		rPlain := MeasureRatio(plain, eval)
		rDict := MeasureRatio(dict, eval)
		if rDict >= rPlain {
			t.Errorf("%s: dictionary did not help: dict %.4f vs plain %.4f", ds.Name(), rDict, rPlain)
		}
	}
}

func TestPBCBeatsDictOnMachineData(t *testing.T) {
	// Paper Table 2: "PBC consistently achieves higher compression ratios
	// than Zstd", especially on machine-generated KV datasets.
	for _, ds := range []workload.Dataset{workload.NewKV1(), workload.NewKV2()} {
		train := workload.Sample(ds, 500)
		eval := make([][]byte, 300)
		for i := range eval {
			eval[i] = ds.Record(int64(20000 + i))
		}
		dict := NewDeflate(6, true)
		dict.Train(train)
		pbc := NewPBC()
		pbc.Train(train)
		rDict := MeasureRatio(dict, eval)
		rPBC := MeasureRatio(pbc, eval)
		if rPBC >= rDict {
			t.Errorf("%s: PBC ratio %.4f not better than dict %.4f", ds.Name(), rPBC, rDict)
		}
	}
}

func TestPBCPatternsExtracted(t *testing.T) {
	p := NewPBC()
	samples := workload.Sample(workload.NewKV2(), 300)
	p.Train(samples)
	if p.PatternCount() == 0 {
		t.Fatal("no patterns extracted")
	}
	// Machine-generated data should mostly match patterns.
	unmatched := 0
	for i := int64(5000); i < 5200; i++ {
		if IsEscape(p.Compress(workload.NewKV2().Record(i))) {
			unmatched++
		}
	}
	if rate := float64(unmatched) / 200; rate > 0.2 {
		t.Fatalf("unmatched rate %.3f too high", rate)
	}
}

func TestPBCUntrainedEscapes(t *testing.T) {
	p := NewPBC()
	data := []byte("anything at all")
	comp := p.Compress(data)
	if !IsEscape(comp) {
		t.Fatal("untrained PBC should escape-code")
	}
	got, err := p.Decompress(comp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("escape roundtrip: %q %v", got, err)
	}
}

func TestPBCNumericSlots(t *testing.T) {
	p := NewPBC()
	var samples [][]byte
	for i := 0; i < 100; i++ {
		samples = append(samples, []byte(fmt.Sprintf("id=%d;pad=%04d", i*7, i)))
	}
	p.Train(samples)
	for _, s := range [][]byte{
		[]byte("id=999999;pad=0042"),
		[]byte("id=0;pad=0000"),
		[]byte("id=123;pad=9999"),
	} {
		comp := p.Compress(s)
		got, err := p.Decompress(comp)
		if err != nil || !bytes.Equal(got, s) {
			t.Fatalf("numeric roundtrip %q -> %q (%v)", s, got, err)
		}
	}
}

func TestPBCDecompressCorrupt(t *testing.T) {
	p := NewPBC()
	p.Train(workload.Sample(workload.NewKV1(), 100))
	if _, err := p.Decompress(nil); err == nil {
		t.Fatal("nil input should fail")
	}
	if _, err := p.Decompress([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("bad pattern id should fail")
	}
}

func TestDeflateDecompressCorrupt(t *testing.T) {
	d := NewDeflate(6, false)
	if _, err := d.Decompress([]byte{1, 2, 3, 4}); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestDeflateRetrainInvalidatesPool(t *testing.T) {
	d := NewDeflate(6, true)
	s1 := workload.Sample(workload.NewKV1(), 100)
	d.Train(s1)
	rec := workload.NewKV1().Record(42)
	c1 := d.Compress(rec)
	// Retrain on different data; old pooled writers must not leak old dict.
	d.Train(workload.Sample(workload.NewCities(), 100))
	c2 := d.Compress(rec)
	if got, err := d.Decompress(c2); err != nil || !bytes.Equal(got, rec) {
		t.Fatalf("post-retrain roundtrip: %v", err)
	}
	_ = c1 // c1 is undecodable now (old dict) — that's expected semantics
}

func TestByName(t *testing.T) {
	for _, name := range []string{"raw", "deflate", "deflate-dict", "pbc", "zstd-b", "zstd-d", ""} {
		if _, err := ByName(name, 0); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("lzma", 0); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestTrainDictionary(t *testing.T) {
	samples := [][]byte{
		[]byte("the quick brown fox jumps over"),
		[]byte("the quick brown fox leaps over"),
		[]byte("the quick brown fox runs away now"),
	}
	dict := TrainDictionary(samples, 1024)
	if len(dict) == 0 {
		t.Fatal("empty dictionary from repetitive samples")
	}
	if len(dict) > 1024 {
		t.Fatalf("dictionary exceeds max: %d", len(dict))
	}
	if !bytes.Contains(dict, []byte("quick brown fox")) && !bytes.Contains(dict, []byte("the quick brown")) {
		t.Logf("dict: %q", dict)
		t.Fatal("dictionary missing frequent phrase")
	}
}

func TestTrainDictionaryEmpty(t *testing.T) {
	if d := TrainDictionary(nil, 100); len(d) != 0 {
		t.Fatalf("nil samples produced dict of %d bytes", len(d))
	}
}

func TestMonitorRetrainOnRatioDrift(t *testing.T) {
	m := NewMonitor(0.3)
	m.MinRecords = 10
	for i := 0; i < 20; i++ {
		m.Observe(100, 31, false) // 0.31 within slack of 0.3*1.15
	}
	if m.RetrainNeeded() {
		t.Fatal("within slack should not trigger")
	}
	for i := 0; i < 200; i++ {
		m.Observe(100, 90, false) // degraded ratio
	}
	if !m.RetrainNeeded() {
		t.Fatalf("ratio drift not detected: ratio=%.3f", m.Ratio())
	}
	m.Reset(0.9)
	if m.RetrainNeeded() || m.Records() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestMonitorRetrainOnUnmatched(t *testing.T) {
	m := NewMonitor(0.5)
	m.MinRecords = 10
	for i := 0; i < 100; i++ {
		m.Observe(100, 40, i%5 == 0) // 20% unmatched > 5% threshold
	}
	if !m.RetrainNeeded() {
		t.Fatalf("unmatched drift not detected: rate=%.3f", m.UnmatchedRate())
	}
}

func TestMonitorMinRecords(t *testing.T) {
	m := NewMonitor(0.1)
	m.Observe(100, 99, true)
	if m.RetrainNeeded() {
		t.Fatal("tiny sample should not trigger")
	}
}

func TestRecommendPicksCompressive(t *testing.T) {
	samples := workload.Sample(workload.NewKV2(), 400)
	best, all := Recommend(samples, 0)
	if len(all) != 4 {
		t.Fatalf("expected 4 candidates, got %d", len(all))
	}
	if best.Name == "raw" {
		t.Fatal("raw should not win on compressible data")
	}
	if best.Ratio >= 1 {
		t.Fatalf("winner ratio %.3f", best.Ratio)
	}
}

func TestRecommendHonorsSpeedBudget(t *testing.T) {
	samples := workload.Sample(workload.NewKV1(), 200)
	// Absurdly tight budget: only raw qualifies (or the fastest fallback).
	best, _ := Recommend(samples, 1)
	if best.Name != "raw" && best.CompressNsPerOp > 1000 {
		t.Fatalf("budget ignored: %+v", best)
	}
}

func TestRecommendEmptySample(t *testing.T) {
	best, _ := Recommend(nil, 0)
	if best.Name != "raw" {
		t.Fatalf("empty sample should recommend raw, got %s", best.Name)
	}
}

func TestMeasureRatioEmpty(t *testing.T) {
	if r := MeasureRatio(Raw{}, nil); r != 1 {
		t.Fatalf("ratio of nothing = %f", r)
	}
}

func TestTokenizeClasses(t *testing.T) {
	toks := tokenize([]byte("abc123-def"))
	if len(toks) != 4 {
		t.Fatalf("tokens: %d", len(toks))
	}
	if toks[0].class != classAlpha || toks[1].class != classDigit ||
		toks[2].class != classDelim || toks[3].class != classAlpha {
		t.Fatalf("classes wrong: %+v", toks)
	}
}

func TestSimilarityMetric(t *testing.T) {
	a := tokenize([]byte("status=ACTIVE"))
	b := tokenize([]byte("status=PAUSED"))
	c := tokenize([]byte("1,2,3"))
	if s := similarity(a, b); s < 0.8 {
		t.Fatalf("similar records scored %.2f", s)
	}
	if s := similarity(a, c); s != 0 {
		t.Fatalf("dissimilar records scored %.2f", s)
	}
	if s := similarity(a, a); s != 1 {
		t.Fatalf("self similarity %.2f", s)
	}
}
