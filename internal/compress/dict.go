package compress

import (
	"sort"
)

// TrainDictionary builds a preset dictionary from sample records for use
// with DEFLATE's preset-dictionary mode, mirroring Zstd's pre-training
// phase ("Zstd builds a dictionary by identifying frequent strings in the
// data", paper §4.2).
//
// Method: count fixed-length shingles across samples, greedily select the
// highest-coverage ones, then join them most-frequent-last (DEFLATE match
// distances are cheapest near the end of the dictionary).
func TrainDictionary(samples [][]byte, maxSize int) []byte {
	if maxSize <= 0 {
		maxSize = 4 << 10
	}
	const shingle = 16
	counts := make(map[string]int)
	for _, s := range samples {
		if len(s) < shingle {
			if len(s) > 0 {
				counts[string(s)]++
			}
			continue
		}
		// Step by 4 to bound work while still catching frequent runs.
		for i := 0; i+shingle <= len(s); i += 4 {
			counts[string(s[i:i+shingle])]++
		}
	}
	type sc struct {
		s string
		n int
	}
	cands := make([]sc, 0, len(counts))
	for s, n := range counts {
		if n >= 2 { // singletons carry no dictionary value
			cands = append(cands, sc{s, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].s < cands[j].s // deterministic tie-break
	})
	// Greedy selection with overlap suppression: skip shingles already
	// contained in the dictionary built so far.
	var picked []string
	total := 0
	seen := make(map[string]bool)
	for _, c := range cands {
		if total+len(c.s) > maxSize {
			break
		}
		if seen[c.s] {
			continue
		}
		seen[c.s] = true
		picked = append(picked, c.s)
		total += len(c.s)
	}
	// Most frequent goes last (closest match distance).
	dict := make([]byte, 0, total)
	for i := len(picked) - 1; i >= 0; i-- {
		dict = append(dict, picked[i]...)
	}
	return dict
}
