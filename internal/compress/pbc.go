package compress

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// PBC is the Pattern-Based Compressor (paper §4.2, ref [59]): the offline
// phase tokenizes sample records, clusters them hierarchically by token
// structure with a similarity metric, and extracts per-cluster patterns —
// templates of literal segments and variable slots. The online phase
// matches each record against the pattern set and encodes only the slot
// values (enum-indexed, numeric-packed, or raw); unmatched records are
// escape-coded verbatim and counted (the monitor uses that signal to
// trigger re-training).
type PBC struct {
	mu       sync.RWMutex
	patterns []*pattern
	byShape  map[string]int // shape key -> pattern index
	residual *Deflate       // optional second-stage coder for long raw slots
}

// token classes
type tokenClass uint8

const (
	classDelim tokenClass = iota // punctuation/whitespace run (kept literal)
	classDigit                   // [0-9]+
	classAlpha                   // [A-Za-z]+
	classMixed                   // other non-delimiter runs
)

type token struct {
	class tokenClass
	text  []byte
}

// segment is one element of a pattern: a fixed literal or a variable slot.
type segment struct {
	literal []byte     // non-nil => literal segment
	class   tokenClass // slot class when literal == nil
	enum    map[string]int
	enumLst [][]byte
}

type pattern struct {
	segs []segment
}

// slot encoding modes
const (
	slotRaw     = 0 // varint len + bytes
	slotEnum    = 1 // varint enum index
	slotNum     = 2 // varint value (digits, no leading zeros)
	slotNumPad  = 3 // varint digit-count + varint value (leading zeros)
	slotRawComp = 4 // varint len + deflate-compressed bytes (long raw slots)
)

// escape pattern id: record stored verbatim.
const pbcEscape = 0

// maxEnumCard bounds enum tables per slot.
const maxEnumCard = 200

// NewPBC returns an untrained PBC compressor (everything escape-coded
// until Train is called).
func NewPBC() *PBC {
	return &PBC{byShape: map[string]int{}, residual: NewDeflate(6, false)}
}

// Name implements Compressor.
func (p *PBC) Name() string { return "pbc" }

// --- tokenization ---

func classify(b byte) tokenClass {
	switch {
	case b >= '0' && b <= '9':
		return classDigit
	case (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z'):
		return classAlpha
	default:
		return classDelim
	}
}

// tokenize splits src into runs of a single class; adjacent digit/alpha
// runs stay separate so numeric slots are isolated. Mixed runs arise when
// merging clusters, not during lexing.
func tokenize(src []byte) []token {
	var out []token
	i := 0
	for i < len(src) {
		c := classify(src[i])
		j := i + 1
		for j < len(src) && classify(src[j]) == c {
			j++
		}
		out = append(out, token{class: c, text: src[i:j]})
		i = j
	}
	return out
}

// shapeKey summarizes token structure: delimiters literally, others by class.
func shapeKey(toks []token) string {
	var b bytes.Buffer
	for _, t := range toks {
		switch t.class {
		case classDelim:
			b.Write(t.text)
		case classDigit:
			b.WriteByte(0x01)
		case classAlpha:
			b.WriteByte(0x02)
		default:
			b.WriteByte(0x03)
		}
	}
	return b.String()
}

// --- training: hierarchical clustering + pattern extraction ---

type cluster struct {
	toks   [][]token // member token sequences
	protoN int       // token count (all members share it)
}

// similarity is the fraction of token positions where two equal-length
// token sequences agree on class, weighted by literal agreement. This is
// the clustering metric; sequences of different lengths score 0.
func similarity(a, b []token) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	match := 0.0
	for i := range a {
		if a[i].class != b[i].class {
			continue
		}
		if bytes.Equal(a[i].text, b[i].text) {
			match += 1.0
		} else {
			match += 0.5
		}
	}
	return match / float64(len(a))
}

// Train implements Compressor: cluster samples and extract patterns.
func (p *PBC) Train(samples [][]byte) error {
	// Level 1: exact-shape leaf clusters.
	leaves := map[string]*cluster{}
	var order []string
	for _, s := range samples {
		if len(s) == 0 {
			continue
		}
		toks := tokenize(s)
		key := shapeKey(toks)
		cl, ok := leaves[key]
		if !ok {
			cl = &cluster{protoN: len(toks)}
			leaves[key] = cl
			order = append(order, key)
		}
		if len(cl.toks) < 64 { // cap retained members per cluster
			cl.toks = append(cl.toks, toks)
		}
	}
	sort.Strings(order) // determinism

	// Level 2: agglomerative merge of leaf clusters whose representative
	// sequences are similar (same token count, aligned classes). Merged
	// clusters widen literal positions into slots.
	const mergeThreshold = 0.85
	var merged []*cluster
	for _, key := range order {
		cl := leaves[key]
		placed := false
		for _, m := range merged {
			if m.protoN == cl.protoN && similarity(m.toks[0], cl.toks[0]) >= mergeThreshold {
				m.toks = append(m.toks, cl.toks...)
				placed = true
				break
			}
		}
		if !placed {
			merged = append(merged, cl)
		}
	}

	// Pattern extraction: a position is a literal iff every member agrees
	// byte-for-byte; otherwise it becomes a slot (class = widest member
	// class), with an enum table when cardinality is small.
	patterns := make([]*pattern, 0, len(merged))
	byShape := map[string]int{}
	for _, m := range merged {
		pat := &pattern{}
		n := m.protoN
		for pos := 0; pos < n; pos++ {
			first := m.toks[0][pos]
			allEqual := true
			class := first.class
			values := map[string]struct{}{}
			for _, toks := range m.toks {
				t := toks[pos]
				if !bytes.Equal(t.text, first.text) {
					allEqual = false
				}
				if t.class != class {
					class = classMixed
				}
				if len(values) <= maxEnumCard {
					values[string(t.text)] = struct{}{}
				}
			}
			if allEqual {
				pat.segs = append(pat.segs, segment{literal: append([]byte(nil), first.text...)})
				continue
			}
			seg := segment{class: class}
			// Enum table only when we saw a small, closed value set and
			// the slot is non-numeric (numbers pack better as varints).
			if class == classAlpha && len(values) <= maxEnumCard && len(m.toks) >= 2*len(values) {
				seg.enum = map[string]int{}
				keys := make([]string, 0, len(values))
				for v := range values {
					keys = append(keys, v)
				}
				sort.Strings(keys)
				for i, v := range keys {
					seg.enum[v] = i
					seg.enumLst = append(seg.enumLst, []byte(v))
				}
			}
			pat.segs = append(pat.segs, seg)
		}
		patterns = append(patterns, pat)
		// Register every member shape so lookups hit the merged pattern.
		for _, toks := range m.toks {
			byShape[shapeKey(toks)] = len(patterns) - 1
		}
	}

	p.mu.Lock()
	p.patterns = patterns
	p.byShape = byShape
	p.mu.Unlock()
	return nil
}

// PatternCount reports the number of trained patterns.
func (p *PBC) PatternCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.patterns)
}

// --- compression ---

// Compress implements Compressor.
func (p *PBC) Compress(src []byte) []byte {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.patterns) > 0 && len(src) > 0 {
		toks := tokenize(src)
		if idx, ok := p.byShape[shapeKey(toks)]; ok {
			if out, ok := p.encodeWith(idx, p.patterns[idx], toks); ok {
				return out
			}
		} else {
			// Hierarchical fallback: try same-length patterns (the record
			// may match a merged pattern whose shape set didn't include
			// this exact variant).
			for idx, pat := range p.patterns {
				if len(pat.segs) != len(toks) {
					continue
				}
				if out, ok := p.encodeWith(idx, pat, toks); ok {
					return out
				}
			}
		}
	}
	// Escape: pattern id 0, verbatim payload.
	out := make([]byte, 0, len(src)+1)
	out = append(out, pbcEscape)
	out = append(out, src...)
	return out
}

func (p *PBC) encodeWith(idx int, pat *pattern, toks []token) ([]byte, bool) {
	if len(toks) != len(pat.segs) {
		return nil, false
	}
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(idx+1))
	out = append(out, tmp[:n]...)
	for i, seg := range pat.segs {
		t := toks[i]
		if seg.literal != nil {
			if !bytes.Equal(seg.literal, t.text) {
				return nil, false
			}
			continue
		}
		out = p.encodeSlot(out, seg, t)
	}
	return out, true
}

func (p *PBC) encodeSlot(out []byte, seg segment, t token) []byte {
	var tmp [binary.MaxVarintLen64]byte
	// Enum hit: single index byte stream.
	if seg.enum != nil {
		if idx, ok := seg.enum[string(t.text)]; ok {
			out = append(out, slotEnum)
			n := binary.PutUvarint(tmp[:], uint64(idx))
			return append(out, tmp[:n]...)
		}
	}
	// Numeric packing for digit runs that fit uint64.
	if t.class == classDigit && len(t.text) <= 19 {
		var v uint64
		ok := true
		for _, b := range t.text {
			if b < '0' || b > '9' {
				ok = false
				break
			}
			v = v*10 + uint64(b-'0')
		}
		if ok {
			if len(t.text) > 1 && t.text[0] == '0' {
				out = append(out, slotNumPad)
				n := binary.PutUvarint(tmp[:], uint64(len(t.text)))
				out = append(out, tmp[:n]...)
				n = binary.PutUvarint(tmp[:], v)
				return append(out, tmp[:n]...)
			}
			out = append(out, slotNum)
			n := binary.PutUvarint(tmp[:], v)
			return append(out, tmp[:n]...)
		}
	}
	// Long raw slots get a second-stage string compression pass
	// ("residual strings are then compressed further", §4.2).
	if len(t.text) >= 64 {
		comp := p.residual.Compress(t.text)
		if len(comp) < len(t.text) {
			out = append(out, slotRawComp)
			n := binary.PutUvarint(tmp[:], uint64(len(comp)))
			out = append(out, tmp[:n]...)
			return append(out, comp...)
		}
	}
	out = append(out, slotRaw)
	n := binary.PutUvarint(tmp[:], uint64(len(t.text)))
	out = append(out, tmp[:n]...)
	return append(out, t.text...)
}

// --- decompression ---

// Decompress implements Compressor.
func (p *PBC) Decompress(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, ErrCorrupt
	}
	if src[0] == pbcEscape {
		return append([]byte(nil), src[1:]...), nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	id, n := binary.Uvarint(src)
	if n <= 0 || id == 0 || int(id) > len(p.patterns) {
		return nil, fmt.Errorf("%w: bad pattern id", ErrCorrupt)
	}
	pat := p.patterns[id-1]
	pos := n
	var out []byte
	for _, seg := range pat.segs {
		if seg.literal != nil {
			out = append(out, seg.literal...)
			continue
		}
		if pos >= len(src) {
			return nil, fmt.Errorf("%w: truncated slot", ErrCorrupt)
		}
		mode := src[pos]
		pos++
		switch mode {
		case slotRaw:
			l, n := binary.Uvarint(src[pos:])
			if n <= 0 || pos+n+int(l) > len(src) {
				return nil, fmt.Errorf("%w: bad raw slot", ErrCorrupt)
			}
			pos += n
			out = append(out, src[pos:pos+int(l)]...)
			pos += int(l)
		case slotRawComp:
			l, n := binary.Uvarint(src[pos:])
			if n <= 0 || pos+n+int(l) > len(src) {
				return nil, fmt.Errorf("%w: bad compressed slot", ErrCorrupt)
			}
			pos += n
			dec, err := p.residual.Decompress(src[pos : pos+int(l)])
			if err != nil {
				return nil, err
			}
			out = append(out, dec...)
			pos += int(l)
		case slotEnum:
			idx, n := binary.Uvarint(src[pos:])
			if n <= 0 || seg.enumLst == nil || int(idx) >= len(seg.enumLst) {
				return nil, fmt.Errorf("%w: bad enum slot", ErrCorrupt)
			}
			pos += n
			out = append(out, seg.enumLst[idx]...)
		case slotNum:
			v, n := binary.Uvarint(src[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad numeric slot", ErrCorrupt)
			}
			pos += n
			out = appendUint(out, v)
		case slotNumPad:
			digits, n := binary.Uvarint(src[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad padded slot", ErrCorrupt)
			}
			pos += n
			v, n := binary.Uvarint(src[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad padded slot value", ErrCorrupt)
			}
			pos += n
			start := len(out)
			out = appendUint(out, v)
			for uint64(len(out)-start) < digits {
				out = append(out[:start], append([]byte{'0'}, out[start:]...)...)
			}
		default:
			return nil, fmt.Errorf("%w: unknown slot mode %d", ErrCorrupt, mode)
		}
	}
	if pos != len(src) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return out, nil
}

func appendUint(out []byte, v uint64) []byte {
	var buf [20]byte
	i := len(buf)
	if v == 0 {
		return append(out, '0')
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(out, buf[i:]...)
}

var _ Compressor = (*PBC)(nil)
