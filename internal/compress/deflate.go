package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Deflate is the Zstandard stand-in: stdlib DEFLATE, optionally with a
// pre-trained preset dictionary. With pretrained=false it corresponds to
// the paper's Zstd-b (online analysis only); with pretrained=true and a
// Train call, to Zstd-d.
type Deflate struct {
	level      int
	pretrained bool

	mu   sync.RWMutex
	dict []byte

	wpool sync.Pool // *flate.Writer, built lazily per current dict
	wgen  int       // bumped on retrain to invalidate pooled writers
}

// NewDeflate creates a DEFLATE compressor at level (1..9, 0 = 6).
func NewDeflate(level int, pretrained bool) *Deflate {
	if level == 0 {
		level = 6
	}
	if level < flate.HuffmanOnly {
		level = flate.HuffmanOnly
	}
	if level > flate.BestCompression {
		level = flate.BestCompression
	}
	return &Deflate{level: level, pretrained: pretrained}
}

// Name implements Compressor.
func (d *Deflate) Name() string {
	if d.pretrained {
		return "deflate-dict"
	}
	return "deflate"
}

// Level returns the configured compression level.
func (d *Deflate) Level() int { return d.level }

// Train implements Compressor: builds the preset dictionary. For the
// non-pretrained variant it is a no-op, matching Zstd-b.
func (d *Deflate) Train(samples [][]byte) error {
	if !d.pretrained {
		return nil
	}
	dict := TrainDictionary(samples, 8<<10)
	d.mu.Lock()
	d.dict = dict
	d.wgen++
	d.wpool = sync.Pool{} // drop writers bound to the old dictionary
	d.mu.Unlock()
	return nil
}

type pooledWriter struct {
	w   *flate.Writer
	gen int
}

// Compress implements Compressor.
func (d *Deflate) Compress(src []byte) []byte {
	d.mu.RLock()
	dict := d.dict
	gen := d.wgen
	d.mu.RUnlock()

	var buf bytes.Buffer
	buf.Grow(len(src)/2 + 16)
	var fw *flate.Writer
	if pw, ok := d.wpool.Get().(*pooledWriter); ok && pw.gen == gen {
		fw = pw.w
		fw.Reset(&buf)
	} else {
		var err error
		if len(dict) > 0 {
			fw, err = flate.NewWriterDict(&buf, d.level, dict)
		} else {
			fw, err = flate.NewWriter(&buf, d.level)
		}
		if err != nil {
			// Level is validated in NewDeflate; this cannot happen.
			panic(fmt.Sprintf("compress: flate writer: %v", err))
		}
	}
	fw.Write(src)
	fw.Close()
	d.wpool.Put(&pooledWriter{w: fw, gen: gen})
	return buf.Bytes()
}

// Decompress implements Compressor.
func (d *Deflate) Decompress(src []byte) ([]byte, error) {
	d.mu.RLock()
	dict := d.dict
	d.mu.RUnlock()
	var fr io.ReadCloser
	if len(dict) > 0 {
		fr = flate.NewReaderDict(bytes.NewReader(src), dict)
	} else {
		fr = flate.NewReader(bytes.NewReader(src))
	}
	defer fr.Close()
	out, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// Dict returns the current trained dictionary (nil before Train).
func (d *Deflate) Dict() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.dict
}

var _ Compressor = (*Deflate)(nil)
