package compress

import (
	"time"
)

// Recommendation is the recommender's verdict for one candidate.
type Recommendation struct {
	Name            string
	Ratio           float64 // compressed/raw, lower is better
	CompressNsPerOp float64
	DecompNsPerOp   float64
	Score           float64 // lower is better
}

// Recommend implements the Insight compressor recommender (paper §4.2):
// it trains every candidate on the sample, measures ratio plus compress /
// decompress speed, and "automatically suggests the optimal compressor
// based on data types and performance requirements".
//
// maxCompressNs bounds acceptable per-record compression time (0 = no
// bound); among acceptable candidates the best ratio wins. When every
// candidate violates the bound, the fastest is returned.
func Recommend(samples [][]byte, maxCompressNs float64) (best Recommendation, all []Recommendation) {
	candidates := []Compressor{
		Raw{},
		NewDeflate(6, false),
		NewDeflate(6, true),
		NewPBC(),
	}
	if len(samples) == 0 {
		return Recommendation{Name: "raw", Ratio: 1, Score: 1}, nil
	}
	// Train on the first half, evaluate on the second: guards against a
	// candidate that memorizes the sample.
	half := len(samples) / 2
	if half == 0 {
		half = len(samples)
	}
	train, eval := samples[:half], samples[half:]
	if len(eval) == 0 {
		eval = train
	}

	for _, c := range candidates {
		if err := c.Train(train); err != nil {
			continue
		}
		rec := measure(c, eval)
		all = append(all, rec)
	}
	best = all[0]
	chosen := false
	for _, r := range all {
		ok := maxCompressNs <= 0 || r.CompressNsPerOp <= maxCompressNs
		if ok && (!chosen || r.Ratio < best.Ratio) {
			best = r
			chosen = true
		}
	}
	if !chosen {
		// Nothing met the speed budget: pick the fastest compressor.
		for _, r := range all {
			if r.CompressNsPerOp < best.CompressNsPerOp {
				best = r
			}
		}
	}
	return best, all
}

func measure(c Compressor, eval [][]byte) Recommendation {
	var rawB, compB int64
	compressed := make([][]byte, len(eval))
	start := time.Now()
	for i, r := range eval {
		out := c.Compress(r)
		compressed[i] = out
		rawB += int64(len(r))
		compB += int64(len(out))
	}
	compDur := time.Since(start)
	start = time.Now()
	for _, out := range compressed {
		c.Decompress(out) //nolint:errcheck — timing loop; corrupt data impossible here
	}
	decDur := time.Since(start)
	n := float64(len(eval))
	ratio := 1.0
	if rawB > 0 {
		ratio = float64(compB) / float64(rawB)
	}
	return Recommendation{
		Name:            c.Name(),
		Ratio:           ratio,
		CompressNsPerOp: float64(compDur.Nanoseconds()) / n,
		DecompNsPerOp:   float64(decDur.Nanoseconds()) / n,
		Score:           ratio,
	}
}
