package compress

import (
	"sync"
)

// Monitor continuously tracks compression efficiency in production and
// decides when re-sampling and re-training are necessary (paper §4.2:
// "re-sampling and retraining are triggered when the compression ratio
// falls below a baseline level or when the rate of unmatched records
// exceeds a predefined threshold").
//
// Note on polarity: the paper's compression ratio is compressed/raw, so
// *lower* is better and "falls below a baseline" in the paper's prose means
// the achieved saving degrades — here expressed as the measured ratio
// *exceeding* BaselineRatio.
type Monitor struct {
	mu        sync.Mutex
	rawBytes  int64
	compBytes int64
	records   int64
	unmatched int64

	// BaselineRatio is the acceptable compressed/raw ratio; exceeding it
	// flags retraining. Set from the ratio achieved right after training.
	BaselineRatio float64
	// Slack multiplies the baseline before comparison (default 1.15).
	Slack float64
	// UnmatchedThreshold is the tolerated unmatched-record fraction
	// (default 0.05). Only meaningful for pattern compressors.
	UnmatchedThreshold float64
	// MinRecords avoids flapping on tiny samples (default 1000).
	MinRecords int64
}

// NewMonitor creates a monitor with the given post-training baseline ratio.
func NewMonitor(baseline float64) *Monitor {
	return &Monitor{
		BaselineRatio:      baseline,
		Slack:              1.15,
		UnmatchedThreshold: 0.05,
		MinRecords:         1000,
	}
}

// Observe records one compression outcome. unmatched reports whether the
// record failed pattern matching (escape-coded).
func (m *Monitor) Observe(rawLen, compLen int, unmatched bool) {
	m.mu.Lock()
	m.rawBytes += int64(rawLen)
	m.compBytes += int64(compLen)
	m.records++
	if unmatched {
		m.unmatched++
	}
	m.mu.Unlock()
}

// Ratio returns the observed compressed/raw ratio (1.0 when no data).
func (m *Monitor) Ratio() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rawBytes == 0 {
		return 1
	}
	return float64(m.compBytes) / float64(m.rawBytes)
}

// UnmatchedRate returns the fraction of records that missed all patterns.
func (m *Monitor) UnmatchedRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.records == 0 {
		return 0
	}
	return float64(m.unmatched) / float64(m.records)
}

// Records returns the number of observed records.
func (m *Monitor) Records() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.records
}

// RetrainNeeded reports whether the drift thresholds are exceeded.
func (m *Monitor) RetrainNeeded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.records < m.MinRecords {
		return false
	}
	if m.rawBytes > 0 {
		ratio := float64(m.compBytes) / float64(m.rawBytes)
		if m.BaselineRatio > 0 && ratio > m.BaselineRatio*m.Slack {
			return true
		}
	}
	if float64(m.unmatched)/float64(m.records) > m.UnmatchedThreshold {
		return true
	}
	return false
}

// Reset clears counters after a retrain; baseline is the fresh
// post-training ratio.
func (m *Monitor) Reset(baseline float64) {
	m.mu.Lock()
	m.rawBytes, m.compBytes, m.records, m.unmatched = 0, 0, 0, 0
	m.BaselineRatio = baseline
	m.mu.Unlock()
}

// IsEscape reports whether a PBC-compressed buffer is an escape record
// (used by callers to feed Monitor.Observe's unmatched flag).
func IsEscape(compressed []byte) bool {
	return len(compressed) > 0 && compressed[0] == pbcEscape
}
