package baselines

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// conformance exercises the System contract shared by every baseline.
func conformance(t *testing.T, s System) {
	t.Helper()
	if s.Name() == "" {
		t.Fatal("empty name")
	}
	if err := s.Set("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("k1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("%s get: %q %v", s.Name(), v, err)
	}
	if _, err := s.Get("ghost"); err != ErrNotFound {
		t.Fatalf("%s missing key: %v", s.Name(), err)
	}
	if err := s.Set("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("k1")
	if string(v) != "v2" {
		t.Fatalf("%s overwrite: %q", s.Name(), v)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k1"); err != ErrNotFound {
		t.Fatalf("%s delete: %v", s.Name(), err)
	}
	// Bulk + memory accounting.
	val := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 200; i++ {
		s.Set(fmt.Sprintf("bulk%03d", i), val)
	}
	if s.MemBytes() <= 0 && s.DiskBytes() <= 0 {
		t.Fatalf("%s reports no footprint", s.Name())
	}
	// Concurrency smoke.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("c%d-%d", g, i)
				s.Set(k, val)
				if got, err := s.Get(k); err != nil || !bytes.Equal(got, val) {
					t.Errorf("%s concurrent get: %v", s.Name(), err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRedisLike(t *testing.T) {
	r, err := NewRedisLike("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	conformance(t, r)
	if r.DiskBytes() != 0 {
		t.Fatal("no-AOF redis should have no disk")
	}
}

func TestRedisLikeMultiThread(t *testing.T) {
	r, err := NewRedisLike("", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Name() != "redis-m" {
		t.Fatalf("name %s", r.Name())
	}
	conformance(t, r)
}

func TestRedisLikeAOF(t *testing.T) {
	r, err := NewRedisLike(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Name() != "redis-aof" {
		t.Fatalf("name %s", r.Name())
	}
	conformance(t, r)
	if r.DiskBytes() == 0 {
		t.Fatal("AOF redis should report disk usage")
	}
}

func TestMemcachedLike(t *testing.T) {
	m := NewMemcachedLike(0, 4)
	defer m.Close()
	conformance(t, m)
}

func TestMemcachedEviction(t *testing.T) {
	m := NewMemcachedLike(8<<10, 1)
	defer m.Close()
	val := bytes.Repeat([]byte("v"), 256)
	for i := 0; i < 100; i++ {
		m.Set(fmt.Sprintf("e%03d", i), val)
	}
	if m.MemBytes() > 9<<10 {
		t.Fatalf("capacity not enforced: %d", m.MemBytes())
	}
	// Newest keys must survive; oldest evicted.
	if _, err := m.Get("e099"); err != nil {
		t.Fatal("newest evicted")
	}
	if _, err := m.Get("e000"); err != ErrNotFound {
		t.Fatal("oldest survived beyond capacity")
	}
}

func TestMemcachedLRUTouchOnGet(t *testing.T) {
	m := NewMemcachedLike(2<<10, 1)
	defer m.Close()
	val := bytes.Repeat([]byte("v"), 200)
	m.Set("keep", val)
	m.Set("drop", val)
	m.Get("keep") // touch
	for i := 0; i < 20; i++ {
		m.Set(fmt.Sprintf("fill%d", i), val)
	}
	// "keep" was touched later than "drop", so "drop" must go first. Both
	// may be gone under heavy fill, but keep must never outlive drop.
	_, errKeep := m.Get("keep")
	_, errDrop := m.Get("drop")
	if errDrop == nil && errKeep == ErrNotFound {
		t.Fatal("LRU inverted: touched key evicted before untouched")
	}
}

func TestMemcachedLowerOverheadThanRedis(t *testing.T) {
	// The fig10 premise: memcached's SC sits below Redis's.
	r, _ := NewRedisLike("", 1)
	defer r.Close()
	m := NewMemcachedLike(0, 4)
	defer m.Close()
	val := bytes.Repeat([]byte("v"), 64)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key%06d", i)
		r.Set(k, val)
		m.Set(k, val)
	}
	if m.MemBytes() >= r.MemBytes() {
		t.Fatalf("memcached (%d) should use less memory than redis (%d)", m.MemBytes(), r.MemBytes())
	}
}

func TestDragonflyLike(t *testing.T) {
	d := NewDragonflyLike(4)
	defer d.Close()
	conformance(t, d)
}

func TestDragonflyShardIsolation(t *testing.T) {
	d := NewDragonflyLike(4)
	defer d.Close()
	for i := 0; i < 400; i++ {
		d.Set(fmt.Sprintf("iso%04d", i), []byte("v"))
	}
	populated := 0
	for _, sh := range d.shards {
		if sh.eng.Len() > 0 {
			populated++
		}
	}
	if populated < 3 {
		t.Fatalf("keys not spread: %d shards populated", populated)
	}
}

func TestCassandraLike(t *testing.T) {
	s, err := NewCassandraLike(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conformance(t, s)
	s.DB().Flush()
	if s.DiskBytes() == 0 {
		t.Fatal("no disk usage after flush")
	}
}

func TestHBaseLike(t *testing.T) {
	s, err := NewHBaseLike(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conformance(t, s)
}

func TestPersistentBaselineSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewCassandraLike(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Set("durable", []byte("yes"))
	s.Close()
	s2, err := NewCassandraLike(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Get("durable")
	if err != nil || string(v) != "yes" {
		t.Fatalf("recovery: %q %v", v, err)
	}
}

func TestBuildRegistry(t *testing.T) {
	for _, name := range []string{"redis", "redis-s", "redis-m", "redis-aof", "memcached", "dragonfly", "cassandra", "hbase"} {
		s, err := Build(name, t.TempDir())
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		s.Set("k", []byte("v"))
		if v, err := s.Get("k"); err != nil || string(v) != "v" {
			t.Fatalf("%s roundtrip: %v", name, err)
		}
		s.Close()
	}
	if _, err := Build("oracle", ""); err == nil {
		t.Fatal("unknown system accepted")
	}
}
