// Package baselines implements architecture-faithful miniatures of the
// systems the paper compares against (§6.1): Redis (single-threaded
// event loop, optional AOF persistence), Memcached (multi-threaded slab
// LRU cache), Dragonfly (shared-nothing thread-per-shard), Cassandra
// (size-tiered LSM) and HBase (leveled LSM with block cache).
//
// These are not protocol clones; they are cost-model stand-ins that
// reproduce each system's position in the space-performance plane:
// threading model (MaxPerf), storage format and overhead (MaxSpace), and
// persistence mechanism. See DESIGN.md's substitution table.
package baselines

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"tierbase/internal/elastic"
	"tierbase/internal/engine"
	"tierbase/internal/lsm"
	"tierbase/internal/wal"
)

// System is the uniform surface the benchmark harness drives.
type System interface {
	// Name labels the system in experiment output.
	Name() string
	Set(key string, val []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	// MemBytes approximates DRAM resident bytes.
	MemBytes() int64
	// DiskBytes approximates persistent bytes (0 for pure caches).
	DiskBytes() int64
	Close() error
}

// ErrNotFound is the shared absence error.
var ErrNotFound = errors.New("baselines: key not found")

// --- Redis-like: single-threaded event loop, optional AOF ---

// RedisLike serializes all commands through one worker (the event loop)
// and keeps everything in DRAM; with AOF enabled, every write is appended
// to a log fsynced once per second (appendfsync everysec).
type RedisLike struct {
	name string
	eng  *engine.Engine
	pool *elastic.Pool
	aof  *wal.Log
}

// NewRedisLike builds a single-threaded in-memory store. If dir != "",
// AOF persistence is enabled there. threads=1 is classic Redis; higher
// values model Redis-m (io-threads style parallelism).
func NewRedisLike(dir string, threads int) (*RedisLike, error) {
	if threads < 1 {
		threads = 1
	}
	r := &RedisLike{
		name: "redis",
		eng:  engine.New(engine.Options{}),
		pool: elastic.NewPool(elastic.PoolOptions{Fixed: threads, MaxWorkers: threads}),
	}
	if threads > 1 {
		r.name = "redis-m"
	}
	if dir != "" {
		log, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncInterval})
		if err != nil {
			return nil, err
		}
		r.aof = log
		r.name = "redis-aof"
	}
	return r, nil
}

// Name implements System.
func (r *RedisLike) Name() string { return r.name }

func encodeAOF(op byte, key string, val []byte) []byte {
	buf := make([]byte, 1+4+len(key)+len(val))
	buf[0] = op
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(key)))
	copy(buf[5:], key)
	copy(buf[5+len(key):], val)
	return buf
}

// Set implements System.
func (r *RedisLike) Set(key string, val []byte) error {
	var err error
	perr := r.pool.SubmitWait(func() {
		if r.aof != nil {
			if err = r.aof.Append(encodeAOF('S', key, val)); err != nil {
				return
			}
		}
		err = r.eng.Set(key, val)
	})
	if perr != nil {
		return perr
	}
	return err
}

// Get implements System.
func (r *RedisLike) Get(key string) ([]byte, error) {
	var v []byte
	var err error
	perr := r.pool.SubmitWait(func() { v, err = r.eng.Get(key) })
	if perr != nil {
		return nil, perr
	}
	if err == engine.ErrNotFound {
		return nil, ErrNotFound
	}
	return v, err
}

// Delete implements System.
func (r *RedisLike) Delete(key string) error {
	var err error
	perr := r.pool.SubmitWait(func() {
		if r.aof != nil {
			if err = r.aof.Append(encodeAOF('D', key, nil)); err != nil {
				return
			}
		}
		r.eng.Del(key)
	})
	if perr != nil {
		return perr
	}
	return err
}

// MemBytes implements System.
func (r *RedisLike) MemBytes() int64 { return r.eng.MemUsed() }

// DiskBytes implements System: AOF bytes (grows until rewrite; we report
// the logical write volume as the paper's dual-replica AOF cost does).
func (r *RedisLike) DiskBytes() int64 {
	if r.aof == nil {
		return 0
	}
	return r.eng.MemUsed() // post-rewrite AOF ≈ dataset size
}

// Engine exposes the engine (for replication in cost benches).
func (r *RedisLike) Engine() *engine.Engine { return r.eng }

// Close implements System.
func (r *RedisLike) Close() error {
	r.pool.Stop()
	if r.aof != nil {
		return r.aof.Close()
	}
	return nil
}

// --- Memcached-like: multi-threaded slab LRU ---

// MemcachedLike is a sharded, slab-accounted LRU cache: N lock-striped
// shards accessed directly by caller threads (memcached's worker-thread
// model), values stored with minimal per-item overhead, LRU eviction at
// capacity. No persistence, strings only.
type MemcachedLike struct {
	shards []*mcShard
	cap    int64 // per-shard byte capacity
}

type mcShard struct {
	mu    sync.Mutex
	items map[string]*mcItem
	head  *mcItem // LRU list: head = most recent
	tail  *mcItem
	used  int64
}

type mcItem struct {
	key        string
	val        []byte
	prev, next *mcItem
}

// mcOverhead is memcached's lean per-item bookkeeping cost (~48 B vs.
// Redis's ~64+ B robj overhead) — the reason it sits lowest on the SC axis
// among caches in Fig. 10.
const mcOverhead = 48

// NewMemcachedLike builds a cache with capBytes total capacity
// (0 = unbounded) over nShards lock stripes.
func NewMemcachedLike(capBytes int64, nShards int) *MemcachedLike {
	if nShards < 1 {
		nShards = 4
	}
	m := &MemcachedLike{cap: 0}
	if capBytes > 0 {
		m.cap = capBytes / int64(nShards)
	}
	for i := 0; i < nShards; i++ {
		m.shards = append(m.shards, &mcShard{items: make(map[string]*mcItem)})
	}
	return m
}

// Name implements System.
func (m *MemcachedLike) Name() string { return "memcached-m" }

func (m *MemcachedLike) shard(key string) *mcShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return m.shards[h%uint32(len(m.shards))]
}

func (s *mcShard) unlink(it *mcItem) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		s.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		s.tail = it.prev
	}
	it.prev, it.next = nil, nil
}

func (s *mcShard) pushFront(it *mcItem) {
	it.next = s.head
	it.prev = nil
	if s.head != nil {
		s.head.prev = it
	}
	s.head = it
	if s.tail == nil {
		s.tail = it
	}
}

// Set implements System.
func (m *MemcachedLike) Set(key string, val []byte) error {
	s := m.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, ok := s.items[key]; ok {
		s.used += int64(len(val) - len(it.val))
		it.val = append(it.val[:0], val...)
		s.unlink(it)
		s.pushFront(it)
	} else {
		it := &mcItem{key: key, val: append([]byte(nil), val...)}
		s.items[key] = it
		s.pushFront(it)
		s.used += int64(len(key)+len(val)) + mcOverhead
	}
	if m.cap > 0 {
		for s.used > m.cap && s.tail != nil {
			ev := s.tail
			s.unlink(ev)
			delete(s.items, ev.key)
			s.used -= int64(len(ev.key)+len(ev.val)) + mcOverhead
		}
	}
	return nil
}

// Get implements System.
func (m *MemcachedLike) Get(key string) ([]byte, error) {
	s := m.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.items[key]
	if !ok {
		return nil, ErrNotFound
	}
	s.unlink(it)
	s.pushFront(it)
	return append([]byte(nil), it.val...), nil
}

// Delete implements System.
func (m *MemcachedLike) Delete(key string) error {
	s := m.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, ok := s.items[key]; ok {
		s.unlink(it)
		delete(s.items, key)
		s.used -= int64(len(it.key)+len(it.val)) + mcOverhead
	}
	return nil
}

// MemBytes implements System.
func (m *MemcachedLike) MemBytes() int64 {
	var total int64
	for _, s := range m.shards {
		s.mu.Lock()
		total += s.used
		s.mu.Unlock()
	}
	return total
}

// DiskBytes implements System.
func (m *MemcachedLike) DiskBytes() int64 { return 0 }

// Close implements System.
func (m *MemcachedLike) Close() error { return nil }

// --- Dragonfly-like: shared-nothing thread-per-shard ---

// DragonflyLike partitions keys across single-owner shard goroutines
// communicating over channels — the shared-nothing architecture. Shards
// never share state, so scaling is lock-free but each hop pays a message.
type DragonflyLike struct {
	shards []*dfShard
}

type dfShard struct {
	eng   *engine.Engine
	reqCh chan func(e *engine.Engine)
	done  chan struct{}
}

// NewDragonflyLike builds an nShards shared-nothing store.
func NewDragonflyLike(nShards int) *DragonflyLike {
	if nShards < 1 {
		nShards = 4
	}
	d := &DragonflyLike{}
	for i := 0; i < nShards; i++ {
		sh := &dfShard{
			eng:   engine.New(engine.Options{}),
			reqCh: make(chan func(e *engine.Engine), 256),
			done:  make(chan struct{}),
		}
		go func(sh *dfShard) {
			defer close(sh.done)
			for fn := range sh.reqCh {
				fn(sh.eng)
			}
		}(sh)
		d.shards = append(d.shards, sh)
	}
	return d
}

// Name implements System.
func (d *DragonflyLike) Name() string { return "dragonfly-m" }

func (d *DragonflyLike) shard(key string) *dfShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return d.shards[h%uint32(len(d.shards))]
}

func (d *DragonflyLike) do(key string, fn func(e *engine.Engine)) {
	sh := d.shard(key)
	done := make(chan struct{})
	sh.reqCh <- func(e *engine.Engine) {
		fn(e)
		close(done)
	}
	<-done
}

// Set implements System.
func (d *DragonflyLike) Set(key string, val []byte) error {
	d.do(key, func(e *engine.Engine) { e.Set(key, val) })
	return nil
}

// Get implements System.
func (d *DragonflyLike) Get(key string) ([]byte, error) {
	var v []byte
	var err error
	d.do(key, func(e *engine.Engine) { v, err = e.Get(key) })
	if err == engine.ErrNotFound {
		return nil, ErrNotFound
	}
	return v, err
}

// Delete implements System.
func (d *DragonflyLike) Delete(key string) error {
	d.do(key, func(e *engine.Engine) { e.Del(key) })
	return nil
}

// MemBytes implements System.
func (d *DragonflyLike) MemBytes() int64 {
	var total int64
	for _, sh := range d.shards {
		total += sh.eng.MemUsed()
	}
	return total
}

// DiskBytes implements System.
func (d *DragonflyLike) DiskBytes() int64 { return 0 }

// Close implements System.
func (d *DragonflyLike) Close() error {
	for _, sh := range d.shards {
		close(sh.reqCh)
		<-sh.done
	}
	return nil
}

// --- Cassandra-like and HBase-like: persistent LSM stores ---

// LSMStore is the shared persistent-baseline shape: direct LSM access
// from caller threads, no cache tier, durability via commit log.
//
// reqCost injects the per-request processing cost of the real systems'
// request paths (JVM object churn, quorum coordination, SSTable format
// decode), which our lean Go LSM lacks. Without it the miniature's
// per-op cost is an order of magnitude below the real systems' relative
// to the cache-class stores, which would inverts the PC ordering the
// paper reports in Fig. 11/12 (see DESIGN.md §3 substitutions).
type LSMStore struct {
	name    string
	db      *lsm.DB
	reqCost time.Duration
}

// spinCost busy-waits to model CPU-bound request-path work.
func spinCost(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// NewCassandraLike builds a size-tiered LSM store (Cassandra's default
// compaction strategy) with a small memtable.
func NewCassandraLike(dir string) (*LSMStore, error) {
	db, err := lsm.Open(lsm.Options{
		Dir:           dir,
		Compaction:    lsm.SizeTiered,
		MemtableBytes: 2 << 20,
		WALSyncPolicy: wal.SyncInterval, // commitlog_sync: periodic
	})
	if err != nil {
		return nil, err
	}
	return &LSMStore{name: "cassandra", db: db, reqCost: 20 * time.Microsecond}, nil
}

// NewHBaseLike builds a leveled LSM store with a block cache (HBase's
// HFile/LSM with block cache read path).
func NewHBaseLike(dir string) (*LSMStore, error) {
	db, err := lsm.Open(lsm.Options{
		Dir:             dir,
		Compaction:      lsm.Leveled,
		MemtableBytes:   2 << 20,
		BlockCacheBytes: 16 << 20,
		WALSyncPolicy:   wal.SyncInterval,
	})
	if err != nil {
		return nil, err
	}
	return &LSMStore{name: "hbase", db: db, reqCost: 24 * time.Microsecond}, nil
}

// Name implements System.
func (s *LSMStore) Name() string { return s.name }

// Set implements System.
func (s *LSMStore) Set(key string, val []byte) error {
	spinCost(s.reqCost)
	return s.db.Put([]byte(key), val)
}

// Get implements System.
func (s *LSMStore) Get(key string) ([]byte, error) {
	spinCost(s.reqCost)
	v, err := s.db.Get([]byte(key))
	if err == lsm.ErrNotFound {
		return nil, ErrNotFound
	}
	return v, err
}

// Delete implements System.
func (s *LSMStore) Delete(key string) error {
	spinCost(s.reqCost)
	return s.db.Delete([]byte(key))
}

// MemBytes implements System: memtable + block cache.
func (s *LSMStore) MemBytes() int64 {
	st := s.db.Stats()
	return st.MemtableBytes + st.CacheBytes
}

// DiskBytes implements System.
func (s *LSMStore) DiskBytes() int64 { return s.db.Stats().DiskBytes }

// DB exposes the LSM database (for compaction control in benches).
func (s *LSMStore) DB() *lsm.DB { return s.db }

// Close implements System.
func (s *LSMStore) Close() error { return s.db.Close() }

// --- registry ---

// Build constructs a baseline by name; dir is used by persistent systems.
func Build(name, dir string) (System, error) {
	switch name {
	case "redis", "redis-s":
		return NewRedisLike("", 1)
	case "redis-m":
		return NewRedisLike("", 4)
	case "redis-aof":
		return NewRedisLike(dir, 1)
	case "memcached", "memcached-m":
		return NewMemcachedLike(0, 4), nil
	case "dragonfly", "dragonfly-m":
		return NewDragonflyLike(4), nil
	case "cassandra":
		return NewCassandraLike(dir)
	case "hbase":
		return NewHBaseLike(dir)
	default:
		return nil, fmt.Errorf("baselines: unknown system %q", name)
	}
}
