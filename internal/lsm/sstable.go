package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// SSTable layout:
//
//	data blocks   entry*, each: klen uvarint | vlen uvarint | seq uvarint |
//	              kind byte | key | value
//	index block   count uvarint, then per block:
//	              klen uvarint | lastKey | off uvarint | len uvarint | crc fixed32
//	bloom block   marshaled bloom filter over user keys
//	footer        48 bytes fixed: indexOff, indexLen, bloomOff, bloomLen,
//	              numEntries, magic (all little-endian uint64)
//
// Blocks are individually CRC-checked via the index. Tables are immutable
// once built, which is what makes the shared-nothing read path lock-free.

const (
	footerSize = 48
	tableMagic = 0x7462_5353_5461_626c // "tbSSTabl"
)

var (
	errBadMagic   = errors.New("lsm: bad sstable magic")
	errBadBlock   = errors.New("lsm: block checksum mismatch")
	errBadFooter  = errors.New("lsm: truncated sstable footer")
	crcTableCasta = crc32.MakeTable(crc32.Castagnoli)
)

// ErrBadBlock is the typed error reads surface when an SSTable block
// fails checksum verification (silent media corruption). Exported so
// fault-injection drills outside the package can assert on it; each
// occurrence also counts in Stats.BadBlocks.
var ErrBadBlock = errBadBlock

// tableMeta describes a finished table for the manifest.
type tableMeta struct {
	Num      uint64 `json:"num"`
	Size     int64  `json:"size"`
	Count    int64  `json:"count"`
	Smallest []byte `json:"smallest"`
	Largest  []byte `json:"largest"`
}

func tableFileName(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.sst", num))
}

// --- builder ---

type tableBuilder struct {
	f         *os.File
	w         *bufio.Writer
	path      string
	blockSize int
	bloomBPK  int

	blockBuf   bytes.Buffer
	blockFirst bool
	lastKey    []byte
	indexEnts  []indexEntry
	keysHashes [][]byte
	off        uint64
	count      int64
	smallest   []byte
	largest    []byte
}

type indexEntry struct {
	lastKey []byte
	off     uint64
	length  uint32
	crc     uint32
}

func newTableBuilder(path string, blockSize, bloomBitsPerKey int) (*tableBuilder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: create table: %w", err)
	}
	if blockSize <= 0 {
		blockSize = 4 << 10
	}
	return &tableBuilder{
		f: f, w: bufio.NewWriterSize(f, 256<<10), path: path,
		blockSize: blockSize, bloomBPK: bloomBitsPerKey, blockFirst: true,
	}, nil
}

// add appends an entry; keys must arrive in strictly increasing order.
func (b *tableBuilder) add(key []byte, e memEntry) error {
	if b.largest != nil && bytes.Compare(key, b.largest) <= 0 {
		return fmt.Errorf("lsm: keys out of order: %q after %q", key, b.largest)
	}
	if b.smallest == nil {
		b.smallest = append([]byte(nil), key...)
	}
	b.largest = append(b.largest[:0], key...)

	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	b.blockBuf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], uint64(len(e.value)))
	b.blockBuf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], e.seq)
	b.blockBuf.Write(tmp[:n])
	b.blockBuf.WriteByte(byte(e.kind))
	b.blockBuf.Write(key)
	b.blockBuf.Write(e.value)

	b.lastKey = append(b.lastKey[:0], key...)
	b.keysHashes = append(b.keysHashes, append([]byte(nil), key...))
	b.count++
	if b.blockBuf.Len() >= b.blockSize {
		return b.finishBlock()
	}
	return nil
}

func (b *tableBuilder) finishBlock() error {
	if b.blockBuf.Len() == 0 {
		return nil
	}
	data := b.blockBuf.Bytes()
	crc := crc32.Checksum(data, crcTableCasta)
	if _, err := b.w.Write(data); err != nil {
		return fmt.Errorf("lsm: write block: %w", err)
	}
	b.indexEnts = append(b.indexEnts, indexEntry{
		lastKey: append([]byte(nil), b.lastKey...),
		off:     b.off,
		length:  uint32(len(data)),
		crc:     crc,
	})
	b.off += uint64(len(data))
	b.blockBuf.Reset()
	return nil
}

// finish writes index, bloom and footer; returns table metadata.
func (b *tableBuilder) finish(num uint64) (tableMeta, error) {
	if err := b.finishBlock(); err != nil {
		return tableMeta{}, err
	}
	// index
	var idx bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b.indexEnts)))
	idx.Write(tmp[:n])
	for _, e := range b.indexEnts {
		n = binary.PutUvarint(tmp[:], uint64(len(e.lastKey)))
		idx.Write(tmp[:n])
		idx.Write(e.lastKey)
		n = binary.PutUvarint(tmp[:], e.off)
		idx.Write(tmp[:n])
		n = binary.PutUvarint(tmp[:], uint64(e.length))
		idx.Write(tmp[:n])
		var crcb [4]byte
		binary.LittleEndian.PutUint32(crcb[:], e.crc)
		idx.Write(crcb[:])
	}
	indexOff := b.off
	if _, err := b.w.Write(idx.Bytes()); err != nil {
		return tableMeta{}, fmt.Errorf("lsm: write index: %w", err)
	}
	b.off += uint64(idx.Len())

	// bloom
	bloom := newBloom(len(b.keysHashes), b.bloomBPK)
	for _, k := range b.keysHashes {
		bloom.Add(k)
	}
	bloomBytes := bloom.Marshal()
	bloomOff := b.off
	if _, err := b.w.Write(bloomBytes); err != nil {
		return tableMeta{}, fmt.Errorf("lsm: write bloom: %w", err)
	}
	b.off += uint64(len(bloomBytes))

	// footer
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], indexOff)
	binary.LittleEndian.PutUint64(footer[8:16], uint64(idx.Len()))
	binary.LittleEndian.PutUint64(footer[16:24], bloomOff)
	binary.LittleEndian.PutUint64(footer[24:32], uint64(len(bloomBytes)))
	binary.LittleEndian.PutUint64(footer[32:40], uint64(b.count))
	binary.LittleEndian.PutUint64(footer[40:48], tableMagic)
	if _, err := b.w.Write(footer[:]); err != nil {
		return tableMeta{}, fmt.Errorf("lsm: write footer: %w", err)
	}
	if err := b.w.Flush(); err != nil {
		return tableMeta{}, err
	}
	if err := b.f.Sync(); err != nil {
		return tableMeta{}, err
	}
	if err := b.f.Close(); err != nil {
		return tableMeta{}, err
	}
	return tableMeta{
		Num:      num,
		Size:     int64(b.off) + footerSize,
		Count:    b.count,
		Smallest: b.smallest,
		Largest:  b.largest,
	}, nil
}

func (b *tableBuilder) abandon() {
	b.f.Close()
	os.Remove(b.path)
}

// --- reader ---

// tableReader serves reads from one immutable SSTable. Readers are
// refcounted: every version (see view.go) holds one reference per member
// table, so a reader outlives its removal from the hierarchy for as long
// as any in-flight snapshot still uses it. The final unref closes the file
// handle and — when a compaction marked the table obsolete — deletes it.
type tableReader struct {
	f     *os.File
	dir   string
	meta  tableMeta
	index []indexEntry
	bloom *bloomFilter
	cache *blockCache // shared, may be nil

	refs     atomic.Int32
	obsolete atomic.Bool
}

func (t *tableReader) ref() { t.refs.Add(1) }

func (t *tableReader) unref() {
	if t.refs.Add(-1) == 0 {
		t.f.Close()
		if t.obsolete.Load() {
			os.Remove(tableFileName(t.dir, t.meta.Num))
		}
	}
}

// markObsolete schedules the table file for deletion at the last unref.
func (t *tableReader) markObsolete() { t.obsolete.Store(true) }

func openTable(dir string, meta tableMeta, cache *blockCache) (*tableReader, error) {
	f, err := os.Open(tableFileName(dir, meta.Num))
	if err != nil {
		return nil, fmt.Errorf("lsm: open table %d: %w", meta.Num, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < footerSize {
		f.Close()
		return nil, errBadFooter
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], st.Size()-footerSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read footer: %w", err)
	}
	if binary.LittleEndian.Uint64(footer[40:48]) != tableMagic {
		f.Close()
		return nil, errBadMagic
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:8])
	indexLen := binary.LittleEndian.Uint64(footer[8:16])
	bloomOff := binary.LittleEndian.Uint64(footer[16:24])
	bloomLen := binary.LittleEndian.Uint64(footer[24:32])

	idxBuf := make([]byte, indexLen)
	if _, err := f.ReadAt(idxBuf, int64(indexOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read index: %w", err)
	}
	index, err := parseIndex(idxBuf)
	if err != nil {
		f.Close()
		return nil, err
	}
	bloomBuf := make([]byte, bloomLen)
	if _, err := f.ReadAt(bloomBuf, int64(bloomOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read bloom: %w", err)
	}
	t := &tableReader{
		f: f, dir: dir, meta: meta, index: index,
		bloom: unmarshalBloom(bloomBuf), cache: cache,
	}
	t.refs.Store(1) // the caller's reference, transferred to a version
	return t, nil
}

func parseIndex(buf []byte) ([]indexEntry, error) {
	r := bytes.NewReader(buf)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("lsm: parse index: %w", err)
	}
	out := make([]indexEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		key := make([]byte, klen)
		if _, err := r.Read(key); err != nil {
			return nil, err
		}
		off, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		length, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		var crcb [4]byte
		if _, err := r.Read(crcb[:]); err != nil {
			return nil, err
		}
		out = append(out, indexEntry{
			lastKey: key, off: off, length: uint32(length),
			crc: binary.LittleEndian.Uint32(crcb[:]),
		})
	}
	return out, nil
}

// readBlock fetches (and verifies) the data block at index position i,
// consulting the shared cache first.
func (t *tableReader) readBlock(i int) ([]byte, error) {
	e := t.index[i]
	if t.cache != nil {
		if blk, ok := t.cache.get(t.meta.Num, e.off); ok {
			return blk, nil
		}
	}
	blk := make([]byte, e.length)
	if _, err := t.f.ReadAt(blk, int64(e.off)); err != nil {
		return nil, fmt.Errorf("lsm: read block: %w", err)
	}
	if crc32.Checksum(blk, crcTableCasta) != e.crc {
		return nil, errBadBlock
	}
	if t.cache != nil {
		t.cache.put(t.meta.Num, e.off, blk)
	}
	return blk, nil
}

// blockFor returns the index position of the block that may contain key,
// or -1 if key is past the table's range.
func (t *tableReader) blockFor(key []byte) int {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].lastKey, key) >= 0
	})
	if i == len(t.index) {
		return -1
	}
	return i
}

// get looks up key; ok=false means not in this table. The returned
// entry's value aliases block (cache) memory — blocks are immutable, but
// callers must copy before handing the value to users (DB.Get does).
func (t *tableReader) get(key []byte) (memEntry, bool, error) {
	if !t.bloom.MayContain(key) {
		return memEntry{}, false, nil
	}
	bi := t.blockFor(key)
	if bi < 0 {
		return memEntry{}, false, nil
	}
	blk, err := t.readBlock(bi)
	if err != nil {
		return memEntry{}, false, err
	}
	it := blockIter{data: blk}
	for it.next() {
		c := bytes.Compare(it.ikey, key)
		if c == 0 {
			return memEntry{seq: it.seq, kind: it.kind, value: it.val}, true, nil
		}
		if c > 0 {
			break
		}
	}
	if it.err != nil {
		return memEntry{}, false, it.err
	}
	return memEntry{}, false, nil
}

// blockIter decodes entries from one data block.
type blockIter struct {
	data []byte
	pos  int
	ikey []byte
	val  []byte
	seq  uint64
	kind entryKind
	err  error
}

func (it *blockIter) next() bool {
	if it.pos >= len(it.data) || it.err != nil {
		return false
	}
	klen, n := binary.Uvarint(it.data[it.pos:])
	if n <= 0 {
		it.err = errBadBlock
		return false
	}
	it.pos += n
	vlen, n := binary.Uvarint(it.data[it.pos:])
	if n <= 0 {
		it.err = errBadBlock
		return false
	}
	it.pos += n
	seq, n := binary.Uvarint(it.data[it.pos:])
	if n <= 0 {
		it.err = errBadBlock
		return false
	}
	it.pos += n
	if it.pos >= len(it.data) {
		it.err = errBadBlock
		return false
	}
	kind := entryKind(it.data[it.pos])
	it.pos++
	if it.pos+int(klen)+int(vlen) > len(it.data) {
		it.err = errBadBlock
		return false
	}
	it.ikey = it.data[it.pos : it.pos+int(klen)]
	it.pos += int(klen)
	it.val = it.data[it.pos : it.pos+int(vlen)]
	it.pos += int(vlen)
	it.seq = seq
	it.kind = kind
	return true
}

// tableIterator walks all entries of a table in key order.
type tableIterator struct {
	t        *tableReader
	blockIdx int
	bi       blockIter
	inited   bool
	err      error
}

func (t *tableReader) iter() *tableIterator { return &tableIterator{t: t} }

func (it *tableIterator) next() bool {
	if it.err != nil {
		return false
	}
	for {
		if !it.inited {
			if it.blockIdx >= len(it.t.index) {
				return false
			}
			blk, err := it.t.readBlock(it.blockIdx)
			if err != nil {
				it.err = err
				return false
			}
			it.bi = blockIter{data: blk}
			it.inited = true
		}
		if it.bi.next() {
			return true
		}
		if it.bi.err != nil {
			it.err = it.bi.err
			return false
		}
		it.blockIdx++
		it.inited = false
	}
}

// seekGE positions at the first entry >= key. Returns true if positioned.
func (it *tableIterator) seekGE(key []byte) bool {
	bi := it.t.blockFor(key)
	if bi < 0 {
		it.blockIdx = len(it.t.index)
		it.inited = false
		return false
	}
	blk, err := it.t.readBlock(bi)
	if err != nil {
		it.err = err
		return false
	}
	it.blockIdx = bi
	it.bi = blockIter{data: blk}
	it.inited = true
	for it.bi.next() {
		if bytes.Compare(it.bi.ikey, key) >= 0 {
			return true
		}
	}
	// Key falls after this block's last key — advance to the next block.
	it.blockIdx++
	it.inited = false
	return it.next()
}

func (it *tableIterator) key() []byte { return it.bi.ikey }
func (it *tableIterator) entry() memEntry {
	return memEntry{seq: it.bi.seq, kind: it.bi.kind, value: it.bi.val}
}
