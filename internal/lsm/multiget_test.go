package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func mgKeys(keys ...string) [][]byte {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = []byte(k)
	}
	return out
}

// TestMultiGetAcrossLocations: one MultiGet resolving keys that live in
// the active memtable, a sealed memtable, L0 tables and L1 — plus absent
// keys — must agree with per-key Gets everywhere.
func TestMultiGetAcrossLocations(t *testing.T) {
	db := testDB(t, Options{
		DisableWAL:          true,
		L0CompactionTrigger: 2,
		MemtableBytes:       1 << 20,
	})
	// L1 data: flush twice then compact.
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("deep%03d", i)), []byte(fmt.Sprintf("dv%03d", i)))
	}
	db.Flush()
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("mid%03d", i)), []byte(fmt.Sprintf("mv%03d", i)))
	}
	db.Flush()
	db.CompactAll()
	// Fresh L0 run with overwrites of deep keys (newest must win).
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("deep%03d", i)), []byte(fmt.Sprintf("NEW%03d", i)))
	}
	db.Flush()
	// Memtable data.
	db.Put([]byte("hot1"), []byte("h1"))
	db.Delete([]byte("mid005"))

	keys := mgKeys("deep000", "deep005", "deep040", "mid005", "mid010", "hot1", "ghost", "deep049")
	vals, found, err := db.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		gv, gerr := db.Get(k)
		if gerr == ErrNotFound {
			if found[i] {
				t.Fatalf("key %s: MultiGet found, Get absent", k)
			}
			continue
		}
		if gerr != nil {
			t.Fatal(gerr)
		}
		if !found[i] {
			t.Fatalf("key %s: Get found %q, MultiGet absent", k, gv)
		}
		if !bytes.Equal(vals[i], gv) {
			t.Fatalf("key %s: MultiGet %q != Get %q", k, vals[i], gv)
		}
	}
	if !found[0] || string(vals[0]) != "NEW000" {
		t.Fatalf("newest L0 version lost: %q %v", vals[0], found[0])
	}
	if found[3] {
		t.Fatal("tombstoned mid005 reported present")
	}
	if found[6] {
		t.Fatal("ghost key reported present")
	}
}

// TestMultiGetEmptyValuesAndTombstones: present-empty values round-trip
// with found=true and a non-nil-length-zero distinction from absence.
func TestMultiGetEmptyValuesAndTombstones(t *testing.T) {
	db := testDB(t, Options{DisableWAL: true})
	db.Put([]byte("empty-mem"), []byte{})
	db.Put([]byte("empty-disk"), []byte{})
	db.Put([]byte("dead"), []byte("v"))
	db.Flush()
	db.Delete([]byte("dead")) // tombstone in memtable shadows table value

	vals, found, err := db.MultiGet(mgKeys("empty-mem", "empty-disk", "dead", "never"))
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || len(vals[0]) != 0 {
		t.Fatalf("empty-mem: %v %q", found[0], vals[0])
	}
	if !found[1] || len(vals[1]) != 0 {
		t.Fatalf("empty-disk: %v %q", found[1], vals[1])
	}
	if found[2] {
		t.Fatal("tombstone visible through MultiGet")
	}
	if found[3] {
		t.Fatal("absent key found")
	}

	// Tombstone persisted to a newer table must also win.
	db.Flush()
	_, found, err = db.MultiGet(mgKeys("dead"))
	if err != nil || found[0] {
		t.Fatalf("flushed tombstone visible: %v %v", found[0], err)
	}
}

func TestMultiGetDuplicateAndUnsortedKeys(t *testing.T) {
	db := testDB(t, Options{DisableWAL: true})
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("dup%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	db.Flush()
	keys := mgKeys("dup150", "dup003", "dup150", "zzz", "dup003", "dup000")
	vals, found, err := db.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"v150", "v003", "v150", "", "v003", "v000"}
	for i := range keys {
		if i == 3 {
			if found[3] {
				t.Fatal("zzz found")
			}
			continue
		}
		if !found[i] || string(vals[i]) != want[i] {
			t.Fatalf("key %s: %v %q want %q", keys[i], found[i], vals[i], want[i])
		}
	}
}

func TestMultiGetEmptyAndClosed(t *testing.T) {
	db := testDB(t, Options{DisableWAL: true})
	vals, found, err := db.MultiGet(nil)
	if err != nil || len(vals) != 0 || len(found) != 0 {
		t.Fatalf("nil keys: %v %v %v", vals, found, err)
	}
	db2, _ := Open(Options{Dir: t.TempDir(), DisableWAL: true})
	db2.Close()
	if _, _, err := db2.MultiGet(mgKeys("x")); err != ErrDBClosed {
		t.Fatalf("closed: %v", err)
	}
}

// TestMultiGetMatchesGetProperty: randomized cross-check over a mixed
// workload with flushes and compactions.
func TestMultiGetMatchesGetProperty(t *testing.T) {
	db := testDB(t, Options{
		DisableWAL:          true,
		MemtableBytes:       4 << 10,
		L0CompactionTrigger: 2,
	})
	rng := rand.New(rand.NewSource(42))
	ref := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("pp%03d", rng.Intn(300))
		switch rng.Intn(10) {
		case 0:
			db.Delete([]byte(k))
			delete(ref, k)
		default:
			v := fmt.Sprintf("val%06d", i)
			db.Put([]byte(k), []byte(v))
			ref[k] = v
		}
		if i == 1000 {
			db.Flush()
			db.CompactAll()
		}
	}
	var keys [][]byte
	for i := 0; i < 300; i++ {
		keys = append(keys, []byte(fmt.Sprintf("pp%03d", i)))
	}
	vals, found, err := db.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want, ok := ref[string(k)]
		if ok != found[i] {
			t.Fatalf("key %s: present=%v want %v", k, found[i], ok)
		}
		if ok && string(vals[i]) != want {
			t.Fatalf("key %s: %q want %q", k, vals[i], want)
		}
	}
}

// TestConcurrentReadsDuringFlushAndCompaction is the -race stress for the
// snapshot read path: Gets and MultiGets run non-stop while writers force
// memtable rotations, background flushes and compaction installs. Every
// read must see either the old or the new version of a key — never an
// error, a torn value, or a closed table.
func TestConcurrentReadsDuringFlushAndCompaction(t *testing.T) {
	db := testDB(t, Options{
		DisableWAL:          true,
		MemtableBytes:       4 << 10,
		L0CompactionTrigger: 2,
		BaseLevelBytes:      16 << 10,
		TargetFileBytes:     8 << 10,
	})
	const keyspace = 200
	val := func(gen int) []byte { return bytes.Repeat([]byte{byte('a' + gen%26)}, 100) }
	// Seed so every key always exists.
	for i := 0; i < keyspace; i++ {
		db.Put([]byte(fmt.Sprintf("st%04d", i)), val(0))
	}
	stop := make(chan struct{})
	var writerWg, wg sync.WaitGroup
	writerWg.Add(1)
	go func() { // writer: constant churn forcing rotations + compactions
		defer writerWg.Done()
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < keyspace; i++ {
				if err := db.Put([]byte(fmt.Sprintf("st%04d", i)), val(gen)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) { // point readers
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("st%04d", rng.Intn(keyspace)))
				v, err := db.Get(k)
				if err != nil {
					t.Errorf("get %s: %v", k, err)
					return
				}
				if len(v) != 100 || bytes.Count(v, v[:1]) != 100 {
					t.Errorf("torn value for %s: %q", k, v)
					return
				}
			}
		}(int64(r))
	}
	wg.Add(1)
	go func() { // batch reader
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 500; i++ {
			keys := make([][]byte, 16)
			for j := range keys {
				keys[j] = []byte(fmt.Sprintf("st%04d", rng.Intn(keyspace)))
			}
			vals, found, err := db.MultiGet(keys)
			if err != nil {
				t.Errorf("multiget: %v", err)
				return
			}
			for j := range keys {
				if !found[j] {
					t.Errorf("key %s vanished", keys[j])
					return
				}
				if len(vals[j]) != 100 {
					t.Errorf("torn multiget value for %s", keys[j])
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // scanner: consistent snapshots under churn
		defer wg.Done()
		for i := 0; i < 30; i++ {
			kvs, err := db.Scan([]byte("st0000"), []byte("st0050"), 0)
			if err != nil {
				t.Errorf("scan: %v", err)
				return
			}
			if len(kvs) != 50 {
				t.Errorf("scan saw %d keys, want 50", len(kvs))
				return
			}
		}
	}()
	wg.Wait() // readers finish first…
	close(stop)
	writerWg.Wait() // …then the writer drains
	if st := db.Stats(); st.Flushes == 0 {
		t.Fatal("stress never exercised a background flush")
	}
}
