package lsm

import (
	"bytes"
	"sort"
)

// MultiGet resolves many keys against one snapshot view (frozen table
// hierarchy; live active memtable — see view for the isolation contract)
// in a single walk of the level hierarchy. It returns values and presence
// flags aligned with keys: found[i] reports whether keys[i] exists (a
// present empty value is found with an empty, non-nil slice). All
// returned values are private copies — they never alias memtable or
// block-cache memory.
//
// Compared with len(keys) sequential Gets this saves: one snapshot
// acquisition instead of N, one sort so each table's index is walked
// front-to-back once, and — the big one — one block decode shared by all
// keys that land in the same data block, instead of a bloom+index+block
// probe per key per table.
func (db *DB) MultiGet(keys [][]byte) (vals [][]byte, found []bool, err error) {
	v, err := db.acquireView()
	if err != nil {
		return nil, nil, err
	}
	defer v.release()
	db.multiGets.Add(1)

	n := len(keys)
	entries := make([]memEntry, n)
	resolved := make([]bool, n) // key's newest version located (set OR tombstone)

	// Memtables first: newest data, cheap lookups.
	pending := make([]int, 0, n)
	for i, k := range keys {
		if e, ok := v.memGet(k); ok {
			entries[i], resolved[i] = e, true
		} else {
			pending = append(pending, i)
		}
	}

	if len(pending) > 0 && v.ver.man != nil {
		// Sort the unresolved indices by key so every table probe walks
		// its index and blocks monotonically. Duplicate keys sit adjacent
		// and share the same cursor position.
		sort.Slice(pending, func(a, b int) bool {
			return bytes.Compare(keys[pending[a]], keys[pending[b]]) < 0
		})

		// L0: tables overlap, so every table sees every still-unresolved
		// key and the highest sequence wins across tables.
		if len(v.ver.man.Levels[0]) > 0 {
			l0seen := make([]bool, n)
			for _, meta := range v.ver.man.Levels[0] {
				r := v.ver.readers[meta.Num]
				if r == nil {
					continue
				}
				err := r.multiGet(keys, pending, meta, func(i int, e memEntry) {
					if !l0seen[i] || e.seq > entries[i].seq {
						entries[i], l0seen[i] = e, true
					}
				})
				if err != nil {
					return nil, nil, db.noteReadErr(err)
				}
			}
			next := pending[:0]
			for _, i := range pending {
				if l0seen[i] {
					resolved[i] = true
				} else {
					next = append(next, i)
				}
			}
			pending = next
		}

		// L1+: non-overlapping, so a key matches at most one table per
		// level and the first hit down the hierarchy is the newest.
		for l := 1; l < len(v.ver.man.Levels) && len(pending) > 0; l++ {
			for _, meta := range v.ver.man.Levels[l] {
				if len(pending) == 0 {
					break
				}
				r := v.ver.readers[meta.Num]
				if r == nil {
					continue
				}
				err := r.multiGet(keys, pending, meta, func(i int, e memEntry) {
					entries[i], resolved[i] = e, true
				})
				if err != nil {
					return nil, nil, db.noteReadErr(err)
				}
				next := pending[:0]
				for _, i := range pending {
					if !resolved[i] {
						next = append(next, i)
					}
				}
				pending = next
			}
		}
	}

	vals = make([][]byte, n)
	found = make([]bool, n)
	for i := range keys {
		if !resolved[i] || entries[i].kind == kindDelete {
			continue
		}
		found[i] = true
		cp := make([]byte, len(entries[i].value))
		copy(cp, entries[i].value)
		vals[i] = cp
	}
	return vals, found, nil
}

// multiGet probes this table for the given key indices (sorted by key,
// ascending). For each hit it calls visit(i, entry); the entry's value may
// alias block (cache) memory — callers copy before returning to users.
// Probes advance a single cursor through the table's index and blocks, so
// adjacent keys in the same data block cost one decode total.
func (t *tableReader) multiGet(keys [][]byte, idxs []int, meta tableMeta, visit func(i int, e memEntry)) error {
	cur := tableCursor{t: t}
	for _, i := range idxs {
		key := keys[i]
		if bytes.Compare(key, meta.Smallest) < 0 {
			continue
		}
		if bytes.Compare(key, meta.Largest) > 0 {
			break // keys are ascending: nothing later can be in range
		}
		if !t.bloom.MayContain(key) {
			continue
		}
		e, ok, err := cur.seek(key)
		if err != nil {
			return err
		}
		if ok {
			visit(i, e)
		}
	}
	return nil
}

// tableCursor is a forward-only point-lookup cursor over one table:
// seek(key) must be called with non-decreasing keys. It remembers the
// current block and decode position, so a run of keys inside one block is
// served by a single decode pass.
type tableCursor struct {
	t        *tableReader
	blockIdx int  // next index position to consider
	loaded   bool // bi holds a decoded block at position blockIdx-1... see seek
	bi       blockIter
	ent      memEntry // last decoded entry (peeked)
	entKey   []byte
	entOK    bool
}

// seek positions at key and reports whether the table contains it.
func (c *tableCursor) seek(key []byte) (memEntry, bool, error) {
	// Fast path: the peeked entry from a previous probe is still >= key
	// (equal keys, or the previous probe overshot into this key's range).
	if c.entOK {
		if cmp := bytes.Compare(c.entKey, key); cmp == 0 {
			return c.ent, true, nil
		} else if cmp > 0 {
			return memEntry{}, false, nil
		}
	}
	if !c.loaded || !c.blockMayContain(key) {
		// Advance the index to the block that may hold key. Search only
		// the remaining index range — keys arrive sorted.
		rest := c.t.index[c.blockIdx:]
		j := sort.Search(len(rest), func(i int) bool {
			return bytes.Compare(rest[i].lastKey, key) >= 0
		})
		if j == len(rest) {
			c.loaded, c.entOK = false, false
			c.blockIdx = len(c.t.index)
			return memEntry{}, false, nil
		}
		c.blockIdx += j
		blk, err := c.t.readBlock(c.blockIdx)
		if err != nil {
			return memEntry{}, false, err
		}
		c.bi = blockIter{data: blk}
		c.loaded = true
		c.entOK = false
		c.blockIdx++ // consumed: future searches start past this block
	}
	// Scan forward inside the decoded block.
	for c.bi.next() {
		cmp := bytes.Compare(c.bi.ikey, key)
		if cmp < 0 {
			continue
		}
		c.ent = memEntry{seq: c.bi.seq, kind: c.bi.kind, value: c.bi.val}
		c.entKey = c.bi.ikey
		c.entOK = true
		return c.ent, cmp == 0, nil
	}
	if c.bi.err != nil {
		return memEntry{}, false, c.bi.err
	}
	// Block exhausted without reaching key: key falls in the gap between
	// this block's last entry and the next block's range.
	c.entOK = false
	return memEntry{}, false, nil
}

// blockMayContain reports whether the currently decoded block can still
// contain key (key <= the block's index lastKey).
func (c *tableCursor) blockMayContain(key []byte) bool {
	return bytes.Compare(key, c.t.index[c.blockIdx-1].lastKey) <= 0
}
