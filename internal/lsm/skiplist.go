package lsm

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
)

// entryKind distinguishes sets from deletions (tombstones).
type entryKind uint8

const (
	kindSet entryKind = iota
	kindDelete
)

// memEntry is the value stored per key in the memtable.
type memEntry struct {
	seq   uint64
	kind  entryKind
	value []byte
}

const maxHeight = 12

// skiplist is the memtable: sorted by user key, one entry per key (the
// latest write wins in place; the sequence number is retained so flushed
// SSTables merge correctly with older runs). Reads may proceed concurrently
// with each other; writes are serialized by the caller (the DB write lock),
// which matches the single-writer design of the engine's event loop.
type skiplist struct {
	head   *slNode
	height int
	rng    *rand.Rand
	size   atomic.Int64 // approximate bytes
	count  int
	mu     sync.RWMutex
}

type slNode struct {
	key   []byte
	entry memEntry
	next  [maxHeight]*slNode
}

func newSkiplist() *skiplist {
	return &skiplist{
		head:   &slNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(0x7e57)),
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key >= target, and the previous node
// at every level (for insertion).
func (s *skiplist) findGE(key []byte, prev *[maxHeight]*slNode) *slNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for {
			next := x.next[level]
			if next != nil && bytes.Compare(next.key, key) < 0 {
				x = next
				continue
			}
			break
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// put inserts or overwrites key.
func (s *skiplist) put(key []byte, e memEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var prev [maxHeight]*slNode
	for i := s.height; i < maxHeight; i++ {
		prev[i] = s.head
	}
	node := s.findGE(key, &prev)
	if node != nil && bytes.Equal(node.key, key) {
		// In-place overwrite: adjust size accounting.
		s.size.Add(int64(len(e.value) - len(node.entry.value)))
		node.entry = e
		return
	}
	h := s.randomHeight()
	if h > s.height {
		s.height = h
	}
	n := &slNode{key: key, entry: e}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	s.count++
	s.size.Add(int64(len(key) + len(e.value) + 48))
}

// get returns the entry for key.
func (s *skiplist) get(key []byte) (memEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	node := s.findGE(key, nil)
	if node != nil && bytes.Equal(node.key, key) {
		return node.entry, true
	}
	return memEntry{}, false
}

// approximateSize returns approximate memory use in bytes.
func (s *skiplist) approximateSize() int64 { return s.size.Load() }

// entries returns the number of distinct keys.
func (s *skiplist) entries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// iterator walks the skiplist in key order.
type slIterator struct {
	s    *skiplist
	node *slNode
}

// iter returns an iterator positioned before the first entry.
func (s *skiplist) iter() *slIterator { return &slIterator{s: s, node: s.head} }

// next advances; returns false when exhausted.
func (it *slIterator) next() bool {
	it.s.mu.RLock()
	it.node = it.node.next[0]
	it.s.mu.RUnlock()
	return it.node != nil
}

// seekGE positions at the first entry >= key; returns false if none.
func (it *slIterator) seekGE(key []byte) bool {
	it.s.mu.RLock()
	it.node = it.s.findGE(key, nil)
	it.s.mu.RUnlock()
	return it.node != nil
}

func (it *slIterator) key() []byte     { return it.node.key }
func (it *slIterator) entry() memEntry { return it.node.entry }
