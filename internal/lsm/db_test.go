package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"tierbase/internal/wal"
)

func testDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestDBPutGetDelete(t *testing.T) {
	db := testDB(t, Options{})
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("get: %q %v", v, err)
	}
	if err := db.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k1")); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if ok, _ := db.Has([]byte("k1")); ok {
		t.Fatal("Has after delete")
	}
	if _, err := db.Get([]byte("never")); err != ErrNotFound {
		t.Fatalf("missing key: %v", err)
	}
}

func TestDBEmptyKeyRejected(t *testing.T) {
	db := testDB(t, Options{})
	if err := db.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestDBOverwrite(t *testing.T) {
	db := testDB(t, Options{})
	db.Put([]byte("k"), []byte("old"))
	db.Put([]byte("k"), []byte("new"))
	v, _ := db.Get([]byte("k"))
	if string(v) != "new" {
		t.Fatalf("got %q", v)
	}
}

func TestDBFlushAndReadFromTable(t *testing.T) {
	db := testDB(t, Options{})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.TableCount == 0 || st.DiskBytes == 0 {
		t.Fatalf("flush produced no tables: %+v", st)
	}
	if st.MemtableBytes != 0 {
		t.Fatalf("memtable not reset: %d", st.MemtableBytes)
	}
	for i := 0; i < 100; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("post-flush get %d: %q %v", i, v, err)
		}
	}
}

func TestDBDeleteAcrossFlush(t *testing.T) {
	db := testDB(t, Options{})
	db.Put([]byte("gone"), []byte("v"))
	db.Flush()
	db.Delete([]byte("gone"))
	db.Flush() // tombstone now in a newer L0 table
	if _, err := db.Get([]byte("gone")); err != ErrNotFound {
		t.Fatalf("tombstone not honored across tables: %v", err)
	}
}

func TestDBAutomaticMemtableRotation(t *testing.T) {
	db := testDB(t, Options{MemtableBytes: 4 << 10})
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), val)
	}
	// Flushes happen in the background now: drain before asserting.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("memtable never rotated")
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("key%04d", i))); err != nil {
			t.Fatalf("get %d after rotation: %v", i, err)
		}
	}
}

// crashStop simulates a process crash: it stops the background goroutines
// and closes file handles WITHOUT flushing memtables — recovery must come
// from the WAL and manifest alone.
func crashStop(db *DB) {
	db.mu.Lock()
	db.closed = true
	cur := db.current
	db.flushCond.Broadcast()
	db.mu.Unlock()
	close(db.flushStop)
	<-db.flushDone
	close(db.compactCh)
	<-db.compactDone
	if db.wlog != nil {
		db.wlog.Close()
	}
	cur.unref()
}

func TestDBWALRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, WALSyncPolicy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Delete([]byte("a"))
	db.wlog.Sync()
	crashStop(db)

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("b"))
	if err != nil || string(v) != "2" {
		t.Fatalf("recovered b: %q %v", v, err)
	}
	if _, err := db2.Get([]byte("a")); err != ErrNotFound {
		t.Fatalf("recovered delete: %v", err)
	}
}

func TestDBCleanReopen(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(Options{Dir: dir})
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("p%02d", i)), []byte("v"))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 50; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("p%02d", i))); err != nil {
			t.Fatalf("reopen get %d: %v", i, err)
		}
	}
	// Sequence numbers must continue, not restart.
	s1 := db2.Stats().SequenceNumber
	db2.Put([]byte("new"), []byte("v"))
	if db2.Stats().SequenceNumber <= s1 {
		t.Fatal("sequence did not advance after reopen")
	}
}

func TestDBLeveledCompaction(t *testing.T) {
	db := testDB(t, Options{
		MemtableBytes:       2 << 10,
		L0CompactionTrigger: 2,
		BaseLevelBytes:      8 << 10,
		TargetFileBytes:     4 << 10,
	})
	val := bytes.Repeat([]byte("z"), 128)
	const n = 400
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key%05d", i%100)), append(val, byte(i)))
	}
	db.Flush()
	db.CompactAll()
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	// All latest values must survive.
	for i := n - 100; i < n; i++ {
		key := []byte(fmt.Sprintf("key%05d", i%100))
		v, err := db.Get(key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if v[len(v)-1] != byte(i) {
			t.Fatalf("stale value for %s: last byte %d want %d", key, v[len(v)-1], byte(i))
		}
	}
}

func TestDBTombstonesDroppedAtBottom(t *testing.T) {
	db := testDB(t, Options{
		MemtableBytes:       1 << 10,
		L0CompactionTrigger: 2,
		MaxLevels:           2, // L1 is the bottom: tombstones drop there
		BaseLevelBytes:      1 << 30,
	})
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte("v"), 64))
	}
	for i := 0; i < 50; i++ {
		db.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	db.Flush()
	db.CompactAll()
	for i := 0; i < 50; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("k%03d", i))); err != ErrNotFound {
			t.Fatalf("key %d resurrected: %v", i, err)
		}
	}
	// After dropping tombstones the bottom level should contain no entries.
	st := db.Stats()
	var bottomBytes int64
	if len(st.LevelBytes) > 1 {
		bottomBytes = st.LevelBytes[1]
	}
	if bottomBytes > 1024 {
		t.Logf("note: bottom level still has %d bytes (ok if some live keys remain)", bottomBytes)
	}
}

func TestDBSizeTieredCompaction(t *testing.T) {
	db := testDB(t, Options{
		Compaction:    SizeTiered,
		MemtableBytes: 1 << 10,
	})
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("st%04d", i)), bytes.Repeat([]byte("y"), 64))
	}
	db.Flush()
	db.CompactAll()
	if db.Stats().Compactions == 0 {
		t.Fatal("size-tiered compaction never ran")
	}
	for i := 0; i < 300; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("st%04d", i))); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
}

func TestDBSizeTieredNewestWins(t *testing.T) {
	// Regression: after merging old runs, a newer non-merged run must still
	// take precedence (L0 get must pick by sequence, not file order).
	db := testDB(t, Options{Compaction: SizeTiered, DisableWAL: true})
	db.Put([]byte("k"), []byte("v1"))
	db.Flush()
	db.Put([]byte("k"), []byte("v2"))
	db.Flush()
	db.Put([]byte("k"), []byte("v3"))
	db.Flush()
	db.Put([]byte("k"), []byte("v4"))
	db.Flush()
	db.CompactAll()
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v4" {
		t.Fatalf("got %q %v, want v4", v, err)
	}
}

func TestDBScan(t *testing.T) {
	db := testDB(t, Options{MemtableBytes: 1 << 10})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("s%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("s050"))
	kvs, err := db.Scan([]byte("s040"), []byte("s060"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 19 { // 40..59 minus deleted 50
		t.Fatalf("scan returned %d pairs", len(kvs))
	}
	if string(kvs[0].Key) != "s040" {
		t.Fatalf("first key %q", kvs[0].Key)
	}
	var prev []byte
	for _, kv := range kvs {
		if prev != nil && bytes.Compare(kv.Key, prev) <= 0 {
			t.Fatal("scan not sorted")
		}
		prev = kv.Key
	}
	// Limit applies.
	kvs, _ = db.Scan([]byte("s000"), nil, 5)
	if len(kvs) != 5 {
		t.Fatalf("limit ignored: %d", len(kvs))
	}
	// Unbounded scan sees everything live.
	kvs, _ = db.Scan(nil, nil, 0)
	if len(kvs) != 99 {
		t.Fatalf("full scan %d pairs, want 99", len(kvs))
	}
}

func TestDBScanSeesNewestAcrossLevels(t *testing.T) {
	db := testDB(t, Options{DisableWAL: true})
	db.Put([]byte("x"), []byte("old"))
	db.Flush()
	db.Put([]byte("x"), []byte("new"))
	kvs, err := db.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || string(kvs[0].Value) != "new" {
		t.Fatalf("scan: %v", kvs)
	}
}

func TestDBClosedErrors(t *testing.T) {
	db, _ := Open(Options{Dir: t.TempDir()})
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != ErrDBClosed {
		t.Fatalf("put: %v", err)
	}
	if _, err := db.Get([]byte("k")); err != ErrDBClosed {
		t.Fatalf("get: %v", err)
	}
	if _, err := db.Scan(nil, nil, 0); err != ErrDBClosed {
		t.Fatalf("scan: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDBConcurrentReadWrite(t *testing.T) {
	db := testDB(t, Options{MemtableBytes: 8 << 10, DisableWAL: true})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := []byte(fmt.Sprintf("c%04d", i%500))
			if err := db.Put(k, bytes.Repeat([]byte("w"), 100)); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	// Readers
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				k := []byte(fmt.Sprintf("c%04d", rng.Intn(500)))
				if _, err := db.Get(k); err != nil && err != ErrNotFound {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(int64(r))
	}
	// Wait for readers, then stop writer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; i < 3; i++ {
		// wait for the 3 readers via counter below instead; simple sleep-free join:
		break
	}
	close(stop)
	<-done
}

func TestDBPropertyMatchesMap(t *testing.T) {
	type op struct {
		Key    uint8
		Val    uint16
		Delete bool
	}
	f := func(ops []op) bool {
		dir, err := newTempDir()
		if err != nil {
			return false
		}
		defer removeAll(dir)
		db, err := Open(Options{Dir: dir, MemtableBytes: 1 << 10, DisableWAL: true})
		if err != nil {
			return false
		}
		defer db.Close()
		ref := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("pk%03d", o.Key%64)
			if o.Delete {
				if db.Delete([]byte(k)) != nil {
					return false
				}
				delete(ref, k)
			} else {
				v := fmt.Sprintf("pv%05d", o.Val)
				if db.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				ref[k] = v
			}
		}
		db.Flush()
		db.CompactAll()
		for k, v := range ref {
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		kvs, err := db.Scan(nil, nil, 0)
		if err != nil {
			return false
		}
		return len(kvs) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDBStats(t *testing.T) {
	db := testDB(t, Options{})
	db.Put([]byte("k"), []byte("v"))
	st := db.Stats()
	if st.WriteBytes != 2 {
		t.Fatalf("write bytes %d", st.WriteBytes)
	}
	if st.SequenceNumber != 1 {
		t.Fatalf("seq %d", st.SequenceNumber)
	}
}

func TestDBDisabledBloomStillWorks(t *testing.T) {
	db := testDB(t, Options{BloomBitsPerKey: -1, DisableWAL: true})
	db.Put([]byte("nb"), []byte("v"))
	db.Flush()
	if v, err := db.Get([]byte("nb")); err != nil || string(v) != "v" {
		t.Fatalf("%q %v", v, err)
	}
}

// helpers avoiding os import churn in the property test

func newTempDir() (string, error) { return mkdirTemp("", "lsmprop") }
