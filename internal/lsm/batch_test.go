package lsm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tierbase/internal/pmem"
	"tierbase/internal/wal"
)

// countingAppender wraps a wal.Appender and counts Append calls. It is the
// probe for the "one batch = one WAL append" contract.
type countingAppender struct {
	inner   wal.Appender
	appends atomic.Int64
	// delay, when set, slows each append so concurrent writers pile into
	// the group-commit queue deterministically.
	delay time.Duration
}

func (c *countingAppender) Append(p []byte) error {
	c.appends.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return c.inner.Append(p)
}
func (c *countingAppender) Sync() error  { return c.inner.Sync() }
func (c *countingAppender) Close() error { return c.inner.Close() }

func openCountingDB(t *testing.T, dir string, delay time.Duration) (*DB, *countingAppender) {
	t.Helper()
	ca := &countingAppender{delay: delay}
	db, err := Open(Options{
		Dir: dir,
		WALFactory: func(walDir string) (wal.Appender, error) {
			l, err := wal.Open(wal.Options{Dir: walDir, Policy: wal.SyncNever})
			if err != nil {
				return nil, err
			}
			ca.inner = l
			return ca, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, ca
}

func TestApplyBatchSingleWALAppend(t *testing.T) {
	db, ca := openCountingDB(t, t.TempDir(), 0)
	defer db.Close()
	b := &Batch{}
	for i := 0; i < 16; i++ {
		b.Put([]byte(fmt.Sprintf("bk%02d", i)), []byte(fmt.Sprintf("bv%02d", i)))
	}
	b.Delete([]byte("bk00"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := ca.appends.Load(); got != 1 {
		t.Fatalf("17-op batch made %d WAL appends, want 1", got)
	}
	for i := 1; i < 16; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("bk%02d", i)))
		if err != nil || string(v) != fmt.Sprintf("bv%02d", i) {
			t.Fatalf("get %d: %q %v", i, v, err)
		}
	}
	if _, err := db.Get([]byte("bk00")); err != ErrNotFound {
		t.Fatalf("in-batch delete not applied: %v", err)
	}
}

func TestApplyEmptyAndNilBatch(t *testing.T) {
	db := testDB(t, Options{DisableWAL: true})
	if err := db.Apply(nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(&Batch{}); err != nil {
		t.Fatal(err)
	}
	b := &Batch{}
	b.Put(nil, []byte("v"))
	if err := db.Apply(b); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestBatchReuseAfterReset(t *testing.T) {
	db := testDB(t, Options{DisableWAL: true})
	b := &Batch{}
	b.Put([]byte("r1"), []byte("v1"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len after reset: %d", b.Len())
	}
	b.Put([]byte("r2"), []byte("v2"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"r1", "r2"} {
		if _, err := db.Get([]byte(k)); err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
	}
}

// TestGroupCommitCoalesces: concurrent single-key writers must share WAL
// appends. With each append slowed, later writers pile into the pending
// queue and the next leader commits them as one record.
func TestGroupCommitCoalesces(t *testing.T) {
	db, ca := openCountingDB(t, t.TempDir(), 2*time.Millisecond)
	defer db.Close()
	const writers = 32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := db.Put([]byte(fmt.Sprintf("gc%03d", i)), []byte("v")); err != nil {
				t.Errorf("put: %v", err)
			}
		}(i)
	}
	wg.Wait()
	appends := ca.appends.Load()
	if appends >= writers {
		t.Fatalf("no coalescing: %d appends for %d writers", appends, writers)
	}
	t.Logf("%d concurrent writers -> %d WAL appends", writers, appends)
	for i := 0; i < writers; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("gc%03d", i))); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
}

func TestApplyCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, WALSyncPolicy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("pre"), []byte("old"))
	b := &Batch{}
	b.Put([]byte("x1"), []byte("v1"))
	b.Put([]byte("x2"), []byte(""))
	b.Delete([]byte("pre"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	crashStop(db)

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("x1")); err != nil || string(v) != "v1" {
		t.Fatalf("x1: %q %v", v, err)
	}
	if v, err := db2.Get([]byte("x2")); err != nil || len(v) != 0 {
		t.Fatalf("x2 (empty value): %q %v", v, err)
	}
	if _, err := db2.Get([]byte("pre")); err != ErrNotFound {
		t.Fatalf("batched delete lost: %v", err)
	}
}

// TestApplyAllOrNothingOnTornWAL: a batch whose WAL record is torn by the
// crash (payload cut short) must vanish entirely on reopen — no partial
// application — while earlier records survive.
func TestApplyAllOrNothingOnTornWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, WALSyncPolicy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("keep"), []byte("v"))
	b := &Batch{}
	for i := 0; i < 8; i++ {
		b.Put([]byte(fmt.Sprintf("torn%d", i)), bytes.Repeat([]byte("t"), 64))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	crashStop(db)

	// Tear the tail: chop bytes off the last WAL segment so the batch
	// record's payload is incomplete (detected by length or CRC).
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-10); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("keep")); err != nil {
		t.Fatalf("pre-batch record lost: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("torn%d", i))); err != ErrNotFound {
			t.Fatalf("torn batch partially applied: key torn%d err=%v", i, err)
		}
	}
}

// TestDecodeBatchRecordCorruptLengths: corrupt length varints (including
// huge ones that would wrap negative if cast to int) must fail decoding
// with an error, never panic during recovery.
func TestDecodeBatchRecordCorruptLengths(t *testing.T) {
	w := &batchWriter{b: &Batch{}}
	w.b.Put([]byte("k"), []byte("v"))
	good := encodeBatchRecord(1, []*batchWriter{w}, 1, 2)
	noop := func(uint64, entryKind, []byte, []byte) error { return nil }
	if err := decodeBatchRecord(good, noop); err != nil {
		t.Fatalf("good record: %v", err)
	}
	// klen varint replaced with 2^63 (wraps negative as int).
	huge := append([]byte{batchRecMarker, batchRecVersion, 1, 1},
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	huge = append([]byte{huge[0], huge[1], huge[2], huge[3], byte(kindSet)}, huge[4:]...)
	if err := decodeBatchRecord(huge, noop); err == nil {
		t.Fatal("huge klen accepted")
	}
	for cut := 1; cut < len(good); cut++ {
		if err := decodeBatchRecord(good[:cut], noop); err == nil {
			t.Fatalf("truncated record (%d bytes) accepted", cut)
		}
	}
}

// TestLegacyWALReplay: logs written by the old per-write encoder (one
// single-op record per write, no batch marker) must still recover. The
// batch record format is self-describing — first byte 0x00, which a legacy
// record's leading sequence uvarint (always >= 1) can never produce.
func TestLegacyWALReplay(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	l, err := wal.Open(wal.Options{Dir: walDir, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	// The exact byte stream an old build would have written.
	if err := l.Append(encodeWALRecord(1, kindSet, []byte("old1"), []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(encodeWALRecord(2, kindSet, []byte("old2"), []byte("v2"))); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(encodeWALRecord(3, kindDelete, []byte("old1"), nil)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if v, err := db.Get([]byte("old2")); err != nil || string(v) != "v2" {
		t.Fatalf("old2: %q %v", v, err)
	}
	if _, err := db.Get([]byte("old1")); err != ErrNotFound {
		t.Fatalf("legacy delete lost: %v", err)
	}
	if got := db.Stats().SequenceNumber; got != 3 {
		t.Fatalf("sequence not recovered from legacy log: %d", got)
	}
	// New writes (batch records) append to the same log and survive a
	// further crash-reopen cycle alongside the legacy data.
	db.Put([]byte("new"), []byte("nv"))
	db.wlog.Sync()
	crashStop(db)
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k, want := range map[string]string{"old2": "v2", "new": "nv"} {
		if v, err := db2.Get([]byte(k)); err != nil || string(v) != want {
			t.Fatalf("%s after mixed-format replay: %q %v", k, v, err)
		}
	}
}

// TestWALSegmentsReclaimedAfterFlush: flushed memtables release their WAL
// segments (RemoveBefore), so the log does not grow without bound while
// the active memtable keeps its own records recoverable.
func TestWALSegmentsReclaimedAfterFlush(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, MemtableBytes: 4 << 10, WALSyncPolicy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("w"), 256)
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("seg%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	// Everything is flushed: only the active (post-rotation) segment may
	// remain. Allow one straggler for scheduling slack.
	if len(segs) > 2 {
		t.Fatalf("WAL segments not reclaimed: %d remain", len(segs))
	}
	if db.Stats().Flushes < 2 {
		t.Fatalf("expected multiple background flushes, got %d", db.Stats().Flushes)
	}
}

// TestPMemWALSegmentsReclaimedAfterFlush: the same reclamation guarantee
// through a PMem-fronted WAL — PMemLog implements wal.Rotator by
// draining its ring and delegating to the backing log, so the
// file-backed tail of the WAL-PMem strategy no longer grows without
// bound (a seed-era gap: the LSM used to type-assert *wal.Log and skip
// reclamation for every other Appender).
func TestPMemWALSegmentsReclaimedAfterFlush(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{
		Dir:           dir,
		MemtableBytes: 4 << 10,
		WALFactory: func(walDir string) (wal.Appender, error) {
			dev := pmem.OpenVolatile(64<<10, pmem.Latency{})
			ring, err := pmem.NewRing(dev)
			if err != nil {
				return nil, err
			}
			back, err := wal.Open(wal.Options{Dir: walDir, Policy: wal.SyncNever})
			if err != nil {
				return nil, err
			}
			return wal.NewPMemLog(ring, back), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("w"), 256)
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("seg%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("PMem-backed WAL segments not reclaimed: %d remain", len(segs))
	}
	if db.Stats().Flushes < 2 {
		t.Fatalf("expected multiple background flushes, got %d", db.Stats().Flushes)
	}
}

// TestImmutableBacklogBounded: the rotation backpressure keeps at most
// MaxImmutables sealed memtables queued.
func TestImmutableBacklogBounded(t *testing.T) {
	db := testDB(t, Options{DisableWAL: true, MemtableBytes: 2 << 10, MaxImmutables: 2})
	val := bytes.Repeat([]byte("b"), 128)
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("bp%04d", i)), val); err != nil {
			t.Fatal(err)
		}
		if n := db.Stats().Immutables; n > 2 {
			t.Fatalf("immutable backlog %d exceeds MaxImmutables", n)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("bp%04d", i))); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
}

// TestGetValueIsPrivateCopy: mutating a returned value must never corrupt
// the store, wherever the hit came from (memtable, L0 table, block cache).
func TestGetValueIsPrivateCopy(t *testing.T) {
	db := testDB(t, Options{DisableWAL: true})
	db.Put([]byte("alias"), []byte("pristine"))
	v, _ := db.Get([]byte("alias"))
	copy(v, "XXXXXXXX")
	if got, _ := db.Get([]byte("alias")); string(got) != "pristine" {
		t.Fatalf("memtable hit aliased: %q", got)
	}
	db.Flush()
	v, _ = db.Get([]byte("alias")) // first table read populates block cache
	copy(v, "YYYYYYYY")
	if got, _ := db.Get([]byte("alias")); string(got) != "pristine" {
		t.Fatalf("table/block-cache hit aliased: %q", got)
	}
	vals, found, err := db.MultiGet([][]byte{[]byte("alias")})
	if err != nil || !found[0] {
		t.Fatal(err)
	}
	copy(vals[0], "ZZZZZZZZ")
	if got, _ := db.Get([]byte("alias")); string(got) != "pristine" {
		t.Fatalf("MultiGet hit aliased: %q", got)
	}
}
