package lsm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func buildTestTable(t *testing.T, dir string, n int, cache *blockCache) (*tableReader, tableMeta) {
	t.Helper()
	tb, err := newTableBuilder(tableFileName(dir, 1), 512, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key%06d", i))
		if err := tb.add(key, memEntry{seq: uint64(i + 1), value: []byte(fmt.Sprintf("val%06d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := tb.finish(1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := openTable(dir, meta, cache)
	if err != nil {
		t.Fatal(err)
	}
	return r, meta
}

func TestSSTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, meta := buildTestTable(t, dir, 500, nil)
	defer r.unref()
	if meta.Count != 500 {
		t.Fatalf("count = %d", meta.Count)
	}
	if string(meta.Smallest) != "key000000" || string(meta.Largest) != "key000499" {
		t.Fatalf("range %q..%q", meta.Smallest, meta.Largest)
	}
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key%06d", i))
		e, ok, err := r.get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("missing %s", key)
		}
		if want := fmt.Sprintf("val%06d", i); string(e.value) != want {
			t.Fatalf("got %q want %q", e.value, want)
		}
		if e.seq != uint64(i+1) {
			t.Fatalf("seq %d", e.seq)
		}
	}
}

func TestSSTableMissingKeys(t *testing.T) {
	dir := t.TempDir()
	r, _ := buildTestTable(t, dir, 100, nil)
	defer r.unref()
	for _, k := range []string{"aaa", "key000050x", "zzz", "key999999"} {
		if _, ok, err := r.get([]byte(k)); err != nil || ok {
			t.Fatalf("key %q: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestSSTableOutOfOrderRejected(t *testing.T) {
	dir := t.TempDir()
	tb, err := newTableBuilder(tableFileName(dir, 1), 512, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.abandon()
	if err := tb.add([]byte("b"), memEntry{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.add([]byte("a"), memEntry{}); err == nil {
		t.Fatal("out-of-order add should fail")
	}
	if err := tb.add([]byte("b"), memEntry{}); err == nil {
		t.Fatal("duplicate add should fail")
	}
}

func TestSSTableIterator(t *testing.T) {
	dir := t.TempDir()
	r, _ := buildTestTable(t, dir, 300, nil)
	defer r.unref()
	it := r.iter()
	i := 0
	var prev []byte
	for it.next() {
		if prev != nil && bytes.Compare(it.key(), prev) <= 0 {
			t.Fatal("iterator not sorted")
		}
		prev = append(prev[:0], it.key()...)
		i++
	}
	if it.err != nil {
		t.Fatal(it.err)
	}
	if i != 300 {
		t.Fatalf("iterated %d entries", i)
	}
}

func TestSSTableIteratorSeekGE(t *testing.T) {
	dir := t.TempDir()
	r, _ := buildTestTable(t, dir, 300, nil)
	defer r.unref()
	it := r.iter()
	if !it.seekGE([]byte("key000100")) || string(it.key()) != "key000100" {
		t.Fatalf("seek exact: %q", it.key())
	}
	it2 := r.iter()
	if !it2.seekGE([]byte("key0000995")) || string(it2.key()) != "key000100" {
		t.Fatalf("seek between: %q", it2.key())
	}
	it3 := r.iter()
	if it3.seekGE([]byte("zzz")) {
		t.Fatal("seek past end should fail")
	}
	// After seek, next() continues in order.
	it4 := r.iter()
	it4.seekGE([]byte("key000298"))
	if !it4.next() || string(it4.key()) != "key000299" {
		t.Fatalf("next after seek: %q", it4.key())
	}
	if it4.next() {
		t.Fatal("iterator should be exhausted")
	}
}

func TestSSTableTombstonesPreserved(t *testing.T) {
	dir := t.TempDir()
	tb, _ := newTableBuilder(tableFileName(dir, 1), 512, 10)
	tb.add([]byte("dead"), memEntry{seq: 5, kind: kindDelete})
	tb.add([]byte("live"), memEntry{seq: 6, value: []byte("v")})
	meta, err := tb.finish(1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := openTable(dir, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.unref()
	e, ok, _ := r.get([]byte("dead"))
	if !ok || e.kind != kindDelete {
		t.Fatalf("tombstone lost: %v %+v", ok, e)
	}
}

func TestSSTableCorruptBlockDetected(t *testing.T) {
	dir := t.TempDir()
	r, meta := buildTestTable(t, dir, 200, nil)
	r.unref()
	// Flip a byte in the first data block.
	path := tableFileName(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := openTable(dir, meta, nil)
	if err != nil {
		t.Fatal(err) // index/footer are intact
	}
	defer r2.unref()
	_, _, err = r2.get([]byte("key000000"))
	if err != errBadBlock {
		t.Fatalf("want errBadBlock, got %v", err)
	}
}

func TestSSTableBadMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "000001.sst")
	os.WriteFile(path, bytes.Repeat([]byte{0}, 100), 0o644)
	if _, err := openTable(dir, tableMeta{Num: 1}, nil); err != errBadMagic {
		t.Fatalf("want errBadMagic, got %v", err)
	}
	os.WriteFile(path, []byte{1, 2, 3}, 0o644)
	if _, err := openTable(dir, tableMeta{Num: 1}, nil); err != errBadFooter {
		t.Fatalf("want errBadFooter, got %v", err)
	}
}

func TestSSTableWithCache(t *testing.T) {
	dir := t.TempDir()
	cache := newBlockCache(1 << 20)
	r, _ := buildTestTable(t, dir, 500, cache)
	defer r.unref()
	key := []byte("key000042")
	r.get(key)
	h0, _, _ := cache.stats()
	r.get(key)
	h1, _, _ := cache.stats()
	if h1 <= h0 {
		t.Fatalf("second read should hit cache: hits %d -> %d", h0, h1)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	c := newBlockCache(100)
	c.put(1, 0, make([]byte, 60))
	c.put(1, 60, make([]byte, 60)) // exceeds 100 -> evict oldest
	if _, ok := c.get(1, 0); ok {
		t.Fatal("oldest block should be evicted")
	}
	if _, ok := c.get(1, 60); !ok {
		t.Fatal("newest block should remain")
	}
}

func TestBlockCacheDropFile(t *testing.T) {
	c := newBlockCache(1 << 20)
	c.put(1, 0, []byte("a"))
	c.put(2, 0, []byte("b"))
	c.dropFile(1)
	if _, ok := c.get(1, 0); ok {
		t.Fatal("dropped file still cached")
	}
	if _, ok := c.get(2, 0); !ok {
		t.Fatal("other file evicted by dropFile")
	}
}

func TestBlockCacheUpdateSameKey(t *testing.T) {
	c := newBlockCache(1000)
	c.put(1, 0, make([]byte, 100))
	c.put(1, 0, make([]byte, 200))
	_, _, bytes := c.stats()
	if bytes != 200 {
		t.Fatalf("bytes = %d, want 200", bytes)
	}
}

func TestNilBlockCache(t *testing.T) {
	if c := newBlockCache(0); c != nil {
		t.Fatal("zero-size cache should be nil")
	}
	if c := newBlockCache(-1); c != nil {
		t.Fatal("negative-size cache should be nil")
	}
}
