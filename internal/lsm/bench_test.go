package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

// Storage-tier benchmarks (CI tracks these in BENCH_<sha>.json).
//
// The interesting comparisons:
//   - ApplyBatch16 vs 16×Put: one WAL record + one commit section vs 16.
//   - MultiGet16* vs Get16Seq*: one snapshot + one level walk + shared
//     block decodes vs 16 independent probes.
//   - GetDuringFlush: p50 read latency while the memtable flushes — the
//     background pipeline keeps reads off the old inline-build stall.

func benchDB(b *testing.B, opts Options) *DB {
	b.Helper()
	if opts.Dir == "" {
		opts.Dir = b.TempDir()
	}
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// fillTables loads n sequential keys and flushes them into tables.
func fillTables(b *testing.B, db *DB, n, valSize int) {
	b.Helper()
	val := bytes.Repeat([]byte("v"), valSize)
	batch := &Batch{}
	for i := 0; i < n; i++ {
		batch.Put([]byte(benchKey(i)), val)
		if batch.Len() == 256 {
			if err := db.Apply(batch); err != nil {
				b.Fatal(err)
			}
			batch.Reset()
		}
	}
	if err := db.Apply(batch); err != nil {
		b.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
}

func benchKey(i int) string { return fmt.Sprintf("key%08d", i) }

func BenchmarkLSMPut(b *testing.B) {
	db := benchDB(b, Options{DisableWAL: true, MemtableBytes: 1 << 30})
	val := bytes.Repeat([]byte("v"), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(benchKey(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSMApplyBatch16(b *testing.B) {
	db := benchDB(b, Options{DisableWAL: true, MemtableBytes: 1 << 30})
	val := bytes.Repeat([]byte("v"), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := &Batch{}
		for j := 0; j < 16; j++ {
			batch.Put([]byte(benchKey(i*16+j)), val)
		}
		if err := db.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*16)/float64(b.Elapsed().Nanoseconds())*1e9, "keys/s")
}

// BenchmarkLSMPutParallel: concurrent single-key writers exercising the
// group-commit queue (with a real WAL so coalescing has something to
// amortize).
func BenchmarkLSMPutParallelWAL(b *testing.B) {
	db := benchDB(b, Options{MemtableBytes: 1 << 30})
	val := bytes.Repeat([]byte("v"), 100)
	var n atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := n.Add(1)
			if err := db.Put([]byte(benchKey(int(i))), val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkLSMGetWarm(b *testing.B) {
	db := benchDB(b, Options{DisableWAL: true})
	fillTables(b, db, 10000, 100)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(benchKey(rng.Intn(10000)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSMGetColdCache(b *testing.B) {
	db := benchDB(b, Options{DisableWAL: true, BlockCacheBytes: -1})
	fillTables(b, db, 10000, 100)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(benchKey(rng.Intn(10000)))); err != nil {
			b.Fatal(err)
		}
	}
}

// adjacentRun returns 16 keys from a random contiguous run — the MGET
// shape the tiered batch path produces for range-local workloads, where
// one decoded block serves several keys.
func adjacentRun(rng *rand.Rand, n int) [][]byte {
	start := rng.Intn(n - 16)
	keys := make([][]byte, 16)
	for j := range keys {
		keys[j] = []byte(benchKey(start + j))
	}
	return keys
}

func BenchmarkLSMMultiGet16ColdCache(b *testing.B) {
	db := benchDB(b, Options{DisableWAL: true, BlockCacheBytes: -1})
	fillTables(b, db, 10000, 100)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, found, err := db.MultiGet(adjacentRun(rng, 10000))
		if err != nil {
			b.Fatal(err)
		}
		for _, ok := range found {
			if !ok {
				b.Fatal("missing key")
			}
		}
	}
}

// BenchmarkLSMGet16SeqColdCache is the per-key baseline for MultiGet16:
// the same 16 adjacent keys issued as sequential Gets.
func BenchmarkLSMGet16SeqColdCache(b *testing.B) {
	db := benchDB(b, Options{DisableWAL: true, BlockCacheBytes: -1})
	fillTables(b, db, 10000, 100)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range adjacentRun(rng, 10000) {
			if _, err := db.Get(k); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLSMGetDuringFlush measures point-read latency while a writer
// keeps tripping memtable rotations. With the inline-flush design every
// reader stalled behind the SSTable build; with the background pipeline a
// rotation costs readers one pointer swap.
func BenchmarkLSMGetDuringFlush(b *testing.B) {
	db := benchDB(b, Options{DisableWAL: true, MemtableBytes: 256 << 10})
	fillTables(b, db, 10000, 100)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		val := bytes.Repeat([]byte("w"), 1024)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Put([]byte(benchKey(i%10000)), val); err != nil {
				return
			}
		}
	}()
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(benchKey(rng.Intn(10000)))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}
