package lsm

import (
	"encoding/binary"
	"errors"
)

// Batch is an ordered set of writes committed as one unit by DB.Apply:
// one sequence range, one WAL record (one append, one fsync window), one
// pass over the memtable. Atomicity is a durability property — crash
// replay applies the whole record or none of it — not read isolation: a
// concurrent reader may observe a prefix of a batch mid-apply (the
// memtable updates keys in place, so point-in-time read snapshots over it
// are not possible; see view.acquireView). Keys and values are copied in
// at Put/Delete time, so callers may reuse their buffers immediately.
type Batch struct {
	ops   []batchOp
	bytes int64
}

type batchOp struct {
	kind entryKind
	key  []byte
	val  []byte
}

// Put queues key=value.
func (b *Batch) Put(key, val []byte) {
	b.ops = append(b.ops, batchOp{
		kind: kindSet,
		key:  append([]byte(nil), key...),
		val:  append([]byte(nil), val...),
	})
	b.bytes += int64(len(key) + len(val))
}

// Delete queues a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{kind: kindDelete, key: append([]byte(nil), key...)})
	b.bytes += int64(len(key))
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.ops = b.ops[:0]
	b.bytes = 0
}

var errEmptyKey = errors.New("lsm: empty key")

// batchWriter is one Apply call waiting in the group-commit queue.
type batchWriter struct {
	b    *Batch
	err  error
	done chan struct{}
}

// Apply commits the batch atomically. Concurrent Apply calls coalesce: the
// first writer to find the queue empty becomes the leader, and while it
// commits (WAL append + fsync + memtable insert) later writers pile into
// the pending queue; the next leader commits them all as ONE group — one
// WAL record, one fsync window, one commit critical section — and fans the
// result back out. This is the storage-tier analog of the cache tier's
// per-key write coalescing: sequential callers pay no extra latency, and
// under contention the WAL cost is amortized across the whole group.
func (db *DB) Apply(b *Batch) error {
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	for _, op := range b.ops {
		if len(op.key) == 0 {
			return errEmptyKey
		}
	}
	w := &batchWriter{b: b, done: make(chan struct{})}
	db.pendMu.Lock()
	db.pend = append(db.pend, w)
	leader := len(db.pend) == 1
	db.pendMu.Unlock()
	if !leader {
		<-w.done
		return w.err
	}
	db.commitMu.Lock()
	db.pendMu.Lock()
	group := db.pend
	db.pend = nil // arrivals from here on elect the next leader
	db.pendMu.Unlock()
	db.commitGroup(group)
	db.commitMu.Unlock()
	return w.err
}

// commitGroup commits a group of batches as one unit. Caller holds
// commitMu. The group is all-or-nothing against the WAL: if the single
// append fails, nothing reaches the memtable.
func (db *DB) commitGroup(group []*batchWriter) {
	finish := func(err error) {
		for _, w := range group {
			w.err = err
			close(w.done)
		}
	}
	var n int
	var bytes int64
	for _, w := range group {
		n += len(w.b.ops)
		bytes += w.b.bytes
	}

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		finish(ErrDBClosed)
		return
	}
	if err := db.flushErr; err != nil {
		db.mu.Unlock()
		finish(err)
		return
	}
	base := db.seq + 1
	db.seq += uint64(n)
	mem := db.mem // stable: rotation happens only under commitMu, which we hold
	db.mu.Unlock()

	if db.wlog != nil {
		if err := db.wlog.Append(encodeBatchRecord(base, group, n, int(bytes))); err != nil {
			// The sequence range is burned but unused; replay tolerates gaps.
			finish(err)
			return
		}
	}
	seq := base
	for _, w := range group {
		for _, op := range w.b.ops {
			mem.apply(seq, op.kind, op.key, op.val)
			seq++
		}
	}
	db.writeBytes.Add(bytes)
	finish(nil)

	if mem.sl.approximateSize() >= db.opts.MemtableBytes {
		if err := db.rotate(); err != nil && !errors.Is(err, ErrDBClosed) {
			// The group is durable and applied; the rotation failure will
			// resurface on the next write via flushErr/WAL state.
			db.failFlush(err)
		}
	}
}

// WAL record formats.
//
// Legacy (seed) single-op record:
//
//	uvarint seq | kind byte | uvarint klen | key | uvarint vlen | val
//
// Batch record (self-describing, distinguishes itself from legacy records
// by its first byte: sequence numbers start at 1, so a legacy record's
// leading seq uvarint never encodes to 0x00):
//
//	0x00 | version byte (1) | uvarint baseSeq | uvarint count |
//	count × ( kind byte | uvarint klen | key | uvarint vlen | val )
//
// Operation i carries sequence baseSeq+i. One batch (or one whole commit
// group) is one record, so crash replay sees it all-or-nothing: a torn or
// corrupt tail record drops the entire group, never half of it.
const (
	batchRecMarker  = 0x00
	batchRecVersion = 1
)

func encodeBatchRecord(base uint64, group []*batchWriter, n, bytes int) []byte {
	buf := make([]byte, 0, 2+2*binary.MaxVarintLen64+n*(1+2*binary.MaxVarintLen64)+bytes)
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, batchRecMarker, batchRecVersion)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], base)]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(n))]...)
	for _, w := range group {
		for _, op := range w.b.ops {
			buf = append(buf, byte(op.kind))
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(op.key)))]...)
			buf = append(buf, op.key...)
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(op.val)))]...)
			buf = append(buf, op.val...)
		}
	}
	return buf
}

var errBadBatchRecord = errors.New("lsm: bad wal batch record")

// decodeBatchRecord calls fn for each operation in a batch record. Key and
// value slices alias p.
func decodeBatchRecord(p []byte, fn func(seq uint64, kind entryKind, key, val []byte) error) error {
	if len(p) < 2 || p[0] != batchRecMarker {
		return errBadBatchRecord
	}
	if p[1] != batchRecVersion {
		return errBadBatchRecord
	}
	p = p[2:]
	base, n := binary.Uvarint(p)
	if n <= 0 {
		return errBadBatchRecord
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return errBadBatchRecord
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		if len(p) < 1 {
			return errBadBatchRecord
		}
		kind := entryKind(p[0])
		p = p[1:]
		// Compare lengths in uint64: casting a corrupt huge klen to int
		// would wrap negative, pass the guard, and panic at the slice.
		klen, n := binary.Uvarint(p)
		if n <= 0 || klen > uint64(len(p)-n) {
			return errBadBatchRecord
		}
		p = p[n:]
		key := p[:klen]
		p = p[klen:]
		vlen, n := binary.Uvarint(p)
		if n <= 0 || vlen > uint64(len(p)-n) {
			return errBadBatchRecord
		}
		p = p[n:]
		val := p[:vlen]
		p = p[vlen:]
		if err := fn(base+i, kind, key, val); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return errBadBatchRecord
	}
	return nil
}

// replayWALRecord dispatches one WAL payload to fn, decoding either format.
func replayWALRecord(p []byte, fn func(seq uint64, kind entryKind, key, val []byte) error) error {
	if len(p) > 0 && p[0] == batchRecMarker {
		return decodeBatchRecord(p, fn)
	}
	seq, kind, key, val, err := decodeWALRecord(p)
	if err != nil {
		return err
	}
	return fn(seq, kind, key, val)
}
