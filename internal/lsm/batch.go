package lsm

import (
	"encoding/binary"
	"errors"
	"sync"
)

// Batch is an ordered set of writes committed as one unit by DB.Apply:
// one sequence range, one WAL record (one append, one fsync window), one
// pass over the memtable. Atomicity is a durability property — crash
// replay applies the whole record or none of it — not read isolation: a
// concurrent reader may observe a prefix of a batch mid-apply (the
// memtable updates keys in place, so point-in-time read snapshots over it
// are not possible; see view.acquireView). Keys and values are copied in
// at Put/Delete time, so callers may reuse their buffers immediately.
type Batch struct {
	ops   []batchOp
	bytes int64
}

type batchOp struct {
	kind entryKind
	key  []byte
	val  []byte
}

// Put queues key=value. Key and value are copied into one combined slab
// (a single allocation per op). The slab must stay private to this op: the
// memtable aliases it after Apply, so Reset never recycles it.
func (b *Batch) Put(key, val []byte) {
	kv := make([]byte, 0, len(key)+len(val))
	kv = append(kv, key...)
	kv = append(kv, val...)
	b.ops = append(b.ops, batchOp{
		kind: kindSet,
		key:  kv[:len(key):len(key)],
		val:  kv[len(key):],
	})
	b.bytes += int64(len(key) + len(val))
}

// Delete queues a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{kind: kindDelete, key: append([]byte(nil), key...)})
	b.bytes += int64(len(key))
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.ops = b.ops[:0]
	b.bytes = 0
}

var errEmptyKey = errors.New("lsm: empty key")

// batchWriter is one Apply call waiting in the group-commit queue.
// Writers are pooled: done is a 1-buffered channel used as a completion
// token (commitGroup sends exactly one token per writer; each Apply call
// drains its own token, including the leader's), never closed, so the
// same writer — and its channel — can be reused by the next Apply.
type batchWriter struct {
	b    *Batch
	err  error
	done chan struct{}
}

var writerPool = sync.Pool{
	New: func() any { return &batchWriter{done: make(chan struct{}, 1)} },
}

// Apply commits the batch atomically. Concurrent Apply calls coalesce: the
// first writer to find the queue empty becomes the leader, and while it
// commits (WAL append + fsync + memtable insert) later writers pile into
// the pending queue; the next leader commits them all as ONE group — one
// WAL record, one fsync window, one commit critical section — and fans the
// result back out. This is the storage-tier analog of the cache tier's
// per-key write coalescing: sequential callers pay no extra latency, and
// under contention the WAL cost is amortized across the whole group.
func (db *DB) Apply(b *Batch) error {
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	for _, op := range b.ops {
		if len(op.key) == 0 {
			return errEmptyKey
		}
	}
	w := writerPool.Get().(*batchWriter)
	w.b, w.err = b, nil
	db.pendMu.Lock()
	if db.pend == nil && db.pendSpare != nil {
		db.pend, db.pendSpare = db.pendSpare, nil
	}
	db.pend = append(db.pend, w)
	leader := len(db.pend) == 1
	db.pendMu.Unlock()
	if !leader {
		<-w.done
		err := w.err
		w.b = nil
		writerPool.Put(w)
		return err
	}
	db.commitMu.Lock()
	db.pendMu.Lock()
	group := db.pend
	db.pend = nil // arrivals from here on elect the next leader
	db.pendMu.Unlock()
	db.commitGroup(group)
	db.commitMu.Unlock()
	<-w.done // commitGroup already sent our token; never blocks
	err := w.err
	w.b = nil
	writerPool.Put(w)
	// Recycle the group slice for a future leader. Entries were cleared by
	// commitGroup, so the spare does not root pooled writers.
	db.pendMu.Lock()
	if db.pendSpare == nil {
		db.pendSpare = group[:0]
	}
	db.pendMu.Unlock()
	return err
}

// commitGroup commits a group of batches as one unit. Caller holds
// commitMu. The group is all-or-nothing against the WAL: if the single
// append fails, nothing reaches the memtable.
func (db *DB) commitGroup(group []*batchWriter) {
	finish := func(err error) {
		for i, w := range group {
			w.err = err
			w.done <- struct{}{} // completion token; done is 1-buffered
			group[i] = nil       // don't root pooled writers via pendSpare
		}
	}
	var n int
	var bytes int64
	for _, w := range group {
		n += len(w.b.ops)
		bytes += w.b.bytes
	}

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		finish(ErrDBClosed)
		return
	}
	if err := db.flushErr; err != nil {
		db.mu.Unlock()
		finish(err)
		return
	}
	base := db.seq + 1
	db.seq += uint64(n)
	mem := db.mem // stable: rotation happens only under commitMu, which we hold
	db.mu.Unlock()

	if db.wlog != nil {
		// The encode scratch is guarded by commitMu (held here) and reused
		// across commits; wal.Append copies the payload out before returning.
		db.walBuf = encodeBatchRecordInto(db.walBuf[:0], base, group, n, int(bytes))
		err := db.wlog.Append(db.walBuf)
		if cap(db.walBuf) > maxWALScratch {
			db.walBuf = nil // don't pin a huge batch's buffer forever
		}
		if err != nil {
			// The sequence range is burned but unused; replay tolerates gaps.
			finish(err)
			return
		}
	}
	seq := base
	for _, w := range group {
		for _, op := range w.b.ops {
			mem.apply(seq, op.kind, op.key, op.val)
			seq++
		}
	}
	db.writeBytes.Add(bytes)
	finish(nil)

	if mem.sl.approximateSize() >= db.opts.MemtableBytes {
		if err := db.rotate(); err != nil && !errors.Is(err, ErrDBClosed) {
			// The group is durable and applied; the rotation failure will
			// resurface on the next write via flushErr/WAL state.
			db.failFlush(err)
		}
	}
}

// WAL record formats.
//
// Legacy (seed) single-op record:
//
//	uvarint seq | kind byte | uvarint klen | key | uvarint vlen | val
//
// Batch record (self-describing, distinguishes itself from legacy records
// by its first byte: sequence numbers start at 1, so a legacy record's
// leading seq uvarint never encodes to 0x00):
//
//	0x00 | version byte (1) | uvarint baseSeq | uvarint count |
//	count × ( kind byte | uvarint klen | key | uvarint vlen | val )
//
// Operation i carries sequence baseSeq+i. One batch (or one whole commit
// group) is one record, so crash replay sees it all-or-nothing: a torn or
// corrupt tail record drops the entire group, never half of it.
const (
	batchRecMarker  = 0x00
	batchRecVersion = 1
)

// maxWALScratch caps the retained size of the reused WAL encode buffer.
const maxWALScratch = 1 << 20

func encodeBatchRecord(base uint64, group []*batchWriter, n, bytes int) []byte {
	return encodeBatchRecordInto(nil, base, group, n, bytes)
}

// encodeBatchRecordInto appends the batch record for group to buf.
func encodeBatchRecordInto(buf []byte, base uint64, group []*batchWriter, n, bytes int) []byte {
	if need := 2 + 2*binary.MaxVarintLen64 + n*(1+2*binary.MaxVarintLen64) + bytes; cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, batchRecMarker, batchRecVersion)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], base)]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(n))]...)
	for _, w := range group {
		for _, op := range w.b.ops {
			buf = append(buf, byte(op.kind))
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(op.key)))]...)
			buf = append(buf, op.key...)
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(op.val)))]...)
			buf = append(buf, op.val...)
		}
	}
	return buf
}

var errBadBatchRecord = errors.New("lsm: bad wal batch record")

// decodeBatchRecord calls fn for each operation in a batch record. Key and
// value slices alias p.
func decodeBatchRecord(p []byte, fn func(seq uint64, kind entryKind, key, val []byte) error) error {
	if len(p) < 2 || p[0] != batchRecMarker {
		return errBadBatchRecord
	}
	if p[1] != batchRecVersion {
		return errBadBatchRecord
	}
	p = p[2:]
	base, n := binary.Uvarint(p)
	if n <= 0 {
		return errBadBatchRecord
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return errBadBatchRecord
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		if len(p) < 1 {
			return errBadBatchRecord
		}
		kind := entryKind(p[0])
		p = p[1:]
		// Compare lengths in uint64: casting a corrupt huge klen to int
		// would wrap negative, pass the guard, and panic at the slice.
		klen, n := binary.Uvarint(p)
		if n <= 0 || klen > uint64(len(p)-n) {
			return errBadBatchRecord
		}
		p = p[n:]
		key := p[:klen]
		p = p[klen:]
		vlen, n := binary.Uvarint(p)
		if n <= 0 || vlen > uint64(len(p)-n) {
			return errBadBatchRecord
		}
		p = p[n:]
		val := p[:vlen]
		p = p[vlen:]
		if err := fn(base+i, kind, key, val); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return errBadBatchRecord
	}
	return nil
}

// replayWALRecord dispatches one WAL payload to fn, decoding either format.
func replayWALRecord(p []byte, fn func(seq uint64, kind entryKind, key, val []byte) error) error {
	if len(p) > 0 && p[0] == batchRecMarker {
		return decodeBatchRecord(p, fn)
	}
	seq, kind, key, val, err := decodeWALRecord(p)
	if err != nil {
		return err
	}
	return fn(seq, kind, key, val)
}
