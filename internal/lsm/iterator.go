package lsm

import (
	"bytes"
)

// KV is one key-value pair returned by Scan.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit live pairs with start <= key < end, in key
// order. A nil end means unbounded; limit <= 0 means no limit. The scan
// runs against a captured view (frozen table hierarchy + live active
// memtable; see view for the isolation contract) and holds no DB lock
// during its block I/O, so it never stalls writers or flushes — writes
// committed while the scan runs may or may not appear. It is intended for
// bounded range reads (wide-column row scans, verification sweeps), not
// full-database dumps under write load.
func (db *DB) Scan(start, end []byte, limit int) ([]KV, error) {
	v, err := db.acquireView()
	if err != nil {
		return nil, err
	}
	defer v.release()
	iters := make([]internalIter, 0, 2+len(v.imm)+len(v.ver.readers))
	iters = append(iters, v.mem.sl.iter())
	for _, m := range v.imm {
		iters = append(iters, m.sl.iter())
	}
	for _, lvl := range v.ver.man.Levels {
		for _, meta := range lvl {
			if r := v.ver.readers[meta.Num]; r != nil {
				iters = append(iters, r.iter())
			}
		}
	}
	if start != nil {
		positioned := iters[:0]
		for _, it := range iters {
			if it.seekGE(start) {
				positioned = append(positioned, &peekedIter{it: it, peeked: true})
			}
		}
		iters = positioned
	}
	m := newMergeIter(iters)
	var out []KV
	for m.next() {
		if end != nil && bytes.Compare(m.key(), end) >= 0 {
			break
		}
		e := m.entry()
		if e.kind == kindDelete {
			continue
		}
		out = append(out, KV{
			Key:   append([]byte(nil), m.key()...),
			Value: append([]byte(nil), e.value...),
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, m.err()
}

// peekedIter adapts an iterator that has already been positioned by seekGE:
// the first next() reports the current position instead of advancing.
type peekedIter struct {
	it     internalIter
	peeked bool
}

func (p *peekedIter) next() bool {
	if p.peeked {
		p.peeked = false
		return true
	}
	return p.it.next()
}

func (p *peekedIter) seekGE(key []byte) bool {
	p.peeked = false
	return p.it.seekGE(key)
}

func (p *peekedIter) key() []byte     { return p.it.key() }
func (p *peekedIter) entry() memEntry { return p.it.entry() }
