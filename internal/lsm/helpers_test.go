package lsm

import "os"

func mkdirTemp(dir, pattern string) (string, error) { return os.MkdirTemp(dir, pattern) }
func removeAll(path string)                         { os.RemoveAll(path) }
