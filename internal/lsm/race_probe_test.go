package lsm

import (
	"sync"
	"testing"
)

// Probe: Scan over the active memtable while the same key is overwritten
// in place (no rotation: huge MemtableBytes).
func TestRaceProbeScanVsInPlaceOverwrite(t *testing.T) {
	db := testDB(t, Options{DisableWAL: true, MemtableBytes: 64 << 20})
	db.Put([]byte("k"), []byte("v0"))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.Put([]byte("k"), []byte("vvvvvvvvvv"))
		}
	}()
	for i := 0; i < 2000; i++ {
		if _, err := db.Scan(nil, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
