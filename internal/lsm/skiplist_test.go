package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSkiplistPutGet(t *testing.T) {
	s := newSkiplist()
	s.put([]byte("b"), memEntry{seq: 1, value: []byte("v1")})
	s.put([]byte("a"), memEntry{seq: 2, value: []byte("v2")})
	e, ok := s.get([]byte("a"))
	if !ok || string(e.value) != "v2" {
		t.Fatalf("get a: %v %q", ok, e.value)
	}
	if _, ok := s.get([]byte("c")); ok {
		t.Fatal("phantom key")
	}
}

func TestSkiplistOverwrite(t *testing.T) {
	s := newSkiplist()
	s.put([]byte("k"), memEntry{seq: 1, value: []byte("old")})
	s.put([]byte("k"), memEntry{seq: 2, value: []byte("newer")})
	e, _ := s.get([]byte("k"))
	if string(e.value) != "newer" || e.seq != 2 {
		t.Fatalf("overwrite failed: %+v", e)
	}
	if s.entries() != 1 {
		t.Fatalf("entries = %d", s.entries())
	}
}

func TestSkiplistTombstone(t *testing.T) {
	s := newSkiplist()
	s.put([]byte("k"), memEntry{seq: 1, value: []byte("v")})
	s.put([]byte("k"), memEntry{seq: 2, kind: kindDelete})
	e, ok := s.get([]byte("k"))
	if !ok || e.kind != kindDelete {
		t.Fatalf("tombstone lost: %v %+v", ok, e)
	}
}

func TestSkiplistOrderedIteration(t *testing.T) {
	s := newSkiplist()
	keys := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for i, k := range keys {
		s.put([]byte(k), memEntry{seq: uint64(i), value: []byte(k)})
	}
	it := s.iter()
	var got []string
	for it.next() {
		got = append(got, string(it.key()))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestSkiplistSeekGE(t *testing.T) {
	s := newSkiplist()
	for _, k := range []string{"b", "d", "f"} {
		s.put([]byte(k), memEntry{value: []byte(k)})
	}
	it := s.iter()
	if !it.seekGE([]byte("c")) || string(it.key()) != "d" {
		t.Fatalf("seekGE(c) -> %q", it.key())
	}
	if !it.seekGE([]byte("b")) || string(it.key()) != "b" {
		t.Fatalf("seekGE(b) -> %q", it.key())
	}
	if it.seekGE([]byte("g")) {
		t.Fatal("seekGE past end should fail")
	}
}

func TestSkiplistSizeAccounting(t *testing.T) {
	s := newSkiplist()
	if s.approximateSize() != 0 {
		t.Fatal("fresh list not empty")
	}
	s.put([]byte("key"), memEntry{value: make([]byte, 100)})
	sz := s.approximateSize()
	if sz < 100 {
		t.Fatalf("size %d too small", sz)
	}
	// Overwrite with a smaller value must shrink accounting.
	s.put([]byte("key"), memEntry{value: make([]byte, 10)})
	if s.approximateSize() >= sz {
		t.Fatalf("size did not shrink: %d -> %d", sz, s.approximateSize())
	}
}

func TestSkiplistMatchesMapProperty(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val uint16
	}) bool {
		s := newSkiplist()
		ref := map[string][]byte{}
		for i, op := range ops {
			k := []byte{op.Key % 32}
			v := []byte(fmt.Sprint(op.Val))
			s.put(k, memEntry{seq: uint64(i), value: v})
			ref[string(k)] = v
		}
		for k, v := range ref {
			e, ok := s.get([]byte(k))
			if !ok || !bytes.Equal(e.value, v) {
				return false
			}
		}
		// Iteration must be sorted and complete.
		it := s.iter()
		var prev []byte
		n := 0
		for it.next() {
			if prev != nil && bytes.Compare(it.key(), prev) <= 0 {
				return false
			}
			prev = append([]byte(nil), it.key()...)
			n++
		}
		return n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSkiplistLarge(t *testing.T) {
	s := newSkiplist()
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%08d", rng.Intn(n)))
		s.put(k, memEntry{seq: uint64(i), value: k})
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%08d", rng.Intn(n)))
		if e, ok := s.get(k); ok && !bytes.Equal(e.value, k) {
			t.Fatalf("value mismatch for %s", k)
		}
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(1000, 10)
	for i := 0; i < 1000; i++ {
		b.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestBloomRejectsMost(t *testing.T) {
	b := newBloom(1000, 10)
	for i := 0; i < 1000; i++ {
		b.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestBloomMarshalRoundTrip(t *testing.T) {
	b := newBloom(100, 10)
	b.Add([]byte("present"))
	b2 := unmarshalBloom(b.Marshal())
	if !b2.MayContain([]byte("present")) {
		t.Fatal("marshal lost key")
	}
	if b2.k != b.k {
		t.Fatalf("k mismatch: %d vs %d", b2.k, b.k)
	}
	// Degenerate input must not panic.
	if !unmarshalBloom(nil).MayContain([]byte("x")) {
		t.Fatal("empty filter should admit everything")
	}
}
