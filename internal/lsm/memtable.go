package lsm

import (
	"os"

	"tierbase/internal/wal"
)

// memtable wraps the skiplist with the bookkeeping the flush pipeline
// needs. A memtable is in one of two states:
//
//   - active: the single memtable receiving writes. Writers are serialized
//     by the commit lock; readers go through the skiplist's internal lock.
//   - sealed (immutable): swapped onto db.imm by a rotation. No writes ever
//     touch it again, so the background flusher and snapshot readers use it
//     without coordination.
//
// maxSeq and walKeepSeg are written only while the memtable is active or
// being sealed (under the commit lock) and read only after sealing (the
// db.mu hand-off into db.imm provides the happens-before edge).
type memtable struct {
	sl     *skiplist
	maxSeq uint64 // highest sequence applied; becomes manifest.LastSeq at flush
	// walKeepSeg is the WAL segment that started when this memtable was
	// sealed. Set at rotation: every record of this memtable lives in
	// segments older than walKeepSeg, so after its flush installs,
	// RemoveBefore(walKeepSeg) reclaims exactly the segments it covered.
	walKeepSeg int
}

func newMemtable() *memtable { return &memtable{sl: newSkiplist()} }

// apply inserts one operation. Caller holds the commit lock (or is Open's
// single-threaded replay).
func (m *memtable) apply(seq uint64, kind entryKind, key, val []byte) {
	m.sl.put(key, memEntry{seq: seq, kind: kind, value: val})
	if seq > m.maxSeq {
		m.maxSeq = seq
	}
}

// rotate seals the active memtable onto the immutable list and installs a
// fresh one, waking the background flusher. Writers therefore never build
// SSTables inline — tripping MemtableBytes costs one pointer swap plus a
// WAL segment rotation. Caller holds commitMu (so no concurrent appends
// race the WAL rotation) and must NOT hold db.mu.
//
// Backpressure: when the flusher is MaxImmutables memtables behind, the
// rotating writer waits — bounding memory without ever blocking readers
// (waiting releases db.mu; snapshot reads only take it briefly).
func (db *DB) rotate() error {
	// Rotate the WAL first: records of the sealed memtable are wholly in
	// segments older than the new one.
	keepSeg := 0
	if db.wlog != nil {
		if l, ok := db.wlog.(wal.Rotator); ok {
			seg, err := l.Rotate()
			if err != nil {
				return err
			}
			keepSeg = seg
		}
	}
	db.mu.Lock()
	for len(db.imm) >= db.opts.MaxImmutables && db.flushErr == nil && !db.closed {
		db.flushCond.Wait()
	}
	if db.closed {
		db.mu.Unlock()
		return ErrDBClosed
	}
	if err := db.flushErr; err != nil {
		db.mu.Unlock()
		return err
	}
	m := db.mem
	m.walKeepSeg = keepSeg
	// Copy-on-write: snapshot views hold the previous slice header.
	db.imm = append(append([]*memtable(nil), db.imm...), m)
	db.mem = newMemtable()
	db.mu.Unlock()
	select {
	case db.flushCh <- struct{}{}:
	default:
	}
	return nil
}

// flushLoop is the background flusher goroutine: it drains sealed
// memtables oldest-first into L0 tables. SSTable construction happens with
// no DB-wide lock held — only the final install takes db.mu.
func (db *DB) flushLoop() {
	defer close(db.flushDone)
	for {
		select {
		case <-db.flushCh:
			for db.flushOne() {
			}
		case <-db.flushStop:
			return
		}
	}
}

// flushOne flushes the oldest immutable memtable; reports work done.
func (db *DB) flushOne() bool {
	db.mu.RLock()
	if db.closed || db.flushErr != nil || len(db.imm) == 0 {
		db.mu.RUnlock()
		return false
	}
	m := db.imm[0]
	db.mu.RUnlock()

	meta, err := db.buildTable(m)
	if err != nil {
		db.failFlush(err)
		return false
	}
	r, err := openTable(db.opts.Dir, meta, db.cache)
	if err != nil {
		os.Remove(tableFileName(db.opts.Dir, meta.Num))
		db.failFlush(err)
		return false
	}

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		r.unref()
		os.Remove(tableFileName(db.opts.Dir, meta.Num))
		return false
	}
	cur := db.current
	newMan := cur.man.clone()
	newMan.NextFile = db.nextFile.Load()
	newMan.LastSeq = m.maxSeq
	newMan.Levels[0] = append(newMan.Levels[0], meta)
	if err := newMan.save(db.opts.Dir); err != nil {
		db.mu.Unlock()
		r.unref()
		os.Remove(tableFileName(db.opts.Dir, meta.Num))
		db.failFlush(err)
		return false
	}
	db.current = cur.successor(newMan, nil, map[uint64]*tableReader{meta.Num: r})
	db.imm = append([]*memtable(nil), db.imm[1:]...)
	db.flushCond.Broadcast()
	db.mu.Unlock()
	cur.unref()

	db.flushes.Add(1)
	if db.wlog != nil && m.walKeepSeg > 0 {
		if l, ok := db.wlog.(wal.Rotator); ok {
			// Best-effort space reclamation; replay filters records with
			// seq <= manifest.LastSeq, so a leftover segment is harmless.
			l.RemoveBefore(m.walKeepSeg)
		}
	}
	db.triggerCompaction()
	return true
}

// buildTable writes memtable m to a new L0 SSTable without holding any DB
// lock (m is sealed, hence immutable).
func (db *DB) buildTable(m *memtable) (tableMeta, error) {
	num := db.allocFileNum()
	tb, err := newTableBuilder(tableFileName(db.opts.Dir, num), db.opts.BlockBytes, db.opts.BloomBitsPerKey)
	if err != nil {
		return tableMeta{}, err
	}
	it := m.sl.iter()
	for it.next() {
		if err := tb.add(it.key(), it.entry()); err != nil {
			tb.abandon()
			return tableMeta{}, err
		}
	}
	return tb.finish(num)
}

// failFlush records a sticky background-flush error. Writers surface it on
// their next rotation; Flush and Close return it.
func (db *DB) failFlush(err error) {
	db.mu.Lock()
	if db.flushErr == nil {
		db.flushErr = err
	}
	db.flushCond.Broadcast()
	db.mu.Unlock()
}
