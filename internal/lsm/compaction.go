package lsm

import (
	"bytes"
	"container/heap"
	"os"
	"sort"
)

// compactionLoop is the single background compactor goroutine ("remote
// compaction" analog: merging happens off the write path). It drains
// trigger signals and runs one compaction round per signal until the
// channel is closed by Close.
func (db *DB) compactionLoop() {
	defer close(db.compactDone)
	for range db.compactCh {
		for db.compactOnce() {
		}
	}
}

// compactOnce picks and runs one compaction; reports whether work was done.
// Compactions must never run concurrently (two racing merges could pick
// overlapping inputs and resurrect deleted keys), so the whole round is
// serialized: the background loop and CompactAll both funnel through here.
func (db *DB) compactOnce() bool {
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	switch db.opts.Compaction {
	case SizeTiered:
		return db.compactSizeTiered()
	default:
		return db.compactLeveled()
	}
}

// levelLimit returns the byte budget for level l (l >= 1).
func (db *DB) levelLimit(l int) int64 {
	limit := db.opts.BaseLevelBytes
	for i := 1; i < l; i++ {
		limit *= int64(db.opts.LevelMultiplier)
	}
	return limit
}

// pickLeveled chooses inputs under db.mu; returns (inputs, outLevel, ok).
func (db *DB) pickLeveled() (inputs []tableMeta, outLevel int, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, 0, false
	}
	man := db.current.man
	// L0 -> L1 when too many overlapping runs accumulate.
	if len(man.Levels[0]) >= db.opts.L0CompactionTrigger {
		inputs = append(inputs, man.Levels[0]...)
		lo, hi := keyRange(inputs)
		for _, t := range man.Levels[1] {
			if overlaps(t, lo, hi) {
				inputs = append(inputs, t)
			}
		}
		return inputs, 1, true
	}
	// Ln -> Ln+1 when a level exceeds its budget.
	for l := 1; l < len(man.Levels)-1; l++ {
		if man.totalBytes(l) <= db.levelLimit(l) || len(man.Levels[l]) == 0 {
			continue
		}
		pick := man.Levels[l][0] // oldest-first rotation
		inputs = append(inputs, pick)
		for _, t := range man.Levels[l+1] {
			if overlaps(t, pick.Smallest, pick.Largest) {
				inputs = append(inputs, t)
			}
		}
		return inputs, l + 1, true
	}
	return nil, 0, false
}

// compactLeveled runs one leveled compaction; returns true if work was done.
func (db *DB) compactLeveled() bool {
	inputs, outLevel, ok := db.pickLeveled()
	if !ok {
		return false
	}
	dropTombstones := outLevel == db.opts.MaxLevels-1
	outputs, err := db.mergeTables(inputs, dropTombstones)
	if err != nil {
		// Abandon this round; inputs remain valid.
		return false
	}
	return db.installCompaction(inputs, outputs, outLevel)
}

// compactSizeTiered merges the N smallest similar-sized runs (all in L0).
func (db *DB) compactSizeTiered() bool {
	const minThreshold = 4
	db.mu.RLock()
	if db.closed || len(db.current.man.Levels[0]) < minThreshold {
		db.mu.RUnlock()
		return false
	}
	tables := append([]tableMeta(nil), db.current.man.Levels[0]...)
	db.mu.RUnlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Size < tables[j].Size })
	inputs := tables[:minThreshold]
	dropTombstones := len(inputs) == len(tables)
	outputs, err := db.mergeTables(inputs, dropTombstones)
	if err != nil {
		return false
	}
	return db.installCompaction(inputs, outputs, 0)
}

// mergeTables merge-sorts the inputs into new tables split at
// TargetFileBytes; runs without holding db.mu. A version reference pins
// the input readers for the duration of the merge.
func (db *DB) mergeTables(inputs []tableMeta, dropTombstones bool) ([]tableMeta, error) {
	db.mu.RLock()
	ver := db.current
	ver.ref()
	db.mu.RUnlock()
	defer ver.unref()
	iters := make([]internalIter, 0, len(inputs))
	for _, meta := range inputs {
		r := ver.readers[meta.Num]
		if r == nil {
			return nil, ErrDBClosed
		}
		iters = append(iters, r.iter())
	}

	merged := newMergeIter(iters)
	var outputs []tableMeta
	var tb *tableBuilder
	var tbNum uint64
	var tbBytes int64
	finishCurrent := func() error {
		if tb == nil {
			return nil
		}
		meta, err := tb.finish(tbNum)
		if err != nil {
			return err
		}
		outputs = append(outputs, meta)
		tb = nil
		tbBytes = 0
		return nil
	}
	abort := func() {
		if tb != nil {
			tb.abandon()
		}
		for _, m := range outputs {
			os.Remove(tableFileName(db.opts.Dir, m.Num))
		}
	}
	for merged.next() {
		e := merged.entry()
		if dropTombstones && e.kind == kindDelete {
			continue
		}
		if tb == nil {
			tbNum = db.allocFileNum()
			var err error
			tb, err = newTableBuilder(tableFileName(db.opts.Dir, tbNum), db.opts.BlockBytes, db.opts.BloomBitsPerKey)
			if err != nil {
				abort()
				return nil, err
			}
		}
		if err := tb.add(merged.key(), e); err != nil {
			abort()
			return nil, err
		}
		tbBytes += int64(len(merged.key()) + len(e.value) + 16)
		if tbBytes >= db.opts.TargetFileBytes {
			if err := finishCurrent(); err != nil {
				abort()
				return nil, err
			}
		}
	}
	if merged.err() != nil {
		abort()
		return nil, merged.err()
	}
	if err := finishCurrent(); err != nil {
		abort()
		return nil, err
	}
	return outputs, nil
}

// installCompaction swaps inputs for outputs by installing a successor
// version under db.mu. Input readers are marked obsolete: their files are
// deleted when the last snapshot view referencing them is released (or
// immediately, if no read is in flight).
func (db *DB) installCompaction(inputs, outputs []tableMeta, outLevel int) bool {
	removeOutputs := func() {
		for _, m := range outputs {
			os.Remove(tableFileName(db.opts.Dir, m.Num))
		}
	}
	// Open output readers before taking the lock: fresh files, no races.
	newReaders := make(map[uint64]*tableReader, len(outputs))
	for _, m := range outputs {
		r, err := openTable(db.opts.Dir, m, db.cache)
		if err != nil {
			for _, nr := range newReaders {
				nr.unref()
			}
			removeOutputs()
			return false
		}
		newReaders[m.Num] = r
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		for _, nr := range newReaders {
			nr.unref()
		}
		removeOutputs()
		return false
	}
	cur := db.current
	newMan := cur.man.clone()
	inSet := make(map[uint64]bool, len(inputs))
	for _, m := range inputs {
		inSet[m.Num] = true
	}
	for l := range newMan.Levels {
		kept := newMan.Levels[l][:0]
		for _, t := range newMan.Levels[l] {
			if !inSet[t.Num] {
				kept = append(kept, t)
			}
		}
		newMan.Levels[l] = kept
	}
	newMan.Levels[outLevel] = append(newMan.Levels[outLevel], outputs...)
	if outLevel > 0 {
		sort.Slice(newMan.Levels[outLevel], func(i, j int) bool {
			return bytes.Compare(newMan.Levels[outLevel][i].Smallest, newMan.Levels[outLevel][j].Smallest) < 0
		})
	}
	newMan.NextFile = db.nextFile.Load()
	if err := newMan.save(db.opts.Dir); err != nil {
		db.mu.Unlock()
		for _, nr := range newReaders {
			nr.unref()
		}
		removeOutputs()
		return false
	}
	for _, m := range inputs {
		if r := cur.readers[m.Num]; r != nil {
			r.markObsolete()
		}
		if db.cache != nil {
			db.cache.dropFile(m.Num)
		}
	}
	db.current = cur.successor(newMan, inSet, newReaders)
	db.mu.Unlock()
	cur.unref()
	db.compactions.Add(1)
	return true
}

// CompactAll drains pending compactions synchronously (tests, benches).
func (db *DB) CompactAll() {
	for db.compactOnce() {
	}
}

func keyRange(tables []tableMeta) (lo, hi []byte) {
	for i, t := range tables {
		if i == 0 {
			lo, hi = t.Smallest, t.Largest
			continue
		}
		if bytes.Compare(t.Smallest, lo) < 0 {
			lo = t.Smallest
		}
		if bytes.Compare(t.Largest, hi) > 0 {
			hi = t.Largest
		}
	}
	return lo, hi
}

func overlaps(t tableMeta, lo, hi []byte) bool {
	return bytes.Compare(t.Largest, lo) >= 0 && bytes.Compare(t.Smallest, hi) <= 0
}

// --- merge iterator, newest (highest seq) wins ---

// internalIter is the common shape of slIterator and tableIterator.
type internalIter interface {
	next() bool
	seekGE(key []byte) bool
	key() []byte
	entry() memEntry
}

var (
	_ internalIter = (*slIterator)(nil)
	_ internalIter = (*tableIterator)(nil)
)

type mergeSource struct {
	it internalIter
}

type mergeHeap []*mergeSource

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].it.key(), h[j].it.key())
	if c != 0 {
		return c < 0
	}
	// Same key: higher sequence first so the newest version surfaces first.
	return h[i].it.entry().seq > h[j].it.entry().seq
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeSource)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeIter yields one entry per distinct key (the newest version),
// in ascending key order, across multiple table iterators.
type mergeIter struct {
	h       mergeHeap
	curKey  []byte
	curEnt  memEntry
	lastErr error
}

func newMergeIter(iters []internalIter) *mergeIter {
	m := &mergeIter{}
	for _, it := range iters {
		if it.next() {
			m.h = append(m.h, &mergeSource{it: it})
		} else if t, ok := it.(*tableIterator); ok && t.err != nil {
			m.lastErr = t.err
		}
	}
	heap.Init(&m.h)
	return m
}

func (m *mergeIter) next() bool {
	if m.lastErr != nil {
		return false
	}
	for m.h.Len() > 0 {
		src := m.h[0]
		key := append([]byte(nil), src.it.key()...)
		ent := src.it.entry()
		ent.value = append([]byte(nil), ent.value...)
		// Advance every source sitting on this key (duplicates: older versions).
		for m.h.Len() > 0 && bytes.Equal(m.h[0].it.key(), key) {
			s := m.h[0]
			if s.it.next() {
				heap.Fix(&m.h, 0)
			} else {
				if t, ok := s.it.(*tableIterator); ok && t.err != nil {
					m.lastErr = t.err
					return false
				}
				heap.Pop(&m.h)
			}
		}
		m.curKey, m.curEnt = key, ent
		return true
	}
	return false
}

func (m *mergeIter) key() []byte     { return m.curKey }
func (m *mergeIter) entry() memEntry { return m.curEnt }
func (m *mergeIter) err() error      { return m.lastErr }
