// Package lsm implements the storage tier of TierBase: a log-structured
// merge-tree persistent key-value store (paper §3, "the storage tier
// typically utilizes a LSM-tree structure stored on SSD or HDD to optimize
// write performance and storage capacity"). It stands in for UCS, Ant
// Group's internal "LSM-Tree with a shared disk architecture and remote
// compaction"; TierBase's pluggable storage adapter (internal/cache's
// Storage interface) lets any KV store take this role.
//
// Components: a skiplist memtable, WAL-backed durability, immutable
// SSTables with block-structured layout + bloom filters + checksums, a
// JSON manifest with atomic version edits, leveled and size-tiered
// compaction, an LRU block cache, and heap-merged iterators.
package lsm

import (
	"encoding/binary"
	"hash/fnv"
)

// bloomFilter is a standard Bloom filter with double hashing
// (Kirsch-Mitzenmacher), k derived from bits-per-key.
type bloomFilter struct {
	bits []byte
	k    uint32
}

// newBloom sizes a filter for n keys at bitsPerKey.
func newBloom(n int, bitsPerKey int) *bloomFilter {
	if bitsPerKey < 1 {
		bitsPerKey = 10
	}
	nBits := n * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	k := uint32(float64(bitsPerKey) * 0.69) // ln2 * bitsPerKey
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &bloomFilter{bits: make([]byte, (nBits+7)/8), k: k}
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	// Second independent-ish hash: rehash with a salt byte.
	h2 := fnv.New64a()
	h2.Write([]byte{0x9e})
	h2.Write(key)
	return h1, h2.Sum64() | 1 // ensure odd so strides cover the table
}

// Add inserts a key.
func (b *bloomFilter) Add(key []byte) {
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % n
		b.bits[pos/8] |= 1 << (pos % 8)
	}
}

// MayContain reports whether key is possibly present (no false negatives).
func (b *bloomFilter) MayContain(key []byte) bool {
	if len(b.bits) == 0 {
		return true
	}
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % n
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// Marshal encodes the filter as [k uint32][bits...].
func (b *bloomFilter) Marshal() []byte {
	out := make([]byte, 4+len(b.bits))
	binary.LittleEndian.PutUint32(out, b.k)
	copy(out[4:], b.bits)
	return out
}

// unmarshalBloom decodes a filter produced by Marshal.
func unmarshalBloom(data []byte) *bloomFilter {
	if len(data) < 4 {
		return &bloomFilter{}
	}
	return &bloomFilter{
		k:    binary.LittleEndian.Uint32(data),
		bits: data[4:],
	}
}
