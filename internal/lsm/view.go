package lsm

import (
	"bytes"
	"sync/atomic"
)

// version is an immutable snapshot of the table hierarchy: the manifest
// (level metadata) plus an open reader per table. Versions are installed
// copy-on-write by flush and compaction; readers capture the current one
// with a single refcount increment and then do all bloom/index/block I/O
// against it with no DB lock held.
//
// Ownership protocol: a version holds one reference on every tableReader
// in its map. Constructing a successor re-refs the readers it keeps and
// takes ownership of (does not re-ref) the ones it adds, so releasing the
// predecessor drops exactly the removed readers. When a reader's count
// reaches zero its file handle closes, and — if it was marked obsolete by
// a compaction — the table file is deleted. In-flight reads therefore keep
// compacted-away tables alive (and on disk) until the last snapshot using
// them is released.
type version struct {
	man     *manifest
	readers map[uint64]*tableReader
	refs    atomic.Int64
}

// newVersion takes ownership of one reference per reader in readers.
func newVersion(man *manifest, readers map[uint64]*tableReader) *version {
	v := &version{man: man, readers: readers}
	v.refs.Store(1)
	return v
}

// successor builds the next version: current tables minus removeNums plus
// add (whose initial references are transferred in). Caller holds db.mu
// and still owns the predecessor's reference (release it after the swap).
func (v *version) successor(man *manifest, removeNums map[uint64]bool, add map[uint64]*tableReader) *version {
	readers := make(map[uint64]*tableReader, len(v.readers)+len(add))
	for num, r := range v.readers {
		if removeNums[num] {
			continue
		}
		r.ref()
		readers[num] = r
	}
	for num, r := range add {
		readers[num] = r
	}
	return newVersion(man, readers)
}

func (v *version) ref() { v.refs.Add(1) }

func (v *version) unref() {
	if v.refs.Add(-1) == 0 {
		for _, r := range v.readers {
			r.unref()
		}
	}
}

// view is one read snapshot: the active memtable, the sealed (immutable)
// memtables oldest-first, and the table version — everything a
// Get/MultiGet/Scan needs, captured under db.mu in O(1) and then used
// entirely lock-free. Memtables need no refcount (they hold no file
// handles; the GC keeps them alive), tables are pinned via the version.
//
// Isolation: the table hierarchy and the sealed memtables are truly
// frozen, but v.mem references the LIVE active memtable, which updates
// keys in place — so writes committed after capture may (or may not)
// become visible, and a reader racing an Apply can observe a prefix of
// that batch. This matches the seed's semantics (its per-key storage
// batch loop had no cross-key isolation either); batch atomicity is a
// crash-recovery guarantee (one WAL record), not reader isolation. What
// the view does guarantee: no read ever blocks on — or is blocked by — a
// flush, a compaction, or a WAL fsync, and the table set cannot change
// mid-read.
type view struct {
	mem *memtable
	imm []*memtable // oldest first
	ver *version
}

// acquireView captures the current snapshot. Release it when done.
func (db *DB) acquireView() (*view, error) {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return nil, ErrDBClosed
	}
	v := &view{mem: db.mem, imm: db.imm, ver: db.current}
	v.ver.ref()
	db.mu.RUnlock()
	return v, nil
}

func (v *view) release() { v.ver.unref() }

// memGet searches the memtables newest-first (active, then sealed ones
// from newest to oldest). The first hit wins: sequence numbers increase
// monotonically across memtable generations.
func (v *view) memGet(key []byte) (memEntry, bool) {
	if e, ok := v.mem.sl.get(key); ok {
		return e, true
	}
	for i := len(v.imm) - 1; i >= 0; i-- {
		if e, ok := v.imm[i].sl.get(key); ok {
			return e, true
		}
	}
	return memEntry{}, false
}

// get resolves key against the full snapshot. The returned entry's value
// may alias memtable or block-cache memory — callers copy before returning
// anything to the user (the DB.Get/MultiGet contract).
func (v *view) get(key []byte) (memEntry, bool, error) {
	if e, ok := v.memGet(key); ok {
		return e, true, nil
	}
	// L0: overlapping tables — consult all, keep the highest sequence.
	var best memEntry
	var found bool
	for _, meta := range v.ver.man.Levels[0] {
		r := v.ver.readers[meta.Num]
		if r == nil {
			continue
		}
		if bytes.Compare(key, meta.Smallest) < 0 || bytes.Compare(key, meta.Largest) > 0 {
			continue
		}
		e, ok, err := r.get(key)
		if err != nil {
			return memEntry{}, false, err
		}
		if ok && (!found || e.seq > best.seq) {
			best, found = e, true
		}
	}
	if found {
		return best, true, nil
	}
	// L1+: non-overlapping — at most one candidate table per level.
	for l := 1; l < len(v.ver.man.Levels); l++ {
		for _, meta := range v.ver.man.Levels[l] {
			if bytes.Compare(key, meta.Smallest) < 0 || bytes.Compare(key, meta.Largest) > 0 {
				continue
			}
			r := v.ver.readers[meta.Num]
			if r == nil {
				continue
			}
			e, ok, err := r.get(key)
			if err != nil {
				return memEntry{}, false, err
			}
			if ok {
				return e, true, nil
			}
			break // non-overlapping: no other table in this level can match
		}
	}
	return memEntry{}, false, nil
}
