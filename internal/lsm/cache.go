package lsm

import (
	"container/list"
	"sync"
)

// blockCache is a sharded-free LRU cache of decoded data blocks keyed by
// (table file number, block offset). It bounds memory by total cached bytes.
type blockCache struct {
	mu    sync.Mutex
	max   int64
	cur   int64
	ll    *list.List
	items map[blockKey]*list.Element

	hits   int64
	misses int64
}

type blockKey struct {
	file uint64
	off  uint64
}

type blockVal struct {
	key  blockKey
	data []byte
}

func newBlockCache(maxBytes int64) *blockCache {
	if maxBytes <= 0 {
		return nil
	}
	return &blockCache{
		max:   maxBytes,
		ll:    list.New(),
		items: make(map[blockKey]*list.Element),
	}
}

func (c *blockCache) get(file, off uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[blockKey{file, off}]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*blockVal).data, true
	}
	c.misses++
	return nil, false
}

func (c *blockCache) put(file, off uint64, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := blockKey{file, off}
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		old := el.Value.(*blockVal)
		c.cur += int64(len(data) - len(old.data))
		old.data = data
	} else {
		el := c.ll.PushFront(&blockVal{key: k, data: data})
		c.items[k] = el
		c.cur += int64(len(data))
	}
	for c.cur > c.max && c.ll.Len() > 0 {
		back := c.ll.Back()
		bv := back.Value.(*blockVal)
		c.ll.Remove(back)
		delete(c.items, bv.key)
		c.cur -= int64(len(bv.data))
	}
}

// dropFile evicts all blocks of a deleted table.
func (c *blockCache) dropFile(file uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		bv := el.Value.(*blockVal)
		if bv.key.file == file {
			c.ll.Remove(el)
			delete(c.items, bv.key)
			c.cur -= int64(len(bv.data))
		}
		el = next
	}
}

// stats returns (hits, misses, bytes).
func (c *blockCache) stats() (int64, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.cur
}
