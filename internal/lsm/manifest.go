package lsm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// manifest is the persistent record of the LSM version: which tables exist
// at which levels, the next file number and the last used sequence number.
// Edits are applied by atomically rewriting the file (write temp + rename),
// so a crash leaves either the old or the new version, never a torn one.
type manifest struct {
	NextFile uint64        `json:"next_file"`
	LastSeq  uint64        `json:"last_seq"`
	Levels   [][]tableMeta `json:"levels"`
}

const manifestName = "MANIFEST.json"

func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// loadManifest reads the manifest, returning an empty one if absent.
func loadManifest(dir string, maxLevels int) (*manifest, error) {
	m := &manifest{NextFile: 1, Levels: make([][]tableMeta, maxLevels)}
	data, err := os.ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lsm: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("lsm: parse manifest: %w", err)
	}
	for len(m.Levels) < maxLevels {
		m.Levels = append(m.Levels, nil)
	}
	return m, nil
}

// save atomically persists the manifest.
func (m *manifest) save(dir string) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("lsm: marshal manifest: %w", err)
	}
	tmp := manifestPath(dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, manifestPath(dir))
}

// clone deep-copies the manifest for copy-on-write version edits.
func (m *manifest) clone() *manifest {
	cp := &manifest{NextFile: m.NextFile, LastSeq: m.LastSeq, Levels: make([][]tableMeta, len(m.Levels))}
	for i, lvl := range m.Levels {
		cp.Levels[i] = append([]tableMeta(nil), lvl...)
	}
	return cp
}

// totalBytes returns on-disk bytes at level l.
func (m *manifest) totalBytes(l int) int64 {
	var n int64
	for _, t := range m.Levels[l] {
		n += t.Size
	}
	return n
}
