package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"tierbase/internal/wal"
)

// CompactionStyle selects the merge policy.
type CompactionStyle int

// Compaction styles.
const (
	// Leveled compaction (RocksDB/LevelDB style): non-overlapping runs per
	// level, L0 overlapping. Better read amplification; the default, and
	// the style attributed to the HBase-like baseline.
	Leveled CompactionStyle = iota
	// SizeTiered compaction (Cassandra style): similar-sized runs merged
	// together, all runs overlapping. Better write amplification.
	SizeTiered
)

// Options configures a DB.
type Options struct {
	Dir                 string
	MemtableBytes       int64 // flush threshold; default 4 MiB
	MaxImmutables       int   // sealed-memtable backlog before writers wait; default 2
	BlockBytes          int   // data block target; default 4 KiB
	BloomBitsPerKey     int   // 0 = default 10; -1 disables bloom filters
	BlockCacheBytes     int64 // default 8 MiB; 0 uses default, -1 disables
	L0CompactionTrigger int   // default 4
	BaseLevelBytes      int64 // L1 size limit; default 16 MiB
	LevelMultiplier     int   // default 10
	MaxLevels           int   // default 7
	TargetFileBytes     int64 // compaction output split size; default 2 MiB
	Compaction          CompactionStyle
	DisableWAL          bool
	WALSyncPolicy       wal.SyncPolicy
	// WALFactory overrides WAL construction (e.g. PMem-backed WAL).
	// If nil, a file-backed log in Dir/wal is used.
	WALFactory func(dir string) (wal.Appender, error)
}

func (o *Options) fill() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxImmutables <= 0 {
		o.MaxImmutables = 2
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = 4 << 10
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = 10
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 8 << 20
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.BaseLevelBytes <= 0 {
		o.BaseLevelBytes = 16 << 20
	}
	if o.LevelMultiplier <= 0 {
		o.LevelMultiplier = 10
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 7
	}
	if o.TargetFileBytes <= 0 {
		o.TargetFileBytes = 2 << 20
	}
}

// DB errors.
var (
	ErrNotFound = errors.New("lsm: key not found")
	ErrDBClosed = errors.New("lsm: db closed")
)

// DB is the LSM-tree key-value store.
//
// Concurrency model (three lock domains, never held across disk reads on
// the Get path):
//
//   - commitMu serializes the write pipeline: WAL appends happen in
//     sequence-number order, and memtable rotation (sealing) only happens
//     under it. Writers coalesce into group commits (see Apply).
//   - mu guards the mutable snapshot state — active/sealed memtables, the
//     current table version, the sequence counter, closed — in SHORT
//     critical sections only. Readers capture a refcounted view under
//     RLock and then run entirely lock-free against immutable state.
//   - compactMu serializes compaction rounds (unchanged from the seed).
//
// Background work: flushLoop turns sealed memtables into L0 tables (so a
// writer tripping MemtableBytes never builds an SSTable inline), and
// compactionLoop merges tables. Both install new versions copy-on-write;
// in-flight reads keep superseded tables alive via refcounts.
type DB struct {
	opts Options

	mu        sync.RWMutex
	mem       *memtable   // active
	imm       []*memtable // sealed, oldest first
	current   *version    // table hierarchy snapshot
	seq       uint64
	closed    bool
	flushErr  error      // sticky background-flush failure
	flushCond *sync.Cond // broadcast on flush install / failure (waits use mu)

	wlog   wal.Appender
	walDir string
	cache  *blockCache

	// Write pipeline: pending group-commit queue + the commit lock.
	// pendSpare recycles the previous group's slice for the next leader;
	// walBuf is the WAL encode scratch, reused under commitMu.
	pendMu    sync.Mutex
	pend      []*batchWriter
	pendSpare []*batchWriter
	commitMu  sync.Mutex
	walBuf    []byte

	// nextFile allocates table file numbers; shared by the background
	// flusher and the background compactor, so it must be atomic.
	nextFile atomic.Uint64

	flushCh   chan struct{}
	flushStop chan struct{}
	flushDone chan struct{}

	compactCh   chan struct{}
	compactDone chan struct{}
	compactMu   sync.Mutex // serializes compaction rounds

	flushes     atomic.Int64
	compactions atomic.Int64
	writeBytes  atomic.Int64
	multiGets   atomic.Int64
	badBlocks   atomic.Int64 // reads that hit a checksum-mismatched block
}

// Open opens (creating if needed) a DB at opts.Dir and recovers state from
// the manifest and WAL.
func Open(opts Options) (*DB, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, errors.New("lsm: Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: mkdir: %w", err)
	}
	man, err := loadManifest(opts.Dir, opts.MaxLevels)
	if err != nil {
		return nil, err
	}
	db := &DB{
		opts:        opts,
		mem:         newMemtable(),
		seq:         man.LastSeq,
		flushCh:     make(chan struct{}, 1),
		flushStop:   make(chan struct{}),
		flushDone:   make(chan struct{}),
		compactCh:   make(chan struct{}, 1),
		compactDone: make(chan struct{}),
	}
	db.flushCond = sync.NewCond(&db.mu)
	db.nextFile.Store(man.NextFile)
	if opts.BlockCacheBytes > 0 {
		db.cache = newBlockCache(opts.BlockCacheBytes)
	}
	readers := make(map[uint64]*tableReader)
	abort := func() {
		for _, r := range readers {
			r.unref()
		}
	}
	for _, lvl := range man.Levels {
		for _, meta := range lvl {
			r, err := openTable(opts.Dir, meta, db.cache)
			if err != nil {
				abort()
				return nil, err
			}
			readers[meta.Num] = r
		}
	}
	db.current = newVersion(man, readers)
	db.walDir = opts.Dir + "/wal"
	if !opts.DisableWAL {
		// Replay records newer than the last flushed sequence. Older
		// records (from WAL segments not yet reclaimed at crash time) are
		// already in SSTables and are skipped.
		if err := wal.Replay(db.walDir, func(p []byte) error {
			return replayWALRecord(p, func(seq uint64, kind entryKind, key, val []byte) error {
				if seq > db.seq {
					db.seq = seq
				}
				if seq <= man.LastSeq {
					return nil
				}
				db.mem.apply(seq, kind, key, val)
				return nil
			})
		}); err != nil {
			db.current.unref()
			return nil, err
		}
		if opts.WALFactory != nil {
			db.wlog, err = opts.WALFactory(db.walDir)
		} else {
			db.wlog, err = wal.Open(wal.Options{Dir: db.walDir, Policy: opts.WALSyncPolicy})
		}
		if err != nil {
			db.current.unref()
			return nil, err
		}
	}
	go db.flushLoop()
	go db.compactionLoop()
	return db, nil
}

// encodeWALRecord frames one write in the legacy (seed) single-op format.
// The write path emits batch records now (see batch.go); this encoder is
// kept for replay-compatibility tests against logs written by old builds.
func encodeWALRecord(seq uint64, kind entryKind, key, val []byte) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64*3+1+len(key)+len(val))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], seq)
	buf = append(buf, tmp[:n]...)
	buf = append(buf, byte(kind))
	n = binary.PutUvarint(tmp[:], uint64(len(key)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, key...)
	n = binary.PutUvarint(tmp[:], uint64(len(val)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, val...)
	return buf
}

func decodeWALRecord(p []byte) (seq uint64, kind entryKind, key, val []byte, err error) {
	badRec := errors.New("lsm: bad wal record")
	seq, n := binary.Uvarint(p)
	if n <= 0 || n >= len(p) {
		return 0, 0, nil, nil, badRec
	}
	p = p[n:]
	kind = entryKind(p[0])
	p = p[1:]
	klen, n := binary.Uvarint(p)
	if n <= 0 || klen > uint64(len(p)-n) {
		return 0, 0, nil, nil, badRec
	}
	p = p[n:]
	key = append([]byte(nil), p[:klen]...)
	p = p[klen:]
	vlen, n := binary.Uvarint(p)
	if n <= 0 || vlen > uint64(len(p)-n) {
		return 0, 0, nil, nil, badRec
	}
	p = p[n:]
	val = append([]byte(nil), p[:vlen]...)
	return seq, kind, key, val, nil
}

// allocFileNum returns a fresh table file number.
func (db *DB) allocFileNum() uint64 { return db.nextFile.Add(1) - 1 }

// batchPool recycles the one-op batch envelope used by Put/Delete. Only
// the Batch struct and its ops slice are reused — the per-op key/value
// slab is always fresh, because the memtable aliases it after Apply.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// Put stores key=value. It is a one-op Apply: singles ride the same group
// commit as batches, so concurrent Puts coalesce into one WAL record. The
// batch envelope is pooled, so a sequential Put costs one allocation (the
// combined key/value slab).
func (db *DB) Put(key, value []byte) error {
	b := batchPool.Get().(*Batch)
	b.Reset()
	b.Put(key, value)
	err := db.Apply(b)
	batchPool.Put(b)
	return err
}

// Delete removes key (writes a tombstone).
func (db *DB) Delete(key []byte) error {
	b := batchPool.Get().(*Batch)
	b.Reset()
	b.Delete(key)
	err := db.Apply(b)
	batchPool.Put(b)
	return err
}

// Get fetches the value for key, or ErrNotFound. The returned slice is a
// private copy — it never aliases memtable or block-cache memory, for
// every hit location (memtable, L0, L1+), so callers may retain or modify
// it freely. Get captures a snapshot in O(1) under a read lock and does
// all bloom/index/block I/O lock-free: it never blocks a flush install,
// and a flush never blocks it.
func (db *DB) Get(key []byte) ([]byte, error) {
	v, err := db.acquireView()
	if err != nil {
		return nil, err
	}
	defer v.release()
	e, ok, err := v.get(key)
	if err != nil {
		return nil, db.noteReadErr(err)
	}
	if !ok || e.kind == kindDelete {
		return nil, ErrNotFound
	}
	cp := make([]byte, len(e.value))
	copy(cp, e.value)
	return cp, nil
}

// Has reports whether key exists.
func (db *DB) Has(key []byte) (bool, error) {
	v, err := db.acquireView()
	if err != nil {
		return false, err
	}
	defer v.release()
	e, ok, err := v.get(key)
	if err != nil {
		return false, db.noteReadErr(err)
	}
	return ok && e.kind != kindDelete, nil
}

// noteReadErr counts checksum-mismatched blocks surfacing from the read
// path (Stats.BadBlocks → INFO storage), so silent media corruption is
// observable before it becomes an incident. The error still propagates:
// a corrupt block is never served as data.
func (db *DB) noteReadErr(err error) error {
	if errors.Is(err, errBadBlock) {
		db.badBlocks.Add(1)
	}
	return err
}

// Flush seals the active memtable (if non-empty) and waits until the
// background flusher has drained every sealed memtable to L0 tables.
func (db *DB) Flush() error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return ErrDBClosed
	}
	hasData := db.mem.sl.entries() > 0
	db.mu.RUnlock()
	if hasData {
		if err := db.rotate(); err != nil {
			return err
		}
	}
	return db.waitFlushed()
}

// waitFlushed blocks until the immutable-memtable backlog is empty.
func (db *DB) waitFlushed() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for len(db.imm) > 0 && db.flushErr == nil && !db.closed {
		db.flushCond.Wait()
	}
	if db.flushErr != nil {
		return db.flushErr
	}
	if db.closed {
		return ErrDBClosed
	}
	return nil
}

func (db *DB) triggerCompaction() {
	select {
	case db.compactCh <- struct{}{}:
	default:
	}
}

// Stats summarizes DB state for monitoring and cost measurement.
type Stats struct {
	MemtableBytes  int64
	Immutables     int   // sealed memtables awaiting background flush
	ImmutableBytes int64 // bytes held in sealed memtables
	DiskBytes      int64
	TableCount     int
	LevelFiles     []int
	LevelBytes     []int64
	Flushes        int64
	Compactions    int64
	WriteBytes     int64
	MultiGets      int64
	BadBlocks      int64 // reads failed on a checksum-mismatched SSTable block
	CacheHits      int64
	CacheMisses    int64
	CacheBytes     int64
	SequenceNumber uint64
}

// Stats returns a snapshot of internal counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	st := Stats{
		MemtableBytes:  db.mem.sl.approximateSize(),
		Immutables:     len(db.imm),
		LevelFiles:     make([]int, len(db.current.man.Levels)),
		LevelBytes:     make([]int64, len(db.current.man.Levels)),
		SequenceNumber: db.seq,
	}
	for _, m := range db.imm {
		st.ImmutableBytes += m.sl.approximateSize()
	}
	for l, lvl := range db.current.man.Levels {
		for _, t := range lvl {
			st.DiskBytes += t.Size
			st.TableCount++
			st.LevelFiles[l]++
			st.LevelBytes[l] += t.Size
		}
	}
	db.mu.RUnlock()
	st.Flushes = db.flushes.Load()
	st.Compactions = db.compactions.Load()
	st.WriteBytes = db.writeBytes.Load()
	st.MultiGets = db.multiGets.Load()
	st.BadBlocks = db.badBlocks.Load()
	if db.cache != nil {
		st.CacheHits, st.CacheMisses, st.CacheBytes = db.cache.stats()
	}
	return st
}

// Close flushes all memtables, stops the background goroutines and
// releases all resources. In-flight snapshot reads finish against their
// captured views; their table readers close when the last view releases.
func (db *DB) Close() error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return nil
	}
	hasData := db.mem.sl.entries() > 0
	db.mu.RUnlock()
	var ferr error
	if hasData {
		ferr = db.rotate()
	}
	if werr := db.waitFlushed(); ferr == nil {
		ferr = werr
	}
	db.mu.Lock()
	db.closed = true
	cur := db.current
	db.flushCond.Broadcast()
	db.mu.Unlock()
	close(db.flushStop)
	<-db.flushDone
	close(db.compactCh)
	<-db.compactDone
	var werr error
	if db.wlog != nil {
		werr = db.wlog.Close()
	}
	cur.unref()
	if ferr != nil {
		return ferr
	}
	return werr
}
